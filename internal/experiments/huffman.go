package experiments

import (
	"fmt"

	"trainbox/internal/imgproc"
	"trainbox/internal/jpegdec"
	"trainbox/internal/report"
)

// HuffmanResult carries the decode phase measurements.
type HuffmanResult struct {
	Table *report.Table
	// SerialShare is the measured fraction of decode time in the
	// bit-serial Huffman walk.
	SerialShare float64
	// AmdahlCeiling is the decode speedup limit 1/serial — the most any
	// amount of transform parallelism can deliver.
	AmdahlCeiling float64
}

// HuffmanStudy measures the from-scratch JPEG decoder's phase split on
// stored-size images and derives the Amdahl ceiling — the quantitative
// form of Section V-B's device argument: "there is no good parallel
// algorithm for the Huffman decoding phase in JPEG decoding", so a GPU's
// thousands of lanes can only accelerate the transform phase, and decode
// speedup saturates at 1/serial-share regardless of lane count. An FPGA
// instead pipelines the serial walk at one symbol per cycle and
// replicates whole decoders, which is why the paper offloads to FPGAs.
func HuffmanStudy(images int) (HuffmanResult, error) {
	if images <= 0 {
		return HuffmanResult{}, fmt.Errorf("experiments: need ≥ 1 image")
	}
	var agg jpegdec.DecodeStats
	for i := 0; i < images; i++ {
		img := imgproc.SynthesizeImage(imgproc.DefaultSynthConfig(), int64(i), i%10)
		data, err := imgproc.EncodeJPEG(img, 85)
		if err != nil {
			return HuffmanResult{}, err
		}
		_, stats, err := jpegdec.Decode(data)
		if err != nil {
			return HuffmanResult{}, err
		}
		agg.EntropyNanos += stats.EntropyNanos
		agg.TransformNanos += stats.TransformNanos
	}
	serial := agg.SerialShare()
	res := HuffmanResult{SerialShare: serial, AmdahlCeiling: 1 / serial}

	t := report.NewTable(
		fmt.Sprintf("Section V-B — JPEG decode parallelism ceiling (measured serial share %.0f%%)", 100*serial),
		"transform parallelism ×", "decode speedup", "lane efficiency %")
	for _, p := range []float64{1, 4, 16, 64, 1024, 65536} {
		speedup := 1 / (serial + (1-serial)/p)
		t.AddRowf(p, speedup, 100*speedup/p)
	}
	t.AddRowf("∞ (Amdahl ceiling)", res.AmdahlCeiling, 0.0)
	res.Table = t
	return res, nil
}
