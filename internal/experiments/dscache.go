package experiments

import (
	"context"
	"fmt"
	"sync"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/metrics"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/train"
	"trainbox/internal/units"
)

// CacheStudyResult carries the cache-tier study's headline: total
// decode invocations with and without the shared tier at the
// 4-consumer cell, and their ratio (the "one decode, N consumers"
// amortization the tier exists for).
type CacheStudyResult struct {
	Table *report.Table
	// UncachedDecodes is what 4 independent consumers would decode
	// without the tier (consumers × epochs × keys).
	UncachedDecodes int64
	// CachedDecodes is what the shared tier actually decoded there.
	CachedDecodes int64
	// Amortization is UncachedDecodes / CachedDecodes.
	Amortization float64
}

// CacheStudy sweeps the shared decode-cache tier across concurrent
// consumers × byte budget × echo factor, training real (small) jobs on
// one corpus. Per cell it reports the tier's decode count, hit rate,
// and the mean prep-vs-step overlap ratio the jobs ended with — ample
// budgets collapse decodes to one per key regardless of consumer
// count; tight budgets evict and re-decode; data echoing lowers the
// overlap ratio (each prepared epoch feeds more step time) without
// touching decode counts.
func CacheStudy() (CacheStudyResult, error) {
	const (
		items   = 8
		epochs  = 3
		classes = 4
	)
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, classes, 7); err != nil {
		return CacheStudyResult{}, err
	}
	keys := store.Keys()
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32

	t := report.NewTable("Study — shared decode-cache tier and data echoing (one decode, N consumers)",
		"consumers", "budget", "echo", "decodes", "hit rate", "overlap")
	res := CacheStudyResult{Table: t}

	type cell struct {
		consumers int
		budget    units.Bytes
		label     string
		echo      int
	}
	cells := []cell{
		{1, 64 * units.MB, "64MB", 1},
		{4, 64 * units.MB, "64MB", 1},
		{4, 64 * units.MB, "64MB", 2},
		{4, 24 * units.KB, "24KB", 1},
	}
	for _, cl := range cells {
		c := dscache.New(cl.budget)
		var (
			wg         sync.WaitGroup
			mu         sync.Mutex
			overlapSum float64
			firstErr   error
		)
		for w := 0; w < cl.consumers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, int64(100+w))
				reg := metrics.NewRegistry()
				cfg := train.Config{
					Replicas: 2, Widths: []int{64, 16, classes}, Epochs: epochs,
					LearningRate: 0.05, PrefetchDepth: 1, Seed: int64(9 + w), Metrics: reg,
				}
				opts := []train.Option{
					train.WithDataset(exec, store, keys),
					train.WithCache(c),
					train.WithFeature(autoscaleFeature),
				}
				if cl.echo > 1 {
					opts = append(opts, train.WithEchoFactor(cl.echo))
				}
				r, err := train.Run(context.Background(), cfg, opts...)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				overlapSum += r.Metrics.Gauges["train.driver.prep_step_overlap"]
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return CacheStudyResult{}, firstErr
		}
		s := c.Stats()
		var hitRate float64
		if total := s.Hits + s.Misses; total > 0 {
			hitRate = float64(s.Hits) / float64(total)
		}
		t.AddRowf(cl.consumers, cl.label, cl.echo, s.Misses,
			fmt.Sprintf("%.2f", hitRate),
			fmt.Sprintf("%.2f", overlapSum/float64(cl.consumers)))
		if cl.consumers == 4 && cl.budget >= units.MB && cl.echo == 1 {
			res.CachedDecodes = s.Misses
			res.UncachedDecodes = int64(cl.consumers * epochs * len(keys))
			if s.Misses > 0 {
				res.Amortization = float64(res.UncachedDecodes) / float64(s.Misses)
			}
		}
	}
	return res, nil
}
