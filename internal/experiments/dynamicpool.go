package experiments

import (
	"context"
	"fmt"

	"trainbox/internal/dataprep"
	"trainbox/internal/fpga"
	"trainbox/internal/nvme"
	"trainbox/internal/preppool"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

// DynamicPoolStudy runs the live prep-pool runtime (Section V-D: the
// pool is re-divided as job demands change) with two concurrent image
// jobs whose demands cross over mid-run: "alpha" starts needing three
// pooled FPGAs and "beta" one; halfway through the rates swap and the
// rebalancer migrates leases from alpha to beta at the next epoch
// boundary. The table records, per epoch and job, the demand, the
// granted leases, and the pooled-vs-in-box split of the samples
// actually prepared, plus the cumulative lease migrations.
func DynamicPoolStudy() (*report.Table, error) {
	const (
		datasetSeed = 7
		epochs      = 6
		devices     = 4
	)
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, datasetSeed); err != nil {
		return nil, err
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		return nil, err
	}
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32
	handlers := make([]*fpga.P2PHandler, devices)
	for i := range handlers {
		if handlers[i], err = fpga.NewP2PHandler(ns, fpga.NewImageEmulator(imgCfg), 8); err != nil {
			return nil, err
		}
	}
	pool, err := preppool.NewPool(handlers)
	if err != nil {
		return nil, err
	}

	// alpha needs 3 pooled FPGAs at first, beta 1; the rates swap at the
	// halfway epoch.
	high := units.SamplesPerSec(3 * fpga.ImagePrepRate)
	low := units.SamplesPerSec(1 * fpga.ImagePrepRate)
	register := func(name string, rate units.SamplesPerSec, seed int64) (*preppool.Job, error) {
		return pool.Register(preppool.JobSpec{
			Name: name, RequiredRate: rate,
			Exec:        dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, seed),
			Store:       store,
			DatasetSeed: seed,
		})
	}
	alpha, err := register("alpha", high, datasetSeed)
	if err != nil {
		return nil, err
	}
	beta, err := register("beta", low, datasetSeed+1)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Dynamic prep-pool rebalancing (two jobs, demand crossover at epoch 3)",
		"epoch", "job", "required (samples/s)", "leases", "pooled share", "migrations")
	ctx := context.Background()
	for epoch := 0; epoch < epochs; epoch++ {
		if epoch == epochs/2 {
			if err := alpha.SetRequiredRate(low); err != nil {
				return nil, err
			}
			if err := beta.SetRequiredRate(high); err != nil {
				return nil, err
			}
		}
		for _, job := range []*preppool.Job{alpha, beta} {
			if _, err := job.PrepareEpoch(ctx, store.Keys(), epoch); err != nil {
				return nil, err
			}
		}
		for _, st := range pool.Stats() {
			t.AddRowf(epoch, st.Name, float64(st.RequiredRate), st.Leases,
				fmt.Sprintf("%.0f%%", 100*st.PooledShare), pool.Migrations())
		}
	}
	return t, nil
}
