package experiments

import (
	"reflect"
	"testing"

	"trainbox/internal/workload"
)

func TestSyncStudyShapeAndHeadlines(t *testing.T) {
	r, err := SyncStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) < 3 {
		t.Fatalf("sync study has %d box-count rows, want >= 3", len(r.Table.Rows))
	}
	// The functional cross-check is the acceptance criterion: every
	// backend bit-identical to the ring.
	if r.MaxDivergence != 0 {
		t.Errorf("MaxDivergence = %g, want exactly 0", r.MaxDivergence)
	}
	if r.RingMs <= 0 || r.PSMs <= 0 || r.HostRingEthMs <= 0 || r.InNetworkMs <= 0 {
		t.Errorf("missing 256-accel headline latencies: %+v", r)
	}
	// 4× compression over the same ports must beat the host eth ring by
	// a factor in (1, compression·2]: the ring moves ~2 copies per port,
	// the offload moves 2 compressed copies.
	if r.InNetworkSpeedup <= 1 || r.InNetworkSpeedup > 8.5 {
		t.Errorf("InNetworkSpeedup = %.2f, want in (1, 8.5]", r.InNetworkSpeedup)
	}
	// The dedicated PS tier at one shard box per train box is
	// server-ingest bound (8 workers per shard), so it must cost more
	// than the bandwidth-optimal ring on the same fabric.
	if r.PSMs <= r.RingMs {
		t.Errorf("PS (%.3fms) unexpectedly beat the ring (%.3fms)", r.PSMs, r.RingMs)
	}

	// Largest row must be the paper's 256-accel target.
	last := r.Table.Rows[len(r.Table.Rows)-1]
	if last[1] != "256" {
		t.Errorf("last row accels = %s, want 256 (workload.TargetAccelerators=%d)",
			last[1], workload.TargetAccelerators)
	}
}

func TestSyncStudyDeterministic(t *testing.T) {
	a, err := SyncStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyncStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Table.Rows, b.Table.Rows) {
		t.Error("sync study rows differ between runs")
	}
	if a.InNetworkSpeedup != b.InNetworkSpeedup || a.MaxDivergence != b.MaxDivergence {
		t.Error("sync study headlines differ between runs")
	}
}
