package experiments

import (
	"strconv"
	"testing"
)

func TestAblationFPGAProvisioningMonotone(t *testing.T) {
	tb, err := AblationFPGAProvisioning("Resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// More in-box FPGAs never hurt throughput.
	prev := 0.0
	for i, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev*(1-1e-9) {
			t.Errorf("row %d: throughput %v fell below %v", i, v, prev)
		}
		prev = v
	}
	if _, err := AblationFPGAProvisioning("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAblationEthernetMonotone(t *testing.T) {
	tb, err := AblationEthernet("TF-SR")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prev := -1.0
	satisfiedSeen := false
	for _, row := range tb.Rows {
		rate, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rate < prev {
			t.Errorf("total rate fell from %v to %v with more bandwidth", prev, rate)
		}
		prev = rate
		if row[3] == "true" {
			satisfiedSeen = true
		}
	}
	if !satisfiedSeen {
		t.Error("no link bandwidth satisfied TF-SR — even dual-100G should")
	}
	// The slowest link must not satisfy (that is the point of the sweep).
	if tb.Rows[0][3] == "true" {
		t.Error("10 GbE satisfied TF-SR; the ablation should show strangulation")
	}
}

func TestAblationSyncSchemeRingWins(t *testing.T) {
	tb, err := AblationSyncScheme()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		c, _ := strconv.ParseFloat(row[1], 64)
		tr, _ := strconv.ParseFloat(row[2], 64)
		r, _ := strconv.ParseFloat(row[3], 64)
		if !(r >= tr && tr >= c) {
			t.Errorf("%s: expected ring ≥ tree ≥ central, got %v %v %v", row[0], c, tr, r)
		}
	}
}

func TestAblationRCCapacityGrowsButTrainBoxStillWins(t *testing.T) {
	tb, err := AblationRCCapacity("Resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, row := range tb.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v < prev {
			t.Errorf("row %d throughput fell", i)
		}
		prev = v
	}
	// Even at 4× RC capacity, TrainBox stays ahead (ratio > 1).
	ratio, _ := strconv.ParseFloat(tb.Rows[2][3], 64)
	if ratio <= 1 {
		t.Errorf("TrainBox ratio at 4× RC = %v, want > 1", ratio)
	}
}

func TestAblationPoolSharingShape(t *testing.T) {
	tb, err := AblationPoolSharing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 4 pool sizes × 3 jobs
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// With a 32-FPGA pool every job is satisfied; with zero, the
	// deficit jobs are not.
	for _, row := range tb.Rows[:3] {
		if row[4] != "true" {
			t.Errorf("ample pool left %s unsatisfied", row[1])
		}
	}
	starvedUnsat := 0
	for _, row := range tb.Rows[9:] {
		if row[4] == "false" {
			starvedUnsat++
		}
	}
	if starvedUnsat == 0 {
		t.Error("zero pool satisfied every job")
	}
}
