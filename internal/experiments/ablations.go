package experiments

import (
	"fmt"

	"trainbox/internal/accel"
	"trainbox/internal/arch"
	"trainbox/internal/collective"
	"trainbox/internal/core"
	"trainbox/internal/eth"
	"trainbox/internal/fpga"
	"trainbox/internal/report"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: design
// choices the paper asserts, exercised as parameter sweeps over the
// models so their sensitivity is visible.

// AblationFPGAProvisioning sweeps the number of preparation accelerators
// per train box (without the prep-pool) for one workload: the
// provisioning question behind Section IV-D's observation that in-box
// capacity "is statically determined at the deployment".
func AblationFPGAProvisioning(name string) (*report.Table, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Ablation — in-box FPGA provisioning for %s (256 accels, no pool)", name),
		"FPGAs/box", "throughput (samples/s)", "accel-equivalents", "bottleneck")
	for _, perBox := range []int{1, 2, 3, 4} {
		sys, err := arch.Build(arch.Config{
			Kind: arch.TrainBoxNoPool, NumAccels: workload.TargetAccelerators,
			FPGAsPerBox: perBox,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(sys, w)
		if err != nil {
			return nil, err
		}
		t.AddRowf(perBox, float64(res.Throughput),
			float64(res.Throughput)/float64(w.AccelRate), res.Bottleneck)
	}
	return t, nil
}

// AblationEthernet sweeps the prep-pool link bandwidth for one audio
// workload's per-box pool draw: the paper's choice of Ethernet over PCIe
// rests on bandwidth parity (Section IV-D), and this shows where slower
// links would strangle the pool.
func AblationEthernet(name string) (*report.Table, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	required := units.SamplesPerSec(8 * float64(w.AccelRate)) // per box
	t := report.NewTable(
		fmt.Sprintf("Ablation — prep-pool link bandwidth for %s (per train box)", name),
		"link", "pool rate (samples/s)", "total rate", "satisfied")
	links := []struct {
		label string
		bw    units.BytesPerSec
	}{
		{"10 GbE (1.25 GB/s)", 1.25 * units.GBps},
		{"25 GbE (3.125 GB/s)", 3.125 * units.GBps},
		{"100 GbE (12.5 GB/s)", 12.5 * units.GBps},
		{"2×100 GbE (25 GB/s)", 25 * units.GBps},
	}
	for _, l := range links {
		net, err := eth.NewNetwork(eth.LinkSpec{Bandwidth: l.bw}, eth.SwitchSpec{Ports: 64})
		if err != nil {
			return nil, err
		}
		alloc, err := fpga.SizePool(fpga.PoolRequest{
			RequiredRate: required, InBoxFPGAs: 2, Type: w.Type,
			OffloadBytesPerSample: w.Prep.StoredBytes + w.Prep.TensorBytes,
		}, net, 64)
		if err != nil {
			return nil, err
		}
		t.AddRowf(l.label, float64(alloc.PoolRate), float64(alloc.TotalRate()), alloc.Satisfied)
	}
	return t, nil
}

// AblationSyncScheme compares synchronization schemes (naive central,
// binomial tree, chunked ring) on compute+sync throughput at 256
// accelerators — the Section II-B argument for rings, quantified per
// workload.
func AblationSyncScheme() (*report.Table, error) {
	t := report.NewTable("Ablation — synchronization scheme at 256 accelerators (samples/s)",
		"workload", "central", "tree", "ring", "ring/central ×")
	n := workload.TargetAccelerators
	ring := collective.DefaultRingModel()
	tree := collective.TreeModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	central := collective.CentralModel{LinkBandwidth: ring.LinkBandwidth}
	for _, w := range workload.Workloads() {
		compute := accel.ComputeTime(w, w.BatchSize)
		tput := func(sync float64) float64 {
			return float64(n*w.BatchSize) / (compute + sync)
		}
		c := tput(central.Latency(n, w.ModelBytes))
		tr := tput(tree.Latency(n, w.ModelBytes))
		r := tput(ring.Latency(n, w.ModelBytes))
		t.AddRowf(w.Name, c, tr, r, r/c)
	}
	return t, nil
}

// AblationRCCapacity sweeps the root complex's aggregate capacity for
// the B+Acc architecture: the "just buy a bigger host" counterfactual
// that clustering makes unnecessary.
func AblationRCCapacity(name string) (*report.Table, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Ablation — root-complex capacity under B+Acc+P2P for %s (256 accels)", name),
		"RC capacity ×Gen3", "throughput (samples/s)", "bottleneck", "TrainBox ratio")
	tbSys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: workload.TargetAccelerators})
	if err != nil {
		return nil, err
	}
	tb, err := core.Solve(tbSys, w)
	if err != nil {
		return nil, err
	}
	for _, mult := range []float64{1, 2, 4, 8} {
		sys, err := arch.Build(arch.Config{Kind: arch.BaselineAccP2P, NumAccels: workload.TargetAccelerators})
		if err != nil {
			return nil, err
		}
		sys.RCCap = units.BytesPerSec(float64(sys.RCCap) * mult)
		res, err := core.Solve(sys, w)
		if err != nil {
			return nil, err
		}
		t.AddRowf(mult, float64(res.Throughput), res.Bottleneck,
			float64(tb.Throughput)/float64(res.Throughput))
	}
	return t, nil
}

// AblationPoolSharing exercises the multi-job pool scheduler: three jobs
// with different input types compete for a shrinking pool.
func AblationPoolSharing() (*report.Table, error) {
	jobs := []fpga.JobRequest{
		{Name: "Resnet-50 (4 boxes)", Type: workload.Image,
			RequiredRate: units.SamplesPerSec(32 * 7431), InBoxRate: 8 * fpga.ImagePrepRate},
		{Name: "TF-SR (4 boxes)", Type: workload.Audio,
			RequiredRate: units.SamplesPerSec(32 * 2001), InBoxRate: 8 * fpga.AudioPrepRate},
		{Name: "Inception-v4 (4 boxes)", Type: workload.Image,
			RequiredRate: units.SamplesPerSec(32 * 1669), InBoxRate: 8 * fpga.ImagePrepRate},
	}
	t := report.NewTable("Ablation — multi-job prep-pool sharing",
		"pool FPGAs", "job", "granted FPGAs", "deficit covered %", "satisfied")
	for _, pool := range []int{32, 16, 8, 0} {
		allocs, err := fpga.SchedulePool(jobs, pool)
		if err != nil {
			return nil, err
		}
		for _, a := range allocs {
			t.AddRowf(pool, a.Name, a.GrantedFPGAs, 100*a.Fraction, a.Satisfied)
		}
	}
	return t, nil
}
