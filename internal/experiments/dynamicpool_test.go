package experiments

import (
	"strings"
	"testing"
)

func TestDynamicPoolStudy(t *testing.T) {
	tb, err := DynamicPoolStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 6 epochs × 2 jobs
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	// Before the crossover alpha holds 3 leases and beta 1; after it the
	// grants swap, which requires at least one lease migration.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first[1] != "alpha" || first[3] != "3" {
		t.Errorf("epoch 0 alpha row = %v, want 3 leases", first)
	}
	if last[1] != "beta" || last[3] != "3" {
		t.Errorf("final beta row = %v, want 3 leases", last)
	}
	if last[5] == "0" {
		t.Error("no lease migrations recorded across the demand crossover")
	}
	if !strings.Contains(tb.String(), "pooled share") {
		t.Error("table lost its pooled-share column")
	}
}
