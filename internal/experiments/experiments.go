// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's models and substrates. Each Fig*/
// Table* function returns a rendered report table plus the headline
// numbers the paper reports, so callers (the CLIs, the benchmark
// harness, EXPERIMENTS.md) can compare paper-vs-measured directly.
package experiments

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/collective"
	"trainbox/internal/core"
	"trainbox/internal/fpga"
	"trainbox/internal/report"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Fig2a renders the hardware-trend context series.
func Fig2a() *report.Table {
	t := report.NewTable("Figure 2a — normalized performance trends of NN hardware",
		"year", "asic", "interconnect")
	for _, p := range workload.HardwareTrends() {
		t.AddRowf(p.Year, p.ASIC, p.Interconnect)
	}
	return t
}

// Fig2bResult carries Figure 2b's headline: the saturation level of
// normalized ring-synchronization latency.
type Fig2bResult struct {
	Table *report.Table
	// NormalizedAt256 should saturate just above 2 (Figure 2b).
	NormalizedAt256 float64
}

// Fig2b computes normalized ring all-reduce latency versus accelerator
// count for a 4 KB-chunked ring.
func Fig2b() Fig2bResult {
	m := collective.DefaultRingModel()
	const modelBytes = 100 * units.MB
	t := report.NewTable("Figure 2b — ring synchronization latency (normalized to n=2)",
		"accelerators", "normalized latency")
	var at256 float64
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		norm := m.NormalizedLatency(n, modelBytes)
		t.AddRowf(n, norm)
		if n == 256 {
			at256 = norm
		}
	}
	return Fig2bResult{Table: t, NormalizedAt256: at256}
}

// Fig3Result carries Figure 3's headline ratio.
type Fig3Result struct {
	Table *report.Table
	// FinalPrepOverOthers is preparation time over compute+sync time in
	// the fully optimized configuration (paper: 54.9×).
	FinalPrepOverOthers float64
}

// Fig3 computes the ResNet-50 latency decomposition across the paper's
// optimization ladder.
func Fig3() (Fig3Result, error) {
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		return Fig3Result{}, err
	}
	t := report.NewTable("Figure 3 — ResNet-50 latency decomposition across optimizations",
		"config", "prep share %", "compute share %", "sync share %", "prep/others ×")
	var res Fig3Result
	for _, cfg := range core.Fig3Ladder() {
		b, err := core.DecomposeFig3(w, cfg)
		if err != nil {
			return Fig3Result{}, err
		}
		total := b.Total()
		ratio := b.PrepTotal() / b.OthersTotal()
		t.AddRowf(cfg.Name, 100*b.PrepTotal()/total, 100*b.ModelCompute/total,
			100*b.ModelSync/total, ratio)
		res.FinalPrepOverOthers = ratio
	}
	res.Table = t
	return res, nil
}

// Fig8Result carries the baseline-scalability headline.
type Fig8Result struct {
	Table *report.Table
	// MaxSaturation is the largest effective accelerator count any
	// workload reaches (paper: ≈18).
	MaxSaturation float64
}

// Fig8 computes baseline throughput (normalized to one accelerator)
// versus scale for all workloads.
func Fig8() (Fig8Result, error) {
	scales := core.DefaultScales()
	headers := []string{"workload"}
	for _, n := range scales {
		headers = append(headers, fmt.Sprintf("n=%d", n))
	}
	t := report.NewTable("Figure 8 — baseline scalability (normalized throughput)", headers...)
	var res Fig8Result
	for _, w := range workload.Workloads() {
		row := []any{w.Name}
		var base, last float64
		for _, n := range scales {
			sys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: n})
			if err != nil {
				return Fig8Result{}, err
			}
			r, err := core.Solve(sys, w)
			if err != nil {
				return Fig8Result{}, err
			}
			if n == 1 {
				base = float64(r.Throughput)
			}
			last = float64(r.Throughput) / base
			row = append(row, last)
		}
		if last > res.MaxSaturation {
			res.MaxSaturation = last
		}
		t.AddRowf(row...)
	}
	res.Table = t
	return res, nil
}

// Fig9Result carries the latency-decomposition headline.
type Fig9Result struct {
	Table *report.Table
	// MeanPrepShare is data preparation's average share of per-batch
	// latency at 256 accelerators (paper: 98.1%).
	MeanPrepShare float64
}

// Fig9 computes the per-workload latency decomposition of the baseline
// at 256 accelerators.
func Fig9() (Fig9Result, error) {
	t := report.NewTable("Figure 9 — baseline latency decomposition at 256 accelerators (%)",
		"workload", "data transfer", "formatting", "augmentation", "compute", "sync", "prep share")
	var sum float64
	for _, w := range workload.Workloads() {
		b, err := core.DecomposeBaseline(w, workload.TargetAccelerators)
		if err != nil {
			return Fig9Result{}, err
		}
		total := b.Total()
		t.AddRowf(w.Name,
			100*b.DataTransfer/total, 100*b.Formatting/total, 100*b.Augmentation/total,
			100*b.ModelCompute/total, 100*b.ModelSync/total, 100*b.PrepShare())
		sum += b.PrepShare()
	}
	return Fig9Result{Table: t, MeanPrepShare: sum / 7}, nil
}

// Fig10Result carries the resource-requirement headlines.
type Fig10Result struct {
	CPU, Memory, PCIe *report.Table
	// Maxima at 256 accelerators (paper: 100.7×, 17.9×, 18.0×; this
	// reproduction's PCIe model lands lower — see EXPERIMENTS.md).
	MaxCPU, MaxMemory, MaxPCIe float64
	// MaxCores is the absolute core requirement (paper: 4,833).
	MaxCores float64
}

// Fig10 computes required host resources (normalized to DGX-2) versus
// scale for all workloads.
func Fig10() (Fig10Result, error) {
	scales := core.DefaultScales()
	headers := []string{"workload"}
	for _, n := range scales {
		headers = append(headers, fmt.Sprintf("n=%d", n))
	}
	var res Fig10Result
	res.CPU = report.NewTable("Figure 10a — required CPU cores (× DGX-2)", headers...)
	res.Memory = report.NewTable("Figure 10b — required memory bandwidth (× DGX-2)", headers...)
	res.PCIe = report.NewTable("Figure 10c — required PCIe bandwidth at RC (× DGX-2)", headers...)
	for _, w := range workload.Workloads() {
		cpuRow := []any{w.Name}
		memRow := []any{w.Name}
		pcieRow := []any{w.Name}
		for _, n := range scales {
			r, err := core.RequiredResources(w, n)
			if err != nil {
				return Fig10Result{}, err
			}
			cpuRow = append(cpuRow, r.CPU)
			memRow = append(memRow, r.MemoryBW)
			pcieRow = append(pcieRow, r.PCIeBW)
			if n == workload.TargetAccelerators {
				if r.CPU > res.MaxCPU {
					res.MaxCPU = r.CPU
				}
				if r.MemoryBW > res.MaxMemory {
					res.MaxMemory = r.MemoryBW
				}
				if r.PCIeBW > res.MaxPCIe {
					res.MaxPCIe = r.PCIeBW
				}
				if r.Cores > res.MaxCores {
					res.MaxCores = r.Cores
				}
			}
		}
		res.CPU.AddRowf(cpuRow...)
		res.Memory.AddRowf(memRow...)
		res.PCIe.AddRowf(pcieRow...)
	}
	return res, nil
}

// Fig11 renders the baseline host-resource consumption decomposition for
// one image and one audio workload (per-sample shares by category).
func Fig11() (*report.Table, error) {
	t := report.NewTable("Figure 11 — host resource consumption decomposition (baseline, %)",
		"input", "resource", "ssd read", "formatting", "augmentation", "data load", "others")
	for _, name := range []string{"Resnet-50", "TF-SR"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		label := w.Type.String()
		p := w.Prep
		cpuTotal := p.TotalCPUSeconds()
		t.AddRowf(label, "CPU",
			0.0,
			100*p.CPUSeconds[workload.OpFormat]/cpuTotal,
			100*p.CPUSeconds[workload.OpAugment]/cpuTotal,
			100*p.CPUSeconds[workload.OpLoad]/cpuTotal,
			100*p.CPUSeconds[workload.OpOther]/cpuTotal)
		memTotal := float64(p.TotalMemoryBytes())
		t.AddRowf(label, "Memory BW",
			100*float64(p.MemoryBytes[workload.OpSSDRead])/memTotal,
			100*float64(p.MemoryBytes[workload.OpFormat])/memTotal,
			100*float64(p.MemoryBytes[workload.OpAugment])/memTotal,
			100*float64(p.MemoryBytes[workload.OpLoad])/memTotal,
			100*float64(p.MemoryBytes[workload.OpOther])/memTotal)
		rc := float64(p.StoredBytes + p.TensorBytes)
		t.AddRowf(label, "PCIe BW",
			100*float64(p.StoredBytes)/rc, 0.0, 0.0, 100*float64(p.TensorBytes)/rc, 0.0)
	}
	return t, nil
}

// TableI renders the workload summary.
func TableI() *report.Table {
	t := report.NewTable("Table I — workloads",
		"type", "name", "task", "batch", "model MB", "samples/s")
	for _, w := range workload.Workloads() {
		t.AddRowf(w.Kind, w.Name, w.Task, w.BatchSize,
			float64(w.ModelBytes)/1e6, float64(w.AccelRate))
	}
	return t
}

// fpgaTable renders one engine configuration with per-engine and total
// utilization.
func fpgaTable(title string, engines []fpga.Engine) (*report.Table, error) {
	dev := fpga.XCVU9P()
	t := report.NewTable(title, "engine", "LUTs", "FF", "BRAM", "DSP")
	for _, e := range engines {
		t.AddRowf(e.Name, e.LUTs, e.FFs, e.BRAM, e.DSP)
	}
	u, err := dev.Utilization(engines)
	if err != nil {
		return nil, err
	}
	t.AddRowf("Total (%)", 100*u.LUTs, 100*u.FFs, 100*u.BRAM, 100*u.DSP)
	return t, nil
}

// TableII renders the image-engine FPGA utilization.
func TableII() (*report.Table, error) {
	return fpgaTable("Table II — FPGA resource utilization (image)", fpga.ImageEngines())
}

// TableIII renders the audio-engine FPGA utilization.
func TableIII() (*report.Table, error) {
	return fpgaTable("Table III — FPGA resource utilization (audio)", fpga.AudioEngines())
}

// Fig19Result carries the headline speedups.
type Fig19Result struct {
	Table *report.Table
	// AvgTrainBox is the mean TrainBox speedup over the baseline
	// (paper: 44.4×); AvgAcc is acceleration alone (paper: 3.32×);
	// MaxTrainBox/MaxName identify the largest improvement
	// (paper: 84.3× on TF-AA); ClusteringGain is TrainBox over
	// B+Acc+P2P (paper: 13.4×).
	AvgTrainBox, AvgAcc, MaxTrainBox, ClusteringGain float64
	MaxName                                          string
}

// Fig19 computes per-workload throughput of every architecture at 256
// accelerators, normalized to the baseline.
func Fig19() (Fig19Result, error) {
	kinds := arch.Kinds()
	headers := []string{"workload"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	t := report.NewTable("Figure 19 — normalized throughput at 256 accelerators", headers...)
	var res Fig19Result
	var sumTB, sumAcc, sumP2P float64
	for _, w := range workload.Workloads() {
		row := []any{w.Name}
		var base float64
		var perKind = map[arch.Kind]float64{}
		for _, k := range kinds {
			sys, err := arch.Build(arch.Config{Kind: k, NumAccels: workload.TargetAccelerators})
			if err != nil {
				return Fig19Result{}, err
			}
			r, err := core.Solve(sys, w)
			if err != nil {
				return Fig19Result{}, err
			}
			if k == arch.Baseline {
				base = float64(r.Throughput)
			}
			sp := float64(r.Throughput) / base
			perKind[k] = sp
			row = append(row, sp)
		}
		t.AddRowf(row...)
		sumTB += perKind[arch.TrainBox]
		sumAcc += perKind[arch.BaselineAcc]
		sumP2P += perKind[arch.BaselineAccP2P]
		if perKind[arch.TrainBox] > res.MaxTrainBox {
			res.MaxTrainBox = perKind[arch.TrainBox]
			res.MaxName = w.Name
		}
	}
	n := float64(len(workload.Workloads()))
	res.AvgTrainBox = sumTB / n
	res.AvgAcc = sumAcc / n
	res.ClusteringGain = sumTB / sumP2P
	res.Table = t
	return res, nil
}

// Fig20Result carries the batch-sweep headline.
type Fig20Result struct {
	Table *report.Table
	// SpeedupAtLargest is TrainBox/baseline at batch 8192.
	SpeedupAtLargest float64
}

// Fig20 sweeps ResNet-50 batch sizes on baseline and TrainBox at 256
// accelerators; throughput is normalized to the baseline at batch 8.
func Fig20() (Fig20Result, error) {
	w, err := workload.ByName("Resnet-50")
	if err != nil {
		return Fig20Result{}, err
	}
	base, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: workload.TargetAccelerators})
	if err != nil {
		return Fig20Result{}, err
	}
	tb, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: workload.TargetAccelerators})
	if err != nil {
		return Fig20Result{}, err
	}
	t := report.NewTable("Figure 20 — ResNet-50 batch-size sweep at 256 accelerators (normalized)",
		"batch", "baseline", "trainbox", "speedup")
	var res Fig20Result
	var norm float64
	for _, batch := range []int{8, 32, 128, 512, 2048, 8192} {
		rb, err := core.SolveBatch(base, w, batch)
		if err != nil {
			return Fig20Result{}, err
		}
		rt, err := core.SolveBatch(tb, w, batch)
		if err != nil {
			return Fig20Result{}, err
		}
		if norm == 0 {
			norm = float64(rb.Throughput)
		}
		speedup := float64(rt.Throughput) / float64(rb.Throughput)
		t.AddRowf(batch, float64(rb.Throughput)/norm, float64(rt.Throughput)/norm, speedup)
		res.SpeedupAtLargest = speedup
	}
	res.Table = t
	return res, nil
}

// Fig21Config lists the scalability-study configurations.
type fig21Config struct {
	name string
	cfg  func(n int) arch.Config
}

func fig21Configs() []fig21Config {
	return []fig21Config{
		{"Baseline (CPU)", func(n int) arch.Config { return arch.Config{Kind: arch.Baseline, NumAccels: n} }},
		{"Baseline+Acc (GPU)", func(n int) arch.Config {
			return arch.Config{Kind: arch.BaselineAcc, NumAccels: n, Prep: arch.PrepGPU}
		}},
		{"Baseline+Acc (FPGA)", func(n int) arch.Config {
			return arch.Config{Kind: arch.BaselineAcc, NumAccels: n, Prep: arch.PrepFPGA}
		}},
		{"TrainBox w/o prep-pool", func(n int) arch.Config { return arch.Config{Kind: arch.TrainBoxNoPool, NumAccels: n} }},
		{"TrainBox", func(n int) arch.Config { return arch.Config{Kind: arch.TrainBox, NumAccels: n} }},
	}
}

// Fig21Result carries the scalability curves for one workload.
type Fig21Result struct {
	Table *report.Table
	// FinalByConfig maps each configuration to its normalized throughput
	// (accelerator-equivalents) at 256 accelerators.
	FinalByConfig map[string]float64
}

// Fig21 computes the scalability study for the named workload
// (the paper shows Inception-v4 and TF-SR). Throughput is normalized to
// one accelerator's rate, so the ideal curve is y = n.
func Fig21(name string) (Fig21Result, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return Fig21Result{}, err
	}
	scales := core.DefaultScales()
	headers := []string{"config"}
	for _, n := range scales {
		headers = append(headers, fmt.Sprintf("n=%d", n))
	}
	t := report.NewTable(fmt.Sprintf("Figure 21 — scalability of %s (accel-equivalents)", name), headers...)
	res := Fig21Result{FinalByConfig: map[string]float64{}}
	for _, c := range fig21Configs() {
		row := []any{c.name}
		for _, n := range scales {
			sys, err := arch.Build(c.cfg(n))
			if err != nil {
				return Fig21Result{}, err
			}
			r, err := core.Solve(sys, w)
			if err != nil {
				return Fig21Result{}, err
			}
			equiv := float64(r.Throughput) / float64(w.AccelRate)
			row = append(row, equiv)
			if n == workload.TargetAccelerators {
				res.FinalByConfig[c.name] = equiv
			}
		}
		t.AddRowf(row...)
	}
	res.Table = t
	return res, nil
}

// Fig22 renders the host-resource utilization ladder for one image and
// one audio workload.
func Fig22() (*report.Table, error) {
	t := report.NewTable("Figure 22 — host resource utilization (normalized to baseline)",
		"input", "architecture", "CPU", "Memory BW", "PCIe BW")
	for _, name := range []string{"Resnet-50", "TF-SR"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		ladder, err := core.UtilizationLadder(w)
		if err != nil {
			return nil, err
		}
		for _, u := range ladder {
			t.AddRowf(w.Type.String(), u.Kind.String(), u.CPUTotal(), u.MemoryTotal(), u.PCIeTotal())
		}
	}
	return t, nil
}
