package experiments

import (
	"fmt"

	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

// FailureStudy injects device failures into TrainBox and measures the
// degradation, with and without the prep-pool: one in-box FPGA down per
// box, and one in-box SSD down per box. The pool's resilience role is an
// implication of Section V-D (underutilized FPGAs back up overloaded
// boxes) that the paper states but does not quantify.
func FailureStudy(name string) (*report.Table, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Failure injection — %s at 256 accelerators", name),
		"scenario", "pool", "throughput (samples/s)", "vs healthy %", "bottleneck")

	type scenario struct {
		label string
		cfg   func(kind arch.Kind) arch.Config
	}
	scenarios := []scenario{
		{"healthy", func(k arch.Kind) arch.Config {
			return arch.Config{Kind: k, NumAccels: workload.TargetAccelerators}
		}},
		{"1 FPGA down per box", func(k arch.Kind) arch.Config {
			return arch.Config{Kind: k, NumAccels: workload.TargetAccelerators, FPGAsPerBox: 1}
		}},
		{"1 SSD down per box", func(k arch.Kind) arch.Config {
			return arch.Config{Kind: k, NumAccels: workload.TargetAccelerators, SSDsPerBox: 1}
		}},
	}
	for _, pooled := range []struct {
		label string
		kind  arch.Kind
	}{{"no", arch.TrainBoxNoPool}, {"yes", arch.TrainBox}} {
		var healthy float64
		for _, sc := range scenarios {
			sys, err := arch.Build(sc.cfg(pooled.kind))
			if err != nil {
				return nil, err
			}
			res, err := core.Solve(sys, w)
			if err != nil {
				return nil, err
			}
			if sc.label == "healthy" {
				healthy = float64(res.Throughput)
			}
			t.AddRowf(sc.label, pooled.label, float64(res.Throughput),
				100*float64(res.Throughput)/healthy, res.Bottleneck)
		}
	}
	return t, nil
}
