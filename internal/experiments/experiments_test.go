package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig2aRenders(t *testing.T) {
	out := Fig2a().String()
	if !strings.Contains(out, "2012") || !strings.Contains(out, "2019") {
		t.Errorf("fig2a missing years:\n%s", out)
	}
}

func TestFig2bSaturatesNearTwo(t *testing.T) {
	res := Fig2b()
	if res.NormalizedAt256 < 1.9 || res.NormalizedAt256 > 2.2 {
		t.Errorf("normalized latency at 256 = %.3f, want ≈2 (Figure 2b)", res.NormalizedAt256)
	}
	if len(res.Table.Rows) != 9 {
		t.Errorf("fig2b rows = %d", len(res.Table.Rows))
	}
}

func TestFig3FinalRatio(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: prep is 54.9× the others in the final configuration; the
	// model's calibration lands in the tens.
	if res.FinalPrepOverOthers < 20 || res.FinalPrepOverOthers > 100 {
		t.Errorf("final prep/others = %.1f×, want tens (paper 54.9×)", res.FinalPrepOverOthers)
	}
	if len(res.Table.Rows) != 4 {
		t.Errorf("fig3 rows = %d, want 4", len(res.Table.Rows))
	}
}

func TestFig5AugmentationWins(t *testing.T) {
	res, err := Fig5(DefaultFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalWith <= res.FinalWithout {
		t.Errorf("augmented accuracy %.3f should beat plain %.3f (Figure 5)",
			res.FinalWith, res.FinalWithout)
	}
	if res.FinalWith-res.FinalWithout < 0.05 {
		t.Errorf("augmentation gap = %.3f, want a clear margin", res.FinalWith-res.FinalWithout)
	}
	if res.FinalWith < 0.55 {
		t.Errorf("augmented model accuracy %.3f suspiciously low", res.FinalWith)
	}
}

func TestFig5RejectsDegenerateConfig(t *testing.T) {
	if _, err := Fig5(Fig5Config{}); err == nil {
		t.Error("degenerate config accepted")
	}
}

func TestFig8SaturationNearEighteen(t *testing.T) {
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8: saturation "after 18 neural network accelerators".
	if res.MaxSaturation < 14 || res.MaxSaturation > 22 {
		t.Errorf("max baseline saturation = %.1f accel-equivalents, want ≈18", res.MaxSaturation)
	}
	if len(res.Table.Rows) != 7 {
		t.Errorf("fig8 rows = %d", len(res.Table.Rows))
	}
}

func TestFig9MeanPrepShare(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 98.1% on average.
	if res.MeanPrepShare < 0.93 || res.MeanPrepShare > 1 {
		t.Errorf("mean prep share = %.3f, want ≈0.98", res.MeanPrepShare)
	}
}

func TestFig10Headlines(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCPU < 60 || res.MaxCPU > 130 {
		t.Errorf("max CPU = %.1f×, paper reports 100.7×", res.MaxCPU)
	}
	if res.MaxMemory < 12 || res.MaxMemory > 26 {
		t.Errorf("max memory = %.1f×, paper reports 17.9×", res.MaxMemory)
	}
	if res.MaxCores < 3000 {
		t.Errorf("max cores = %.0f, paper reports 4,833", res.MaxCores)
	}
	for _, tb := range []string{res.CPU.String(), res.Memory.String(), res.PCIe.String()} {
		if !strings.Contains(tb, "Resnet-50") {
			t.Error("fig10 table missing workloads")
		}
	}
}

func TestFig11SharesMatchPaper(t *testing.T) {
	tb, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "image") || !strings.Contains(out, "audio") {
		t.Errorf("fig11 missing input types:\n%s", out)
	}
	if len(tb.Rows) != 6 { // 2 inputs × 3 resources
		t.Errorf("fig11 rows = %d, want 6", len(tb.Rows))
	}
}

func TestTableIMatchesWorkloads(t *testing.T) {
	tb := TableI()
	if len(tb.Rows) != 7 {
		t.Errorf("table I rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "7431") {
		t.Error("table I missing ResNet-50 throughput")
	}
}

func TestTablesIIAndIII(t *testing.T) {
	t2, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2.String(), "Jpeg decoder") {
		t.Error("table II missing JPEG decoder")
	}
	t3, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3.String(), "Spectrogram") {
		t.Error("table III missing spectrogram engine")
	}
	// Both end with a totals row.
	if t2.Rows[len(t2.Rows)-1][0] != "Total (%)" || t3.Rows[len(t3.Rows)-1][0] != "Total (%)" {
		t.Error("missing totals rows")
	}
}

func TestFig19Headlines(t *testing.T) {
	res, err := Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgTrainBox < 35 || res.AvgTrainBox > 55 {
		t.Errorf("average TrainBox speedup = %.1f×, paper reports 44.4×", res.AvgTrainBox)
	}
	if res.AvgAcc < 2.5 || res.AvgAcc > 6 {
		t.Errorf("average B+Acc speedup = %.1f×, paper reports 3.32×", res.AvgAcc)
	}
	if res.MaxName != "TF-AA" {
		t.Errorf("max speedup on %s, paper reports TF-AA", res.MaxName)
	}
	if res.ClusteringGain < 8 || res.ClusteringGain > 16 {
		t.Errorf("clustering gain = %.1f×, paper reports 13.4×", res.ClusteringGain)
	}
}

func TestFig20GrowsWithBatch(t *testing.T) {
	res, err := Fig20()
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupAtLargest < 10 {
		t.Errorf("speedup at batch 8192 = %.1f×, want ≫10×", res.SpeedupAtLargest)
	}
	if len(res.Table.Rows) != 6 {
		t.Errorf("fig20 rows = %d, want 6", len(res.Table.Rows))
	}
}

func TestFig21ShapesForBothWorkloads(t *testing.T) {
	inc, err := Fig21("Inception-v4")
	if err != nil {
		t.Fatal(err)
	}
	// Inception: pool irrelevant (same final value).
	if math.Abs(inc.FinalByConfig["TrainBox"]-inc.FinalByConfig["TrainBox w/o prep-pool"]) > 1e-6 {
		t.Errorf("Inception pool should be irrelevant: %v vs %v",
			inc.FinalByConfig["TrainBox"], inc.FinalByConfig["TrainBox w/o prep-pool"])
	}
	// TrainBox reaches near the target; baseline saturates near 18.
	if inc.FinalByConfig["TrainBox"] < 240 {
		t.Errorf("Inception TrainBox = %.1f accel-equivalents, want ≈256", inc.FinalByConfig["TrainBox"])
	}
	if inc.FinalByConfig["Baseline (CPU)"] > 22 {
		t.Errorf("Inception baseline = %.1f, want ≈18.3", inc.FinalByConfig["Baseline (CPU)"])
	}

	sr, err := Fig21("TF-SR")
	if err != nil {
		t.Fatal(err)
	}
	// TF-SR: pool matters; baseline saturates ≈4.4.
	if sr.FinalByConfig["TrainBox"] <= sr.FinalByConfig["TrainBox w/o prep-pool"]*1.2 {
		t.Errorf("TF-SR pool should add clear throughput: %v vs %v",
			sr.FinalByConfig["TrainBox"], sr.FinalByConfig["TrainBox w/o prep-pool"])
	}
	if math.Abs(sr.FinalByConfig["Baseline (CPU)"]-4.4) > 1 {
		t.Errorf("TF-SR baseline = %.1f, want ≈4.4", sr.FinalByConfig["Baseline (CPU)"])
	}
	// FPGA prep dominates GPU prep.
	if sr.FinalByConfig["Baseline+Acc (FPGA)"] < sr.FinalByConfig["Baseline+Acc (GPU)"] {
		t.Error("FPGA prep should beat GPU prep for TF-SR")
	}
	if _, err := Fig21("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFig22Renders(t *testing.T) {
	tb, err := Fig22()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 { // 2 inputs × 4 architectures
		t.Errorf("fig22 rows = %d, want 8", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "TrainBox") {
		t.Error("fig22 missing TrainBox rung")
	}
}
