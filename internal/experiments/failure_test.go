package experiments

import (
	"strconv"
	"testing"
)

func TestFailureStudyPoolAbsorbsFPGALoss(t *testing.T) {
	tb, err := FailureStudy("Inception-v4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	get := func(scenario, pool string) float64 {
		for _, row := range tb.Rows {
			if row[0] == scenario && row[1] == pool {
				v, err := strconv.ParseFloat(row[3], 64)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("missing row %s/%s", scenario, pool)
		return 0
	}
	// Without the pool, losing one FPGA per box halves prep capacity and
	// hurts; with the pool, the system stays at full throughput.
	noPool := get("1 FPGA down per box", "no")
	withPool := get("1 FPGA down per box", "yes")
	if noPool >= 99 {
		t.Errorf("no-pool FPGA failure kept %.1f%% throughput; should degrade", noPool)
	}
	if withPool < 99.9 {
		t.Errorf("pooled FPGA failure dropped to %.1f%%; pool should absorb it", withPool)
	}
	if _, err := FailureStudy("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
