package experiments

import (
	"strconv"
	"testing"
	"trainbox/internal/workload"
)

func TestFutureWorkWidensTheGap(t *testing.T) {
	tb, err := FutureWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Both projections must show TrainBox ahead, and the video workload
	// (16× prep per sample) must exceed the Table I image speedups.
	for _, row := range tb.Rows {
		sp, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp <= 10 {
			t.Errorf("%s: future-work speedup = %.1f×, want large", row[0], sp)
		}
		// Baselines must be host-CPU-bound — the preparation wall.
		if row[3] != "host-cpu" {
			t.Errorf("%s baseline bottleneck = %s, want host-cpu", row[0], row[3])
		}
	}
	// The next-gen accelerator projection: 4× faster accelerators make
	// the *baseline* no faster (it is prep-bound), so its speedup should
	// exceed today's ResNet-50 speedup (~31×).
	var nextGen float64
	for _, row := range tb.Rows {
		if row[0] == "Resnet-50 (next-gen accel)" {
			nextGen, _ = strconv.ParseFloat(row[6], 64)
		}
	}
	if nextGen < 40 {
		t.Errorf("next-gen ResNet speedup = %.1f×, should exceed today's ≈31×", nextGen)
	}
}

func TestFutureWorkloadsValidate(t *testing.T) {
	ws := workload.FutureWorkloads()
	if len(ws) != 2 {
		t.Fatalf("future workloads = %d", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
	}
	if ws[0].Type != workload.Video {
		t.Errorf("first projection type = %v, want video", ws[0].Type)
	}
	// The video clip's preparation must cost roughly 16 image pipelines.
	img, _ := workload.ByName("Resnet-50")
	ratio := ws[0].Prep.TotalCPUSeconds() / img.Prep.TotalCPUSeconds()
	if ratio < 12 || ratio > 20 {
		t.Errorf("video/image prep cost ratio = %.1f, want ≈16", ratio)
	}
}

func TestInferenceStudyShape(t *testing.T) {
	tb, err := InferenceStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		sp, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp <= 1 {
			t.Errorf("%s: serving speedup = %v, want > 1", row[0], sp)
		}
		sat, _ := strconv.ParseFloat(row[2], 64)
		if sat <= 0 || sat > 25 {
			t.Errorf("%s: serving saturation = %v accels, want small", row[0], sat)
		}
	}
}

func TestStaticPrepMatchesPaperEstimate(t *testing.T) {
	res := StaticPrep()
	// Section III-D: "static data preparation requires about 2.2 PBs".
	if res.ImagenetPB < 1.8 || res.ImagenetPB > 2.4 {
		t.Errorf("static-prep storage = %.2f PB, paper reports ≈2.2", res.ImagenetPB)
	}
	if len(res.Table.Rows) != 6 {
		t.Errorf("rows = %d", len(res.Table.Rows))
	}
}

func TestHuffmanStudyCeiling(t *testing.T) {
	res, err := HuffmanStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialShare <= 0.03 || res.SerialShare >= 0.9 {
		t.Errorf("serial share = %.2f, want a substantial interior fraction", res.SerialShare)
	}
	if res.AmdahlCeiling < 1.1 {
		t.Errorf("Amdahl ceiling = %.1f, must exceed 1", res.AmdahlCeiling)
	}
	if len(res.Table.Rows) != 7 {
		t.Errorf("rows = %d", len(res.Table.Rows))
	}
	if _, err := HuffmanStudy(0); err == nil {
		t.Error("zero images accepted")
	}
}

func TestPlannerStudy(t *testing.T) {
	tb, err := PlannerStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 14 { // 7 workloads × 2 targets
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		target, _ := strconv.ParseFloat(row[1], 64)
		achieved, _ := strconv.ParseFloat(row[5], 64)
		if achieved < target {
			t.Errorf("%s: plan achieved %v below target %v", row[0], achieved, target)
		}
	}
}
