package experiments

import (
	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

// FutureWork evaluates the paper's forward-looking claim ("TrainBox's
// importance will increase with better neural network accelerators and
// emerging data augmentation techniques", Section VIII) on the projected
// workloads: video action recognition and a next-generation-accelerator
// ResNet-50.
func FutureWork() (*report.Table, error) {
	t := report.NewTable("Future work — projected workloads at 256 accelerators",
		"workload", "input", "baseline (samples/s)", "baseline bottleneck",
		"trainbox (samples/s)", "trainbox bottleneck", "speedup")
	for _, w := range workload.FutureWorkloads() {
		baseSys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: workload.TargetAccelerators})
		if err != nil {
			return nil, err
		}
		base, err := core.Solve(baseSys, w)
		if err != nil {
			return nil, err
		}
		tbSys, err := arch.Build(arch.Config{
			Kind: arch.TrainBox, NumAccels: workload.TargetAccelerators,
			// Video clips are prep-heavy: size the pool the way the
			// initializer would for the worst projection.
			PoolFPGAs: 4 * workload.TargetAccelerators,
		})
		if err != nil {
			return nil, err
		}
		tb, err := core.Solve(tbSys, w)
		if err != nil {
			return nil, err
		}
		t.AddRowf(w.Name, w.Type.String(),
			float64(base.Throughput), base.Bottleneck,
			float64(tb.Throughput), tb.Bottleneck,
			float64(tb.Throughput)/float64(base.Throughput))
	}
	return t, nil
}
