package experiments

import (
	"trainbox/internal/arch"
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

// InferenceStudy quantifies Section II-A's aside that the balance
// insight "is generally applicable to the inference as well": for each
// workload, the baseline's serving saturation point and the
// baseline-vs-TrainBox serving throughput at 256 accelerators under a
// throughput-oriented deployment.
func InferenceStudy() (*report.Table, error) {
	cfg := core.DefaultInferenceConfig()
	t := report.NewTable("Inference study — throughput-oriented serving at 256 accelerators",
		"workload", "serving rate/accel", "baseline saturation (accels)",
		"baseline (samples/s)", "trainbox (samples/s)", "speedup")
	for _, w := range workload.Workloads() {
		sat, err := core.InferenceSaturation(w, cfg)
		if err != nil {
			return nil, err
		}
		baseSys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: workload.TargetAccelerators})
		if err != nil {
			return nil, err
		}
		base, err := core.SolveInference(baseSys, w, cfg)
		if err != nil {
			return nil, err
		}
		tbSys, err := arch.Build(arch.Config{Kind: arch.TrainBox, NumAccels: workload.TargetAccelerators})
		if err != nil {
			return nil, err
		}
		tb, err := core.SolveInference(tbSys, w, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRowf(w.Name, float64(core.InferenceRate(w, cfg)), sat,
			float64(base.Throughput), float64(tb.Throughput),
			float64(tb.Throughput)/float64(base.Throughput))
	}
	return t, nil
}
