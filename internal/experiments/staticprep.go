package experiments

import (
	"trainbox/internal/imgproc"
	"trainbox/internal/report"
	"trainbox/internal/units"
)

// StaticPrepResult carries the headline of the naive-solution analysis.
type StaticPrepResult struct {
	Table *report.Table
	// ImagenetPB is the storage for statically pre-augmenting Imagenet
	// with random cropping alone (paper: ≈2.2 PB, Section III-D).
	ImagenetPB float64
}

// StaticPrep quantifies Section III-D's "limitations of naive solutions":
// materializing augmented datasets ahead of time instead of preparing
// on-line. For random cropping alone, every stored image expands into
// every distinct crop position; the paper rounds 33×33 positions to
// 32×32 and reports ≈2.2 PB for Imagenet. The table extends the analysis
// with mirroring (×2) and a 10-seed noise ensemble (×10) to show the
// blow-up compounds multiplicatively.
func StaticPrep() StaticPrepResult {
	const (
		numImages = 14e6 // Imagenet items (Section III-D)
		cropMB    = 0.15 // 224×224 RGB, the paper's per-crop figure
	)
	crops := imgproc.NumDistinctCrops(imgproc.StoredSize, imgproc.StoredSize,
		imgproc.ModelSize, imgproc.ModelSize)
	// The paper's arithmetic uses 32×32.
	paperCrops := 32 * 32

	t := report.NewTable("Section III-D — storage for static (offline) data preparation",
		"augmentations materialized", "variants/image", "dataset size")
	row := func(label string, variants int) float64 {
		bytes := float64(variants) * cropMB * 1e6 * numImages
		t.AddRowf(label, variants, units.Bytes(bytes).String())
		return bytes / float64(units.PB)
	}
	row("none (one center crop)", 1)
	pb := row("random crop (paper's 32×32)", paperCrops)
	row("random crop (exact 33×33)", crops)
	row("+ mirror", crops*2)
	row("+ 10-seed noise", crops*2*10)
	t.AddRowf("on-line preparation (TrainBox)", 0, units.Bytes(cropMB*1e6*numImages).String())

	return StaticPrepResult{Table: t, ImagenetPB: pb}
}
