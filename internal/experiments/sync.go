package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"trainbox/internal/arch"
	"trainbox/internal/collective"
	"trainbox/internal/eth"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

// SyncStudyResult carries the gradient-sync ablation: per-box-count
// latency of every backend, the in-network aggregation headline, and
// the functional bit-identity cross-check.
type SyncStudyResult struct {
	Table *report.Table
	// MaxDivergence is the largest |backend − ring| over the functional
	// cross-check (every Reducer on the same random gradients). The
	// canonical reduction order makes this exactly 0.
	MaxDivergence float64
	// RingMs / PSMs / HostRingEthMs / InNetworkMs are the 256-accel
	// sync latencies in milliseconds.
	RingMs, PSMs, HostRingEthMs, InNetworkMs float64
	// InNetworkSpeedup is HostRingEthMs / InNetworkMs at 256 accels:
	// what SmartNIC aggregation buys over running a host ring on the
	// same Ethernet ports.
	InNetworkSpeedup float64
}

// SyncStudy prices the gradient-sync backends against each other across
// box counts — the scenario space the paper closes with "ring sync is
// solved". Ring, tree, and halving-doubling run on the NVLink-class
// accelerator fabric; the parameter server adds a dedicated server tier
// (one shard box per train box, reached over worker links); in-network
// aggregation offloads the reduce into the prep network's switch behind
// compressing SmartNICs, compared against a host ring over the same
// Ethernet ports. A functional pass then reduces real random gradients
// through every backend and cross-checks bit-identity with the ring.
func SyncStudy() (SyncStudyResult, error) {
	w, err := workload.ByName("Inception-v4")
	if err != nil {
		return SyncStudyResult{}, err
	}

	ring := collective.DefaultRingModel()
	tree := collective.TreeModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	halving := collective.HalvingDoublingModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	// Host ring over the prep network's 100G ports: the no-offload way
	// to sync across boxes on Ethernet.
	ethRing := collective.RingModel{LinkBandwidth: eth.Link100G.Bandwidth, ChunkBytes: ring.ChunkBytes, HopLatency: 1e-6}

	t := report.NewTable(
		fmt.Sprintf("Study — gradient-sync backends, %s (%s model), latency per sync in ms", w.Name, w.ModelBytes),
		"boxes", "accels", "ring", "tree", "halving", "ps", "eth ring", "in-network", "best")

	res := SyncStudyResult{Table: t}
	ms := func(s float64) float64 { return s * 1e3 }
	for _, boxes := range []int{2, 8, 32} {
		n := boxes * arch.AccelsPerBox
		// PS tier sized one shard box per train box, reached over the
		// same worker-link class as the ring.
		ps := collective.ParamServerModel{
			Shards:          boxes,
			WorkerBandwidth: ring.LinkBandwidth,
			ServerBandwidth: ring.LinkBandwidth,
			HopLatency:      ring.HopLatency,
		}
		net, err := eth.NewNetwork(eth.Link100G, eth.SwitchSpec{Ports: n})
		if err != nil {
			return SyncStudyResult{}, err
		}
		agg, err := net.InNetwork(eth.DefaultAggregationSpec())
		if err != nil {
			return SyncStudyResult{}, err
		}

		lat := map[string]float64{
			"ring":       ring.Latency(n, w.ModelBytes),
			"tree":       tree.Latency(n, w.ModelBytes),
			"halving":    halving.Latency(n, w.ModelBytes),
			"ps":         ps.Latency(n, w.ModelBytes),
			"in-network": agg.SyncLatency(n, w.ModelBytes),
		}
		hostEth := ethRing.Latency(n, w.ModelBytes)
		best := "ring"
		for _, name := range []string{"tree", "halving", "ps", "in-network"} {
			if lat[name] < lat[best] {
				best = name
			}
		}
		t.AddRowf(boxes, n, ms(lat["ring"]), ms(lat["tree"]), ms(lat["halving"]),
			ms(lat["ps"]), ms(hostEth), ms(lat["in-network"]), best)

		if n == workload.TargetAccelerators {
			res.RingMs = ms(lat["ring"])
			res.PSMs = ms(lat["ps"])
			res.HostRingEthMs = ms(hostEth)
			res.InNetworkMs = ms(lat["in-network"])
			if lat["in-network"] > 0 {
				res.InNetworkSpeedup = hostEth / lat["in-network"]
			}
		}
	}

	div, err := syncBitIdentityCheck()
	if err != nil {
		return SyncStudyResult{}, err
	}
	res.MaxDivergence = div
	return res, nil
}

// syncBitIdentityCheck reduces the same random gradients through every
// backend and returns the largest absolute divergence from the ring —
// 0 unless a backend breaks the canonical reduction order.
func syncBitIdentityCheck() (float64, error) {
	ctx := context.Background()
	var maxDiv float64
	for _, n := range []int{4, 5, 8} {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		const length = 257
		base := make([][]float64, n)
		for r := range base {
			base[r] = make([]float64, length)
			for i := range base[r] {
				base[r][i] = rng.NormFloat64()
			}
		}
		clone := func() [][]float64 {
			out := make([][]float64, n)
			for r := range base {
				out[r] = append([]float64(nil), base[r]...)
			}
			return out
		}
		want := clone()
		ringRed, err := collective.NewRing()
		if err != nil {
			return 0, err
		}
		if err := ringRed.Reduce(ctx, want); err != nil {
			return 0, err
		}
		for _, name := range collective.Backends() {
			var opts []collective.Option
			if name == "ps" {
				opts = append(opts, collective.WithShards(3))
			}
			red, err := collective.ByName(name, opts...)
			if err != nil {
				return 0, err
			}
			got := clone()
			if err := red.Reduce(ctx, got); err != nil {
				return 0, err
			}
			for r := range got {
				for i := range got[r] {
					if d := math.Abs(got[r][i] - want[r][i]); d > maxDiv {
						maxDiv = d
					}
				}
			}
		}
	}
	return maxDiv, nil
}
