package experiments

import (
	"strconv"
	"testing"
)

// TestAutoscaleStudy pins the study's structural invariants. The
// autoscaled trajectory depends on live stage timings, so the test
// asserts the ablation's shape — the static arm never moves, the
// scaled arm stays inside its [Min, Max] band — not a specific path
// (preppool's unit tests pin the controller arithmetic).
func TestAutoscaleStudy(t *testing.T) {
	res, err := AutoscaleStudy()
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Table
	if len(tb.Rows) != 12 { // 6 epochs × 2 modes
		t.Fatalf("rows = %d, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		rate, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %v: unparsable rate: %v", row, err)
		}
		switch row[0] {
		case "static":
			if rate != 4000 {
				t.Errorf("static row %v moved off the pinned demand", row)
			}
		case "autoscaled":
			if rate < 4000 || rate > 32000 {
				t.Errorf("autoscaled row %v left the [Min, Max] band", row)
			}
		default:
			t.Errorf("row %v has unknown mode", row)
		}
	}
	if res.StaticFinalRate != 4000 {
		t.Errorf("StaticFinalRate = %v, want 4000", res.StaticFinalRate)
	}
	if res.ScaledFinalRate < 4000 || res.ScaledFinalRate > 32000 {
		t.Errorf("ScaledFinalRate = %v outside [4000, 32000]", res.ScaledFinalRate)
	}
	if res.ScaledUps < 0 || res.ScaledDowns < 0 {
		t.Errorf("negative move counters: ups=%d downs=%d", res.ScaledUps, res.ScaledDowns)
	}
}
