package experiments

import (
	"trainbox/internal/core"
	"trainbox/internal/report"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// PlannerStudy exercises the rack-capacity planner across every Table I
// workload at half and full target-scale demand, showing how the
// preparation-to-compute provisioning ratio the paper's Table I spread
// implies varies by workload (audio and RNN-S lean on the pool; the
// CNNs mostly do not).
func PlannerStudy() (*report.Table, error) {
	t := report.NewTable("Rack plans per workload (PlanRack)",
		"workload", "target (samples/s)", "boxes", "accels", "pool FPGAs", "achieved", "bottleneck")
	for _, w := range workload.Workloads() {
		full := float64(w.AccelRate) * float64(workload.TargetAccelerators)
		for _, frac := range []float64{0.5, 1.0} {
			target := units.SamplesPerSec(full * frac)
			plan, err := core.PlanRack(w, target, 4096)
			if err != nil {
				return nil, err
			}
			t.AddRowf(w.Name, float64(target), plan.Boxes, plan.Accels,
				plan.PoolFPGAs, float64(plan.Achieved), plan.Bottleneck)
		}
	}
	return t, nil
}
