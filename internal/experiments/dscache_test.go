package experiments

import (
	"strconv"
	"testing"
)

// TestCacheStudy pins the study's acceptance-level claims: 4 concurrent
// consumers on an ample budget amortize decodes at least 2× (in fact
// consumers × epochs ×), and the tight-budget cell really does decode
// more than the ample one (the sweep exercises eviction).
func TestCacheStudy(t *testing.T) {
	r, err := CacheStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(r.Table.Rows))
	}
	if r.CachedDecodes == 0 || r.UncachedDecodes == 0 {
		t.Fatalf("headline cell missing: cached=%d uncached=%d", r.CachedDecodes, r.UncachedDecodes)
	}
	if r.Amortization < 2 {
		t.Fatalf("amortization %.1f× below the 2× bar (%d vs %d decodes)",
			r.Amortization, r.UncachedDecodes, r.CachedDecodes)
	}
	// Column 3 is the decode count; the tight-budget row (last) must
	// decode more than the ample 4-consumer row (second).
	ample, err1 := strconv.ParseInt(r.Table.Rows[1][3], 10, 64)
	tight, err2 := strconv.ParseInt(r.Table.Rows[3][3], 10, 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("decode cells unparseable: %v / %v", err1, err2)
	}
	if tight <= ample {
		t.Fatalf("tight budget decoded %d ≤ ample %d — eviction never happened", tight, ample)
	}
}
