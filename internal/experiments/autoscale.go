package experiments

import (
	"context"
	"fmt"

	"trainbox/internal/dataprep"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/preppool"
	"trainbox/internal/report"
	"trainbox/internal/storage"
	"trainbox/internal/train"
	"trainbox/internal/units"
)

// AutoscaleStudyResult carries the autoscale ablation's headlines: the
// demand each configuration ends the run with, and how many grow/shrink
// moves the controller took when enabled.
type AutoscaleStudyResult struct {
	Table *report.Table
	// StaticFinalRate is the fixed configuration's demand at the last
	// epoch — by construction its starting value.
	StaticFinalRate units.SamplesPerSec
	// ScaledFinalRate is where the controller left demand; always inside
	// the configured [Min, Max] band.
	ScaledFinalRate units.SamplesPerSec
	// ScaledUps and ScaledDowns count the controller's adjustments.
	ScaledUps, ScaledDowns int64
}

// autoscaleFeature pools the prepared tensor's first channel into 8×8
// block means — the 64-input feature map the study's MLP consumes.
func autoscaleFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

// AutoscaleStudy is the elastic-jobs ablation: the same pooled training
// job runs twice — once with its required rate pinned at registration
// ("static") and once with the metrics-driven autoscaler enabled
// ("autoscaled"), reading the job's own live train.driver overlap ratio
// and moving Job.SetRequiredRate inside [Min, Max] with hysteresis.
// The table records, per epoch and mode, the overlap signal the
// controller saw, the demand it chose, and the pool leases that demand
// pulled; the headline contrasts where each configuration's demand
// ends up. Overlap is measured from live stage timings, so the
// autoscaled trajectory varies run to run — the study demonstrates the
// control loop, while internal/preppool's tests pin its arithmetic.
func AutoscaleStudy() (AutoscaleStudyResult, error) {
	const (
		datasetSeed = 7
		epochs      = 6
		devices     = 2
		startRate   = units.SamplesPerSec(4000)
		minRate     = units.SamplesPerSec(4000)
		maxRate     = units.SamplesPerSec(32000)
	)
	t := report.NewTable("Ablation — metrics-driven required-rate autoscaling (one pooled job)",
		"mode", "epoch", "overlap", "required (samples/s)", "leases")
	res := AutoscaleStudyResult{Table: t}

	run := func(autoscale bool) error {
		mode := "static"
		if autoscale {
			mode = "autoscaled"
		}
		store := storage.NewStore(storage.DefaultSSDSpec())
		if err := dataprep.BuildImageDataset(store, 8, 4, datasetSeed); err != nil {
			return err
		}
		ns, err := nvme.LoadStore(store)
		if err != nil {
			return err
		}
		imgCfg := dataprep.DefaultImageConfig()
		imgCfg.CropW, imgCfg.CropH = 32, 32
		handlers := make([]*fpga.P2PHandler, devices)
		for i := range handlers {
			if handlers[i], err = fpga.NewP2PHandler(ns, fpga.NewImageEmulator(imgCfg), 8); err != nil {
				return err
			}
		}
		reg := metrics.NewRegistry()
		pool, err := preppool.NewPool(handlers, preppool.WithMetrics(reg))
		if err != nil {
			return err
		}
		job, err := pool.Register(preppool.JobSpec{
			Name: "scaled", RequiredRate: startRate,
			Exec:        dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, datasetSeed),
			Store:       store,
			DatasetSeed: datasetSeed,
		})
		if err != nil {
			return err
		}
		if autoscale {
			if err := job.EnableAutoscale(preppool.AutoscaleConfig{
				Overlap: preppool.OverlapSource(reg),
				Min:     minRate, Max: maxRate,
				Grow: 2, Shrink: 0.5,
				LowOverlap: 0.5, HighOverlap: 1.1,
			}); err != nil {
				return err
			}
		}

		// The preparer wrapper samples the post-boundary state: by the
		// time PrepareEpoch returns, the controller has ticked and the
		// rebalancer has acted on any demand change.
		keys := store.Keys()
		overlap := reg.Gauge("train.driver.prep_step_overlap")
		prep := func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
			out, err := job.PrepareEpoch(ctx, keys, epoch)
			if err != nil {
				return nil, err
			}
			t.AddRowf(mode, epoch, fmt.Sprintf("%.2f", overlap.Value()),
				float64(pool.Stats()[0].RequiredRate), job.Leases())
			return out, nil
		}
		cfgT := train.Config{
			Replicas: 2, Widths: []int{64, 16, 4}, Epochs: epochs,
			LearningRate: 0.05, PrefetchDepth: 1, Seed: 9, Metrics: reg,
		}
		if _, err := train.Run(context.Background(), cfgT,
			train.WithPreparer(prep, len(keys)),
			train.WithFeature(autoscaleFeature)); err != nil {
			return err
		}
		final := pool.Stats()[0].RequiredRate
		if autoscale {
			res.ScaledFinalRate = final
			snap := reg.Snapshot()
			res.ScaledUps = snap.Counters["preppool.job.scaled.autoscale_ups"]
			res.ScaledDowns = snap.Counters["preppool.job.scaled.autoscale_downs"]
		} else {
			res.StaticFinalRate = final
		}
		return job.Close()
	}

	if err := run(false); err != nil {
		return AutoscaleStudyResult{}, err
	}
	if err := run(true); err != nil {
		return AutoscaleStudyResult{}, err
	}
	return res, nil
}
