package experiments

import (
	"fmt"
	"math/rand"

	"trainbox/internal/dataprep"
	"trainbox/internal/imgproc"
	"trainbox/internal/nn"
	"trainbox/internal/report"
	"trainbox/internal/storage"
)

// Fig5Config sizes the augmentation-accuracy study. The experiment
// exercises the real pipeline kernels: training images are prepared with
// or without augmentation (random crop / mirror / Gaussian noise) every
// epoch, while held-out images are always prepared with input variation
// — the distribution shift augmentation exists to cover.
type Fig5Config struct {
	ImageSize     int // stored synthetic image edge
	CropSize      int // model input edge
	Classes       int
	TrainPerClass int
	TestPerClass  int
	Epochs        int
	PoolBlock     int // mean-pool block for the MLP features
	Hidden        int // hidden layer width
	LearningRate  float64
	NoiseStd      float64 // augmentation and test-time noise (8-bit counts)
	Seed          int64
}

// DefaultFig5Config returns the full-size study (used by the example and
// the benchmark); tests use a reduced configuration.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		ImageSize: 64, CropSize: 32, Classes: 3,
		TrainPerClass: 24, TestPerClass: 24, Epochs: 30,
		PoolBlock: 2, Hidden: 64, LearningRate: 0.1, NoiseStd: 8, Seed: 11,
	}
}

// Fig5Result carries per-epoch held-out accuracy for both arms.
type Fig5Result struct {
	Table *report.Table
	// FinalWith and FinalWithout are the last-epoch held-out accuracies;
	// the paper reports a 29.1-point gap on ResNet-50/Imagenet.
	FinalWith, FinalWithout float64
}

// Fig5 trains two identically initialized networks on the same stored
// JPEGs — one arm preparing data with on-line augmentation each epoch,
// one without — and evaluates both on a held-out set prepared with input
// variation. It reproduces Figure 5's shape: the augmented model reaches
// markedly higher held-out accuracy.
func Fig5(cfg Fig5Config) (Fig5Result, error) {
	if cfg.Classes < 2 || cfg.TrainPerClass < 1 || cfg.Epochs < 1 {
		return Fig5Result{}, fmt.Errorf("experiments: degenerate fig5 config %+v", cfg)
	}
	store := storage.NewStore(storage.DefaultSSDSpec())
	synth := imgproc.SynthConfig{Size: cfg.ImageSize, Quality: 90}
	nTrain := cfg.Classes * cfg.TrainPerClass
	nTest := cfg.Classes * cfg.TestPerClass
	for i := 0; i < nTrain+nTest; i++ {
		// Stripe-frequency classes: no crop-invariant shortcut exists, so
		// augmentation's value (phase/orientation coverage) is visible.
		img := imgproc.SynthesizeStriped(synth, cfg.Seed+int64(i), i%cfg.Classes)
		data, err := imgproc.EncodeJPEG(img, synth.Quality)
		if err != nil {
			return Fig5Result{}, err
		}
		if err := store.Put(storage.Object{
			Key: fmt.Sprintf("f5-%05d", i), Label: i % cfg.Classes, Data: data,
		}); err != nil {
			return Fig5Result{}, err
		}
	}
	keys := store.Keys()
	trainKeys, testKeys := keys[:nTrain], keys[nTrain:]

	augCfg := dataprep.ImageConfig{
		CropW: cfg.CropSize, CropH: cfg.CropSize,
		MirrorProb: 0.5, NoiseStd: cfg.NoiseStd, Augment: true,
	}
	plainCfg := augCfg
	plainCfg.Augment = false

	// Held-out set: prepared once with input variation (random crop,
	// mirror, noise) — the unseen-data distribution of Figure 5.
	testExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: augCfg}, 0, cfg.Seed+999)
	testBatch, err := testExec.PrepareBatch(store, testKeys, 0)
	if err != nil {
		return Fig5Result{}, err
	}
	testSamples := toSamples(testBatch, cfg.PoolBlock)

	featDim := featureDim(cfg.CropSize, cfg.PoolBlock)
	netWith := nn.NewMLP([]int{featDim, cfg.Hidden, cfg.Classes}, rand.New(rand.NewSource(cfg.Seed)))
	netWithout := nn.NewMLP([]int{featDim, cfg.Hidden, cfg.Classes}, rand.New(rand.NewSource(cfg.Seed)))

	augExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: augCfg}, 0, cfg.Seed)
	plainExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: plainCfg}, 0, cfg.Seed)

	t := report.NewTable("Figure 5 — held-out accuracy with and without augmentation",
		"epoch", "with augmentation", "w/o augmentation")
	var res Fig5Result
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		augBatch, err := augExec.PrepareBatch(store, trainKeys, epoch)
		if err != nil {
			return Fig5Result{}, err
		}
		plainBatch, err := plainExec.PrepareBatch(store, trainKeys, epoch)
		if err != nil {
			return Fig5Result{}, err
		}
		netWith.TrainEpoch(toSamples(augBatch, cfg.PoolBlock), 16, cfg.LearningRate)
		netWithout.TrainEpoch(toSamples(plainBatch, cfg.PoolBlock), 16, cfg.LearningRate)
		res.FinalWith = netWith.Accuracy(testSamples)
		res.FinalWithout = netWithout.Accuracy(testSamples)
		t.AddRowf(epoch, res.FinalWith, res.FinalWithout)
	}
	res.Table = t
	return res, nil
}

// featureDim returns the mean-pooled feature dimensionality (luminance
// only: the striped dataset is grayscale).
func featureDim(crop, block int) int {
	side := crop / block
	return side * side
}

// toSamples mean-pools the prepared tensors' first channel into compact
// spatially precise MLP features.
func toSamples(batch []dataprep.Prepared, block int) []nn.Sample {
	out := make([]nn.Sample, 0, len(batch))
	for _, p := range batch {
		ten := p.Image
		side := ten.W / block
		feat := make([]float64, side*side)
		for by := 0; by < side; by++ {
			for bx := 0; bx < side; bx++ {
				var sum float64
				for y := by * block; y < (by+1)*block; y++ {
					for x := bx * block; x < (bx+1)*block; x++ {
						sum += float64(ten.At(0, y, x))
					}
				}
				feat[by*side+bx] = sum / float64(block*block)
			}
		}
		out = append(out, nn.Sample{X: feat, Label: p.Label})
	}
	return out
}
