package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// TestStageRetriesTransientErrors: a stage with a retry budget must
// re-run items that fail with transient errors in place, deliver the
// full ordered output, and account every retry in its stats and metrics.
func TestStageRetriesTransientErrors(t *testing.T) {
	const items, failsPerItem = 4, 2
	var tries [items]atomic.Int64
	st := NewStage("flaky", 1, 1,
		func(_ context.Context, i int) (int, error) {
			if tries[i].Add(1) <= failsPerItem {
				return 0, faults.Transient(errors.New("blip"))
			}
			return i * 10, nil
		}, WithRetries(failsPerItem))
	pl, err := New("resilient", st)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	out, err := Drain[int](pl.WithMetrics(reg).Run(context.Background(), IndexSource(items)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != items {
		t.Fatalf("delivered %d items, want %d", len(out), items)
	}
	for i, v := range out {
		if v != i*10 {
			t.Errorf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
	if got := reg.Counter("pipeline.resilient.flaky.retries").Value(); got != items*failsPerItem {
		t.Errorf("retries counter = %d, want %d", got, items*failsPerItem)
	}
}

// TestStageRetryStatsExposed: StageStats must carry the retry count.
func TestStageRetryStatsExposed(t *testing.T) {
	var tries atomic.Int64
	st := NewStage("flaky", 1, 0,
		func(_ context.Context, i int) (int, error) {
			if tries.Add(1) == 1 {
				return 0, faults.Transient(errors.New("blip"))
			}
			return i, nil
		}, WithRetries(1))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	run := pl.Run(context.Background(), IndexSource(2))
	if _, err := Drain[int](run); err != nil {
		t.Fatal(err)
	}
	stats := run.Stats()
	if len(stats) != 1 || stats[0].Retries != 1 {
		t.Errorf("stats = %+v, want Retries = 1", stats)
	}
}

// TestStageRetryBudgetExhausted: an item that keeps failing past the
// budget must still fail the whole run with the item's own error.
func TestStageRetryBudgetExhausted(t *testing.T) {
	errBlip := faults.Transient(errors.New("still broken"))
	st := NewStage("doomed", 1, 0,
		func(_ context.Context, i int) (int, error) { return 0, errBlip },
		WithRetries(2))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](pl.Run(context.Background(), IndexSource(3))); !errors.Is(err, errBlip) {
		t.Errorf("err = %v, want %v", err, errBlip)
	}
}

// TestStageNonRetryableFailsFast: permanent errors must not consume the
// retry budget — the first-error-cancels contract is unchanged.
func TestStageNonRetryableFailsFast(t *testing.T) {
	errPermanent := errors.New("corrupt payload")
	var calls atomic.Int64
	st := NewStage("strict", 1, 0,
		func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			return 0, errPermanent
		}, WithRetries(5))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	run := pl.Run(context.Background(), IndexSource(4))
	if _, err := Drain[int](run); !errors.Is(err, errPermanent) {
		t.Fatalf("err = %v, want %v", err, errPermanent)
	}
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1 (no retries on permanent errors)", calls.Load())
	}
	if run.Stats()[0].Retries != 0 {
		t.Errorf("retries = %d, want 0", run.Stats()[0].Retries)
	}
}

// TestStageCustomRetryClassification: WithRetryableErrors replaces the
// default transient classification entirely.
func TestStageCustomRetryClassification(t *testing.T) {
	errSpecial := errors.New("special")
	var tries atomic.Int64
	st := NewStage("custom", 1, 0,
		func(_ context.Context, i int) (int, error) {
			if tries.Add(1) == 1 {
				return 0, errSpecial
			}
			return i, nil
		},
		WithRetries(1),
		WithRetryableErrors(func(err error) bool { return errors.Is(err, errSpecial) }))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](pl.Run(context.Background(), IndexSource(1))); err != nil {
		t.Fatalf("custom-retryable error not retried: %v", err)
	}

	// With the custom classifier, transient errors are no longer retryable.
	st2 := NewStage("custom2", 1, 0,
		func(_ context.Context, i int) (int, error) {
			return 0, faults.Transient(errors.New("blip"))
		},
		WithRetries(3),
		WithRetryableErrors(func(err error) bool { return errors.Is(err, errSpecial) }))
	pl2, err := New("p2", st2)
	if err != nil {
		t.Fatal(err)
	}
	run := pl2.Run(context.Background(), IndexSource(1))
	if _, err := Drain[int](run); err == nil {
		t.Fatal("transient error retried under a classifier that excludes it")
	}
	if run.Stats()[0].Retries != 0 {
		t.Errorf("retries = %d, want 0", run.Stats()[0].Retries)
	}
}

// TestStageTimeoutRescuesStalledItem: a per-item timeout turns a stalled
// invocation into a deadline error, which the default classification
// treats as retryable — the stall-rescue path end to end.
func TestStageTimeoutRescuesStalledItem(t *testing.T) {
	var tries atomic.Int64
	st := NewStage("stalls-once", 1, 0,
		func(ctx context.Context, i int) (int, error) {
			if tries.Add(1) == 1 {
				<-ctx.Done() // wedged until the per-item deadline fires
				return 0, ctx.Err()
			}
			return i + 100, nil
		},
		WithTimeout(10*time.Millisecond),
		WithRetries(1))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	run := pl.Run(context.Background(), IndexSource(1))
	out, err := Drain[int](run)
	if err != nil {
		t.Fatalf("stalled item not rescued: %v", err)
	}
	if len(out) != 1 || out[0] != 100 {
		t.Fatalf("out = %v", out)
	}
	if run.Stats()[0].Retries != 1 {
		t.Errorf("retries = %d, want 1", run.Stats()[0].Retries)
	}
}

// TestStageTimeoutWithoutRetriesFails: a timeout alone bounds latency
// but does not forgive — the run fails with the deadline error.
func TestStageTimeoutWithoutRetriesFails(t *testing.T) {
	st := NewStage("wedged", 1, 0,
		func(ctx context.Context, i int) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		}, WithTimeout(5*time.Millisecond))
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](pl.Run(context.Background(), IndexSource(1))); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestFirstErrorCancelsConcurrentInFlight: with many items in flight on
// a parallel stage, one item failing must cancel the shared context so
// every blocked sibling unwinds, and the run must report the original
// error — not the cancellations it caused — and leak no goroutines.
func TestFirstErrorCancelsConcurrentInFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	errBoom := errors.New("boom")
	st := NewStage("mixed", 4, 2,
		func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				time.Sleep(2 * time.Millisecond) // let siblings block first
				return 0, errBoom
			}
			<-ctx.Done() // in-flight items wait on cancellation
			return 0, ctx.Err()
		})
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](pl.Run(context.Background(), IndexSource(32))); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after cancelled run: %d running, started with %d", n, base)
	}
}

// TestStopWhileBlockedOnFullQueue: Stop must unwind a run whose stages
// are wedged on backpressure — bounded queues full, nobody consuming —
// without deadlocking, and release every goroutine.
func TestStopWhileBlockedOnFullQueue(t *testing.T) {
	base := runtime.NumGoroutine()
	var produced atomic.Int64
	st := NewStage("fast", 1, 1,
		func(_ context.Context, i int) (int, error) {
			produced.Add(1)
			return i, nil
		})
	pl, err := New("p", st)
	if err != nil {
		t.Fatal(err)
	}
	run := pl.Run(context.Background(), IndexSource(1000))
	// Wait until the stage has filled its queue and blocked: with depth 1
	// and an unread output channel at most a handful of items complete.
	deadline := time.Now().Add(5 * time.Second)
	for produced.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		run.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked on a backpressured run")
	}
	if p := produced.Load(); p >= 1000 {
		t.Errorf("backpressure absent: %d items ran with no consumer", p)
	}
	if err := run.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("stopped run Err = %v, want context.Canceled", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after Stop: %d running, started with %d", n, base)
	}
}
