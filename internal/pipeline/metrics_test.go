package pipeline

import (
	"context"
	"testing"
	"time"

	"trainbox/internal/metrics"
)

// TestRunWithMetrics: an attached registry must receive per-stage item
// counts, busy-time histograms, and queue-depth gauges; repeated runs
// accumulate into the same series.
func TestRunWithMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	double := NewStage("double", 2, 2, func(_ context.Context, v int) (int, error) {
		time.Sleep(time.Microsecond)
		return 2 * v, nil
	})
	pl, err := New("m", double)
	if err != nil {
		t.Fatal(err)
	}
	pl.WithMetrics(reg)

	for run := 0; run < 2; run++ {
		out, err := Drain[int](pl.Run(context.Background(), IndexSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 {
			t.Fatalf("run %d: %d outputs", run, len(out))
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.m.double.items"]; got != 10 {
		t.Errorf("items counter = %d, want 10 across two runs", got)
	}
	busy := snap.Histograms["pipeline.m.double.busy_ns"]
	if busy.Count != 10 || busy.P50 <= 0 {
		t.Errorf("busy histogram = %+v, want 10 positive observations", busy)
	}
	if _, ok := snap.Gauges["pipeline.m.double.queue_depth"]; !ok {
		t.Error("queue_depth gauge missing")
	}
}

// TestRunWithoutMetrics: a detached pipeline must register nothing.
func TestRunWithoutMetrics(t *testing.T) {
	id := NewStage("id", 1, 0, func(_ context.Context, v int) (int, error) { return v, nil })
	pl, err := New("bare", id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](pl.Run(context.Background(), IndexSource(3))); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert against a registry — the point is the run above
	// cannot panic with nil metric handles and pays no registry cost.
}

// TestStatsSetReport: the legacy StatsSet bridge must publish gauges
// idempotently.
func TestStatsSetReport(t *testing.T) {
	var set StatsSet
	set.Add([]StageStats{{Name: "s", ItemsIn: 4, ItemsOut: 4, Busy: 2 * time.Millisecond, QueueLen: 1, QueueCap: 2}})
	reg := metrics.NewRegistry()
	set.Report(reg, "exec")
	set.Report(reg, "exec") // idempotent for an unchanged set

	snap := reg.Snapshot()
	if got := snap.Gauges["exec.s.items_out"]; got != 4 {
		t.Errorf("items_out gauge = %v, want 4", got)
	}
	if got := snap.Gauges["exec.s.busy_ns"]; got != float64(2*time.Millisecond) {
		t.Errorf("busy_ns gauge = %v", got)
	}
	// Nil registry must be a no-op.
	set.Report(nil, "exec")
}
