package pipeline

import (
	"fmt"
	"sync"
	"time"

	"trainbox/internal/metrics"
)

// StageStats is one stage's counters for one run (or, via StatsSet, an
// accumulation across runs). Busy is the total wall time spent inside
// the stage function summed over workers; QueueLen/QueueCap are the
// output queue's occupancy at sampling time, the direct observable of
// the paper's stage-balance argument (a persistently full queue means
// the downstream stage is the bottleneck; a persistently empty one,
// the upstream).
type StageStats struct {
	Name        string
	Parallelism int
	ItemsIn     int64
	ItemsOut    int64
	// Retries counts in-place re-attempts of items that failed with a
	// retryable error (stages built with WithRetries).
	Retries  int64
	Busy     time.Duration
	QueueLen int
	QueueCap int
}

// String renders the stats for reports and profiling tools.
func (s StageStats) String() string {
	return fmt.Sprintf("%s: in=%d out=%d busy=%v queue=%d/%d ×%d",
		s.Name, s.ItemsIn, s.ItemsOut, s.Busy.Round(time.Microsecond),
		s.QueueLen, s.QueueCap, s.Parallelism)
}

// Stats samples per-stage counters for this run, in stage order. Safe
// to call while the run is in flight.
func (r *Run) Stats() []StageStats {
	out := make([]StageStats, len(r.stages))
	for i, sr := range r.stages {
		out[i] = StageStats{
			Name:        sr.spec.name,
			Parallelism: sr.spec.par,
			ItemsIn:     sr.itemsIn.Load(),
			ItemsOut:    sr.itemsOut.Load(),
			Retries:     sr.retries.Load(),
			Busy:        time.Duration(sr.busy.Load()),
			QueueLen:    len(sr.out),
			QueueCap:    cap(sr.out),
		}
	}
	return out
}

// StatsSet accumulates StageStats across runs, keyed by stage name —
// the hook a long-lived component (an executor serving many batches)
// uses to expose cumulative pipeline counters. Safe for concurrent use.
type StatsSet struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*StageStats
}

// Add merges one run's stats into the set.
func (s *StatsSet) Add(stats []StageStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byName == nil {
		s.byName = make(map[string]*StageStats)
	}
	for _, st := range stats {
		acc, ok := s.byName[st.Name]
		if !ok {
			cp := st
			s.byName[st.Name] = &cp
			s.order = append(s.order, st.Name)
			continue
		}
		acc.ItemsIn += st.ItemsIn
		acc.ItemsOut += st.ItemsOut
		acc.Retries += st.Retries
		acc.Busy += st.Busy
		acc.QueueLen = st.QueueLen
		acc.QueueCap = st.QueueCap
		acc.Parallelism = st.Parallelism
	}
}

// Report publishes the set's accumulated per-stage counters into the
// registry as gauges under "<prefix>.<stage>.{items_in,items_out,
// busy_ns,queue_depth}" — the bridge from the legacy StageStats surface
// onto the unified metrics layer for components that accumulate a
// StatsSet rather than attaching a registry to each run. Values are
// levels (set, not added), so repeated Report calls are idempotent for
// an unchanged set. A nil registry is a no-op.
func (s *StatsSet) Report(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	for _, st := range s.Snapshot() {
		p := prefix + "." + st.Name + "."
		reg.Gauge(p + "items_in").SetInt(st.ItemsIn)
		reg.Gauge(p + "items_out").SetInt(st.ItemsOut)
		reg.Gauge(p + "busy_ns").SetInt(int64(st.Busy))
		reg.Gauge(p + "queue_depth").SetInt(int64(st.QueueLen))
	}
}

// Snapshot returns the accumulated stats in first-seen stage order.
func (s *StatsSet) Snapshot() []StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageStats, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.byName[name])
	}
	return out
}
