// Package pipeline is the staged-pipeline runtime behind the functional
// data path: one reusable implementation of the staging machinery that
// the paper's Section II-B overlap argument rests on.
//
// The paper observes that a training step is a chain of serial
// operations — storage read → data preparation → transfer → computation
// → model synchronization — and that because "the data preparation of
// the next batch does not depend on the results of the current batch",
// the stages can run concurrently on different batches: stage i works on
// batch n while stage i+1 works on batch n-1. Throughput is then set by
// the slowest stage, not the sum, which is exactly why TrainBox balances
// per-stage capacity. This package gives the reproduction one concrete
// runtime for that idea instead of three divergent hand-rolled wirings:
//
//   - Stage: one typed transform with a parallelism degree — the
//     software analogue of replicating a preparation engine until the
//     stage keeps up with its neighbours (Section III-B's "batching,
//     software pipelining, and data partitioning").
//   - Bounded inter-stage queues: each stage's output queue has a fixed
//     depth, so a fast producer blocks instead of buffering unboundedly —
//     the double-buffering of Section II-B generalized to depth d, and
//     the mechanism that keeps memory use proportional to pipeline depth
//     rather than dataset size.
//   - Backpressure: when a downstream stage stalls, the stall propagates
//     upstream through the full queues; no stage races ahead of the
//     balance point, mirroring how the paper's PCIe/Ethernet fabrics cap
//     effective preparation rate.
//   - Cancellation: a context.Context threads through every stage; the
//     first error cancels the whole pipeline and all stages drain
//     cleanly, so a mid-epoch storage failure cannot leak goroutines.
//   - Buffer reuse: Pool wraps sync.Pool for sample/batch payloads so a
//     steady-state pipeline recycles buffers instead of allocating per
//     batch (FFCV-style page recycling, in miniature).
//   - Stats: per-stage items in/out, busy time, and queue occupancy,
//     the measurement hooks that make stage imbalance — the paper's
//     central diagnostic — observable at runtime.
//
// Ordering is preserved end to end: outputs leave the pipeline in
// source-emission order even through stages with parallelism > 1, which
// is what lets the deterministic-preparation tests assert bit-identical
// batches regardless of worker count.
//
// internal/dataprep builds its fetch→prepare executor and the
// next-batch Prefetcher on this runtime; internal/fpga dispatches
// device-centric prep jobs (NVMe read → preparation engine) and the
// prep-pool Cluster through it; internal/train composes
// prepare→extract→step as one pipeline for the end-to-end driver.
package pipeline
