package pipeline

import (
	"sync"
	"sync/atomic"
)

// Pool is a typed sync.Pool for sample/batch payload buffers: a
// steady-state pipeline cycles a bounded working set of buffers between
// a producing stage (Get) and the point where the payload dies (Put)
// instead of allocating per item. Counters make the reuse rate
// observable — News growing as fast as Gets means nothing is being
// recycled.
type Pool[T any] struct {
	pool sync.Pool
	gets atomic.Int64
	puts atomic.Int64
	news atomic.Int64
}

// NewPool creates a pool whose empty-pool misses are filled by newFn.
func NewPool[T any](newFn func() T) *Pool[T] {
	p := &Pool[T]{}
	p.pool.New = func() any {
		p.news.Add(1)
		return newFn()
	}
	return p
}

// Get returns a pooled value, or a fresh one from newFn on a miss.
// Callers must fully overwrite the value: pooled buffers carry stale
// contents by design.
func (p *Pool[T]) Get() T {
	p.gets.Add(1)
	return p.pool.Get().(T)
}

// Put recycles a value for a later Get. The caller must not touch v
// afterwards.
func (p *Pool[T]) Put(v T) {
	p.puts.Add(1)
	p.pool.Put(v)
}

// PoolStats are cumulative pool counters. Gets - News is the number of
// allocations the pool avoided.
type PoolStats struct {
	Gets int64
	Puts int64
	News int64
}

// Stats samples the counters.
func (p *Pool[T]) Stats() PoolStats {
	return PoolStats{Gets: p.gets.Load(), Puts: p.puts.Load(), News: p.news.Load()}
}
