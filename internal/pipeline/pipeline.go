package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// Stage is one transform in a pipeline: items enter, fn runs on up to
// parallelism workers, results leave through a bounded queue in the
// order the items entered. Build stages with NewStage, which adds type
// safety around the untyped runtime representation.
type Stage struct {
	name      string
	par       int
	depth     int
	fn        func(ctx context.Context, v any) (any, error)
	expand    func(ctx context.Context, v any) ([]any, error)
	echo      func() int
	timeout   time.Duration
	retries   int
	retryable func(error) bool
}

// renumbers reports whether the stage can change the item count, in
// which case its output gets a fresh dense sequence numbering so a
// downstream parallel stage can still restore a total order.
func (s *Stage) renumbers() bool { return s.expand != nil || s.echo != nil }

// StageOption configures optional per-stage resilience behavior.
type StageOption func(*Stage)

// WithTimeout bounds every fn invocation with its own deadline: the
// context handed to fn is cancelled after d, so a stalled item fails
// with a deadline error instead of wedging the stage. Combine with
// WithRetries to turn the stall into a retried attempt.
func WithTimeout(d time.Duration) StageOption {
	return func(s *Stage) { s.timeout = d }
}

// WithRetries re-runs fn up to n extra times on the same item when it
// fails with a retryable error (see WithRetryableErrors; the default
// classification is faults.IsTransient, which covers injected transient
// faults and per-item deadline expiries). Non-retryable errors — and
// retryable errors past the budget — still fail the whole run: the
// permanent-fault contract is unchanged.
func WithRetries(n int) StageOption {
	return func(s *Stage) {
		if n > 0 {
			s.retries = n
		}
	}
}

// WithRetryableErrors overrides the stage's retryable-error
// classification used by WithRetries.
func WithRetryableErrors(classify func(error) bool) StageOption {
	return func(s *Stage) {
		if classify != nil {
			s.retryable = classify
		}
	}
}

// WithEcho replays every result of the stage factor() times — Choi et
// al.'s data echoing: when preparation cannot keep up with the step
// rate, downstream consumes each prepared item several times instead of
// idling. factor is evaluated once per item, so a live factor (e.g. one
// derived from the train driver's prep/step overlap gauge) adapts
// replay to the currently observed imbalance; results < 1 are treated
// as 1 (echo off for that item).
//
// The SAME value is sent factor() times (no copies are made). If the
// pipeline has a discard hook (Pipeline.WithDiscard), it fires once per
// dropped replica — values that can be recycled exactly once must carry
// their own reference count (see train's echo stage for the pattern).
// An echoing stage renumbers its output sequence so downstream parallel
// stages still see a total order.
func WithEcho(factor func() int) StageOption {
	return func(s *Stage) {
		if factor != nil {
			s.echo = factor
		}
	}
}

// NewStage builds a typed stage. parallelism < 1 is treated as 1 (a
// serial stage); queueDepth < 0 as 0 (a rendezvous hand-off). fn must be
// safe for concurrent use when parallelism > 1. Returning an error from
// fn fails the whole run — the pipeline context is cancelled and every
// stage drains — unless stage options make the error retryable
// (WithRetries) or bound the item's latency first (WithTimeout).
func NewStage[In, Out any](name string, parallelism, queueDepth int, fn func(ctx context.Context, in In) (Out, error), opts ...StageOption) *Stage {
	if parallelism < 1 {
		parallelism = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	s := &Stage{
		name:  name,
		par:   parallelism,
		depth: queueDepth,
		fn: func(ctx context.Context, v any) (any, error) {
			in, ok := v.(In)
			if !ok {
				var want In
				return nil, fmt.Errorf("pipeline: stage %q: item is %T, want %T", name, v, want)
			}
			return fn(ctx, in)
		},
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.retryable == nil {
		s.retryable = faults.IsTransient
	}
	return s
}

// NewExpandStage builds a typed one-to-many stage: fn maps each input
// to zero or more outputs, emitted downstream in order. It is the
// building block for data echoing with per-replica payloads (each
// output can carry its own bookkeeping, unlike WithEcho which resends
// one value) and for batch-splitting stages. Expand stages are always
// serial (the emission order of a fan-out is only well-defined for one
// worker) and renumber their output sequence so downstream parallel
// stages still restore a total order.
//
// Ownership on cancellation: outputs fn has returned that the run drops
// before delivery are handed to the pipeline's discard hook
// (Pipeline.WithDiscard), exactly once each.
func NewExpandStage[In, Out any](name string, queueDepth int, fn func(ctx context.Context, in In) ([]Out, error), opts ...StageOption) *Stage {
	if queueDepth < 0 {
		queueDepth = 0
	}
	s := &Stage{
		name:  name,
		par:   1,
		depth: queueDepth,
		expand: func(ctx context.Context, v any) ([]any, error) {
			in, ok := v.(In)
			if !ok {
				var want In
				return nil, fmt.Errorf("pipeline: stage %q: item is %T, want %T", name, v, want)
			}
			outs, err := fn(ctx, in)
			if err != nil {
				return nil, err
			}
			vs := make([]any, len(outs))
			for i, o := range outs {
				vs[i] = o
			}
			return vs, nil
		},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.par = 1 // expansion emission order requires a serial stage
	if s.retryable == nil {
		s.retryable = faults.IsTransient
	}
	return s
}

// Name returns the stage's name.
func (s *Stage) Name() string { return s.name }

// Pipeline is a description of a staged data path. It can be run any
// number of times; each Run gets its own channels, goroutines, and
// counters. Attach a metrics registry with WithMetrics before running
// to stream per-stage telemetry into it.
type Pipeline struct {
	name    string
	stages  []*Stage
	reg     *metrics.Registry
	discard func(v any)
}

// WithMetrics attaches a registry: every subsequent Run reports
// per-stage items, busy-time quantiles, and queue depth under
// "pipeline.<pipeline>.<stage>.*". Metrics from repeated runs
// accumulate into the same series. A nil registry detaches (the
// default): unmetered runs pay no telemetry cost. Returns p for
// chaining.
func (p *Pipeline) WithMetrics(reg *metrics.Registry) *Pipeline {
	p.reg = reg
	return p
}

// WithDiscard installs a hook that receives every in-flight value a run
// drops instead of delivering: items stranded in stage queues when the
// run is cancelled or stopped, results a stage could not forward, and
// buffered output Stop throws away. Stages that recycle pooled buffers
// into their outputs use it to close the loop on cancellation — without
// it, a mid-run cancel leaks whatever was in flight.
//
// The hook may be called concurrently from several pipeline goroutines
// and must not block. It fires exactly once per dropped value, except
// that an echoing stage (WithEcho) drops the same value once per
// undelivered replica. Values fn consumed before failing are NOT
// discarded — a stage function owns its input once invoked and must
// clean up on its own error paths. A nil hook (the default) disables
// discard tracking at no cost. Returns p for chaining.
func (p *Pipeline) WithDiscard(fn func(v any)) *Pipeline {
	p.discard = fn
	return p
}

// New validates and assembles a pipeline from stages in order.
func New(name string, stages ...*Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: %q needs at least one stage", name)
	}
	seen := make(map[string]bool, len(stages))
	for i, s := range stages {
		if s == nil {
			return nil, fmt.Errorf("pipeline: %q: stage %d is nil", name, i)
		}
		if s.name == "" {
			return nil, fmt.Errorf("pipeline: %q: stage %d has no name", name, i)
		}
		if seen[s.name] {
			return nil, fmt.Errorf("pipeline: %q: duplicate stage name %q", name, s.name)
		}
		seen[s.name] = true
	}
	return &Pipeline{name: name, stages: stages}, nil
}

// Name returns the pipeline's name.
func (p *Pipeline) Name() string { return p.name }

// Source feeds items into a running pipeline by calling emit once per
// item. emit blocks while the first stage is busy (backpressure) and
// returns the context error once the run is cancelled, at which point
// the source should stop. A non-nil return fails the run.
type Source func(ctx context.Context, emit func(v any) error) error

// IndexSource emits the integers 0..n-1 — the usual driver for batch
// index or epoch schedules.
func IndexSource(n int) Source {
	return func(ctx context.Context, emit func(v any) error) error {
		for i := 0; i < n; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}
}

// RangeSource emits the integers from..to-1 — IndexSource with a
// starting offset, the driver for resuming an epoch schedule after a
// checkpoint restore.
func RangeSource(from, to int) Source {
	return func(ctx context.Context, emit func(v any) error) error {
		for i := from; i < to; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return nil
	}
}

// SliceSource emits each element of items in order.
func SliceSource[T any](items []T) Source {
	return func(ctx context.Context, emit func(v any) error) error {
		for _, it := range items {
			if err := emit(it); err != nil {
				return err
			}
		}
		return nil
	}
}

// item is the envelope moved between stages; seq is the source emission
// index, used to restore order after a parallel stage.
type item struct {
	seq int64
	v   any
}

// stageRun instruments one stage for one run. The m* handles are
// registry metrics resolved once at Run time (nil when the pipeline has
// no registry attached — every call on them is then a no-op).
type stageRun struct {
	spec     *Stage
	out      chan item
	itemsIn  atomic.Int64
	itemsOut atomic.Int64
	busy     atomic.Int64 // nanoseconds inside fn
	retries  atomic.Int64 // retryable failures re-attempted in place

	mItems   *metrics.Counter   // items completed by fn
	mBusy    *metrics.Histogram // per-item ns inside fn
	mQueue   *metrics.Gauge     // output queue occupancy at last enqueue
	mRetries *metrics.Counter   // in-place item retries
}

// Run is one execution of a pipeline over one source. Consume Out()
// until it closes, then check Err(); or call Stop to cancel early.
type Run struct {
	name     string
	ctx      context.Context
	cancel   context.CancelFunc
	stages   []*stageRun
	srcOut   chan item
	final    chan any
	wg       sync.WaitGroup
	complete atomic.Bool

	discardFn func(v any)
	scavOnce  sync.Once

	errOnce  sync.Once
	mu       sync.Mutex
	firstErr error
}

// discard hands a dropped value to the pipeline's discard hook.
func (r *Run) discard(v any) {
	if r.discardFn != nil {
		r.discardFn(v)
	}
}

// scavenge empties every (closed) channel of a finished run through the
// discard hook — the items stranded in stage queues when stages exited
// early. Must only run after wg.Wait, when all channels are closed.
func (r *Run) scavenge() {
	r.scavOnce.Do(func() {
		if r.discardFn == nil {
			return
		}
		for it := range r.srcOut {
			r.discard(it.v)
		}
		for _, sr := range r.stages {
			for it := range sr.out {
				r.discard(it.v)
			}
		}
		for v := range r.final {
			r.discard(v)
		}
	})
}

// Run starts the pipeline over the source. The returned Run owns all
// goroutines it spawned; they exit once the source is exhausted, an
// error cancels the run, or ctx is cancelled.
func (p *Pipeline) Run(ctx context.Context, src Source) *Run {
	rctx, cancel := context.WithCancel(ctx)
	r := &Run{name: p.name, ctx: rctx, cancel: cancel, final: make(chan any), discardFn: p.discard}

	srcOut := make(chan item)
	r.srcOut = srcOut
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(srcOut)
		var seq int64
		emit := func(v any) error {
			select {
			case srcOut <- item{seq: seq, v: v}:
				seq++
				return nil
			case <-rctx.Done():
				return rctx.Err()
			}
		}
		if err := src(rctx, emit); err != nil && rctx.Err() == nil {
			r.fail(err)
		}
	}()

	in := srcOut
	for _, s := range p.stages {
		sr := &stageRun{spec: s, out: make(chan item, s.depth)}
		if p.reg != nil {
			prefix := "pipeline." + p.name + "." + s.name + "."
			sr.mItems = p.reg.Counter(prefix + "items")
			sr.mBusy = p.reg.Histogram(prefix + "busy_ns")
			sr.mQueue = p.reg.Gauge(prefix + "queue_depth")
			sr.mRetries = p.reg.Counter(prefix + "retries")
		}
		r.stages = append(r.stages, sr)
		r.startStage(rctx, sr, in)
		in = sr.out
	}

	// Strip envelopes from the last stage into the public output channel.
	last := in
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(r.final)
		for it := range last {
			select {
			case r.final <- it.v:
			case <-rctx.Done():
				r.discard(it.v)
				for it := range last { // drain cancelled run
					r.discard(it.v)
				}
				return
			}
		}
		if rctx.Err() == nil {
			r.complete.Store(true)
		}
	}()
	return r
}

// emitStage forwards one applied result downstream, replaying it per
// the stage's echo factor. Stages that can change the item count
// (echo/expand) renumber their output through outSeq so downstream
// order stays total. Returns false once the run is cancelled; the
// current value (and any unsent replicas) go to the discard hook.
func (r *Run) emitStage(ctx context.Context, sr *stageRun, it item, outSeq *int64) bool {
	n := 1
	if f := sr.spec.echo; f != nil {
		if n = f(); n < 1 {
			n = 1
		}
	}
	for i := 0; i < n; i++ {
		out := it
		if sr.spec.renumbers() {
			out = item{seq: *outSeq, v: it.v}
			*outSeq++
		}
		select {
		case sr.out <- out:
			sr.itemsOut.Add(1)
			sr.mQueue.SetInt(int64(len(sr.out)))
		case <-ctx.Done():
			for ; i < n; i++ { // this replica and the rest are dropped
				r.discard(it.v)
			}
			return false
		}
	}
	return true
}

func (r *Run) startStage(ctx context.Context, sr *stageRun, in <-chan item) {
	// apply runs the stage function (plain or expanding) on one item
	// with the stage's per-item timeout/retry envelope. Exactly one of
	// the returned value/slice is meaningful, matching sr.spec.expand.
	apply := func(it item) (any, []any, bool) {
		sr.itemsIn.Add(1)
		for attempt := 0; ; attempt++ {
			ictx := ctx
			var cancelItem context.CancelFunc
			if sr.spec.timeout > 0 {
				ictx, cancelItem = context.WithTimeout(ctx, sr.spec.timeout)
			}
			start := time.Now()
			var (
				v   any
				vs  []any
				err error
			)
			if sr.spec.expand != nil {
				vs, err = sr.spec.expand(ictx, it.v)
			} else {
				v, err = sr.spec.fn(ictx, it.v)
			}
			elapsed := time.Since(start)
			if cancelItem != nil {
				cancelItem()
			}
			sr.busy.Add(int64(elapsed))
			sr.mItems.Inc()
			sr.mBusy.ObserveDuration(elapsed)
			if err == nil {
				return v, vs, true
			}
			// Transient faults re-enter the work loop while the budget
			// lasts; permanent ones (or a cancelled run) still fail the
			// whole pipeline.
			if attempt < sr.spec.retries && ctx.Err() == nil && sr.spec.retryable(err) {
				sr.retries.Add(1)
				sr.mRetries.Inc()
				continue
			}
			r.fail(err)
			return nil, nil, false
		}
	}

	if sr.spec.par == 1 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer close(sr.out)
			var outSeq int64
			for it := range in {
				v, vs, ok := apply(it)
				if !ok {
					return
				}
				if sr.spec.expand == nil {
					if !r.emitStage(ctx, sr, item{seq: it.seq, v: v}, &outSeq) {
						return
					}
					continue
				}
				for i, ev := range vs {
					if !r.emitStage(ctx, sr, item{seq: it.seq, v: ev}, &outSeq) {
						for _, rest := range vs[i+1:] {
							r.discard(rest)
						}
						return
					}
				}
			}
		}()
		return
	}

	// Parallel stage: workers fan out, a reorderer restores source order.
	// Out-of-orderness is bounded by the worker count, so the pending map
	// never holds more than par items.
	results := make(chan item)
	var workers sync.WaitGroup
	for w := 0; w < sr.spec.par; w++ {
		workers.Add(1)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer workers.Done()
			for it := range in {
				v, _, ok := apply(it)
				if !ok {
					return
				}
				select {
				case results <- item{seq: it.seq, v: v}:
				case <-ctx.Done():
					r.discard(v)
					return
				}
			}
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		workers.Wait()
		close(results)
	}()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(sr.out)
		pending := make(map[int64]any, sr.spec.par)
		defer func() { // seq gaps from failed workers strand entries here
			for _, v := range pending {
				r.discard(v)
			}
		}()
		var next, outSeq int64
		for it := range results {
			pending[it.seq] = it.v
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !r.emitStage(ctx, sr, item{seq: next, v: v}, &outSeq) {
					for it := range results { // drain cancelled run
						r.discard(it.v)
					}
					return
				}
				next++
			}
		}
	}()
}

func (r *Run) fail(err error) {
	r.errOnce.Do(func() {
		r.mu.Lock()
		r.firstErr = err
		r.mu.Unlock()
		r.cancel()
	})
}

// Out is the ordered output of the last stage. It closes when the run
// completes, fails, or is stopped; check Err() afterwards.
func (r *Run) Out() <-chan any { return r.final }

// Err returns the first stage or source error, the cancellation cause
// if the run was cancelled before completing, or nil if the run
// completed (or is still in flight).
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr != nil {
		return r.firstErr
	}
	if r.complete.Load() {
		return nil
	}
	return r.ctx.Err()
}

// Wait blocks until every pipeline goroutine has exited and returns
// Err(). Out() must already be fully consumed (or the run cancelled),
// otherwise Wait deadlocks on the backpressured output.
func (r *Run) Wait() error {
	r.wg.Wait()
	r.cancel() // release the derived context; Err() is already latched
	r.scavenge()
	return r.Err()
}

// Stop cancels the run, discards any buffered output (through the
// discard hook, when one is attached), and waits for all goroutines to
// exit. It is safe to call multiple times and after completion.
func (r *Run) Stop() {
	r.cancel()
	for v := range r.final { // discard buffered output
		r.discard(v)
	}
	r.wg.Wait()
	r.scavenge()
}

// Drain consumes the run to completion, returning the ordered outputs
// asserted to T. It waits for all goroutines to exit before returning.
// On error the partial results Drain had already collected are dropped
// — routed through the run's discard hook, so an attached owner still
// reclaims every delivered-then-abandoned value.
func Drain[T any](r *Run) ([]T, error) {
	out := make([]T, 0, 16)
	fail := func(err error) ([]T, error) {
		for _, t := range out {
			r.discard(t)
		}
		return nil, err
	}
	for v := range r.Out() {
		t, ok := v.(T)
		if !ok {
			r.Stop()
			var want T
			return fail(fmt.Errorf("pipeline: %s: output is %T, want %T", r.name, v, want))
		}
		out = append(out, t)
	}
	if err := r.Wait(); err != nil {
		return fail(err)
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on its own goroutine and
// waits for all of them — the pipeline's fan-out/join primitive for
// fixed-width parallel sections such as per-replica compute. The first
// error cancels the shared context handed to the remaining calls, and
// is returned after the join.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		once  sync.Once
		first error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(fctx, i); err != nil {
				once.Do(func() {
					first = err
					cancel()
				})
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}
