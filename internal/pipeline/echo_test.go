package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trainbox/internal/memframe"
)

// TestExpandStageFanOut: an expand stage emits every returned element
// as its own downstream item, in order, with a fresh dense sequence.
func TestExpandStageFanOut(t *testing.T) {
	expand := NewExpandStage("expand", 2, func(_ context.Context, n int) ([]string, error) {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%d/%d", n, i)
		}
		return out, nil
	})
	double := NewStage("double", 4, 2, func(_ context.Context, s string) (string, error) {
		return s + "!", nil
	})
	p, err := New("fanout", expand, double)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain[string](p.Run(context.Background(), SliceSource([]int{0, 2, 1, 3})))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2/0!", "2/1!", "1/0!", "3/0!", "3/1!", "3/2!"}
	if len(got) != len(want) {
		t.Fatalf("got %d items %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestExpandStageError: an error from the expand function fails the
// whole run, same as a plain stage.
func TestExpandStageError(t *testing.T) {
	boom := fmt.Errorf("boom")
	expand := NewExpandStage("expand", 0, func(_ context.Context, n int) ([]int, error) {
		if n == 3 {
			return nil, boom
		}
		return []int{n}, nil
	})
	p, err := New("fail", expand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](p.Run(context.Background(), IndexSource(8))); err == nil {
		t.Fatal("expand error did not fail the run")
	}
}

// TestWithEchoReplays: WithEcho(k) emits each result k times, on serial
// and parallel stages, and a downstream parallel stage still sees a
// total order.
func TestWithEchoReplays(t *testing.T) {
	for _, par := range []int{1, 4} {
		echoed := NewStage("echoed", par, 2, func(_ context.Context, n int) (int, error) {
			return n * 10, nil
		}, WithEcho(func() int { return 3 }))
		after := NewStage("after", 4, 2, func(_ context.Context, n int) (int, error) {
			return n + 1, nil
		})
		p, err := New("echo", echoed, after)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain[int](p.Run(context.Background(), IndexSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 12 {
			t.Fatalf("par=%d: got %d items, want 12", par, len(got))
		}
		for i, v := range got {
			want := (i/3)*10 + 1
			if v != want {
				t.Fatalf("par=%d: item %d = %d, want %d (all: %v)", par, i, v, want, got)
			}
		}
	}
}

// TestWithEchoFactorClamped: factors below 1 mean "echo off for that
// item", not "drop it".
func TestWithEchoFactorClamped(t *testing.T) {
	st := NewStage("id", 1, 0, func(_ context.Context, n int) (int, error) {
		return n, nil
	}, WithEcho(func() int { return 0 }))
	p, err := New("clamp", st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain[int](p.Run(context.Background(), IndexSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
}

// TestDiscardAccountsEveryValue: across many stop points, every value a
// stage produced is either delivered or discarded — exactly once.
func TestDiscardAccountsEveryValue(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var produced, discarded atomic.Int64
		delivered := 0
		slow := NewStage("slow", 2, 2, func(ctx context.Context, n int) (int, error) {
			produced.Add(1)
			select {
			case <-time.After(time.Duration(n%3) * time.Millisecond):
			case <-ctx.Done():
			}
			return n, nil
		})
		pass := NewStage("pass", 1, 2, func(_ context.Context, n int) (int, error) {
			return n, nil
		})
		p, err := New("acct", slow, pass)
		if err != nil {
			t.Fatal(err)
		}
		p.WithDiscard(func(any) { discarded.Add(1) })
		r := p.Run(context.Background(), IndexSource(50))
		for v := range r.Out() {
			_ = v
			delivered++
			if delivered > trial {
				break
			}
		}
		r.Stop()
		// The pass stage re-emits what it consumes, so count produced
		// values once at the slow stage: every one of them must be
		// delivered by the run or discarded... but pass's copies are the
		// same int values; accounting holds per stage output. Total
		// sent-downstream values = produced (slow) + consumed-by-pass;
		// instead assert the conservation law the hook guarantees:
		// nothing both delivered and discarded, nothing lost.
		got := int64(delivered) + discarded.Load()
		// Each value slow produces is forwarded through pass, so a value
		// dropped between the stages and its pass-stage twin can both be
		// discarded; got can exceed produced but never undershoot it.
		if got < produced.Load() {
			t.Fatalf("trial %d: produced %d, delivered %d + discarded %d — values lost",
				trial, produced.Load(), delivered, discarded.Load())
		}
	}
}

// refBatch is the echo payload pattern for pooled buffers: one buffer
// shared by all replicas, recycled exactly once when the last replica
// is either consumed or discarded.
type refBatch struct {
	buf     []float32
	pending *atomic.Int32
}

func (b refBatch) done(pool *memframe.Pool[float32]) {
	if b.pending.Add(-1) == 0 {
		pool.Put(b.buf)
	}
}

// TestChaosEchoCancelNoPooledLeak is the ISSUE's chaos test: cancel the
// run mid-epoch while replayed batches are in flight, at every possible
// consumption point, and assert the memframe pool balance sheet closes
// (every Get matched by a Put — no pooled buffer leaks).
func TestChaosEchoCancelNoPooledLeak(t *testing.T) {
	const factor = 3
	for trial := 0; trial < 40; trial++ {
		pool := memframe.NewPool[float32]()
		prep := NewStage("prepare", 1, 2, func(_ context.Context, n int) ([]float32, error) {
			buf := pool.Get(256)
			for i := range buf {
				buf[i] = float32(n)
			}
			return buf, nil
		})
		echo := NewExpandStage("echo", 1, func(_ context.Context, buf []float32) ([]refBatch, error) {
			var pending atomic.Int32
			pending.Store(factor)
			out := make([]refBatch, factor)
			for i := range out {
				out[i] = refBatch{buf: buf, pending: &pending}
			}
			return out, nil
		})
		var stepped atomic.Int64
		step := NewStage("step", 1, 1, func(_ context.Context, b refBatch) (int, error) {
			stepped.Add(1)
			v := int(b.buf[0]) // read before releasing the replica
			b.done(pool)
			return v, nil
		})
		p, err := New("chaos-echo", prep, echo, step)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		p.WithDiscard(func(v any) {
			switch b := v.(type) {
			case refBatch:
				b.done(pool)
			case []float32:
				pool.Put(b) // dropped before the echo stage split it
			}
		})
		r := p.Run(context.Background(), IndexSource(64))
		// Consume a trial-dependent number of outputs, then cancel with
		// replicas of the current batch still undelivered.
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			for range r.Out() {
				seen++
				if seen > trial {
					return
				}
			}
		}()
		wg.Wait()
		r.Stop()
		st := pool.Stats()
		if st.Gets != st.Puts {
			t.Fatalf("trial %d: pooled buffers leaked: Gets=%d Puts=%d (News=%d Drops=%d, stepped=%d)",
				trial, st.Gets, st.Puts, st.News, st.Drops, stepped.Load())
		}
	}
}

// TestDiscardNotCalledWhenRunCompletes: a clean run never discards.
func TestDiscardNotCalledWhenRunCompletes(t *testing.T) {
	var discarded atomic.Int64
	st := NewStage("id", 2, 2, func(_ context.Context, n int) (int, error) { return n, nil })
	p, err := New("clean", st)
	if err != nil {
		t.Fatal(err)
	}
	p.WithDiscard(func(any) { discarded.Add(1) })
	got, err := Drain[int](p.Run(context.Background(), IndexSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("got %d items, want 32", len(got))
	}
	if discarded.Load() != 0 {
		t.Fatalf("clean run discarded %d values", discarded.Load())
	}
}
