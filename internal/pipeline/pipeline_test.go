package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count drops back to at
// most want, failing the test if it never does — the leak check for
// cancellation paths.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, want ≤ %d", runtime.NumGoroutine(), want)
}

func TestSingleStageOrdering(t *testing.T) {
	double := NewStage("double", 1, 2, func(_ context.Context, v int) (int, error) {
		return 2 * v, nil
	})
	p, err := New("test", double)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain[int](p.Run(context.Background(), IndexSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("got %d items, want 100", len(out))
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

// TestParallelStagePreservesOrder is the determinism property: a stage
// with many workers and adversarial per-item delays must still deliver
// outputs in source order.
func TestParallelStagePreservesOrder(t *testing.T) {
	jitter := NewStage("jitter", 8, 4, func(_ context.Context, v int) (int, error) {
		// Earlier items sleep longer, maximizing reorder pressure.
		time.Sleep(time.Duration((v%7)*97) * time.Microsecond)
		return v, nil
	})
	square := NewStage("square", 4, 2, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	})
	p, err := New("test", jitter, square)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain[int](p.Run(context.Background(), IndexSource(200)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d — parallel stage broke ordering", i, v, i*i)
		}
	}
}

// TestBackpressureBound: with a stalled consumer, the number of items a
// stage admits is bounded by its queue depth plus its in-flight workers
// — the pipeline cannot buffer unboundedly.
func TestBackpressureBound(t *testing.T) {
	var admitted atomic.Int64
	const depth = 3
	st := NewStage("count", 1, depth, func(_ context.Context, v int) (int, error) {
		admitted.Add(1)
		return v, nil
	})
	p, err := New("test", st)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Run(context.Background(), IndexSource(1000))
	// Never read run.Out(); let the pipeline push to its bound.
	time.Sleep(100 * time.Millisecond)
	got := admitted.Load()
	// 1 in the worker's hand + depth in the queue + 1 blocked on the
	// stripper's unbuffered hand-off.
	if max := int64(depth + 2); got > max {
		t.Errorf("stalled pipeline admitted %d items, want ≤ %d", got, max)
	}
	run.Stop()
	if got := admitted.Load(); got > depth+2 {
		t.Errorf("after stop: admitted %d items", got)
	}
}

func TestFirstErrorCancelsRun(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom")
	var after atomic.Int64
	fail := NewStage("fail", 2, 1, func(_ context.Context, v int) (int, error) {
		if v == 10 {
			return 0, boom
		}
		if v > 10 {
			after.Add(1)
		}
		return v, nil
	})
	slow := NewStage("slow", 1, 1, func(_ context.Context, v int) (int, error) {
		time.Sleep(time.Millisecond)
		return v, nil
	})
	p, err := New("test", fail, slow)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Run(context.Background(), IndexSource(10_000))
	if _, err := Drain[int](run); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The error cancelled the source long before 10k items.
	if n := after.Load(); n > 100 {
		t.Errorf("stage processed %d items after the failure point", n)
	}
	waitForGoroutines(t, base)
}

func TestSourceErrorFailsRun(t *testing.T) {
	boom := errors.New("source boom")
	src := func(ctx context.Context, emit func(v any) error) error {
		if err := emit(1); err != nil {
			return err
		}
		return boom
	}
	id := NewStage("id", 1, 1, func(_ context.Context, v int) (int, error) { return v, nil })
	p, err := New("test", id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[int](p.Run(context.Background(), src)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestParentContextCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	slow := NewStage("slow", 2, 2, func(ctx context.Context, v int) (int, error) {
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return v, nil
	})
	p, err := New("test", slow)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Run(ctx, IndexSource(1000))
	<-run.Out() // at least one item flows
	cancel()
	run.Stop()
	if err := run.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, base)
}

func TestStopIsIdempotentAndLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	id := NewStage("id", 4, 4, func(_ context.Context, v int) (int, error) { return v, nil })
	p, err := New("test", id)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Run(context.Background(), IndexSource(100))
	run.Stop()
	run.Stop()
	waitForGoroutines(t, base)

	// Stop after normal completion is also fine.
	run2 := p.Run(context.Background(), IndexSource(5))
	if out, err := Drain[int](run2); err != nil || len(out) != 5 {
		t.Fatalf("drain: %v (%d items)", err, len(out))
	}
	run2.Stop()
	if err := run2.Err(); err != nil {
		t.Fatalf("completed run reports error after Stop: %v", err)
	}
	waitForGoroutines(t, base)
}

func TestStageTypeMismatch(t *testing.T) {
	str := NewStage("str", 1, 0, func(_ context.Context, v string) (string, error) { return v, nil })
	p, err := New("test", str)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain[string](p.Run(context.Background(), IndexSource(3))); err == nil {
		t.Fatal("int fed to a string stage was accepted")
	}
}

func TestNewValidation(t *testing.T) {
	id := NewStage("id", 1, 0, func(_ context.Context, v int) (int, error) { return v, nil })
	if _, err := New("empty"); err == nil {
		t.Error("pipeline with no stages accepted")
	}
	if _, err := New("nil", id, nil); err == nil {
		t.Error("nil stage accepted")
	}
	unnamed := NewStage("", 1, 0, func(_ context.Context, v int) (int, error) { return v, nil })
	if _, err := New("unnamed", unnamed); err == nil {
		t.Error("unnamed stage accepted")
	}
	if _, err := New("dup", id, id); err == nil {
		t.Error("duplicate stage name accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	busyFor := 2 * time.Millisecond
	work := NewStage("work", 2, 3, func(_ context.Context, v int) (int, error) {
		time.Sleep(busyFor)
		return v, nil
	})
	p, err := New("test", work)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Run(context.Background(), IndexSource(10))
	if _, err := Drain[int](run); err != nil {
		t.Fatal(err)
	}
	stats := run.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats for %d stages, want 1", len(stats))
	}
	s := stats[0]
	if s.Name != "work" || s.Parallelism != 2 || s.QueueCap != 3 {
		t.Errorf("stats identity wrong: %+v", s)
	}
	if s.ItemsIn != 10 || s.ItemsOut != 10 {
		t.Errorf("items in/out = %d/%d, want 10/10", s.ItemsIn, s.ItemsOut)
	}
	if s.Busy < 10*busyFor {
		t.Errorf("busy = %v, want ≥ %v", s.Busy, 10*busyFor)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestStatsSetAccumulates(t *testing.T) {
	var set StatsSet
	set.Add([]StageStats{{Name: "a", ItemsIn: 3, ItemsOut: 3, Busy: time.Second}})
	set.Add([]StageStats{{Name: "a", ItemsIn: 2, ItemsOut: 1, Busy: time.Second}, {Name: "b", ItemsIn: 7}})
	snap := set.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].ItemsIn != 5 || snap[0].ItemsOut != 4 || snap[0].Busy != 2*time.Second {
		t.Errorf("accumulated a = %+v", snap[0])
	}
	if snap[1].ItemsIn != 7 {
		t.Errorf("accumulated b = %+v", snap[1])
	}
}

func TestSliceSource(t *testing.T) {
	upper := NewStage("upper", 1, 1, func(_ context.Context, v string) (string, error) {
		return v + "!", nil
	})
	p, err := New("test", upper)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain[string](p.Run(context.Background(), SliceSource([]string{"a", "b"})))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != "a!" || out[1] != "b!" {
		t.Fatalf("out = %v", out)
	}
}

func TestRangeSource(t *testing.T) {
	ident := NewStage("ident", 1, 1, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	p, err := New("test", ident)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Drain[int](p.Run(context.Background(), RangeSource(3, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[0] != 3 || out[3] != 6 {
		t.Fatalf("out = %v, want [3 4 5 6]", out)
	}
	// Empty and inverted ranges emit nothing.
	out, err = Drain[int](p.Run(context.Background(), RangeSource(5, 5)))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty range: out=%v err=%v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 100, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}

	boom := errors.New("boom")
	var cancelled atomic.Int64
	err := ForEach(context.Background(), 50, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return nil
		case <-time.After(2 * time.Second):
			return fmt.Errorf("worker %d was not cancelled", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if cancelled.Load() != 49 {
		t.Errorf("cancelled workers = %d, want 49", cancelled.Load())
	}

	if err := ForEach(context.Background(), 0, func(context.Context, int) error { return nil }); err != nil {
		t.Errorf("n=0: err = %v", err)
	}
}

// TestPoolReuse: Put-then-Get cycles must recycle buffers. The check is
// statistical (sync.Pool may drop items, and does so deliberately under
// the race detector), so assert substantial — not total — reuse.
func TestPoolReuse(t *testing.T) {
	pool := NewPool(func() []byte { return make([]byte, 1024) })
	buf := pool.Get()
	if len(buf) != 1024 {
		t.Fatalf("fresh buffer len = %d", len(buf))
	}
	const cycles = 1000
	for i := 0; i < cycles; i++ {
		b := pool.Get()
		b[0] = byte(i)
		pool.Put(b)
	}
	s := pool.Stats()
	if s.Gets != cycles+1 || s.Puts != cycles {
		t.Fatalf("stats = %+v", s)
	}
	if s.News >= cycles {
		t.Errorf("pool allocated %d times over %d cycles — no reuse", s.News, cycles)
	}
}

// TestPipelineReusableAcrossRuns: one Pipeline description can back
// many runs with independent counters.
func TestPipelineReusableAcrossRuns(t *testing.T) {
	id := NewStage("id", 2, 1, func(_ context.Context, v int) (int, error) { return v, nil })
	p, err := New("test", id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		run := p.Run(context.Background(), IndexSource(4))
		out, err := Drain[int](run)
		if err != nil || len(out) != 4 {
			t.Fatalf("run %d: %v (%d items)", i, err, len(out))
		}
		if s := run.Stats()[0]; s.ItemsIn != 4 {
			t.Fatalf("run %d saw %d items — counters shared across runs", i, s.ItemsIn)
		}
	}
}
