package collective

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"trainbox/internal/metrics"
)

// randGrads builds a deterministic rank set of random vectors.
func randGrads(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	grads := make([][]float64, n)
	for r := range grads {
		grads[r] = make([]float64, length)
		for i := range grads[r] {
			grads[r][i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return grads
}

func cloneGrads(grads [][]float64) [][]float64 {
	out := make([][]float64, len(grads))
	for r := range grads {
		out[r] = append([]float64(nil), grads[r]...)
	}
	return out
}

// requireBitIdentical fails unless got and want match to the last bit.
func requireBitIdentical(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	for r := range want {
		for i := range want[r] {
			if math.Float64bits(got[r][i]) != math.Float64bits(want[r][i]) {
				t.Fatalf("%s: rank %d idx %d: got %v (%#x) want %v (%#x)",
					label, r, i, got[r][i], math.Float64bits(got[r][i]),
					want[r][i], math.Float64bits(want[r][i]))
			}
		}
	}
}

// TestReducerBitIdentityOracle is the cross-backend contract: every
// Reducer produces output bit-identical to the deprecated RingAllReduce
// on the same inputs, across rank counts (including non-powers-of-two,
// which exercise halving-doubling's pre/post fallback), vector lengths
// (including lengths below the rank/shard counts), seeds, and PS shard
// counts.
func TestReducerBitIdentityOracle(t *testing.T) {
	backends := func() map[string]Reducer {
		m := map[string]Reducer{}
		for _, name := range []string{"ring", "tree", "halving"} {
			r, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m[name] = r
		}
		for _, shards := range []int{1, 3, 8} {
			r, err := NewParamServer(WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			m["ps-"+string(rune('0'+shards))] = r
		}
		return m
	}()

	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for _, length := range []int{1, 3, 64, 1000} {
			for seed := int64(1); seed <= 3; seed++ {
				base := randGrads(n, length, seed*7919+int64(n*1000+length))
				want := cloneGrads(base)
				if err := RingAllReduce(want); err != nil {
					t.Fatal(err)
				}
				for label, r := range backends {
					got := cloneGrads(base)
					if err := r.Reduce(ctx, got); err != nil {
						t.Fatalf("%s n=%d len=%d seed=%d: %v", label, n, length, seed, err)
					}
					requireBitIdentical(t, got, want, label)
				}
			}
		}
	}
}

// TestLegacyTreeBitsDiffer documents why the canonical order exists:
// the deprecated TreeAllReduce sums partial aggregates, so its bits can
// drift from the ring's — the new backends must not.
func TestLegacyTreeBitsDiffer(t *testing.T) {
	base := randGrads(8, 1000, 42)
	ring := cloneGrads(base)
	if err := RingAllReduce(ring); err != nil {
		t.Fatal(err)
	}
	tree := cloneGrads(base)
	if err := TreeAllReduce(tree); err != nil {
		t.Fatal(err)
	}
	diff := false
	for r := range ring {
		for i := range ring[r] {
			if math.Float64bits(ring[r][i]) != math.Float64bits(tree[r][i]) {
				diff = true
			}
			if math.Abs(ring[r][i]-tree[r][i]) > 1e-9*(1+math.Abs(ring[r][i])) {
				t.Fatalf("legacy tree numerically wrong at rank %d idx %d", r, i)
			}
		}
	}
	if !diff {
		t.Skip("legacy tree happened to match the ring bit-for-bit on this input")
	}
}

func TestReducerNamesAndByName(t *testing.T) {
	for _, name := range Backends() {
		r, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := ByName("gossip"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestReducerOptionValidation(t *testing.T) {
	if _, err := NewParamServer(WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	for _, ctor := range map[string]func(...Option) (Reducer, error){
		"ring": NewRing, "tree": NewTree, "halving": NewHalvingDoubling,
	} {
		if _, err := ctor(WithShards(2)); err == nil {
			t.Errorf("%T accepted WithShards", ctor)
		}
		if _, err := ctor(WithFaults(nil)); err == nil {
			t.Errorf("%T accepted WithFaults", ctor)
		}
		if _, err := ctor(WithRetry(DefaultPSRetry())); err == nil {
			t.Errorf("%T accepted WithRetry", ctor)
		}
		if _, err := ctor(nil); err == nil {
			t.Errorf("%T accepted a nil Option", ctor)
		}
	}
}

func TestReducerValidationErrors(t *testing.T) {
	ctx := context.Background()
	for _, name := range Backends() {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Reduce(ctx, nil); err == nil {
			t.Errorf("%s: empty rank set accepted", name)
		}
		bad := [][]float64{{1, 2}, {3}}
		if err := r.Reduce(ctx, bad); err == nil {
			t.Errorf("%s: ragged ranks accepted", name)
		}
		if bad[0][0] != 1 || bad[1][0] != 3 {
			t.Errorf("%s: validation error modified data", name)
		}
	}
}

func TestReducerContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Backends() {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		grads := [][]float64{{1, 2}, {3, 4}}
		if err := r.Reduce(ctx, grads); err == nil {
			t.Errorf("%s: cancelled context accepted", name)
		}
		if grads[0][0] != 1 || grads[1][1] != 4 {
			t.Errorf("%s: cancelled Reduce modified data", name)
		}
	}
}

func TestReducerZeroLengthAndSingleRank(t *testing.T) {
	ctx := context.Background()
	for _, name := range Backends() {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Reduce(ctx, [][]float64{{}, {}}); err != nil {
			t.Errorf("%s: zero-length vectors: %v", name, err)
		}
		one := [][]float64{{1, 2, 3}}
		if err := r.Reduce(ctx, one); err != nil {
			t.Errorf("%s: single rank: %v", name, err)
		}
		if one[0][1] != 2 {
			t.Errorf("%s: single-rank reduce modified data", name)
		}
	}
}

// TestReducerMetrics pins the exact traffic accounting where it is
// architecturally determined (ring, ps) and the round counts for the
// log-depth topologies.
func TestReducerMetrics(t *testing.T) {
	ctx := context.Background()
	const n, length = 4, 1000

	cases := []struct {
		name       string
		opts       []Option
		wantBytes  int64 // 0 = only assert > 0
		wantRounds int64
	}{
		{name: "ring", wantBytes: 2 * (n - 1) * length * 8, wantRounds: 2 * (n - 1)},
		{name: "tree", wantRounds: 4},    // 2·log₂(4)
		{name: "halving", wantRounds: 4}, // 2·log₂(4)
		{name: "ps", opts: []Option{WithShards(2)}, wantBytes: 2 * n * length * 8, wantRounds: 2},
	}
	for _, tc := range cases {
		reg := metrics.NewRegistry()
		r, err := ByName(tc.name, append(tc.opts, WithMetrics(reg))...)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Reduce(ctx, randGrads(n, length, 1)); err != nil {
			t.Fatal(err)
		}
		bytes := reg.Counter("collective." + tc.name + ".bytes_moved").Value()
		rounds := reg.Counter("collective." + tc.name + ".rounds").Value()
		if tc.wantBytes > 0 && bytes != tc.wantBytes {
			t.Errorf("%s: bytes_moved = %d, want %d", tc.name, bytes, tc.wantBytes)
		}
		if bytes <= 0 {
			t.Errorf("%s: bytes_moved = %d, want > 0", tc.name, bytes)
		}
		if rounds != tc.wantRounds {
			t.Errorf("%s: rounds = %d, want %d", tc.name, rounds, tc.wantRounds)
		}
	}

	// Non-power-of-two halving adds the pre/post phases.
	reg := metrics.NewRegistry()
	r, err := NewHalvingDoubling(WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Reduce(ctx, randGrads(5, 64, 2)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("collective.halving.rounds").Value(); got != 6 {
		t.Errorf("halving n=5 rounds = %d, want 6 (2·log₂4 + pre + post)", got)
	}
}
