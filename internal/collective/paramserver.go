package collective

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// NewParamServer returns a parameter-server Reducer (Parameter Box
// style): the parameter space is sharded contiguously across N server
// replicas (WithShards, default 1), and every step runs a synchronous
// staleness-0 round per shard — each worker pushes its gradient slice
// to the shard, the shard reduces in the canonical order, and every
// worker pulls the result back. Bit-identical to the ring on the same
// inputs, like every backend.
//
// The PS tier is the package's fault seam: WithFaults injects failures
// into pushes and pulls, and WithRetry bounds the recovery loop. A
// round is idempotent — workers retain their push buffers for the
// round's lifetime, so a retried round (e.g. after a shard replica
// dies and is replaced) replays identical traffic and recomputes
// identical bits; partially pulled weights are simply overwritten.
func NewParamServer(opts ...Option) (Reducer, error) {
	c, err := buildConfig("ps", true, opts)
	if err != nil {
		return nil, err
	}
	if c.shards == 0 {
		c.shards = 1
	}
	retry := c.retry
	if retry.Classify == nil {
		// Device death is permanent for an accelerator but recoverable
		// for a PS shard: the tier restarts the replica and the round
		// replays from the retained pushes. Transient faults retry as
		// usual.
		retry.Classify = faults.IsDeviceFault
	}
	return &paramServer{
		shards:  c.shards,
		inj:     c.inj,
		retry:   retry,
		m:       newReducerMetrics(c.reg, "ps"),
		retries: c.reg.Counter("collective.ps.shard_retries"),
	}, nil
}

// DefaultPSRetry returns the retry policy the parameter-server tier
// recommends when callers want recovery without tuning: the package
// standard (4 attempts, fast jittered backoff) with dead shard
// replicas classified as retryable, because the PS tier replaces a
// dead replica and replays the round from the workers' retained
// pushes.
func DefaultPSRetry() faults.RetryPolicy {
	p := faults.DefaultRetryPolicy()
	p.Classify = faults.IsDeviceFault
	return p
}

type paramServer struct {
	shards  int
	inj     faults.Injector
	retry   faults.RetryPolicy
	m       reducerMetrics
	retries *metrics.Counter
}

func (ps *paramServer) Name() string { return "ps" }

func (ps *paramServer) Reduce(ctx context.Context, grads [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, length, err := validateRanks(grads)
	if err != nil {
		return err
	}
	if n == 1 && ps.inj == nil {
		return nil
	}
	if length == 0 {
		return nil
	}

	shards := ps.shards
	if shards > length {
		shards = length // no empty shards
	}
	shardBounds := segmentBounds(shards, length)
	ringBounds := segmentBounds(n, length) // fixes the reduction order

	var moved, retried atomic.Int64
	errs := make([]error, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for j := 0; j < shards; j++ {
		go func(j int) {
			defer wg.Done()
			lo, hi := shardBounds[j], shardBounds[j+1]
			// Workers retain their send buffers for the whole round so a
			// replayed round pushes identical bytes regardless of what a
			// failed pull already wrote into grads.
			pushes := make([][]float64, n)
			for r := range pushes {
				pushes[r] = append([]float64(nil), grads[r][lo:hi]...)
			}
			out := make([]float64, hi-lo)
			key := fmt.Sprintf("shard-%d", j)
			stats, err := ps.retry.Do(ctx, "collective.ps.round", key, func(ctx context.Context, attempt int) error {
				// Push-gradient: the shard ingests every worker's slice.
				for r := 0; r < n; r++ {
					op := faults.Op{Name: "collective.ps.push", Key: fmt.Sprintf("%s/rank-%d", key, r), Attempt: attempt}
					if err := faults.Apply(ctx, ps.inj, op); err != nil {
						return err
					}
					moved.Add(int64(hi - lo))
				}
				canonicalSum(pushes, lo, hi, ringBounds, out)
				// Pull-weight: every worker fetches the reduced shard. A
				// fault mid-loop leaves some ranks updated; the retried
				// round recomputes the same sum from the retained pushes,
				// so rewriting is safe.
				for r := 0; r < n; r++ {
					op := faults.Op{Name: "collective.ps.pull", Key: fmt.Sprintf("%s/rank-%d", key, r), Attempt: attempt}
					if err := faults.Apply(ctx, ps.inj, op); err != nil {
						return err
					}
					moved.Add(int64(hi - lo))
					copy(grads[r][lo:hi], out)
				}
				return nil
			})
			retried.Add(int64(stats.Attempts - 1))
			if err != nil {
				errs[j] = fmt.Errorf("collective: ps shard %d: %w", j, err)
			}
		}(j)
	}
	wg.Wait()

	ps.m.observe(moved.Load()*8, 2) // one push round + one pull round
	ps.retries.Add(retried.Load())
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParamServerModel is the analytical latency model of the synchronous
// parameter-server round, the CentralModel generalized to a sharded
// server tier: each of the two half-rounds (push-gradient,
// pull-weight) is limited by the slower of a worker's own link
// (modelBytes/WorkerBandwidth — every worker moves the full model) and
// a shard server's ingest/egress (n·modelBytes/(Shards·ServerBandwidth)
// — the n·modelBytes aggregate splits across Shards server links).
// Shards → n·ServerBandwidth/WorkerBandwidth recovers all-reduce-class
// scaling; Shards = 1 degenerates to CentralModel.
type ParamServerModel struct {
	// Shards is the server-replica count the parameter space is split
	// across; values < 1 behave as 1.
	Shards int
	// WorkerBandwidth is a worker's link bandwidth toward the PS tier.
	WorkerBandwidth units.BytesPerSec
	// ServerBandwidth is one shard replica's link bandwidth.
	ServerBandwidth units.BytesPerSec
	// HopLatency is the fixed per-half-round cost in seconds.
	HopLatency float64
}

// Latency returns the synchronous PS round time for n workers.
func (m ParamServerModel) Latency(n int, modelBytes units.Bytes) float64 {
	if n <= 1 || modelBytes <= 0 {
		return 0
	}
	shards := m.Shards
	if shards < 1 {
		shards = 1
	}
	worker := float64(modelBytes) / float64(m.WorkerBandwidth)
	server := float64(n) * float64(modelBytes) / (float64(shards) * float64(m.ServerBandwidth))
	half := worker
	if server > half {
		half = server
	}
	return 2 * (half + m.HopLatency)
}
