package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trainbox/internal/units"
)

func TestTreeAllReduceMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		for _, length := range []int{0, 1, 7, 100} {
			rng := rand.New(rand.NewSource(int64(n*100 + length)))
			data := make([][]float64, n)
			oracle := make([][]float64, n)
			for r := range data {
				data[r] = make([]float64, length)
				for i := range data[r] {
					data[r][i] = rng.NormFloat64()
				}
				oracle[r] = append([]float64(nil), data[r]...)
			}
			if err := CentralAllReduce(oracle); err != nil && length > 0 {
				t.Fatal(err)
			}
			if err := TreeAllReduce(data); err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			for r := range data {
				for i := range data[r] {
					if math.Abs(data[r][i]-oracle[r][i]) > 1e-9*(1+math.Abs(oracle[r][i])) {
						t.Fatalf("n=%d len=%d rank=%d idx=%d: %v vs %v",
							n, length, r, i, data[r][i], oracle[r][i])
					}
				}
			}
		}
	}
}

func TestTreeAllReduceErrors(t *testing.T) {
	if err := TreeAllReduce(nil); err == nil {
		t.Error("empty rank set accepted")
	}
	if err := TreeAllReduce([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestTreeAllReducePropertyEqualsRing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		length := 1 + rng.Intn(40)
		tree := make([][]float64, n)
		ring := make([][]float64, n)
		for r := range tree {
			tree[r] = make([]float64, length)
			for i := range tree[r] {
				tree[r][i] = rng.NormFloat64() * 10
			}
			ring[r] = append([]float64(nil), tree[r]...)
		}
		if TreeAllReduce(tree) != nil || RingAllReduce(ring) != nil {
			return false
		}
		for r := range tree {
			for i := range tree[r] {
				if math.Abs(tree[r][i]-ring[r][i]) > 1e-7*(1+math.Abs(ring[r][i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeModelScalesLogarithmically(t *testing.T) {
	m := TreeModel{LinkBandwidth: 150 * units.GBps, HopLatency: 1e-6}
	const size = 100 * units.MB
	l4 := m.Latency(4, size)
	l16 := m.Latency(16, size)
	l256 := m.Latency(256, size)
	// log2: 2, 4, 8 levels → latency ratios 1 : 2 : 4.
	if math.Abs(l16/l4-2) > 1e-9 || math.Abs(l256/l4-4) > 1e-9 {
		t.Errorf("tree latency ratios wrong: %v %v %v", l4, l16, l256)
	}
	if m.Latency(1, size) != 0 || m.Latency(4, 0) != 0 {
		t.Error("degenerate latencies should be 0")
	}
}

// TestRingBeatsTreeForLargeModels captures the trade the paper's ring
// choice rests on: for multi-megabyte gradient vectors the ring's
// bandwidth optimality dominates the tree's latency advantage.
func TestRingBeatsTreeForLargeModels(t *testing.T) {
	ring := DefaultRingModel()
	tree := TreeModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	const n = 256
	big := units.Bytes(100 * units.MB) // ResNet-50 class
	if ring.Latency(n, big) >= tree.Latency(n, big) {
		t.Errorf("ring (%v) should beat tree (%v) for %v", ring.Latency(n, big), tree.Latency(n, big), big)
	}
	// And the tree wins for tiny messages.
	tiny := units.Bytes(1 * units.KB)
	if tree.Latency(n, tiny) >= ring.Latency(n, tiny) {
		t.Errorf("tree (%v) should beat ring (%v) for %v", tree.Latency(n, tiny), ring.Latency(n, tiny), tiny)
	}
	// The crossover point separates the regimes.
	cross := CrossoverBytes(ring, tree, n)
	if cross <= tiny || cross >= big {
		t.Errorf("crossover = %v, want between %v and %v", cross, tiny, big)
	}
	below := units.Bytes(float64(cross) * 0.5)
	above := units.Bytes(float64(cross) * 2)
	if tree.Latency(n, below) >= ring.Latency(n, below) {
		t.Error("tree should win below the crossover")
	}
	if ring.Latency(n, above) >= tree.Latency(n, above) {
		t.Error("ring should win above the crossover")
	}
}

func TestCrossoverEdgeCases(t *testing.T) {
	ring := DefaultRingModel()
	tree := TreeModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	if CrossoverBytes(ring, tree, 2) != 0 {
		t.Error("n=2 crossover should be 0")
	}
	// Zero-latency hops: the ring always wins → crossover 0.
	zr := RingModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: 0}
	zt := TreeModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: 0}
	if CrossoverBytes(zr, zt, 64) != 0 {
		t.Error("zero-hop crossover should be 0")
	}
}
