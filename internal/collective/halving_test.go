package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trainbox/internal/units"
)

func TestHalvingDoublingMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, length := range []int{0, 1, 16, 64, 100, 1000} {
			rng := rand.New(rand.NewSource(int64(n*1000 + length)))
			data := make([][]float64, n)
			oracle := make([][]float64, n)
			for r := range data {
				data[r] = make([]float64, length)
				for i := range data[r] {
					data[r][i] = rng.NormFloat64()
				}
				oracle[r] = append([]float64(nil), data[r]...)
			}
			if length > 0 {
				if err := CentralAllReduce(oracle); err != nil {
					t.Fatal(err)
				}
			}
			if err := HalvingDoublingAllReduce(data); err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			for r := range data {
				for i := range data[r] {
					if math.Abs(data[r][i]-oracle[r][i]) > 1e-9*(1+math.Abs(oracle[r][i])) {
						t.Fatalf("n=%d len=%d rank=%d idx=%d: %v vs %v",
							n, length, r, i, data[r][i], oracle[r][i])
					}
				}
			}
		}
	}
}

func TestHalvingDoublingRejectsNonPow2(t *testing.T) {
	data := make([][]float64, 3)
	for i := range data {
		data[i] = []float64{1}
	}
	if err := HalvingDoublingAllReduce(data); err == nil {
		t.Error("3 ranks accepted")
	}
	if err := HalvingDoublingAllReduce(nil); err == nil {
		t.Error("no ranks accepted")
	}
	if err := HalvingDoublingAllReduce([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestHalvingDoublingPropertyEqualsRing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(4)) // 2..16
		length := 1 + rng.Intn(50)
		hd := make([][]float64, n)
		ring := make([][]float64, n)
		for r := range hd {
			hd[r] = make([]float64, length)
			for i := range hd[r] {
				hd[r][i] = rng.NormFloat64() * 10
			}
			ring[r] = append([]float64(nil), hd[r]...)
		}
		if HalvingDoublingAllReduce(hd) != nil || RingAllReduce(ring) != nil {
			return false
		}
		for r := range hd {
			for i := range hd[r] {
				if math.Abs(hd[r][i]-ring[r][i]) > 1e-7*(1+math.Abs(ring[r][i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHalvingDoublingModelProperties(t *testing.T) {
	ring := DefaultRingModel()
	hd := HalvingDoublingModel{LinkBandwidth: ring.LinkBandwidth, HopLatency: ring.HopLatency}
	const size = 100 * units.MB
	// Bandwidth-optimal like the ring: transfer terms converge as n grows.
	r256 := ring.Latency(256, size)
	h256 := hd.Latency(256, size)
	if math.Abs(h256-r256)/r256 > 0.25 {
		t.Errorf("halving-doubling %v and ring %v should be within 25%% at large sizes", h256, r256)
	}
	// Fewer fixed-cost steps: for tiny payloads it beats the ring.
	tiny := units.Bytes(1 * units.KB)
	if hd.Latency(256, tiny) >= ring.Latency(256, tiny) {
		t.Errorf("halving-doubling should beat the ring on fixed costs: %v vs %v",
			hd.Latency(256, tiny), ring.Latency(256, tiny))
	}
	if hd.Latency(1, size) != 0 || hd.Latency(8, 0) != 0 {
		t.Error("degenerate latencies should be 0")
	}
}
