package collective

import (
	"fmt"
	"math"
	"sync"

	"trainbox/internal/units"
)

// HalvingDoublingAllReduce sums the rank vectors element-wise in place
// using recursive vector halving + distance doubling (reduce-scatter)
// followed by vector doubling + distance halving (all-gather) — the
// third classical all-reduce alongside the ring and the tree. Like the
// ring it is bandwidth-optimal (each rank moves 2·(n−1)/n of the data),
// but it finishes in 2·log₂(n) steps instead of 2·(n−1), trading ring
// simplicity for latency. It requires a power-of-two rank count; NCCL's
// production variant handles remainders with a pre/post phase this model
// omits.
//
// Deprecated: use NewHalvingDoubling, whose Reducer is bit-identical to
// the ring (canonical reduction order) and supports non-power-of-two
// rank counts via pre/post phases. This shim is kept for compatibility
// and stays tested.
func HalvingDoublingAllReduce(data [][]float64) error {
	n := len(data)
	if n == 0 {
		return fmt.Errorf("collective: no ranks")
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("collective: halving-doubling needs a power-of-two rank count, got %d", n)
	}
	length := len(data[0])
	for r, d := range data {
		if len(d) != length {
			return fmt.Errorf("collective: rank %d has %d elements, rank 0 has %d", r, len(d), length)
		}
	}
	if n == 1 || length == 0 {
		return nil
	}

	// exchange[a][b] carries a's payload to b, double-buffered per step.
	type payload struct {
		lo, hi int
		vals   []float64
	}
	chans := make([][]chan payload, n)
	for i := range chans {
		chans[i] = make([]chan payload, n)
		for j := range chans[i] {
			chans[i][j] = make(chan payload, 1)
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			lo, hi := 0, length // rank's live window [lo, hi)

			// Reduce-scatter: at each step exchange half the live window
			// with a partner at distance d, keeping the half you own.
			for d := 1; d < n; d <<= 1 {
				partner := rank ^ d
				mid := lo + (hi-lo)/2
				keepHigh := rank&d != 0 // upper half owners have the bit set
				var sendLo, sendHi, keepLo, keepHi int
				if keepHigh {
					sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
				} else {
					sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
				}
				out := payload{lo: sendLo, hi: sendHi, vals: append([]float64(nil), data[rank][sendLo:sendHi]...)}
				chans[rank][partner] <- out
				in := <-chans[partner][rank]
				if in.lo != keepLo || in.hi != keepHi {
					panic("collective: halving-doubling window mismatch")
				}
				dst := data[rank][keepLo:keepHi]
				for i, v := range in.vals {
					dst[i] += v
				}
				lo, hi = keepLo, keepHi
			}
			// All-gather: reverse the exchanges, each step doubling the
			// live window.
			for d := n >> 1; d >= 1; d >>= 1 {
				partner := rank ^ d
				out := payload{lo: lo, hi: hi, vals: append([]float64(nil), data[rank][lo:hi]...)}
				chans[rank][partner] <- out
				in := <-chans[partner][rank]
				copy(data[rank][in.lo:in.hi], in.vals)
				if in.lo < lo {
					lo = in.lo
				}
				if in.hi > hi {
					hi = in.hi
				}
			}
		}(rank)
	}
	wg.Wait()
	return nil
}

// HalvingDoublingModel is the analytical latency model: 2·log₂(n) steps;
// the i-th reduce-scatter step moves size/2^i bytes, summing to
// 2·(n−1)/n·size of traffic, plus a fixed cost per step.
type HalvingDoublingModel struct {
	LinkBandwidth units.BytesPerSec
	HopLatency    float64
}

// Latency returns the all-reduce time for a power-of-two n (rounded up
// internally for other n, matching the pre-phase cost direction).
func (m HalvingDoublingModel) Latency(n int, modelBytes units.Bytes) float64 {
	if n <= 1 || modelBytes <= 0 {
		return 0
	}
	levels := math.Ceil(math.Log2(float64(n)))
	transfer := 2 * (1 - 1/math.Pow(2, levels)) * float64(modelBytes) / float64(m.LinkBandwidth)
	return transfer + 2*levels*m.HopLatency
}
