package collective

import (
	"fmt"

	"trainbox/internal/units"
)

// RingModel is the analytical latency model of chunked ring all-reduce
// over a dedicated accelerator interconnect, calibrated the way the
// paper builds its synchronization model (Section VI-A: "a performance
// model based on the ring communication and an NVLink-like interface").
type RingModel struct {
	// LinkBandwidth is the per-direction accelerator-link bandwidth
	// (NVLink-class; DGX-2 aggregate is ~300 GB/s, 9.4× PCIe Gen3).
	LinkBandwidth units.BytesPerSec
	// ChunkBytes is the pipelining granularity (the paper plots a
	// "4-KB-chunked ring" in Figure 2b).
	ChunkBytes units.Bytes
	// HopLatency is the per-chunk per-hop fixed cost in seconds.
	HopLatency float64
}

// DefaultRingModel returns the NVLink-class model used throughout the
// reproduction: 150 GB/s effective per-direction ring bandwidth, 4 KB
// chunks, 0.1 µs per hop.
func DefaultRingModel() RingModel {
	return RingModel{
		LinkBandwidth: 150 * units.GBps,
		ChunkBytes:    4 * units.KB,
		HopLatency:    1e-7,
	}
}

// Latency returns the time to all-reduce modelBytes across n
// accelerators.
//
// Each rank transmits 2·(n−1)/n · modelBytes over its ring link; with
// chunked pipelining the fixed per-hop cost adds 2·(n−1)·HopLatency for
// the pipeline fill. n ≤ 1 costs nothing; n must not be negative.
func (m RingModel) Latency(n int, modelBytes units.Bytes) float64 {
	if n < 0 {
		panic(fmt.Sprintf("collective: negative ranks %d", n))
	}
	if n <= 1 || modelBytes <= 0 {
		return 0
	}
	frac := 2 * float64(n-1) / float64(n)
	transfer := frac * float64(modelBytes) / float64(m.LinkBandwidth)
	fill := 2 * float64(n-1) * m.HopLatency
	return transfer + fill
}

// NormalizedLatency returns Latency(n)/Latency(2), the quantity Figure 2b
// plots. It saturates just above 2 as n grows (2·(n−1)/n → 2 while the
// pipeline-fill term stays negligible for realistic model sizes).
func (m RingModel) NormalizedLatency(n int, modelBytes units.Bytes) float64 {
	base := m.Latency(2, modelBytes)
	if base == 0 {
		return 0
	}
	return m.Latency(n, modelBytes) / base
}

// CentralModel is the latency model of the naive gather+broadcast
// synchronization, which scales linearly with n at the root's link: the
// non-solution the ring replaces.
type CentralModel struct {
	LinkBandwidth units.BytesPerSec
}

// Latency returns the gather+broadcast time: the root receives n−1 copies
// and sends n−1 copies of the model serially over its link.
func (m CentralModel) Latency(n int, modelBytes units.Bytes) float64 {
	if n <= 1 || modelBytes <= 0 {
		return 0
	}
	return 2 * float64(n-1) * float64(modelBytes) / float64(m.LinkBandwidth)
}
