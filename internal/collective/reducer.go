package collective

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// Reducer is the gradient-synchronization backend interface. Reduce sums
// the rank vectors element-wise in place: after it returns, every
// grads[r] holds the element-wise sum of all inputs. All backends honor
// one reduction-order contract — for each element, contributions are
// summed in the exact order the chunked ring all-reduce sums them — so
// every Reducer is bit-identical to every other (and to the deprecated
// RingAllReduce) on the same inputs. Topology changes what moves where
// and what it costs, never the numerics.
//
// Reduce may leave grads partially reduced when it returns a non-nil
// error after validation (e.g. a parameter-server shard dying past its
// retry budget); callers must treat the buffers as poisoned on error.
// Validation errors (mismatched lengths, zero ranks) leave grads
// unmodified.
type Reducer interface {
	Reduce(ctx context.Context, grads [][]float64) error
	// Name returns the backend's stable identifier ("ring", "tree",
	// "halving", "ps") used in metric names and CLI flags.
	Name() string
}

// Option configures a Reducer constructor. Options that only make sense
// for a specific backend (WithShards, WithFaults, WithRetry are
// parameter-server concerns) are rejected with an error by the other
// constructors rather than silently ignored.
type Option func(*reducerConfig) error

type reducerConfig struct {
	shards    int
	reg       *metrics.Registry
	inj       faults.Injector
	setFaults bool
	retry     faults.RetryPolicy
	setRetry  bool
}

// WithShards sets how many server replicas the parameter space is
// sharded across (parameter-server backend only). Each shard owns a
// contiguous slice of the parameter vector and runs its own
// push-gradient/pull-weight round. n must be ≥ 1; shard counts above
// the vector length are clamped so no shard is empty.
func WithShards(n int) Option {
	return func(c *reducerConfig) error {
		if n < 1 {
			return fmt.Errorf("collective: WithShards(%d): shard count must be >= 1", n)
		}
		c.shards = n
		return nil
	}
}

// WithMetrics binds the reducer's counters into reg under
// collective.<name>.{bytes_moved,rounds}. A nil registry keeps the
// no-op defaults.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *reducerConfig) error {
		c.reg = reg
		return nil
	}
}

// WithFaults installs a fault injector on the parameter-server tier:
// every push and pull consults it (ops "collective.ps.push" /
// "collective.ps.pull", keyed by shard and rank), so chaos tests can
// kill a shard replica mid-round. Parameter-server backend only.
func WithFaults(inj faults.Injector) Option {
	return func(c *reducerConfig) error {
		c.inj = inj
		c.setFaults = true
		return nil
	}
}

// WithRetry sets the bounded-retry policy a parameter-server shard round
// runs under. A failed round — including a dead shard replica, which the
// default classifier treats as retryable because the PS tier replaces
// replicas — is replayed from the workers' retained push buffers, so
// retries are idempotent and the reduced bits are unchanged.
// Parameter-server backend only.
func WithRetry(p faults.RetryPolicy) Option {
	return func(c *reducerConfig) error {
		c.retry = p
		c.setRetry = true
		return nil
	}
}

// buildConfig applies opts and enforces backend/option compatibility.
func buildConfig(backend string, serverTier bool, opts []Option) (reducerConfig, error) {
	var c reducerConfig
	for _, opt := range opts {
		if opt == nil {
			return c, fmt.Errorf("collective: %s: nil Option", backend)
		}
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	if !serverTier {
		if c.shards != 0 {
			return c, fmt.Errorf("collective: %s: WithShards applies only to the parameter-server backend", backend)
		}
		if c.setFaults {
			return c, fmt.Errorf("collective: %s: WithFaults applies only to the parameter-server backend", backend)
		}
		if c.setRetry {
			return c, fmt.Errorf("collective: %s: WithRetry applies only to the parameter-server backend", backend)
		}
	}
	return c, nil
}

// reducerMetrics is the per-backend accounting every Reducer emits:
// bytes_moved counts payload bytes crossing links in the functional
// topology, rounds counts communication rounds. Nil counters (no
// registry) are no-ops.
type reducerMetrics struct {
	bytes  *metrics.Counter
	rounds *metrics.Counter
}

func newReducerMetrics(reg *metrics.Registry, name string) reducerMetrics {
	return reducerMetrics{
		bytes:  reg.Counter("collective." + name + ".bytes_moved"),
		rounds: reg.Counter("collective." + name + ".rounds"),
	}
}

func (m reducerMetrics) observe(bytes, rounds int64) {
	m.bytes.Add(bytes)
	m.rounds.Add(rounds)
}

// validateRanks checks the shared Reduce preconditions and returns the
// rank count and vector length. It never modifies grads.
func validateRanks(grads [][]float64) (n, length int, err error) {
	n = len(grads)
	if n == 0 {
		return 0, 0, fmt.Errorf("collective: no ranks")
	}
	length = len(grads[0])
	for r, d := range grads {
		if len(d) != length {
			return 0, 0, fmt.Errorf("collective: rank %d has %d elements, rank 0 has %d", r, len(d), length)
		}
	}
	return n, length, nil
}

// segmentBounds partitions length elements into n contiguous segments:
// segment s covers [bounds[s], bounds[s+1]). This is the ring's
// chunking, and it also fixes the package-wide reduction order (see
// canonicalSum).
func segmentBounds(n, length int) []int {
	bounds := make([]int, n+1)
	for s := 0; s <= n; s++ {
		bounds[s] = s * length / n
	}
	return bounds
}

// canonicalSum applies the package's reduction-order contract to the
// element range [lo, hi): element i in ring segment s is the left fold
// contrib[s] + contrib[s+1] + … wrapping mod n — exactly the order the
// chunked ring accumulates it (rank s starts segment s's reduce-scatter
// and each hop adds the next rank's value). Float addition is
// commutative but not associative, so fixing this fold is what makes
// every backend bit-identical to the ring.
//
// contrib[r] holds rank r's raw contribution for [lo, hi) at index
// i-lo; bounds is segmentBounds(len(contrib), fullLength); out receives
// the sums at index i-lo.
func canonicalSum(contrib [][]float64, lo, hi int, bounds []int, out []float64) {
	n := len(contrib)
	for s := 0; s < n; s++ {
		a, b := bounds[s], bounds[s+1]
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		for i := a; i < b; i++ {
			acc := contrib[s][i-lo]
			for k := 1; k < n; k++ {
				acc += contrib[(s+k)%n][i-lo]
			}
			out[i-lo] = acc
		}
	}
}

// ByName constructs the named backend: "ring", "tree", "halving", or
// "ps". It is the registry the CLI flags and serve front-end resolve
// through.
func ByName(name string, opts ...Option) (Reducer, error) {
	switch name {
	case "ring":
		return NewRing(opts...)
	case "tree":
		return NewTree(opts...)
	case "halving":
		return NewHalvingDoubling(opts...)
	case "ps":
		return NewParamServer(opts...)
	default:
		return nil, fmt.Errorf("collective: unknown sync backend %q (want ring, tree, halving, or ps)", name)
	}
}

// Backends lists the names ByName accepts, in display order.
func Backends() []string { return []string{"ring", "tree", "halving", "ps"} }

// NewRing returns the chunked ring all-reduce as a Reducer: a
// reduce-scatter phase followed by an all-gather phase, each of n−1
// steps, bandwidth-optimal at 2·(n−1)/n of the model per link. This is
// the default backend and the numerical reference every other backend
// reproduces bit-for-bit.
func NewRing(opts ...Option) (Reducer, error) {
	c, err := buildConfig("ring", false, opts)
	if err != nil {
		return nil, err
	}
	return &ringReducer{m: newReducerMetrics(c.reg, "ring")}, nil
}

type ringReducer struct {
	m reducerMetrics
}

func (r *ringReducer) Name() string { return "ring" }

func (r *ringReducer) Reduce(ctx context.Context, grads [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, length, err := validateRanks(grads)
	if err != nil {
		return err
	}
	if err := RingAllReduce(grads); err != nil {
		return err
	}
	if n > 1 && length > 0 {
		// Each of the 2·(n−1) steps moves one segment per rank; segments
		// tile the vector, so each phase moves (n−1)·length floats total.
		r.m.observe(int64(2*(n-1)*length)*8, int64(2*(n-1)))
	}
	return nil
}

// NewTree returns a binomial-tree Reducer: raw rank-tagged
// contributions travel up the tree, the root applies the canonical
// reduction order once, and the result is broadcast back down. Latency
// scales with log₂(n) levels but every level moves full vectors —
// latency-optimal for small messages, bandwidth-suboptimal for large
// ones (see TreeModel).
func NewTree(opts ...Option) (Reducer, error) {
	c, err := buildConfig("tree", false, opts)
	if err != nil {
		return nil, err
	}
	return &treeReducer{m: newReducerMetrics(c.reg, "tree")}, nil
}

type treeReducer struct {
	m reducerMetrics
}

func (t *treeReducer) Name() string { return "tree" }

// rankContrib is one rank's raw vector, tagged with its origin so
// aggregation points can apply the canonical reduction order no matter
// how the topology delivered it.
type rankContrib struct {
	rank int
	vals []float64
}

func (t *treeReducer) Reduce(ctx context.Context, grads [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, length, err := validateRanks(grads)
	if err != nil {
		return err
	}
	if n == 1 || length == 0 {
		return nil
	}

	// up[r] carries rank r's gathered subtree to its parent; down[r]
	// returns the final vector.
	up := make([]chan []rankContrib, n)
	down := make([]chan []float64, n)
	for i := range up {
		up[i] = make(chan []rankContrib, 1)
		down[i] = make(chan []float64, 1)
	}
	bounds := segmentBounds(n, length)
	var moved atomic.Int64 // floats crossing tree edges

	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			// Gather the subtree's raw contributions, children
			// lowest-step first (classic binomial construction: child =
			// rank + step while rank % (2·step) == 0).
			acc := []rankContrib{{rank: rank, vals: grads[rank]}}
			for step := 1; step < n; step <<= 1 {
				if rank%(2*step) != 0 {
					// Non-root of this level: ship the gathered subtree to
					// the parent and wait for the broadcast.
					for _, c := range acc {
						moved.Add(int64(len(c.vals)))
					}
					up[rank] <- acc
					final := <-down[rank]
					copy(grads[rank], final)
					return
				}
				if child := rank + step; child < n {
					acc = append(acc, <-up[child]...)
				}
			}
			// Root: every rank's raw vector has arrived; apply the
			// canonical reduction order once and broadcast. As in the
			// legacy TreeAllReduce, the root relays the broadcast for
			// subtree heads whose goroutines have exited —
			// correctness-equivalent, with TreeModel carrying the
			// performance claims.
			contrib := make([][]float64, n)
			for _, c := range acc {
				contrib[c.rank] = c.vals
			}
			out := make([]float64, length)
			canonicalSum(contrib, 0, length, bounds, out)
			copy(grads[rank], out)
			for r := 0; r < n; r++ {
				if r == rank {
					continue
				}
				moved.Add(int64(length))
				down[r] <- append([]float64(nil), out...)
			}
		}(rank)
	}
	wg.Wait()
	levels := int64(bits.Len(uint(n - 1))) // ⌈log₂ n⌉
	t.m.observe(moved.Load()*8, 2*levels)
	return nil
}

// NewHalvingDoubling returns a recursive-halving/distance-doubling
// Reducer: bandwidth-optimal like the ring but finishing in 2·log₂(n)
// steps. Unlike the deprecated free function it accepts any rank count:
// non-power-of-two counts run NCCL-style pre/post phases where the
// ranks above the largest power of two fold their vectors into a
// partner and receive the result back.
func NewHalvingDoubling(opts ...Option) (Reducer, error) {
	c, err := buildConfig("halving", false, opts)
	if err != nil {
		return nil, err
	}
	return &halvingReducer{m: newReducerMetrics(c.reg, "halving")}, nil
}

type halvingReducer struct {
	m reducerMetrics
}

func (h *halvingReducer) Name() string { return "halving" }

func (h *halvingReducer) Reduce(ctx context.Context, grads [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, length, err := validateRanks(grads)
	if err != nil {
		return err
	}
	if n == 1 || length == 0 {
		return nil
	}

	p := 1 << (bits.Len(uint(n)) - 1) // largest power of two ≤ n
	bounds := segmentBounds(n, length)
	var moved atomic.Int64

	// Exchanges carry sets of rank-tagged window slices so aggregation
	// can defer summation to the canonical order at the end of the
	// reduce-scatter. message[k] covers [lo, hi) of rank tag's vector.
	type window struct {
		rank   int
		lo, hi int
		vals   []float64
	}
	chans := make([][]chan []window, n)
	for i := range chans {
		chans[i] = make([]chan []window, n)
		for j := range chans[i] {
			chans[i][j] = make(chan []window, 1)
		}
	}
	// result[r] hands the post-phase vector back to excess rank r.
	result := make([]chan []float64, n)
	for i := range result {
		result[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			if rank >= p {
				// Pre-phase: excess ranks fold into partner rank−p and
				// sit out; the post-phase returns the full result.
				partner := rank - p
				moved.Add(int64(length))
				chans[rank][partner] <- []window{{rank: rank, lo: 0, hi: length,
					vals: append([]float64(nil), grads[rank]...)}}
				copy(grads[rank], <-result[rank])
				return
			}

			// contrib[k] is rank k's raw vector; only the live window is
			// populated/valid as exchanges shrink it.
			contrib := make([][]float64, n)
			contrib[rank] = append([]float64(nil), grads[rank]...)
			if excess := rank + p; excess < n {
				for _, w := range <-chans[excess][rank] {
					buf := make([]float64, length)
					copy(buf[w.lo:w.hi], w.vals)
					contrib[w.rank] = buf
				}
			}

			// Reduce-scatter over the p-rank hypercube: exchange half the
			// live window each step, shipping every held contribution.
			lo, hi := 0, length
			for d := 1; d < p; d <<= 1 {
				partner := rank ^ d
				mid := lo + (hi-lo)/2
				var sendLo, sendHi, keepLo, keepHi int
				if rank&d != 0 { // upper-half owners have the bit set
					sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
				} else {
					sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
				}
				out := make([]window, 0, n)
				for k, buf := range contrib {
					if buf == nil {
						continue
					}
					out = append(out, window{rank: k, lo: sendLo, hi: sendHi,
						vals: append([]float64(nil), buf[sendLo:sendHi]...)})
					moved.Add(int64(sendHi - sendLo))
				}
				chans[rank][partner] <- out
				for _, w := range <-chans[partner][rank] {
					if w.lo != keepLo || w.hi != keepHi {
						panic("collective: halving-doubling window mismatch")
					}
					if contrib[w.rank] == nil {
						contrib[w.rank] = make([]float64, length)
					}
					copy(contrib[w.rank][w.lo:w.hi], w.vals)
				}
				lo, hi = keepLo, keepHi
			}

			// Every contribution has reached this rank's final window;
			// reduce it in the canonical order.
			views := make([][]float64, n)
			for k := range views {
				views[k] = contrib[k][lo:hi]
			}
			res := make([]float64, length)
			canonicalSum(views, lo, hi, bounds, res[lo:hi])

			// All-gather: reverse the exchanges, doubling the window.
			for d := p >> 1; d >= 1; d >>= 1 {
				partner := rank ^ d
				moved.Add(int64(hi - lo))
				chans[rank][partner] <- []window{{rank: -1, lo: lo, hi: hi,
					vals: append([]float64(nil), res[lo:hi]...)}}
				for _, w := range <-chans[partner][rank] {
					copy(res[w.lo:w.hi], w.vals)
					if w.lo < lo {
						lo = w.lo
					}
					if w.hi > hi {
						hi = w.hi
					}
				}
			}
			copy(grads[rank], res)
			// Post-phase: return the full vector to the pre-phase partner.
			if excess := rank + p; excess < n {
				moved.Add(int64(length))
				result[excess] <- res
			}
		}(rank)
	}
	wg.Wait()

	rounds := int64(2 * bits.Len(uint(p-1))) // 2·log₂(p) hypercube steps
	if n > p {
		rounds += 2 // pre + post phase
	}
	h.m.observe(moved.Load()*8, rounds)
	return nil
}
