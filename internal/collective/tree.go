package collective

import (
	"fmt"
	"math"
	"sync"

	"trainbox/internal/units"
)

// TreeAllReduce sums the rank vectors element-wise in place using a
// binomial-tree reduce followed by a binomial-tree broadcast — the
// "tree-based aggregation" NCCL primitive the paper mentions alongside
// rings (Section II-B). Latency scales with log₂(n) levels but each
// level moves the full model, so it is latency-optimal for small
// messages and bandwidth-suboptimal for large ones — the opposite trade
// to the ring (see TreeModel).
//
// One goroutine runs per rank; ranks communicate over per-edge channels.
//
// Note the numerics: this legacy implementation sums partial
// aggregates up the tree, so its bits differ from RingAllReduce's.
//
// Deprecated: use NewTree, whose Reducer moves raw rank-tagged
// contributions up the same binomial tree and reduces in the
// package-wide canonical order, making it bit-identical to the ring.
// This shim is kept for compatibility and stays tested.
func TreeAllReduce(data [][]float64) error {
	n := len(data)
	if n == 0 {
		return fmt.Errorf("collective: no ranks")
	}
	length := len(data[0])
	for r, d := range data {
		if len(d) != length {
			return fmt.Errorf("collective: rank %d has %d elements, rank 0 has %d", r, len(d), length)
		}
	}
	if n == 1 || length == 0 {
		return nil
	}

	// chans[child] carries the child's partial sum up and the final
	// vector back down; buffered so each exchange is one send + recv.
	up := make([]chan []float64, n)
	down := make([]chan []float64, n)
	for i := range up {
		up[i] = make(chan []float64, 1)
		down[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			// Binomial tree on rank indices: children of r are r+2^k for
			// each k with 2^k > lowest set bits of r... use the classic
			// construction: child = rank + step while step < n and
			// rank % (2*step) == 0.
			acc := append([]float64(nil), data[rank]...)
			// Reduce: absorb children lowest-step first.
			for step := 1; step < n; step <<= 1 {
				if rank%(2*step) == 0 {
					child := rank + step
					if child < n {
						in := <-up[child]
						for i, v := range in {
							acc[i] += v
						}
					}
				} else {
					up[rank] <- acc
					// Wait for the broadcast result.
					final := <-down[rank]
					copy(data[rank], final)
					return
				}
			}
			// Root: broadcast down the same tree.
			copy(data[rank], acc)
			broadcast(rank, n, acc, down)
		}(rank)
	}
	// Non-root ranks that already returned received their result; roots
	// of subtrees forward during broadcast (handled in broadcast by the
	// root goroutine alone, which is fine for correctness: the root
	// forwards to every subtree head).
	wg.Wait()
	return nil
}

// broadcast delivers the final vector to every rank that sent a partial
// sum upward. The binomial broadcast mirrors the reduce tree: the root
// sends to each direct child's channel; each child would normally relay,
// but its goroutine has already exited, so the root relays on its
// behalf — correctness-equivalent, with the analytical model (not this
// functional implementation) carrying the performance claims.
func broadcast(root, n int, final []float64, down []chan []float64) {
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		out := append([]float64(nil), final...)
		down[r] <- out
	}
}

// TreeModel is the analytical latency model of tree all-reduce: a reduce
// sweep and a broadcast sweep, each of ⌈log₂ n⌉ levels moving the full
// model over one link.
type TreeModel struct {
	LinkBandwidth units.BytesPerSec
	HopLatency    float64
}

// Latency returns the tree all-reduce time for n ranks.
func (m TreeModel) Latency(n int, modelBytes units.Bytes) float64 {
	if n <= 1 || modelBytes <= 0 {
		return 0
	}
	levels := math.Ceil(math.Log2(float64(n)))
	per := float64(modelBytes)/float64(m.LinkBandwidth) + m.HopLatency
	return 2 * levels * per
}

// CrossoverBytes returns the model size below which the tree beats the
// ring for n ranks (solving tree latency < ring latency). It returns 0
// when the tree never wins.
func CrossoverBytes(ring RingModel, tree TreeModel, n int) units.Bytes {
	if n <= 2 {
		return 0
	}
	// ring: 2(n-1)/n·S/Br + 2(n-1)·h_r ; tree: 2L·S/Bt + 2L·h_t.
	levels := math.Ceil(math.Log2(float64(n)))
	ringBW := 2 * float64(n-1) / float64(n) / float64(ring.LinkBandwidth)
	treeBW := 2 * levels / float64(tree.LinkBandwidth)
	ringFix := 2 * float64(n-1) * ring.HopLatency
	treeFix := 2 * levels * tree.HopLatency
	// tree < ring ⇔ S·(treeBW − ringBW) < ringFix − treeFix.
	dBW := treeBW - ringBW
	dFix := ringFix - treeFix
	if dBW <= 0 {
		// Tree is at least as bandwidth-efficient (cannot happen with
		// equal links and n > 2); treat as always winning.
		return units.Bytes(math.Inf(1))
	}
	if dFix <= 0 {
		return 0
	}
	return units.Bytes(dFix / dBW)
}
