package collective_test

import (
	"context"
	"fmt"
	"log"

	"trainbox/internal/collective"
	"trainbox/internal/units"
)

// ExampleNewRing sums gradients across four ranks in place through the
// Reducer interface.
func ExampleNewRing() {
	ring, err := collective.NewRing()
	if err != nil {
		log.Fatal(err)
	}
	data := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
	}
	if err := ring.Reduce(context.Background(), data); err != nil {
		log.Fatal(err)
	}
	fmt.Println(data[0])
	fmt.Println(data[3])
	// Output:
	// [10 100]
	// [10 100]
}

// ExampleByName swaps the sync topology without changing the numbers:
// every backend reduces in the same canonical order, so the bits match
// the ring exactly.
func ExampleByName() {
	for _, name := range collective.Backends() {
		r, err := collective.ByName(name, collective.WithShards(2))
		if err != nil {
			// WithShards is a parameter-server option; the other
			// backends reject it rather than silently ignore it.
			r, err = collective.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
		}
		data := [][]float64{{1, 0.25}, {2, 0.5}, {4, 1}}
		if err := r.Reduce(context.Background(), data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v\n", r.Name(), data[0])
	}
	// Output:
	// ring: [7 1.75]
	// tree: [7 1.75]
	// halving: [7 1.75]
	// ps: [7 1.75]
}

// ExampleRingModel_NormalizedLatency reproduces Figure 2b's saturation:
// ring synchronization latency approaches twice the two-rank latency.
func ExampleRingModel_NormalizedLatency() {
	m := collective.DefaultRingModel()
	for _, n := range []int{2, 16, 256} {
		fmt.Printf("n=%d: %.2f\n", n, m.NormalizedLatency(n, 100*units.MB))
	}
	// Output:
	// n=2: 1.00
	// n=16: 1.88
	// n=256: 2.06
}
