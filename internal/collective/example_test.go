package collective_test

import (
	"fmt"
	"log"

	"trainbox/internal/collective"
	"trainbox/internal/units"
)

// ExampleRingAllReduce sums gradients across four ranks in place.
func ExampleRingAllReduce() {
	data := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
	}
	if err := collective.RingAllReduce(data); err != nil {
		log.Fatal(err)
	}
	fmt.Println(data[0])
	fmt.Println(data[3])
	// Output:
	// [10 100]
	// [10 100]
}

// ExampleRingModel_NormalizedLatency reproduces Figure 2b's saturation:
// ring synchronization latency approaches twice the two-rank latency.
func ExampleRingModel_NormalizedLatency() {
	m := collective.DefaultRingModel()
	for _, n := range []int{2, 16, 256} {
		fmt.Printf("n=%d: %.2f\n", n, m.NormalizedLatency(n, 100*units.MB))
	}
	// Output:
	// n=2: 1.00
	// n=16: 1.88
	// n=256: 2.06
}
