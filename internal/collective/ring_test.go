package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trainbox/internal/nn"
	"trainbox/internal/units"
)

func TestRingAllReduceMatchesSum(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		for _, length := range []int{1, 2, n - 1, n, n + 1, 100, 1000} {
			if length < 1 {
				continue
			}
			rng := rand.New(rand.NewSource(int64(n*1000 + length)))
			data := make([][]float64, n)
			oracle := make([][]float64, n)
			for r := range data {
				data[r] = make([]float64, length)
				for i := range data[r] {
					data[r][i] = rng.NormFloat64()
				}
				oracle[r] = append([]float64(nil), data[r]...)
			}
			if err := CentralAllReduce(oracle); err != nil {
				t.Fatal(err)
			}
			if err := RingAllReduce(data); err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
			for r := range data {
				for i := range data[r] {
					if math.Abs(data[r][i]-oracle[r][i]) > 1e-9*(1+math.Abs(oracle[r][i])) {
						t.Fatalf("n=%d len=%d rank=%d idx=%d: ring=%v central=%v",
							n, length, r, i, data[r][i], oracle[r][i])
					}
				}
			}
		}
	}
}

func TestRingAllReduceSingleRankIsNoop(t *testing.T) {
	data := [][]float64{{1, 2, 3}}
	if err := RingAllReduce(data); err != nil {
		t.Fatal(err)
	}
	if data[0][0] != 1 || data[0][2] != 3 {
		t.Error("single-rank all-reduce modified data")
	}
}

func TestRingAllReduceErrors(t *testing.T) {
	if err := RingAllReduce(nil); err == nil {
		t.Error("empty rank set accepted")
	}
	if err := RingAllReduce([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input accepted")
	}
	if err := CentralAllReduce(nil); err == nil {
		t.Error("central: empty rank set accepted")
	}
	if err := CentralAllReduce([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("central: ragged input accepted")
	}
}

func TestRingAllReduceEmptyVectors(t *testing.T) {
	data := [][]float64{{}, {}, {}}
	if err := RingAllReduce(data); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllReduceAverage(t *testing.T) {
	data := [][]float64{{4, 8}, {2, 0}}
	if err := RingAllReduceAverage(data); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if data[r][0] != 3 || data[r][1] != 4 {
			t.Fatalf("rank %d = %v, want [3 4]", r, data[r])
		}
	}
}

// TestRingAllReducePropertyEqualsOracle fuzzes rank counts and vector
// lengths against the sequential oracle.
func TestRingAllReducePropertyEqualsOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		length := rng.Intn(64)
		data := make([][]float64, n)
		oracle := make([][]float64, n)
		for r := range data {
			data[r] = make([]float64, length)
			for i := range data[r] {
				data[r][i] = rng.NormFloat64() * 100
			}
			oracle[r] = append([]float64(nil), data[r]...)
		}
		if CentralAllReduce(oracle) != nil || RingAllReduce(data) != nil {
			return false
		}
		for r := range data {
			for i := range data[r] {
				if math.Abs(data[r][i]-oracle[r][i]) > 1e-7*(1+math.Abs(oracle[r][i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRingAllReduceSynchronizesRealGradients is the integration with
// internal/nn: distinct replicas backprop different samples, all-reduce
// their gradients, and must end bit-identical and equal to the summed
// gradient.
func TestRingAllReduceSynchronizesRealGradients(t *testing.T) {
	const ranks = 4
	rng := rand.New(rand.NewSource(11))
	// Identical initial replicas (share the same seed).
	nets := make([]*nn.Network, ranks)
	for r := range nets {
		nets[r] = nn.NewMLP([]int{6, 8, 3}, rand.New(rand.NewSource(99)))
	}
	grads := make([][]float64, ranks)
	var expected []float64
	for r, net := range nets {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		label := rng.Intn(3)
		net.ZeroGrad()
		net.LossAndBackward(net.Forward(x), label)
		grads[r] = net.Gradients()
		if expected == nil {
			expected = make([]float64, len(grads[r]))
		}
		for i, v := range grads[r] {
			expected[i] += v
		}
	}
	if err := RingAllReduce(grads); err != nil {
		t.Fatal(err)
	}
	for r := range grads {
		for i := range grads[r] {
			if math.Abs(grads[r][i]-expected[i]) > 1e-9*(1+math.Abs(expected[i])) {
				t.Fatalf("rank %d grad %d: %v vs %v", r, i, grads[r][i], expected[i])
			}
		}
		if err := nets[r].SetGradients(grads[r]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRingModelLatencyShape(t *testing.T) {
	m := DefaultRingModel()
	const modelBytes = 100 * units.MB // ResNet-50 class
	l2 := m.Latency(2, modelBytes)
	if l2 <= 0 {
		t.Fatal("two-rank latency must be positive")
	}
	prev := l2
	for _, n := range []int{4, 8, 16, 64, 256} {
		l := m.Latency(n, modelBytes)
		if l < prev {
			t.Errorf("latency decreased at n=%d: %v < %v", n, l, prev)
		}
		prev = l
	}
	// Figure 2b: saturates at ~2× of the 2-accelerator latency.
	norm256 := m.NormalizedLatency(256, modelBytes)
	if norm256 < 1.9 || norm256 > 2.1 {
		t.Errorf("normalized latency at 256 = %v, want ≈2", norm256)
	}
	if m.NormalizedLatency(2, modelBytes) != 1 {
		t.Error("normalized latency at 2 must be 1")
	}
}

func TestRingModelEdgeCases(t *testing.T) {
	m := DefaultRingModel()
	if m.Latency(0, units.MB) != 0 || m.Latency(1, units.MB) != 0 {
		t.Error("n≤1 latency must be 0")
	}
	if m.Latency(8, 0) != 0 {
		t.Error("zero-byte latency must be 0")
	}
	if m.NormalizedLatency(8, 0) != 0 {
		t.Error("zero-byte normalized latency must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative ranks did not panic")
		}
	}()
	m.Latency(-1, units.MB)
}

func TestRingBeatsCentralAtScale(t *testing.T) {
	ring := DefaultRingModel()
	central := CentralModel{LinkBandwidth: ring.LinkBandwidth}
	const modelBytes = 100 * units.MB
	// At n=2 they are comparable; at n=256 central is ~n/2 slower.
	r256 := ring.Latency(256, modelBytes)
	c256 := central.Latency(256, modelBytes)
	if c256 < 50*r256 {
		t.Errorf("central %v should dwarf ring %v at 256 ranks", c256, r256)
	}
	if central.Latency(1, modelBytes) != 0 {
		t.Error("central n=1 latency must be 0")
	}
}

// TestRingModelBandwidthOptimality checks the ring transmits the
// information-theoretic minimum: per-rank traffic approaches 2× model
// size and never exceeds it.
func TestRingModelBandwidthOptimality(t *testing.T) {
	m := DefaultRingModel()
	const modelBytes = units.Bytes(1e9)
	for n := 2; n <= 1024; n *= 2 {
		transfer := m.Latency(n, modelBytes) - 2*float64(n-1)*m.HopLatency
		perRankBytes := transfer * float64(m.LinkBandwidth)
		if perRankBytes > 2*float64(modelBytes)*(1+1e-9) {
			t.Errorf("n=%d transmits %v bytes/rank, above the 2× bound", n, perRankBytes)
		}
	}
}
