// Package collective implements model synchronization for the TrainBox
// reproduction: a real chunked ring all-reduce executed by goroutine
// "accelerators" over channels, plus the analytical latency models the
// paper's simulator uses (Section II-B, Figure 2b).
//
// The ring algorithm is NCCL-style: a reduce-scatter phase followed by an
// all-gather phase, each of n−1 steps moving one data segment per step.
// Every rank transmits 2·(n−1)/n of the model size in total, which is why
// ring synchronization latency saturates at twice the two-accelerator
// latency as n grows — the curve Figure 2b plots and the property the
// analytical model reproduces exactly.
package collective

import (
	"fmt"
	"sync"
)

// RingAllReduce sums the rank vectors element-wise in place: after it
// returns, every data[i] holds the element-wise sum of all inputs. All
// vectors must have equal length. It runs one goroutine per rank,
// communicating over channels arranged in a ring, and errors (without
// modifying data) on invalid input.
//
// Deprecated: use NewRing, which returns the same algorithm behind the
// Reducer interface (bit-identical output) with context support and
// metrics. This shim is kept for compatibility and stays tested.
func RingAllReduce(data [][]float64) error {
	n := len(data)
	if n == 0 {
		return fmt.Errorf("collective: no ranks")
	}
	if n == 1 {
		return nil
	}
	length := len(data[0])
	for r, d := range data {
		if len(d) != length {
			return fmt.Errorf("collective: rank %d has %d elements, rank 0 has %d", r, len(d), length)
		}
	}
	if length == 0 {
		return nil
	}

	// Partition indices into n contiguous segments; segment s covers
	// [bounds[s], bounds[s+1]).
	bounds := make([]int, n+1)
	for s := 0; s <= n; s++ {
		bounds[s] = s * length / n
	}
	seg := func(v []float64, s int) []float64 { return v[bounds[s]:bounds[s+1]] }

	// chans[r] carries segments from rank r to rank (r+1) mod n. A buffer
	// of 1 lets each step's send complete without rendezvous.
	chans := make([]chan []float64, n)
	for i := range chans {
		chans[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			send := chans[rank]
			recv := chans[(rank-1+n)%n]
			mod := func(x int) int { return ((x % n) + n) % n }

			// Reduce-scatter: after n−1 steps, rank owns the fully
			// reduced segment (rank+1) mod n.
			for step := 0; step < n-1; step++ {
				out := mod(rank - step)
				in := mod(rank - step - 1)
				buf := append([]float64(nil), seg(data[rank], out)...)
				send <- buf
				incoming := <-recv
				dst := seg(data[rank], in)
				for i, v := range incoming {
					dst[i] += v
				}
			}
			// All-gather: circulate the reduced segments.
			for step := 0; step < n-1; step++ {
				out := mod(rank - step + 1)
				in := mod(rank - step)
				buf := append([]float64(nil), seg(data[rank], out)...)
				send <- buf
				incoming := <-recv
				copy(seg(data[rank], in), incoming)
			}
		}(rank)
	}
	wg.Wait()
	return nil
}

// RingAllReduceAverage performs RingAllReduce and then divides every
// element by the number of ranks — the gradient averaging used by
// data-parallel training.
//
// Deprecated: use NewRing and divide by the rank count, as
// train.Run does; the Reducer interface deliberately keeps averaging
// out of the sync backends so every backend sums identically. This
// shim is kept for compatibility and stays tested.
func RingAllReduceAverage(data [][]float64) error {
	if err := RingAllReduce(data); err != nil {
		return err
	}
	n := float64(len(data))
	for _, d := range data {
		for i := range d {
			d[i] /= n
		}
	}
	return nil
}

// CentralAllReduce is the naive baseline: gather all vectors to rank 0,
// sum, and broadcast. Same result as RingAllReduce; used by tests as an
// oracle and by benchmarks as the non-scalable comparison point.
func CentralAllReduce(data [][]float64) error {
	n := len(data)
	if n == 0 {
		return fmt.Errorf("collective: no ranks")
	}
	length := len(data[0])
	for r, d := range data {
		if len(d) != length {
			return fmt.Errorf("collective: rank %d has %d elements, rank 0 has %d", r, len(d), length)
		}
	}
	sum := make([]float64, length)
	for _, d := range data {
		for i, v := range d {
			sum[i] += v
		}
	}
	for _, d := range data {
		copy(d, sum)
	}
	return nil
}
