package collective

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// killShard injects ErrDeviceDead on a specific shard's push while the
// attempt number is below healAt — a shard replica dying mid-round and
// being replaced.
type killShard struct {
	key    string
	healAt int
}

func (k killShard) Inject(op faults.Op) faults.Fault {
	if op.Name == "collective.ps.push" && strings.HasPrefix(op.Key, k.key+"/") && op.Attempt < k.healAt {
		return faults.Fault{Err: faults.ErrDeviceDead}
	}
	return faults.Fault{}
}

// TestParamServerShardDeathRecovers kills one PS shard replica on the
// round's first attempt and asserts the bounded retry replays the round
// to a bit-identical result.
func TestParamServerShardDeathRecovers(t *testing.T) {
	const n, length = 8, 513
	base := randGrads(n, length, 99)
	want := cloneGrads(base)
	if err := RingAllReduce(want); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	ps, err := NewParamServer(
		WithShards(4),
		WithFaults(killShard{key: "shard-2", healAt: 2}),
		WithRetry(DefaultPSRetry()),
		WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := cloneGrads(base)
	if err := ps.Reduce(context.Background(), got); err != nil {
		t.Fatalf("reduce did not recover from shard death: %v", err)
	}
	requireBitIdentical(t, got, want, "ps after shard death")
	if retries := reg.Counter("collective.ps.shard_retries").Value(); retries < 2 {
		t.Errorf("shard_retries = %d, want >= 2 (two killed attempts)", retries)
	}
}

// TestParamServerPullFaultIsIdempotent kills a pull mid-round: some
// ranks have already been overwritten with reduced weights, and the
// replayed round must still land on the oracle bits because workers
// retained their push buffers.
type killPullOnce struct{}

func (killPullOnce) Inject(op faults.Op) faults.Fault {
	if op.Name == "collective.ps.pull" && op.Key == "shard-0/rank-3" && op.Attempt == 0 {
		return faults.Fault{Err: faults.Transient(errors.New("pull interrupted"))}
	}
	return faults.Fault{}
}

func TestParamServerPullFaultIsIdempotent(t *testing.T) {
	const n, length = 6, 257
	base := randGrads(n, length, 7)
	want := cloneGrads(base)
	if err := RingAllReduce(want); err != nil {
		t.Fatal(err)
	}
	ps, err := NewParamServer(WithFaults(killPullOnce{}), WithRetry(DefaultPSRetry()))
	if err != nil {
		t.Fatal(err)
	}
	got := cloneGrads(base)
	if err := ps.Reduce(context.Background(), got); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want, "ps after pull fault")
}

// TestParamServerRetryExhaustion keeps a shard dead past the retry
// budget and asserts Reduce surfaces the failure.
func TestParamServerRetryExhaustion(t *testing.T) {
	ps, err := NewParamServer(
		WithShards(2),
		WithFaults(killShard{key: "shard-1", healAt: 1 << 30}),
		WithRetry(DefaultPSRetry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = ps.Reduce(context.Background(), randGrads(4, 100, 1))
	if err == nil {
		t.Fatal("permanently dead shard did not fail the reduce")
	}
	if !errors.Is(err, faults.ErrDeviceDead) {
		t.Fatalf("error lost its cause: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the failed shard: %v", err)
	}
}

// TestParamServerNoRetryFailsFast: without WithRetry the zero-value
// policy makes one attempt, so a dead shard fails immediately.
func TestParamServerNoRetryFailsFast(t *testing.T) {
	ps, err := NewParamServer(WithFaults(killShard{key: "shard-0", healAt: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Reduce(context.Background(), randGrads(2, 10, 1)); err == nil {
		t.Fatal("dead shard with no retry budget did not fail")
	}
}

func TestParamServerModel(t *testing.T) {
	const mb = 100 * units.MB
	bw := 100 * units.GBps

	// Shards = 1 degenerates to CentralModel at the server link.
	ps := ParamServerModel{Shards: 1, WorkerBandwidth: bw, ServerBandwidth: bw}
	central := CentralModel{LinkBandwidth: bw}
	got, want := ps.Latency(16, mb), central.Latency(16, mb)
	// CentralModel serializes n−1 copies; PS with one shard serializes n
	// pushes — same asymptote, so just require the same scaling regime.
	if got < want*0.8 || got > want*1.3 {
		t.Errorf("1-shard PS latency %v not in CentralModel regime %v", got, want)
	}

	// More shards must be monotonically no slower, down to the
	// worker-link floor of 2·M/B.
	prev := math.Inf(1)
	for _, shards := range []int{1, 2, 4, 8, 16, 32} {
		m := ParamServerModel{Shards: shards, WorkerBandwidth: bw, ServerBandwidth: bw}
		l := m.Latency(16, mb)
		if l > prev {
			t.Errorf("latency rose when shards grew to %d: %v > %v", shards, l, prev)
		}
		prev = l
	}
	floor := 2 * float64(mb) / float64(bw)
	wide := ParamServerModel{Shards: 1024, WorkerBandwidth: bw, ServerBandwidth: bw}
	if l := wide.Latency(16, mb); math.Abs(l-floor) > floor*1e-9 {
		t.Errorf("wide PS tier latency %v, want worker floor %v", l, floor)
	}

	// Degenerate inputs cost nothing.
	if wide.Latency(1, mb) != 0 || wide.Latency(16, 0) != 0 {
		t.Error("degenerate inputs should cost 0")
	}
	// Zero-value Shards behaves as 1.
	zero := ParamServerModel{WorkerBandwidth: bw, ServerBandwidth: bw}
	one := ParamServerModel{Shards: 1, WorkerBandwidth: bw, ServerBandwidth: bw}
	if zero.Latency(8, mb) != one.Latency(8, mb) {
		t.Error("Shards=0 should behave as 1")
	}
}
