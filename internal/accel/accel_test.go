package accel

import (
	"math"
	"testing"

	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("zero-size cluster accepted")
	}
	c, err := NewCluster(16)
	if err != nil || c.N != 16 {
		t.Errorf("NewCluster: %v %+v", err, c)
	}
}

func TestComputeTimeAtTableBatch(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	got := ComputeTime(w, w.BatchSize)
	want := float64(w.BatchSize) / float64(w.AccelRate)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ComputeTime = %v, want %v", got, want)
	}
	if ComputeTime(w, 0) != 0 {
		t.Error("zero batch should cost 0")
	}
}

func TestThroughputScalesNearLinearly(t *testing.T) {
	// Figure 2b's consequence: ring sync keeps scaling efficient, so a
	// 256-accelerator cluster should deliver ≥ 95% of 256× one
	// accelerator for every Table I workload at its table batch.
	for _, w := range workload.Workloads() {
		c1, _ := NewCluster(1)
		c256, _ := NewCluster(256)
		t1 := float64(c1.PeakThroughput(w))
		t256 := float64(c256.PeakThroughput(w))
		eff := t256 / (256 * t1)
		if eff < 0.95 || eff > 1.0+1e-9 {
			t.Errorf("%s: 256-accel scaling efficiency = %.3f, want ≥0.95", w.Name, eff)
		}
	}
}

func TestSingleAcceleratorMatchesTableI(t *testing.T) {
	c, _ := NewCluster(1)
	for _, w := range workload.Workloads() {
		got := c.PeakThroughput(w)
		if math.Abs(float64(got-w.AccelRate)) > 1e-6 {
			t.Errorf("%s: single-accel throughput = %v, want %v", w.Name, got, w.AccelRate)
		}
	}
}

func TestSyncTimeGrowsThenSaturates(t *testing.T) {
	w, _ := workload.ByName("VGG-19") // largest model, most sync-sensitive
	c2, _ := NewCluster(2)
	c256, _ := NewCluster(256)
	s2 := c2.SyncTime(w)
	s256 := c256.SyncTime(w)
	if s256 <= s2 {
		t.Error("sync time should grow with cluster size")
	}
	if s256 > 2.2*s2 {
		t.Errorf("sync time at 256 = %v, should saturate near 2× of %v", s256, s2)
	}
}

func TestSyncEfficiencyHighAtTableBatch(t *testing.T) {
	c, _ := NewCluster(256)
	for _, w := range workload.Workloads() {
		eff := c.SyncEfficiency(w, w.BatchSize)
		if eff < 0.95 || eff > 1 {
			t.Errorf("%s sync efficiency = %.3f", w.Name, eff)
		}
	}
}

func TestSmallBatchHurtsThroughputTwice(t *testing.T) {
	// Figure 20's mechanism: smaller batches reduce accelerator
	// efficiency and amplify the relative sync cost.
	w, _ := workload.ByName("Resnet-50")
	c, _ := NewCluster(256)
	small := float64(c.Throughput(w, 8))
	large := float64(c.Throughput(w, 8192))
	if small >= large/10 {
		t.Errorf("batch-8 throughput %v should be far below batch-8192 %v", small, large)
	}
	// Sync efficiency must also be worse at the small batch.
	if c.SyncEfficiency(w, 8) >= c.SyncEfficiency(w, 8192) {
		t.Error("sync efficiency should drop at small batch")
	}
}

func TestThroughputMonotoneInBatch(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	c, _ := NewCluster(256)
	prev := units.SamplesPerSec(0)
	for _, b := range []int{8, 32, 128, 512, 2048, 8192} {
		tp := c.Throughput(w, b)
		if tp <= prev {
			t.Errorf("throughput not increasing at batch %d", b)
		}
		prev = tp
	}
}

func TestTargetAggregateRate(t *testing.T) {
	// The 256-accelerator target rates drive the Figure 10 requirement
	// curves; sanity-check the headline: ResNet-50 at 256 accelerators
	// approaches 1.9 M samples/s.
	w, _ := workload.ByName("Resnet-50")
	c, _ := NewCluster(256)
	got := float64(c.PeakThroughput(w))
	if got < 1.8e6 || got > 1.91e6 {
		t.Errorf("256-accel ResNet-50 rate = %v, want ≈1.9e6", got)
	}
}

func TestDegenerateInputs(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	c, _ := NewCluster(4)
	if ComputeTime(w, -1) != 0 {
		t.Error("negative batch should cost 0")
	}
	if c.Throughput(w, 0) != 0 {
		t.Error("zero batch throughput should be 0")
	}
	if c.SyncEfficiency(w, 0) != 0 {
		t.Error("zero batch efficiency should be 0")
	}
	// A zero-rate workload yields zero compute time (guarded division).
	broken := w
	broken.AccelRate = 0
	broken.BatchHalfSat = 1
	if ComputeTime(broken, 8) != 0 {
		t.Error("zero-rate workload should cost 0")
	}
}
