// Package accel models the neural-network accelerators (TPU v3-8-class)
// of the TrainBox reproduction. Following the paper's methodology, an
// accelerator is a black-box throughput source: per-workload rates are
// the Table I cloud measurements, batch-size efficiency follows a
// saturating curve, and model synchronization uses the ring model from
// internal/collective. Together they give the "model computation +
// synchronization" half of the training pipeline.
package accel

import (
	"fmt"

	"trainbox/internal/collective"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Cluster is a set of identical accelerators joined by a ring-optimized
// accelerator interconnect (NVLink/NVSwitch-class, Section V-D).
type Cluster struct {
	N    int
	Ring collective.RingModel
}

// NewCluster builds a cluster of n accelerators with the default ring.
func NewCluster(n int) (Cluster, error) {
	if n <= 0 {
		return Cluster{}, fmt.Errorf("accel: cluster needs at least one accelerator, got %d", n)
	}
	return Cluster{N: n, Ring: collective.DefaultRingModel()}, nil
}

// ComputeTime returns one accelerator's time for a batch of the workload
// at the given batch size.
func ComputeTime(w workload.Workload, batch int) float64 {
	if batch <= 0 {
		return 0
	}
	rate := w.EffectiveAccelRate(batch)
	if rate <= 0 {
		return 0
	}
	return float64(batch) / float64(rate)
}

// SyncTime returns the cluster's model-synchronization time per step.
func (c Cluster) SyncTime(w workload.Workload) float64 {
	return c.Ring.Latency(c.N, w.ModelBytes)
}

// StepTime returns the compute + synchronization time of one training
// step (every accelerator processes one batch, then gradients ring).
func (c Cluster) StepTime(w workload.Workload, batch int) float64 {
	return ComputeTime(w, batch) + c.SyncTime(w)
}

// Throughput returns the cluster's sample throughput for the workload at
// the given per-accelerator batch size: n·batch / step time. This is the
// "(b) model computation and synchronization" stage that data
// preparation must keep fed.
func (c Cluster) Throughput(w workload.Workload, batch int) units.SamplesPerSec {
	st := c.StepTime(w, batch)
	if st <= 0 {
		return 0
	}
	return units.SamplesPerSec(float64(c.N) * float64(batch) / st)
}

// PeakThroughput returns the cluster throughput at the workload's Table I
// batch size.
func (c Cluster) PeakThroughput(w workload.Workload) units.SamplesPerSec {
	return c.Throughput(w, w.BatchSize)
}

// SyncEfficiency returns the fraction of step time spent computing (1 =
// synchronization free). The paper's premise is that ring synchronization
// keeps this near 1 even at 256 accelerators.
func (c Cluster) SyncEfficiency(w workload.Workload, batch int) float64 {
	st := c.StepTime(w, batch)
	if st <= 0 {
		return 0
	}
	return ComputeTime(w, batch) / st
}
