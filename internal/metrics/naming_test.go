package metrics

import "testing"

func TestValidName(t *testing.T) {
	good := []string{
		"storage.nvme.bytes_read",
		"dataprep.executor.samples_prepared",
		"dataprep.prefetch.queue_depth",
		"train.driver.prep_step_overlap",
		"faults.injector.delay_ns",
		"fpga.pool.devices_ejected",
		"fpga.pool.joba.devices_ejected",
		"fpga.pool.device.0.utilization",
		"pipeline.fpga-pool.pool-dispatch.items",
		"pipeline.fpga-pool-joba.pool-dispatch.busy_ns",
		"preppool.job.job-a.pooled_share",
	}
	for _, name := range good {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false, want true", name)
		}
	}
	bad := []string{
		"",
		"train",                 // one segment
		"train.samples",         // two segments
		"Train.driver.samples",  // uppercase
		"train.driver.Samples",  // uppercase later segment
		".driver.samples",       // empty subsystem
		"train..samples",        // empty segment
		"train.driver.samples.", // trailing dot
		"9train.driver.samples", // subsystem starts with digit
		"train.driver.samp les", // whitespace
	}
	for _, name := range bad {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true, want false", name)
		}
	}
}
