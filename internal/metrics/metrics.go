// Package metrics is the repo's unified telemetry layer: a small,
// dependency-free registry of named counters, gauges, windowed
// histograms, and rate meters, with consistent snapshotting and
// JSON/expvar export.
//
// TrainBox's argument is quantitative — data preparation must keep up
// with accelerator demand, and the balance has to be re-measured as the
// system evolves (Section V). Every hot path of the reproduction
// therefore reports into a Registry: pipeline stages, the dataprep
// executor and prefetcher, the FPGA pool and P2P handlers, the training
// driver, and the storage layer. A snapshot of the registry is the
// machine-readable evidence `trainbox-bench -json` emits and the CI
// perf gate consumes.
//
// Design rules:
//
//   - No background goroutines. Rate meters derive rates lazily from a
//     monotonic start time, so attaching metrics never leaks a ticker.
//   - Nil-safety. Every metric method is a no-op on a nil receiver, and
//     a nil *Registry hands out nil metrics — components wire metric
//     handles unconditionally and pay nothing when unmetered.
//   - Snapshot isolation. Snapshot() deep-copies: mutating the registry
//     afterwards never changes an already-taken snapshot.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n may be any sign, but counters are meant to grow).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level — a queue depth, a utilization, an
// overlap ratio. Stored as float64 bits for atomic access.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer level.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add atomically adds delta to the level.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Meter is an event-rate meter: a count plus the wall-clock span it
// accumulated over. The rate is derived lazily at read time — no
// background ticker goroutine exists to leak.
type Meter struct {
	count atomic.Int64
	start time.Time
}

// Mark records n events.
func (m *Meter) Mark(n int64) {
	if m == nil {
		return
	}
	m.count.Add(n)
}

// Count returns the total events marked.
func (m *Meter) Count() int64 {
	if m == nil {
		return 0
	}
	return m.count.Load()
}

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	if m == nil {
		return 0
	}
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed
}

// MeterSnapshot is a meter's exported state.
type MeterSnapshot struct {
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// Registry is a namespace of metrics. Get-or-create accessors make
// wiring idempotent: two components asking for the same name share the
// metric. Counters, gauges, meters, and histograms live in separate
// kind-spaces (and separate snapshot sections), so a name identifies a
// (kind, name) pair.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	meters     map[string]*Meter
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		meters:     map[string]*Meter{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Meter returns the named meter, creating it on first use. A nil
// registry returns a nil (no-op) meter.
func (r *Registry) Meter(name string) *Meter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = &Meter{start: time.Now()}
		r.meters[name] = m
	}
	return m
}

// Histogram returns the named histogram with the default window,
// creating it on first use. A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(DefaultWindow)
		r.histograms[name] = h
	}
	return h
}
