package metrics

import (
	"encoding/json"
	"expvar"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, gauge, meter, and
// histogram from many goroutines; run under -race in CI it proves the
// hot-path operations are data-race free, and the final counts prove no
// increments are lost.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine: handles must converge on
			// the same metric.
			c := reg.Counter("c")
			g := reg.Gauge("g")
			m := reg.Meter("m")
			h := reg.Histogram("h")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				m.Mark(1)
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	const want = workers * perWorker
	if got := reg.Counter("c").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("g").Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := reg.Meter("m").Count(); got != want {
		t.Errorf("meter count = %d, want %d", got, want)
	}
	if got := reg.Histogram("h").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestSnapshotIsolation: a taken snapshot must not change when the
// registry's metrics keep moving.
func TestSnapshotIsolation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("items").Add(10)
	reg.Gauge("depth").Set(3)
	reg.Histogram("lat").Observe(100)

	snap := reg.Snapshot()

	reg.Counter("items").Add(90)
	reg.Gauge("depth").Set(7)
	reg.Histogram("lat").Observe(900)
	reg.Counter("new").Inc()

	if got := snap.Counters["items"]; got != 10 {
		t.Errorf("snapshot counter mutated: %d, want 10", got)
	}
	if got := snap.Gauges["depth"]; got != 3 {
		t.Errorf("snapshot gauge mutated: %v, want 3", got)
	}
	if got := snap.Histograms["lat"]; got.Count != 1 || got.Max != 100 {
		t.Errorf("snapshot histogram mutated: %+v", got)
	}
	if _, ok := snap.Counters["new"]; ok {
		t.Error("snapshot grew a metric registered after it was taken")
	}
}

// TestNilSafety: nil registries and nil metrics must be usable no-ops,
// the contract that lets components wire metrics unconditionally.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	m := reg.Meter("x")
	h := reg.Histogram("x")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.SetInt(2)
	m.Mark(3)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || m.Count() != 0 || m.Rate() != 0 || h.Count() != 0 {
		t.Error("nil metrics must read as zero")
	}
	snap := reg.Snapshot()
	if len(snap.Names()) != 0 {
		t.Errorf("nil registry snapshot has names: %v", snap.Names())
	}
	if (HistogramSnapshot{}) != h.Snapshot() {
		t.Error("nil histogram snapshot must be zero")
	}
}

// TestMeterRate: the rate must be count over elapsed wall time, derived
// lazily — and in particular nonzero without any ticker having run.
func TestMeterRate(t *testing.T) {
	reg := NewRegistry()
	m := reg.Meter("events")
	m.Mark(100)
	time.Sleep(10 * time.Millisecond)
	rate := m.Rate()
	if rate <= 0 {
		t.Fatalf("rate = %v, want > 0", rate)
	}
	if rate > 100/0.010 {
		t.Errorf("rate = %v, impossibly high for 100 events over ≥10ms", rate)
	}
}

// TestNoBackgroundGoroutines: creating registries, meters, and
// snapshots must not leave any goroutine behind — the metrics layer is
// wired into long-lived servers and must never leak a ticker.
func TestNoBackgroundGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		reg := NewRegistry()
		reg.Counter("c").Inc()
		reg.Meter("m").Mark(1)
		reg.Meter("m2").Mark(2)
		reg.Histogram("h").Observe(1)
		reg.Gauge("g").Set(1)
		_ = reg.Snapshot()
		_ = reg.Meter("m").Rate()
	}
	runtime.GC()
	// Allow the runtime a moment to retire any incidental goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d — a metric spawned a background ticker", before, runtime.NumGoroutine())
}

// TestSnapshotJSON: the snapshot must round-trip through JSON with the
// documented section names — the schema BENCH.json embeds.
func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.items").Add(3)
	reg.Gauge("a.depth").Set(1.5)
	reg.Meter("a.rate").Mark(2)
	reg.Histogram("a.lat").Observe(42)

	data, err := reg.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.items"] != 3 {
		t.Errorf("counter lost in round-trip: %+v", back)
	}
	if back.Gauges["a.depth"] != 1.5 {
		t.Errorf("gauge lost in round-trip: %+v", back)
	}
	if back.Meters["a.rate"].Count != 2 {
		t.Errorf("meter lost in round-trip: %+v", back)
	}
	if back.Histograms["a.lat"].Count != 1 {
		t.Errorf("histogram lost in round-trip: %+v", back)
	}
}

// TestGetOrCreateSharing: the same name must return the same metric, so
// independently wired components aggregate into one series.
func TestGetOrCreateSharing(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shared").Inc()
	reg.Counter("shared").Inc()
	if got := reg.Counter("shared").Value(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Error("same-name histograms are distinct instances")
	}
}

// TestExpvarPublish: Publish must export a live snapshot through the
// process expvar namespace.
func TestExpvarPublish(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(7)
	reg.Publish("metrics_test_registry")
	v := expvar.Get("metrics_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("unmarshal expvar value: %v", err)
	}
	if decoded.Counters["hits"] != 7 {
		t.Errorf("expvar snapshot = %+v, want hits=7", decoded)
	}
}
