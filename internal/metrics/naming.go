package metrics

import "regexp"

// validName is the repo-wide metric naming scheme:
// subsystem.object.metric — at least three dot-separated segments, all
// lowercase. The first segment (the subsystem) starts with a letter;
// later segments may start with a digit and may contain hyphens, which
// admits instance-scoped segments like "fpga.pool.device.0.utilization"
// and pipeline stages like "pipeline.fpga-pool.pool-dispatch.items".
var validName = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_-]*){2,}$`)

// ValidName reports whether name follows the subsystem.object.metric
// scheme. Production registrations are expected to pass; the registry
// itself does not enforce the rule (tests do), so scratch names in
// experiments stay cheap.
func ValidName(name string) bool {
	return validName.MatchString(name)
}
