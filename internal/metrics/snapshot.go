package metrics

import (
	"encoding/json"
	"expvar"
	"sort"
)

// Snapshot is a point-in-time copy of every metric in a registry,
// grouped by kind. It is fully detached from the registry: later metric
// updates never alter a taken snapshot. The zero value is an empty
// snapshot. It marshals to stable JSON (map keys sort lexically under
// encoding/json), which is what `trainbox-bench -json` embeds.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Meters     map[string]MeterSnapshot     `json:"meters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies out every registered metric. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	// Copy the metric pointers under the registry lock, then read each
	// metric outside it — metric reads take their own synchronization.
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	meters := make(map[string]*Meter, len(r.meters))
	for k, v := range r.meters {
		meters[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(meters) > 0 {
		s.Meters = make(map[string]MeterSnapshot, len(meters))
		for k, m := range meters {
			s.Meters[k] = MeterSnapshot{Count: m.Count(), RatePerSec: m.Rate()}
		}
	}
	if len(histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(histograms))
		for k, h := range histograms {
			s.Histograms[k] = h.Snapshot()
		}
	}
	return s
}

// Names returns every metric name in the snapshot, sorted, across all
// kinds — convenient for asserting coverage in tests.
func (s Snapshot) Names() []string {
	var out []string
	for k := range s.Counters {
		out = append(out, k)
	}
	for k := range s.Gauges {
		out = append(out, k)
	}
	for k := range s.Meters {
		out = append(out, k)
	}
	for k := range s.Histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Publish registers the registry under the given name in the process's
// expvar namespace (served at /debug/vars by net/http's default mux),
// exporting a live snapshot on every scrape. Like expvar.Publish it
// must be called at most once per name per process.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
