package metrics

import (
	"sort"
	"sync"
	"time"
)

// DefaultWindow is the observation window of registry-created
// histograms: quantiles are computed over the most recent DefaultWindow
// observations, while count/sum/min/max cover the histogram's lifetime.
const DefaultWindow = 2048

// Histogram records a stream of observations (latencies in nanoseconds,
// sizes in bytes) and reports lifetime aggregates plus windowed
// quantiles over the most recent observations. It is safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	window []float64 // ring buffer of the last cap(window) observations
	next   int       // ring write cursor
	filled bool      // true once the ring has wrapped

	count    int64
	sum      float64
	min, max float64
}

// NewHistogram creates a histogram whose quantiles are computed over a
// sliding window of the given size (window < 1 selects DefaultWindow).
func NewHistogram(window int) *Histogram {
	if window < 1 {
		window = DefaultWindow
	}
	return &Histogram{window: make([]float64, 0, window)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.window) < cap(h.window) {
		h.window = append(h.window, v)
		return
	}
	h.window[h.next] = v
	h.next++
	if h.next == cap(h.window) {
		h.next = 0
		h.filled = true
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()))
}

// Count returns the lifetime observation count (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSnapshot is a histogram's exported state. Count, Sum, Mean,
// Min, and Max are lifetime aggregates; the quantiles are computed over
// the current observation window.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot copies out the current state. The snapshot is isolated:
// later observations do not change it.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.window) == 0 {
		return s
	}
	sorted := append([]float64(nil), h.window...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
