package metrics

import (
	"math"
	"testing"
)

// TestQuantileCorrectness checks the interpolated quantiles against
// hand-computed values on a known sample.
func TestQuantileCorrectness(t *testing.T) {
	h := NewHistogram(100)
	// 1..100: p50 = 50.5, p95 = 95.05, p99 = 99.01 (linear interpolation
	// over ranks 0..99).
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 50.5},
		{"p95", s.P95, 95.05},
		{"p99", s.P99, 99.01},
		{"min", s.Min, 1},
		{"max", s.Max, 100},
		{"mean", s.Mean, 50.5},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if s.Count != 100 || s.Sum != 5050 {
		t.Errorf("count/sum = %d/%v, want 100/5050", s.Count, s.Sum)
	}
}

// TestQuantileWindowing: once the ring wraps, quantiles reflect only the
// most recent window observations, while count/min/max stay lifetime.
func TestQuantileWindowing(t *testing.T) {
	h := NewHistogram(10)
	// 100 old low values, then 10 recent high values fill the window.
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if s.P50 != 1000 || s.P99 != 1000 {
		t.Errorf("windowed quantiles = p50 %v p99 %v, want 1000 (old values must age out)", s.P50, s.P99)
	}
	if s.Count != 110 {
		t.Errorf("lifetime count = %d, want 110", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("lifetime min/max = %v/%v, want 1/1000", s.Min, s.Max)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("single-sample quantile = %v, want 42", got)
	}
	two := []float64{10, 20}
	if got := quantile(two, 0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := quantile(two, 1); got != 20 {
		t.Errorf("q1 = %v, want 20", got)
	}
	if got := quantile(two, 0.5); got != 15 {
		t.Errorf("q0.5 = %v, want 15", got)
	}

	var empty Histogram
	s := empty.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 {
		t.Errorf("empty histogram snapshot = %+v, want zeros", s)
	}
}

// TestNegativeAndUnsortedObservations: min/max tracking must handle
// values below zero and out-of-order streams.
func TestNegativeAndUnsortedObservations(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []float64{5, -3, 12, 0, -7, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Min != -7 || s.Max != 12 {
		t.Errorf("min/max = %v/%v, want -7/12", s.Min, s.Max)
	}
	if s.P50 < -3 || s.P50 > 9 {
		t.Errorf("p50 = %v, outside plausible range", s.P50)
	}
}
