package sim

import "fmt"

// Resource models a server with integer capacity (e.g. CPU cores, FPGA
// engines, SSD command slots). Requests acquire one or more units, hold
// them for a service time, and release. Waiters are served FIFO.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*acquire

	// Utilization accounting.
	busyIntegral float64 // ∫ inUse dt
	lastChange   float64
	grants       uint64
	waitTotal    float64 // summed queueing delay
}

type acquire struct {
	units int
	grant func()
	at    float64
}

// NewResource creates a resource with the given unit capacity.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive", name))
	}
	return &Resource{eng: eng, name: name, capacity: capacity, lastChange: eng.Now()}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the unit capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire requests units; grant runs (possibly immediately, synchronously)
// once they are available. Requests exceeding total capacity panic.
func (r *Resource) Acquire(units int, grant func()) {
	if units <= 0 || units > r.capacity {
		panic(fmt.Sprintf("sim: resource %q acquire %d of %d", r.name, units, r.capacity))
	}
	req := &acquire{units: units, grant: grant, at: r.eng.Now()}
	r.waiters = append(r.waiters, req)
	r.dispatch()
}

// Release returns units to the pool and serves any eligible waiters.
func (r *Resource) Release(units int) {
	if units <= 0 || units > r.inUse {
		panic(fmt.Sprintf("sim: resource %q release %d with %d in use", r.name, units, r.inUse))
	}
	r.account()
	r.inUse -= units
	r.dispatch()
}

// Use acquires units, holds them for service seconds, then releases and
// invokes done (which may be nil). It is the common acquire/hold/release
// pattern.
func (r *Resource) Use(units int, service float64, done func()) {
	r.Acquire(units, func() {
		r.eng.After(service, func() {
			r.Release(units)
			if done != nil {
				done()
			}
		})
	})
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.inUse+head.units > r.capacity {
			return // FIFO: do not let smaller later requests starve the head
		}
		r.waiters = r.waiters[1:]
		r.account()
		r.inUse += head.units
		r.grants++
		r.waitTotal += r.eng.Now() - head.at
		head.grant()
	}
}

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyIntegral += float64(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Utilization reports mean fraction of capacity in use since creation.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := r.lastChange
	if elapsed <= 0 {
		return 0
	}
	return r.busyIntegral / (elapsed * float64(r.capacity))
}

// MeanWait reports the average queueing delay per grant in seconds.
func (r *Resource) MeanWait() float64 {
	if r.grants == 0 {
		return 0
	}
	return r.waitTotal / float64(r.grants)
}

// QueueLen reports the number of waiting requests.
func (r *Resource) QueueLen() int { return len(r.waiters) }
