package sim

import (
	"math"
	"sort"
)

// Stats accumulates scalar observations (latencies, sizes) and reports
// summary statistics. The zero value is ready to use.
type Stats struct {
	n       int
	sum     float64
	sumSq   float64
	min     float64
	max     float64
	samples []float64 // retained for percentiles; bounded by Reserve callers
}

// Observe records one value.
func (s *Stats) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	s.samples = append(s.samples, v)
}

// N returns the number of observations.
func (s *Stats) N() int { return s.n }

// Sum returns the total of all observations.
func (s *Stats) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Stats) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Stats) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy; 0 with no observations.
func (s *Stats) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Counter is a monotonically accumulating quantity (bytes moved, samples
// completed) with rate reporting against a time base.
type Counter struct {
	total float64
}

// Add increments the counter.
func (c *Counter) Add(v float64) { c.total += v }

// Total returns the accumulated value.
func (c *Counter) Total() float64 { return c.total }

// Rate returns total/elapsed, or 0 when elapsed ≤ 0.
func (c *Counter) Rate(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return c.total / elapsed
}
