package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, d := range []float64{3, 1, 2, 1.5} {
		d := d
		e.At(d, func() { order = append(order, d) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, order[i], v, order)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at %d: got %v", i, order)
		}
	}
}

func TestEngineAfterChainsRelativeDelays(t *testing.T) {
	e := NewEngine()
	var finished float64
	e.After(1, func() {
		e.After(2, func() {
			finished = e.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 3 {
		t.Errorf("nested After finished at %v, want 3", finished)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(2, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNaNTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Error("double Cancel returned true")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.At(float64(i), func() { order = append(order, i) })
	}
	e.Cancel(evs[2])
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := NewEngine()
	e.SetStepLimit(10)
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	if err := e.Run(); err == nil {
		t.Fatal("unbounded self-rescheduling did not hit step limit")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() { count++ })
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("events run = %d, want 5", count)
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending() = %d, want 5", e.Pending())
	}
}

func TestResourceSerializesAtCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	var completions []float64
	for i := 0; i < 4; i++ {
		r.Use(1, 10, func() { completions = append(completions, e.Now()) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run at [0,10), the next two at [10,20).
	want := []float64{10, 10, 20, 20}
	if len(completions) != 4 {
		t.Fatalf("completions = %v", completions)
	}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("completion[%d] = %v, want %v", i, completions[i], w)
		}
	}
}

func TestResourceFIFOHeadOfLineBlocking(t *testing.T) {
	// A 2-unit request at the head must not be bypassed by a later 1-unit
	// request even when one unit is free.
	e := NewEngine()
	r := NewResource(e, "link", 2)
	var order []string
	r.Use(1, 5, nil) // holds one unit until t=5
	r.Acquire(2, func() {
		order = append(order, "big")
		e.After(1, func() { r.Release(2) })
	})
	r.Acquire(1, func() { order = append(order, "small") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("grant order = %v, want [big small]", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 4)
	r.Use(4, 10, nil)
	e.At(20, func() {}) // extend simulated time to 20
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Busy 4/4 for 10 s of 20 s -> 50%.
	if got := r.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}

func TestResourceMeanWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "one", 1)
	r.Use(1, 10, nil)
	r.Use(1, 10, nil) // waits 10
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.MeanWait(); math.Abs(got-5) > 1e-9 {
		t.Errorf("MeanWait = %v, want 5", got)
	}
}

func TestResourceInvalidOps(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("over-capacity acquire", func() { r.Acquire(3, func() {}) })
	mustPanic("zero acquire", func() { r.Acquire(0, func() {}) })
	mustPanic("over-release", func() { r.Release(1) })
	mustPanic("zero capacity", func() { NewResource(e, "y", 0) })
}

func TestStatsSummary(t *testing.T) {
	var s Stats
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("summary wrong: n=%d sum=%v mean=%v min=%v max=%v",
			s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	wantSD := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.StdDev()-wantSD) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), wantSD)
	}
}

func TestStatsPropertyMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Stats
		any := false
		for _, v := range vals {
			// Huge magnitudes overflow the running sum; the models only
			// ever observe physically-sized quantities.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e18 {
				continue
			}
			s.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		return s.Mean() >= s.Min()-1e-9*math.Abs(s.Min()) &&
			s.Mean() <= s.Max()+1e-9*math.Abs(s.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(50)
	if c.Total() != 150 {
		t.Errorf("Total = %v", c.Total())
	}
	if c.Rate(3) != 50 {
		t.Errorf("Rate = %v, want 50", c.Rate(3))
	}
	if c.Rate(0) != 0 {
		t.Errorf("Rate(0) = %v, want 0", c.Rate(0))
	}
}
