// Package sim implements a small discrete-event simulation engine used by
// the TrainBox system model to cross-check the analytical throughput
// solver with an event-level replay of the same flows.
//
// The engine is callback-based: events are closures scheduled at absolute
// simulated times. Helper types (Resource, Queue, Stats) build common
// queueing-model structure on top of the raw event loop. The engine is
// deterministic: ties in time are broken by insertion order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled closure. It runs at its Time with the engine clock
// already advanced.
type Event struct {
	Time   float64 // absolute simulated seconds
	Action func()

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // heap bookkeeping; -1 when not queued
}

// eventHeap orders events by (Time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation driver. The zero value is not
// ready; use NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	nextSeq uint64
	steps   uint64
	maxStep uint64 // safety bound; 0 = unlimited
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps reports how many events have been executed.
func (e *Engine) Steps() uint64 { return e.steps }

// SetStepLimit bounds the number of events Run will execute; exceeding it
// makes Run return an error. Zero disables the bound.
func (e *Engine) SetStepLimit(n uint64) { e.maxStep = n }

// At schedules action to run at absolute time t. Scheduling in the past
// panics: it is always a model bug.
func (e *Engine) At(t float64, action func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	ev := &Event{Time: t, Action: action, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules action to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, action func()) *Event {
	return e.At(e.now+d, action)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Run executes events until the queue is empty or until the optional step
// limit is exceeded (returned as an error).
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		if e.maxStep != 0 && e.steps >= e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%g", e.maxStep, e.now)
		}
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.Time
		e.steps++
		ev.Action()
	}
	return nil
}

// RunUntil executes events with time ≤ deadline, then advances the clock
// to the deadline. Remaining events stay queued.
func (e *Engine) RunUntil(deadline float64) error {
	for len(e.queue) > 0 && e.queue[0].Time <= deadline {
		if e.maxStep != 0 && e.steps >= e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%g", e.maxStep, e.now)
		}
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.Time
		e.steps++
		ev.Action()
	}
	if deadline > e.now {
		e.now = deadline
	}
	return nil
}

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }
