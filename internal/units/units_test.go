package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		512:       "512 B",
		2 * KB:    "2.00 KiB",
		1536 * KB: "1.50 MiB",
		3 * GB:    "3.00 GiB",
		2 * TB:    "2.00 TiB",
		2200 * TB: "2.15 PiB",
		Bytes(0):  "0 B",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(in), got, want)
		}
	}
}

func TestBytesPerSecString(t *testing.T) {
	cases := map[BytesPerSec]string{
		500:         "500 B/s",
		2 * KBps:    "2.00 KB/s",
		12.5 * GBps: "12.50 GB/s",
		239 * GBps:  "239.00 GB/s",
		1.5 * MBps:  "1.50 MB/s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(in), got, want)
		}
	}
}

func TestSamplesPerSecString(t *testing.T) {
	if got := SamplesPerSec(7431).String(); !strings.Contains(got, "7431.0") {
		t.Errorf("String() = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(32*GB, 16*GBps); math.Abs(got-float64(32*GB)/16e9) > 1e-12 {
		t.Errorf("Seconds = %v", got)
	}
	if Seconds(0, GBps) != 0 {
		t.Error("zero volume should take zero time")
	}
	if Seconds(-5, GBps) != 0 {
		t.Error("negative volume should take zero time")
	}
	if Seconds(GB, 0) < 1e29 {
		t.Error("zero bandwidth should yield an effectively infinite time")
	}
}

func TestSecondsPropertyMonotone(t *testing.T) {
	f := func(v1, v2, bw float64) bool {
		a := Bytes(math.Abs(v1))
		b := a + Bytes(math.Abs(v2))
		r := BytesPerSec(math.Abs(bw) + 1)
		return Seconds(b, r) >= Seconds(a, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnitRelations(t *testing.T) {
	if MB != 1024*KB || GB != 1024*MB || TB != 1024*GB || PB != 1024*TB {
		t.Error("binary prefixes inconsistent")
	}
	if GBps != 1000*MBps || MBps != 1000*KBps {
		t.Error("decimal prefixes inconsistent")
	}
}
