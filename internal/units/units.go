// Package units provides byte-size, bandwidth, and rate quantities used
// throughout the TrainBox models, together with human-readable formatting.
//
// All models in this repository express data volume in bytes (float64, so
// fractional per-sample accounting composes), bandwidth in bytes per
// second, and compute demand in core-seconds or engine-seconds. Using
// plain float64 named types keeps arithmetic free of conversion noise
// while the names document intent at API boundaries.
package units

import "fmt"

// Bytes is a data volume in bytes. Fractional values are legal: per-sample
// resource accounting frequently divides a batch across devices.
type Bytes float64

// Common byte quantities.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
	PB Bytes = 1 << 50
)

// String formats the volume with a binary-prefix unit, e.g. "1.50 MiB".
func (b Bytes) String() string {
	switch {
	case b >= PB:
		return fmt.Sprintf("%.2f PiB", float64(b/PB))
	case b >= TB:
		return fmt.Sprintf("%.2f TiB", float64(b/TB))
	case b >= GB:
		return fmt.Sprintf("%.2f GiB", float64(b/GB))
	case b >= MB:
		return fmt.Sprintf("%.2f MiB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.2f KiB", float64(b/KB))
	}
	return fmt.Sprintf("%.0f B", float64(b))
}

// BytesPerSec is a bandwidth in bytes per second.
type BytesPerSec float64

// Common bandwidth quantities.
const (
	KBps BytesPerSec = 1e3
	MBps BytesPerSec = 1e6
	GBps BytesPerSec = 1e9
)

// String formats the bandwidth with a decimal-prefix unit, e.g. "12.5 GB/s".
func (r BytesPerSec) String() string {
	switch {
	case r >= GBps:
		return fmt.Sprintf("%.2f GB/s", float64(r/GBps))
	case r >= MBps:
		return fmt.Sprintf("%.2f MB/s", float64(r/MBps))
	case r >= KBps:
		return fmt.Sprintf("%.2f KB/s", float64(r/KBps))
	}
	return fmt.Sprintf("%.0f B/s", float64(r))
}

// Seconds converts a volume and a bandwidth into a transfer time in
// seconds. A zero or negative bandwidth yields +Inf-free behaviour by
// returning 0 for zero volume and a very large time otherwise; callers
// treat that as "path unusable".
func Seconds(v Bytes, bw BytesPerSec) float64 {
	if v <= 0 {
		return 0
	}
	if bw <= 0 {
		return 1e30
	}
	return float64(v) / float64(bw)
}

// SamplesPerSec is a throughput in training samples per second.
type SamplesPerSec float64

// String formats the rate, e.g. "7431.0 samples/s".
func (s SamplesPerSec) String() string {
	return fmt.Sprintf("%.1f samples/s", float64(s))
}
