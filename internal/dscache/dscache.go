// Package dscache is the shared dataset cache tier: a size-bounded,
// ref-counted cache of *decoded* sample representations layered over
// internal/storage, in the style of FFCV's decode-cheap cached dataset
// format. The expensive, deterministic part of sample preparation —
// JPEG or PCM decode — runs once per (object key, prep fingerprint);
// every concurrent consumer (N training jobs sharing one dataset, or N
// epochs of one job) reuses the decoded bytes and runs only its own
// cheap, seeded augmentation downstream. A single-flight populate
// protocol guarantees one decoder per key with all other consumers
// waiting on its result, and CLOCK eviction keeps residency under a
// byte budget.
//
// The cached representation is the pre-augmentation decode output, so
// the cached path is bit-identical to the uncached path: augmentation
// is seeded per (dataset seed, key, epoch) and runs after the cache in
// both cases (asserted by the oracle tests here and in dataprep).
//
// Entry payload buffers draw from and return to a memframe Set owned by
// the cache, so eviction churn recycles a bounded working set instead
// of allocating per populate.
package dscache

import (
	"context"
	"fmt"
	"sync"

	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// Decoded is one cached sample representation: exactly one of the
// fields is set, matching the sample's modality. The contents are
// immutable once cached — consumers must treat an Image as a read-only
// crop source and must copy Signal before mutating augmentation (the
// cached image preparers here do exactly that).
type Decoded struct {
	// Image is a decoded (pre-crop, pre-augment) image.
	Image *imgproc.Image
	// Signal is a decoded PCM signal.
	Signal []float64
}

// Bytes is the representation's resident size, the unit of the cache
// budget.
func (d Decoded) Bytes() int64 {
	var n int64
	if d.Image != nil {
		n += int64(len(d.Image.Pix))
	}
	n += int64(8 * len(d.Signal))
	return n
}

// ckey is the cache key: the storage object key plus the prep config
// fingerprint, so two jobs with decode-incompatible configs never share
// an entry.
type ckey struct{ key, fp string }

// entry is one resident (or in-flight) decoded sample.
type entry struct {
	ck        ckey
	d         Decoded
	bytes     int64
	refs      int           // consumers holding a Handle (or waiting)
	refbit    bool          // CLOCK reference bit
	populated bool          // d is valid; false while the decode is in flight
	err       error         // terminal decode error (entry already unmapped)
	done      chan struct{} // closed when the populate resolves either way
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Acquires served from an existing entry — including
	// single-flight waiters, which additionally count in
	// SingleflightWaits.
	Hits int64
	// Misses counts decode invocations (one per populate attempt); with
	// no cache every Acquire would have been a decode, so
	// Hits+Misses−Misses quantifies the decodes amortized away.
	Misses int64
	// Evictions counts entries removed to fit the byte budget (Purge
	// included).
	Evictions int64
	// SingleflightWaits counts consumers that blocked on another
	// consumer's in-flight decode instead of decoding themselves.
	SingleflightWaits int64
	// BytesResident is the current resident payload volume.
	BytesResident int64
	// Entries is the current entry count (in-flight included).
	Entries int64
}

// Cache is the shared tier. All methods are safe for concurrent use.
type Cache struct {
	name   string
	budget int64
	frames *memframe.Set

	mu      sync.Mutex
	entries map[ckey]*entry
	ring    []*entry // CLOCK ring over populated entries
	hand    int
	bytes   int64
	stats   Stats

	mHits, mMisses, mEvictions, mWaits *metrics.Counter
	mBytes, mEntries                   *metrics.Gauge
}

// Option configures a Cache at construction.
type Option func(*Cache)

// WithName sets the metric-facing tier name (default "tier"); metrics
// bind under "dscache.<name>.*".
func WithName(name string) Option {
	return func(c *Cache) {
		if name != "" {
			c.name = name
		}
	}
}

// New builds a cache with the given resident-byte budget. Referenced
// entries are never evicted, so residency can transiently exceed the
// budget while consumers hold more than it; eviction catches up as
// handles are released. A budget of 0 still deduplicates concurrent
// decodes (single-flight) but keeps nothing resident beyond live
// references.
func New(budget units.Bytes, opts ...Option) *Cache {
	c := &Cache{
		name:    "tier",
		budget:  int64(budget),
		frames:  memframe.NewSet(),
		entries: make(map[ckey]*entry),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WithMetrics binds the cache to reg under "dscache.<name>.*"
// (hits, misses, evictions, singleflight_waits counters;
// bytes_resident, entries gauges) and returns c for chaining. Call
// before serving traffic; a nil registry detaches.
func (c *Cache) WithMetrics(reg *metrics.Registry) *Cache {
	if reg == nil {
		c.mHits, c.mMisses, c.mEvictions, c.mWaits = nil, nil, nil, nil
		c.mBytes, c.mEntries = nil, nil
		return c
	}
	prefix := "dscache." + c.name + "."
	c.mHits = reg.Counter(prefix + "hits")
	c.mMisses = reg.Counter(prefix + "misses")
	c.mEvictions = reg.Counter(prefix + "evictions")
	c.mWaits = reg.Counter(prefix + "singleflight_waits")
	c.mBytes = reg.Gauge(prefix + "bytes_resident")
	c.mEntries = reg.Gauge(prefix + "entries")
	return c
}

// Name returns the tier name.
func (c *Cache) Name() string { return c.name }

// Budget returns the resident-byte budget.
func (c *Cache) Budget() units.Bytes { return units.Bytes(c.budget) }

// Handle is a reference-counted lease on one cached representation.
// The payload stays resident (never evicted) until Release; release
// exactly once, after the last read. Handles are values — copy freely,
// release once.
type Handle struct {
	c *Cache
	e *entry
}

// Image returns the cached decoded image (nil for audio entries). Read
// only — the buffer is shared by every consumer of the entry.
func (h Handle) Image() *imgproc.Image { return h.e.d.Image }

// Signal returns the cached decoded PCM signal (nil for image entries).
// Read only — copy before mutating.
func (h Handle) Signal() []float64 { return h.e.d.Signal }

// Bytes returns the payload's resident size.
func (h Handle) Bytes() int64 { return h.e.bytes }

// Release returns the lease. After the last release an entry becomes
// evictable; if the cache is over budget the eviction clock runs
// immediately.
func (h Handle) Release() {
	if h.c == nil || h.e == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	h.e.refs--
	if h.e.refs < 0 {
		c.mu.Unlock()
		panic(fmt.Sprintf("dscache: %s: double release of %q", c.name, h.e.ck.key))
	}
	if c.bytes > c.budget {
		c.evictLocked()
	}
	c.mu.Unlock()
}

// Acquire returns a handle on the decoded representation of (key, fp),
// decoding at most once per resident lifetime: the first consumer runs
// decode (drawing payload buffers from pool, the cache's memframe Set)
// while every concurrent consumer of the same key waits for that one
// result — the single-flight contract. A decode error is returned to
// the decoder and every waiter, and the entry is unmapped so a later
// Acquire retries. ctx bounds only the wait on another consumer's
// decode; the decode itself runs to completion under the decoder's
// call.
func (c *Cache) Acquire(ctx context.Context, key, fp string, decode func(pool *memframe.Set) (Decoded, error)) (Handle, error) {
	k := ckey{key: key, fp: fp}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		e.refs++
		if !e.populated {
			c.stats.SingleflightWaits++
			c.mWaits.Inc()
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				c.mu.Lock()
				e.refs--
				c.mu.Unlock()
				return Handle{}, ctx.Err()
			}
			c.mu.Lock()
		}
		if e.err != nil {
			err := e.err
			e.refs--
			c.mu.Unlock()
			return Handle{}, err
		}
		e.refbit = true
		c.stats.Hits++
		c.mHits.Inc()
		c.mu.Unlock()
		return Handle{c: c, e: e}, nil
	}

	// Miss: this consumer is the decoder.
	e := &entry{ck: k, refs: 1, done: make(chan struct{})}
	c.entries[k] = e
	c.stats.Misses++
	c.mMisses.Inc()
	c.gaugesLocked()
	c.mu.Unlock()

	d, err := decode(c.frames)

	c.mu.Lock()
	if err != nil {
		e.err = err
		e.refs--
		delete(c.entries, k)
		close(e.done)
		c.gaugesLocked()
		c.mu.Unlock()
		return Handle{}, err
	}
	e.d = d
	e.bytes = d.Bytes()
	e.populated = true
	// The reference bit starts cleared: an entry earns its second
	// chance on its first re-hit, so one-touch entries evict before
	// anything a consumer came back for (scan resistance).
	c.bytes += e.bytes
	c.ring = append(c.ring, e)
	if c.bytes > c.budget {
		c.evictLocked()
	}
	close(e.done)
	c.gaugesLocked()
	c.mu.Unlock()
	return Handle{c: c, e: e}, nil
}

// Contains reports whether (key, fp) is resident and populated.
func (c *Cache) Contains(key, fp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ckey{key: key, fp: fp}]
	return ok && e.populated
}

// OrderKeys returns keys reordered cache-aware: resident keys first,
// then the rest, each half keeping its input order. Iterating an
// epoch's permutation this way consumes what is already decoded before
// paying for misses — under a tight budget, concurrent jobs then ride
// each other's populates instead of thrashing the clock.
func (c *Cache) OrderKeys(keys []string, fp string) []string {
	out := make([]string, 0, len(keys))
	var cold []string
	c.mu.Lock()
	for _, k := range keys {
		if e, ok := c.entries[ckey{key: k, fp: fp}]; ok && e.populated {
			out = append(out, k)
		} else {
			cold = append(cold, k)
		}
	}
	c.mu.Unlock()
	return append(out, cold...)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesResident = c.bytes
	s.Entries = int64(len(c.entries))
	return s
}

// PoolStats returns the aggregated counters of the cache's payload
// pools — after Purge, Gets == Puts means no payload buffer leaked.
func (c *Cache) PoolStats() memframe.Stats { return c.frames.Stats() }

// Purge evicts every unreferenced populated entry regardless of budget
// and returns how many were dropped. In-flight and referenced entries
// stay.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for i := 0; i < len(c.ring); {
		if c.ring[i].refs > 0 {
			i++
			continue
		}
		c.evictEntryLocked(i)
		dropped++
	}
	c.gaugesLocked()
	return dropped
}

// evictLocked runs the CLOCK hand until residency fits the budget or
// nothing more is evictable (every entry referenced). Entries get one
// second chance via the reference bit, set on every hit.
func (c *Cache) evictLocked() {
	scanned := 0
	for c.bytes > c.budget && len(c.ring) > 0 && scanned <= 2*len(c.ring) {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.refs > 0 {
			c.hand++
			scanned++
			continue
		}
		if e.refbit {
			e.refbit = false
			c.hand++
			scanned++
			continue
		}
		c.evictEntryLocked(c.hand)
		scanned = 0
	}
	c.gaugesLocked()
}

// evictEntryLocked removes ring[i], unmaps it, and recycles its payload
// buffers into the cache's pools.
func (c *Cache) evictEntryLocked(i int) {
	e := c.ring[i]
	c.ring = append(c.ring[:i], c.ring[i+1:]...)
	if c.hand > i {
		c.hand--
	}
	delete(c.entries, e.ck)
	c.bytes -= e.bytes
	if e.d.Image != nil {
		c.frames.U8.Put(e.d.Image.Pix)
	}
	if e.d.Signal != nil {
		c.frames.F64.Put(e.d.Signal)
	}
	c.stats.Evictions++
	c.mEvictions.Inc()
}

// gaugesLocked refreshes the residency gauges.
func (c *Cache) gaugesLocked() {
	c.mBytes.SetInt(c.bytes)
	c.mEntries.SetInt(int64(len(c.entries)))
}
