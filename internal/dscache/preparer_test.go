package dscache

import (
	"fmt"
	"sync"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

func imageStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	s := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(s, n, 4, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func audioStore(t *testing.T, n int) *storage.Store {
	t.Helper()
	s := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildAudioDataset(s, n, 4, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func samplesEqual(t *testing.T, label string, got, want dataprep.Prepared) {
	t.Helper()
	if got.Err != nil || want.Err != nil {
		t.Fatalf("%s: errs %v / %v", label, got.Err, want.Err)
	}
	if got.Key != want.Key || got.Label != want.Label {
		t.Fatalf("%s: identity %s/%d, want %s/%d", label, got.Key, got.Label, want.Key, want.Label)
	}
	switch {
	case want.Image != nil:
		if got.Image == nil || len(got.Image.Data) != len(want.Image.Data) {
			t.Fatalf("%s: image shape mismatch", label)
		}
		for i := range want.Image.Data {
			if got.Image.Data[i] != want.Image.Data[i] {
				t.Fatalf("%s: image cell %d = %v, want %v", label, i, got.Image.Data[i], want.Image.Data[i])
			}
		}
	case want.Audio != nil:
		if got.Audio == nil || len(got.Audio.Data) != len(want.Audio.Data) {
			t.Fatalf("%s: audio shape mismatch", label)
		}
		for i := range want.Audio.Data {
			if got.Audio.Data[i] != want.Audio.Data[i] {
				t.Fatalf("%s: audio cell %d = %v, want %v", label, i, got.Audio.Data[i], want.Audio.Data[i])
			}
		}
	default:
		t.Fatalf("%s: oracle sample carries no payload", label)
	}
}

// TestCachedImagePreparerBitIdentical is the core oracle: the cached
// preparer's output — cold (populating) and warm (hitting) — is
// byte-for-byte the uncached preparer's, across keys, seeds, and
// epochs.
func TestCachedImagePreparerBitIdentical(t *testing.T) {
	store := imageStore(t, 6)
	cfg := dataprep.DefaultImageConfig()
	plain := dataprep.ImagePreparer{Config: cfg}
	cached := ImagePreparer{Cache: New(64 * units.MB), Config: cfg}
	for _, datasetSeed := range []int64{1, 7, 42} {
		for epoch := 0; epoch < 3; epoch++ {
			for _, key := range store.Keys() {
				obj, err := store.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				seed := dataprep.SampleSeed(datasetSeed, key, epoch)
				want := plain.Prepare(obj, seed)
				got := cached.Prepare(obj, seed)
				samplesEqual(t, fmt.Sprintf("ds=%d epoch=%d key=%s", datasetSeed, epoch, key), got, want)
			}
		}
	}
	// 3 dataset seeds × 3 epochs touched every key 9 times; the decode
	// ran once per key.
	if s := cached.Cache.Stats(); s.Misses != 6 {
		t.Fatalf("decodes = %d, want 6 (one per key)", s.Misses)
	}
}

// TestCachedAudioPreparerBitIdentical: same oracle for the audio
// modality, whose augmentation mutates the signal (the cached copy must
// stay pristine between consumers).
func TestCachedAudioPreparerBitIdentical(t *testing.T) {
	store := audioStore(t, 4)
	cfg := dataprep.DefaultAudioConfig()
	plain := dataprep.AudioPreparer{Config: cfg}
	cached := AudioPreparer{Cache: New(64 * units.MB), Config: cfg}
	for epoch := 0; epoch < 3; epoch++ {
		for _, key := range store.Keys() {
			obj, err := store.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			seed := dataprep.SampleSeed(3, key, epoch)
			samplesEqual(t, fmt.Sprintf("epoch=%d key=%s", epoch, key),
				cached.Prepare(obj, seed), plain.Prepare(obj, seed))
		}
	}
	if s := cached.Cache.Stats(); s.Misses != 4 {
		t.Fatalf("decodes = %d, want 4 (one per key)", s.Misses)
	}
}

// TestExecutorEpochThroughCacheBitIdentical: a whole executor epoch
// served through the cache (scratch path, pooled outputs) matches the
// uncached executor's epoch — cold and warm.
func TestExecutorEpochThroughCacheBitIdentical(t *testing.T) {
	store := imageStore(t, 8)
	cfg := dataprep.DefaultImageConfig()
	keys := store.Keys()
	oracle := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 4, 9)
	cachedExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 4, 9)
	c := New(64 * units.MB)
	if fp, ok := Bind(c, cachedExec); !ok || fp != ImageFingerprint {
		t.Fatalf("Bind = (%q, %v), want (%q, true)", fp, ok, ImageFingerprint)
	}
	for epoch := 0; epoch < 3; epoch++ { // epoch 0 cold, 1..2 warm
		want, err := oracle.PrepareBatch(store, keys, epoch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cachedExec.PrepareBatch(store, keys, epoch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			samplesEqual(t, fmt.Sprintf("epoch=%d sample=%d", epoch, i), got[i], want[i])
		}
		oracle.Recycle(want...)
		cachedExec.Recycle(got...)
	}
	if s := c.Stats(); s.Misses != int64(len(keys)) {
		t.Fatalf("decodes = %d, want %d", s.Misses, len(keys))
	}
}

// TestFourConsumersAmortizeDecodes is the tentpole's measured claim at
// oracle strength: 4 concurrent executors on one dataset, one shared
// cache — total decode invocations collapse from 4×keys×epochs to keys
// (≥ 2× fewer; here 12× with 3 epochs), and every consumer's samples
// stay bit-identical to its own uncached run.
func TestFourConsumersAmortizeDecodes(t *testing.T) {
	const (
		consumers = 4
		epochs    = 3
		items     = 6
	)
	store := imageStore(t, items)
	cfg := dataprep.DefaultImageConfig()
	keys := store.Keys()
	c := New(64 * units.MB)
	var wg sync.WaitGroup
	errs := make([]error, consumers)
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each consumer is its own job: own executor, own dataset
			// seed, shared cache.
			seed := int64(100 + w)
			exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, seed)
			if _, ok := Bind(c, exec); !ok {
				errs[w] = fmt.Errorf("bind failed")
				return
			}
			oracle := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, seed)
			for epoch := 0; epoch < epochs; epoch++ {
				got, err := exec.PrepareBatch(store, keys, epoch)
				if err != nil {
					errs[w] = err
					return
				}
				want, err := oracle.PrepareBatch(store, keys, epoch)
				if err != nil {
					errs[w] = err
					return
				}
				for i := range want {
					if got[i].Err != nil || len(got[i].Image.Data) != len(want[i].Image.Data) {
						errs[w] = fmt.Errorf("epoch %d sample %d shape/err mismatch", epoch, i)
						return
					}
					for j := range want[i].Image.Data {
						if got[i].Image.Data[j] != want[i].Image.Data[j] {
							errs[w] = fmt.Errorf("epoch %d sample %d cell %d diverged", epoch, i, j)
							return
						}
					}
				}
				exec.Recycle(got...)
				oracle.Recycle(want...)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("consumer %d: %v", w, err)
		}
	}
	s := c.Stats()
	uncachedDecodes := int64(consumers * epochs * items)
	if s.Misses != items {
		t.Fatalf("decodes = %d, want %d (single-flight + residency)", s.Misses, items)
	}
	if uncachedDecodes < 2*s.Misses {
		t.Fatalf("amortization %d/%d below the 2× acceptance bar", uncachedDecodes, s.Misses)
	}
}

// TestWrapPreparerForms covers the wrap matrix: CPU preparers wrap,
// wrapped ones re-target, video passes through unchanged.
func TestWrapPreparerForms(t *testing.T) {
	c1, c2 := New(units.MB), New(units.MB)
	img, ok := WrapPreparer(c1, dataprep.ImagePreparer{Config: dataprep.DefaultImageConfig()})
	if !ok {
		t.Fatal("image preparer did not wrap")
	}
	re, ok := WrapPreparer(c2, img)
	if !ok || re.(ImagePreparer).Cache != c2 {
		t.Fatal("wrapped preparer did not re-target")
	}
	if _, ok := WrapPreparer(c1, dataprep.AudioPreparer{}); !ok {
		t.Fatal("audio preparer did not wrap")
	}
	if _, ok := WrapPreparer(c1, dataprep.VideoPreparer{}); ok {
		t.Fatal("video preparer unexpectedly wrapped")
	}
	if fp := PreparerFingerprint(dataprep.VideoPreparer{}); fp != "" {
		t.Fatalf("video fingerprint = %q, want empty", fp)
	}
}
