package dscache

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// decodeSignal fabricates a deterministic n-sample signal for key.
func decodeSignal(key string, n int) func(pool *memframe.Set) (Decoded, error) {
	return func(pool *memframe.Set) (Decoded, error) {
		sig := pool.F64.Get(n)
		for i := range sig {
			sig[i] = float64(len(key) + i)
		}
		return Decoded{Signal: sig}, nil
	}
}

func TestAcquireHitMissRelease(t *testing.T) {
	c := New(1 * units.MB)
	ctx := context.Background()
	var decodes atomic.Int64
	dec := func(pool *memframe.Set) (Decoded, error) {
		decodes.Add(1)
		return decodeSignal("a", 128)(pool)
	}
	h1, err := c.Acquire(ctx, "a", "fp", dec)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire(ctx, "a", "fp", dec)
	if err != nil {
		t.Fatal(err)
	}
	if decodes.Load() != 1 {
		t.Fatalf("decodes = %d, want 1", decodes.Load())
	}
	if &h1.Signal()[0] != &h2.Signal()[0] {
		t.Fatal("two handles on one key returned different buffers")
	}
	h1.Release()
	h2.Release()
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
	if s.BytesResident != 8*128 || s.Entries != 1 {
		t.Fatalf("residency = %d bytes / %d entries, want %d / 1", s.BytesResident, s.Entries, 8*128)
	}
}

func TestFingerprintSeparatesConfigs(t *testing.T) {
	c := New(1 * units.MB)
	ctx := context.Background()
	h1, err := c.Acquire(ctx, "a", "fp1", decodeSignal("a", 64))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire(ctx, "a", "fp2", decodeSignal("a", 64))
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	defer h2.Release()
	if &h1.Signal()[0] == &h2.Signal()[0] {
		t.Fatal("different fingerprints shared an entry")
	}
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
}

// TestSingleFlight: N concurrent consumers of one cold key trigger
// exactly one decode; the rest wait and share its result.
func TestSingleFlight(t *testing.T) {
	c := New(1 * units.MB)
	const consumers = 16
	var decodes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	dec := func(pool *memframe.Set) (Decoded, error) {
		decodes.Add(1)
		close(started)
		<-release // hold the populate so every other consumer must wait
		return decodeSignal("k", 256)(pool)
	}
	var wg sync.WaitGroup
	errs := make([]error, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire(context.Background(), "k", "fp", dec)
			if err != nil {
				errs[i] = err
				return
			}
			if h.Signal()[0] != float64(1) {
				errs[i] = fmt.Errorf("bad payload %v", h.Signal()[0])
			}
			h.Release()
		}(i)
	}
	<-started
	// Give the other consumers a moment to queue up on the in-flight
	// entry, then let the decode finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("consumer %d: %v", i, err)
		}
	}
	if decodes.Load() != 1 {
		t.Fatalf("decodes = %d, want 1 (single-flight)", decodes.Load())
	}
	s := c.Stats()
	if s.Hits != consumers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, consumers-1)
	}
	if s.SingleflightWaits == 0 {
		t.Fatal("no consumer recorded a single-flight wait")
	}
}

// TestDecodeErrorSharedAndRetryable: the decode error reaches the
// decoder and every waiter, and the key is decodable again afterwards.
func TestDecodeErrorSharedAndRetryable(t *testing.T) {
	c := New(1 * units.MB)
	boom := fmt.Errorf("bad jpeg")
	if _, err := c.Acquire(context.Background(), "k", "fp", func(*memframe.Set) (Decoded, error) {
		return Decoded{}, boom
	}); err == nil {
		t.Fatal("decode error not returned")
	}
	h, err := c.Acquire(context.Background(), "k", "fp", decodeSignal("k", 64))
	if err != nil {
		t.Fatalf("retry after failed populate: %v", err)
	}
	h.Release()
	if c.Stats().Misses != 2 {
		t.Fatalf("misses = %d, want 2 (failed populate unmapped)", c.Stats().Misses)
	}
}

// TestWaiterContextCancel: a waiter bounded by its context abandons the
// wait without corrupting the entry for everyone else.
func TestWaiterContextCancel(t *testing.T) {
	c := New(1 * units.MB)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		h, err := c.Acquire(context.Background(), "k", "fp", func(pool *memframe.Set) (Decoded, error) {
			close(started)
			<-release
			return decodeSignal("k", 64)(pool)
		})
		if err == nil {
			h.Release()
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Acquire(ctx, "k", "fp", decodeSignal("k", 64)); err == nil {
		t.Fatal("cancelled waiter did not return an error")
	}
	close(release)
	// The entry must still resolve for a fresh consumer.
	h, err := c.Acquire(context.Background(), "k", "fp", decodeSignal("k", 64))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}

// TestEvictionUnderBudget: populates beyond the budget evict the
// coldest unreferenced entries; referenced entries survive.
func TestEvictionUnderBudget(t *testing.T) {
	// Budget fits exactly two 128-sample signals (8*128 = 1 KiB each).
	c := New(2 * units.KB)
	ctx := context.Background()
	pinned, err := c.Acquire(ctx, "pinned", "fp", decodeSignal("pinned", 128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		h, err := c.Acquire(ctx, fmt.Sprintf("k%d", i), "fp", decodeSignal("k", 128))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	s := c.Stats()
	if s.BytesResident > 2*1024 {
		t.Fatalf("resident %d bytes exceeds budget with no live refs beyond it", s.BytesResident)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite populating 9 KiB into a 2 KiB budget")
	}
	if !c.Contains("pinned", "fp") {
		t.Fatal("referenced entry was evicted")
	}
	pinned.Release()
}

// TestClockSecondChance: a recently hit entry survives one eviction
// pass that removes a never-rehit sibling.
func TestClockSecondChance(t *testing.T) {
	c := New(2 * units.KB)
	ctx := context.Background()
	for _, k := range []string{"hot", "cold"} {
		h, err := c.Acquire(ctx, k, "fp", decodeSignal(k, 128))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// Rehit "hot" so its reference bit is set; "cold" keeps a cleared
	// bit once the clock sweeps past both.
	h, err := c.Acquire(ctx, "hot", "fp", decodeSignal("hot", 128))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// A third populate forces one eviction; CLOCK must pick "cold"
	// (clearing hot's bit on the way) rather than "hot".
	h2, err := c.Acquire(ctx, "new", "fp", decodeSignal("new", 128))
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if !c.Contains("hot", "fp") {
		t.Fatal("recently hit entry evicted before its second chance")
	}
	if c.Contains("cold", "fp") {
		t.Fatal("cold entry survived over the hot one")
	}
}

// TestZeroBudgetStillSingleFlights: budget 0 keeps nothing resident but
// concurrent consumers of the in-flight decode still share it.
func TestZeroBudgetStillSingleFlights(t *testing.T) {
	c := New(0)
	h, err := c.Acquire(context.Background(), "k", "fp", decodeSignal("k", 64))
	if err != nil {
		t.Fatal(err)
	}
	// Resident while referenced (never evicted under a live handle).
	if !c.Contains("k", "fp") {
		t.Fatal("referenced entry not resident")
	}
	h.Release()
	if c.Contains("k", "fp") {
		t.Fatal("budget-0 cache kept an unreferenced entry")
	}
}

func TestOrderKeysResidentFirst(t *testing.T) {
	c := New(1 * units.MB)
	ctx := context.Background()
	for _, k := range []string{"b", "d"} {
		h, err := c.Acquire(ctx, k, "fp", decodeSignal(k, 64))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	got := c.OrderKeys([]string{"a", "b", "c", "d"}, "fp")
	want := []string{"b", "d", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderKeys = %v, want %v", got, want)
		}
	}
	// A different fingerprint sees nothing resident: order unchanged.
	got = c.OrderKeys([]string{"a", "b"}, "other")
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("OrderKeys(other fp) = %v, want input order", got)
	}
}

// TestPurgeClosesPoolBalance: after purging every entry, each payload
// buffer the cache drew has been returned — Gets == Puts.
func TestPurgeClosesPoolBalance(t *testing.T) {
	c := New(1 * units.MB)
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		h, err := c.Acquire(ctx, fmt.Sprintf("k%d", i), "fp", decodeSignal("k", 256))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if n := c.Purge(); n != 16 {
		t.Fatalf("Purge dropped %d entries, want 16", n)
	}
	st := c.PoolStats()
	if st.Gets != st.Puts {
		t.Fatalf("payload pool imbalance after purge: Gets=%d Puts=%d", st.Gets, st.Puts)
	}
	if s := c.Stats(); s.Entries != 0 || s.BytesResident != 0 {
		t.Fatalf("purged cache still resident: %+v", s)
	}
}

func TestImagePayloadAccounting(t *testing.T) {
	c := New(1 * units.MB)
	h, err := c.Acquire(context.Background(), "img", "fp", func(pool *memframe.Set) (Decoded, error) {
		img := &imgproc.Image{}
		img.Pix = pool.U8.Get(3 * 8 * 8)
		img.W, img.H = 8, 8
		return Decoded{Image: img}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Bytes() != 3*8*8 {
		t.Fatalf("image entry bytes = %d, want %d", h.Bytes(), 3*8*8)
	}
	h.Release()
	c.Purge()
	if st := c.PoolStats(); st.Gets != st.Puts {
		t.Fatalf("image buffer not recycled: %+v", st)
	}
}

func TestMetricsNamesAndCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(4*units.KB, WithName("tier")).WithMetrics(reg)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		h, err := c.Acquire(ctx, fmt.Sprintf("k%d", i), "fp", decodeSignal("k", 128))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h, err := c.Acquire(ctx, "k7", "fp", decodeSignal("k", 128))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	snap := reg.Snapshot()
	for _, name := range []string{
		"dscache.tier.hits", "dscache.tier.misses", "dscache.tier.evictions",
		"dscache.tier.singleflight_waits",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %q missing (have %v)", name, counterNames(snap.Counters))
		}
	}
	for _, name := range []string{"dscache.tier.bytes_resident", "dscache.tier.entries"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q missing", name)
		}
	}
	if got := snap.Counters["dscache.tier.misses"]; got != 8 {
		t.Fatalf("misses counter = %d, want 8", got)
	}
	if got := snap.Counters["dscache.tier.hits"]; got != 1 {
		t.Fatalf("hits counter = %d, want 1", got)
	}
	if got := snap.Counters["dscache.tier.evictions"]; got < 4 {
		t.Fatalf("evictions counter = %d, want >= 4", got)
	}
	if got := snap.Gauges["dscache.tier.bytes_resident"]; got > 4*1024 {
		t.Fatalf("bytes_resident gauge = %v, above budget", got)
	}
}

func counterNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		if strings.HasPrefix(k, "dscache.") {
			out = append(out, k)
		}
	}
	return out
}

// TestConcurrentChurn hammers a tight cache from many goroutines under
// -race: mixed keys, overlapping acquires, eviction pressure. The
// balance sheet must close at the end.
func TestConcurrentChurn(t *testing.T) {
	c := New(4 * units.KB)
	const (
		workers = 8
		rounds  = 200
		keys    = 12
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("k%d", (w+i)%keys)
				h, err := c.Acquire(context.Background(), k, "fp", decodeSignal(k, 128))
				if err != nil {
					failures.Add(1)
					return
				}
				if h.Signal()[0] != float64(len(k)) {
					failures.Add(1)
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d worker failures", failures.Load())
	}
	s := c.Stats()
	if s.Hits+s.Misses != workers*rounds {
		t.Fatalf("hits %d + misses %d != %d acquires", s.Hits, s.Misses, workers*rounds)
	}
	if s.BytesResident > 4*1024 {
		t.Fatalf("resident %d bytes over budget with no live refs", s.BytesResident)
	}
	c.Purge()
	if st := c.PoolStats(); st.Gets != st.Puts {
		t.Fatalf("pool imbalance after churn: %+v", st)
	}
}
