package dscache

import (
	"context"

	"trainbox/internal/dataprep"
	"trainbox/internal/dsp"
	"trainbox/internal/imgproc"
	"trainbox/internal/memframe"
	"trainbox/internal/storage"
)

// Decode fingerprints. The cached representation is the *decode*
// output, which depends only on the stored bytes and the modality's
// decoder — none of the augmentation config (crop, mirror, noise, mel
// masks) touches it. The fingerprint is therefore the decoder identity:
// jobs with different augmentation configs share entries, and only a
// decode-affecting change (a different codec) would fork the cache.
const (
	// ImageFingerprint keys cached JPEG decode outputs.
	ImageFingerprint = "image/jpeg"
	// AudioFingerprint keys cached PCM16 decode outputs.
	AudioFingerprint = "audio/pcm16"
)

// ImagePreparer is dataprep.ImagePreparer with the JPEG decode served
// through a shared cache tier: the first consumer of a key decodes and
// populates (single-flight), every other consumer reuses the cached
// pixels and runs only its own seeded augmentation tail. Bit-identical
// to the uncached preparer for equal seeds.
type ImagePreparer struct {
	Cache  *Cache
	Config dataprep.ImageConfig
}

// Prepare implements dataprep.Preparer.
func (p ImagePreparer) Prepare(obj storage.Object, seed int64) dataprep.Prepared {
	return p.PrepareScratch(obj, seed, nil)
}

// PrepareScratch implements dataprep.ScratchPreparer.
func (p ImagePreparer) PrepareScratch(obj storage.Object, seed int64, s *dataprep.Scratch) dataprep.Prepared {
	h, err := p.Cache.Acquire(context.Background(), obj.Key, ImageFingerprint, func(pool *memframe.Set) (Decoded, error) {
		// Decode into a throwaway image, then move the pixels into a
		// pooled payload buffer of the exact decoded size: the decode
		// allocation is the rare, amortized event; the resident buffer
		// recycles through the cache's pools on eviction.
		var tmp imgproc.Image
		if err := imgproc.DecodeJPEGInto(&tmp, obj.Data); err != nil {
			return Decoded{}, err
		}
		pix := pool.U8.Get(len(tmp.Pix))
		copy(pix, tmp.Pix)
		return Decoded{Image: &imgproc.Image{W: tmp.W, H: tmp.H, Pix: pix}}, nil
	})
	if err != nil {
		return dataprep.Prepared{Key: obj.Key, Label: obj.Label, Err: err}
	}
	defer h.Release()
	t, err := dataprep.PrepareImageDecoded(h.Image(), p.Config, seed, s)
	return dataprep.Prepared{Key: obj.Key, Label: obj.Label, Image: t, Err: err}
}

// AudioPreparer is dataprep.AudioPreparer with the PCM decode served
// through a shared cache tier. The cached signal is read-only; the
// augmentation tail copies it into its scratch before adding noise.
// Bit-identical to the uncached preparer for equal seeds.
type AudioPreparer struct {
	Cache  *Cache
	Config dataprep.AudioConfig
}

// Prepare implements dataprep.Preparer.
func (p AudioPreparer) Prepare(obj storage.Object, seed int64) dataprep.Prepared {
	return p.PrepareScratch(obj, seed, nil)
}

// PrepareScratch implements dataprep.ScratchPreparer.
func (p AudioPreparer) PrepareScratch(obj storage.Object, seed int64, s *dataprep.Scratch) dataprep.Prepared {
	h, err := p.Cache.Acquire(context.Background(), obj.Key, AudioFingerprint, func(pool *memframe.Set) (Decoded, error) {
		buf := pool.F64.Get(len(obj.Data) / 2)
		sig, err := dsp.PCM16DecodeInto(buf, obj.Data)
		if err != nil {
			pool.F64.Put(buf)
			return Decoded{}, err
		}
		return Decoded{Signal: sig}, nil
	})
	if err != nil {
		return dataprep.Prepared{Key: obj.Key, Label: obj.Label, Err: err}
	}
	defer h.Release()
	sp, err := dataprep.PrepareAudioDecoded(h.Signal(), p.Config, seed, s)
	return dataprep.Prepared{Key: obj.Key, Label: obj.Label, Audio: sp, Err: err}
}

// PreparerFingerprint returns the cache fingerprint a preparer's
// decodes are keyed under, or "" for preparers with no cached form.
func PreparerFingerprint(p dataprep.Preparer) string {
	switch p.(type) {
	case ImagePreparer, dataprep.ImagePreparer:
		return ImageFingerprint
	case AudioPreparer, dataprep.AudioPreparer:
		return AudioFingerprint
	}
	return ""
}

// WrapPreparer returns the cache-backed equivalent of p: the CPU image
// and audio preparers map to their dscache counterparts (bit-identical
// for equal seeds), and already-cached preparers are re-targeted at c.
// Video and unknown preparers come back unchanged with ok=false — a
// video clip's decoded frames dominate residency for marginal reuse, so
// the tier leaves video to the uncached path.
func WrapPreparer(c *Cache, p dataprep.Preparer) (wrapped dataprep.Preparer, ok bool) {
	switch q := p.(type) {
	case dataprep.ImagePreparer:
		return ImagePreparer{Cache: c, Config: q.Config}, true
	case dataprep.AudioPreparer:
		return AudioPreparer{Cache: c, Config: q.Config}, true
	case ImagePreparer:
		return ImagePreparer{Cache: c, Config: q.Config}, true
	case AudioPreparer:
		return AudioPreparer{Cache: c, Config: q.Config}, true
	}
	return p, false
}

// Bind routes an executor's prepare path through c by swapping its
// preparer for the cache-backed equivalent (see WrapPreparer), and
// returns the fingerprint its decodes are keyed under. ok is false —
// and the executor untouched — when its preparer has no cached form.
// Bind before the executor serves traffic.
func Bind(c *Cache, exec *dataprep.Executor) (fp string, ok bool) {
	wrapped, ok := WrapPreparer(c, exec.Preparer())
	if !ok {
		return "", false
	}
	exec.WithPreparer(wrapped)
	return PreparerFingerprint(wrapped), true
}
