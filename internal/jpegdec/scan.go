package jpegdec

import (
	"fmt"
	"math"
)

// zigzag maps coefficient order in the stream to natural block order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// entropyDecode runs the serial phase: the Huffman walk over every MCU,
// producing dequantized-later coefficient blocks per component.
func (d *decoder) entropyDecode() error {
	mcuW := 8 * d.maxH
	mcuH := 8 * d.maxV
	mcusX := (d.width + mcuW - 1) / mcuW
	mcusY := (d.height + mcuH - 1) / mcuH

	for i := range d.comps {
		c := &d.comps[i]
		c.blocksPerMCU = c.h * c.v
		d.bWide[i] = mcusX * c.h
		d.bHigh[i] = mcusY * c.v
		// decodeBlock only writes non-zero coefficients (EOB leaves the
		// tail untouched), so recycled coefficient blocks must be zeroed.
		n := d.bWide[i] * d.bHigh[i] * 64
		if cap(d.coeffs[i]) < n {
			d.coeffs[i] = make([]int32, n)
		} else {
			d.coeffs[i] = d.coeffs[i][:n]
			clear(d.coeffs[i])
		}
	}

	d.br = bitReader{data: d.data, pos: d.pos}
	r := &d.br
	dcPred := d.dcPred[:len(d.comps)]
	for i := range dcPred {
		dcPred[i] = 0
	}
	mcu := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if d.restart > 0 && mcu > 0 && mcu%d.restart == 0 {
				if err := d.consumeRestart(r, (mcu/d.restart-1)%8); err != nil {
					return err
				}
				for i := range dcPred {
					dcPred[i] = 0
				}
			}
			for ci := range d.comps {
				c := &d.comps[ci]
				for by := 0; by < c.v; by++ {
					for bx := 0; bx < c.h; bx++ {
						bRow := my*c.v + by
						bCol := mx*c.h + bx
						block := d.coeffs[ci][(bRow*d.bWide[ci]+bCol)*64 : (bRow*d.bWide[ci]+bCol)*64+64]
						if err := d.decodeBlock(r, c, &dcPred[ci], block); err != nil {
							return fmt.Errorf("jpegdec: mcu %d comp %d: %w", mcu, ci, err)
						}
					}
				}
			}
			mcu++
		}
	}
	d.pos = r.pos
	return nil
}

// consumeRestart expects an aligned RSTn marker.
func (d *decoder) consumeRestart(r *bitReader, n int) error {
	r.align()
	if r.pos+2 > len(r.data) {
		return fmt.Errorf("jpegdec: truncated restart marker")
	}
	if r.data[r.pos] != 0xFF || r.data[r.pos+1] != byte(0xD0+n) {
		return fmt.Errorf("jpegdec: expected RST%d, got %#x%#x", n, r.data[r.pos], r.data[r.pos+1])
	}
	r.pos += 2
	return nil
}

// decodeBlock performs the serial Huffman walk for one 8×8 block,
// writing coefficients in natural order (zigzag applied here).
func (d *decoder) decodeBlock(r *bitReader, c *component, dcPred *int32, out []int32) error {
	// DC coefficient.
	s, err := r.decodeSymbol(d.huffDC[c.dcTableID])
	if err != nil {
		return err
	}
	if s > 11 {
		return fmt.Errorf("jpegdec: DC size %d", s)
	}
	var diff int32
	if s > 0 {
		v, err := r.bits(int(s))
		if err != nil {
			return err
		}
		diff = extend(v, int(s))
	}
	*dcPred += diff
	out[0] = *dcPred

	// AC coefficients.
	for k := 1; k < 64; {
		rs, err := r.decodeSymbol(d.huffAC[c.acTableID])
		if err != nil {
			return err
		}
		run, size := int(rs>>4), int(rs&0xF)
		if size == 0 {
			if run == 15 { // ZRL: sixteen zeros
				k += 16
				continue
			}
			break // EOB
		}
		k += run
		if k > 63 {
			return fmt.Errorf("jpegdec: AC index %d out of range", k)
		}
		v, err := r.bits(size)
		if err != nil {
			return err
		}
		out[zigzag[k]] = extend(v, size)
		k++
	}
	return nil
}

// --- transform phase ---------------------------------------------------

// idctCos[u][x] = cos((2x+1)uπ/16) scaled by the DCT normalization.
var idctCos [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			idctCos[u][x] = cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// idct8x8 computes the 2-D inverse DCT of the dequantized block into the
// destination plane slice (separable row/column passes).
func idct8x8(block []int32, dst []uint8, stride int) {
	var tmp [64]float64
	// Rows: for each output x within the row, sum over u.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += idctCos[u][x] * float64(block[y*8+u])
			}
			tmp[y*8+x] = s
		}
	}
	// Columns.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += idctCos[v][y] * tmp[v*8+x]
			}
			val := s + 128 // level shift
			switch {
			case val < 0:
				val = 0
			case val > 255:
				val = 255
			}
			dst[y*stride+x] = uint8(val + 0.5)
		}
	}
}

// transform runs the parallelizable phase: dequantize, IDCT, upsample,
// and color-convert into interleaved RGB.
func (d *decoder) transform() *Image {
	// Per-component planes at full block resolution. The plane and
	// stride scratch lives on the decoder (loop-invariant across
	// restarts and reused across decodes); idct8x8 overwrites every
	// sample, so recycled planes need no clearing.
	planes := d.planes[:len(d.comps)]
	strides := d.strides[:len(d.comps)]
	for ci := range d.comps {
		c := &d.comps[ci]
		strides[ci] = d.bWide[ci] * 8
		n := strides[ci] * d.bHigh[ci] * 8
		if cap(planes[ci]) < n {
			planes[ci] = make([]uint8, n)
			d.planes[ci] = planes[ci]
		} else {
			planes[ci] = planes[ci][:n]
			d.planes[ci] = planes[ci]
		}
		q := &d.quant[c.quantID]
		var block [64]int32
		for bRow := 0; bRow < d.bHigh[ci]; bRow++ {
			for bCol := 0; bCol < d.bWide[ci]; bCol++ {
				src := d.coeffs[ci][(bRow*d.bWide[ci]+bCol)*64:]
				for i := 0; i < 64; i++ {
					block[i] = src[i] * q[i]
				}
				dst := planes[ci][(bRow*8)*strides[ci]+bCol*8:]
				idct8x8(block[:], dst, strides[ci])
			}
		}
	}

	npix := d.width * d.height * 3
	d.img.W, d.img.H = d.width, d.height
	if cap(d.img.Pix) < npix {
		d.img.Pix = make([]uint8, npix)
	} else {
		d.img.Pix = d.img.Pix[:npix]
	}
	img := &d.img
	if len(d.comps) == 1 {
		for y := 0; y < d.height; y++ {
			for x := 0; x < d.width; x++ {
				g := planes[0][y*strides[0]+x]
				i := (y*d.width + x) * 3
				img.Pix[i], img.Pix[i+1], img.Pix[i+2] = g, g, g
			}
		}
		return img
	}
	// Upsample chroma by sampling-factor ratio and convert YCbCr→RGB.
	for y := 0; y < d.height; y++ {
		for x := 0; x < d.width; x++ {
			yy := int32(planes[0][(y*d.comps[0].v/d.maxV)*strides[0]+x*d.comps[0].h/d.maxH])
			cb := int32(planes[1][(y*d.comps[1].v/d.maxV)*strides[1]+x*d.comps[1].h/d.maxH]) - 128
			cr := int32(planes[2][(y*d.comps[2].v/d.maxV)*strides[2]+x*d.comps[2].h/d.maxH]) - 128
			r := float64(yy) + 1.402*float64(cr)
			g := float64(yy) - 0.344136*float64(cb) - 0.714136*float64(cr)
			b := float64(yy) + 1.772*float64(cb)
			i := (y*d.width + x) * 3
			img.Pix[i] = clamp8(r)
			img.Pix[i+1] = clamp8(g)
			img.Pix[i+2] = clamp8(b)
		}
	}
	return img
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}
