// Package jpegdec is a from-scratch baseline JPEG decoder (SOF0,
// sequential DCT, Huffman entropy coding) — the computation inside the
// paper's dominant FPGA engine (Table II's "Jpeg decoder", 59.6% of the
// device's LUTs).
//
// Beyond providing an independent implementation validated against the
// standard library's decoder, the package exists to make the paper's
// device-choice argument measurable. Decoding splits into two phases:
//
//  1. entropy decoding — a bit-serial Huffman walk where every decoded
//     symbol's length determines where the next symbol begins ("there
//     is no good parallel algorithm for the Huffman decoding phase",
//     Section V-B), and
//  2. block transforms — dequantization, inverse DCT, upsampling, and
//     color conversion, all embarrassingly parallel across 8×8 blocks.
//
// Decode runs the two phases separately and reports their costs
// (DecodeStats), which is the quantitative basis for "GPUs cannot
// efficiently handle data formatting": the serial phase is a large,
// irreducible fraction of the work.
package jpegdec

import (
	"fmt"
	"time"
)

// component is one color channel's coding parameters.
type component struct {
	id           byte
	h, v         int // sampling factors
	quantID      byte
	dcTableID    byte
	acTableID    byte
	blocksPerMCU int
}

// decoder holds parse state plus the scratch buffers a reusable Decoder
// carries across calls. Every slice field is backed by storage that is
// grown in place and recycled on the next decode; a fresh decoder (the
// package-level Decode shim) simply starts with empty scratch.
type decoder struct {
	data []byte
	pos  int

	width, height int
	comps         []component // backed by compsBuf
	compsBuf      [4]component
	quant         [4][64]int32
	huffDC        [4]*huffTable // nil or pointing into dcTables/acTables
	huffAC        [4]*huffTable
	dcTables      [4]huffTable
	acTables      [4]huffTable
	restart       int // restart interval in MCUs (0 = none)

	maxH, maxV int

	// coefficient storage: per component, per block row-major
	// (blocksWide*blocksHigh*64 each), reused across decodes.
	coeffs [4][]int32
	bWide  [4]int // blocks per row, per component
	bHigh  [4]int

	// Scan/transform scratch that is loop-invariant across restarts and
	// across decodes: DC predictors, the entropy bit reader, and the
	// per-component sample planes.
	dcPred  [4]int32
	br      bitReader
	planes  [4][]uint8
	strides [4]int

	// img backs the returned Image so its pixel buffer is recycled too.
	img Image
}

// reset prepares the decoder for a new bitstream, clearing all parse
// state while keeping the scratch buffers' capacity.
func (d *decoder) reset(data []byte) {
	d.data, d.pos = data, 0
	d.width, d.height = 0, 0
	d.comps = nil
	d.quant = [4][64]int32{}
	for i := range d.huffDC {
		d.huffDC[i], d.huffAC[i] = nil, nil
	}
	d.restart = 0
	d.maxH, d.maxV = 0, 0
}

// DecodeStats reports where decode time went.
type DecodeStats struct {
	// EntropyNanos is the bit-serial Huffman phase.
	EntropyNanos int64
	// TransformNanos is the parallelizable dequant+IDCT+color phase.
	TransformNanos int64
}

// SerialShare returns the entropy phase's fraction of total decode time.
func (s DecodeStats) SerialShare() float64 {
	total := s.EntropyNanos + s.TransformNanos
	if total == 0 {
		return 0
	}
	return float64(s.EntropyNanos) / float64(total)
}

// Image is the decoded RGB output (interleaved, like imgproc.Image).
type Image struct {
	W, H int
	Pix  []uint8
}

// Decoder is a reusable JPEG decoder. It carries coefficient, plane,
// Huffman, and output-pixel scratch across calls so that steady-state
// decoding is allocation-free once the buffers have grown to the
// working set's size. A Decoder is not safe for concurrent use.
type Decoder struct {
	d decoder
}

// NewDecoder returns an empty Decoder; scratch grows on first use.
func NewDecoder() *Decoder { return &Decoder{} }

// Decode decodes a baseline JPEG and reports phase statistics. The
// returned Image (including its Pix buffer) is owned by the Decoder and
// only valid until the next Decode call; callers that need the pixels
// longer must copy them out.
func (dec *Decoder) Decode(data []byte) (*Image, DecodeStats, error) {
	d := &dec.d
	d.reset(data)
	var stats DecodeStats

	if err := d.parseHeaders(); err != nil {
		return nil, stats, err
	}

	t0 := time.Now()
	if err := d.entropyDecode(); err != nil {
		return nil, stats, err
	}
	stats.EntropyNanos = time.Since(t0).Nanoseconds()

	t1 := time.Now()
	img := d.transform()
	stats.TransformNanos = time.Since(t1).Nanoseconds()
	return img, stats, nil
}

// Decode decodes a baseline JPEG and reports phase statistics. It is a
// thin shim over a throwaway Decoder, so the caller owns the returned
// Image; hot paths that decode repeatedly should hold a Decoder and
// reuse its scratch instead.
func Decode(data []byte) (*Image, DecodeStats, error) {
	return NewDecoder().Decode(data)
}

// --- marker parsing ---------------------------------------------------

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("jpegdec: truncated at %d", d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u16() (int, error) {
	hi, err := d.u8()
	if err != nil {
		return 0, err
	}
	lo, err := d.u8()
	if err != nil {
		return 0, err
	}
	return int(hi)<<8 | int(lo), nil
}

func (d *decoder) parseHeaders() error {
	if m, err := d.u16(); err != nil || m != 0xFFD8 {
		return fmt.Errorf("jpegdec: missing SOI")
	}
	for {
		marker, err := d.u16()
		if err != nil {
			return err
		}
		if marker>>8 != 0xFF {
			return fmt.Errorf("jpegdec: bad marker %#x at %d", marker, d.pos)
		}
		switch marker {
		case 0xFFC0: // SOF0 baseline
			if err := d.parseSOF0(); err != nil {
				return err
			}
		case 0xFFC2:
			return fmt.Errorf("jpegdec: progressive JPEG not supported")
		case 0xFFC4: // DHT
			if err := d.parseDHT(); err != nil {
				return err
			}
		case 0xFFDB: // DQT
			if err := d.parseDQT(); err != nil {
				return err
			}
		case 0xFFDD: // DRI
			if _, err := d.u16(); err != nil {
				return err
			}
			ri, err := d.u16()
			if err != nil {
				return err
			}
			d.restart = ri
		case 0xFFDA: // SOS — scan follows; headers done.
			return d.parseSOS()
		case 0xFFD9:
			return fmt.Errorf("jpegdec: EOI before scan")
		default:
			// Skip APPn/COM and other segments.
			l, err := d.u16()
			if err != nil {
				return err
			}
			if l < 2 || d.pos+l-2 > len(d.data) {
				return fmt.Errorf("jpegdec: bad segment length %d", l)
			}
			d.pos += l - 2
		}
	}
}

func (d *decoder) parseSOF0() error {
	if _, err := d.u16(); err != nil {
		return err
	}
	prec, err := d.u8()
	if err != nil {
		return err
	}
	if prec != 8 {
		return fmt.Errorf("jpegdec: %d-bit precision not supported", prec)
	}
	if d.height, err = d.u16(); err != nil {
		return err
	}
	if d.width, err = d.u16(); err != nil {
		return err
	}
	nc, err := d.u8()
	if err != nil {
		return err
	}
	if nc != 1 && nc != 3 {
		return fmt.Errorf("jpegdec: %d components not supported", nc)
	}
	d.comps = d.compsBuf[:nc]
	for i := range d.comps {
		d.comps[i] = component{}
	}
	for i := range d.comps {
		c := &d.comps[i]
		if c.id, err = d.u8(); err != nil {
			return err
		}
		hv, err := d.u8()
		if err != nil {
			return err
		}
		c.h, c.v = int(hv>>4), int(hv&0xF)
		if c.h < 1 || c.h > 4 || c.v < 1 || c.v > 4 {
			return fmt.Errorf("jpegdec: bad sampling %dx%d", c.h, c.v)
		}
		if c.quantID, err = d.u8(); err != nil {
			return err
		}
		if c.h > d.maxH {
			d.maxH = c.h
		}
		if c.v > d.maxV {
			d.maxV = c.v
		}
	}
	return nil
}

func (d *decoder) parseDQT() error {
	l, err := d.u16()
	if err != nil {
		return err
	}
	end := d.pos + l - 2
	for d.pos < end {
		pq, err := d.u8()
		if err != nil {
			return err
		}
		prec, id := pq>>4, pq&0xF
		if id > 3 {
			return fmt.Errorf("jpegdec: quant table id %d", id)
		}
		for i := 0; i < 64; i++ {
			var v int
			if prec == 0 {
				b, err := d.u8()
				if err != nil {
					return err
				}
				v = int(b)
			} else {
				if v, err = d.u16(); err != nil {
					return err
				}
			}
			d.quant[id][zigzag[i]] = int32(v)
		}
	}
	return nil
}

func (d *decoder) parseDHT() error {
	l, err := d.u16()
	if err != nil {
		return err
	}
	end := d.pos + l - 2
	for d.pos < end {
		tc, err := d.u8()
		if err != nil {
			return err
		}
		class, id := tc>>4, tc&0xF
		if class > 1 || id > 3 {
			return fmt.Errorf("jpegdec: huffman table class %d id %d", class, id)
		}
		var counts [16]int
		total := 0
		for i := range counts {
			b, err := d.u8()
			if err != nil {
				return err
			}
			counts[i] = int(b)
			total += counts[i]
		}
		if d.pos+total > len(d.data) {
			return fmt.Errorf("jpegdec: truncated huffman symbols")
		}
		symbols := d.data[d.pos : d.pos+total]
		d.pos += total
		table := &d.dcTables[id]
		if class == 1 {
			table = &d.acTables[id]
		}
		if err := table.init(counts, symbols); err != nil {
			return err
		}
		if class == 0 {
			d.huffDC[id] = table
		} else {
			d.huffAC[id] = table
		}
	}
	return nil
}

func (d *decoder) parseSOS() error {
	if _, err := d.u16(); err != nil {
		return err
	}
	ns, err := d.u8()
	if err != nil {
		return err
	}
	if int(ns) != len(d.comps) {
		return fmt.Errorf("jpegdec: scan has %d components, frame has %d", ns, len(d.comps))
	}
	for i := 0; i < int(ns); i++ {
		id, err := d.u8()
		if err != nil {
			return err
		}
		td, err := d.u8()
		if err != nil {
			return err
		}
		found := false
		for j := range d.comps {
			if d.comps[j].id == id {
				d.comps[j].dcTableID = td >> 4
				d.comps[j].acTableID = td & 0xF
				found = true
			}
		}
		if !found {
			return fmt.Errorf("jpegdec: scan component %d not in frame", id)
		}
	}
	// Spectral selection / approximation bytes (fixed for baseline).
	d.pos += 3
	return nil
}
