package jpegdec

import (
	"bytes"
	"image"
	"image/jpeg"
	"testing"

	"trainbox/internal/imgproc"
)

// testJPEGs builds a varied corpus: color/grayscale, multiple qualities,
// MCU-aligned and odd sizes, with enough pixels to exercise restarts.
func testJPEGs(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	sizes := []struct {
		name string
		w, h int
	}{{"64x64", 64, 64}, {"96x48", 96, 48}, {"70x34", 70, 34}}
	for _, sz := range sizes {
		for _, q := range []int{60, 85, 95} {
			img := imgproc.NewImage(sz.w, sz.h)
			for i := range img.Pix {
				img.Pix[i] = uint8((i*7 + i/3) % 256)
			}
			data, err := imgproc.EncodeJPEG(img, q)
			if err != nil {
				t.Fatalf("encode %s q%d: %v", sz.name, q, err)
			}
			out[sz.name+"-q"+string(rune('0'+q/10))+string(rune('0'+q%10))] = data
		}
	}
	// Grayscale via the stdlib encoder.
	gray := image.NewGray(image.Rect(0, 0, 48, 48))
	for i := range gray.Pix {
		gray.Pix[i] = uint8(i * 5 % 256)
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, gray, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatalf("encode gray: %v", err)
	}
	out["gray-48x48"] = buf.Bytes()
	return out
}

// TestDecoderReuseBitIdentical drives one Decoder across the whole
// corpus twice, interleaved, and requires every decode to be
// byte-for-byte identical to a fresh package-level Decode.
func TestDecoderReuseBitIdentical(t *testing.T) {
	corpus := testJPEGs(t)
	dec := NewDecoder()
	for pass := 0; pass < 2; pass++ {
		for name, data := range corpus {
			want, _, err := Decode(data)
			if err != nil {
				t.Fatalf("%s: fresh Decode: %v", name, err)
			}
			got, _, err := dec.Decode(data)
			if err != nil {
				t.Fatalf("%s: reused Decode: %v", name, err)
			}
			if got.W != want.W || got.H != want.H {
				t.Fatalf("%s: size %dx%d, want %dx%d", name, got.W, got.H, want.W, want.H)
			}
			if !bytes.Equal(got.Pix, want.Pix) {
				t.Errorf("%s pass %d: reused Decoder output differs from fresh Decode", name, pass)
			}
		}
	}
}

// TestDecoderRecoversAfterError checks that a failed decode does not
// poison the scratch for the next good one.
func TestDecoderRecoversAfterError(t *testing.T) {
	corpus := testJPEGs(t)
	data := corpus["64x64-q85"]
	dec := NewDecoder()
	if _, _, err := dec.Decode([]byte{0xFF, 0xD8, 0x00}); err == nil {
		t.Fatal("garbage should fail")
	}
	truncated := data[:len(data)/2]
	if _, _, err := dec.Decode(truncated); err == nil {
		t.Fatal("truncated stream should fail")
	}
	want, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dec.Decode(data)
	if err != nil {
		t.Fatalf("decode after errors: %v", err)
	}
	if !bytes.Equal(got.Pix, want.Pix) {
		t.Error("decode after errors differs from fresh decode")
	}
}

// TestDecoderSteadyStateAllocFree is the satellite's before/after
// assertion: the per-scan buffers that used to be allocated every call
// (dcPred, planes, strides, coefficient storage, output pixels) now
// live on the Decoder, so a warmed Decoder allocates nothing.
func TestDecoderSteadyStateAllocFree(t *testing.T) {
	img := imgproc.NewImage(96, 96)
	for i := range img.Pix {
		img.Pix[i] = uint8(i % 251)
	}
	data, err := imgproc.EncodeJPEG(img, 85)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if _, _, err := dec.Decode(data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := dec.Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Decoder.Decode allocates %.1f objects/decode, want 0", allocs)
	}

	// The one-shot shim still allocates (it builds a fresh working set),
	// but the per-scan fixes bound it well below the pre-refactor count
	// of 23 allocations per decode.
	fresh := testing.AllocsPerRun(20, func() {
		if _, _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	if fresh >= 23 {
		t.Errorf("fresh Decode allocates %.1f objects/decode, want < 23 (pre-refactor baseline)", fresh)
	}
}
