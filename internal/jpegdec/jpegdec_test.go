package jpegdec

import (
	"bytes"
	"image"
	"image/color"
	"image/jpeg"
	"math"
	"testing"

	"trainbox/internal/imgproc"
)

// encodeRef encodes an RGBA image with the standard library at the given
// quality and returns the bytes plus the stdlib-decoded reference pixels.
func encodeRef(t *testing.T, src *image.RGBA, quality int) ([]byte, *image.YCbCr) {
	t.Helper()
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: quality}); err != nil {
		t.Fatal(err)
	}
	ref, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ycc, ok := ref.(*image.YCbCr)
	if !ok {
		t.Fatalf("stdlib decoded to %T", ref)
	}
	return buf.Bytes(), ycc
}

// maeVsStdlib decodes with this package and with the standard library
// and returns the mean absolute per-channel difference.
func maeVsStdlib(t *testing.T, data []byte) float64 {
	t.Helper()
	mine, stats, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntropyNanos < 0 || stats.TransformNanos < 0 {
		t.Fatal("negative phase timings")
	}
	ref, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b := ref.Bounds()
	if mine.W != b.Dx() || mine.H != b.Dy() {
		t.Fatalf("size %dx%d, stdlib %dx%d", mine.W, mine.H, b.Dx(), b.Dy())
	}
	var sum float64
	for y := 0; y < mine.H; y++ {
		for x := 0; x < mine.W; x++ {
			r, g, bl, _ := ref.At(b.Min.X+x, b.Min.Y+y).RGBA()
			i := (y*mine.W + x) * 3
			sum += math.Abs(float64(mine.Pix[i]) - float64(r>>8))
			sum += math.Abs(float64(mine.Pix[i+1]) - float64(g>>8))
			sum += math.Abs(float64(mine.Pix[i+2]) - float64(bl>>8))
		}
	}
	return sum / float64(mine.W*mine.H*3)
}

func TestDecodeMatchesStdlibOnSynthetic(t *testing.T) {
	for _, quality := range []int{60, 85, 95} {
		img := imgproc.SynthesizeImage(imgproc.SynthConfig{Size: 96, Shapes: 8, Quality: quality}, 3, 2)
		data, err := imgproc.EncodeJPEG(img, quality)
		if err != nil {
			t.Fatal(err)
		}
		mae := maeVsStdlib(t, data)
		// Different IDCT/upsampling implementations round differently;
		// agreement within ~2 counts is decoder-correct.
		if mae > 2.5 {
			t.Errorf("quality %d: MAE vs stdlib = %.2f", quality, mae)
		}
	}
}

func TestDecodeGradientAndFlat(t *testing.T) {
	// A flat image: every pixel identical; decode must be near-exact.
	src := image.NewRGBA(image.Rect(0, 0, 40, 24))
	for y := 0; y < 24; y++ {
		for x := 0; x < 40; x++ {
			src.SetRGBA(x, y, color.RGBA{R: 120, G: 80, B: 200, A: 255})
		}
	}
	data, _ := encodeRef(t, src, 90)
	if mae := maeVsStdlib(t, data); mae > 1.5 {
		t.Errorf("flat image MAE = %.2f", mae)
	}
	// Non-multiple-of-MCU dimensions exercise edge cropping.
	src2 := image.NewRGBA(image.Rect(0, 0, 33, 17))
	for y := 0; y < 17; y++ {
		for x := 0; x < 33; x++ {
			src2.SetRGBA(x, y, color.RGBA{R: uint8(x * 7), G: uint8(y * 11), B: uint8(x + y), A: 255})
		}
	}
	data2, _ := encodeRef(t, src2, 85)
	if mae := maeVsStdlib(t, data2); mae > 3.5 {
		t.Errorf("odd-size image MAE = %.2f", mae)
	}
}

func TestDecodeGrayscale(t *testing.T) {
	src := image.NewGray(image.Rect(0, 0, 32, 32))
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			src.SetGray(x, y, color.Gray{Y: uint8(x*8 + y)})
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	if mae := maeVsStdlib(t, buf.Bytes()); mae > 1.5 {
		t.Errorf("grayscale MAE = %.2f", mae)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a jpeg"),
		{0xFF, 0xD8},             // SOI only
		{0xFF, 0xD8, 0xFF, 0xD9}, // SOI+EOI, no scan
	}
	for i, data := range cases {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeRejectsProgressive(t *testing.T) {
	// Hand-build a header that declares SOF2 (progressive).
	data := []byte{0xFF, 0xD8, 0xFF, 0xC2, 0x00, 0x0B, 8, 0, 8, 0, 8, 1, 1, 0x11, 0}
	if _, _, err := Decode(data); err == nil {
		t.Error("progressive header accepted")
	}
}

// TestEntropyPhaseIsSubstantial is the paper's Section V-B argument made
// measurable: a large fraction of decode time sits in the bit-serial
// Huffman walk that resists parallelization. The threshold is
// deliberately loose — the point is "substantial", not a specific split.
func TestEntropyPhaseIsSubstantial(t *testing.T) {
	img := imgproc.SynthesizeImage(imgproc.DefaultSynthConfig(), 5, 1) // 256×256
	data, err := imgproc.EncodeJPEG(img, 85)
	if err != nil {
		t.Fatal(err)
	}
	var agg DecodeStats
	for i := 0; i < 5; i++ {
		_, stats, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		agg.EntropyNanos += stats.EntropyNanos
		agg.TransformNanos += stats.TransformNanos
	}
	share := agg.SerialShare()
	if share < 0.05 || share > 0.95 {
		t.Errorf("serial entropy share = %.2f, want a substantial interior fraction", share)
	}
	t.Logf("serial (Huffman) share of decode: %.0f%%", 100*share)
}

func TestExtend(t *testing.T) {
	cases := []struct {
		v    int32
		s    int
		want int32
	}{
		{0, 0, 0},
		{1, 1, 1},
		{0, 1, -1},
		{0b011, 3, -4},
		{0b100, 3, 4},
		{0b111, 3, 7},
	}
	for _, c := range cases {
		if got := extend(c.v, c.s); got != c.want {
			t.Errorf("extend(%b, %d) = %d, want %d", c.v, c.s, got, c.want)
		}
	}
}

func TestHuffTableRejectsMismatch(t *testing.T) {
	var counts [16]int
	counts[0] = 2
	if _, err := newHuffTable(counts, []byte{1}); err == nil {
		t.Error("count/symbol mismatch accepted")
	}
}

func TestDecodeStatsSerialShare(t *testing.T) {
	if (DecodeStats{}).SerialShare() != 0 {
		t.Error("zero stats share should be 0")
	}
	s := DecodeStats{EntropyNanos: 30, TransformNanos: 70}
	if math.Abs(s.SerialShare()-0.3) > 1e-12 {
		t.Errorf("share = %v", s.SerialShare())
	}
}
