package jpegdec

import (
	"fmt"
	"math"
)

// This file is the encoder half of the from-scratch codec: baseline
// sequential JPEG with 4:4:4 sampling, Annex-K Huffman tables, and
// libjpeg-style quality scaling. Together with Decode it closes the
// loop: the reproduction can write and read its own storage format with
// no library involvement, and round-trip tests pin both directions.

// Annex K luminance/chrominance base quantization tables (natural order).
var baseQuantLuma = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var baseQuantChroma = [64]int32{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// scaleQuant applies the libjpeg quality mapping.
func scaleQuant(base *[64]int32, quality int) [64]int32 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var out [64]int32
	for i, v := range base {
		q := (v*scale + 50) / 100
		if q < 1 {
			q = 1
		}
		if q > 255 {
			q = 255
		}
		out[i] = q
	}
	return out
}

// Annex K Huffman specifications: bit-length counts and symbol lists.
var (
	dcLumaCounts   = [16]int{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0}
	dcLumaSymbols  = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	dcChromaCounts = [16]int{0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0}
	dcChromaSyms   = []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

	acLumaCounts = [16]int{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D}
	acLumaSyms   = []byte{
		0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
		0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
		0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
		0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
		0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
		0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
		0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
		0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
		0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
		0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
		0xF9, 0xFA,
	}
	acChromaCounts = [16]int{0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77}
	acChromaSyms   = []byte{
		0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
		0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
		0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34, 0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
		0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
		0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
		0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
		0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
		0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
		0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
		0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
		0xF9, 0xFA,
	}
)

// encTable maps symbol → (code, length) for encoding.
type encTable struct {
	code [256]uint16
	size [256]uint8
}

func newEncTable(counts [16]int, symbols []byte) *encTable {
	t := &encTable{}
	code := uint16(0)
	k := 0
	for l := 1; l <= 16; l++ {
		for i := 0; i < counts[l-1]; i++ {
			s := symbols[k]
			t.code[s] = code
			t.size[s] = uint8(l)
			code++
			k++
		}
		code <<= 1
	}
	return t
}

// bitWriter emits MSB-first bits with JPEG byte stuffing.
type bitWriter struct {
	out []byte
	acc uint32
	n   int
}

func (w *bitWriter) write(bits uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.acc = w.acc<<1 | (bits>>uint(i))&1
		w.n++
		if w.n == 8 {
			b := byte(w.acc)
			w.out = append(w.out, b)
			if b == 0xFF {
				w.out = append(w.out, 0x00)
			}
			w.acc, w.n = 0, 0
		}
	}
}

// flush pads the final partial byte with 1-bits (the JPEG convention).
func (w *bitWriter) flush() {
	for w.n != 0 {
		w.write(1, 1)
	}
}

// magnitude returns the bit size and offset encoding of v.
func magnitude(v int32) (size int, bits uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a > 0 {
		size++
		a >>= 1
	}
	if v < 0 {
		bits = uint32(v + (1 << uint(size)) - 1)
	} else {
		bits = uint32(v)
	}
	return size, bits
}

// fdct8x8 computes the forward DCT of a level-shifted block.
func fdct8x8(block *[64]float64) {
	var tmp [64]float64
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += block[y*8+x] * idctCos[u][x]
			}
			tmp[y*8+u] = s * 2 // forward transform uses the transpose × 2
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * idctCos[v][y]
			}
			block[v*8+u] = s / 2
		}
	}
}

// Encode compresses interleaved RGB pixels as a baseline 4:4:4 JPEG.
func Encode(img *Image, quality int) ([]byte, error) {
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H*3 {
		return nil, fmt.Errorf("jpegdec: invalid image for encode")
	}
	qLuma := scaleQuant(&baseQuantLuma, quality)
	qChroma := scaleQuant(&baseQuantChroma, quality)

	var out []byte
	emit := func(b ...byte) { out = append(out, b...) }
	emitSeg := func(marker byte, payload []byte) {
		emit(0xFF, marker)
		l := len(payload) + 2
		emit(byte(l>>8), byte(l))
		emit(payload...)
	}

	emit(0xFF, 0xD8) // SOI
	// DQT ×2.
	for id, q := range [2][64]int32{qLuma, qChroma} {
		p := make([]byte, 1, 65)
		p[0] = byte(id)
		for i := 0; i < 64; i++ {
			p = append(p, byte(q[zigzag[i]]))
		}
		emitSeg(0xDB, p)
	}
	// SOF0: three components, 1×1 sampling (4:4:4).
	sof := []byte{8,
		byte(img.H >> 8), byte(img.H), byte(img.W >> 8), byte(img.W), 3,
		1, 0x11, 0, // Y
		2, 0x11, 1, // Cb
		3, 0x11, 1, // Cr
	}
	emitSeg(0xC0, sof)
	// DHT ×4.
	emitDHT := func(class, id byte, counts [16]int, syms []byte) {
		p := make([]byte, 1, 1+16+len(syms))
		p[0] = class<<4 | id
		for _, c := range counts {
			p = append(p, byte(c))
		}
		p = append(p, syms...)
		emitSeg(0xC4, p)
	}
	emitDHT(0, 0, dcLumaCounts, dcLumaSymbols)
	emitDHT(1, 0, acLumaCounts, acLumaSyms)
	emitDHT(0, 1, dcChromaCounts, dcChromaSyms)
	emitDHT(1, 1, acChromaCounts, acChromaSyms)
	// SOS.
	emitSeg(0xDA, []byte{3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0})

	// Entropy-coded data.
	dcL := newEncTable(dcLumaCounts, dcLumaSymbols)
	acL := newEncTable(acLumaCounts, acLumaSyms)
	dcC := newEncTable(dcChromaCounts, dcChromaSyms)
	acC := newEncTable(acChromaCounts, acChromaSyms)
	w := &bitWriter{}
	var dcPred [3]int32
	mcusX := (img.W + 7) / 8
	mcusY := (img.H + 7) / 8
	quants := [3]*[64]int32{&qLuma, &qChroma, &qChroma}
	dcTabs := [3]*encTable{dcL, dcC, dcC}
	acTabs := [3]*encTable{acL, acC, acC}
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			for ci := 0; ci < 3; ci++ {
				var block [64]float64
				for y := 0; y < 8; y++ {
					sy := my*8 + y
					if sy >= img.H {
						sy = img.H - 1
					}
					for x := 0; x < 8; x++ {
						sx := mx*8 + x
						if sx >= img.W {
							sx = img.W - 1
						}
						i := (sy*img.W + sx) * 3
						r := float64(img.Pix[i])
						g := float64(img.Pix[i+1])
						b := float64(img.Pix[i+2])
						var v float64
						switch ci {
						case 0:
							v = 0.299*r + 0.587*g + 0.114*b
						case 1:
							v = -0.168736*r - 0.331264*g + 0.5*b + 128
						default:
							v = 0.5*r - 0.418688*g - 0.081312*b + 128
						}
						block[y*8+x] = v - 128
					}
				}
				fdct8x8(&block)
				encodeBlock(w, &block, quants[ci], dcTabs[ci], acTabs[ci], &dcPred[ci])
			}
		}
	}
	w.flush()
	out = append(out, w.out...)
	emit(0xFF, 0xD9) // EOI
	return out, nil
}

// encodeBlock quantizes and entropy-codes one transformed block.
func encodeBlock(w *bitWriter, block *[64]float64, q *[64]int32, dc, ac *encTable, pred *int32) {
	var coef [64]int32
	for i := 0; i < 64; i++ {
		coef[i] = int32(math.Round(block[zigzag[i]] / float64(q[zigzag[i]])))
	}
	// DC.
	diff := coef[0] - *pred
	*pred = coef[0]
	size, bits := magnitude(diff)
	w.write(uint32(dc.code[size]), int(dc.size[size]))
	if size > 0 {
		w.write(bits, size)
	}
	// AC with run-length and EOB/ZRL.
	run := 0
	for k := 1; k < 64; k++ {
		if coef[k] == 0 {
			run++
			continue
		}
		for run > 15 {
			w.write(uint32(ac.code[0xF0]), int(ac.size[0xF0])) // ZRL
			run -= 16
		}
		s, b := magnitude(coef[k])
		sym := byte(run<<4 | s)
		w.write(uint32(ac.code[sym]), int(ac.size[sym]))
		w.write(b, s)
		run = 0
	}
	if run > 0 {
		w.write(uint32(ac.code[0x00]), int(ac.size[0x00])) // EOB
	}
}
