package jpegdec

import "fmt"

// huffTable is a canonical JPEG Huffman table decoded via the standard
// min/max-code-per-length walk. The walk is the serial dependency the
// paper's argument rests on: the decoder cannot know where symbol k+1
// starts until symbol k's length is known.
type huffTable struct {
	minCode [17]int32 // per code length 1..16
	maxCode [17]int32 // -1 where no codes of that length exist
	valPtr  [17]int32
	symbols []byte
}

// init (re)builds the table in place, reusing the symbols buffer's
// capacity so a reusable Decoder parses DHT segments allocation-free in
// steady state.
func (t *huffTable) init(counts [16]int, symbols []byte) error {
	t.valPtr = [17]int32{}
	t.symbols = append(t.symbols[:0], symbols...)
	code := int32(0)
	k := int32(0)
	for l := 1; l <= 16; l++ {
		if counts[l-1] == 0 {
			t.minCode[l] = 0
			t.maxCode[l] = -1
		} else {
			t.valPtr[l] = k
			t.minCode[l] = code
			code += int32(counts[l-1])
			k += int32(counts[l-1])
			t.maxCode[l] = code - 1
		}
		code <<= 1
	}
	if int(k) != len(symbols) {
		return fmt.Errorf("jpegdec: huffman counts/symbols mismatch: %d vs %d", k, len(symbols))
	}
	return nil
}

func newHuffTable(counts [16]int, symbols []byte) (*huffTable, error) {
	t := &huffTable{}
	if err := t.init(counts, symbols); err != nil {
		return nil, err
	}
	return t, nil
}

// bitReader reads the entropy-coded stream with JPEG byte stuffing
// (0xFF 0x00 → literal 0xFF) and stops at markers.
type bitReader struct {
	data []byte
	pos  int
	acc  uint32
	n    int // bits in acc
}

// errMarker signals that a marker interrupted the bit stream.
var errMarker = fmt.Errorf("jpegdec: marker in entropy stream")

func (r *bitReader) bit() (int32, error) {
	if r.n == 0 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("jpegdec: entropy stream exhausted")
		}
		b := r.data[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.data) {
				return 0, fmt.Errorf("jpegdec: dangling 0xFF")
			}
			next := r.data[r.pos]
			if next == 0x00 {
				r.pos++ // stuffed byte
			} else {
				r.pos-- // leave the marker in place
				return 0, errMarker
			}
		}
		r.acc = uint32(b)
		r.n = 8
	}
	r.n--
	return int32(r.acc>>uint(r.n)) & 1, nil
}

// bits reads n bits MSB-first.
func (r *bitReader) bits(n int) (int32, error) {
	var v int32
	for i := 0; i < n; i++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// align discards partial-byte bits (used at restart markers).
func (r *bitReader) align() { r.n = 0 }

// decodeSymbol walks the canonical table one bit at a time.
func (r *bitReader) decodeSymbol(t *huffTable) (byte, error) {
	if t == nil {
		return 0, fmt.Errorf("jpegdec: missing huffman table")
	}
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if t.maxCode[l] >= 0 && code <= t.maxCode[l] {
			idx := t.valPtr[l] + code - t.minCode[l]
			if int(idx) >= len(t.symbols) {
				return 0, fmt.Errorf("jpegdec: huffman index out of range")
			}
			return t.symbols[idx], nil
		}
	}
	return 0, fmt.Errorf("jpegdec: invalid huffman code")
}

// extend implements the JPEG EXTEND procedure: a size-s magnitude v
// becomes negative when its top bit is clear.
func extend(v int32, s int) int32 {
	if s == 0 {
		return 0
	}
	if v < 1<<uint(s-1) {
		return v - (1 << uint(s)) + 1
	}
	return v
}
