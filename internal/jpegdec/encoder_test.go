package jpegdec

import (
	"bytes"
	"image/jpeg"
	"math"
	"testing"

	"trainbox/internal/imgproc"
)

// toImage converts an imgproc image into the codec's type.
func toImage(src *imgproc.Image) *Image {
	return &Image{W: src.W, H: src.H, Pix: append([]uint8(nil), src.Pix...)}
}

// mae computes the mean absolute difference between two same-size pixel
// buffers.
func mae(a, b []uint8) float64 {
	var sum float64
	for i := range a {
		sum += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return sum / float64(len(a))
}

func TestEncodeDecodableByStdlib(t *testing.T) {
	src := imgproc.SynthesizeImage(imgproc.SynthConfig{Size: 80, Shapes: 6, Quality: 85}, 2, 4)
	data, err := Encode(toImage(src), 85)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib cannot decode our output: %v", err)
	}
	b := ref.Bounds()
	if b.Dx() != 80 || b.Dy() != 80 {
		t.Fatalf("stdlib decoded %dx%d", b.Dx(), b.Dy())
	}
	// Pixel fidelity vs the source.
	var sum float64
	for y := 0; y < 80; y++ {
		for x := 0; x < 80; x++ {
			r, g, bl, _ := ref.At(x, y).RGBA()
			wr, wg, wb := src.At(x, y)
			sum += math.Abs(float64(r>>8) - float64(wr))
			sum += math.Abs(float64(g>>8) - float64(wg))
			sum += math.Abs(float64(bl>>8) - float64(wb))
		}
	}
	if m := sum / (80 * 80 * 3); m > 6 {
		t.Errorf("stdlib-decoded MAE vs source = %.2f", m)
	}
}

func TestEncodeRoundTripOwnDecoder(t *testing.T) {
	src := imgproc.SynthesizeImage(imgproc.SynthConfig{Size: 64, Shapes: 5, Quality: 90}, 7, 1)
	data, err := Encode(toImage(src), 90)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := Decode(data)
	if err != nil {
		t.Fatalf("own decoder rejected own encoder: %v", err)
	}
	if back.W != 64 || back.H != 64 {
		t.Fatalf("round trip size %dx%d", back.W, back.H)
	}
	if m := mae(src.Pix, back.Pix); m > 5 {
		t.Errorf("self round-trip MAE = %.2f", m)
	}
}

func TestEncodeQualityControlsSizeAndFidelity(t *testing.T) {
	src := toImage(imgproc.SynthesizeImage(imgproc.SynthConfig{Size: 96, Shapes: 10, Quality: 85}, 3, 2))
	lo, err := Encode(src, 30)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Encode(src, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi) <= len(lo) {
		t.Errorf("quality 95 (%d bytes) should exceed quality 30 (%d bytes)", len(hi), len(lo))
	}
	decLo, _, err := Decode(lo)
	if err != nil {
		t.Fatal(err)
	}
	decHi, _, err := Decode(hi)
	if err != nil {
		t.Fatal(err)
	}
	if mae(src.Pix, decHi.Pix) >= mae(src.Pix, decLo.Pix) {
		t.Error("higher quality should reduce reconstruction error")
	}
}

func TestEncodeOddDimensions(t *testing.T) {
	src := &Image{W: 13, H: 9, Pix: make([]uint8, 13*9*3)}
	for i := range src.Pix {
		src.Pix[i] = uint8(i * 7)
	}
	data, err := Encode(src, 85)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 13 || back.H != 9 {
		t.Fatalf("round trip size %dx%d", back.W, back.H)
	}
	if _, err := jpeg.Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("stdlib rejected odd-size output: %v", err)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(nil, 85); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := Encode(&Image{W: 2, H: 2, Pix: make([]uint8, 5)}, 85); err == nil {
		t.Error("mismatched pixel buffer accepted")
	}
}

func TestMagnitude(t *testing.T) {
	cases := []struct {
		v    int32
		size int
		bits uint32
	}{
		{0, 0, 0},
		{1, 1, 1},
		{-1, 1, 0},
		{3, 2, 3},
		{-3, 2, 0},
		{7, 3, 7},
		{-4, 3, 3},
	}
	for _, c := range cases {
		s, b := magnitude(c.v)
		if s != c.size || b != c.bits {
			t.Errorf("magnitude(%d) = (%d, %b), want (%d, %b)", c.v, s, b, c.size, c.bits)
		}
	}
}

// TestFDCTInvertsIDCT pins the transform pair: FDCT followed by
// dequantized IDCT (via the decoder's idct8x8 with a unit quant table)
// must reproduce the block.
func TestFDCTInvertsIDCT(t *testing.T) {
	var block [64]float64
	for i := range block {
		block[i] = float64((i*37)%255) - 128
	}
	orig := block
	fdct8x8(&block)
	var coefs [64]int32
	for i, v := range block {
		coefs[i] = int32(math.Round(v * 8)) // ×8 fixed point to keep precision
	}
	var out [64]uint8
	scaled := make([]int32, 64)
	for i := range scaled {
		scaled[i] = coefs[i]
	}
	// idct8x8 level-shifts by +128 and clamps; invert manually.
	var fblock [64]int32
	copy(fblock[:], scaled)
	dst := make([]uint8, 64)
	idctScaled(fblock[:], dst, 8)
	for i := range out {
		out[i] = dst[i]
	}
	for i := range orig {
		want := orig[i] + 128
		if math.Abs(float64(out[i])-want) > 1.5 {
			t.Fatalf("idx %d: round trip %d vs %.1f", i, out[i], want)
		}
	}
}

// idctScaled undoes the ×8 fixed-point scale before the standard IDCT.
func idctScaled(block []int32, dst []uint8, stride int) {
	scaled := make([]int32, 64)
	for i, v := range block {
		scaled[i] = v
	}
	// Divide by 8 in float via a temporary quant of 1/8: easiest is to
	// scale down the coefficients directly (they are multiples of ~8).
	for i := range scaled {
		scaled[i] = int32(math.Round(float64(scaled[i]) / 8))
	}
	idct8x8(scaled, dst, stride)
}
