package jpegdec

import (
	"testing"

	"trainbox/internal/imgproc"
)

// benchJPEG builds one mid-size color JPEG for the decode benchmarks.
func benchJPEG(b *testing.B) []byte {
	b.Helper()
	img := imgproc.NewImage(128, 96)
	for i := range img.Pix {
		img.Pix[i] = uint8((i*7 + i/3) % 256)
	}
	data, err := imgproc.EncodeJPEG(img, 85)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkDecoderReuse is the steady-state path: one Decoder reused
// across samples, which must run allocation-free once warm.
func BenchmarkDecoderReuse(b *testing.B) {
	data := benchJPEG(b)
	dec := NewDecoder()
	if _, _, err := dec.Decode(data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFresh is the legacy throwaway-decoder path, kept as
// the comparison point for the reuse win.
func BenchmarkDecodeFresh(b *testing.B) {
	data := benchJPEG(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
