package eth

import (
	"math"
	"testing"

	"trainbox/internal/units"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(LinkSpec{Bandwidth: 0}, SwitchSpec{Ports: 4}); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if _, err := NewNetwork(Link100G, SwitchSpec{Ports: 0}); err == nil {
		t.Error("zero-port switch accepted")
	}
}

func TestAttachExhaustsPorts(t *testing.T) {
	n, err := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err == nil {
		t.Error("third attach on 2-port switch accepted")
	}
	if n.Attached() != 2 || n.Ports() != 2 {
		t.Errorf("attached=%d ports=%d", n.Attached(), n.Ports())
	}
}

func TestPortBandwidthNonBlocking(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 8})
	for i := 0; i < 8; i++ {
		n.Attach()
	}
	if got := n.PortBandwidth(); got != Link100G.Bandwidth {
		t.Errorf("non-blocking port bandwidth = %v, want %v", got, Link100G.Bandwidth)
	}
}

func TestPortBandwidthAggregateCeiling(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 8, AggregateBandwidth: 50 * units.GBps})
	for i := 0; i < 8; i++ {
		n.Attach()
	}
	want := 50 * units.GBps / 8
	if got := n.PortBandwidth(); math.Abs(float64(got-want)) > 1 {
		t.Errorf("blocked port bandwidth = %v, want %v", got, want)
	}
}

func TestTransferTime(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	got := n.TransferTime(12.5 * units.GB)
	want := float64(12.5*units.GB) / float64(Link100G.Bandwidth)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestOffloadRate(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	// 1.25 MB per sample over 12.5 GB/s = 10,000 samples/s.
	got := n.OffloadRate(units.Bytes(1.25e6))
	if math.Abs(float64(got)-10000) > 0.01 {
		t.Errorf("OffloadRate = %v, want 10000", got)
	}
	if n.OffloadRate(0) < 1e29 {
		t.Error("zero-volume offload should be unconstrained")
	}
}

func TestDetachAccounting(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	if err := n.Detach(); err == nil {
		t.Error("detach with nothing attached accepted")
	}
	if err := n.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := n.Detach(); err != nil {
		t.Errorf("detach after attach: %v", err)
	}
	if n.Attached() != 0 {
		t.Errorf("attached = %d after detach, want 0", n.Attached())
	}
	if err := n.Detach(); err == nil {
		t.Error("double detach accepted")
	}
}

func TestReserveExhaustion(t *testing.T) {
	// 2 non-blocking 100G ports → 25 GB/s capacity.
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	if got := n.Capacity(); got != 25*units.GBps {
		t.Fatalf("capacity = %v, want 25 GB/s", got)
	}
	r1, err := n.Reserve(20 * units.GBps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Reserve(10 * units.GBps); err == nil {
		t.Error("over-capacity reservation accepted")
	}
	if got := n.Available(); got != 5*units.GBps {
		t.Errorf("available = %v after failed reserve, want 5 GB/s (failed claims must not leak)", got)
	}
	r2, err := n.Reserve(5 * units.GBps)
	if err != nil {
		t.Fatalf("exact remaining capacity refused: %v", err)
	}
	if n.Available() != 0 {
		t.Errorf("available = %v at full reservation, want 0", n.Available())
	}
	if err := r2.Release(); err != nil {
		t.Errorf("release after exhaustion: %v", err)
	}
	// Release-after-exhaustion must restore exactly the released slice.
	if got := n.Available(); got != 5*units.GBps {
		t.Errorf("available = %v after release, want 5 GB/s", got)
	}
	if err := r1.Release(); err != nil {
		t.Errorf("release: %v", err)
	}
	if n.Reserved() != 0 {
		t.Errorf("reserved = %v after releasing everything, want 0", n.Reserved())
	}
}

func TestReserveDoubleRelease(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2, AggregateBandwidth: 10 * units.GBps})
	r, err := n.Reserve(4 * units.GBps)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(); err == nil {
		t.Error("double release accepted")
	}
	if n.Reserved() != 0 {
		t.Errorf("double release corrupted accounting: reserved = %v, want 0", n.Reserved())
	}
	var nilRes *Reservation
	if err := nilRes.Release(); err == nil {
		t.Error("nil reservation release accepted")
	}
	if _, err := n.Reserve(0); err == nil {
		t.Error("zero-bandwidth reservation accepted")
	}
}

func TestLink100GMatchesPaperArgument(t *testing.T) {
	// Section IV-D: "100Gbs=12.5GB/s vs 16GB/s" — Ethernet must be the
	// same order as a PCIe Gen3 x16 link.
	ratio := float64(Link100G.Bandwidth) / 16e9
	if ratio < 0.7 || ratio > 1.0 {
		t.Errorf("100G/PCIe ratio = %v, want ≈0.78", ratio)
	}
}
