package eth

import (
	"math"
	"testing"

	"trainbox/internal/units"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(LinkSpec{Bandwidth: 0}, SwitchSpec{Ports: 4}); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if _, err := NewNetwork(Link100G, SwitchSpec{Ports: 0}); err == nil {
		t.Error("zero-port switch accepted")
	}
}

func TestAttachExhaustsPorts(t *testing.T) {
	n, err := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(); err == nil {
		t.Error("third attach on 2-port switch accepted")
	}
	if n.Attached() != 2 || n.Ports() != 2 {
		t.Errorf("attached=%d ports=%d", n.Attached(), n.Ports())
	}
}

func TestPortBandwidthNonBlocking(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 8})
	for i := 0; i < 8; i++ {
		n.Attach()
	}
	if got := n.PortBandwidth(); got != Link100G.Bandwidth {
		t.Errorf("non-blocking port bandwidth = %v, want %v", got, Link100G.Bandwidth)
	}
}

func TestPortBandwidthAggregateCeiling(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 8, AggregateBandwidth: 50 * units.GBps})
	for i := 0; i < 8; i++ {
		n.Attach()
	}
	want := 50 * units.GBps / 8
	if got := n.PortBandwidth(); math.Abs(float64(got-want)) > 1 {
		t.Errorf("blocked port bandwidth = %v, want %v", got, want)
	}
}

func TestTransferTime(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	got := n.TransferTime(12.5 * units.GB)
	want := float64(12.5*units.GB) / float64(Link100G.Bandwidth)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
}

func TestOffloadRate(t *testing.T) {
	n, _ := NewNetwork(Link100G, SwitchSpec{Ports: 2})
	// 1.25 MB per sample over 12.5 GB/s = 10,000 samples/s.
	got := n.OffloadRate(units.Bytes(1.25e6))
	if math.Abs(float64(got)-10000) > 0.01 {
		t.Errorf("OffloadRate = %v, want 10000", got)
	}
	if n.OffloadRate(0) < 1e29 {
		t.Error("zero-volume offload should be unconstrained")
	}
}

func TestLink100GMatchesPaperArgument(t *testing.T) {
	// Section IV-D: "100Gbs=12.5GB/s vs 16GB/s" — Ethernet must be the
	// same order as a PCIe Gen3 x16 link.
	ratio := float64(Link100G.Bandwidth) / 16e9
	if ratio < 0.7 || ratio > 1.0 {
		t.Errorf("100G/PCIe ratio = %v, want ≈0.78", ratio)
	}
}
