// Package eth models the dedicated Ethernet data-preparation network
// that connects train-box FPGAs to the prep-pool (Section IV-D).
//
// The paper's argument for Ethernet is bandwidth parity with PCIe
// (100 Gb/s = 12.5 GB/s vs 16 GB/s) on a channel that does not contend
// with the PCIe tree; next-batch prefetching hides its latency. The model
// therefore only needs per-port bandwidth and a non-blocking top-of-rack
// switch with an aggregate ceiling.
package eth

import (
	"fmt"

	"trainbox/internal/units"
)

// LinkSpec describes one Ethernet port.
type LinkSpec struct {
	Bandwidth units.BytesPerSec
}

// Link100G is the 100 Gb/s port on the paper's FPGAs (12.5 GB/s).
var Link100G = LinkSpec{Bandwidth: 12.5 * units.GBps}

// SwitchSpec describes a top-of-rack switch.
type SwitchSpec struct {
	Ports int
	// AggregateBandwidth caps total traffic through the fabric; 0 means
	// fully non-blocking (ports × link bandwidth).
	AggregateBandwidth units.BytesPerSec
}

// Network is an analytical model of the prep-pool network: a set of
// same-speed ports behind one switch.
type Network struct {
	link  LinkSpec
	sw    SwitchSpec
	inUse int
}

// NewNetwork builds a prep-pool network with the given port count.
func NewNetwork(link LinkSpec, sw SwitchSpec) (*Network, error) {
	if link.Bandwidth <= 0 {
		return nil, fmt.Errorf("eth: non-positive link bandwidth")
	}
	if sw.Ports <= 0 {
		return nil, fmt.Errorf("eth: switch needs at least one port")
	}
	return &Network{link: link, sw: sw}, nil
}

// Link returns the per-port spec.
func (n *Network) Link() LinkSpec { return n.link }

// Ports returns the switch port count.
func (n *Network) Ports() int { return n.sw.Ports }

// Attach reserves a port, returning an error when the switch is full.
func (n *Network) Attach() error {
	if n.inUse >= n.sw.Ports {
		return fmt.Errorf("eth: all %d ports in use", n.sw.Ports)
	}
	n.inUse++
	return nil
}

// Attached returns the number of reserved ports.
func (n *Network) Attached() int { return n.inUse }

// PortBandwidth returns the usable bandwidth of one port given the
// aggregate ceiling and the number of attached ports: min(link,
// aggregate/attached).
func (n *Network) PortBandwidth() units.BytesPerSec {
	bw := n.link.Bandwidth
	if n.sw.AggregateBandwidth > 0 && n.inUse > 0 {
		share := n.sw.AggregateBandwidth / units.BytesPerSec(n.inUse)
		if share < bw {
			bw = share
		}
	}
	return bw
}

// TransferTime returns the time to move v bytes over one port.
func (n *Network) TransferTime(v units.Bytes) float64 {
	return units.Seconds(v, n.PortBandwidth())
}

// OffloadRate converts a per-sample offload volume (bytes shipped to the
// prep-pool and results shipped back) into the maximum samples/s one port
// sustains.
func (n *Network) OffloadRate(perSample units.Bytes) units.SamplesPerSec {
	if perSample <= 0 {
		return units.SamplesPerSec(1e30)
	}
	return units.SamplesPerSec(float64(n.PortBandwidth()) / float64(perSample))
}
