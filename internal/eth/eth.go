// Package eth models the dedicated Ethernet data-preparation network
// that connects train-box FPGAs to the prep-pool (Section IV-D).
//
// The paper's argument for Ethernet is bandwidth parity with PCIe
// (100 Gb/s = 12.5 GB/s vs 16 GB/s) on a channel that does not contend
// with the PCIe tree; next-batch prefetching hides its latency. The model
// therefore only needs per-port bandwidth and a non-blocking top-of-rack
// switch with an aggregate ceiling.
package eth

import (
	"fmt"
	"sync"

	"trainbox/internal/units"
)

// LinkSpec describes one Ethernet port.
type LinkSpec struct {
	Bandwidth units.BytesPerSec
}

// Link100G is the 100 Gb/s port on the paper's FPGAs (12.5 GB/s).
var Link100G = LinkSpec{Bandwidth: 12.5 * units.GBps}

// SwitchSpec describes a top-of-rack switch.
type SwitchSpec struct {
	Ports int
	// AggregateBandwidth caps total traffic through the fabric; 0 means
	// fully non-blocking (ports × link bandwidth).
	AggregateBandwidth units.BytesPerSec
}

// Network is an analytical model of the prep-pool network: a set of
// same-speed ports behind one switch. Port attachment and bandwidth
// reservations are safe for concurrent use.
type Network struct {
	link LinkSpec
	sw   SwitchSpec

	mu       sync.Mutex
	inUse    int
	reserved units.BytesPerSec
}

// NewNetwork builds a prep-pool network with the given port count.
func NewNetwork(link LinkSpec, sw SwitchSpec) (*Network, error) {
	if link.Bandwidth <= 0 {
		return nil, fmt.Errorf("eth: non-positive link bandwidth")
	}
	if sw.Ports <= 0 {
		return nil, fmt.Errorf("eth: switch needs at least one port")
	}
	return &Network{link: link, sw: sw}, nil
}

// Link returns the per-port spec.
func (n *Network) Link() LinkSpec { return n.link }

// Ports returns the switch port count.
func (n *Network) Ports() int { return n.sw.Ports }

// Attach reserves a port, returning an error when the switch is full.
func (n *Network) Attach() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inUse >= n.sw.Ports {
		return fmt.Errorf("eth: all %d ports in use", n.sw.Ports)
	}
	n.inUse++
	return nil
}

// Detach releases a previously attached port. Releasing with no port
// attached is an accounting error and is reported rather than silently
// wrapping the counter negative.
func (n *Network) Detach() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inUse <= 0 {
		return fmt.Errorf("eth: detach with no port attached")
	}
	n.inUse--
	return nil
}

// Attached returns the number of reserved ports.
func (n *Network) Attached() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inUse
}

// PortBandwidth returns the usable bandwidth of one port given the
// aggregate ceiling and the number of attached ports: min(link,
// aggregate/attached).
func (n *Network) PortBandwidth() units.BytesPerSec {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.portBandwidthLocked()
}

func (n *Network) portBandwidthLocked() units.BytesPerSec {
	bw := n.link.Bandwidth
	if n.sw.AggregateBandwidth > 0 && n.inUse > 0 {
		share := n.sw.AggregateBandwidth / units.BytesPerSec(n.inUse)
		if share < bw {
			bw = share
		}
	}
	return bw
}

// Capacity returns the fabric's total reservable bandwidth: the switch's
// aggregate ceiling, or ports × link bandwidth when the switch is
// non-blocking.
func (n *Network) Capacity() units.BytesPerSec {
	if n.sw.AggregateBandwidth > 0 {
		return n.sw.AggregateBandwidth
	}
	return n.link.Bandwidth * units.BytesPerSec(n.sw.Ports)
}

// Reserved returns the bandwidth currently held by live reservations.
func (n *Network) Reserved() units.BytesPerSec {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reserved
}

// Available returns the bandwidth still reservable.
func (n *Network) Available() units.BytesPerSec {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Capacity() - n.reserved
}

// Reservation is a claim on a slice of the fabric's bandwidth, granted
// by Reserve and returned with Release. The prep-pool runtime holds one
// per leased device so a grant can never outrun the network.
type Reservation struct {
	net      *Network
	bw       units.BytesPerSec
	released bool
}

// Bandwidth returns the reserved bandwidth.
func (r *Reservation) Bandwidth() units.BytesPerSec { return r.bw }

// Reserve claims bw of the fabric's capacity, failing when the claim
// would exceed it (or when bw is non-positive). Every successful Reserve
// must be paired with exactly one Release.
func (n *Network) Reserve(bw units.BytesPerSec) (*Reservation, error) {
	if bw <= 0 {
		return nil, fmt.Errorf("eth: non-positive reservation %v", bw)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reserved+bw > n.Capacity() {
		return nil, fmt.Errorf("eth: reserving %v exceeds capacity (%v of %v already reserved)",
			bw, n.reserved, n.Capacity())
	}
	n.reserved += bw
	return &Reservation{net: n, bw: bw}, nil
}

// Release returns the reservation's bandwidth to the fabric. A second
// Release on the same reservation is an accounting bug and is reported
// without corrupting the reserved total.
func (r *Reservation) Release() error {
	if r == nil {
		return fmt.Errorf("eth: release of nil reservation")
	}
	r.net.mu.Lock()
	defer r.net.mu.Unlock()
	if r.released {
		return fmt.Errorf("eth: reservation released twice")
	}
	if r.net.reserved < r.bw {
		return fmt.Errorf("eth: release of %v exceeds reserved total %v", r.bw, r.net.reserved)
	}
	r.released = true
	r.net.reserved -= r.bw
	return nil
}

// TransferTime returns the time to move v bytes over one port.
func (n *Network) TransferTime(v units.Bytes) float64 {
	return units.Seconds(v, n.PortBandwidth())
}

// OffloadRate converts a per-sample offload volume (bytes shipped to the
// prep-pool and results shipped back) into the maximum samples/s one port
// sustains.
func (n *Network) OffloadRate(perSample units.Bytes) units.SamplesPerSec {
	if perSample <= 0 {
		return units.SamplesPerSec(1e30)
	}
	return units.SamplesPerSec(float64(n.PortBandwidth()) / float64(perSample))
}
