package eth

import (
	"fmt"

	"trainbox/internal/units"
)

// AggregationSpec configures SmartNIC-style in-network gradient
// aggregation (FPGA AI SmartNICs, PAPERS.md): every worker streams its
// gradients out of a NIC that compresses them before they hit the wire,
// and the top-of-rack switch reduces the streams on the fly instead of
// forwarding them, so each port carries one compressed model copy per
// direction regardless of worker count.
type AggregationSpec struct {
	// Compression divides the wire volume: the NIC ships
	// modelBytes/Compression per sync (e.g. 4 for fp32→int8-style
	// gradient quantization). Must be ≥ 1; 1 means uncompressed.
	Compression float64
	// ReduceBandwidth is the per-port rate the switch's reduce engine
	// sustains; 0 means it keeps up with line rate.
	ReduceBandwidth units.BytesPerSec
	// RoundLatency is the fixed per-sync cost in seconds (pipeline
	// setup, final broadcast flit).
	RoundLatency float64
}

// DefaultAggregationSpec returns the reproduction's SmartNIC model: 4×
// gradient compression, a reduce engine at line rate, and a 2 µs fixed
// round cost.
func DefaultAggregationSpec() AggregationSpec {
	return AggregationSpec{Compression: 4, RoundLatency: 2e-6}
}

// InNetwork prices gradient synchronization offloaded into the prep
// network's switch, against the same port and aggregate limits every
// other eth consumer sees. Obtain one with Network.InNetwork.
type InNetwork struct {
	net  *Network
	spec AggregationSpec
}

// InNetwork binds an aggregation spec to the network.
func (n *Network) InNetwork(spec AggregationSpec) (*InNetwork, error) {
	if spec.Compression < 1 {
		return nil, fmt.Errorf("eth: in-network compression %v must be >= 1", spec.Compression)
	}
	if spec.ReduceBandwidth < 0 {
		return nil, fmt.Errorf("eth: negative reduce bandwidth %v", spec.ReduceBandwidth)
	}
	if spec.RoundLatency < 0 {
		return nil, fmt.Errorf("eth: negative round latency %v", spec.RoundLatency)
	}
	return &InNetwork{net: n, spec: spec}, nil
}

// Spec returns the aggregation parameters.
func (a *InNetwork) Spec() AggregationSpec { return a.spec }

// portRate returns the per-port rate one of `workers` concurrent
// aggregation streams sustains: line rate, capped by the reduce engine
// and by an aggregate switch ceiling split across the workers.
func (a *InNetwork) portRate(workers int) units.BytesPerSec {
	bw := a.net.link.Bandwidth
	if a.spec.ReduceBandwidth > 0 && a.spec.ReduceBandwidth < bw {
		bw = a.spec.ReduceBandwidth
	}
	if agg := a.net.sw.AggregateBandwidth; agg > 0 && workers > 0 {
		if share := agg / units.BytesPerSec(workers); share < bw {
			bw = share
		}
	}
	return bw
}

// SyncLatency returns the in-network all-reduce time for `workers`
// ranks: each port uploads one compressed model copy into the reduce
// engine and downloads the reduced copy, fully overlapped across
// workers because the switch aggregates in flight. Compare with a host
// ring over the same ports (collective.RingModel at Link().Bandwidth),
// which moves 2·(n−1)/n uncompressed copies per port instead.
func (a *InNetwork) SyncLatency(workers int, modelBytes units.Bytes) float64 {
	if workers <= 1 || modelBytes <= 0 {
		return 0
	}
	wire := float64(modelBytes) / a.spec.Compression
	return 2*wire/float64(a.portRate(workers)) + a.spec.RoundLatency
}

// ReserveSync books the aggregation round's bandwidth through the
// fabric's reservation ledger — workers × the per-stream rate — so a
// sync offload contends with prep-pool traffic instead of being
// modelled for free. Release the reservation when the round's traffic
// is done.
func (a *InNetwork) ReserveSync(workers int) (*Reservation, error) {
	if workers < 1 {
		return nil, fmt.Errorf("eth: in-network sync needs at least one worker, got %d", workers)
	}
	total := units.BytesPerSec(workers) * a.portRate(workers)
	return a.net.Reserve(total)
}
