package eth

import (
	"math"
	"testing"

	"trainbox/internal/units"
)

func TestInNetworkSpecValidation(t *testing.T) {
	net, err := NewNetwork(Link100G, SwitchSpec{Ports: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.InNetwork(AggregationSpec{Compression: 0.5}); err == nil {
		t.Error("compression < 1 accepted")
	}
	if _, err := net.InNetwork(AggregationSpec{Compression: 1, ReduceBandwidth: -1}); err == nil {
		t.Error("negative reduce bandwidth accepted")
	}
	if _, err := net.InNetwork(AggregationSpec{Compression: 1, RoundLatency: -1}); err == nil {
		t.Error("negative round latency accepted")
	}
	if _, err := net.InNetwork(DefaultAggregationSpec()); err != nil {
		t.Errorf("default spec rejected: %v", err)
	}
}

func TestInNetworkSyncLatencyMath(t *testing.T) {
	net, err := NewNetwork(Link100G, SwitchSpec{Ports: 32})
	if err != nil {
		t.Fatal(err)
	}
	spec := AggregationSpec{Compression: 4, RoundLatency: 2e-6}
	agg, err := net.InNetwork(spec)
	if err != nil {
		t.Fatal(err)
	}

	const mb = 100 * units.MB
	want := 2*(float64(mb)/4)/float64(Link100G.Bandwidth) + 2e-6
	if got := agg.SyncLatency(16, mb); math.Abs(got-want) > want*1e-12 {
		t.Errorf("SyncLatency(16) = %v, want %v", got, want)
	}
	// Worker-count independent on a non-blocking switch: the engine
	// reduces in flight, so each port still carries one copy each way.
	if l2, l32 := agg.SyncLatency(2, mb), agg.SyncLatency(32, mb); l2 != l32 {
		t.Errorf("non-blocking in-network latency depends on workers: %v vs %v", l2, l32)
	}
	// Compression scales the wire term linearly.
	raw, _ := net.InNetwork(AggregationSpec{Compression: 1, RoundLatency: 2e-6})
	if lr, lc := raw.SyncLatency(16, mb), agg.SyncLatency(16, mb); !(lr > 3.9*lc && lr < 4.1*lc) {
		t.Errorf("4x compression did not cut wire time ~4x: raw=%v compressed=%v", lr, lc)
	}
	// Degenerate inputs cost nothing.
	if agg.SyncLatency(1, mb) != 0 || agg.SyncLatency(16, 0) != 0 {
		t.Error("degenerate inputs should cost 0")
	}
}

func TestInNetworkReduceEngineAndAggregateCeilings(t *testing.T) {
	const mb = 100 * units.MB
	// Reduce engine slower than line rate dominates.
	net, _ := NewNetwork(Link100G, SwitchSpec{Ports: 8})
	slow, err := net.InNetwork(AggregationSpec{Compression: 1, ReduceBandwidth: Link100G.Bandwidth / 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(mb) / float64(Link100G.Bandwidth/2)
	if got := slow.SyncLatency(4, mb); math.Abs(got-want) > want*1e-12 {
		t.Errorf("reduce-engine-bound latency = %v, want %v", got, want)
	}

	// An aggregate switch ceiling splits across workers, so latency
	// grows once workers saturate it.
	capped, _ := NewNetwork(Link100G, SwitchSpec{Ports: 32, AggregateBandwidth: 4 * Link100G.Bandwidth})
	a, err := capped.InNetwork(AggregationSpec{Compression: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l4, l16 := a.SyncLatency(4, mb), a.SyncLatency(16, mb); l16 <= l4 {
		t.Errorf("aggregate-capped latency did not grow with workers: %v vs %v", l4, l16)
	}
}

func TestInNetworkReserveSyncLedger(t *testing.T) {
	net, err := NewNetwork(Link100G, SwitchSpec{Ports: 8})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := net.InNetwork(DefaultAggregationSpec())
	if err != nil {
		t.Fatal(err)
	}

	res, err := agg.ReserveSync(4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * Link100G.Bandwidth; net.Reserved() != want {
		t.Errorf("Reserved() = %v, want %v", net.Reserved(), want)
	}
	// The sync traffic contends with other consumers: the remaining
	// capacity is what a prep-pool lease could still claim.
	if _, err := net.Reserve(5 * Link100G.Bandwidth); err == nil {
		t.Error("over-capacity reservation next to a sync booking accepted")
	}
	if err := res.Release(); err != nil {
		t.Fatal(err)
	}
	if net.Reserved() != 0 {
		t.Errorf("Reserved() = %v after release, want 0", net.Reserved())
	}

	// A sync round that needs more than the fabric has must fail.
	if _, err := agg.ReserveSync(9); err == nil {
		t.Error("sync wider than the fabric accepted")
	}
	if _, err := agg.ReserveSync(0); err == nil {
		t.Error("zero workers accepted")
	}
}
