package fpga

import (
	"fmt"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/storage"
)

// Option is a construction-time knob for the package's runtime types,
// accepted by NewCluster and NewP2PHandler. One option type serves both
// constructors so shared knobs (WithMetrics, WithFaults) read the same
// everywhere; an option that does not apply to the type being built
// fails construction with a descriptive error instead of being silently
// ignored.
//
// This is the canonical configuration surface: the method-chained
// setters ((*Cluster).WithHealth, (*P2PHandler).WithFaults, …) remain as
// deprecated shims over the same fields.
type Option struct {
	name    string
	cluster func(*Cluster) error
	handler func(*P2PHandler) error
}

func (o Option) applyCluster(c *Cluster) error {
	if o.cluster == nil {
		return fmt.Errorf("fpga: option %s does not apply to a Cluster", o.name)
	}
	return o.cluster(c)
}

func (o Option) applyHandler(h *P2PHandler) error {
	if o.handler == nil {
		return fmt.Errorf("fpga: option %s does not apply to a P2PHandler", o.name)
	}
	return o.handler(h)
}

// WithHealth enables the cluster's per-device health tracking (zero
// fields select defaults): consecutive failures eject a device, ejected
// devices are re-admitted on probation, and failed samples are
// re-dispatched to other devices instead of failing the batch.
func WithHealth(cfg HealthConfig) Option {
	return Option{name: "WithHealth", cluster: func(c *Cluster) error {
		c.setHealth(cfg)
		return nil
	}}
}

// WithFallback attaches the cluster's host data-preparation path: when
// every pooled device is ejected (or a sample has exhausted its pool
// attempts), the sample is prepared by exec over store instead. Because
// per-sample seeds depend only on (dataset seed, key, epoch), degraded
// batches remain bit-identical. A cluster with a fallback may be built
// over zero devices (pure degraded mode) — the form the dynamic
// prep-pool uses for jobs that currently hold no leases.
func WithFallback(exec *dataprep.Executor, store *storage.Store) Option {
	return Option{name: "WithFallback", cluster: func(c *Cluster) error {
		if exec == nil || store == nil {
			return fmt.Errorf("fpga: WithFallback needs an executor and a store")
		}
		c.fbExec, c.fbStore = exec, store
		return nil
	}}
}

// WithName scopes the cluster's telemetry: metrics report under
// "fpga.pool.<name>.*" and its dispatch pipeline under
// "pipeline.fpga-pool-<name>.*", so several clusters (one per job in a
// shared prep-pool) can share a registry without colliding. The empty
// default keeps the legacy unscoped "fpga.pool.*" names.
func WithName(name string) Option {
	return Option{name: "WithName", cluster: func(c *Cluster) error {
		c.name = name
		return nil
	}}
}

// WithMetrics attaches a registry. On a cluster: dispatched jobs,
// per-device utilization, resilience counters, and live pool size under
// "fpga.pool[.<name>].*", plus the dispatch pipeline under
// "pipeline.fpga-pool[-<name>].*". On a P2P handler: per-sample device
// latency and sample counts under "fpga.p2p.*" and batch pipelines under
// "pipeline.fpga-p2p.*".
func WithMetrics(reg *metrics.Registry) Option {
	return Option{
		name: "WithMetrics",
		cluster: func(c *Cluster) error {
			c.reg = reg
			return nil
		},
		handler: func(h *P2PHandler) error {
			h.WithMetrics(reg)
			return nil
		},
	}
}

// WithFaults attaches a fault injector. On a P2P handler it is consulted
// before every NVMe read the handler issues (op name "fpga.p2p.read") —
// the knob chaos tests turn to make one device flaky or dead. On a
// cluster it is attached to every member device that does not already
// carry its own injector — the "whole pool is flaky" configuration.
func WithFaults(inj faults.Injector) Option {
	return Option{
		name: "WithFaults",
		cluster: func(c *Cluster) error {
			for _, d := range c.devices {
				if d.h.inj == nil {
					d.h.inj = inj
				}
			}
			return nil
		},
		handler: func(h *P2PHandler) error {
			h.inj = inj
			return nil
		},
	}
}
