package fpga

import (
	"context"
	"errors"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
)

// chaosFixture builds a cluster of len(injs) devices, handler i wired
// to injector injs[i] (nil = healthy), over a small image dataset.
func chaosFixture(t *testing.T, injs ...faults.Injector) (*Cluster, *storage.Store, dataprep.ImageConfig) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	handlers := make([]*P2PHandler, len(injs))
	for i := range handlers {
		h, err := NewP2PHandler(ns, NewImageEmulator(cfg), 8)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h.WithFaults(injs[i])
	}
	cluster, err := NewCluster(handlers)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, store, cfg
}

// hostOracle prepares the same batch on the fault-free host path.
func hostOracle(t *testing.T, store *storage.Store, cfg dataprep.ImageConfig, datasetSeed int64, epoch int) []dataprep.Prepared {
	t.Helper()
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, datasetSeed)
	host, err := exec.PrepareBatch(store, store.Keys(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	return host
}

func assertBitIdentical(t *testing.T, got, want []dataprep.Prepared) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("sample %d key %q, want %q — ordering broken", i, got[i].Key, want[i].Key)
		}
		for j := range want[i].Image.Data {
			if got[i].Image.Data[j] != want[i].Image.Data[j] {
				t.Fatalf("sample %d diverges at element %d — degraded path not bit-identical", i, j)
			}
		}
	}
}

// TestClusterEjectsDeadDeviceAndStaysBitIdentical: one device dead on
// arrival must be ejected after EjectAfter strikes while its samples are
// re-dispatched to the survivor, and the delivered batch must still be
// bit-identical to the host oracle.
func TestClusterEjectsDeadDeviceAndStaysBitIdentical(t *testing.T) {
	const datasetSeed, epoch = 3, 1
	cluster, store, cfg := chaosFixture(t, faults.NewDeviceDeath(0), nil)
	reg := metrics.NewRegistry()
	cluster.WithHealth(HealthConfig{EjectAfter: 2}).WithMetrics(reg)

	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, epoch))
	if got := reg.Counter("fpga.pool.devices_ejected").Value(); got != 1 {
		t.Errorf("devices_ejected = %d, want 1", got)
	}
	if reg.Counter("fpga.pool.sample_retries").Value() == 0 {
		t.Error("no sample retries recorded for re-dispatched samples")
	}
	if got := cluster.ActiveDevices(); got != 1 {
		t.Errorf("active devices = %d, want 1", got)
	}
	if got := reg.Gauge("fpga.pool.devices_active").Value(); got != 1 {
		t.Errorf("devices_active gauge = %v, want 1", got)
	}
}

// TestClusterFallbackWhenAllDevicesDead: with every device dead and a
// host fallback attached, the whole batch must degrade to the host path
// — bit-identical, all samples counted as degraded, pool size zero.
func TestClusterFallbackWhenAllDevicesDead(t *testing.T) {
	const datasetSeed, epoch = 5, 2
	cluster, store, cfg := chaosFixture(t, faults.NewDeviceDeath(0), faults.NewDeviceDeath(0))
	reg := metrics.NewRegistry()
	fb := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 0)
	cluster.WithHealth(HealthConfig{EjectAfter: 1}).WithFallback(fb, store).WithMetrics(reg)

	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, epoch))
	if got := reg.Counter("fpga.pool.devices_ejected").Value(); got != 2 {
		t.Errorf("devices_ejected = %d, want 2", got)
	}
	if got := reg.Counter("fpga.pool.degraded_samples").Value(); got != int64(len(store.Keys())) {
		t.Errorf("degraded_samples = %d, want %d", got, len(store.Keys()))
	}
	if got := cluster.ActiveDevices(); got != 0 {
		t.Errorf("active devices = %d, want 0", got)
	}
}

// TestClusterProbationReadmission walks the full device lifecycle on a
// single-device pool with host fallback: eject → probation re-admission
// → re-ejection on the probation strike → revival → clean re-admission.
func TestClusterProbationReadmission(t *testing.T) {
	const datasetSeed = 11
	death := faults.NewDeviceDeath(0)
	cluster, store, cfg := chaosFixture(t, death)
	reg := metrics.NewRegistry()
	fb := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 0)
	cluster.WithHealth(HealthConfig{EjectAfter: 1, ProbationBatches: 1}).
		WithFallback(fb, store).WithMetrics(reg)

	// Batch 1: the device's first sample fails → immediate ejection; the
	// rest of the batch degrades to the host path.
	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, 0))
	if got := reg.Counter("fpga.pool.devices_ejected").Value(); got != 1 {
		t.Fatalf("after batch 1: devices_ejected = %d, want 1", got)
	}

	// Batch 2: probation re-admits the still-dead device; its one strike
	// re-ejects it and the batch degrades again.
	out, err = cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, 1))
	if got := reg.Counter("fpga.pool.devices_readmitted").Value(); got != 1 {
		t.Errorf("after batch 2: devices_readmitted = %d, want 1", got)
	}
	if got := reg.Counter("fpga.pool.devices_ejected").Value(); got != 2 {
		t.Errorf("after batch 2: devices_ejected = %d, want 2", got)
	}
	if got := cluster.ActiveDevices(); got != 0 {
		t.Errorf("after batch 2: active devices = %d, want 0", got)
	}

	// The device comes back; the next probation re-admission serves the
	// whole batch cleanly and the device stays in the pool.
	death.Revive(1 << 30)
	out, err = cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, 2))
	if got := reg.Counter("fpga.pool.devices_readmitted").Value(); got != 2 {
		t.Errorf("after batch 3: devices_readmitted = %d, want 2", got)
	}
	if got := reg.Counter("fpga.pool.devices_ejected").Value(); got != 2 {
		t.Errorf("after batch 3: devices_ejected = %d, want 2 (revived device must stay)", got)
	}
	if got := cluster.ActiveDevices(); got != 1 {
		t.Errorf("after batch 3: active devices = %d, want 1", got)
	}
}

// TestClusterPoolEmptyWithoutFallbackFails: with no host fallback, an
// all-dead pool must fail the batch with the device error.
func TestClusterPoolEmptyWithoutFallbackFails(t *testing.T) {
	cluster, store, _ := chaosFixture(t, faults.NewDeviceDeath(0))
	cluster.WithHealth(HealthConfig{EjectAfter: 1})
	if _, err := cluster.PrepareBatch(context.Background(), store.Keys(), 1, 0); !errors.Is(err, faults.ErrDeviceDead) {
		t.Errorf("err = %v, want ErrDeviceDead", err)
	}
}

// TestClusterFlakyDeviceRecovers: a pool where every device drops a
// deterministic fraction of reads must still deliver bit-identical
// batches via re-dispatch (and, at worst, the host fallback).
func TestClusterFlakyDeviceRecovers(t *testing.T) {
	const datasetSeed, epoch = 7, 0
	// Both devices share the flake schedule, so whichever device serves a
	// doomed (key, attempt) pair fails it — making retries deterministic.
	flake := faults.NewErrorRate(42, 0.4, nil)
	cluster, store, cfg := chaosFixture(t, flake, flake)
	reg := metrics.NewRegistry()
	fb := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 0)
	cluster.WithHealth(DefaultHealthConfig()).WithFallback(fb, store).WithMetrics(reg)

	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, hostOracle(t, store, cfg, datasetSeed, epoch))
	if reg.Counter("fpga.pool.sample_retries").Value() == 0 {
		t.Error("flaky pool recorded no sample retries")
	}
}

// TestClusterHealthDisabledKeepsFailFast: without WithHealth the legacy
// contract holds — the first device error fails the whole batch.
func TestClusterHealthDisabledKeepsFailFast(t *testing.T) {
	cluster, store, _ := chaosFixture(t, faults.NewDeviceDeath(0), nil)
	if _, err := cluster.PrepareBatch(context.Background(), store.Keys(), 1, 0); !errors.Is(err, faults.ErrDeviceDead) {
		t.Errorf("err = %v, want ErrDeviceDead", err)
	}
	// Both devices are back in the pool after the failed batch.
	if got := len(cluster.avail); got != cluster.Devices() {
		t.Errorf("%d of %d devices returned to pool", got, cluster.Devices())
	}
}
