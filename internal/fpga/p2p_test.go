package fpga

import (
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
)

// TestP2PPathBitEqualWithHostPath is the end-to-end device-centric
// integration: stored JPEGs fetched over the NVMe queue interface and
// prepared by the FPGA engine must be bit-identical to the host path
// (store read + CPU pipeline) for the same seeds.
func TestP2PPathBitEqualWithHostPath(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 6, 4, 7); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	handler, err := NewP2PHandler(ns, NewImageEmulator(cfg), 8)
	if err != nil {
		t.Fatal(err)
	}

	const datasetSeed, epoch = 7, 2
	device, err := handler.PrepareBatch(store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	hostExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, datasetSeed)
	host, err := hostExec.PrepareBatch(store, store.Keys(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(device) != len(host) {
		t.Fatalf("batch sizes differ: %d vs %d", len(device), len(host))
	}
	for i := range host {
		if device[i].Label != host[i].Label {
			t.Fatalf("sample %d label mismatch", i)
		}
		for j := range host[i].Image.Data {
			if device[i].Image.Data[j] != host[i].Image.Data[j] {
				t.Fatalf("sample %d diverges at element %d — P2P path not transparent", i, j)
			}
		}
	}
}

func TestP2PHandlerErrors(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewP2PHandler(nil, NewImageEmulator(dataprep.DefaultImageConfig()), 8); err == nil {
		t.Error("nil namespace accepted")
	}
	if _, err := NewP2PHandler(ns, nil, 8); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewP2PHandler(ns, NewImageEmulator(dataprep.DefaultImageConfig()), 1); err == nil {
		t.Error("sub-minimum queue depth accepted")
	}
	h, err := NewP2PHandler(ns, NewImageEmulator(dataprep.DefaultImageConfig()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if out := h.PrepareByKey("missing", 1); out.Err == nil {
		t.Error("missing key prepared")
	}
	if _, err := h.PrepareBatch([]string{"missing"}, 1, 0); err == nil {
		t.Error("batch with missing key accepted")
	}
}

func TestP2PAudioPath(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildAudioDataset(store, 2, 2, 5); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultAudioConfig()
	h, err := NewP2PHandler(ns, NewAudioEmulator(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := h.PrepareBatch(store.Keys(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	hostOut := dataprep.AudioPreparer{Config: cfg}
	for i, key := range store.Keys() {
		obj, _ := store.Get(key)
		want := hostOut.Prepare(obj, dataprep.SampleSeed(5, key, 0))
		for j := range want.Audio.Data {
			if batch[i].Audio.Data[j] != want.Audio.Data[j] {
				t.Fatalf("audio sample %d diverges at %d", i, j)
			}
		}
	}
}
