package fpga

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
)

func poolFixture(t *testing.T, devices int) (*Cluster, *storage.Store, dataprep.ImageConfig) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	handlers := make([]*P2PHandler, devices)
	for i := range handlers {
		h, err := NewP2PHandler(ns, NewImageEmulator(cfg), 8)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	cluster, err := NewCluster(handlers)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, store, cfg
}

// TestClusterBitEqualWithHostPath: dispatching a batch across three
// pooled devices must be bit-identical to the host executor — the
// transparency property that lets the scheduler hand any job's deficit
// to any pool device.
func TestClusterBitEqualWithHostPath(t *testing.T) {
	cluster, store, cfg := poolFixture(t, 3)
	const datasetSeed, epoch = 3, 1

	pooled, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	hostExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, datasetSeed)
	host, err := hostExec.PrepareBatch(store, store.Keys(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled) != len(host) {
		t.Fatalf("batch sizes differ: %d vs %d", len(pooled), len(host))
	}
	for i := range host {
		if pooled[i].Key != host[i].Key {
			t.Fatalf("sample %d key %q, want %q — pool dispatch broke ordering", i, pooled[i].Key, host[i].Key)
		}
		for j := range host[i].Image.Data {
			if pooled[i].Image.Data[j] != host[i].Image.Data[j] {
				t.Fatalf("sample %d diverges at element %d — pool offload not transparent", i, j)
			}
		}
	}
	stats := cluster.Stats()
	if len(stats) != 1 || stats[0].Name != "pool-dispatch" || stats[0].Parallelism != 3 {
		t.Fatalf("cluster stats = %+v", stats)
	}
	if stats[0].ItemsOut != int64(len(host)) {
		t.Errorf("dispatch delivered %d samples, want %d", stats[0].ItemsOut, len(host))
	}
}

func TestClusterErrorsAndValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewCluster([]*P2PHandler{nil}); err == nil {
		t.Error("nil handler accepted")
	}
	cluster, _, _ := poolFixture(t, 2)
	base := runtime.NumGoroutine()
	if _, err := cluster.PrepareBatch(context.Background(), []string{"img-00000", "missing"}, 1, 0); err == nil {
		t.Error("batch with missing key accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after failed batch: %d, started with %d", n, base)
	}
	// All devices must be back in the pool after the failure.
	if got := len(cluster.avail); got != cluster.Devices() {
		t.Errorf("%d of %d devices returned to pool", got, cluster.Devices())
	}
}

func TestClusterCancelledContext(t *testing.T) {
	cluster, store, _ := poolFixture(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cluster.PrepareBatch(ctx, store.Keys(), 1, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch: err = %v, want context.Canceled", err)
	}
}

// TestP2PBatchContextCancellation: the handler's staged pipeline must
// honour cancellation mid-batch.
func TestP2PBatchContextCancellation(t *testing.T) {
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 4, 2, 1); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewP2PHandler(ns, NewImageEmulator(dataprep.DefaultImageConfig()), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.PrepareBatchContext(ctx, store.Keys(), 1, 0); err == nil {
		t.Error("cancelled p2p batch succeeded")
	}
	// A fresh batch afterwards still works and records stage stats.
	out, err := h.PrepareBatch(store.Keys(), 1, 0)
	if err != nil || len(out) != 4 {
		t.Fatalf("post-cancel batch: %v (%d samples)", err, len(out))
	}
	stats := h.Stats()
	if len(stats) != 2 || stats[0].Name != "nvme-read" || stats[1].Name != "prep-engine" {
		t.Fatalf("handler stats = %+v", stats)
	}
}
