package fpga

import (
	"context"
	"testing"

	"trainbox/internal/metrics"
)

// TestClusterMetrics: a metered pool must count dispatched jobs, report
// per-device utilization gauges in (0, 1], and stream the dispatch
// pipeline's stage series.
func TestClusterMetrics(t *testing.T) {
	cluster, store, _ := poolFixture(t, 2)
	reg := metrics.NewRegistry()
	cluster.WithMetrics(reg)
	for _, d := range cluster.devices {
		d.h.WithMetrics(reg)
	}
	keys := store.Keys()

	const epochs = 2
	for epoch := 0; epoch < epochs; epoch++ {
		if _, err := cluster.PrepareBatch(context.Background(), keys, 3, epoch); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	wantJobs := int64(epochs * len(keys))
	if got := snap.Counters["fpga.pool.jobs_dispatched"]; got != wantJobs {
		t.Errorf("jobs_dispatched = %d, want %d", got, wantJobs)
	}
	if got := snap.Counters["fpga.p2p.samples_prepared"]; got != wantJobs {
		t.Errorf("p2p samples_prepared = %d, want %d", got, wantJobs)
	}
	for _, dev := range []string{"fpga.pool.device.0.utilization", "fpga.pool.device.1.utilization"} {
		util, ok := snap.Gauges[dev]
		if !ok {
			t.Errorf("%s missing", dev)
			continue
		}
		if util <= 0 || util > 1 {
			t.Errorf("%s = %v, want in (0, 1]", dev, util)
		}
	}
	if got := snap.Counters["pipeline.fpga-pool.pool-dispatch.items"]; got != wantJobs {
		t.Errorf("dispatch stage items = %d, want %d", got, wantJobs)
	}
	lat := snap.Histograms["fpga.p2p.sample_ns"]
	if lat.Count != wantJobs || lat.P95 < lat.P50 {
		t.Errorf("sample latency histogram implausible: %+v", lat)
	}
}

// TestP2PBatchMetrics: a metered handler's batch path must stream the
// nvme-read and prep-engine stage series.
func TestP2PBatchMetrics(t *testing.T) {
	cluster, store, _ := poolFixture(t, 1)
	reg := metrics.NewRegistry()
	h := cluster.devices[0].h.WithMetrics(reg)

	out, err := h.PrepareBatch(store.Keys(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.fpga-p2p.nvme-read.items"]; got != int64(len(out)) {
		t.Errorf("nvme-read items = %d, want %d", got, len(out))
	}
	if got := snap.Counters["pipeline.fpga-p2p.prep-engine.items"]; got != int64(len(out)) {
		t.Errorf("prep-engine items = %d, want %d", got, len(out))
	}
}
