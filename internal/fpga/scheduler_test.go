package fpga

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func TestSchedulePoolCoversAllWhenAmple(t *testing.T) {
	jobs := []JobRequest{
		{Name: "img", Type: workload.Image, RequiredRate: 50000, InBoxRate: 16000},
		{Name: "aud", Type: workload.Audio, RequiredRate: 16000, InBoxRate: 10400},
		{Name: "idle", Type: workload.Image, RequiredRate: 8000, InBoxRate: 16000},
	}
	allocs, err := SchedulePool(jobs, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		if !a.Satisfied {
			t.Errorf("job %d not satisfied with an ample pool: %+v", i, a)
		}
	}
	if allocs[2].GrantedFPGAs != 0 {
		t.Errorf("no-deficit job granted %v FPGAs", allocs[2].GrantedFPGAs)
	}
	// Image job: deficit 34000 at 8000/FPGA → 4.25 FPGA-equivalents.
	if math.Abs(allocs[0].GrantedFPGAs-4.25) > 1e-9 {
		t.Errorf("image grant = %v, want 4.25", allocs[0].GrantedFPGAs)
	}
	if math.Abs(float64(allocs[0].GrantedRate)-34000) > 1e-6 {
		t.Errorf("image granted rate = %v, want 34000", allocs[0].GrantedRate)
	}
}

func TestSchedulePoolContentionEqualFractions(t *testing.T) {
	jobs := []JobRequest{
		{Name: "a", Type: workload.Image, RequiredRate: 24000, InBoxRate: 16000}, // need 1
		{Name: "b", Type: workload.Image, RequiredRate: 40000, InBoxRate: 16000}, // need 3
	}
	allocs, err := SchedulePool(jobs, 2) // half of total need 4
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		if math.Abs(a.Fraction-0.5) > 1e-9 {
			t.Errorf("job %d fraction = %v, want 0.5", i, a.Fraction)
		}
		if a.Satisfied {
			t.Errorf("job %d reported satisfied under contention", i)
		}
	}
	if got := PoolUtilization(allocs); math.Abs(got-2) > 1e-9 {
		t.Errorf("pool utilization = %v, want 2", got)
	}
}

func TestSchedulePoolZeroPool(t *testing.T) {
	jobs := []JobRequest{{Name: "a", Type: workload.Audio, RequiredRate: 16000, InBoxRate: 10400}}
	allocs, err := SchedulePool(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].GrantedFPGAs != 0 || allocs[0].Satisfied {
		t.Errorf("zero pool granted %+v", allocs[0])
	}
}

func TestSchedulePoolValidation(t *testing.T) {
	if _, err := SchedulePool(nil, -1); err == nil {
		t.Error("negative pool accepted")
	}
	if _, err := SchedulePool([]JobRequest{{RequiredRate: -1}}, 4); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestSchedulePoolProperties: never over-allocates, never grants more
// than a job's deficit, and uses the whole pool when demand exceeds it.
func TestSchedulePoolProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 1 + rng.Intn(6)
		jobs := make([]JobRequest, nJobs)
		for i := range jobs {
			typ := workload.Image
			if rng.Intn(2) == 0 {
				typ = workload.Audio
			}
			jobs[i] = JobRequest{
				Name: "j", Type: typ,
				RequiredRate: units.SamplesPerSec(1000 * (1 + rng.Float64()*50)),
				InBoxRate:    units.SamplesPerSec(1000 * rng.Float64() * 30),
			}
		}
		pool := rng.Intn(12)
		allocs, err := SchedulePool(jobs, pool)
		if err != nil {
			return false
		}
		var used, totalNeed float64
		for i, a := range allocs {
			if a.GrantedFPGAs < -1e-12 {
				return false
			}
			if a.GrantedFPGAs > jobs[i].DeficitFPGAs()+1e-9 {
				return false // over-grant
			}
			used += a.GrantedFPGAs
			totalNeed += jobs[i].DeficitFPGAs()
		}
		if used > float64(pool)+1e-9 {
			return false // over-allocation
		}
		if totalNeed > float64(pool) && used < float64(pool)-1e-9 {
			return false // pool left idle under contention
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestJobRequestDeficit(t *testing.T) {
	j := JobRequest{Type: workload.Image, RequiredRate: 10000, InBoxRate: 16000}
	if j.Deficit() != 0 || j.DeficitFPGAs() != 0 {
		t.Error("surplus job should have zero deficit")
	}
	j.RequiredRate = 24000
	if j.Deficit() != 8000 {
		t.Errorf("deficit = %v", j.Deficit())
	}
	if math.Abs(j.DeficitFPGAs()-1) > 1e-12 {
		t.Errorf("deficit FPGAs = %v, want 1", j.DeficitFPGAs())
	}
}
