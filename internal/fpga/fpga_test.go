package fpga

import (
	"math"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/eth"
	"trainbox/internal/storage"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

func TestTableIIImageUtilization(t *testing.T) {
	// Table II totals: LUT 78.7%, FF 38.1%, BRAM ≈51.5% (the paper's
	// P2P BRAM percentage is a typo — 153/2160 is 7.1%, giving a
	// consistent total of 58.2%; we accept either), DSP 30.5%.
	u, err := XCVU9P().Utilization(ImageEngines())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.LUTs-0.787) > 0.005 {
		t.Errorf("LUT utilization = %.3f, want 0.787", u.LUTs)
	}
	if math.Abs(u.FFs-0.381) > 0.005 {
		t.Errorf("FF utilization = %.3f, want 0.381", u.FFs)
	}
	if u.BRAM < 0.51 || u.BRAM > 0.59 {
		t.Errorf("BRAM utilization = %.3f, want 0.515–0.582", u.BRAM)
	}
	if math.Abs(u.DSP-0.305) > 0.005 {
		t.Errorf("DSP utilization = %.3f, want 0.305", u.DSP)
	}
}

func TestTableIIIAudioUtilization(t *testing.T) {
	// Table III totals: LUT 80.2%, FF 46.3%, BRAM 77.1%, DSP 12.2%.
	u, err := XCVU9P().Utilization(AudioEngines())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.LUTs-0.802) > 0.005 {
		t.Errorf("LUT = %.3f, want 0.802", u.LUTs)
	}
	if math.Abs(u.FFs-0.463) > 0.005 {
		t.Errorf("FF = %.3f, want 0.463", u.FFs)
	}
	if math.Abs(u.BRAM-0.771) > 0.01 {
		t.Errorf("BRAM = %.3f, want 0.771", u.BRAM)
	}
	if math.Abs(u.DSP-0.122) > 0.005 {
		t.Errorf("DSP = %.3f, want 0.122", u.DSP)
	}
}

func TestJpegDecoderDominatesImageLUTs(t *testing.T) {
	// Section VI-B: "the JPEG decoder takes most of the resources due to
	// its high complexity."
	engines := ImageEngines()
	var jpegLUTs, totalLUTs int
	for _, e := range engines {
		totalLUTs += e.LUTs
		if e.Name == "Jpeg decoder" {
			jpegLUTs = e.LUTs
		}
	}
	if jpegLUTs*2 < totalLUTs {
		t.Errorf("JPEG decoder has %d of %d LUTs, should dominate", jpegLUTs, totalLUTs)
	}
}

func TestUtilizationOverCapacityFails(t *testing.T) {
	tiny := DeviceSpec{Name: "tiny", LUTs: 1000, FFs: 1000, BRAM: 10, DSP: 10}
	if _, err := tiny.Utilization(ImageEngines()); err == nil {
		t.Error("over-capacity configuration accepted")
	}
}

func TestEnginesForSelectsByType(t *testing.T) {
	if EnginesFor(workload.Image)[0].Name != "Jpeg decoder" {
		t.Error("image engines wrong")
	}
	if EnginesFor(workload.Audio)[0].Name != "Spectrogram" {
		t.Error("audio engines wrong")
	}
}

func TestPrepRates(t *testing.T) {
	if PrepRate(workload.Image) != ImagePrepRate || PrepRate(workload.Audio) != AudioPrepRate {
		t.Error("PrepRate selector wrong")
	}
	if AudioPrepRate >= ImagePrepRate {
		t.Error("audio prep should be slower per FPGA than image prep")
	}
}

// TestEmulatorBitIdenticalWithCPUPath is the offload-correctness
// property: the FPGA emulator must produce bit-identical prepared
// samples to the CPU preparer for the same seed.
func TestEmulatorBitIdenticalWithCPUPath(t *testing.T) {
	imgStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(imgStore, 4, 10, 3); err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	cpu := dataprep.ImagePreparer{Config: cfg}
	dev := NewImageEmulator(cfg)
	for _, key := range imgStore.Keys() {
		obj, _ := imgStore.Get(key)
		seed := dataprep.SampleSeed(1, key, 0)
		a := cpu.Prepare(obj, seed)
		b := dev.Prepare(obj, seed)
		if a.Err != nil || b.Err != nil {
			t.Fatal(a.Err, b.Err)
		}
		for i := range a.Image.Data {
			if a.Image.Data[i] != b.Image.Data[i] {
				t.Fatalf("%s: CPU and FPGA outputs diverge at %d", key, i)
			}
		}
	}

	audStore := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildAudioDataset(audStore, 2, 10, 3); err != nil {
		t.Fatal(err)
	}
	acfg := dataprep.DefaultAudioConfig()
	cpuA := dataprep.AudioPreparer{Config: acfg}
	devA := NewAudioEmulator(acfg)
	for _, key := range audStore.Keys() {
		obj, _ := audStore.Get(key)
		seed := dataprep.SampleSeed(1, key, 0)
		a := cpuA.Prepare(obj, seed)
		b := devA.Prepare(obj, seed)
		if a.Err != nil || b.Err != nil {
			t.Fatal(a.Err, b.Err)
		}
		for i := range a.Audio.Data {
			if a.Audio.Data[i] != b.Audio.Data[i] {
				t.Fatalf("%s: CPU and FPGA audio outputs diverge at %d", key, i)
			}
		}
	}
}

func TestEmulatorReprogram(t *testing.T) {
	img := dataprep.DefaultImageConfig()
	aud := dataprep.DefaultAudioConfig()
	e := NewImageEmulator(img)
	if err := e.Reprogram(nil, &aud); err != nil {
		t.Fatal(err)
	}
	if e.Audio == nil || e.Image != nil {
		t.Error("reprogram did not swap pipelines")
	}
	if err := e.Reprogram(nil, nil); err == nil {
		t.Error("empty reprogram accepted")
	}
	if err := e.Reprogram(&img, &aud); err == nil {
		t.Error("double reprogram accepted")
	}
	bad := &Emulator{}
	if out := bad.Prepare(storage.Object{Key: "x"}, 1); out.Err == nil {
		t.Error("unprogrammed emulator prepared a sample")
	}
}

func newPoolNet(t *testing.T, ports int) *eth.Network {
	t.Helper()
	n, err := eth.NewNetwork(eth.Link100G, eth.SwitchSpec{Ports: ports})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSizePoolInceptionNeedsNoPool(t *testing.T) {
	// Section VI-D: "Inception-v4 reaches the target throughput without
	// the prep-pool". Per box: 8 accels × 1,669 samples/s, 2 FPGAs.
	w, _ := workload.ByName("Inception-v4")
	alloc, err := SizePool(PoolRequest{
		RequiredRate: units.SamplesPerSec(8 * float64(w.AccelRate)),
		InBoxFPGAs:   2, Type: workload.Image,
		OffloadBytesPerSample: w.Prep.StoredBytes + w.Prep.TensorBytes,
	}, newPoolNet(t, 16), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Satisfied || alloc.PoolFPGAs != 0 {
		t.Errorf("Inception allocation = %+v, want satisfied with no pool", alloc)
	}
}

func TestSizePoolTFSRNeeds54PercentExtra(t *testing.T) {
	// Section VI-D: "the prep-pool provides the additional performance
	// improvement with 54% more FPGA resources".
	w, _ := workload.ByName("TF-SR")
	alloc, err := SizePool(PoolRequest{
		RequiredRate: units.SamplesPerSec(8 * float64(w.AccelRate)),
		InBoxFPGAs:   2, Type: workload.Audio,
		OffloadBytesPerSample: w.Prep.StoredBytes + w.Prep.TensorBytes,
	}, newPoolNet(t, 16), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Satisfied {
		t.Fatalf("TF-SR not satisfied: %+v", alloc)
	}
	if math.Abs(alloc.ExtraResourceFraction-0.54) > 0.05 {
		t.Errorf("extra FPGA fraction = %.2f, want ≈0.54", alloc.ExtraResourceFraction)
	}
	if alloc.PoolFPGAs != 2 {
		t.Errorf("whole-device pool allocation = %d, want 2 (ceil of 2×0.54)", alloc.PoolFPGAs)
	}
}

func TestSizePoolWithoutNetworkFails(t *testing.T) {
	w, _ := workload.ByName("TF-SR")
	_, err := SizePool(PoolRequest{
		RequiredRate: units.SamplesPerSec(8 * float64(w.AccelRate)),
		InBoxFPGAs:   2, Type: workload.Audio,
	}, nil, 0)
	if err == nil {
		t.Error("deficit without pool network accepted")
	}
	// A self-sufficient box needs no network at all.
	alloc, err := SizePool(PoolRequest{RequiredRate: 100, InBoxFPGAs: 1, Type: workload.Image}, nil, 0)
	if err != nil || !alloc.Satisfied {
		t.Errorf("self-sufficient box failed: %v %+v", err, alloc)
	}
}

func TestSizePoolCappedByAvailability(t *testing.T) {
	alloc, err := SizePool(PoolRequest{
		RequiredRate: 100_000, InBoxFPGAs: 1, Type: workload.Audio,
	}, newPoolNet(t, 16), 2)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Satisfied {
		t.Error("starved pool reported satisfied")
	}
	if alloc.PoolFPGAs != 2 {
		t.Errorf("pool allocation = %d, want all 2 available", alloc.PoolFPGAs)
	}
}

func TestSizePoolEthernetCeiling(t *testing.T) {
	// Huge per-sample offload volume throttles pooled throughput to the
	// port bandwidth.
	alloc, err := SizePool(PoolRequest{
		RequiredRate: 20_000, InBoxFPGAs: 1, Type: workload.Audio,
		OffloadBytesPerSample: 10 * units.MB,
	}, newPoolNet(t, 16), 64)
	if err != nil {
		t.Fatal(err)
	}
	maxByEth := float64(eth.Link100G.Bandwidth) / float64(10*units.MB)
	if float64(alloc.PoolRate) > maxByEth*1.001 {
		t.Errorf("pool rate %v exceeds Ethernet ceiling %v", alloc.PoolRate, maxByEth)
	}
	if alloc.Satisfied {
		t.Error("Ethernet-throttled allocation reported satisfied")
	}
}

func TestSizePoolRejectsNegatives(t *testing.T) {
	if _, err := SizePool(PoolRequest{InBoxFPGAs: -1}, nil, 0); err == nil {
		t.Error("negative in-box count accepted")
	}
	if _, err := SizePool(PoolRequest{RequiredRate: -5, InBoxFPGAs: 1}, nil, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := SizePool(PoolRequest{InBoxFPGAs: 1}, nil, -1); err == nil {
		t.Error("negative availability accepted")
	}
}
