package fpga

import (
	"context"
	"strings"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
)

// leaseFixture builds n standalone handlers over one small image
// dataset, without binding them to a cluster.
func leaseFixture(t *testing.T, n int, opts ...Option) ([]*P2PHandler, *storage.Store, dataprep.ImageConfig) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	handlers := make([]*P2PHandler, n)
	for i := range handlers {
		h, err := NewP2PHandler(ns, NewImageEmulator(cfg), 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	return handlers, store, cfg
}

// TestClusterOptionsAPI: the functional-options constructor must wire
// health, fallback, metrics, name scoping, and pool-wide faults in one
// call, equivalent to the deprecated chained setters.
func TestClusterOptionsAPI(t *testing.T) {
	handlers, store, cfg := leaseFixture(t, 2)
	reg := metrics.NewRegistry()
	fb := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 0)
	cluster, err := NewCluster(handlers,
		WithName("jobA"),
		WithHealth(HealthConfig{EjectAfter: 1}),
		WithFallback(fb, store),
		WithMetrics(reg),
		WithFaults(faults.NewDeviceDeath(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(store.Keys()) {
		t.Fatalf("batch delivered %d samples, want %d", len(out), len(store.Keys()))
	}
	snap := reg.Snapshot()
	// WithFaults killed both devices, WithHealth ejected them, WithFallback
	// served the batch — all under the WithName-scoped namespace.
	if got := snap.Counters["fpga.pool.jobA.devices_ejected"]; got != 2 {
		t.Errorf("fpga.pool.jobA.devices_ejected = %d, want 2", got)
	}
	if got := snap.Counters["fpga.pool.jobA.degraded_samples"]; got != int64(len(store.Keys())) {
		t.Errorf("fpga.pool.jobA.degraded_samples = %d, want %d", got, len(store.Keys()))
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, "fpga.pool.") && !strings.HasPrefix(name, "fpga.pool.jobA.") {
			t.Errorf("unscoped pool metric %q leaked from a named cluster", name)
		}
	}
	if _, ok := snap.Counters["pipeline.fpga-pool-jobA.pool-dispatch.items"]; !ok {
		t.Error("named cluster's dispatch pipeline not scoped as fpga-pool-jobA")
	}
}

// TestHandlerOptionsAPI: NewP2PHandler must accept the shared options,
// and a cluster-only option must fail handler construction loudly.
func TestHandlerOptionsAPI(t *testing.T) {
	reg := metrics.NewRegistry()
	handlers, store, _ := leaseFixture(t, 1, WithMetrics(reg), WithFaults(faults.NewDeviceDeath(2)))
	h := handlers[0]
	keys := store.Keys()
	for i, key := range keys[:3] {
		p := h.PrepareByKey(key, dataprep.SampleSeed(3, key, 0))
		if i < 2 && p.Err != nil {
			t.Fatalf("sample %d within the device budget failed: %v", i, p.Err)
		}
		if i == 2 && p.Err == nil {
			t.Fatal("sample past the WithFaults device budget succeeded")
		}
	}
	if got := reg.Counter("fpga.p2p.samples_prepared").Value(); got != 2 {
		t.Errorf("samples_prepared = %d, want 2 before the device died", got)
	}

	store2 := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store2, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewP2PHandler(ns, NewImageEmulator(dataprep.DefaultImageConfig()), 4,
		WithHealth(DefaultHealthConfig())); err == nil {
		t.Error("cluster-only option accepted by NewP2PHandler")
	}
	if _, err := NewCluster(handlers, WithFallback(nil, nil)); err == nil {
		t.Error("WithFallback with nil executor accepted")
	}
}

// TestClusterLeaseRelease: the membership seam the prep-pool runtime
// migrates devices through — leases grow the pool, releases shrink it,
// and batches stay bit-identical across membership changes.
func TestClusterLeaseRelease(t *testing.T) {
	const datasetSeed, epoch = 3, 1
	handlers, store, cfg := leaseFixture(t, 3)
	cluster, err := NewCluster(handlers[:1])
	if err != nil {
		t.Fatal(err)
	}
	hostExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, datasetSeed)
	want, err := hostExec.PrepareBatch(store, store.Keys(), epoch)
	if err != nil {
		t.Fatal(err)
	}

	if err := cluster.Lease(handlers[1]); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Lease(handlers[2]); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Lease(handlers[1]); err == nil {
		t.Error("double lease of one handler accepted")
	}
	if err := cluster.Lease(nil); err == nil {
		t.Error("nil lease accepted")
	}
	if got := cluster.Devices(); got != 3 {
		t.Fatalf("devices = %d after leases, want 3", got)
	}
	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, want)

	if err := cluster.Release(handlers[0]); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Release(handlers[0]); err == nil {
		t.Error("double release accepted")
	}
	if got := cluster.ActiveDevices(); got != 2 {
		t.Fatalf("active devices = %d after release, want 2", got)
	}
	out, err = cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, want)

	// The released handler is free to serve another cluster.
	other, err := NewCluster([]*P2PHandler{handlers[0]})
	if err != nil {
		t.Fatal(err)
	}
	out, err = other.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, want)
}

// TestClusterZeroDevicesWithFallback: a cluster may start empty when a
// host fallback is armed — the prep-pool's shape for a job holding no
// leases — and every sample degrades to the (bit-identical) host path.
func TestClusterZeroDevicesWithFallback(t *testing.T) {
	const datasetSeed, epoch = 9, 0
	_, store, cfg := leaseFixture(t, 0)
	reg := metrics.NewRegistry()
	fb := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 0)
	cluster, err := NewCluster(nil, WithFallback(fb, store), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	out, err := cluster.PrepareBatch(context.Background(), store.Keys(), datasetSeed, epoch)
	if err != nil {
		t.Fatal(err)
	}
	hostExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, datasetSeed)
	want, err := hostExec.PrepareBatch(store, store.Keys(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, want)
	if got := reg.Counter("fpga.pool.degraded_samples").Value(); got != int64(len(store.Keys())) {
		t.Errorf("degraded_samples = %d, want %d", got, len(store.Keys()))
	}
}
