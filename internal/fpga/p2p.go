package fpga

import (
	"context"
	"fmt"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// P2PHandler is the functional model of Figure 17's P2P module: the
// FPGA fetches stored items from SSDs through its own NVMe command
// generator (internal/nvme, after the paper's DCS-engine) and runs the
// preparation engine on them — the SSD→FPGA half of the device-centric
// datapath, with no host software involved.
//
// Batch preparation runs on the staged-pipeline runtime: an nvme-read
// stage whose bounded queue mirrors the NVMe queue depth feeds the
// prep-engine stage, so storage reads overlap engine time exactly the
// way the hardware pipeline overlaps them.
type P2PHandler struct {
	client *nvme.Client
	engine *Emulator
	depth  int
	inj    faults.Injector
	stats  pipeline.StatsSet

	reg      *metrics.Registry
	mSamples *metrics.Counter   // fpga.p2p.samples_prepared
	mLatency *metrics.Histogram // fpga.p2p.sample_ns
}

// NewP2PHandler binds an FPGA engine to an SSD namespace with a queue
// pair of the given depth, configured by functional options
// (WithMetrics, WithFaults).
func NewP2PHandler(ns *nvme.Namespace, engine *Emulator, queueDepth int, opts ...Option) (*P2PHandler, error) {
	if ns == nil || engine == nil {
		return nil, fmt.Errorf("fpga: p2p handler needs a namespace and an engine")
	}
	client, err := nvme.NewClient(ns, queueDepth)
	if err != nil {
		return nil, err
	}
	h := &P2PHandler{client: client, engine: engine, depth: queueDepth}
	for _, opt := range opts {
		if err := opt.applyHandler(h); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// WithMetrics attaches a registry: per-sample device latency and sample
// counts report under "fpga.p2p.*", and batch pipelines under
// "pipeline.fpga-p2p.*".
//
// Deprecated: pass fpga.WithMetrics(reg) to NewP2PHandler instead. Kept
// as a thin shim; returns h for chaining.
func (h *P2PHandler) WithMetrics(reg *metrics.Registry) *P2PHandler {
	h.reg = reg
	h.mSamples = reg.Counter("fpga.p2p.samples_prepared")
	h.mLatency = reg.Histogram("fpga.p2p.sample_ns")
	return h
}

// WithFaults attaches a fault injector consulted before every NVMe read
// this handler issues, under op name "fpga.p2p.read" — the knob chaos
// tests turn to make one pooled device flaky or dead (see
// faults.NewDeviceDeath). A nil injector (the default) keeps the
// fault-free fast path.
//
// Deprecated: pass fpga.WithFaults(inj) to NewP2PHandler instead. Kept
// as a thin shim; returns h for chaining.
func (h *P2PHandler) WithFaults(inj faults.Injector) *P2PHandler {
	h.inj = inj
	return h
}

// readObject is the handler's faultable NVMe read: the injector (if
// any) rules on (key, attempt) first, then the real read runs. attempt
// lets retrying dispatchers draw fresh fault decisions.
func (h *P2PHandler) readObject(ctx context.Context, key string, attempt int) (storage.Object, error) {
	if err := faults.Apply(ctx, h.inj, faults.Op{Name: "fpga.p2p.read", Key: key, Attempt: attempt}); err != nil {
		return storage.Object{}, fmt.Errorf("fpga: p2p read %q: %w", key, err)
	}
	return h.client.ReadObject(key)
}

// PrepareByKey fetches the keyed object over NVMe and prepares it with
// the FPGA engine — the full SSD→FPGA→(accelerator) per-sample path.
func (h *P2PHandler) PrepareByKey(key string, seed int64) dataprep.Prepared {
	return h.prepareSample(context.Background(), key, seed, 0)
}

// prepareSample is PrepareByKey with an explicit context and attempt
// index, the form pool dispatchers use so re-dispatched samples draw
// fresh fault decisions and honour batch cancellation.
func (h *P2PHandler) prepareSample(ctx context.Context, key string, seed int64, attempt int) dataprep.Prepared {
	start := time.Now()
	obj, err := h.readObject(ctx, key, attempt)
	if err != nil {
		return dataprep.Prepared{Key: key, Err: err}
	}
	p := h.engine.Prepare(obj, seed)
	h.mSamples.Inc()
	h.mLatency.ObserveDuration(time.Since(start))
	return p
}

// Stats returns the handler's cumulative per-stage pipeline counters
// across every batch it prepared.
func (h *P2PHandler) Stats() []pipeline.StageStats {
	return h.stats.Snapshot()
}

// PrepareBatch prepares the keyed objects in order, deriving per-sample
// seeds the same way the host executor does, so the device-centric path
// is drop-in bit-equal with the host path.
func (h *P2PHandler) PrepareBatch(keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	return h.PrepareBatchContext(context.Background(), keys, datasetSeed, epoch)
}

// PrepareBatchContext is PrepareBatch with cancellation: the first NVMe
// or engine error — or ctx being cancelled — stops both stages and
// drains the pipeline before returning.
func (h *P2PHandler) PrepareBatchContext(ctx context.Context, keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	read := pipeline.NewStage("nvme-read", 1, h.depth,
		func(ctx context.Context, i int) (storage.Object, error) {
			if err := ctx.Err(); err != nil {
				return storage.Object{}, err
			}
			obj, err := h.readObject(ctx, keys[i], 0)
			if err != nil {
				return storage.Object{}, fmt.Errorf("fpga: p2p sample %q: %w", keys[i], err)
			}
			return obj, nil
		})
	prep := pipeline.NewStage("prep-engine", 1, 1,
		func(_ context.Context, obj storage.Object) (dataprep.Prepared, error) {
			p := h.engine.Prepare(obj, dataprep.SampleSeed(datasetSeed, obj.Key, epoch))
			if p.Err != nil {
				return dataprep.Prepared{}, fmt.Errorf("fpga: p2p sample %q: %w", p.Key, p.Err)
			}
			return p, nil
		})
	pl, err := pipeline.New("fpga-p2p", read, prep)
	if err != nil {
		return nil, err
	}
	run := pl.WithMetrics(h.reg).Run(ctx, pipeline.IndexSource(len(keys)))
	out, err := pipeline.Drain[dataprep.Prepared](run)
	h.stats.Add(run.Stats())
	if err != nil {
		return nil, err
	}
	return out, nil
}
