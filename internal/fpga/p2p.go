package fpga

import (
	"fmt"

	"trainbox/internal/dataprep"
	"trainbox/internal/nvme"
)

// P2PHandler is the functional model of Figure 17's P2P module: the
// FPGA fetches stored items from SSDs through its own NVMe command
// generator (internal/nvme, after the paper's DCS-engine) and runs the
// preparation engine on them — the SSD→FPGA half of the device-centric
// datapath, with no host software involved.
type P2PHandler struct {
	client *nvme.Client
	engine *Emulator
}

// NewP2PHandler binds an FPGA engine to an SSD namespace with a queue
// pair of the given depth.
func NewP2PHandler(ns *nvme.Namespace, engine *Emulator, queueDepth int) (*P2PHandler, error) {
	if ns == nil || engine == nil {
		return nil, fmt.Errorf("fpga: p2p handler needs a namespace and an engine")
	}
	client, err := nvme.NewClient(ns, queueDepth)
	if err != nil {
		return nil, err
	}
	return &P2PHandler{client: client, engine: engine}, nil
}

// PrepareByKey fetches the keyed object over NVMe and prepares it with
// the FPGA engine — the full SSD→FPGA→(accelerator) per-sample path.
func (h *P2PHandler) PrepareByKey(key string, seed int64) dataprep.Prepared {
	obj, err := h.client.ReadObject(key)
	if err != nil {
		return dataprep.Prepared{Key: key, Err: err}
	}
	return h.engine.Prepare(obj, seed)
}

// PrepareBatch prepares the keyed objects in order, deriving per-sample
// seeds the same way the host executor does, so the device-centric path
// is drop-in bit-equal with the host path.
func (h *P2PHandler) PrepareBatch(keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	out := make([]dataprep.Prepared, len(keys))
	for i, key := range keys {
		out[i] = h.PrepareByKey(key, dataprep.SampleSeed(datasetSeed, key, epoch))
		if out[i].Err != nil {
			return nil, fmt.Errorf("fpga: p2p sample %q: %w", key, out[i].Err)
		}
	}
	return out, nil
}
