package fpga

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// Cluster is the runtime face of the prep pool (Section V-D): where
// SizePool and SchedulePool decide *how many* pooled accelerators a job
// gets, a Cluster actually dispatches prep jobs across the granted
// devices as one pipeline stage whose parallelism equals the device
// count. Each sample's augmentation seed depends only on (dataset seed,
// key, epoch), so batches are bit-identical to the host path no matter
// which device serves which sample — the property that makes pool
// offload transparent to training.
//
// That same property is what makes the pool self-healing: with health
// tracking enabled (WithHealth) a device that keeps failing is ejected
// — the pool shrinks instead of the batch dying — and its samples are
// re-dispatched to surviving devices or, when every device is gone, to
// the host executor (WithFallback). Ejected devices are periodically
// re-admitted on probation: one clean job restores them, one more
// failure re-ejects them. The degradation ladder is therefore
// retry-on-another-device → shrink the pool → host fallback, and every
// rung preserves bit-identical output.
type Cluster struct {
	handlers []*P2PHandler
	index    map[*P2PHandler]int
	avail    chan *P2PHandler
	stats    pipeline.StatsSet

	health  HealthConfig
	fbExec  *dataprep.Executor
	fbStore *storage.Store

	mu      sync.Mutex
	states  []deviceState
	alive   int
	batches int64
	allDead chan struct{} // closed while every device is ejected

	reg         *metrics.Registry
	mJobs       *metrics.Counter // fpga.pool.jobs_dispatched
	mEjected    *metrics.Counter // fpga.pool.devices_ejected
	mReadmitted *metrics.Counter // fpga.pool.devices_readmitted
	mRetries    *metrics.Counter // fpga.pool.sample_retries
	mDegraded   *metrics.Counter // fpga.pool.degraded_samples
	gActive     *metrics.Gauge   // fpga.pool.devices_active
	busy        []atomic.Int64   // cumulative per-device busy ns
	wall        atomic.Int64     // cumulative batch wall ns
}

// HealthConfig tunes the pool's per-device health tracking.
type HealthConfig struct {
	// EjectAfter is the consecutive-failure count that ejects a device
	// from the pool; values ≤ 0 select the default (3).
	EjectAfter int
	// ProbationBatches is how many batches an ejected device sits out
	// before a probation re-admission: it re-enters the pool one failure
	// away from re-ejection, so a single clean job restores it and a
	// single failure removes it again. 0 means ejection is permanent.
	ProbationBatches int
}

// DefaultHealthConfig returns the standard self-healing posture: eject
// after 3 consecutive failures, probe again 4 batches later.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{EjectAfter: 3, ProbationBatches: 4}
}

// deviceState is one device's health ledger, guarded by Cluster.mu.
type deviceState struct {
	consecFails int
	ejected     bool
	ejectedAt   int64 // batch counter value at ejection
	probation   bool  // readmitted on trial: one failure re-ejects
}

// NewCluster builds a cluster over the pooled device handlers; devices
// are checked out per sample, so concurrent batches share the pool.
// Health tracking is off by default (any device error fails the batch,
// the pre-resilience contract); enable it with WithHealth.
func NewCluster(handlers ...*P2PHandler) (*Cluster, error) {
	if len(handlers) == 0 {
		return nil, fmt.Errorf("fpga: cluster needs at least one device handler")
	}
	avail := make(chan *P2PHandler, len(handlers))
	index := make(map[*P2PHandler]int, len(handlers))
	for i, h := range handlers {
		if h == nil {
			return nil, fmt.Errorf("fpga: cluster handler %d is nil", i)
		}
		if _, dup := index[h]; dup {
			return nil, fmt.Errorf("fpga: cluster handler %d registered twice", i)
		}
		index[h] = i
		avail <- h
	}
	return &Cluster{
		handlers: handlers,
		index:    index,
		avail:    avail,
		states:   make([]deviceState, len(handlers)),
		alive:    len(handlers),
		allDead:  make(chan struct{}),
		busy:     make([]atomic.Int64, len(handlers)),
	}, nil
}

// WithHealth enables per-device health tracking with the given config
// (zero fields select defaults): consecutive failures eject a device,
// ejected devices are re-admitted on probation, and failed samples are
// re-dispatched to other devices instead of failing the batch. Attach
// before use; returns c for chaining.
func (c *Cluster) WithHealth(cfg HealthConfig) *Cluster {
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultHealthConfig().EjectAfter
	}
	if cfg.ProbationBatches < 0 {
		cfg.ProbationBatches = 0
	}
	c.health = cfg
	return c
}

// WithFallback attaches the host data-preparation path: when every
// pooled device is ejected (or a sample has exhausted its pool
// attempts), the sample is prepared by exec over store instead — the
// bottom rung of the degradation ladder. Because per-sample seeds
// depend only on (dataset seed, key, epoch), degraded batches remain
// bit-identical. Attach before use; returns c for chaining.
func (c *Cluster) WithFallback(exec *dataprep.Executor, store *storage.Store) *Cluster {
	c.fbExec = exec
	c.fbStore = store
	return c
}

// WithMetrics attaches a registry: dispatched jobs count under
// "fpga.pool.jobs_dispatched", per-device utilization (cumulative busy
// time over cumulative batch wall time — the pool-balance observable of
// Section V-D) under "fpga.pool.device.<i>.utilization", resilience
// counters under "fpga.pool.{devices_ejected,devices_readmitted,
// sample_retries,degraded_samples}" with the live pool size at
// "fpga.pool.devices_active", and the dispatch pipeline under
// "pipeline.fpga-pool.*". Attach before use; returns c for chaining.
func (c *Cluster) WithMetrics(reg *metrics.Registry) *Cluster {
	c.reg = reg
	c.mJobs = reg.Counter("fpga.pool.jobs_dispatched")
	c.mEjected = reg.Counter("fpga.pool.devices_ejected")
	c.mReadmitted = reg.Counter("fpga.pool.devices_readmitted")
	c.mRetries = reg.Counter("fpga.pool.sample_retries")
	c.mDegraded = reg.Counter("fpga.pool.degraded_samples")
	c.gActive = reg.Gauge("fpga.pool.devices_active")
	c.gActive.SetInt(int64(c.ActiveDevices()))
	return c
}

// Devices returns the number of pooled devices, ejected or not.
func (c *Cluster) Devices() int { return len(c.handlers) }

// ActiveDevices returns the number of devices currently in the pool
// (not ejected).
func (c *Cluster) ActiveDevices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive
}

// Stats returns the cluster's cumulative dispatch-stage counters.
func (c *Cluster) Stats() []pipeline.StageStats {
	return c.stats.Snapshot()
}

func (c *Cluster) healthEnabled() bool { return c.health.EjectAfter > 0 }

// PrepareBatch prepares the keyed objects in order across the pooled
// devices: a dispatch stage with parallelism = device count checks a
// device out of the pool per sample, runs its SSD→FPGA path, and
// returns it. Ordering and bit-identity with the host executor are
// preserved. Without health tracking the first device error cancels the
// whole batch; with it (WithHealth), device-attributable failures
// re-dispatch the sample and only data errors — or an empty pool with
// no fallback — fail the batch.
func (c *Cluster) PrepareBatch(ctx context.Context, keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	c.beginBatch()
	dispatch := pipeline.NewStage("pool-dispatch", len(c.handlers), len(c.handlers),
		func(ctx context.Context, i int) (dataprep.Prepared, error) {
			return c.prepareSample(ctx, keys[i], datasetSeed, epoch)
		})
	pl, err := pipeline.New("fpga-pool", dispatch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run := pl.WithMetrics(c.reg).Run(ctx, pipeline.IndexSource(len(keys)))
	out, err := pipeline.Drain[dataprep.Prepared](run)
	c.stats.Add(run.Stats())
	c.wall.Add(time.Since(start).Nanoseconds())
	c.reportUtilization()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// prepareSample serves one sample through the degradation ladder:
// pooled devices first (re-dispatching on device faults while health
// tracking allows), then the host fallback once the pool is empty or
// the sample's pool attempts are spent.
func (c *Cluster) prepareSample(ctx context.Context, key string, datasetSeed int64, epoch int) (dataprep.Prepared, error) {
	seed := dataprep.SampleSeed(datasetSeed, key, epoch)
	maxTries := 1
	if c.healthEnabled() {
		maxTries = len(c.handlers)
	}
	var lastErr error
	for attempt := 0; attempt < maxTries; attempt++ {
		h, ok, err := c.acquire(ctx)
		if err != nil {
			return dataprep.Prepared{}, err
		}
		if !ok {
			break // pool empty: fall through to the host path
		}
		start := time.Now()
		p := h.prepareSample(ctx, key, seed, attempt)
		c.busy[c.index[h]].Add(time.Since(start).Nanoseconds())
		c.mJobs.Inc()
		if p.Err == nil {
			c.release(h, true)
			return p, nil
		}
		deviceFault := faults.IsDeviceFault(p.Err)
		c.release(h, !deviceFault)
		if !c.healthEnabled() || !deviceFault {
			// Data errors fail identically everywhere; without health
			// tracking every error keeps the legacy fail-fast contract.
			return dataprep.Prepared{}, fmt.Errorf("fpga: pool sample %q: %w", key, p.Err)
		}
		lastErr = p.Err
		c.mRetries.Inc()
	}
	if c.fbExec != nil && c.fbStore != nil {
		p, err := c.fbExec.PrepareOne(ctx, c.fbStore, key, datasetSeed, epoch)
		if err != nil {
			return dataprep.Prepared{}, fmt.Errorf("fpga: degraded sample %q: %w", key, err)
		}
		c.mDegraded.Inc()
		return p, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no pooled device available")
	}
	return dataprep.Prepared{}, fmt.Errorf("fpga: pool sample %q: %w", key, lastErr)
}

// acquire checks a device out of the pool. ok=false with a nil error
// means the pool has no live device (degraded mode); a non-nil error is
// context cancellation.
func (c *Cluster) acquire(ctx context.Context) (h *P2PHandler, ok bool, err error) {
	select {
	case h = <-c.avail:
		return h, true, nil
	default:
	}
	c.mu.Lock()
	dead := c.allDead
	empty := c.alive == 0
	c.mu.Unlock()
	if empty {
		return nil, false, nil
	}
	select {
	case h = <-c.avail:
		return h, true, nil
	case <-dead:
		return nil, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// release returns a device to the pool, updating its health ledger:
// success (or a failure not attributable to the device) clears its
// strikes; a device fault adds one, and enough consecutive strikes —
// or any strike while on probation — eject it instead of returning it.
func (c *Cluster) release(h *P2PHandler, clean bool) {
	if !c.healthEnabled() {
		c.avail <- h
		return
	}
	c.mu.Lock()
	st := &c.states[c.index[h]]
	if clean {
		st.consecFails = 0
		st.probation = false
		c.mu.Unlock()
		c.avail <- h
		return
	}
	st.consecFails++
	if st.probation || st.consecFails >= c.health.EjectAfter {
		st.ejected = true
		st.probation = false
		st.consecFails = 0
		st.ejectedAt = c.batches
		c.alive--
		c.mEjected.Inc()
		c.gActive.SetInt(int64(c.alive))
		if c.alive == 0 {
			close(c.allDead) // wake blocked acquirers into degraded mode
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.avail <- h
}

// beginBatch advances the batch counter and re-admits ejected devices
// whose probation period has elapsed. Re-admission happens between
// batches, so within one batch the live-device set only shrinks.
func (c *Cluster) beginBatch() {
	if !c.healthEnabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches++
	if c.health.ProbationBatches <= 0 {
		return
	}
	for i := range c.states {
		st := &c.states[i]
		if !st.ejected || c.batches-st.ejectedAt < int64(c.health.ProbationBatches) {
			continue
		}
		st.ejected = false
		st.probation = true
		st.consecFails = 0
		if c.alive == 0 {
			c.allDead = make(chan struct{}) // pool is live again
		}
		c.alive++
		c.mReadmitted.Inc()
		c.gActive.SetInt(int64(c.alive))
		// avail has capacity for every handler and ejected devices are
		// never in it, so this send cannot block.
		c.avail <- c.handlers[i]
	}
}

// reportUtilization publishes each device's share of cumulative batch
// wall time spent busy — the direct observable of whether the pool's
// devices are evenly loaded.
func (c *Cluster) reportUtilization() {
	if c.reg == nil {
		return
	}
	wall := c.wall.Load()
	if wall <= 0 {
		return
	}
	for i := range c.busy {
		util := float64(c.busy[i].Load()) / float64(wall)
		c.reg.Gauge(fmt.Sprintf("fpga.pool.device.%d.utilization", i)).Set(util)
	}
}
