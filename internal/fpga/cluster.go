package fpga

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
)

// Cluster is the runtime face of the prep pool (Section V-D): where
// SizePool and SchedulePool decide *how many* pooled accelerators a job
// gets, a Cluster actually dispatches prep jobs across the granted
// devices as one pipeline stage whose parallelism equals the device
// count. Each sample's augmentation seed depends only on (dataset seed,
// key, epoch), so batches are bit-identical to the host path no matter
// which device serves which sample — the property that makes pool
// offload transparent to training.
type Cluster struct {
	handlers []*P2PHandler
	index    map[*P2PHandler]int
	avail    chan *P2PHandler
	stats    pipeline.StatsSet

	reg   *metrics.Registry
	mJobs *metrics.Counter // fpga.pool.jobs_dispatched
	busy  []atomic.Int64   // cumulative per-device busy ns
	wall  atomic.Int64     // cumulative batch wall ns
}

// NewCluster builds a cluster over the pooled device handlers; devices
// are checked out per sample, so concurrent batches share the pool.
func NewCluster(handlers ...*P2PHandler) (*Cluster, error) {
	if len(handlers) == 0 {
		return nil, fmt.Errorf("fpga: cluster needs at least one device handler")
	}
	avail := make(chan *P2PHandler, len(handlers))
	index := make(map[*P2PHandler]int, len(handlers))
	for i, h := range handlers {
		if h == nil {
			return nil, fmt.Errorf("fpga: cluster handler %d is nil", i)
		}
		if _, dup := index[h]; dup {
			return nil, fmt.Errorf("fpga: cluster handler %d registered twice", i)
		}
		index[h] = i
		avail <- h
	}
	return &Cluster{handlers: handlers, index: index, avail: avail, busy: make([]atomic.Int64, len(handlers))}, nil
}

// WithMetrics attaches a registry: dispatched jobs count under
// "fpga.pool.jobs_dispatched", per-device utilization (cumulative busy
// time over cumulative batch wall time — the pool-balance observable of
// Section V-D) under "fpga.pool.device.<i>.utilization", and the
// dispatch pipeline under "pipeline.fpga-pool.*". Attach before use;
// returns c for chaining.
func (c *Cluster) WithMetrics(reg *metrics.Registry) *Cluster {
	c.reg = reg
	c.mJobs = reg.Counter("fpga.pool.jobs_dispatched")
	return c
}

// Devices returns the number of pooled devices.
func (c *Cluster) Devices() int { return len(c.handlers) }

// Stats returns the cluster's cumulative dispatch-stage counters.
func (c *Cluster) Stats() []pipeline.StageStats {
	return c.stats.Snapshot()
}

// PrepareBatch prepares the keyed objects in order across the pooled
// devices: a dispatch stage with parallelism = device count checks a
// device out of the pool per sample, runs its SSD→FPGA path, and
// returns it. Ordering and bit-identity with the host executor are
// preserved; the first device error cancels the whole batch.
func (c *Cluster) PrepareBatch(ctx context.Context, keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	dispatch := pipeline.NewStage("pool-dispatch", len(c.handlers), len(c.handlers),
		func(ctx context.Context, i int) (dataprep.Prepared, error) {
			var h *P2PHandler
			select {
			case h = <-c.avail:
			case <-ctx.Done():
				return dataprep.Prepared{}, ctx.Err()
			}
			defer func() { c.avail <- h }()
			start := time.Now()
			p := h.PrepareByKey(keys[i], dataprep.SampleSeed(datasetSeed, keys[i], epoch))
			c.busy[c.index[h]].Add(time.Since(start).Nanoseconds())
			c.mJobs.Inc()
			if p.Err != nil {
				return dataprep.Prepared{}, fmt.Errorf("fpga: pool sample %q: %w", keys[i], p.Err)
			}
			return p, nil
		})
	pl, err := pipeline.New("fpga-pool", dispatch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run := pl.WithMetrics(c.reg).Run(ctx, pipeline.IndexSource(len(keys)))
	out, err := pipeline.Drain[dataprep.Prepared](run)
	c.stats.Add(run.Stats())
	c.wall.Add(time.Since(start).Nanoseconds())
	c.reportUtilization()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// reportUtilization publishes each device's share of cumulative batch
// wall time spent busy — the direct observable of whether the pool's
// devices are evenly loaded.
func (c *Cluster) reportUtilization() {
	if c.reg == nil {
		return
	}
	wall := c.wall.Load()
	if wall <= 0 {
		return
	}
	for i := range c.busy {
		util := float64(c.busy[i].Load()) / float64(wall)
		c.reg.Gauge(fmt.Sprintf("fpga.pool.device.%d.utilization", i)).Set(util)
	}
}
