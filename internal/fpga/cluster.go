package fpga

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// Cluster is the runtime face of the prep pool (Section V-D): where
// SizePool and SchedulePool decide *how many* pooled accelerators a job
// gets, a Cluster actually dispatches prep jobs across the granted
// devices as one pipeline stage whose parallelism equals the device
// count. Each sample's augmentation seed depends only on (dataset seed,
// key, epoch), so batches are bit-identical to the host path no matter
// which device serves which sample — the property that makes pool
// offload transparent to training.
//
// That same property is what makes the pool self-healing: with health
// tracking enabled (WithHealth) a device that keeps failing is ejected
// — the pool shrinks instead of the batch dying — and its samples are
// re-dispatched to surviving devices or, when every device is gone, to
// the host executor (WithFallback). Ejected devices are periodically
// re-admitted on probation: one clean job restores them, one more
// failure re-ejects them. The degradation ladder is therefore
// retry-on-another-device → shrink the pool → host fallback, and every
// rung preserves bit-identical output.
//
// Membership is dynamic: Lease adds a device and Release removes one,
// the seam the multi-job prep-pool runtime (internal/preppool) uses to
// migrate pooled FPGAs between jobs as their deficits change. Both are
// batch-boundary operations — they must not run while a PrepareBatch is
// in flight.
type Cluster struct {
	name  string
	stats pipeline.StatsSet

	health  HealthConfig
	fbExec  *dataprep.Executor
	fbStore *storage.Store

	mu      sync.Mutex
	devices []*device
	index   map[*P2PHandler]*device
	avail   chan *device
	alive   int
	nextID  int
	batches int64
	allDead chan struct{} // closed while every device is ejected

	reg         *metrics.Registry
	mJobs       *metrics.Counter // fpga.pool[.<name>].jobs_dispatched
	mEjected    *metrics.Counter // fpga.pool[.<name>].devices_ejected
	mReadmitted *metrics.Counter // fpga.pool[.<name>].devices_readmitted
	mRetries    *metrics.Counter // fpga.pool[.<name>].sample_retries
	mDegraded   *metrics.Counter // fpga.pool[.<name>].degraded_samples
	gActive     *metrics.Gauge   // fpga.pool[.<name>].devices_active
	wall        atomic.Int64     // cumulative batch wall ns
}

// HealthConfig tunes the pool's per-device health tracking.
type HealthConfig struct {
	// EjectAfter is the consecutive-failure count that ejects a device
	// from the pool; values ≤ 0 select the default (3).
	EjectAfter int
	// ProbationBatches is how many batches an ejected device sits out
	// before a probation re-admission: it re-enters the pool one failure
	// away from re-ejection, so a single clean job restores it and a
	// single failure removes it again. 0 means ejection is permanent.
	ProbationBatches int
}

// DefaultHealthConfig returns the standard self-healing posture: eject
// after 3 consecutive failures, probe again 4 batches later.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{EjectAfter: 3, ProbationBatches: 4}
}

// device is one pooled handler's ledger, guarded by Cluster.mu except
// for the atomic busy counter.
type device struct {
	h           *P2PHandler
	id          int // stable per-cluster id for utilization metrics
	consecFails int
	ejected     bool
	ejectedAt   int64 // batch counter value at ejection
	probation   bool  // readmitted on trial: one failure re-ejects
	busy        atomic.Int64
}

// NewCluster builds a cluster over the pooled device handlers,
// configured by functional options (WithHealth, WithFallback,
// WithMetrics, WithName, WithFaults). Devices are checked out per
// sample, so concurrent batches share the pool. Health tracking is off
// by default (any device error fails the batch, the pre-resilience
// contract). A cluster needs at least one handler unless WithFallback
// arms a host path, in which case it may start empty and grow through
// Lease.
func NewCluster(handlers []*P2PHandler, opts ...Option) (*Cluster, error) {
	c := &Cluster{
		index:   map[*P2PHandler]*device{},
		allDead: make(chan struct{}),
	}
	for i, h := range handlers {
		if h == nil {
			return nil, fmt.Errorf("fpga: cluster handler %d is nil", i)
		}
		if _, dup := c.index[h]; dup {
			return nil, fmt.Errorf("fpga: cluster handler %d registered twice", i)
		}
		d := &device{h: h, id: c.nextID}
		c.nextID++
		c.devices = append(c.devices, d)
		c.index[h] = d
	}
	c.alive = len(c.devices)
	for _, opt := range opts {
		if err := opt.applyCluster(c); err != nil {
			return nil, err
		}
	}
	if len(c.devices) == 0 && c.fbExec == nil {
		return nil, fmt.Errorf("fpga: cluster needs at least one device handler (or a WithFallback host path)")
	}
	c.rebuildAvailLocked()
	c.resolveMetrics()
	return c, nil
}

// metricPrefix returns the cluster's metric namespace:
// "fpga.pool." unscoped, "fpga.pool.<name>." when named.
func (c *Cluster) metricPrefix() string {
	if c.name == "" {
		return "fpga.pool."
	}
	return "fpga.pool." + c.name + "."
}

// pipelineName returns the dispatch pipeline's name:
// "fpga-pool" unscoped, "fpga-pool-<name>" when named.
func (c *Cluster) pipelineName() string {
	if c.name == "" {
		return "fpga-pool"
	}
	return "fpga-pool-" + c.name
}

// resolveMetrics (re-)binds the cluster's metric handles against the
// attached registry (all handles are nil no-ops without one).
func (c *Cluster) resolveMetrics() {
	prefix := c.metricPrefix()
	c.mJobs = c.reg.Counter(prefix + "jobs_dispatched")
	c.mEjected = c.reg.Counter(prefix + "devices_ejected")
	c.mReadmitted = c.reg.Counter(prefix + "devices_readmitted")
	c.mRetries = c.reg.Counter(prefix + "sample_retries")
	c.mDegraded = c.reg.Counter(prefix + "degraded_samples")
	c.gActive = c.reg.Gauge(prefix + "devices_active")
	c.gActive.SetInt(int64(c.ActiveDevices()))
}

// setHealth normalizes and stores the health config.
func (c *Cluster) setHealth(cfg HealthConfig) {
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultHealthConfig().EjectAfter
	}
	if cfg.ProbationBatches < 0 {
		cfg.ProbationBatches = 0
	}
	c.health = cfg
}

// WithHealth enables per-device health tracking.
//
// Deprecated: pass fpga.WithHealth(cfg) to NewCluster instead. Kept as a
// thin shim; returns c for chaining.
func (c *Cluster) WithHealth(cfg HealthConfig) *Cluster {
	c.setHealth(cfg)
	return c
}

// WithFallback attaches the host data-preparation path used once the
// pool is empty or a sample's pool attempts are spent.
//
// Deprecated: pass fpga.WithFallback(exec, store) to NewCluster instead.
// Kept as a thin shim; returns c for chaining.
func (c *Cluster) WithFallback(exec *dataprep.Executor, store *storage.Store) *Cluster {
	c.fbExec = exec
	c.fbStore = store
	return c
}

// WithMetrics attaches a registry for the cluster's telemetry.
//
// Deprecated: pass fpga.WithMetrics(reg) to NewCluster instead. Kept as
// a thin shim; returns c for chaining.
func (c *Cluster) WithMetrics(reg *metrics.Registry) *Cluster {
	c.reg = reg
	c.resolveMetrics()
	return c
}

// rebuildAvailLocked reconstructs the checkout channel from current
// membership. Callers must hold no devices checked out (the
// batch-boundary contract of membership changes) and, when the cluster
// is shared, c.mu.
func (c *Cluster) rebuildAvailLocked() {
	capacity := len(c.devices)
	if capacity == 0 {
		capacity = 1
	}
	avail := make(chan *device, capacity)
	alive := 0
	for _, d := range c.devices {
		if !d.ejected {
			avail <- d
			alive++
		}
	}
	c.avail = avail
	c.alive = alive
	if alive == 0 {
		// Degraded: ensure allDead is closed so acquirers fall through.
		select {
		case <-c.allDead:
		default:
			close(c.allDead)
		}
	} else {
		select {
		case <-c.allDead:
			c.allDead = make(chan struct{})
		default:
		}
	}
}

// Lease adds a device handler to the cluster — the grant half of the
// prep-pool migration seam. It must only be called at a batch boundary
// (no PrepareBatch in flight). The device enters healthy, with a fresh
// ledger.
func (c *Cluster) Lease(h *P2PHandler) error {
	if h == nil {
		return fmt.Errorf("fpga: lease of nil handler")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.index[h]; dup {
		return fmt.Errorf("fpga: handler already leased to this cluster")
	}
	d := &device{h: h, id: c.nextID}
	c.nextID++
	c.devices = append(c.devices, d)
	c.index[h] = d
	c.rebuildAvailLocked()
	c.gActive.SetInt(int64(c.alive))
	return nil
}

// Release removes a device handler from the cluster and hands it back
// to the caller — the reclaim half of the prep-pool migration seam. It
// must only be called at a batch boundary. Releasing an ejected device
// is allowed (that is how a pool retires dead hardware).
func (c *Cluster) Release(h *P2PHandler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.index[h]
	if !ok {
		return fmt.Errorf("fpga: release of handler not in this cluster")
	}
	delete(c.index, h)
	for i, e := range c.devices {
		if e == d {
			c.devices = append(c.devices[:i], c.devices[i+1:]...)
			break
		}
	}
	c.rebuildAvailLocked()
	c.gActive.SetInt(int64(c.alive))
	return nil
}

// Ejected returns the handlers currently ejected by health tracking —
// what a prep-pool reaps at epoch boundaries to retire dead devices and
// re-run its rebalance.
func (c *Cluster) Ejected() []*P2PHandler {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*P2PHandler
	for _, d := range c.devices {
		if d.ejected {
			out = append(out, d.h)
		}
	}
	return out
}

// Devices returns the number of member devices, ejected or not.
func (c *Cluster) Devices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.devices)
}

// ActiveDevices returns the number of devices currently in the pool
// (not ejected).
func (c *Cluster) ActiveDevices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive
}

// Stats returns the cluster's cumulative dispatch-stage counters.
func (c *Cluster) Stats() []pipeline.StageStats {
	return c.stats.Snapshot()
}

func (c *Cluster) healthEnabled() bool { return c.health.EjectAfter > 0 }

// PrepareBatch prepares the keyed objects in order across the pooled
// devices: a dispatch stage with parallelism = device count checks a
// device out of the pool per sample, runs its SSD→FPGA path, and
// returns it. Ordering and bit-identity with the host executor are
// preserved. Without health tracking the first device error cancels the
// whole batch; with it (WithHealth), device-attributable failures
// re-dispatch the sample and only data errors — or an empty pool with
// no fallback — fail the batch.
func (c *Cluster) PrepareBatch(ctx context.Context, keys []string, datasetSeed int64, epoch int) ([]dataprep.Prepared, error) {
	c.beginBatch()
	par := c.Devices()
	if par == 0 {
		par = 1 // empty pool: the stage exists to drive the host fallback
	}
	dispatch := pipeline.NewStage("pool-dispatch", par, par,
		func(ctx context.Context, i int) (dataprep.Prepared, error) {
			return c.prepareSample(ctx, keys[i], datasetSeed, epoch)
		})
	pl, err := pipeline.New(c.pipelineName(), dispatch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run := pl.WithMetrics(c.reg).Run(ctx, pipeline.IndexSource(len(keys)))
	out, err := pipeline.Drain[dataprep.Prepared](run)
	c.stats.Add(run.Stats())
	c.wall.Add(time.Since(start).Nanoseconds())
	c.reportUtilization()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// prepareSample serves one sample through the degradation ladder:
// pooled devices first (re-dispatching on device faults while health
// tracking allows), then the host fallback once the pool is empty or
// the sample's pool attempts are spent.
func (c *Cluster) prepareSample(ctx context.Context, key string, datasetSeed int64, epoch int) (dataprep.Prepared, error) {
	seed := dataprep.SampleSeed(datasetSeed, key, epoch)
	maxTries := 1
	if c.healthEnabled() {
		maxTries = c.Devices()
	}
	var lastErr error
	for attempt := 0; attempt < maxTries; attempt++ {
		d, ok, err := c.acquire(ctx)
		if err != nil {
			return dataprep.Prepared{}, err
		}
		if !ok {
			break // pool empty: fall through to the host path
		}
		start := time.Now()
		p := d.h.prepareSample(ctx, key, seed, attempt)
		d.busy.Add(time.Since(start).Nanoseconds())
		c.mJobs.Inc()
		if p.Err == nil {
			c.release(d, true)
			return p, nil
		}
		deviceFault := faults.IsDeviceFault(p.Err)
		c.release(d, !deviceFault)
		if !c.healthEnabled() || !deviceFault {
			// Data errors fail identically everywhere; without health
			// tracking every error keeps the legacy fail-fast contract.
			return dataprep.Prepared{}, fmt.Errorf("fpga: pool sample %q: %w", key, p.Err)
		}
		lastErr = p.Err
		c.mRetries.Inc()
	}
	if c.fbExec != nil && c.fbStore != nil {
		p, err := c.fbExec.PrepareOne(ctx, c.fbStore, key, datasetSeed, epoch)
		if err != nil {
			return dataprep.Prepared{}, fmt.Errorf("fpga: degraded sample %q: %w", key, err)
		}
		c.mDegraded.Inc()
		return p, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no pooled device available")
	}
	return dataprep.Prepared{}, fmt.Errorf("fpga: pool sample %q: %w", key, lastErr)
}

// acquire checks a device out of the pool. ok=false with a nil error
// means the pool has no live device (degraded mode); a non-nil error is
// context cancellation.
func (c *Cluster) acquire(ctx context.Context) (d *device, ok bool, err error) {
	c.mu.Lock()
	avail := c.avail
	dead := c.allDead
	empty := c.alive == 0
	c.mu.Unlock()
	select {
	case d = <-avail:
		return d, true, nil
	default:
	}
	if empty {
		return nil, false, nil
	}
	select {
	case d = <-avail:
		return d, true, nil
	case <-dead:
		return nil, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// release returns a device to the pool, updating its health ledger:
// success (or a failure not attributable to the device) clears its
// strikes; a device fault adds one, and enough consecutive strikes —
// or any strike while on probation — eject it instead of returning it.
func (c *Cluster) release(d *device, clean bool) {
	if !c.healthEnabled() {
		c.mu.Lock()
		avail := c.avail
		c.mu.Unlock()
		avail <- d
		return
	}
	c.mu.Lock()
	if clean {
		d.consecFails = 0
		d.probation = false
		avail := c.avail
		c.mu.Unlock()
		avail <- d
		return
	}
	d.consecFails++
	if d.probation || d.consecFails >= c.health.EjectAfter {
		d.ejected = true
		d.probation = false
		d.consecFails = 0
		d.ejectedAt = c.batches
		c.alive--
		c.mEjected.Inc()
		c.gActive.SetInt(int64(c.alive))
		if c.alive == 0 {
			close(c.allDead) // wake blocked acquirers into degraded mode
		}
		c.mu.Unlock()
		return
	}
	avail := c.avail
	c.mu.Unlock()
	avail <- d
}

// beginBatch advances the batch counter and re-admits ejected devices
// whose probation period has elapsed. Re-admission happens between
// batches, so within one batch the live-device set only shrinks.
func (c *Cluster) beginBatch() {
	if !c.healthEnabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches++
	if c.health.ProbationBatches <= 0 {
		return
	}
	for _, d := range c.devices {
		if !d.ejected || c.batches-d.ejectedAt < int64(c.health.ProbationBatches) {
			continue
		}
		d.ejected = false
		d.probation = true
		d.consecFails = 0
		if c.alive == 0 {
			c.allDead = make(chan struct{}) // pool is live again
		}
		c.alive++
		c.mReadmitted.Inc()
		c.gActive.SetInt(int64(c.alive))
		// avail has capacity for every device and ejected devices are
		// never in it, so this send cannot block.
		c.avail <- d
	}
}

// reportUtilization publishes each device's share of cumulative batch
// wall time spent busy — the direct observable of whether the pool's
// devices are evenly loaded. Device ids are stable across membership
// changes, so a migrated-away device's series simply stops advancing.
func (c *Cluster) reportUtilization() {
	if c.reg == nil {
		return
	}
	wall := c.wall.Load()
	if wall <= 0 {
		return
	}
	prefix := c.metricPrefix()
	c.mu.Lock()
	devices := append([]*device(nil), c.devices...)
	c.mu.Unlock()
	for _, d := range devices {
		util := float64(d.busy.Load()) / float64(wall)
		c.reg.Gauge(fmt.Sprintf("%sdevice.%d.utilization", prefix, d.id)).Set(util)
	}
}
