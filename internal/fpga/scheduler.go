package fpga

import (
	"fmt"
	"sort"

	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// JobRequest is one training job's claim on the shared prep-pool
// (Section V-D: the pool serves multiple jobs, with underutilized train
// boxes' FPGAs contributing capacity).
type JobRequest struct {
	Name string
	Type workload.InputType
	// RequiredRate is the preparation throughput the job needs.
	RequiredRate units.SamplesPerSec
	// InBoxRate is the job's own train boxes' aggregate FPGA throughput.
	InBoxRate units.SamplesPerSec
}

// Deficit returns the preparation rate the job needs from the pool.
func (j JobRequest) Deficit() units.SamplesPerSec {
	d := j.RequiredRate - j.InBoxRate
	if d < 0 {
		return 0
	}
	return d
}

// DeficitFPGAs returns the pool FPGA-equivalents that cover the deficit.
func (j JobRequest) DeficitFPGAs() float64 {
	return float64(j.Deficit()) / float64(PrepRate(j.Type))
}

// JobAllocation is the scheduler's grant for one job.
type JobAllocation struct {
	Name string
	// GrantedFPGAs is the (fractional) pool capacity assigned.
	GrantedFPGAs float64
	// GrantedRate is the preparation rate the grant adds.
	GrantedRate units.SamplesPerSec
	// Satisfied reports whether in-box + grant meets the requirement.
	Satisfied bool
	// Fraction is grant/deficit (1 when fully covered, 0 when no
	// deficit existed).
	Fraction float64
}

// SchedulePool divides poolFPGAs across competing jobs. When the pool
// covers every deficit, each job gets exactly its deficit. Under
// contention the allocation is max-min fair on the *fraction of deficit
// covered*: no job's fraction can rise without lowering a poorer job's —
// the pool analogue of the PCIe bandwidth policy.
func SchedulePool(jobs []JobRequest, poolFPGAs int) ([]JobAllocation, error) {
	if poolFPGAs < 0 {
		return nil, fmt.Errorf("fpga: negative pool size %d", poolFPGAs)
	}
	for i, j := range jobs {
		if j.RequiredRate < 0 || j.InBoxRate < 0 {
			return nil, fmt.Errorf("fpga: job %d (%s) has negative rates", i, j.Name)
		}
	}
	out := make([]JobAllocation, len(jobs))
	var totalNeed float64
	needs := make([]float64, len(jobs))
	for i, j := range jobs {
		needs[i] = j.DeficitFPGAs()
		totalNeed += needs[i]
		out[i] = JobAllocation{Name: j.Name}
	}
	pool := float64(poolFPGAs)

	if totalNeed <= pool {
		// Everyone fully covered.
		for i, j := range jobs {
			out[i].GrantedFPGAs = needs[i]
			out[i].GrantedRate = j.Deficit()
			out[i].Satisfied = true
			if needs[i] > 0 {
				out[i].Fraction = 1
			}
		}
		return out, nil
	}

	// Contention: equal-fraction water filling. With grants g_i = f·n_i
	// and Σ g_i = pool, every deficit job gets fraction f = pool/Σ n_i —
	// already max-min fair on fractions since all fractions are equal
	// and capped at 1 (no job can exceed its own need). Jobs with zero
	// need stay at zero. (With per-job caps at 1 the classic round-based
	// filling is needed; kept for generality.)
	type idxNeed struct {
		idx  int
		need float64
	}
	order := make([]idxNeed, 0, len(jobs))
	for i, n := range needs {
		if n > 0 {
			order = append(order, idxNeed{i, n})
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].need < order[b].need })
	remaining := pool
	remainingNeed := totalNeed
	for _, in := range order {
		// Candidate uniform fraction for all still-unfrozen jobs.
		f := remaining / remainingNeed
		if f >= 1 {
			f = 1
		}
		grant := f * in.need
		out[in.idx].GrantedFPGAs = grant
		remaining -= grant
		remainingNeed -= in.need
	}
	for i, j := range jobs {
		out[i].GrantedRate = units.SamplesPerSec(out[i].GrantedFPGAs * float64(PrepRate(j.Type)))
		if needs[i] > 0 {
			out[i].Fraction = out[i].GrantedFPGAs / needs[i]
		}
		out[i].Satisfied = float64(j.InBoxRate)+float64(out[i].GrantedRate) >=
			float64(j.RequiredRate)*(1-1e-9)
	}
	return out, nil
}

// PoolUtilization sums the granted FPGA-equivalents.
func PoolUtilization(allocs []JobAllocation) float64 {
	var s float64
	for _, a := range allocs {
		s += a.GrantedFPGAs
	}
	return s
}
