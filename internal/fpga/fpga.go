// Package fpga models the data-preparation accelerators of TrainBox:
// Xilinx XCVU9P FPGAs carrying a preparation engine (image or audio), an
// Ethernet+protocol clustering module, and a P2P handler (Figure 17).
//
// Three facets are modelled:
//
//   - resource accounting: per-engine LUT/FF/BRAM/DSP consumption,
//     reproducing Tables II and III;
//   - performance: a calibrated per-device preparation rate per input
//     type, used by the system model;
//   - function: an emulator implementing dataprep.Preparer with the same
//     kernels as the CPU path, so tests can assert offload produces
//     bit-identical samples.
package fpga

import (
	"fmt"
	"sync"

	"trainbox/internal/dataprep"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// DeviceSpec is an FPGA part's resource capacity.
type DeviceSpec struct {
	Name string
	LUTs int
	FFs  int
	BRAM int
	DSP  int
}

// XCVU9P is the Xilinx Virtex UltraScale+ part the paper prototypes on
// (Section VI-A), with its published resource counts.
func XCVU9P() DeviceSpec {
	return DeviceSpec{Name: "xcvu9p", LUTs: 1_182_240, FFs: 2_364_480, BRAM: 2_160, DSP: 6_840}
}

// Engine is one pipeline block on the FPGA with its resource cost.
type Engine struct {
	Name string
	LUTs int
	FFs  int
	BRAM int
	DSP  int
}

// ImageEngines returns the Table II configuration: the image data
// preparation engine set plus the shared clustering (Ethernet+protocol)
// and P2P handler blocks. Counts are the paper's, to the table's printed
// precision.
func ImageEngines() []Engine {
	return []Engine{
		{Name: "Jpeg decoder", LUTs: 704_000, FFs: 665_000, BRAM: 0, DSP: 1040},
		{Name: "Crop", LUTs: 500, FFs: 300, BRAM: 0, DSP: 27},
		{Name: "Mirror", LUTs: 6_500, FFs: 4_700, BRAM: 0, DSP: 381},
		{Name: "Gaussian noise", LUTs: 24_500, FFs: 33_000, BRAM: 80, DSP: 400},
		{Name: "Cast", LUTs: 5_700, FFs: 3_000, BRAM: 0, DSP: 240},
		{Name: "Ethernet + Protocol parser", LUTs: 166_000, FFs: 169_000, BRAM: 1024, DSP: 0},
		{Name: "P2P Handler", LUTs: 22_700, FFs: 24_700, BRAM: 153, DSP: 0},
	}
}

// AudioEngines returns the Table III configuration: the audio engine set
// plus the shared clustering and P2P blocks.
func AudioEngines() []Engine {
	return []Engine{
		{Name: "Spectrogram", LUTs: 622_000, FFs: 755_000, BRAM: 228, DSP: 0},
		{Name: "Masking", LUTs: 21_000, FFs: 17_000, BRAM: 53, DSP: 260},
		{Name: "Norm", LUTs: 14_000, FFs: 11_000, BRAM: 0, DSP: 0},
		{Name: "Mel Filter bank", LUTs: 103_000, FFs: 119_000, BRAM: 208, DSP: 572},
		{Name: "Ethernet + Protocol parser", LUTs: 166_000, FFs: 169_000, BRAM: 1024, DSP: 0},
		{Name: "P2P Handler", LUTs: 22_700, FFs: 24_700, BRAM: 153, DSP: 0},
	}
}

// VideoEngines returns the future-work video configuration (Section V-C
// names video as the next input form; Related Work cites hardware video
// decoders). The estimate reuses the JPEG decoder (motion-JPEG frames),
// adds a temporal sampler, and keeps the shared clustering and P2P
// blocks; it is an engineering estimate, not a paper table.
func VideoEngines() []Engine {
	return []Engine{
		{Name: "Jpeg decoder", LUTs: 704_000, FFs: 665_000, BRAM: 0, DSP: 1040},
		{Name: "Temporal sampler", LUTs: 9_000, FFs: 7_500, BRAM: 96, DSP: 0},
		{Name: "Crop", LUTs: 500, FFs: 300, BRAM: 0, DSP: 27},
		{Name: "Mirror", LUTs: 6_500, FFs: 4_700, BRAM: 0, DSP: 381},
		{Name: "Cast", LUTs: 5_700, FFs: 3_000, BRAM: 0, DSP: 240},
		{Name: "Ethernet + Protocol parser", LUTs: 166_000, FFs: 169_000, BRAM: 1024, DSP: 0},
		{Name: "P2P Handler", LUTs: 22_700, FFs: 24_700, BRAM: 153, DSP: 0},
	}
}

// EnginesFor returns the engine set for an input type.
func EnginesFor(t workload.InputType) []Engine {
	switch t {
	case workload.Audio:
		return AudioEngines()
	case workload.Video:
		return VideoEngines()
	default:
		return ImageEngines()
	}
}

// Utilization is the fraction of each device resource a configuration
// consumes.
type Utilization struct {
	LUTs, FFs, BRAM, DSP float64
}

// Utilization sums the engines against the device capacity and reports
// per-resource fractions. It fails when any resource exceeds the device,
// which would mean the configuration does not place-and-route.
func (d DeviceSpec) Utilization(engines []Engine) (Utilization, error) {
	var l, f, b, ds int
	for _, e := range engines {
		l += e.LUTs
		f += e.FFs
		b += e.BRAM
		ds += e.DSP
	}
	u := Utilization{
		LUTs: float64(l) / float64(d.LUTs),
		FFs:  float64(f) / float64(d.FFs),
		BRAM: float64(b) / float64(d.BRAM),
		DSP:  float64(ds) / float64(d.DSP),
	}
	for name, v := range map[string]float64{"LUT": u.LUTs, "FF": u.FFs, "BRAM": u.BRAM, "DSP": u.DSP} {
		if v > 1 {
			return u, fmt.Errorf("fpga: %s over capacity on %s: %.1f%%", name, d.Name, v*100)
		}
	}
	return u, nil
}

// Per-device preparation throughput per input type, calibrated to the
// paper's prep-pool behaviour (Section VI-D): two in-box FPGAs must
// cover Inception-v4's per-box demand (8 × 1,669 samples/s) without the
// pool, while Transformer-SR needs ≈54% extra FPGA resources from the
// pool (2 × AudioPrepRate × 1.54 ≈ 8 × 2,001 samples/s).
const (
	// ImagePrepRate is one FPGA's image preparation throughput.
	ImagePrepRate units.SamplesPerSec = 8000
	// AudioPrepRate is one FPGA's audio preparation throughput. Audio is
	// slower per sample: Mel front-ends need many small FFTs.
	AudioPrepRate units.SamplesPerSec = 5200
	// VideoPrepRate is one FPGA's video-clip preparation throughput: a
	// 16-frame clip decodes ≈16 JPEG frames, so clips/s ≈ images/s ÷ 16.
	VideoPrepRate units.SamplesPerSec = 500
)

// PrepRate returns the per-FPGA preparation rate for an input type.
func PrepRate(t workload.InputType) units.SamplesPerSec {
	switch t {
	case workload.Audio:
		return AudioPrepRate
	case workload.Video:
		return VideoPrepRate
	default:
		return ImagePrepRate
	}
}

// Emulator implements dataprep.Preparer with the same kernels the CPU
// path uses — the reproduction's stand-in for the Verilog engines. Its
// contract (asserted in tests) is bit-identical output to the CPU
// preparer for equal seeds, which is what makes offload transparent to
// training.
type Emulator struct {
	Image *dataprep.ImageConfig
	Audio *dataprep.AudioConfig

	// scratches models the engine's on-device working set: each Prepare
	// draws a pooled dataprep.Scratch so repeated offloads recycle their
	// decode/augment buffers. Outputs are always freshly allocated
	// (plain NewScratch, no shared output pool) so callers — including
	// the bit-identity oracles — may hold results indefinitely. Built
	// lazily so the zero-value Emulator keeps working.
	scratchOnce sync.Once
	scratches   *pipeline.Pool[*dataprep.Scratch]
}

// NewImageEmulator returns an emulator programmed with the image engine
// set.
func NewImageEmulator(cfg dataprep.ImageConfig) *Emulator {
	return &Emulator{Image: &cfg}
}

// NewAudioEmulator returns an emulator programmed with the audio engine
// set.
func NewAudioEmulator(cfg dataprep.AudioConfig) *Emulator {
	return &Emulator{Audio: &cfg}
}

// Prepare implements dataprep.Preparer. Objects of the wrong kind for
// the programmed engine fail, mirroring a real FPGA whose bitstream only
// implements one pipeline (partial reconfiguration swaps it).
func (e *Emulator) Prepare(obj storage.Object, seed int64) dataprep.Prepared {
	e.scratchOnce.Do(func() {
		e.scratches = pipeline.NewPool(dataprep.NewScratch)
	})
	s := e.scratches.Get()
	defer e.scratches.Put(s)
	switch {
	case e.Image != nil:
		return dataprep.ImagePreparer{Config: *e.Image}.PrepareScratch(obj, seed, s)
	case e.Audio != nil:
		return dataprep.AudioPreparer{Config: *e.Audio}.PrepareScratch(obj, seed, s)
	}
	return dataprep.Prepared{Key: obj.Key, Err: fmt.Errorf("fpga: emulator not programmed")}
}

// Reprogram swaps the emulator's pipeline — the partial-reconfiguration
// path of Section V-C ("only the computation acceleration part of the
// accelerator is changed").
func (e *Emulator) Reprogram(image *dataprep.ImageConfig, audio *dataprep.AudioConfig) error {
	if (image == nil) == (audio == nil) {
		return fmt.Errorf("fpga: exactly one pipeline must be programmed")
	}
	e.Image, e.Audio = image, audio
	return nil
}
