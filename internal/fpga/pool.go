package fpga

import (
	"fmt"
	"math"

	"trainbox/internal/eth"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// PoolRequest is the train initializer's prep-pool sizing input for one
// train box group (Section V-A: "calculates the number of required data
// preparation accelerators by dividing throughput by per-accelerator
// throughput").
type PoolRequest struct {
	// RequiredRate is the preparation throughput the box must sustain
	// (per-box accelerator count × per-accelerator sample rate).
	RequiredRate units.SamplesPerSec
	// InBoxFPGAs is the number of preparation accelerators physically in
	// the train box.
	InBoxFPGAs int
	// Type selects the per-FPGA preparation rate.
	Type workload.InputType
	// OffloadBytesPerSample is the Ethernet round-trip volume for one
	// pooled sample (stored item out + prepared tensor back).
	OffloadBytesPerSample units.Bytes
}

// PoolAllocation is the initializer's result.
type PoolAllocation struct {
	// InBoxRate is what the box's own FPGAs sustain.
	InBoxRate units.SamplesPerSec
	// PoolFPGAEquivalents is the fractional pool capacity the box draws
	// (pool FPGAs are shared across boxes, so fractions are meaningful).
	PoolFPGAEquivalents float64
	// PoolFPGAs is the whole-device allocation (ceil of the equivalents),
	// what a dedicated-assignment scheduler would reserve.
	PoolFPGAs int
	// PoolRate is the preparation throughput the pooled capacity adds
	// after the Ethernet-port ceiling is applied.
	PoolRate units.SamplesPerSec
	// ExtraResourceFraction is pool FPGA-equivalents / in-box FPGAs — the
	// quantity the paper reports as "54% more FPGA resources" for TF-SR.
	ExtraResourceFraction float64
	// Satisfied reports whether in-box + pool meets the requirement.
	Satisfied bool
}

// TotalRate returns the box's aggregate preparation throughput.
func (a PoolAllocation) TotalRate() units.SamplesPerSec {
	return a.InBoxRate + a.PoolRate
}

// SizePool computes the prep-pool allocation for one box against the
// pool's Ethernet network. The box reaches the pool through its FPGAs'
// Ethernet ports (one port per in-box FPGA), so pooled throughput is
// additionally capped by the port bandwidth divided by the per-sample
// offload volume.
func SizePool(req PoolRequest, net *eth.Network, availablePoolFPGAs int) (PoolAllocation, error) {
	if req.InBoxFPGAs < 0 || availablePoolFPGAs < 0 {
		return PoolAllocation{}, fmt.Errorf("fpga: negative FPGA counts")
	}
	if req.RequiredRate < 0 {
		return PoolAllocation{}, fmt.Errorf("fpga: negative required rate")
	}
	perFPGA := PrepRate(req.Type)
	alloc := PoolAllocation{InBoxRate: units.SamplesPerSec(float64(perFPGA) * float64(req.InBoxFPGAs))}
	deficit := float64(req.RequiredRate) - float64(alloc.InBoxRate)
	if deficit <= 0 {
		alloc.Satisfied = true
		return alloc, nil
	}
	if net == nil {
		return alloc, fmt.Errorf("fpga: box needs %v extra but has no prep-pool network", units.SamplesPerSec(deficit))
	}
	equiv := deficit / float64(perFPGA)
	if equiv > float64(availablePoolFPGAs) {
		equiv = float64(availablePoolFPGAs)
	}
	alloc.PoolFPGAEquivalents = equiv
	alloc.PoolFPGAs = int(math.Ceil(equiv))
	poolRate := float64(perFPGA) * equiv
	// Ethernet ceiling: the box's FPGA ports carry offload traffic.
	if req.OffloadBytesPerSample > 0 && req.InBoxFPGAs > 0 {
		ethCap := float64(net.PortBandwidth()) * float64(req.InBoxFPGAs) / float64(req.OffloadBytesPerSample)
		if poolRate > ethCap {
			poolRate = ethCap
		}
	}
	alloc.PoolRate = units.SamplesPerSec(poolRate)
	if req.InBoxFPGAs > 0 {
		alloc.ExtraResourceFraction = equiv / float64(req.InBoxFPGAs)
	}
	alloc.Satisfied = float64(alloc.TotalRate()) >= float64(req.RequiredRate)*(1-1e-9)
	return alloc, nil
}
