package serve

import (
	"context"
	"fmt"

	"trainbox/internal/collective"
	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/preppool"
	"trainbox/internal/storage"
	"trainbox/internal/train"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Runner is the server's training backend: it executes one admitted job
// to completion (or cancellation via ctx). id is the server-assigned
// job ID — unique per server, valid as a preppool job name.
type Runner interface {
	Run(ctx context.Context, id string, spec JobSpec) (Outcome, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(ctx context.Context, id string, spec JobSpec) (Outcome, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, id string, spec JobSpec) (Outcome, error) {
	return f(ctx, id, spec)
}

// Elastic is the server-side harness an ElasticRunner threads through
// one suspendable run:
//
//   - Restore, when non-nil, is the epoch-boundary checkpoint the run
//     must resume from (the job was suspended or preempted earlier).
//   - Suspender carries the server's park requests; the run must honor
//     them at epoch boundaries and return an error wrapping
//     train.ErrSuspended once parked.
//   - Checkpoint, when non-nil, must be called with every banked
//     epoch-boundary checkpoint (newest last) — the server keeps the
//     latest so a crash mid-epoch loses at most the open epoch.
type Elastic struct {
	Restore    *train.Checkpoint
	Suspender  *train.Suspender
	Checkpoint func(train.Checkpoint)
}

// ElasticRunner is a Runner whose runs can be suspended at epoch
// boundaries and resumed from checkpoints. Servers detect it by type
// assertion; backends without it still run, but their jobs cannot be
// suspended while running or preempted under device pressure.
type ElasticRunner interface {
	Runner
	RunElastic(ctx context.Context, id string, spec JobSpec, e Elastic) (Outcome, error)
}

// Training-workload shape every submitted job runs: jobs share one
// synthetic 4-class image corpus (each re-augmenting it under its own
// dataset seed, as tenants sharing a dataset would), cropped small
// enough that a job is milliseconds of real decode→augment→train work.
const (
	runnerCrop     = 16
	runnerClasses  = 4
	featureBlock   = 4
	runnerLR       = 0.05
	runnerPrefetch = 1
)

// TrainRunner is the real backend: every job trains on the shared
// corpus with its own executor and seed, registered with the shared
// prep-pool (when one is wired) under the job's RequiredRate and
// Priority, and driven through train.RunJobs so driver telemetry and
// error attribution carry the job's ID.
//
// Build it with NewTrainRunner (host-only) or NewTrainBackend (with a
// device pool). The pooled devices MUST be constructed over this
// runner's Store(), or pooled preparation would read a different
// corpus than the host half of each epoch.
type TrainRunner struct {
	// Pool, when set, serves each job's preparation through
	// internal/preppool.
	Pool *preppool.Pool
	// Workers is the per-job host executor's worker count (default 1).
	Workers int

	store  *storage.Store
	keys   []string
	imgCfg dataprep.ImageConfig
	cache  *dscache.Cache
	sync   collective.Reducer
}

// NewTrainRunner builds the backend's shared corpus: corpusItems
// synthetic JPEG samples under the given seed. Jobs address the first
// JobSpec.Items of them per epoch.
func NewTrainRunner(corpusItems int, seed int64) (*TrainRunner, error) {
	if corpusItems < 1 {
		return nil, fmt.Errorf("serve: corpus needs ≥ 1 item, got %d", corpusItems)
	}
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, corpusItems, runnerClasses, seed); err != nil {
		return nil, err
	}
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = runnerCrop, runnerCrop
	return &TrainRunner{store: store, keys: store.Keys(), imgCfg: imgCfg}, nil
}

// Store returns the shared corpus store (for building pooled devices
// or wiring storage metrics).
func (r *TrainRunner) Store() *storage.Store { return r.store }

// EnableCache puts one shared decode-cache tier under every job the
// backend runs: the corpus is one dataset shared by all tenants, so the
// first job to touch a key decodes it for everyone (dscache
// single-flight), within the byte budget. Tenants keep their own
// augmentation seeds — the cached path is bit-identical per job. Call
// before serving traffic; the returned cache exposes Stats for tests
// and dashboards (metered into reg when non-nil).
func (r *TrainRunner) EnableCache(budget units.Bytes, reg *metrics.Registry) *dscache.Cache {
	r.cache = dscache.New(budget, dscache.WithName("serve")).WithMetrics(reg)
	return r.cache
}

// EnableSync selects the gradient-sync backend every job this backend
// runs will use ("ring", "tree", "halving", or "ps" — see
// collective.Backends). All backends produce bit-identical models, so
// switching is a topology/telemetry choice, not a numerics one; extra
// options (collective.WithShards, WithFaults, WithRetry) tune the
// parameter-server tier. Call before serving traffic; the reducer is
// metered into reg when non-nil.
func (r *TrainRunner) EnableSync(backend string, reg *metrics.Registry, opts ...collective.Option) (collective.Reducer, error) {
	if reg != nil {
		opts = append(opts, collective.WithMetrics(reg))
	}
	red, err := collective.ByName(backend, opts...)
	if err != nil {
		return nil, err
	}
	r.sync = red
	return red, nil
}

// ImageConfig returns the preparation config pooled device emulators
// must match for bit-identical host/pool epochs.
func (r *TrainRunner) ImageConfig() dataprep.ImageConfig { return r.imgCfg }

// NewTrainBackend builds the whole real training backend in one call:
// the shared corpus, `devices` pooled FPGA handlers over it, and the
// prep-pool (metered into reg, with any extra pool options applied).
// With devices == 0 the runner stays host-only and the pool is nil.
func NewTrainBackend(devices, corpusItems int, seed int64, reg *metrics.Registry, poolOpts ...preppool.Option) (*TrainRunner, *preppool.Pool, error) {
	r, err := NewTrainRunner(corpusItems, seed)
	if err != nil {
		return nil, nil, err
	}
	if devices == 0 {
		return r, nil, nil
	}
	ns, err := nvme.LoadStore(r.store)
	if err != nil {
		return nil, nil, err
	}
	handlers := make([]*fpga.P2PHandler, devices)
	for i := range handlers {
		h, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(r.imgCfg), 8, fpga.WithMetrics(reg))
		if err != nil {
			return nil, nil, err
		}
		handlers[i] = h
	}
	opts := append([]preppool.Option{preppool.WithMetrics(reg)}, poolOpts...)
	pool, err := preppool.NewPool(handlers, opts...)
	if err != nil {
		return nil, nil, err
	}
	r.Pool = pool
	return r, pool, nil
}

// Run implements Runner with a real training run.
func (r *TrainRunner) Run(ctx context.Context, id string, spec JobSpec) (Outcome, error) {
	return r.run(ctx, id, spec, Elastic{})
}

// RunElastic implements ElasticRunner: the same training run wired for
// suspension — every epoch boundary banks a checkpoint through
// e.Checkpoint, park requests on e.Suspender are honored at the next
// boundary, and a non-nil e.Restore resumes bit-identically from a
// prior checkpoint. A resumed run's Outcome counts only the resumed
// leg's samples and steps; the restored epochs were counted by the leg
// that banked them.
func (r *TrainRunner) RunElastic(ctx context.Context, id string, spec JobSpec, e Elastic) (Outcome, error) {
	return r.run(ctx, id, spec, e)
}

func (r *TrainRunner) run(ctx context.Context, id string, spec JobSpec, e Elastic) (out Outcome, retErr error) {
	items := spec.Items
	if items > len(r.keys) {
		items = len(r.keys)
	}
	if items < spec.Replicas {
		return Outcome{}, fmt.Errorf("%w: corpus of %d items cannot feed %d replicas", ErrBadSpec, len(r.keys), spec.Replicas)
	}
	keys := r.keys[:items]
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: r.imgCfg}, workers, spec.Seed)
	if r.cache != nil && r.Pool != nil {
		// The pool path bypasses train.WithCache (it needs WithDataset),
		// so rebind the job's host executor directly; the host half of
		// every split epoch then rides the shared tier.
		dscache.Bind(r.cache, exec)
	}

	opts := []train.Option{train.WithFeature(blockFeature)}
	if r.sync != nil {
		opts = append(opts, train.WithSync(r.sync))
	}
	if e.Suspender != nil {
		opts = append(opts, train.WithSuspender(e.Suspender))
	}
	if e.Checkpoint != nil {
		opts = append(opts, train.WithCheckpointEvery(1), train.WithCheckpointSink(e.Checkpoint))
	}
	if e.Restore != nil {
		opts = append(opts, train.WithRestore(*e.Restore))
	}
	if r.Pool != nil {
		pj, err := r.Pool.Register(preppool.JobSpec{
			Name:         id,
			Type:         workload.Image,
			RequiredRate: units.SamplesPerSec(spec.RequiredRate),
			Priority:     spec.Priority,
			Exec:         exec,
			Store:        r.store,
			DatasetSeed:  spec.Seed,
		})
		if err != nil {
			return Outcome{}, err
		}
		defer func() {
			if cerr := pj.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		opts = append(opts, train.WithPreparer(pj.Preparer(keys), len(keys)))
	} else {
		opts = append(opts, train.WithDataset(exec, r.store, keys))
		if r.cache != nil {
			opts = append(opts, train.WithCache(r.cache))
		}
	}

	side := runnerCrop / featureBlock
	cfg := train.Config{
		Replicas:      spec.Replicas,
		Widths:        []int{side * side, 8, runnerClasses},
		Epochs:        spec.Epochs,
		LearningRate:  runnerLR,
		PrefetchDepth: runnerPrefetch,
		Seed:          spec.Seed,
	}
	results, err := train.RunJobs(ctx, []train.Job{{Name: id, Config: cfg, Options: opts}})
	if err != nil {
		return Outcome{}, err
	}
	res := results[0].Result
	return Outcome{
		FinalLoss: res.FinalLoss(),
		Samples:   res.SamplesProcessed,
		Steps:     len(res.Steps),
		ElapsedMs: float64(res.Elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// blockFeature pools the prepared tensor's first channel into coarse
// block averages — the same featurization the bench harness and the
// training CLI use.
func blockFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	side := ten.W / featureBlock
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * featureBlock; y < (by+1)*featureBlock; y++ {
				for x := bx * featureBlock; x < (bx+1)*featureBlock; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (featureBlock * featureBlock)
		}
	}
	return feat, p.Label, nil
}
