package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs              submit a JobSpec        → 202 Info, 429 shed, 400 bad spec
//	GET    /v1/jobs?tenant=x     list jobs               → 200 []Info
//	GET    /v1/jobs/{id}         job status              → 200 Info, 404
//	GET    /v1/jobs/{id}/result  finished job's outcome  → 200 Info, 409 not done, 404
//	POST   /v1/jobs/{id}/suspend park at epoch boundary  → 202 Info, 409 not suspendable, 404
//	POST   /v1/jobs/{id}/resume  requeue a suspended job → 202 Info, 409 not suspended, 404
//	DELETE /v1/jobs/{id}         cancel                  → 202 Info, 409 terminal, 404
//	GET    /v1/metrics           metrics snapshot        → 200 metrics.Snapshot
//	GET    /v1/healthz           occupancy summary       → 200 Stats
//
// Every error body is {"error": "..."}; 429 responses also carry a
// Retry-After header in whole seconds. Suspension of a running job is
// asynchronous: the 202 acknowledges the park request, and the job
// reaches "suspended" at its next epoch boundary.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/suspend", s.handleSuspend)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful left to do on error
}

// writeError maps the server's error taxonomy onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrNotFinished), errors.Is(err, ErrAlreadyFinished),
		errors.Is(err, ErrNotElastic), errors.Is(err, ErrAlreadySuspended),
		errors.Is(err, ErrNotSuspended):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadSpec, err))
		return
	}
	inf, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, inf)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	inf, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inf)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	inf, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, inf)
}

func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	s.handleLifecycle(w, r, s.Suspend)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.handleLifecycle(w, r, s.Resume)
}

// handleLifecycle applies a state-transition method and answers 202
// with the job's fresh snapshot.
func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request, op func(string) error) {
	id := r.PathValue("id")
	if err := op(id); err != nil {
		writeError(w, err)
		return
	}
	inf, err := s.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, inf)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.handleLifecycle(w, r, s.Cancel)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
