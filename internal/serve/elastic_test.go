package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"trainbox/internal/metrics"
	"trainbox/internal/train"
)

// elasticGate is the suspendable stand-in for real training: it blocks
// like gateRunner, but polls its Suspender and parks — banking a fake
// checkpoint through the sink — the way a train.Run epoch boundary
// would. Each dispatch records the epoch it restored from (-1 = fresh).
type elasticGate struct {
	mu       sync.Mutex
	restores map[string][]int // id → restore epoch per dispatch
	started  chan string
	release  chan error
}

func newElasticGate() *elasticGate {
	return &elasticGate{
		restores: map[string][]int{},
		started:  make(chan string, 128),
		release:  make(chan error, 128),
	}
}

func (g *elasticGate) Run(ctx context.Context, id string, spec JobSpec) (Outcome, error) {
	return g.RunElastic(ctx, id, spec, Elastic{})
}

func (g *elasticGate) RunElastic(ctx context.Context, id string, spec JobSpec, e Elastic) (Outcome, error) {
	epoch := 0
	restored := -1
	if e.Restore != nil {
		restored = e.Restore.Epoch
		epoch = e.Restore.Epoch + 1
	}
	g.mu.Lock()
	g.restores[id] = append(g.restores[id], restored)
	g.mu.Unlock()
	g.started <- id
	for {
		select {
		case err := <-g.release:
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{FinalLoss: 0.25, Samples: spec.Items * (spec.Epochs - epoch)}, nil
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		case <-time.After(time.Millisecond):
			if e.Suspender != nil && e.Suspender.Requested() {
				if e.Checkpoint != nil {
					e.Checkpoint(train.Checkpoint{Epoch: epoch, Seed: spec.Seed})
				}
				return Outcome{}, fmt.Errorf("elasticGate: parked after epoch %d: %w", epoch, train.ErrSuspended)
			}
		}
	}
}

func (g *elasticGate) waitStarted(t *testing.T) string {
	t.Helper()
	select {
	case id := <-g.started:
		return id
	case <-time.After(5 * time.Second):
		t.Fatal("no job dispatched within 5s")
		return ""
	}
}

func (g *elasticGate) restoresOf(id string) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.restores[id]...)
}

// TestSuspendResumeLifecycle: running → suspended (checkpoint banked) →
// resumed (restored from that checkpoint) → done, with the suspension
// counters attributed to tenant and server.
func TestSuspendResumeLifecycle(t *testing.T) {
	g := newElasticGate()
	s := newTestServer(t, g, WithMaxRunning(1))
	inf, err := s.Submit(JobSpec{Tenant: "alice", Items: 4, Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if err := s.Suspend(inf.ID); err != nil {
		t.Fatal(err)
	}
	sus := waitState(t, s, inf.ID, StateSuspended)
	if sus.CheckpointEpochs != 1 {
		t.Errorf("suspended checkpoint epochs = %d, want 1", sus.CheckpointEpochs)
	}
	if err := s.Suspend(inf.ID); !errors.Is(err, ErrAlreadySuspended) {
		t.Errorf("double suspend: err = %v, want ErrAlreadySuspended", err)
	}
	if err := s.Resume(inf.ID); err != nil {
		t.Fatal(err)
	}
	if got := g.waitStarted(t); got != inf.ID {
		t.Fatalf("resumed dispatch = %s, want %s", got, inf.ID)
	}
	if err := s.Resume(inf.ID); !errors.Is(err, ErrNotSuspended) {
		t.Errorf("resume of running job: err = %v, want ErrNotSuspended", err)
	}
	g.release <- nil
	done := waitState(t, s, inf.ID, StateDone)
	if done.Outcome == nil {
		t.Fatal("resumed job finished without an outcome")
	}
	if got := g.restoresOf(inf.ID); len(got) != 2 || got[0] != -1 || got[1] != 0 {
		t.Errorf("restore epochs per dispatch = %v, want [-1 0]", got)
	}
	snap := s.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"serve.tenant.alice.suspensions": 1,
		"serve.tenant.alice.resumes":     1,
		"serve.server.suspensions":       1,
		"serve.server.resumes":           1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestSuspendQueuedJobCountsTowardQuota: a queued job suspends
// immediately (no checkpoint), still consumes its tenant's quota while
// parked, and resumes fresh.
func TestSuspendQueuedJobCountsTowardQuota(t *testing.T) {
	g := newElasticGate()
	s := newTestServer(t, g, WithMaxRunning(1), WithTenantQuota(2))
	run, err := s.Submit(JobSpec{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	parked, err := s.Submit(JobSpec{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Suspend(parked.ID); err != nil {
		t.Fatal(err)
	}
	inf, _ := s.Status(parked.ID)
	if inf.State != StateSuspended || inf.CheckpointEpochs != 0 {
		t.Fatalf("suspended queued job = %+v, want suspended without a checkpoint", inf)
	}
	_, err = s.Submit(JobSpec{Tenant: "bob"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "tenant quota" {
		t.Fatalf("suspended job must hold its quota claim: err = %v", err)
	}
	if err := s.Resume(parked.ID); err != nil {
		t.Fatal(err)
	}
	g.release <- nil // finish the running job; parked dispatches next
	waitState(t, s, run.ID, StateDone)
	if got := g.waitStarted(t); got != parked.ID {
		t.Fatalf("next dispatch = %s, want %s", got, parked.ID)
	}
	g.release <- nil
	waitState(t, s, parked.ID, StateDone)
	if got := g.restoresOf(parked.ID); len(got) != 1 || got[0] != -1 {
		t.Errorf("restore epochs = %v, want [-1] (fresh start)", got)
	}
}

// TestSuspendResumeTaxonomy: every rejected transition maps to its
// sentinel — non-elastic backends, terminal jobs, unknown IDs — and a
// suspended job can still be cancelled.
func TestSuspendResumeTaxonomy(t *testing.T) {
	plain := newGateRunner()
	s := newTestServer(t, plain, WithMaxRunning(1))
	run, err := s.Submit(JobSpec{Tenant: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	plain.waitStarted(t)
	if err := s.Suspend(run.ID); !errors.Is(err, ErrNotElastic) {
		t.Errorf("suspend on plain runner: err = %v, want ErrNotElastic", err)
	}
	if err := s.Suspend("j-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("suspend unknown: err = %v, want ErrNotFound", err)
	}
	if err := s.Resume("j-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("resume unknown: err = %v, want ErrNotFound", err)
	}
	queued, err := s.Submit(JobSpec{Tenant: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(queued.ID); !errors.Is(err, ErrNotSuspended) {
		t.Errorf("resume of queued job: err = %v, want ErrNotSuspended", err)
	}
	// A queued job suspends immediately even on a plain backend (there
	// is no running state to checkpoint), and can be cancelled parked.
	if err := s.Suspend(queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if inf, _ := s.Status(queued.ID); inf.State != StateCancelled {
		t.Errorf("cancelled suspended job state = %s", inf.State)
	}
	if err := s.Resume(queued.ID); !errors.Is(err, ErrAlreadyFinished) {
		t.Errorf("resume of cancelled job: err = %v, want ErrAlreadyFinished", err)
	}
	plain.release <- nil
	waitState(t, s, run.ID, StateDone)
	if err := s.Suspend(run.ID); !errors.Is(err, ErrAlreadyFinished) {
		t.Errorf("suspend of done job: err = %v, want ErrAlreadyFinished", err)
	}
}

// TestPreemptionUnderDevicePressure: a higher-priority submission that
// would have been shed for device pressure instead preempts the
// lowest-priority running elastic job; the victim parks a checkpoint,
// requeues automatically, and later resumes from that checkpoint. An
// equal-priority submission still sheds.
func TestPreemptionUnderDevicePressure(t *testing.T) {
	g := newElasticGate()
	s := newTestServer(t, g, WithMaxRunning(1), WithQueueLimit(64), WithPressureLimit(1),
		WithPressureSignal(func() bool { return true }))
	victim, err := s.Submit(JobSpec{Tenant: "victim", Epochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if _, err := s.Submit(JobSpec{Tenant: "filler"}); err != nil {
		t.Fatal(err) // depth 0 → 1: admitted, now at the pressure limit
	}
	_, err = s.Submit(JobSpec{Tenant: "peer"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "device pressure" {
		t.Fatalf("equal-priority submission: err = %v, want device-pressure shed", err)
	}
	vip, err := s.Submit(JobSpec{Tenant: "vip", Priority: 5})
	if err != nil {
		t.Fatalf("outranking submission was shed instead of preempting: %v", err)
	}
	// The victim parks at its next boundary and requeues; the freed slot
	// goes to the vip (highest priority in queue).
	if got := g.waitStarted(t); got != vip.ID {
		t.Fatalf("post-preemption dispatch = %s, want vip %s", got, vip.ID)
	}
	vinf := waitState(t, s, victim.ID, StateQueued)
	if vinf.Preemptions != 1 || vinf.CheckpointEpochs == 0 {
		t.Errorf("preempted victim = %+v, want 1 preemption with a banked checkpoint", vinf)
	}
	// Drain: vip finishes, then filler and the victim in turn.
	g.release <- nil
	waitState(t, s, vip.ID, StateDone)
	for i := 0; i < 2; i++ {
		g.waitStarted(t)
		g.release <- nil
	}
	waitState(t, s, victim.ID, StateDone)
	if got := g.restoresOf(victim.ID); len(got) != 2 || got[0] != -1 || got[1] != 0 {
		t.Errorf("victim restore epochs = %v, want [-1 0]", got)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.server.preemptions"]; got != 1 {
		t.Errorf("preemptions = %d, want 1", got)
	}
	if got := snap.Counters["serve.tenant.victim.suspensions"]; got != 1 {
		t.Errorf("victim suspensions = %d, want 1", got)
	}
}

// TestStatsNoLostJobsInvariant: across running, queued, suspended,
// done, failed, and cancelled jobs, every admitted job is accounted for
// in exactly one state tally — and Close converts the live ones to
// cancelled without losing any.
func TestStatsNoLostJobsInvariant(t *testing.T) {
	check := func(t *testing.T, st Stats) {
		t.Helper()
		if sum := st.QueueDepth + st.Running + st.Suspended + st.Done + st.Failed + st.Cancelled; sum != st.Jobs {
			t.Errorf("no-lost-jobs violated: states sum to %d, jobs = %d (%+v)", sum, st.Jobs, st)
		}
	}
	g := newElasticGate()
	s := newTestServer(t, g, WithMaxRunning(2))
	var ids []string
	for i := 0; i < 6; i++ {
		inf, err := s.Submit(JobSpec{Tenant: fmt.Sprintf("t%d", i%3)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, inf.ID)
	}
	first := g.waitStarted(t)
	g.waitStarted(t)
	check(t, s.Stats())

	if err := s.Suspend(first); err != nil { // park a running job
		t.Fatal(err)
	}
	waitState(t, s, first, StateSuspended)
	g.waitStarted(t) // a queued job takes the freed slot
	// One running job finishes, one fails (the buffered channel makes
	// which is which nondeterministic — only the tallies matter), and
	// the freed slots pull two more off the queue.
	g.release <- nil
	g.release <- errors.New("divergence")
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		check(t, st)
		if st.Done == 1 && st.Failed == 1 && st.Running == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var queued string
	for _, id := range ids {
		if inf, _ := s.Status(id); inf.State == StateQueued {
			queued = id
			break
		}
	}
	if queued == "" {
		t.Fatal("expected a queued job left")
	}
	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	check(t, st)
	if st.Suspended != 1 || st.Failed != 1 || st.Done != 1 || st.Cancelled != 1 {
		t.Errorf("stats = %+v, want 1 suspended / 1 failed / 1 done / 1 cancelled", st)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	check(t, st)
	if st.Suspended != 0 || st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("stats after close = %+v, want no live jobs", st)
	}
	if inf, _ := s.Status(first); inf.State != StateCancelled {
		t.Errorf("suspended job state after close = %s, want cancelled", inf.State)
	}
}

// TestHTTPSuspendResume drives the suspend/resume endpoints over the
// wire, including the 409 taxonomy.
func TestHTTPSuspendResume(t *testing.T) {
	g := newElasticGate()
	_, ts := httpServer(t, g, WithMaxRunning(1))
	resp, fields := doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "alice", Epochs: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := fieldString(t, fields, "id")
	g.waitStarted(t)

	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/resume", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("resume of running job: status = %d, want 409", resp.StatusCode)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/suspend", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("suspend status = %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, fields = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if fieldString(t, fields, "state") == string(StateSuspended) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never suspended; last body %v", fields)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/suspend", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double suspend: status = %d, want 409", resp.StatusCode)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/resume", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status = %d, want 202", resp.StatusCode)
	}
	g.waitStarted(t)
	g.release <- nil
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs/j-404/suspend", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("suspend unknown: status = %d, want 404", resp.StatusCode)
	}
}

// TestEndToEndSuspendResumeOracleIdentical: the real backend suspended
// mid-run and resumed from its checkpoint converges to exactly the
// final loss of an uninterrupted run of the same spec — the serve-level
// face of the train package's bit-identical restore guarantee.
func TestEndToEndSuspendResumeOracleIdentical(t *testing.T) {
	reg := metrics.NewRegistry()
	runner, err := NewTrainRunner(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, runner, WithMetrics(reg), WithMaxRunning(1))
	spec := JobSpec{Tenant: "oracle", Items: 32, Epochs: 12, Replicas: 2, Seed: 5}
	oracle, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	odone := waitState(t, s, oracle.ID, StateDone)

	spec.Tenant = "elastic"
	elastic, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, elastic.ID, StateRunning)
	if err := s.Suspend(elastic.ID); err != nil {
		t.Fatal(err)
	}
	sus := waitState(t, s, elastic.ID, StateSuspended)
	if sus.CheckpointEpochs < 1 || sus.CheckpointEpochs >= spec.Epochs {
		t.Fatalf("suspended with checkpoint epochs = %d, want mid-run", sus.CheckpointEpochs)
	}
	if err := s.Resume(elastic.ID); err != nil {
		t.Fatal(err)
	}
	edone := waitState(t, s, elastic.ID, StateDone)
	if odone.Outcome == nil || edone.Outcome == nil {
		t.Fatalf("missing outcomes: oracle %+v, elastic %+v", odone.Outcome, edone.Outcome)
	}
	if edone.Outcome.FinalLoss != odone.Outcome.FinalLoss {
		t.Fatalf("resumed final loss %v differs from uninterrupted oracle %v",
			edone.Outcome.FinalLoss, odone.Outcome.FinalLoss)
	}
	// The resumed leg re-proves only the epochs after the checkpoint.
	wantSamples := spec.Items * (spec.Epochs - sus.CheckpointEpochs)
	if edone.Outcome.Samples != wantSamples {
		t.Errorf("resumed leg processed %d samples, want %d", edone.Outcome.Samples, wantSamples)
	}
}
