package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func httpServer(t *testing.T, r Runner, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, r, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fields map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		fields = nil // list endpoints return arrays; callers re-request those
	}
	return resp, fields
}

func fieldString(t *testing.T, fields map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if raw, ok := fields[key]; ok {
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatalf("field %s: %v", key, err)
		}
	}
	return s
}

// TestHTTPLifecycle drives submit → status → result → list over the
// wire against the gate runner.
func TestHTTPLifecycle(t *testing.T) {
	g := newGateRunner()
	_, ts := httpServer(t, g)

	resp, fields := doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "alice", Items: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := fieldString(t, fields, "id")
	if id == "" || fieldString(t, fields, "state") != "queued" {
		t.Fatalf("submit body = %v", fields)
	}
	g.waitStarted(t)

	resp, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running: status = %d, want 409", resp.StatusCode)
	}

	g.release <- nil
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, fields = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if fieldString(t, fields, "state") == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", fieldString(t, fields, "state"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, fields = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK || fields["outcome"] == nil {
		t.Fatalf("result status = %d, body = %v", resp.StatusCode, fields)
	}

	listResp, err := http.Get(ts.URL + "/v1/jobs?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var infos []Info
	if err := json.NewDecoder(listResp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != id {
		t.Fatalf("list = %+v", infos)
	}
}

// TestHTTPCancel cancels a running job over the wire.
func TestHTTPCancel(t *testing.T) {
	g := newGateRunner()
	s, ts := httpServer(t, g)
	resp, fields := doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "bob"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := fieldString(t, fields, "id")
	g.waitStarted(t)
	resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	waitState(t, s, id, StateCancelled)
	resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of terminal job: status = %d, want 409", resp.StatusCode)
	}
}

// TestHTTPErrorMapping checks each error class lands on its documented
// status code.
func TestHTTPErrorMapping(t *testing.T) {
	g := newGateRunner()
	_, ts := httpServer(t, g, WithMaxRunning(1), WithTenantQuota(1), WithRetryAfter(3*time.Second))

	resp, fields := doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "UPPER"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad tenant: status = %d, want 400", resp.StatusCode)
	}
	if fieldString(t, fields, "error") == "" {
		t.Error("error body missing")
	}

	resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs", map[string]any{"tenant": "x", "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}

	resp, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/j-404", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status = %d, want 404", resp.StatusCode)
	}

	// Fill the quota, then overflow it: 429 with Retry-After.
	if resp, _ = doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "quota"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status = %d", resp.StatusCode)
	}
	g.waitStarted(t)
	resp, fields = doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "quota"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: status = %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry != 3 {
		t.Errorf("Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}
}

// TestHTTPMetricsAndHealthz: both observability endpoints serve JSON
// reflecting live state.
func TestHTTPMetricsAndHealthz(t *testing.T) {
	g := newGateRunner()
	_, ts := httpServer(t, g)
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", JobSpec{Tenant: "carol"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	g.waitStarted(t)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.tenant.carol.admitted"] != 1 {
		t.Errorf("metrics endpoint counters = %v", snap.Counters)
	}

	resp2, hfields := doJSON(t, "GET", ts.URL+"/v1/healthz", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp2.StatusCode)
	}
	var running int
	if err := json.Unmarshal(hfields["running"], &running); err != nil || running != 1 {
		t.Errorf("healthz running = %s", hfields["running"])
	}
	var free int
	if err := json.Unmarshal(hfields["free_devices"], &free); err != nil || free != -1 {
		t.Errorf("healthz free_devices = %s (no pool wired, want -1)", hfields["free_devices"])
	}
}

// TestHTTPMethodDiscipline: wrong verbs 404/405 under the Go 1.22 mux.
func TestHTTPMethodDiscipline(t *testing.T) {
	_, ts := httpServer(t, newGateRunner())
	resp, err := http.Get(ts.URL + "/v1/nothing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/jobs", bytes.NewBufferString("{}"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: status = %d, want 405", resp.StatusCode)
	}
}
