package serve

import (
	"strings"
	"testing"

	"trainbox/internal/collective"
	"trainbox/internal/metrics"
)

// TestServeSyncBackendBitIdentical: a server whose backend runs every
// job through the parameter-server reducer produces byte-identical
// outcomes to a default-sync server on the same spec, and the reducer's
// telemetry lands in the server's registry.
func TestServeSyncBackendBitIdentical(t *testing.T) {
	const items = 8
	spec := JobSpec{Tenant: "alice", Items: items, Epochs: 3, Replicas: 2, Seed: 5}

	// Default-sync oracle (driver falls back to the ring).
	oracleRunner, err := NewTrainRunner(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracleSrv := newTestServer(t, oracleRunner, WithMaxRunning(1))
	inf, err := oracleSrv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle := waitState(t, oracleSrv, inf.ID, StateDone)
	if oracle.Outcome == nil {
		t.Fatalf("oracle outcome: %+v", oracle)
	}

	reg := metrics.NewRegistry()
	runner, err := NewTrainRunner(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.EnableSync("ps", reg, collective.WithShards(2)); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, runner, WithMetrics(reg), WithMaxRunning(1))
	inf, err = s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, inf.ID, StateDone)
	if done.Outcome == nil {
		t.Fatalf("ps outcome: %+v", done)
	}
	if done.Outcome.FinalLoss != oracle.Outcome.FinalLoss || done.Outcome.Samples != oracle.Outcome.Samples {
		t.Fatalf("ps-synced job diverged from default-sync oracle: %+v vs %+v",
			done.Outcome, oracle.Outcome)
	}

	snap := reg.Snapshot()
	if snap.Counters["collective.ps.rounds"] == 0 {
		t.Fatal("collective.ps.rounds not metered into the server registry")
	}
	if snap.Counters["collective.ps.bytes_moved"] == 0 {
		t.Fatal("collective.ps.bytes_moved not metered into the server registry")
	}
}

// TestServeEnableSyncValidation: unknown backends and PS-only options on
// non-PS backends surface as errors before any job runs.
func TestServeEnableSyncValidation(t *testing.T) {
	runner, err := NewTrainRunner(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.EnableSync("gossip", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown sync backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	if _, err := runner.EnableSync("ring", nil, collective.WithShards(4)); err == nil {
		t.Fatal("WithShards on ring must be rejected")
	}
	// A failed EnableSync must not leave a half-configured reducer
	// behind: the runner still runs with the driver default.
	if runner.sync != nil {
		t.Fatal("failed EnableSync left a reducer installed")
	}
	if _, err := runner.EnableSync("halving", nil); err != nil {
		t.Fatalf("EnableSync(halving) = %v", err)
	}
	if runner.sync == nil || runner.sync.Name() != "halving" {
		t.Fatalf("runner.sync = %v, want halving reducer", runner.sync)
	}
}
