package serve

import "sort"

// queue is the admission queue: strict priority classes, and within a
// class max-min fair-share across tenants on *running* jobs — the
// front-end analogue of the prep-pool's max-min rebalancer. The pool
// divides devices max-min across registered jobs; this queue decides
// which tenant's job registers next, picking the tenant that currently
// holds the fewest running slots (ties broken round-robin by least
// recent dispatch), so no tenant can hold N+2 slots while another
// waits at N.
//
// queue is not self-locking: the Server calls it under its own mutex.
type queue struct {
	buckets map[int]map[string][]*job // priority → tenant → FIFO
	size    int
	seq     int64 // dispatch clock for round-robin tie-breaks
}

func newQueue() *queue {
	return &queue{buckets: map[int]map[string][]*job{}}
}

func (q *queue) len() int { return q.size }

// push appends the job to its tenant's FIFO in its priority class.
func (q *queue) push(j *job) {
	b := q.buckets[j.spec.Priority]
	if b == nil {
		b = map[string][]*job{}
		q.buckets[j.spec.Priority] = b
	}
	b[j.spec.Tenant] = append(b[j.spec.Tenant], j)
	q.size++
}

// pop removes and returns the next job to dispatch: the highest
// non-empty priority class, and within it the tenant with the fewest
// running jobs (per running), tie-broken by least-recently-dispatched.
// Returns nil when empty.
func (q *queue) pop(running func(tenant string) (active int, lastDispatch int64)) *job {
	if q.size == 0 {
		return nil
	}
	prios := make([]int, 0, len(q.buckets))
	for p, b := range q.buckets {
		if len(b) > 0 {
			prios = append(prios, p)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	for _, p := range prios {
		b := q.buckets[p]
		best := ""
		bestActive, bestLast := 0, int64(0)
		for tenant, fifo := range b {
			if len(fifo) == 0 {
				continue
			}
			active, last := running(tenant)
			if best == "" || active < bestActive ||
				(active == bestActive && last < bestLast) ||
				(active == bestActive && last == bestLast && tenant < best) {
				best, bestActive, bestLast = tenant, active, last
			}
		}
		if best == "" {
			continue
		}
		fifo := b[best]
		j := fifo[0]
		if len(fifo) == 1 {
			delete(b, best)
		} else {
			b[best] = fifo[1:]
		}
		if len(b) == 0 {
			delete(q.buckets, p)
		}
		q.size--
		q.seq++
		j.dispatchSeq = q.seq
		return j
	}
	return nil
}

// remove deletes a specific queued job (cancellation) and reports
// whether it was present.
func (q *queue) remove(target *job) bool {
	b := q.buckets[target.spec.Priority]
	fifo := b[target.spec.Tenant]
	for i, j := range fifo {
		if j == target {
			fifo = append(fifo[:i], fifo[i+1:]...)
			if len(fifo) == 0 {
				delete(b, target.spec.Tenant)
				if len(b) == 0 {
					delete(q.buckets, target.spec.Priority)
				}
			} else {
				b[target.spec.Tenant] = fifo
			}
			q.size--
			return true
		}
	}
	return false
}

// drain removes and returns every queued job (server shutdown).
func (q *queue) drain() []*job {
	var out []*job
	for _, b := range q.buckets {
		for _, fifo := range b {
			out = append(out, fifo...)
		}
	}
	q.buckets = map[int]map[string][]*job{}
	q.size = 0
	return out
}
