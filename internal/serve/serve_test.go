package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"trainbox/internal/metrics"
)

// gateRunner blocks every job until released (or cancelled), recording
// start order — the deterministic stand-in for real training.
type gateRunner struct {
	mu      sync.Mutex
	order   []string // "tenant/id" in dispatch order
	started chan string
	release chan error // one receive per completion; the value is the job's error
}

func newGateRunner() *gateRunner {
	return &gateRunner{
		started: make(chan string, 128),
		release: make(chan error, 128),
	}
}

func (g *gateRunner) Run(ctx context.Context, id string, spec JobSpec) (Outcome, error) {
	g.mu.Lock()
	g.order = append(g.order, spec.Tenant)
	g.mu.Unlock()
	g.started <- id
	select {
	case err := <-g.release:
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{FinalLoss: 0.5, Samples: spec.Items * spec.Epochs}, nil
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

func (g *gateRunner) dispatchOrder() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// waitStarted blocks until the runner has started a job, returning its id.
func (g *gateRunner) waitStarted(t *testing.T) string {
	t.Helper()
	select {
	case id := <-g.started:
		return id
	case <-time.After(5 * time.Second):
		t.Fatal("no job dispatched within 5s")
		return ""
	}
}

func newTestServer(t *testing.T, r Runner, opts ...Option) *Server {
	t.Helper()
	s, err := NewServer(append([]Option{WithRunner(r)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

// waitState polls until the job reaches the state or the deadline hits.
func waitState(t *testing.T, s *Server, id string, want State) Info {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		inf, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if inf.State == want {
			return inf
		}
		if inf.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, inf.State, inf.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, inf.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitValidation: malformed specs are rejected before touching
// quotas or the queue.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, newGateRunner())
	for _, spec := range []JobSpec{
		{},                           // no tenant
		{Tenant: "Bad-Tenant"},       // uppercase
		{Tenant: "9lead"},            // leading digit
		{Tenant: "ok", Priority: 10}, // priority out of range
		{Tenant: "ok", Priority: -1}, // negative priority
		{Tenant: "ok", Items: 100},   // workload too large
		{Tenant: "ok", Replicas: 9},  // too wide
		{Tenant: "ok", Name: "Bad"},  // bad label
		{Tenant: "ok", Epochs: 17},   // too long
		{Tenant: "ok", RequiredRate: -1} /* negative rate */} {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v: err = %v, want ErrBadSpec", spec, err)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.server.admitted"]; got != 0 {
		t.Errorf("admitted = %d after only invalid submissions", got)
	}
}

// TestLifecycleDone: submit → queued/running → done, with the outcome
// retrievable and counters attributed to the tenant.
func TestLifecycleDone(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g)
	inf, err := s.Submit(JobSpec{Tenant: "alice", Items: 4, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inf.State != StateQueued || inf.ID == "" {
		t.Fatalf("submit snapshot = %+v, want queued with an id", inf)
	}
	g.waitStarted(t)
	if _, err := s.Result(inf.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("result of a running job: err = %v, want ErrNotFinished", err)
	}
	g.release <- nil
	done := waitState(t, s, inf.ID, StateDone)
	if done.Outcome == nil || done.Outcome.Samples != 4*2 {
		t.Fatalf("outcome = %+v, want 8 samples", done.Outcome)
	}
	res, err := s.Result(inf.ID)
	if err != nil || res.Outcome == nil {
		t.Fatalf("result = %+v, %v", res, err)
	}
	snap := s.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"serve.tenant.alice.submitted": 1,
		"serve.tenant.alice.admitted":  1,
		"serve.tenant.alice.done":      1,
		"serve.server.done":            1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestLifecycleFailed: a runner error surfaces as state failed with the
// error preserved.
func TestLifecycleFailed(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g)
	inf, err := s.Submit(JobSpec{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	g.release <- errors.New("divergence detected")
	failed := waitState(t, s, inf.ID, StateFailed)
	if !strings.Contains(failed.Error, "divergence") {
		t.Errorf("failed job error = %q", failed.Error)
	}
	if got := s.Metrics().Snapshot().Counters["serve.tenant.bob.failed"]; got != 1 {
		t.Errorf("failed counter = %d", got)
	}
}

// TestCancelQueuedAndRunning: cancelling a queued job is immediate;
// cancelling a running job propagates through its context; cancelling a
// terminal job conflicts.
func TestCancelQueuedAndRunning(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1))
	run, err := s.Submit(JobSpec{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	queued, err := s.Submit(JobSpec{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if inf, _ := s.Status(queued.ID); inf.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s", inf.State)
	}
	if err := s.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, run.ID, StateCancelled)
	if err := s.Cancel(run.ID); !errors.Is(err, ErrAlreadyFinished) {
		t.Errorf("cancelling a terminal job: err = %v", err)
	}
	if err := s.Cancel("j-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancelling unknown id: err = %v", err)
	}
	if _, err := s.Result(run.ID); !errors.Is(err, ErrAlreadyFinished) {
		t.Errorf("result of cancelled job: err = %v", err)
	}
	if got := s.Metrics().Snapshot().Counters["serve.tenant.alice.cancelled"]; got != 2 {
		t.Errorf("cancelled counter = %d, want 2", got)
	}
}

// TestFairShareDispatch: with one run slot, dispatch alternates across
// tenants even when one tenant queued everything first.
func TestFairShareDispatch(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1))
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "greedy"}); err != nil {
			t.Fatal(err)
		}
	}
	g.waitStarted(t) // greedy's first job occupies the slot
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "patient"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		g.release <- nil
		if i < 4 {
			g.waitStarted(t)
		}
	}
	want := []string{"greedy", "patient", "greedy", "patient", "greedy"}
	got := g.dispatchOrder()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want fair-share %v", got, want)
	}
}

// TestPriorityDispatch: a high-priority job queued later jumps the
// whole lower class.
func TestPriorityDispatch(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1))
	if _, err := s.Submit(JobSpec{Tenant: "low"}); err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if _, err := s.Submit(JobSpec{Tenant: "low"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "vip", Priority: 5}); err != nil {
		t.Fatal(err)
	}
	g.release <- nil
	g.waitStarted(t)
	g.release <- nil
	g.waitStarted(t)
	g.release <- nil
	want := []string{"low", "vip", "low"}
	if got := g.dispatchOrder(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want priority-first %v", got, want)
	}
}

// TestTenantQuotaSheds: the quota caps a tenant's live jobs; other
// tenants are unaffected.
func TestTenantQuotaSheds(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1), WithTenantQuota(2))
	if _, err := s.Submit(JobSpec{Tenant: "hog"}); err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if _, err := s.Submit(JobSpec{Tenant: "hog"}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(JobSpec{Tenant: "hog"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "tenant quota" {
		t.Fatalf("third live job: err = %v, want quota shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Error("shed response has no retry-after hint")
	}
	if _, err := s.Submit(JobSpec{Tenant: "other"}); err != nil {
		t.Fatalf("other tenant shed by hog's quota: %v", err)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.tenant.hog.shed"]; got != 1 {
		t.Errorf("hog shed counter = %d", got)
	}
	if got := snap.Counters["serve.server.shed"]; got != 1 {
		t.Errorf("server shed counter = %d", got)
	}
}

// TestQueueLimitSheds: beyond the hard queue limit every tenant is shed.
func TestQueueLimitSheds(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1), WithQueueLimit(2))
	if _, err := s.Submit(JobSpec{Tenant: "t0"}); err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t) // slot occupied; queue now empties deterministically
	for _, tn := range []string{"t1", "t2"} {
		if _, err := s.Submit(JobSpec{Tenant: tn}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(JobSpec{Tenant: "t3"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue full" {
		t.Fatalf("overflow submission: err = %v, want queue-full shed", err)
	}
}

// TestPressureSheds: with the pool reporting no free devices, shedding
// starts at the lower pressure threshold.
func TestPressureSheds(t *testing.T) {
	g := newGateRunner()
	pressured := true
	s := newTestServer(t, g, WithMaxRunning(1), WithQueueLimit(64), WithPressureLimit(1),
		WithPressureSignal(func() bool { return pressured }))
	if _, err := s.Submit(JobSpec{Tenant: "t0"}); err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if _, err := s.Submit(JobSpec{Tenant: "t1"}); err != nil {
		t.Fatal(err) // depth 0 → 1: below nothing yet
	}
	_, err := s.Submit(JobSpec{Tenant: "t2"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "device pressure" {
		t.Fatalf("pressured submission: err = %v, want device-pressure shed", err)
	}
	pressured = false
	if _, err := s.Submit(JobSpec{Tenant: "t2"}); err != nil {
		t.Fatalf("pressure lifted but still shed: %v", err)
	}
}

// TestCloseCancelsEverythingAndReclaimsGoroutines: Close must cancel
// queued and running jobs, refuse new submissions, and leak nothing.
func TestCloseCancelsEverythingAndReclaimsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g := newGateRunner()
	s, err := NewServer(WithRunner(g), WithMaxRunning(2))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		inf, err := s.Submit(JobSpec{Tenant: "alice"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, inf.ID)
	}
	g.waitStarted(t)
	g.waitStarted(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		inf, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if inf.State != StateCancelled {
			t.Errorf("job %s state after close = %s, want cancelled", id, inf.State)
		}
	}
	if _, err := s.Submit(JobSpec{Tenant: "alice"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second close: err = %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d → %d: server leaked", before, after)
	}
}

// TestListFiltersByTenant: listings are submission-ordered and
// tenant-filterable.
func TestListFiltersByTenant(t *testing.T) {
	g := newGateRunner()
	s := newTestServer(t, g, WithMaxRunning(1))
	for _, tn := range []string{"a", "b", "a"} {
		if _, err := s.Submit(JobSpec{Tenant: tn}); err != nil {
			t.Fatal(err)
		}
	}
	g.waitStarted(t)
	if all := s.List(""); len(all) != 3 {
		t.Errorf("list all = %d jobs, want 3", len(all))
	}
	onlyA := s.List("a")
	if len(onlyA) != 2 || onlyA[0].ID >= onlyA[1].ID {
		t.Errorf("list a = %+v, want 2 jobs in submission order", onlyA)
	}
}

// TestEndToEndTrainingOnPool: the real backend — shared corpus, pooled
// devices, preppool registration, train.RunJobs — completes a job whose
// metrics land in both the serve.tenant.* and preppool.job.* namespaces.
func TestEndToEndTrainingOnPool(t *testing.T) {
	reg := metrics.NewRegistry()
	runner, pool, err := NewTrainBackend(2, 8, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, runner, WithMetrics(reg), WithPool(pool), WithMaxRunning(2))
	inf, err := s.Submit(JobSpec{Tenant: "alice", Items: 8, Epochs: 2, Replicas: 2, RequiredRate: 16000})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, inf.ID, StateDone)
	if done.Outcome == nil || done.Outcome.Samples == 0 {
		t.Fatalf("outcome = %+v", done.Outcome)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.tenant.alice.done"]; got != 1 {
		t.Errorf("tenant done counter = %d", got)
	}
	pooled := snap.Counters["preppool.job."+inf.ID+".pooled_samples"]
	if pooled == 0 {
		t.Errorf("job claimed 16000 samples/s but preppool saw no pooled samples")
	}
	if pool.FreeDevices() != 2 {
		t.Errorf("pool has %d free devices after the job closed, want 2", pool.FreeDevices())
	}
}
