package serve

import (
	"testing"

	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// TestServeSharedCacheAcrossTenants: two tenants training on the shared
// corpus behind one cache tier decode each key once between them, their
// outcomes are byte-identical to uncached runs of the same specs, and
// the cache's telemetry lands in the server's registry.
func TestServeSharedCacheAcrossTenants(t *testing.T) {
	const items = 8
	specA := JobSpec{Tenant: "alice", Items: items, Epochs: 3, Replicas: 2, Seed: 5}
	specB := JobSpec{Tenant: "bob", Items: items, Epochs: 3, Replicas: 2, Seed: 6}

	// Uncached oracle outcomes, one fresh runner per job so nothing is
	// shared between them.
	oracles := map[string]Outcome{}
	for name, spec := range map[string]JobSpec{"a": specA, "b": specB} {
		r, err := NewTrainRunner(items, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestServer(t, r, WithMaxRunning(1))
		inf, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		done := waitState(t, s, inf.ID, StateDone)
		if done.Outcome == nil {
			t.Fatalf("oracle %s: %+v", name, done)
		}
		oracles[name] = *done.Outcome
	}

	reg := metrics.NewRegistry()
	runner, err := NewTrainRunner(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := runner.EnableCache(64*units.MB, reg)
	s := newTestServer(t, runner, WithMetrics(reg), WithMaxRunning(2))
	infA, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	infB, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	doneA := waitState(t, s, infA.ID, StateDone)
	doneB := waitState(t, s, infB.ID, StateDone)
	if doneA.Outcome == nil || doneB.Outcome == nil {
		t.Fatalf("outcomes: %+v / %+v", doneA, doneB)
	}
	if doneA.Outcome.FinalLoss != oracles["a"].FinalLoss || doneA.Outcome.Samples != oracles["a"].Samples {
		t.Fatalf("tenant alice diverged from uncached oracle: %+v vs %+v", doneA.Outcome, oracles["a"])
	}
	if doneB.Outcome.FinalLoss != oracles["b"].FinalLoss || doneB.Outcome.Samples != oracles["b"].Samples {
		t.Fatalf("tenant bob diverged from uncached oracle: %+v vs %+v", doneB.Outcome, oracles["b"])
	}

	st := c.Stats()
	if st.Misses != items {
		t.Fatalf("decodes = %d, want %d: both tenants' epochs should share one decode per key", st.Misses, items)
	}
	if st.Hits == 0 {
		t.Fatal("cache recorded no hits across 2 tenants × 3 epochs")
	}
	snap := reg.Snapshot()
	if snap.Counters["dscache.serve.misses"] != items {
		t.Fatalf("dscache.serve.misses = %d, want %d", snap.Counters["dscache.serve.misses"], items)
	}
}

// TestServeCacheWithPoolBindsHostPath: with a device pool in front, the
// cache still serves the host half of each split epoch and the job
// completes with pooled samples flowing.
func TestServeCacheWithPoolBindsHostPath(t *testing.T) {
	reg := metrics.NewRegistry()
	runner, pool, err := NewTrainBackend(2, 8, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	c := runner.EnableCache(64*units.MB, reg)
	s := newTestServer(t, runner, WithMetrics(reg), WithPool(pool), WithMaxRunning(1))
	// Zero required rate: the pool grants no devices, so every epoch
	// runs on the job's host executor — which EnableCache must have
	// rebound through the shared tier even on the pool path.
	inf, err := s.Submit(JobSpec{Tenant: "carol", Items: 8, Epochs: 2, Replicas: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, inf.ID, StateDone)
	if done.Outcome == nil || done.Outcome.Samples == 0 {
		t.Fatalf("outcome = %+v", done.Outcome)
	}
	if st := c.Stats(); st.Misses == 0 {
		t.Fatal("cache never saw the host half of the split epochs")
	}
}
