package serve

import (
	"fmt"
	"testing"
)

func qjob(tenant string, prio int) *job {
	return &job{spec: JobSpec{Tenant: tenant, Priority: prio}}
}

// drainOrder pops everything with the given running counts and returns
// tenant order.
func drainOrder(q *queue, running map[string]int, last map[string]int64) []string {
	var out []string
	for {
		j := q.pop(func(t string) (int, int64) { return running[t], last[t] })
		if j == nil {
			return out
		}
		last[j.spec.Tenant] = j.dispatchSeq
		out = append(out, j.spec.Tenant)
	}
}

// TestQueuePriorityStrict: a higher priority class always empties
// before a lower one sees a dispatch.
func TestQueuePriorityStrict(t *testing.T) {
	q := newQueue()
	q.push(qjob("lo", 0))
	q.push(qjob("lo", 0))
	q.push(qjob("hi", 5))
	got := drainOrder(q, map[string]int{}, map[string]int64{})
	want := []string{"hi", "lo", "lo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestQueueFairShareRoundRobin: equal running counts round-robin across
// tenants instead of draining one tenant's FIFO first.
func TestQueueFairShareRoundRobin(t *testing.T) {
	q := newQueue()
	for i := 0; i < 3; i++ {
		q.push(qjob("a", 0))
	}
	for i := 0; i < 3; i++ {
		q.push(qjob("b", 0))
	}
	for i := 0; i < 3; i++ {
		q.push(qjob("c", 0))
	}
	got := drainOrder(q, map[string]int{}, map[string]int64{})
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want round-robin %v", got, want)
	}
}

// TestQueueFavoursTenantWithFewestRunning: max-min on running slots —
// the tenant already holding slots waits for the tenant holding none.
func TestQueueFavoursTenantWithFewestRunning(t *testing.T) {
	q := newQueue()
	q.push(qjob("greedy", 0))
	q.push(qjob("starved", 0))
	j := q.pop(func(t string) (int, int64) {
		if t == "greedy" {
			return 3, 0
		}
		return 0, 0
	})
	if j.spec.Tenant != "starved" {
		t.Fatalf("dispatched %q, want the tenant with no running slots", j.spec.Tenant)
	}
}

// TestQueueRemove: cancelling a queued job removes exactly it and keeps
// the bookkeeping consistent.
func TestQueueRemove(t *testing.T) {
	q := newQueue()
	a1, a2 := qjob("a", 0), qjob("a", 0)
	q.push(a1)
	q.push(a2)
	if !q.remove(a1) {
		t.Fatal("queued job not found for removal")
	}
	if q.remove(a1) {
		t.Fatal("removed the same job twice")
	}
	if q.len() != 1 {
		t.Fatalf("queue len = %d after removal, want 1", q.len())
	}
	if j := q.pop(func(string) (int, int64) { return 0, 0 }); j != a2 {
		t.Fatal("wrong job left in queue")
	}
	if q.len() != 0 || q.pop(func(string) (int, int64) { return 0, 0 }) != nil {
		t.Fatal("queue not empty after draining")
	}
}

// TestQueueDrain: shutdown returns every queued job across classes.
func TestQueueDrain(t *testing.T) {
	q := newQueue()
	q.push(qjob("a", 0))
	q.push(qjob("b", 3))
	q.push(qjob("c", 9))
	if got := q.drain(); len(got) != 3 {
		t.Fatalf("drained %d jobs, want 3", len(got))
	}
	if q.len() != 0 {
		t.Fatalf("queue len = %d after drain", q.len())
	}
}
