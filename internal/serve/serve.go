// Package serve is the multi-tenant training front-end: a long-running
// submission service that turns the prep-pool from an in-process
// library into a schedulable shared resource. Tenants submit training
// jobs over a small HTTP API (see Handler); the server admits them
// under per-tenant quotas, queues them priority-first with max-min
// fair-share across tenants, dispatches up to a fixed number of
// concurrent runs onto internal/preppool + train.RunJobs, and sheds
// load with 429 + Retry-After once queue depth or free-device pressure
// crosses its thresholds.
//
// The layering mirrors the paper's Section V-D split: the prep-pool's
// rebalancer divides *devices* max-min across the jobs that are
// running, while this package's queue divides *run slots* max-min
// across the tenants that are waiting — so fairness holds at both the
// device and the job granularity.
//
// Every tenant gets its own metric namespace, serve.tenant.<name>.*,
// under the repo-wide subsystem.object.metric scheme (metrics.ValidName
// accepts every name the server registers; the tenant-name grammar is
// restricted exactly so that this holds).
package serve

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"time"

	"trainbox/internal/metrics"
	"trainbox/internal/preppool"
	"trainbox/internal/train"
)

// State is one job's position in the lifecycle state machine:
//
//	queued ←──────────┐
//	   │   (resume)   │
//	   ├──────→ suspended
//	   │  (suspend)   ↑
//	   ↓   (suspend/preempt)
//	running ──────────┘
//	   ├───→ done
//	   ├───→ failed
//	   └───→ cancelled   (queued and suspended jobs can also be cancelled)
//
// queued, running, and suspended are the live states; done, failed,
// and cancelled are terminal. A suspended job holds its latest
// epoch-boundary checkpoint (when its backend is elastic) and resumes
// bit-identically from it; preempted jobs pass through suspended and
// requeue automatically.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSuspended State = "suspended"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// nameRE restricts tenant and job names so that every derived metric
// name ("serve.tenant.<tenant>.submitted", "preppool.job.<id>.leases")
// stays valid under metrics.ValidName and preppool's job-name grammar.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_-]{0,31}$`)

// MaxPriority bounds JobSpec.Priority (higher runs first).
const MaxPriority = 9

// JobSpec is one training-job submission.
type JobSpec struct {
	// Tenant attributes the job for quotas, fair-share, and telemetry.
	// Must match ^[a-z][a-z0-9_-]{0,31}$.
	Tenant string `json:"tenant"`
	// Name is an optional tenant-side label (same grammar as Tenant);
	// the server always addresses the job by its assigned ID.
	Name string `json:"name,omitempty"`
	// Priority in [0, MaxPriority]; higher-priority jobs dispatch first
	// and register their prep-pool claim in a higher rebalancing tier.
	Priority int `json:"priority,omitempty"`
	// Items is the synthetic dataset size (defaults to 8, capped at 64;
	// raised to Replicas when smaller).
	Items int `json:"items,omitempty"`
	// Epochs is the number of training passes (defaults to 2, capped at 16).
	Epochs int `json:"epochs,omitempty"`
	// Replicas is the data-parallel width (defaults to 1, capped at 8).
	Replicas int `json:"replicas,omitempty"`
	// RequiredRate is the job's claim on the shared prep-pool in
	// samples/s; 0 keeps preparation on the host path.
	RequiredRate float64 `json:"required_rate,omitempty"`
	// Seed makes the job's dataset and training run deterministic
	// (defaults to 1).
	Seed int64 `json:"seed,omitempty"`
}

// ErrBadSpec marks submissions rejected by validation (HTTP 400).
var ErrBadSpec = errors.New("serve: invalid job spec")

// normalize validates the spec and fills defaults in place.
func (sp *JobSpec) normalize() error {
	if !nameRE.MatchString(sp.Tenant) {
		return fmt.Errorf("%w: tenant %q must match %s", ErrBadSpec, sp.Tenant, nameRE)
	}
	if sp.Name != "" && !nameRE.MatchString(sp.Name) {
		return fmt.Errorf("%w: name %q must match %s", ErrBadSpec, sp.Name, nameRE)
	}
	if sp.Priority < 0 || sp.Priority > MaxPriority {
		return fmt.Errorf("%w: priority %d outside [0,%d]", ErrBadSpec, sp.Priority, MaxPriority)
	}
	if sp.Items < 0 || sp.Epochs < 0 || sp.Replicas < 0 || sp.RequiredRate < 0 {
		return fmt.Errorf("%w: negative workload parameters", ErrBadSpec)
	}
	if sp.Items == 0 {
		sp.Items = 8
	}
	if sp.Epochs == 0 {
		sp.Epochs = 2
	}
	if sp.Replicas == 0 {
		sp.Replicas = 1
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Items > 64 || sp.Epochs > 16 || sp.Replicas > 8 {
		return fmt.Errorf("%w: workload too large (items ≤ 64, epochs ≤ 16, replicas ≤ 8)", ErrBadSpec)
	}
	if sp.Items < sp.Replicas {
		sp.Items = sp.Replicas
	}
	return nil
}

// Outcome is a finished job's training summary.
type Outcome struct {
	FinalLoss float64 `json:"final_loss"`
	Samples   int     `json:"samples"`
	Steps     int     `json:"steps"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// Info is a point-in-time snapshot of one job.
type Info struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Name      string    `json:"name,omitempty"`
	Priority  int       `json:"priority"`
	State     State     `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Outcome   *Outcome  `json:"outcome,omitempty"`
	// Preemptions counts how many times the server suspended this job
	// to free capacity for a higher-priority submission.
	Preemptions int `json:"preemptions,omitempty"`
	// CheckpointEpochs is how many training epochs the job's banked
	// checkpoint covers (0 = no checkpoint; a resume replays nothing).
	CheckpointEpochs int `json:"checkpoint_epochs,omitempty"`
}

// job is the server-side record; guarded by Server.mu.
type job struct {
	id              string
	spec            JobSpec
	state           State
	err             string
	submitted       time.Time
	started         time.Time
	finished        time.Time
	outcome         *Outcome
	cancel          context.CancelFunc // set while running
	cancelRequested bool
	dispatchSeq     int64

	// Elastic lifecycle (only populated when the runner is an
	// ElasticRunner): the live run's suspender, the latest
	// epoch-boundary checkpoint banked by the run's sink, and whether a
	// park/requeue is pending.
	suspender        *train.Suspender
	checkpoint       *train.Checkpoint
	suspendRequested bool
	preempted        bool // suspendRequested by the server: requeue on park
	preemptions      int
}

func (j *job) info() Info {
	inf := Info{
		ID: j.id, Tenant: j.spec.Tenant, Name: j.spec.Name,
		Priority: j.spec.Priority, State: j.state, Error: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Preemptions: j.preemptions,
	}
	if j.outcome != nil {
		o := *j.outcome
		inf.Outcome = &o
	}
	if j.checkpoint != nil {
		inf.CheckpointEpochs = j.checkpoint.Epoch + 1
	}
	return inf
}

// tenant is per-tenant accounting plus its metric namespace.
type tenant struct {
	name         string
	queued       int
	running      int
	suspended    int
	lastDispatch int64

	cSubmitted   *metrics.Counter // serve.tenant.<name>.submitted
	cAdmitted    *metrics.Counter // serve.tenant.<name>.admitted
	cShed        *metrics.Counter // serve.tenant.<name>.shed
	cDone        *metrics.Counter // serve.tenant.<name>.done
	cFailed      *metrics.Counter // serve.tenant.<name>.failed
	cCancelled   *metrics.Counter // serve.tenant.<name>.cancelled
	cSuspensions *metrics.Counter // serve.tenant.<name>.suspensions
	cResumes     *metrics.Counter // serve.tenant.<name>.resumes
	gQueued      *metrics.Gauge   // serve.tenant.<name>.queued
	gRunning     *metrics.Gauge   // serve.tenant.<name>.running
	gSuspended   *metrics.Gauge   // serve.tenant.<name>.suspended
}

// ShedError is an admission rejection: the request was valid but the
// server is not accepting it right now (HTTP 429 + Retry-After).
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Lifecycle errors surfaced by the API layer.
var (
	ErrNotFound        = errors.New("serve: no such job")
	ErrClosed          = errors.New("serve: server is shut down")
	ErrNotFinished     = errors.New("serve: job has not finished")
	ErrAlreadyFinished = errors.New("serve: job already finished")
	// ErrNotElastic: the job is running on a backend without
	// suspend/resume support (the Runner is not an ElasticRunner).
	ErrNotElastic = errors.New("serve: job backend does not support suspension")
	// ErrAlreadySuspended: suspend of a job already suspended.
	ErrAlreadySuspended = errors.New("serve: job already suspended")
	// ErrNotSuspended: resume of a job that is not suspended.
	ErrNotSuspended = errors.New("serve: job is not suspended")
)

// Option configures a Server at construction.
type Option func(*Server) error

// WithMaxRunning caps concurrently running training jobs (default 4).
func WithMaxRunning(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("serve: max running must be ≥ 1, got %d", n)
		}
		s.cfg.maxRunning = n
		return nil
	}
}

// WithQueueLimit sets the queue depth above which every submission is
// shed with 429 (default 64).
func WithQueueLimit(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("serve: queue limit must be ≥ 1, got %d", n)
		}
		s.cfg.queueLimit = n
		return nil
	}
}

// WithPressureLimit sets the lower queue-depth threshold that applies
// while the prep-pool has no free device — shedding starts earlier when
// device pressure means queued jobs will not start soon (default
// queueLimit/4, minimum 1).
func WithPressureLimit(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("serve: pressure limit must be ≥ 1, got %d", n)
		}
		s.cfg.pressureLimit = n
		return nil
	}
}

// WithTenantQuota caps one tenant's live (queued + running) jobs
// (default 8); submissions beyond it are shed with 429.
func WithTenantQuota(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("serve: tenant quota must be ≥ 1, got %d", n)
		}
		s.cfg.tenantQuota = n
		return nil
	}
}

// WithRetryAfter sets the Retry-After hint attached to shed responses
// (default 1s).
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("serve: retry-after must be positive")
		}
		s.cfg.retryAfter = d
		return nil
	}
}

// WithMetrics attaches the registry the server (and its default
// TrainRunner's pool jobs, when they share it) reports into.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) error {
		if reg == nil {
			return fmt.Errorf("serve: WithMetrics needs a registry")
		}
		s.reg = reg
		return nil
	}
}

// WithPool wires the shared prep-pool: the default TrainRunner
// dispatches onto it, and its free-device count feeds the
// pressure-shedding signal.
func WithPool(pool *preppool.Pool) Option {
	return func(s *Server) error {
		if pool == nil {
			return fmt.Errorf("serve: WithPool needs a pool")
		}
		s.pool = pool
		s.cfg.pressure = func() bool { return pool.FreeDevices() == 0 }
		return nil
	}
}

// WithPressureSignal overrides the free-device pressure signal (tests
// and non-pool integrations).
func WithPressureSignal(f func() bool) Option {
	return func(s *Server) error {
		if f == nil {
			return fmt.Errorf("serve: WithPressureSignal needs a function")
		}
		s.cfg.pressure = f
		return nil
	}
}

// WithRunner sets the training backend. Required — use the TrainRunner
// from NewTrainBackend for real training, or any Runner for tests.
func WithRunner(r Runner) Option {
	return func(s *Server) error {
		if r == nil {
			return fmt.Errorf("serve: WithRunner needs a runner")
		}
		s.runner = r
		return nil
	}
}

type config struct {
	maxRunning    int
	queueLimit    int
	pressureLimit int
	tenantQuota   int
	retryAfter    time.Duration
	pressure      func() bool
}

// Server is the multi-tenant front-end. Construct with NewServer, serve
// its Handler, and Close it to cancel every live job and reclaim every
// goroutine.
type Server struct {
	cfg    config
	runner Runner
	reg    *metrics.Registry
	pool   *preppool.Pool

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // job IDs in submission order, for stable listings
	q         *queue
	tenants   map[string]*tenant
	running   int
	suspended int
	seq       int64
	closed    bool

	wake       chan struct{}
	schedDone  chan struct{}
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	cSubmitted   *metrics.Counter   // serve.server.submitted
	cAdmitted    *metrics.Counter   // serve.server.admitted
	cShed        *metrics.Counter   // serve.server.shed
	cDone        *metrics.Counter   // serve.server.done
	cFailed      *metrics.Counter   // serve.server.failed
	cCancelled   *metrics.Counter   // serve.server.cancelled
	cSuspensions *metrics.Counter   // serve.server.suspensions
	cResumes     *metrics.Counter   // serve.server.resumes
	cPreemptions *metrics.Counter   // serve.server.preemptions
	gQueue       *metrics.Gauge     // serve.server.queue_depth
	gRunning     *metrics.Gauge     // serve.server.running
	gSuspended   *metrics.Gauge     // serve.server.suspended
	hSubmitNs    *metrics.Histogram // serve.server.submit_ns
}

// NewServer builds and starts the front-end (its scheduler goroutine
// runs until Close).
func NewServer(opts ...Option) (*Server, error) {
	s := &Server{
		cfg: config{
			maxRunning:  4,
			queueLimit:  64,
			tenantQuota: 8,
			retryAfter:  time.Second,
		},
		jobs:      map[string]*job{},
		q:         newQueue(),
		tenants:   map[string]*tenant{},
		wake:      make(chan struct{}, 1),
		schedDone: make(chan struct{}),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.cfg.pressureLimit == 0 {
		s.cfg.pressureLimit = max(1, s.cfg.queueLimit/4)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	if s.runner == nil {
		return nil, fmt.Errorf("serve: a training backend is required (WithRunner; see NewTrainBackend)")
	}
	s.cSubmitted = s.reg.Counter("serve.server.submitted")
	s.cAdmitted = s.reg.Counter("serve.server.admitted")
	s.cShed = s.reg.Counter("serve.server.shed")
	s.cDone = s.reg.Counter("serve.server.done")
	s.cFailed = s.reg.Counter("serve.server.failed")
	s.cCancelled = s.reg.Counter("serve.server.cancelled")
	s.cSuspensions = s.reg.Counter("serve.server.suspensions")
	s.cResumes = s.reg.Counter("serve.server.resumes")
	s.cPreemptions = s.reg.Counter("serve.server.preemptions")
	s.gQueue = s.reg.Gauge("serve.server.queue_depth")
	s.gRunning = s.reg.Gauge("serve.server.running")
	s.gSuspended = s.reg.Gauge("serve.server.suspended")
	s.hSubmitNs = s.reg.Histogram("serve.server.submit_ns")
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	go s.schedule()
	return s, nil
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// tenantLocked finds or creates the tenant record and its namespace.
func (s *Server) tenantLocked(name string) *tenant {
	t := s.tenants[name]
	if t == nil {
		prefix := "serve.tenant." + name + "."
		t = &tenant{
			name:         name,
			cSubmitted:   s.reg.Counter(prefix + "submitted"),
			cAdmitted:    s.reg.Counter(prefix + "admitted"),
			cShed:        s.reg.Counter(prefix + "shed"),
			cDone:        s.reg.Counter(prefix + "done"),
			cFailed:      s.reg.Counter(prefix + "failed"),
			cCancelled:   s.reg.Counter(prefix + "cancelled"),
			cSuspensions: s.reg.Counter(prefix + "suspensions"),
			cResumes:     s.reg.Counter(prefix + "resumes"),
			gQueued:      s.reg.Gauge(prefix + "queued"),
			gRunning:     s.reg.Gauge(prefix + "running"),
			gSuspended:   s.reg.Gauge(prefix + "suspended"),
		}
		s.tenants[name] = t
	}
	return t
}

// Submit validates and admits one job, returning its queued snapshot.
// Admission rejections return *ShedError; validation failures wrap
// ErrBadSpec; a closed server returns ErrClosed.
func (s *Server) Submit(spec JobSpec) (Info, error) {
	start := time.Now()
	if err := spec.normalize(); err != nil {
		return Info{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Info{}, ErrClosed
	}
	t := s.tenantLocked(spec.Tenant)
	t.cSubmitted.Inc()
	s.cSubmitted.Inc()

	if shed := s.shedReasonLocked(t); shed != "" {
		// Device pressure is the one admission failure the server can
		// relieve itself: instead of only shedding the new work, preempt
		// the lowest-priority running elastic job when the submission
		// outranks it — the victim parks a checkpoint at its next epoch
		// boundary, requeues, and resumes once capacity frees.
		if shed != "device pressure" || !s.preemptLocked(spec.Priority) {
			t.cShed.Inc()
			s.cShed.Inc()
			retry := s.cfg.retryAfter
			s.mu.Unlock()
			return Info{}, &ShedError{Reason: shed, RetryAfter: retry}
		}
	}

	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%d", s.seq),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.q.push(j)
	t.queued++
	t.cAdmitted.Inc()
	t.gQueued.SetInt(int64(t.queued))
	s.cAdmitted.Inc()
	s.gQueue.SetInt(int64(s.q.len()))
	inf := j.info()
	s.mu.Unlock()

	s.kick()
	s.hSubmitNs.ObserveDuration(time.Since(start))
	return inf, nil
}

// shedReasonLocked evaluates the admission-control policy in order:
// per-tenant quota (suspended jobs still count — a parked job holds its
// tenant's claim), hard queue limit, then the earlier pressure limit
// that applies while the prep-pool has no free device.
func (s *Server) shedReasonLocked(t *tenant) string {
	if t.queued+t.running+t.suspended >= s.cfg.tenantQuota {
		return "tenant quota"
	}
	if s.q.len() >= s.cfg.queueLimit {
		return "queue full"
	}
	if s.cfg.pressure != nil && s.q.len() >= s.cfg.pressureLimit && s.cfg.pressure() {
		return "device pressure"
	}
	return ""
}

// preemptLocked picks the lowest-priority running elastic job strictly
// below prio and asks it to park at its next epoch boundary. The victim
// frees its run slot and pool leases when it parks; finish() requeues
// it automatically (state suspended → queued) so it resumes — from its
// checkpoint, bit-identically — once capacity frees. Returns whether a
// victim was found.
func (s *Server) preemptLocked(prio int) bool {
	var victim *job
	for _, j := range s.jobs {
		if j.state != StateRunning || j.suspender == nil ||
			j.suspendRequested || j.cancelRequested || j.spec.Priority >= prio {
			continue
		}
		// Lowest priority first; among equals prefer the youngest run —
		// per-epoch checkpoints mean the least banked work is re-proven.
		if victim == nil || j.spec.Priority < victim.spec.Priority ||
			(j.spec.Priority == victim.spec.Priority && j.started.After(victim.started)) {
			victim = j
		}
	}
	if victim == nil {
		return false
	}
	victim.suspendRequested = true
	victim.preempted = true
	victim.preemptions++
	victim.suspender.Suspend()
	s.cPreemptions.Inc()
	return true
}

// kick wakes the scheduler without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// schedule is the dispatch loop: whenever woken it fills every free run
// slot from the queue, fair-share order.
func (s *Server) schedule() {
	defer close(s.schedDone)
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.wake:
		}
		s.mu.Lock()
		for !s.closed && s.running < s.cfg.maxRunning {
			j := s.q.pop(func(name string) (int, int64) {
				t := s.tenants[name]
				return t.running, t.lastDispatch
			})
			if j == nil {
				break
			}
			s.startLocked(j)
		}
		s.gQueue.SetInt(int64(s.q.len()))
		s.mu.Unlock()
	}
}

// startLocked moves a popped job to running and launches its runner.
// On an elastic backend the run is suspendable: it gets a fresh
// Suspender, a checkpoint sink banking every epoch boundary into the
// job record (crash-safe: the newest checkpoint survives the runner
// goroutine), and — when resuming — the banked checkpoint to restore.
func (s *Server) startLocked(j *job) {
	t := s.tenants[j.spec.Tenant]
	t.queued--
	t.running++
	t.lastDispatch = j.dispatchSeq
	t.gQueued.SetInt(int64(t.queued))
	t.gRunning.SetInt(int64(t.running))
	j.state = StateRunning
	j.suspendRequested = false
	j.preempted = false
	if j.started.IsZero() {
		j.started = time.Now()
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	s.running++
	s.gRunning.SetInt(int64(s.running))

	run := func(ctx context.Context) (Outcome, error) {
		return s.runner.Run(ctx, j.id, j.spec)
	}
	if er, ok := s.runner.(ElasticRunner); ok {
		e := Elastic{Suspender: train.NewSuspender()}
		j.suspender = e.Suspender
		if j.checkpoint != nil {
			cp := j.checkpoint.Clone()
			e.Restore = &cp
		}
		e.Checkpoint = func(cp train.Checkpoint) {
			s.mu.Lock()
			j.checkpoint = &cp
			s.mu.Unlock()
		}
		run = func(ctx context.Context) (Outcome, error) {
			return er.RunElastic(ctx, j.id, j.spec, e)
		}
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		out, err := run(ctx)
		s.finish(j, out, err)
	}()
}

// finish records a runner's outcome and frees the slot.
//
// Suspension classification is deliberately two-tiered. A clean park
// surfaces train.ErrSuspended. But a preempted or suspend-requested run
// that instead crashes mid-epoch is still recoverable whenever an
// epoch-boundary checkpoint was banked: the job parks on that checkpoint
// rather than failing — nothing admitted is lost to a racy shutdown.
// A cancel request always outranks a pending suspension.
func (s *Server) finish(j *job, out Outcome, err error) {
	s.mu.Lock()
	t := s.tenants[j.spec.Tenant]
	t.running--
	t.gRunning.SetInt(int64(t.running))
	s.running--
	s.gRunning.SetInt(int64(s.running))
	j.suspender = nil
	// A park that races Close classifies as cancelled, like everything
	// else still live at shutdown — nothing may re-enter a live state.
	suspended := !s.closed && !j.cancelRequested && err != nil &&
		(errors.Is(err, train.ErrSuspended) ||
			(j.suspendRequested && j.checkpoint != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)))
	switch {
	case suspended:
		j.state = StateSuspended
		j.err = ""
		t.suspended++
		t.gSuspended.SetInt(int64(t.suspended))
		t.cSuspensions.Inc()
		s.suspended++
		s.gSuspended.SetInt(int64(s.suspended))
		s.cSuspensions.Inc()
		if j.preempted {
			// Preemption requeues automatically: the job resumes from
			// its checkpoint as soon as a slot (and devices) free up.
			s.resumeLocked(j)
		}
	case err == nil:
		j.state = StateDone
		j.finished = time.Now()
		j.outcome = &out
		j.checkpoint = nil
		t.cDone.Inc()
		s.cDone.Inc()
	case j.cancelRequested || errors.Is(err, train.ErrSuspended) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.finished = time.Now()
		j.err = err.Error()
		j.checkpoint = nil
		t.cCancelled.Inc()
		s.cCancelled.Inc()
	default:
		j.state = StateFailed
		j.finished = time.Now()
		j.err = err.Error()
		j.checkpoint = nil
		t.cFailed.Inc()
		s.cFailed.Inc()
	}
	s.gQueue.SetInt(int64(s.q.len()))
	s.mu.Unlock()
	s.kick()
}

// Status returns a job snapshot.
func (s *Server) Status(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Info{}, ErrNotFound
	}
	return j.info(), nil
}

// Result returns a done job's snapshot (including its Outcome).
// Live jobs return ErrNotFinished; failed or cancelled jobs return
// ErrAlreadyFinished with their terminal state in the message.
func (s *Server) Result(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Info{}, ErrNotFound
	}
	switch {
	case j.state == StateDone:
		return j.info(), nil
	case j.state.Terminal():
		return j.info(), fmt.Errorf("%w: job %s is %s, not done", ErrAlreadyFinished, id, j.state)
	default:
		return j.info(), fmt.Errorf("%w: job %s is %s", ErrNotFinished, id, j.state)
	}
}

// Cancel stops a queued or running job. Terminal jobs return
// ErrAlreadyFinished; unknown IDs ErrNotFound. Cancellation of a
// running job is asynchronous — poll Status for "cancelled".
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.q.remove(j)
		t := s.tenants[j.spec.Tenant]
		t.queued--
		t.gQueued.SetInt(int64(t.queued))
		s.gQueue.SetInt(int64(s.q.len()))
		j.state = StateCancelled
		j.finished = time.Now()
		t.cCancelled.Inc()
		s.cCancelled.Inc()
		s.mu.Unlock()
		return nil
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		s.mu.Unlock()
		cancel()
		return nil
	case StateSuspended:
		t := s.tenants[j.spec.Tenant]
		t.suspended--
		t.gSuspended.SetInt(int64(t.suspended))
		s.suspended--
		s.gSuspended.SetInt(int64(s.suspended))
		j.state = StateCancelled
		j.checkpoint = nil
		j.finished = time.Now()
		t.cCancelled.Inc()
		s.cCancelled.Inc()
		s.mu.Unlock()
		return nil
	default:
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", ErrAlreadyFinished, id, j.state)
	}
}

// Suspend parks a live job. A queued job is suspended immediately (it
// has no state to checkpoint); a running job is asked to park at its
// next epoch boundary — asynchronous, poll Status for "suspended" —
// which requires an elastic backend (ErrNotElastic otherwise). The
// suspended job keeps counting toward its tenant's quota, and resumes
// only via Resume. Suspended jobs return ErrAlreadySuspended, terminal
// jobs ErrAlreadyFinished.
func (s *Server) Suspend(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	j := s.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.q.remove(j)
		t := s.tenants[j.spec.Tenant]
		t.queued--
		t.gQueued.SetInt(int64(t.queued))
		t.suspended++
		t.gSuspended.SetInt(int64(t.suspended))
		t.cSuspensions.Inc()
		s.gQueue.SetInt(int64(s.q.len()))
		s.suspended++
		s.gSuspended.SetInt(int64(s.suspended))
		s.cSuspensions.Inc()
		j.state = StateSuspended
		return nil
	case StateRunning:
		if j.suspender == nil {
			return fmt.Errorf("%w: job %s", ErrNotElastic, id)
		}
		if j.cancelRequested {
			return fmt.Errorf("%w: job %s is being cancelled", ErrAlreadyFinished, id)
		}
		// Idempotent while the park is in flight; the epoch boundary
		// that honors it delivers the checkpoint through the sink.
		j.suspendRequested = true
		j.suspender.Suspend()
		return nil
	case StateSuspended:
		return fmt.Errorf("%w: job %s", ErrAlreadySuspended, id)
	default:
		return fmt.Errorf("%w: job %s is %s", ErrAlreadyFinished, id, j.state)
	}
}

// Resume requeues a suspended job; it re-enters dispatch at its
// priority and — when its backend banked a checkpoint — restores from
// it, continuing bit-identically with the uninterrupted run. Jobs in
// any other live state return ErrNotSuspended, terminal jobs
// ErrAlreadyFinished.
func (s *Server) Resume(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case j == nil:
		s.mu.Unlock()
		return ErrNotFound
	case j.state.Terminal():
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", ErrAlreadyFinished, id, j.state)
	case j.state != StateSuspended:
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", ErrNotSuspended, id, j.state)
	}
	s.resumeLocked(j)
	s.gQueue.SetInt(int64(s.q.len()))
	s.mu.Unlock()
	s.kick()
	return nil
}

// resumeLocked moves a suspended job back into the dispatch queue.
func (s *Server) resumeLocked(j *job) {
	t := s.tenants[j.spec.Tenant]
	t.suspended--
	t.gSuspended.SetInt(int64(t.suspended))
	t.queued++
	t.gQueued.SetInt(int64(t.queued))
	t.cResumes.Inc()
	s.suspended--
	s.gSuspended.SetInt(int64(s.suspended))
	s.cResumes.Inc()
	j.state = StateQueued
	j.suspendRequested = false
	j.preempted = false
	s.q.push(j)
}

// List returns snapshots in submission order, optionally filtered by
// tenant ("" = all).
func (s *Server) List(tenantName string) []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenantName != "" && j.spec.Tenant != tenantName {
			continue
		}
		out = append(out, j.info())
	}
	return out
}

// Stats is the health endpoint's summary. The per-state tallies carry
// the no-lost-jobs invariant every admitted job satisfies at all times:
//
//	Jobs == QueueDepth + Running + Suspended + Done + Failed + Cancelled
type Stats struct {
	QueueDepth  int  `json:"queue_depth"`
	Running     int  `json:"running"`
	Suspended   int  `json:"suspended"`
	Done        int  `json:"done"`
	Failed      int  `json:"failed"`
	Cancelled   int  `json:"cancelled"`
	MaxRunning  int  `json:"max_running"`
	Jobs        int  `json:"jobs"`
	Tenants     int  `json:"tenants"`
	Pool        bool `json:"pool"`
	FreeDevices int  `json:"free_devices"`
	Closed      bool `json:"closed"`
}

// Stats reports the server's live occupancy.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth: s.q.len(),
		Running:    s.running,
		Suspended:  s.suspended,
		MaxRunning: s.cfg.maxRunning,
		Jobs:       len(s.jobs),
		Tenants:    len(s.tenants),
		Pool:       s.pool != nil,
		Closed:     s.closed,
	}
	for _, j := range s.jobs {
		switch j.state {
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	s.mu.Unlock()
	if s.pool != nil {
		st.FreeDevices = s.pool.FreeDevices()
	} else {
		st.FreeDevices = -1
	}
	return st
}

// Close shuts the front-end down: queued and suspended jobs become
// cancelled, running jobs are cancelled through their contexts, and
// Close blocks until the scheduler and every runner goroutine have
// exited. Safe to call once; a second Close returns ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	now := time.Now()
	for _, j := range s.q.drain() {
		t := s.tenants[j.spec.Tenant]
		t.queued--
		t.gQueued.SetInt(int64(t.queued))
		j.state = StateCancelled
		j.err = "server shut down"
		j.finished = now
		t.cCancelled.Inc()
		s.cCancelled.Inc()
	}
	for _, j := range s.jobs {
		if j.state != StateSuspended {
			continue
		}
		t := s.tenants[j.spec.Tenant]
		t.suspended--
		t.gSuspended.SetInt(int64(t.suspended))
		s.suspended--
		j.state = StateCancelled
		j.checkpoint = nil
		j.err = "server shut down"
		j.finished = now
		t.cCancelled.Inc()
		s.cCancelled.Inc()
	}
	s.gQueue.SetInt(0)
	s.gSuspended.SetInt(0)
	s.mu.Unlock()

	s.baseCancel()
	<-s.schedDone
	s.wg.Wait()
	return nil
}
