// Package loadtest drives synthetic multi-tenant load against a serve
// front-end and checks the fairness and shedding invariants the server
// promises. It speaks either to an in-process *serve.Server or to a
// remote one over its HTTP API, so the same harness backs unit tests,
// the trainbox-loadgen CLI, and the CI serving gate.
package loadtest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"trainbox/internal/serve"
)

// Client is the slice of the serving API the generator needs.
type Client interface {
	Submit(spec serve.JobSpec) (serve.Info, error)
	Status(id string) (serve.Info, error)
	Cancel(id string) error
	Suspend(id string) error
	Resume(id string) error
}

// Direct adapts an in-process server.
type Direct struct{ Server *serve.Server }

func (d Direct) Submit(spec serve.JobSpec) (serve.Info, error) { return d.Server.Submit(spec) }
func (d Direct) Status(id string) (serve.Info, error)          { return d.Server.Status(id) }
func (d Direct) Cancel(id string) error                        { return d.Server.Cancel(id) }
func (d Direct) Suspend(id string) error                       { return d.Server.Suspend(id) }
func (d Direct) Resume(id string) error                        { return d.Server.Resume(id) }

// HTTP speaks to a remote front-end at BaseURL (e.g.
// "http://127.0.0.1:8080"). Shed responses (429) are converted back
// into *serve.ShedError so the generator counts them uniformly.
type HTTP struct {
	BaseURL string
	Client  *http.Client
}

func (h HTTP) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h HTTP) do(method, path string, body, out any) (*http.Response, error) {
	var rd *strings.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = strings.NewReader(string(b))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, h.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if secs := resp.Header.Get("Retry-After"); secs != "" {
				var n int
				if _, err := fmt.Sscan(secs, &n); err == nil && n > 0 {
					retry = time.Duration(n) * time.Second
				} else {
					return resp, fmt.Errorf("loadtest: 429 with malformed Retry-After %q", secs)
				}
			} else {
				return resp, errors.New("loadtest: 429 without Retry-After header")
			}
			return resp, &serve.ShedError{Reason: strings.TrimPrefix(e.Error, "serve: "), RetryAfter: retry}
		}
		err := fmt.Errorf("loadtest: %s %s → %d: %s", method, path, resp.StatusCode, e.Error)
		if resp.StatusCode == http.StatusConflict {
			// Map 409 bodies back onto the in-process sentinels so the
			// generator classifies races (cancel/suspend/resume of a job
			// that just moved on) uniformly across both clients.
			switch {
			case strings.Contains(e.Error, "does not support suspension"):
				err = fmt.Errorf("%w: %s", serve.ErrNotElastic, e.Error)
			case strings.Contains(e.Error, "already suspended"):
				err = fmt.Errorf("%w: %s", serve.ErrAlreadySuspended, e.Error)
			case strings.Contains(e.Error, "is not suspended"):
				err = fmt.Errorf("%w: %s", serve.ErrNotSuspended, e.Error)
			default:
				err = fmt.Errorf("%w: %s", serve.ErrAlreadyFinished, e.Error)
			}
		}
		return resp, err
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp, err
		}
	}
	return resp, nil
}

func (h HTTP) Submit(spec serve.JobSpec) (serve.Info, error) {
	var inf serve.Info
	_, err := h.do("POST", "/v1/jobs", spec, &inf)
	return inf, err
}

func (h HTTP) Status(id string) (serve.Info, error) {
	var inf serve.Info
	_, err := h.do("GET", "/v1/jobs/"+id, nil, &inf)
	return inf, err
}

func (h HTTP) Cancel(id string) error {
	_, err := h.do("DELETE", "/v1/jobs/"+id, nil, nil)
	return err
}

func (h HTTP) Suspend(id string) error {
	_, err := h.do("POST", "/v1/jobs/"+id+"/suspend", nil, nil)
	return err
}

func (h HTTP) Resume(id string) error {
	_, err := h.do("POST", "/v1/jobs/"+id+"/resume", nil, nil)
	return err
}

// Config shapes one load run.
type Config struct {
	// Tenants is the number of concurrent tenants (each its own
	// goroutine, named t000…).
	Tenants int
	// JobsPerTenant is how many submissions each tenant attempts.
	JobsPerTenant int
	// Spec templates every submission; Tenant and Seed are overwritten
	// per submission.
	Spec serve.JobSpec
	// CancelEvery cancels each tenant's n-th admitted job instead of
	// waiting for it (0 = never cancel).
	CancelEvery int
	// ChurnFraction puts the first ⌈fraction·Tenants⌉ tenants in churn
	// mode: every job they admit (and don't cancel) is suspended
	// mid-burst, awaited into the suspended state, and resumed — the
	// elastic-lifecycle stressor. 0 disables churn; values are clamped
	// to [0, 1]. Churn requires the server's backend to be elastic
	// (serve.ElasticRunner); a non-elastic backend surfaces
	// serve.ErrNotElastic as a protocol error.
	ChurnFraction float64
	// Retries caps extra submission attempts after a shed: 0 gives up
	// immediately, n retries at most n times, -1 retries until admitted
	// or the run deadline. Every shed attempt still counts in the
	// report.
	Retries int
	// Backoff is how long a tenant waits after a shed before retrying
	// (default 1ms when retries are enabled).
	Backoff time.Duration
	// PollInterval is the status-poll period while waiting for admitted
	// jobs to finish (default 5ms).
	PollInterval time.Duration
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

func (c *Config) fill() {
	if c.Tenants < 1 {
		c.Tenants = 1
	}
	if c.JobsPerTenant < 1 {
		c.JobsPerTenant = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.Backoff <= 0 && c.Retries != 0 {
		c.Backoff = time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.ChurnFraction < 0 {
		c.ChurnFraction = 0
	}
	if c.ChurnFraction > 1 {
		c.ChurnFraction = 1
	}
}

// TenantReport is one tenant's tally. Suspends/Resumes count accepted
// churn requests; Suspended/Running/Queued count jobs still live in
// those states when the run gave up waiting (0 on a clean drain).
type TenantReport struct {
	Tenant    string `json:"tenant"`
	Submitted int    `json:"submitted"`
	Admitted  int    `json:"admitted"`
	Shed      int    `json:"shed"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	Suspends  int    `json:"suspends,omitempty"`
	Resumes   int    `json:"resumes,omitempty"`
	Suspended int    `json:"suspended,omitempty"`
	Running   int    `json:"running,omitempty"`
	Queued    int    `json:"queued,omitempty"`
}

// Report is the aggregated outcome of a run.
type Report struct {
	Tenants   []TenantReport `json:"tenants"`
	Submitted int            `json:"submitted"`
	Admitted  int            `json:"admitted"`
	Shed      int            `json:"shed"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	Cancelled int            `json:"cancelled"`
	Suspends  int            `json:"suspends,omitempty"`
	Resumes   int            `json:"resumes,omitempty"`
	Suspended int            `json:"suspended,omitempty"`
	Running   int            `json:"running,omitempty"`
	Queued    int            `json:"queued,omitempty"`
	Elapsed   time.Duration  `json:"elapsed"`
	// Errors are hard protocol failures (non-shed submit errors, poll
	// errors, malformed 429s) — any entry fails Verify.
	Errors []string `json:"errors,omitempty"`
}

// Run fires Config.Tenants concurrent tenants at the client and waits
// for every admitted job to reach a terminal state.
func Run(ctx context.Context, c Client, cfg Config) Report {
	cfg.fill()
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()

	reports := make([]TenantReport, cfg.Tenants)
	errs := make([][]string, cfg.Tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			reports[idx], errs[idx] = runTenant(ctx, c, cfg, idx)
		}(i)
	}
	wg.Wait()

	rep := Report{Tenants: reports, Elapsed: time.Since(start)}
	for i := range reports {
		rep.Submitted += reports[i].Submitted
		rep.Admitted += reports[i].Admitted
		rep.Shed += reports[i].Shed
		rep.Done += reports[i].Done
		rep.Failed += reports[i].Failed
		rep.Cancelled += reports[i].Cancelled
		rep.Suspends += reports[i].Suspends
		rep.Resumes += reports[i].Resumes
		rep.Suspended += reports[i].Suspended
		rep.Running += reports[i].Running
		rep.Queued += reports[i].Queued
		rep.Errors = append(rep.Errors, errs[i]...)
	}
	if err := ctx.Err(); err != nil && errors.Is(err, context.DeadlineExceeded) {
		rep.Errors = append(rep.Errors, fmt.Sprintf("run timed out after %v", cfg.Timeout))
	}
	return rep
}

func runTenant(ctx context.Context, c Client, cfg Config, idx int) (TenantReport, []string) {
	tr := TenantReport{Tenant: fmt.Sprintf("t%03d", idx)}
	churner := float64(idx+1) <= cfg.ChurnFraction*float64(cfg.Tenants)
	var errs []string
	var admitted []serve.Info
	for n := 0; n < cfg.JobsPerTenant && ctx.Err() == nil; n++ {
		spec := cfg.Spec
		spec.Tenant = tr.Tenant
		spec.Seed = int64(idx*cfg.JobsPerTenant + n + 1)
		inf, err := submitOnce(ctx, c, spec, cfg, &tr)
		if err != nil {
			var shed *serve.ShedError
			if errors.As(err, &shed) {
				continue // counted inside submitOnce
			}
			errs = append(errs, fmt.Sprintf("%s submit: %v", tr.Tenant, err))
			continue
		}
		tr.Admitted++
		cancelled := false
		if cfg.CancelEvery > 0 && (n+1)%cfg.CancelEvery == 0 {
			cancelled = true
			// Cancellation of an already-terminal job is a benign race.
			if err := c.Cancel(inf.ID); err != nil && !errors.Is(err, serve.ErrAlreadyFinished) {
				errs = append(errs, fmt.Sprintf("%s cancel %s: %v", tr.Tenant, inf.ID, err))
			}
		}
		if churner && !cancelled {
			if err := churn(ctx, c, cfg, &tr, inf.ID); err != nil {
				errs = append(errs, fmt.Sprintf("%s churn %s: %v", tr.Tenant, inf.ID, err))
			}
		}
		admitted = append(admitted, inf)
	}
	for _, inf := range admitted {
		st, err := awaitTerminal(ctx, c, inf.ID, cfg.PollInterval)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s await %s: %v", tr.Tenant, inf.ID, err))
		}
		// Terminal states tally normally; a job the run gave up on still
		// lands in exactly one live-state bucket, so Verify's
		// no-lost-jobs equation accounts for every admitted job.
		switch st {
		case serve.StateDone:
			tr.Done++
		case serve.StateFailed:
			tr.Failed++
		case serve.StateCancelled:
			tr.Cancelled++
		case serve.StateSuspended:
			tr.Suspended++
		case serve.StateRunning:
			tr.Running++
		case serve.StateQueued:
			tr.Queued++
		}
	}
	return tr, errs
}

// churn drives one suspend→park→resume cycle: ask the job to suspend,
// wait for it to actually park (running jobs park asynchronously at
// their next epoch boundary), then resume it. Races with the job's own
// completion are benign and counted as neither a suspend nor a resume.
func churn(ctx context.Context, c Client, cfg Config, tr *TenantReport, id string) error {
	if err := c.Suspend(id); err != nil {
		if errors.Is(err, serve.ErrAlreadyFinished) || errors.Is(err, serve.ErrAlreadySuspended) {
			return nil
		}
		return err
	}
	tr.Suspends++
	tick := time.NewTicker(cfg.PollInterval)
	defer tick.Stop()
	for {
		inf, err := c.Status(id)
		if err != nil {
			return err
		}
		if inf.State == serve.StateSuspended {
			break
		}
		if inf.State.Terminal() {
			return nil // the run finished before its park boundary
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return fmt.Errorf("job %s never parked (still %s): %w", id, inf.State, ctx.Err())
		}
	}
	if err := c.Resume(id); err != nil {
		if errors.Is(err, serve.ErrAlreadyFinished) || errors.Is(err, serve.ErrNotSuspended) {
			return nil
		}
		return err
	}
	tr.Resumes++
	return nil
}

// submitOnce submits one job, retrying after sheds per cfg.Retries.
// Every attempt (including shed ones) is tallied into tr.
func submitOnce(ctx context.Context, c Client, spec serve.JobSpec, cfg Config, tr *TenantReport) (serve.Info, error) {
	for attempt := 0; ; attempt++ {
		tr.Submitted++
		inf, err := c.Submit(spec)
		var shed *serve.ShedError
		if err == nil || !errors.As(err, &shed) {
			return inf, err
		}
		tr.Shed++
		if cfg.Retries >= 0 && attempt >= cfg.Retries {
			return serve.Info{}, err
		}
		select {
		case <-time.After(cfg.Backoff):
		case <-ctx.Done():
			return serve.Info{}, err
		}
	}
}

// awaitTerminal polls until the job reaches a terminal state. On
// timeout it returns the last observed live state alongside the error,
// so the caller can still account for the job.
func awaitTerminal(ctx context.Context, c Client, id string, poll time.Duration) (serve.State, error) {
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		inf, err := c.Status(id)
		if err != nil {
			return "", err
		}
		if inf.State.Terminal() {
			return inf.State, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return inf.State, fmt.Errorf("job %s still %s: %w", id, inf.State, ctx.Err())
		}
	}
}

// Invariants tunes Verify.
type Invariants struct {
	// WantShed requires at least one shed (an overload run that never
	// shed means admission control was not exercised).
	WantShed bool
	// MinFairness is the floor on min/max admitted-per-tenant (0 skips
	// the check; 1 demands exact equality).
	MinFairness float64
	// AllowFailed permits failed jobs (default: any failure is a
	// violation).
	AllowFailed bool
}

// Verify checks the run against the server's promised invariants and
// returns every violation (empty slice = clean run).
func (r Report) Verify(inv Invariants) []string {
	var v []string
	if len(r.Errors) > 0 {
		v = append(v, fmt.Sprintf("%d protocol errors (first: %s)", len(r.Errors), r.Errors[0]))
	}
	if r.Submitted != r.Admitted+r.Shed {
		v = append(v, fmt.Sprintf("conservation broken: submitted %d != admitted %d + shed %d", r.Submitted, r.Admitted, r.Shed))
	}
	// No-lost-jobs: every admitted job is in exactly one bucket —
	// terminal (done/failed/cancelled) or still live (suspended/
	// running/queued) when the run gave up waiting. A clean drain has
	// all three live buckets at zero.
	if got := r.Done + r.Failed + r.Cancelled + r.Suspended + r.Running + r.Queued; got != r.Admitted {
		v = append(v, fmt.Sprintf("no-lost-jobs broken: %d admitted but %d accounted (done %d + failed %d + cancelled %d + suspended %d + running %d + queued %d)",
			r.Admitted, got, r.Done, r.Failed, r.Cancelled, r.Suspended, r.Running, r.Queued))
	}
	if got := r.Suspended + r.Running + r.Queued; got > 0 {
		v = append(v, fmt.Sprintf("%d admitted jobs never reached a terminal state (suspended %d, running %d, queued %d)", got, r.Suspended, r.Running, r.Queued))
	}
	if !inv.AllowFailed && r.Failed > 0 {
		v = append(v, fmt.Sprintf("%d jobs failed", r.Failed))
	}
	if inv.WantShed && r.Shed == 0 {
		v = append(v, "overload run shed nothing: admission control never engaged")
	}
	if inv.MinFairness > 0 {
		if f, minT, maxT := r.Fairness(); f < inv.MinFairness {
			v = append(v, fmt.Sprintf("fairness %.2f below %.2f (min tenant %s, max tenant %s)", f, inv.MinFairness, minT, maxT))
		}
		for i := range r.Tenants {
			if r.Tenants[i].Admitted == 0 {
				v = append(v, fmt.Sprintf("tenant %s was never admitted", r.Tenants[i].Tenant))
				break
			}
		}
	}
	return v
}

// Fairness returns min/max admitted-per-tenant plus the extreme
// tenants; 1.0 with no tenants or all-equal admission.
func (r Report) Fairness() (ratio float64, minTenant, maxTenant string) {
	if len(r.Tenants) == 0 {
		return 1, "", ""
	}
	minA, maxA := math.MaxInt, 0
	for i := range r.Tenants {
		a := r.Tenants[i].Admitted
		if a < minA {
			minA, minTenant = a, r.Tenants[i].Tenant
		}
		if a > maxA {
			maxA, maxTenant = a, r.Tenants[i].Tenant
		}
	}
	if maxA == 0 {
		return 1, minTenant, maxTenant
	}
	return float64(minA) / float64(maxA), minTenant, maxTenant
}

// String renders the report for humans (CLI and CI logs).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d tenants, %d submitted in %v\n", len(r.Tenants), r.Submitted, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  admitted %d, shed %d, done %d, failed %d, cancelled %d\n", r.Admitted, r.Shed, r.Done, r.Failed, r.Cancelled)
	if r.Suspends > 0 || r.Resumes > 0 {
		fmt.Fprintf(&b, "  churn: %d suspends, %d resumes\n", r.Suspends, r.Resumes)
	}
	if live := r.Suspended + r.Running + r.Queued; live > 0 {
		fmt.Fprintf(&b, "  stuck live: %d suspended, %d running, %d queued\n", r.Suspended, r.Running, r.Queued)
	}
	f, minT, maxT := r.Fairness()
	fmt.Fprintf(&b, "  fairness %.2f (min %s, max %s)\n", f, minT, maxT)
	if len(r.Errors) > 0 {
		sorted := append([]string(nil), r.Errors...)
		sort.Strings(sorted)
		fmt.Fprintf(&b, "  %d errors, first: %s\n", len(sorted), sorted[0])
	}
	return b.String()
}
