package loadtest

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"trainbox/internal/serve"
	"trainbox/internal/train"
)

// fastRunner finishes in about a millisecond but still honours
// cancellation, so hundreds of tenants churn through quickly.
func fastRunner() serve.Runner {
	return serve.RunnerFunc(func(ctx context.Context, id string, spec serve.JobSpec) (serve.Outcome, error) {
		select {
		case <-time.After(time.Millisecond):
			return serve.Outcome{FinalLoss: 1, Samples: spec.Items * spec.Epochs}, nil
		case <-ctx.Done():
			return serve.Outcome{}, ctx.Err()
		}
	})
}

// TestHundredsOfTenantsFairAndConserving is the headline invariant run:
// ≥ 200 concurrent tenants against a deliberately narrow server. Every
// submission must be admitted or shed (never lost), every admitted job
// must terminate, no job may fail, shedding must engage, admission must
// stay fair across tenants, and shutdown must reclaim every goroutine.
func TestHundredsOfTenantsFairAndConserving(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := serve.NewServer(
		serve.WithRunner(fastRunner()),
		serve.WithMaxRunning(8),
		serve.WithQueueLimit(32),
		serve.WithTenantQuota(2),
	)
	if err != nil {
		t.Fatal(err)
	}

	rep := Run(context.Background(), Direct{Server: s}, Config{
		Tenants:       200,
		JobsPerTenant: 4,
		CancelEvery:   3,
		Retries:       -1, // retry until admitted: turns fairness into a no-starvation check
		Timeout:       90 * time.Second,
	})
	t.Log(rep.String())

	// 800 wanted jobs against a 32-deep queue must shed heavily, yet
	// with retries every tenant must land all 4 jobs — overload may slow
	// tenants down but never starve one out.
	if v := rep.Verify(Invariants{WantShed: true, MinFairness: 1}); len(v) > 0 {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	if rep.Admitted != 800 {
		t.Errorf("admitted %d, want all 800 (200 tenants × 4 jobs)", rep.Admitted)
	}
	if rep.Shed == 0 || rep.Submitted != rep.Admitted+rep.Shed {
		t.Errorf("submitted %d, admitted %d, shed %d: overload accounting broken", rep.Submitted, rep.Admitted, rep.Shed)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines %d → %d after close: leak", before, after)
	}
}

// TestHTTPClientAgainstLiveServer runs the same generator through the
// HTTP client, which also exercises 429 → ShedError conversion and the
// Retry-After requirement.
func TestHTTPClientAgainstLiveServer(t *testing.T) {
	s, err := serve.NewServer(
		serve.WithRunner(fastRunner()),
		serve.WithMaxRunning(4),
		serve.WithQueueLimit(8),
		serve.WithTenantQuota(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep := Run(context.Background(), HTTP{BaseURL: ts.URL}, Config{
		Tenants:       24,
		JobsPerTenant: 3,
		Retries:       -1,
		Timeout:       60 * time.Second,
	})
	t.Log(rep.String())
	if v := rep.Verify(Invariants{MinFairness: 1}); len(v) > 0 {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	if rep.Admitted == 0 {
		t.Error("no job admitted over HTTP")
	}
}

// TestVerifyCatchesViolations: the checker itself must flag cooked
// reports, or CI would pass on garbage.
func TestVerifyCatchesViolations(t *testing.T) {
	bad := Report{
		Tenants:   []TenantReport{{Tenant: "a", Admitted: 10}, {Tenant: "b", Admitted: 0}},
		Submitted: 12, Admitted: 10, Shed: 1, // conservation broken
		Done: 8, Failed: 1, // one unaccounted, one failed
	}
	v := bad.Verify(Invariants{WantShed: true, MinFairness: 0.5})
	if len(v) < 4 {
		t.Fatalf("got %d violations %v, want conservation + terminal + failed + fairness", len(v), v)
	}
	clean := Report{
		Tenants:   []TenantReport{{Tenant: "a", Admitted: 2}, {Tenant: "b", Admitted: 2}},
		Submitted: 5, Admitted: 4, Shed: 1, Done: 4,
	}
	if v := clean.Verify(Invariants{WantShed: true, MinFairness: 0.5}); len(v) != 0 {
		t.Fatalf("clean report flagged: %v", v)
	}
}

// TestRunAgainstRealTrainingBackend drives a small load through the
// full stack: pooled devices, preppool registration, real train loops.
func TestRunAgainstRealTrainingBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("real training backend is slow under -short")
	}
	runner, pool, err := serve.NewTrainBackend(2, 8, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewServer(
		serve.WithRunner(runner),
		serve.WithPool(pool),
		serve.WithMaxRunning(2),
		serve.WithTenantQuota(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep := Run(context.Background(), Direct{Server: s}, Config{
		Tenants:       4,
		JobsPerTenant: 2,
		Spec:          serve.JobSpec{Items: 8, Epochs: 1, RequiredRate: 8000},
		Timeout:       90 * time.Second,
	})
	t.Log(rep.String())
	if v := rep.Verify(Invariants{MinFairness: 1}); len(v) > 0 {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	if rep.Done != 8 {
		t.Errorf("done = %d, want all 8 real training jobs to finish", rep.Done)
	}
}

// elasticFastRunner is a millisecond-scale ElasticRunner: each run is
// a series of 1ms "epochs" that honours park requests at epoch
// boundaries and banks trivially small checkpoints, so churn runs have
// a real window to suspend jobs mid-flight.
type elasticFastRunner struct{ epochs int }

func (r elasticFastRunner) Run(ctx context.Context, id string, spec serve.JobSpec) (serve.Outcome, error) {
	return r.RunElastic(ctx, id, spec, serve.Elastic{})
}

func (r elasticFastRunner) RunElastic(ctx context.Context, id string, spec serve.JobSpec, e serve.Elastic) (serve.Outcome, error) {
	start := 0
	if e.Restore != nil {
		start = e.Restore.Epoch + 1
	}
	for epoch := start; epoch < r.epochs; epoch++ {
		if e.Suspender != nil && e.Suspender.Requested() {
			return serve.Outcome{}, fmt.Errorf("run %s parked at epoch %d: %w", id, epoch, train.ErrSuspended)
		}
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return serve.Outcome{}, ctx.Err()
		}
		if e.Checkpoint != nil && epoch < r.epochs-1 {
			e.Checkpoint(train.Checkpoint{Epoch: epoch, Seed: spec.Seed})
		}
	}
	return serve.Outcome{FinalLoss: 1, Samples: spec.Items * spec.Epochs}, nil
}

// TestChurnSuspendResumeConserves is the elastic-lifecycle stressor:
// half the tenants suspend and resume every job they admit, mid-burst,
// and the run must still drain cleanly — every admitted job terminal,
// nothing failed, and the no-lost-jobs equation intact.
func TestChurnSuspendResumeConserves(t *testing.T) {
	s, err := serve.NewServer(
		serve.WithRunner(elasticFastRunner{epochs: 12}),
		serve.WithMaxRunning(4),
		serve.WithQueueLimit(64),
		serve.WithTenantQuota(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep := Run(context.Background(), Direct{Server: s}, Config{
		Tenants:       12,
		JobsPerTenant: 3,
		ChurnFraction: 0.5,
		Retries:       -1,
		Timeout:       60 * time.Second,
	})
	t.Log(rep.String())

	if v := rep.Verify(Invariants{MinFairness: 1}); len(v) > 0 {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	if rep.Suspends == 0 {
		t.Error("churn run never suspended a job")
	}
	if rep.Resumes == 0 {
		t.Error("churn run never resumed a job")
	}
	if rep.Done != 36 {
		t.Errorf("done = %d, want all 36 churned jobs to finish after resume", rep.Done)
	}
}
