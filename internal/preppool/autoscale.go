package preppool

import (
	"fmt"

	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// AutoscaleConfig parameterizes a per-job required-rate controller. The
// controller reads the job's live training telemetry — the
// train.driver.prep_step_overlap ratio (prepare-stage busy time over
// step-stage busy time, updated every epoch by the driver) — and the
// job's own achieved prep rate, and moves Job.SetRequiredRate inside
// [Min, Max]:
//
//   - overlap > HighOverlap: preparation is the bottleneck (the
//     accelerators starve), so demand grows multiplicatively by Grow —
//     the next rebalance migrates leases toward this job.
//   - overlap < LowOverlap: preparation is fully hidden behind
//     computation with room to spare, so demand shrinks by Shrink —
//     releasing devices back to the pool for starved jobs.
//   - in between: the hysteresis band, no change.
//
// CooldownEpochs boundaries must pass after an adjustment before the
// next one, so a grant needs time to take effect (a rebalance plus a
// settle) before the controller reacts to its consequences.
type AutoscaleConfig struct {
	// Overlap is the live overlap-ratio source, typically
	// OverlapSource(reg) over the registry the job's train.Config
	// shares. Required.
	Overlap func() float64
	// Min and Max bound the required rate (Min ≥ 0, Max > Min).
	Min, Max units.SamplesPerSec
	// Grow (> 1) and Shrink (in (0,1)) are the multiplicative factors.
	Grow, Shrink float64
	// LowOverlap < HighOverlap bound the hysteresis dead band.
	LowOverlap, HighOverlap float64
	// CooldownEpochs is how many epoch boundaries to hold after an
	// adjustment (≥ 0; 0 allows back-to-back moves).
	CooldownEpochs int
}

func (c AutoscaleConfig) validate() error {
	if c.Overlap == nil {
		return fmt.Errorf("preppool: autoscale needs an overlap source")
	}
	if c.Min < 0 || c.Max <= c.Min {
		return fmt.Errorf("preppool: autoscale bounds [%v, %v] invalid", c.Min, c.Max)
	}
	if c.Grow <= 1 {
		return fmt.Errorf("preppool: autoscale grow factor %v must be > 1", c.Grow)
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		return fmt.Errorf("preppool: autoscale shrink factor %v outside (0,1)", c.Shrink)
	}
	if c.LowOverlap < 0 || c.HighOverlap <= c.LowOverlap {
		return fmt.Errorf("preppool: autoscale hysteresis band [%v, %v] invalid", c.LowOverlap, c.HighOverlap)
	}
	if c.CooldownEpochs < 0 {
		return fmt.Errorf("preppool: autoscale cooldown must be ≥ 0")
	}
	return nil
}

// OverlapSource returns a live reader of the train.driver overlap gauge
// in reg — the registry passed as the job's train.Config.Metrics.
func OverlapSource(reg *metrics.Registry) func() float64 {
	return reg.Gauge("train.driver.prep_step_overlap").Value
}

// autoscaler is the controller state hanging off a Job (pool.mu).
type autoscaler struct {
	cfg      AutoscaleConfig
	cooldown int

	mUps    *metrics.Counter // preppool.job.<name>.autoscale_ups
	mDowns  *metrics.Counter // preppool.job.<name>.autoscale_downs
	gSignal *metrics.Gauge   // preppool.job.<name>.autoscale_overlap
}

// EnableAutoscale attaches the controller; each subsequent PrepareEpoch
// boundary evaluates it. The first boundary is always skipped — the
// overlap gauge only carries a signal once at least one step-stage
// epoch has completed.
func (j *Job) EnableAutoscale(cfg AutoscaleConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	p := j.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.closed {
		return fmt.Errorf("preppool: job %q is closed", j.spec.Name)
	}
	prefix := "preppool.job." + j.spec.Name + "."
	j.scaler = &autoscaler{
		cfg:      cfg,
		cooldown: 1, // skip the first boundary: no overlap signal yet
		mUps:     p.reg.Counter(prefix + "autoscale_ups"),
		mDowns:   p.reg.Counter(prefix + "autoscale_downs"),
		gSignal:  p.reg.Gauge(prefix + "autoscale_overlap"),
	}
	return nil
}

// autoscaleLocked is the per-epoch controller tick (pool.mu held).
func (j *Job) autoscaleLocked() {
	a := j.scaler
	if a == nil || j.suspended {
		return
	}
	overlap := a.cfg.Overlap()
	a.gSignal.Set(overlap)
	if a.cooldown > 0 {
		a.cooldown--
		return
	}
	want := j.required
	switch {
	case overlap > a.cfg.HighOverlap:
		want = units.SamplesPerSec(float64(j.required) * a.cfg.Grow)
		if want <= j.required {
			// Growing from zero demand: seed from the live achieved
			// prep rate so the controller has a real operating point.
			want = units.SamplesPerSec(j.achieved)
		}
		if want > a.cfg.Max {
			want = a.cfg.Max
		}
		if want < a.cfg.Min {
			want = a.cfg.Min
		}
		if want > j.required {
			j.required = want
			j.gRequired.Set(float64(want))
			j.pool.dirty = true
			a.mUps.Inc()
			a.cooldown = a.cfg.CooldownEpochs
		}
	case overlap < a.cfg.LowOverlap:
		want = units.SamplesPerSec(float64(j.required) * a.cfg.Shrink)
		if want < a.cfg.Min {
			want = a.cfg.Min
		}
		if want < j.required {
			j.required = want
			j.gRequired.Set(float64(want))
			j.pool.dirty = true
			a.mDowns.Inc()
			a.cooldown = a.cfg.CooldownEpochs
		}
	}
}
