// Package preppool is the live, multi-job prep-pool runtime of the
// paper's Section V-D: a shared pool of preparation FPGAs whose leases
// migrate between concurrent training jobs as their preparation
// deficits change.
//
// The static analysis half already exists — fpga.SizePool answers "how
// many pooled FPGAs does this job mix need" and fpga.SchedulePool
// answers "how should a fixed pool split across jobs". This package
// adds the runtime: jobs register with a required preparation rate,
// every job epoch splits its keys between the job's in-box path (the
// host executor standing in for in-box FPGAs) and its pooled
// fpga.Cluster, and a rebalancer re-runs the SchedulePool math at epoch
// boundaries — migrating device leases from over-provisioned jobs to
// starved ones, reclaiming capacity when a job's demand drops, and
// absorbing mid-run device death by retiring the dead device and
// granting a replacement from spare pool capacity instead of leaving
// the job on host fallback.
//
// Two invariants make the migration machinery safe:
//
//   - Bit-identity: per-sample augmentation seeds depend only on
//     (dataset seed, key, epoch), so a batch's content never depends on
//     which devices — or how many — prepared it. Lease migration and
//     device death are therefore invisible to training.
//   - Ethernet budget: when the pool is built over an eth.Network,
//     every lease holds an eth.Reservation sized to the device's
//     preparation rate; a grant that would oversubscribe the
//     port/switch budget is simply not made.
package preppool

import (
	"context"
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/eth"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Option configures a Pool at construction.
type Option func(*Pool) error

// WithNetwork puts the pool behind an Ethernet fabric: every device
// lease must first reserve bytesPerSample × the device's preparation
// rate of fabric bandwidth, and a lease the fabric cannot carry is not
// granted — the Section IV-D budget made enforceable.
func WithNetwork(net *eth.Network, bytesPerSample units.Bytes) Option {
	return func(p *Pool) error {
		if net == nil {
			return fmt.Errorf("preppool: WithNetwork needs a network")
		}
		if bytesPerSample <= 0 {
			return fmt.Errorf("preppool: WithNetwork needs a positive per-sample volume")
		}
		p.net, p.bytesPerSample = net, bytesPerSample
		return nil
	}
}

// WithMetrics attaches a registry: pool-wide series under
// "preppool.pool.*" and per-job series under "preppool.job.<name>.*"
// (plus each job's cluster under "fpga.pool.<name>.*").
func WithMetrics(reg *metrics.Registry) Option {
	return func(p *Pool) error {
		p.reg = reg
		return nil
	}
}

// WithCache shares one decode-cache tier across every job the pool
// hosts: each registering job's host executor is rebound through the
// cache (dscache.Bind), so concurrent jobs training on the same corpus
// decode each key once between them instead of once per job. Only the
// host path is affected — the pooled FPGA path models in-device
// preparation — and the cached preparer is bit-identical for equal
// seeds, so epoch content (and the pool's bit-identity invariant) is
// unchanged. Executors whose preparer has no cached form (video) stay
// uncached.
func WithCache(c *dscache.Cache) Option {
	return func(p *Pool) error {
		if c == nil {
			return fmt.Errorf("preppool: WithCache needs a non-nil cache")
		}
		p.cache = c
		return nil
	}
}

// WithHealth overrides the health config each job's cluster runs with.
// The default is fpga.DefaultHealthConfig — the pool needs health
// tracking on to observe device death at all.
func WithHealth(cfg fpga.HealthConfig) Option {
	return func(p *Pool) error {
		p.health = cfg
		return nil
	}
}

// WithRebalanceEvery sets how many of a job's epochs pass between
// periodic rebalances (default 1: every epoch boundary). Demand
// changes, registration, close, and device death always force one
// regardless.
func WithRebalanceEvery(n int) Option {
	return func(p *Pool) error {
		if n < 1 {
			return fmt.Errorf("preppool: rebalance period must be ≥ 1, got %d", n)
		}
		p.rebalanceEvery = n
		return nil
	}
}

// jobName keeps per-job metric segments valid under the repo-wide
// subsystem.object.metric scheme.
var jobName = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

// Pool owns the shared preparation devices and the lease ledger.
type Pool struct {
	health         fpga.HealthConfig
	rebalanceEvery int
	net            *eth.Network
	bytesPerSample units.Bytes
	reg            *metrics.Registry
	cache          *dscache.Cache

	mu         sync.Mutex
	free       []*fpga.P2PHandler
	lastOwner  map[*fpga.P2PHandler]string
	jobs       []*Job
	dirty      bool  // a rebalance is owed before the next epoch
	migrations int64 // authoritative count; mMigrations mirrors it

	mMigrations *metrics.Counter // preppool.pool.migrations
	mRetired    *metrics.Counter // preppool.pool.retired_devices
	mRebalances *metrics.Counter // preppool.pool.rebalances
	gFree       *metrics.Gauge   // preppool.pool.free_devices
}

// NewPool builds the runtime over the pooled device handlers.
func NewPool(devices []*fpga.P2PHandler, opts ...Option) (*Pool, error) {
	p := &Pool{
		health:         fpga.DefaultHealthConfig(),
		rebalanceEvery: 1,
		lastOwner:      map[*fpga.P2PHandler]string{},
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("preppool: device %d is nil", i)
		}
		p.free = append(p.free, d)
	}
	for _, opt := range opts {
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	p.mMigrations = p.reg.Counter("preppool.pool.migrations")
	p.mRetired = p.reg.Counter("preppool.pool.retired_devices")
	p.mRebalances = p.reg.Counter("preppool.pool.rebalances")
	p.gFree = p.reg.Gauge("preppool.pool.free_devices")
	p.gFree.SetInt(int64(len(p.free)))
	return p, nil
}

// JobSpec describes one training job registering with the pool.
type JobSpec struct {
	// Name identifies the job in telemetry and lease accounting; it must
	// match ^[a-z][a-z0-9_-]*$ and be unique within the pool.
	Name string
	// Type selects the per-FPGA preparation rate (fpga.PrepRate).
	Type workload.InputType
	// RequiredRate is the preparation throughput the job needs; change
	// it mid-run with Job.SetRequiredRate.
	RequiredRate units.SamplesPerSec
	// InBoxRate is the job's own train boxes' aggregate preparation
	// throughput — the part of the demand the pool does not need to
	// cover.
	InBoxRate units.SamplesPerSec
	// Priority places the job in a strict rebalancing tier: the
	// rebalancer satisfies higher-priority tiers' deficits first, and
	// lower tiers split only the devices left over. Within a tier the
	// SchedulePool max-min fairness is unchanged. 0 is the default tier;
	// negative priorities rank below it.
	Priority int
	// Exec and Store are the job's host preparation path, serving both
	// the in-box share of every epoch and degraded samples. Exec's
	// dataset seed must equal DatasetSeed — that is what keeps the
	// pooled and host halves of an epoch bit-identical.
	Exec  *dataprep.Executor
	Store *storage.Store
	// DatasetSeed seeds per-sample augmentation on the pooled path.
	DatasetSeed int64
}

// Job is one registered training job: a name-scoped fpga.Cluster fed by
// pool leases, plus the demand bookkeeping the rebalancer reads.
type Job struct {
	pool    *Pool
	spec    JobSpec
	cluster *fpga.Cluster

	// Guarded by pool.mu.
	leases    map[*fpga.P2PHandler]*eth.Reservation
	order     []*fpga.P2PHandler // lease order, for deterministic release
	required  units.SamplesPerSec
	target    int // device count the last rebalance granted
	epochs    int64
	achieved  float64
	closed    bool
	suspended bool
	scaler    *autoscaler

	mSamples  *metrics.Counter // preppool.job.<name>.samples
	mPooled   *metrics.Counter // preppool.job.<name>.pooled_samples
	mInBox    *metrics.Counter // preppool.job.<name>.inbox_samples
	gLeases   *metrics.Gauge   // preppool.job.<name>.leases
	gShare    *metrics.Gauge   // preppool.job.<name>.pooled_share
	gAchieved *metrics.Gauge   // preppool.job.<name>.achieved_rate
	gRequired *metrics.Gauge   // preppool.job.<name>.required_rate
}

// Register adds a job to the pool. The job starts with no leases; its
// first PrepareEpoch triggers the rebalance that grants them.
func (p *Pool) Register(spec JobSpec) (*Job, error) {
	if !jobName.MatchString(spec.Name) {
		return nil, fmt.Errorf("preppool: job name %q must match %s", spec.Name, jobName)
	}
	if spec.Exec == nil || spec.Store == nil {
		return nil, fmt.Errorf("preppool: job %q needs a host executor and store", spec.Name)
	}
	if spec.RequiredRate < 0 || spec.InBoxRate < 0 {
		return nil, fmt.Errorf("preppool: job %q has negative rates", spec.Name)
	}
	// The uniqueness check must precede any name-scoped side effect
	// (cluster construction, metric binding): a rejected duplicate must
	// not clobber the live same-named job's gauges.
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, other := range p.jobs {
		if other.spec.Name == spec.Name {
			return nil, fmt.Errorf("preppool: job name %q already registered", spec.Name)
		}
	}
	if p.cache != nil {
		// Route the job's host path through the shared decode tier; the
		// swap is in place, so the cluster's fallback (same executor)
		// rides through the cache too. ok=false (no cached form) leaves
		// the executor untouched.
		dscache.Bind(p.cache, spec.Exec)
	}
	cluster, err := fpga.NewCluster(nil,
		fpga.WithName(spec.Name),
		fpga.WithHealth(p.health),
		fpga.WithFallback(spec.Exec, spec.Store),
		fpga.WithMetrics(p.reg))
	if err != nil {
		return nil, err
	}
	j := &Job{
		pool:     p,
		spec:     spec,
		cluster:  cluster,
		leases:   map[*fpga.P2PHandler]*eth.Reservation{},
		required: spec.RequiredRate,
	}
	prefix := "preppool.job." + spec.Name + "."
	j.mSamples = p.reg.Counter(prefix + "samples")
	j.mPooled = p.reg.Counter(prefix + "pooled_samples")
	j.mInBox = p.reg.Counter(prefix + "inbox_samples")
	j.gLeases = p.reg.Gauge(prefix + "leases")
	j.gShare = p.reg.Gauge(prefix + "pooled_share")
	j.gAchieved = p.reg.Gauge(prefix + "achieved_rate")
	j.gRequired = p.reg.Gauge(prefix + "required_rate")
	j.gRequired.Set(float64(spec.RequiredRate))
	p.jobs = append(p.jobs, j)
	p.dirty = true
	return j, nil
}

// SetRequiredRate changes the job's demand mid-run — the signal that
// makes the next epoch boundary's rebalance migrate leases toward (or
// away from) this job.
func (j *Job) SetRequiredRate(rate units.SamplesPerSec) error {
	if rate < 0 {
		return fmt.Errorf("preppool: negative required rate")
	}
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	j.required = rate
	j.gRequired.Set(float64(rate))
	j.pool.dirty = true
	return nil
}

// Leases returns the job's current pooled device count.
func (j *Job) Leases() int {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	return len(j.leases)
}

// Close deregisters the job, returning its leases (and their network
// reservations) to the pool for other jobs to claim.
func (j *Job) Close() error {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	if j.closed {
		return fmt.Errorf("preppool: job %q closed twice", j.spec.Name)
	}
	// Drain rather than range: releaseLeaseLocked removes from j.order in
	// place, so a range would read shifted entries. The job is only
	// marked closed once every lease released — a failure partway leaves
	// it open and usable instead of stranded holding leases.
	for len(j.order) > 0 {
		if err := j.releaseLeaseLocked(j.order[len(j.order)-1], true); err != nil {
			return err
		}
	}
	j.closed = true
	for i, other := range j.pool.jobs {
		if other == j {
			j.pool.jobs = append(j.pool.jobs[:i], j.pool.jobs[i+1:]...)
			break
		}
	}
	j.pool.dirty = true
	return nil
}

// Suspend parks the job: every lease (and its fabric reservation)
// returns to the pool's spare capacity for other jobs to claim at their
// next epoch boundary, and the job stops participating in rebalances
// until Resume. Like Close, Suspend must only be called with no
// PrepareEpoch in flight — the training run parks itself at an epoch
// boundary first (train.Suspender), then the caller suspends the pool
// job. Suspending a suspended or closed job is an error.
func (j *Job) Suspend() error {
	p := j.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.closed {
		return fmt.Errorf("preppool: job %q is closed", j.spec.Name)
	}
	if j.suspended {
		return fmt.Errorf("preppool: job %q already suspended", j.spec.Name)
	}
	// Drain rather than range: releaseLeaseLocked mutates j.order.
	for len(j.order) > 0 {
		if err := j.releaseLeaseLocked(j.order[len(j.order)-1], true); err != nil {
			return err
		}
	}
	j.suspended = true
	j.target = 0
	p.dirty = true
	return nil
}

// Resume re-admits a suspended job. No leases are granted here: the
// job's next PrepareEpoch runs the owed rebalance and settles to
// whatever the priority tiers grant it — with zero spare devices that
// can be zero leases, in which case the job queues on its host path
// until capacity frees up (resuming never fails for lack of devices).
func (j *Job) Resume() error {
	p := j.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.closed {
		return fmt.Errorf("preppool: job %q is closed", j.spec.Name)
	}
	if !j.suspended {
		return fmt.Errorf("preppool: job %q is not suspended", j.spec.Name)
	}
	j.suspended = false
	p.dirty = true
	return nil
}

// Suspended reports whether the job is parked.
func (j *Job) Suspended() bool {
	j.pool.mu.Lock()
	defer j.pool.mu.Unlock()
	return j.suspended
}

// Preparer adapts the job to the training driver: the returned function
// is a train.EpochPreparer closing over the job's keys.
func (j *Job) Preparer(keys []string) func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
	keysCopy := append([]string(nil), keys...)
	return func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		return j.PrepareEpoch(ctx, keysCopy, epoch)
	}
}

// PrepareEpoch prepares one epoch of the keyed dataset, split between
// the job's pooled cluster and its in-box (host) path in proportion to
// their rates, with both halves running concurrently. The result is in
// key order and bit-identical to a pure host run of the same keys. The
// epoch boundary is also where the job syncs with the pool: dead
// devices are retired, owed rebalances run, and this job's leases are
// grown or shrunk to its current grant.
func (j *Job) PrepareEpoch(ctx context.Context, keys []string, epoch int) ([]dataprep.Prepared, error) {
	if err := j.sync(); err != nil {
		return nil, err
	}
	start := time.Now()

	j.pool.mu.Lock()
	poolRate := float64(len(j.leases)) * float64(fpga.PrepRate(j.spec.Type))
	j.pool.mu.Unlock()
	inBoxRate := float64(j.spec.InBoxRate)
	pooled := 0
	if total := poolRate + inBoxRate; total > 0 {
		pooled = int(math.Round(float64(len(keys)) * poolRate / total))
	}
	if pooled > len(keys) {
		pooled = len(keys)
	}

	// Both halves prepare concurrently; per-sample seeds depend only on
	// (dataset seed, key, epoch), so the concatenation is bit-identical
	// to either path preparing everything.
	out := make([]dataprep.Prepared, 0, len(keys))
	var poolOut, hostOut []dataprep.Prepared
	err := pipeline.ForEach(ctx, 2, func(ctx context.Context, half int) error {
		var err error
		if half == 0 {
			if pooled > 0 {
				poolOut, err = j.cluster.PrepareBatch(ctx, keys[:pooled], j.spec.DatasetSeed, epoch)
			}
		} else if pooled < len(keys) {
			hostOut, err = j.spec.Exec.PrepareBatchContext(ctx, j.spec.Store, keys[pooled:], epoch)
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("preppool: job %q epoch %d: %w", j.spec.Name, epoch, err)
	}
	out = append(append(out, poolOut...), hostOut...)

	elapsed := time.Since(start).Seconds()
	j.pool.mu.Lock()
	j.epochs++
	if elapsed > 0 {
		j.achieved = float64(len(out)) / elapsed
	}
	j.gAchieved.Set(j.achieved)
	j.mSamples.Add(int64(len(out)))
	j.mPooled.Add(int64(len(poolOut)))
	j.mInBox.Add(int64(len(hostOut)))
	if len(out) > 0 {
		j.gShare.Set(float64(len(poolOut)) / float64(len(out)))
	}
	j.autoscaleLocked()
	j.pool.mu.Unlock()
	return out, nil
}

// sync is the epoch-boundary pool transaction: reap dead devices, run
// any owed rebalance, and settle this job's leases to its target.
func (j *Job) sync() error {
	p := j.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.closed {
		return fmt.Errorf("preppool: job %q is closed", j.spec.Name)
	}
	if j.suspended {
		return fmt.Errorf("preppool: job %q is suspended", j.spec.Name)
	}

	// Retire devices the cluster's health layer ejected: they leave the
	// lease and the pool entirely (their capacity is gone), their network
	// reservation returns to the fabric, and a rebalance is owed so the
	// job is granted a replacement from spare capacity — re-running the
	// rebalance instead of settling for host fallback.
	for _, h := range j.cluster.Ejected() {
		if err := j.releaseLeaseLocked(h, false); err != nil {
			return err
		}
		p.mRetired.Inc()
		p.dirty = true
	}

	if p.dirty || (p.rebalanceEvery > 0 && j.epochs%int64(p.rebalanceEvery) == 0) {
		if err := p.rebalanceLocked(); err != nil {
			return err
		}
	}
	return j.settleLocked()
}

// rebalanceLocked recomputes every job's device target from current
// demand. Jobs are grouped into strict priority tiers (highest first);
// each tier runs the SchedulePool max-min fair math over the devices
// the higher tiers left unclaimed, so a high-priority job's deficit is
// always covered before a lower tier sees a single device. Fractional
// grants are integerized per tier by largest remainder (ties broken by
// registration order, keeping the assignment deterministic).
func (p *Pool) rebalanceLocked() error {
	total := len(p.free)
	for _, j := range p.jobs {
		total += len(j.leases)
	}

	// Distinct priorities, highest tier first. Suspended jobs sit out
	// entirely: they hold no leases, present no demand, and keep a zero
	// target so a later settle cannot grab devices before Resume.
	var prios []int
	seen := map[int]bool{}
	for _, j := range p.jobs {
		if j.suspended {
			j.target = 0
			continue
		}
		if !seen[j.spec.Priority] {
			seen[j.spec.Priority] = true
			prios = append(prios, j.spec.Priority)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))

	remaining := total
	for _, prio := range prios {
		var tier []*Job
		for _, j := range p.jobs {
			if j.spec.Priority == prio && !j.suspended {
				tier = append(tier, j)
			}
		}
		reqs := make([]fpga.JobRequest, len(tier))
		for i, j := range tier {
			reqs[i] = fpga.JobRequest{
				Name:         j.spec.Name,
				Type:         j.spec.Type,
				RequiredRate: j.required,
				InBoxRate:    j.spec.InBoxRate,
			}
		}
		allocs, err := fpga.SchedulePool(reqs, remaining)
		if err != nil {
			return err
		}
		remaining -= integerizeGrants(tier, allocs, remaining)
	}
	p.dirty = false
	p.mRebalances.Inc()
	return nil
}

// integerizeGrants turns one tier's fractional SchedulePool grants into
// whole-device targets by largest remainder, never exceeding avail
// devices, and returns how many devices the tier consumed.
func integerizeGrants(tier []*Job, allocs []fpga.JobAllocation, avail int) int {
	type grant struct {
		idx  int
		frac float64
	}
	used := 0
	grants := make([]grant, len(allocs))
	for i, a := range allocs {
		whole := int(math.Floor(a.GrantedFPGAs + 1e-9))
		if whole > avail-used {
			whole = avail - used
		}
		tier[i].target = whole
		used += whole
		grants[i] = grant{idx: i, frac: a.GrantedFPGAs - math.Floor(a.GrantedFPGAs+1e-9)}
	}
	// A fractional FPGA of demand still needs a whole device: hand the
	// remaining devices to the largest fractional remainders.
	sort.SliceStable(grants, func(a, b int) bool { return grants[a].frac > grants[b].frac })
	for _, g := range grants {
		if used == avail || g.frac <= 1e-9 {
			break
		}
		tier[g.idx].target++
		used++
	}
	return used
}

// settleLocked moves this job's lease count to its target: surplus
// leases return to the free list (most recent first) for other jobs to
// claim; missing leases are taken from the free list, each gated by a
// fabric reservation when the pool runs over a network.
func (j *Job) settleLocked() error {
	p := j.pool
	for len(j.order) > j.target {
		h := j.order[len(j.order)-1]
		if err := j.releaseLeaseLocked(h, true); err != nil {
			return err
		}
	}
	for len(j.order) < j.target && len(p.free) > 0 {
		h := p.free[0]
		var res *eth.Reservation
		if p.net != nil {
			bw := units.BytesPerSec(float64(fpga.PrepRate(j.spec.Type)) * float64(p.bytesPerSample))
			var err error
			res, err = p.net.Reserve(bw)
			if err != nil {
				break // fabric budget exhausted: the grant is simply not made
			}
		}
		if err := j.cluster.Lease(h); err != nil {
			if res != nil {
				res.Release()
			}
			return err
		}
		p.free = p.free[1:]
		j.leases[h] = res
		j.order = append(j.order, h)
		if prev := p.lastOwner[h]; prev != "" && prev != j.spec.Name {
			p.migrations++
			p.mMigrations.Inc()
		}
		p.lastOwner[h] = j.spec.Name
	}
	j.gLeases.SetInt(int64(len(j.order)))
	p.gFree.SetInt(int64(len(p.free)))
	return nil
}

// releaseLeaseLocked removes one device from the job, returning its
// fabric reservation; toFree decides whether the device re-enters the
// free list (lease reclaim) or leaves the pool (death retirement).
func (j *Job) releaseLeaseLocked(h *fpga.P2PHandler, toFree bool) error {
	res, ok := j.leases[h]
	if !ok {
		return fmt.Errorf("preppool: job %q does not hold that device", j.spec.Name)
	}
	if err := j.cluster.Release(h); err != nil {
		return err
	}
	delete(j.leases, h)
	for i, e := range j.order {
		if e == h {
			j.order = append(j.order[:i], j.order[i+1:]...)
			break
		}
	}
	if res != nil {
		if err := res.Release(); err != nil {
			return err
		}
	}
	if toFree {
		j.pool.free = append(j.pool.free, h)
	} else {
		delete(j.pool.lastOwner, h)
	}
	j.gLeases.SetInt(int64(len(j.order)))
	j.pool.gFree.SetInt(int64(len(j.pool.free)))
	return nil
}

// JobStat is one job's line in the pool's status report.
type JobStat struct {
	Name         string
	Leases       int
	RequiredRate units.SamplesPerSec
	AchievedRate float64
	PooledShare  float64
	Suspended    bool
}

// Stats reports every registered job in registration order.
func (p *Pool) Stats() []JobStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobStat, len(p.jobs))
	for i, j := range p.jobs {
		var share float64
		pooledRate := float64(len(j.leases)) * float64(fpga.PrepRate(j.spec.Type))
		if total := pooledRate + float64(j.spec.InBoxRate); total > 0 {
			share = pooledRate / total
		}
		out[i] = JobStat{
			Name:         j.spec.Name,
			Leases:       len(j.leases),
			RequiredRate: j.required,
			AchievedRate: j.achieved,
			PooledShare:  share,
			Suspended:    j.suspended,
		}
	}
	return out
}

// FreeDevices returns the number of unleased pool devices.
func (p *Pool) FreeDevices() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Migrations returns how many leases have moved between distinct jobs.
func (p *Pool) Migrations() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.migrations
}
