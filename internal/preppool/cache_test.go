package preppool

import (
	"context"
	"testing"

	"trainbox/internal/dscache"
	"trainbox/internal/units"
)

// TestPoolSharedCacheAmortizesAcrossJobs: two host-only jobs on one
// corpus behind one cache tier decode each key exactly once between
// them, and every epoch of both jobs stays bit-identical to its own
// uncached oracle (per-job dataset seeds differ; only the decode is
// shared).
func TestPoolSharedCacheAmortizesAcrossJobs(t *testing.T) {
	_, store, cfg := fixture(t, 0)
	keys := store.Keys()
	c := dscache.New(64 * units.MB)
	p, err := NewPool(nil, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := p.Register(spec("job-a", cfg, store, 11, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := p.Register(spec("job-b", cfg, store, 22, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 3
	for epoch := 0; epoch < epochs; epoch++ {
		for _, jc := range []struct {
			j    *Job
			seed int64
		}{{ja, 11}, {jb, 22}} {
			got, err := jc.j.PrepareEpoch(context.Background(), keys, epoch)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, got, oracle(t, cfg, store, jc.seed, keys, epoch))
		}
	}
	s := c.Stats()
	if s.Misses != int64(len(keys)) {
		t.Fatalf("decodes = %d, want %d: 2 jobs × %d epochs should share one decode per key",
			s.Misses, len(keys), epochs)
	}
	if want := int64(2*epochs*len(keys)) - s.Misses; s.Hits != want {
		t.Fatalf("hits = %d, want %d", s.Hits, want)
	}
}

// TestPoolCacheWithPooledDevicesStaysBitIdentical: the cache only
// touches the host half of a split epoch — a job running over real
// pooled devices plus a cached host path must still produce the
// bit-identical epoch.
func TestPoolCacheWithPooledDevicesStaysBitIdentical(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	keys := store.Keys()
	p, err := NewPool(handlers, WithCache(dscache.New(64*units.MB)))
	if err != nil {
		t.Fatal(err)
	}
	j, err := p.Register(spec("split", cfg, store, 7, 2000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		got, err := j.PrepareEpoch(context.Background(), keys, epoch)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, oracle(t, cfg, store, 7, keys, epoch))
	}
	if j.Leases() == 0 {
		t.Fatal("job never held a pooled device — the split path went untested")
	}
}

// TestPoolWithCacheNil: a nil cache is a construction error, not a
// silent no-op.
func TestPoolWithCacheNil(t *testing.T) {
	if _, err := NewPool(nil, WithCache(nil)); err == nil {
		t.Fatal("WithCache(nil) accepted")
	}
}
