package preppool

import (
	"context"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/eth"
	"trainbox/internal/faults"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// fixture builds one shared dataset store plus n pool devices over it,
// handler i wired to injs[i] when given (nil = healthy).
func fixture(t *testing.T, devices int, injs ...faults.Injector) ([]*fpga.P2PHandler, *storage.Store, dataprep.ImageConfig) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	handlers := make([]*fpga.P2PHandler, devices)
	for i := range handlers {
		var opts []fpga.Option
		if i < len(injs) && injs[i] != nil {
			opts = append(opts, fpga.WithFaults(injs[i]))
		}
		h, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(cfg), 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	return handlers, store, cfg
}

func spec(name string, cfg dataprep.ImageConfig, store *storage.Store, seed int64, required, inBox units.SamplesPerSec) JobSpec {
	return JobSpec{
		Name:         name,
		Type:         workload.Image,
		RequiredRate: required,
		InBoxRate:    inBox,
		Exec:         dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, seed),
		Store:        store,
		DatasetSeed:  seed,
	}
}

// oracle prepares the epoch on a fresh fault-free host executor.
func oracle(t *testing.T, cfg dataprep.ImageConfig, store *storage.Store, seed int64, keys []string, epoch int) []dataprep.Prepared {
	t.Helper()
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, seed)
	out, err := exec.PrepareBatch(store, keys, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertBitIdentical(t *testing.T, got, want []dataprep.Prepared) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("sample %d key %q, want %q — split broke ordering", i, got[i].Key, want[i].Key)
		}
		for j := range want[i].Image.Data {
			if got[i].Image.Data[j] != want[i].Image.Data[j] {
				t.Fatalf("sample %d diverges at element %d — pooled split not bit-identical", i, j)
			}
		}
	}
}

// TestRebalanceMigratesLeasesOnDemandCrossover: two jobs whose demand
// crosses over mid-run. The rebalancer must reclaim the lease from the
// job whose demand dropped and migrate it to the one whose demand rose,
// with every epoch of both jobs bit-identical to its host oracle.
func TestRebalanceMigratesLeasesOnDemandCrossover(t *testing.T) {
	handlers, store, cfg := fixture(t, 3)
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	// A needs 2 pool FPGAs, B needs 1 (image rate 8000/device).
	jobA, err := pool.Register(spec("job-a", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := pool.Register(spec("job-b", cfg, store, 7, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()

	runEpoch := func(j *Job, seed int64, epoch int) {
		t.Helper()
		out, err := j.PrepareEpoch(context.Background(), keys, epoch)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, out, oracle(t, cfg, store, seed, keys, epoch))
	}
	runEpoch(jobA, 3, 0)
	runEpoch(jobB, 7, 0)
	if a, b := jobA.Leases(), jobB.Leases(); a != 2 || b != 1 {
		t.Fatalf("initial leases a=%d b=%d, want 2/1", a, b)
	}
	if pool.Migrations() != 0 {
		t.Fatalf("migrations before crossover = %d, want 0", pool.Migrations())
	}

	// Demand crossover: A cools to 1 device of need, B heats to 2.
	if err := jobA.SetRequiredRate(8000); err != nil {
		t.Fatal(err)
	}
	if err := jobB.SetRequiredRate(16000); err != nil {
		t.Fatal(err)
	}
	runEpoch(jobA, 3, 1) // A's boundary: surplus lease reclaimed
	runEpoch(jobB, 7, 1) // B's boundary: reclaimed lease migrates to B
	if a, b := jobA.Leases(), jobB.Leases(); a != 1 || b != 2 {
		t.Fatalf("post-crossover leases a=%d b=%d, want 1/2", a, b)
	}
	if pool.Migrations() < 1 {
		t.Error("no lease migration recorded across the crossover")
	}
	if got := reg.Snapshot().Counters["preppool.pool.migrations"]; got < 1 {
		t.Errorf("preppool.pool.migrations = %d, want ≥ 1", got)
	}
	runEpoch(jobA, 3, 2)
	runEpoch(jobB, 7, 2)
}

// TestReclaimOverProvisionedJob: a job whose demand drops to zero must
// give every lease back to the free pool at its next epoch boundary.
func TestReclaimOverProvisionedJob(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("greedy", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	if _, err := job.PrepareEpoch(context.Background(), keys, 0); err != nil {
		t.Fatal(err)
	}
	if job.Leases() != 2 || pool.FreeDevices() != 0 {
		t.Fatalf("leases=%d free=%d, want 2/0", job.Leases(), pool.FreeDevices())
	}
	if err := job.SetRequiredRate(0); err != nil {
		t.Fatal(err)
	}
	out, err := job.PrepareEpoch(context.Background(), keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 1))
	if job.Leases() != 0 || pool.FreeDevices() != 2 {
		t.Errorf("leases=%d free=%d after demand dropped, want 0/2", job.Leases(), pool.FreeDevices())
	}
}

// TestEthernetBudgetCapsGrants: a pool behind a constrained fabric must
// stop granting leases at the reservation ceiling — the job still
// completes (host path covers the rest), it just gets fewer devices.
func TestEthernetBudgetCapsGrants(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	// 10 GB/s aggregate; each image lease needs 8000 samples/s × 1 MiB ≈
	// 8.4 GB/s, so the fabric carries exactly one lease.
	net, err := eth.NewNetwork(eth.Link100G, eth.SwitchSpec{Ports: 4, AggregateBandwidth: 10 * units.GBps})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(handlers, WithNetwork(net, units.MB))
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("capped", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	out, err := job.PrepareEpoch(context.Background(), keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 0))
	if got := job.Leases(); got != 1 {
		t.Errorf("leases = %d under a one-lease fabric budget, want 1", got)
	}
	if net.Reserved() == 0 {
		t.Error("granted lease holds no fabric reservation")
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if got := net.Reserved(); got != 0 {
		t.Errorf("reserved = %v after close, want 0 (reservations must be returned)", got)
	}
	if pool.FreeDevices() != 2 {
		t.Errorf("free = %d after close, want 2", pool.FreeDevices())
	}
}

// TestDeviceDeathRetiresAndRebalances: a pooled device dies mid-epoch.
// The epoch must complete bit-identical to the oracle (health layer
// re-dispatches), and the next epoch boundary must retire the corpse
// and grant a replacement from spare pool capacity — the re-run
// rebalance, not host fallback, absorbing the death.
func TestDeviceDeathRetiresAndRebalances(t *testing.T) {
	// Device 0 dies after 3 reads; device 2 is the idle spare.
	handlers, store, cfg := fixture(t, 3, faults.NewDeviceDeath(3))
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg), WithHealth(fpga.HealthConfig{EjectAfter: 1}))
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("victim", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()

	out, err := job.PrepareEpoch(context.Background(), keys, 0)
	if err != nil {
		t.Fatalf("epoch with mid-run device death failed: %v", err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 0))
	if got := job.Leases(); got != 2 {
		t.Fatalf("leases = %d before the reap, want 2", got)
	}

	// Next boundary: corpse retired, spare granted, capacity restored.
	out, err = job.PrepareEpoch(context.Background(), keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 1))
	if got := job.Leases(); got != 2 {
		t.Errorf("leases = %d after rebalance, want 2 (spare must replace the corpse)", got)
	}
	if pool.FreeDevices() != 0 {
		t.Errorf("free = %d, want 0", pool.FreeDevices())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["preppool.pool.retired_devices"]; got != 1 {
		t.Errorf("retired_devices = %d, want 1", got)
	}
	if got := snap.Counters["fpga.pool.victim.devices_ejected"]; got != 1 {
		t.Errorf("victim cluster ejections = %d, want 1", got)
	}
}

// TestRegisterValidation: bad job specs are rejected before touching
// pool state.
func TestRegisterValidation(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Register(spec("Bad Name", cfg, store, 3, 8000, 0)); err == nil {
		t.Error("invalid job name accepted")
	}
	if _, err := pool.Register(JobSpec{Name: "nohost", Type: workload.Image, RequiredRate: 1}); err == nil {
		t.Error("job without host path accepted")
	}
	if _, err := pool.Register(spec("ok", cfg, store, 3, 8000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Register(spec("ok", cfg, store, 3, 8000, 0)); err == nil {
		t.Error("duplicate job name accepted")
	}
	if _, err := NewPool([]*fpga.P2PHandler{nil}); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewPool(nil, WithRebalanceEvery(0)); err == nil {
		t.Error("zero rebalance period accepted")
	}
	if _, err := NewPool(nil, WithNetwork(nil, units.MB)); err == nil {
		t.Error("nil network accepted")
	}
}

// TestCloseReturnsAllLeases: closing a job that holds several leases
// must release every one back to the free pool. Regression test: Close
// used to range over j.order while releasing shifted entries out from
// under the iteration, so a 3-lease job failed with a spurious "does
// not hold that device" error and leaked a lease.
func TestCloseReturnsAllLeases(t *testing.T) {
	handlers, store, cfg := fixture(t, 3)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("hog", cfg, store, 3, 24000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.PrepareEpoch(context.Background(), store.Keys(), 0); err != nil {
		t.Fatal(err)
	}
	if got := job.Leases(); got != 3 {
		t.Fatalf("leases = %d before close, want 3", got)
	}
	if err := job.Close(); err != nil {
		t.Fatalf("close with 3 leases failed: %v", err)
	}
	if got := pool.FreeDevices(); got != 3 {
		t.Errorf("free = %d after close, want 3 (all leases returned)", got)
	}
}

// TestDuplicateRegisterKeepsLiveJobMetrics: a rejected duplicate
// registration must not touch the live same-named job's metrics.
// Regression test: Register used to bind and set the required_rate
// gauge before the uniqueness check, so the rejected spec's rate
// overwrote the live job's.
func TestDuplicateRegisterKeepsLiveJobMetrics(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Register(spec("twin", cfg, store, 3, 8000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Register(spec("twin", cfg, store, 3, 999, 0)); err == nil {
		t.Fatal("duplicate job name accepted")
	}
	if got := reg.Snapshot().Gauges["preppool.job.twin.required_rate"]; got != 8000 {
		t.Errorf("required_rate = %v after rejected duplicate, want 8000", got)
	}
}

// TestClosedJobRefusesEpochs: a closed job must fail fast, and closing
// twice is an error.
func TestClosedJobRefusesEpochs(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("gone", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err == nil {
		t.Error("double close accepted")
	}
	if _, err := job.PrepareEpoch(context.Background(), store.Keys(), 0); err == nil {
		t.Error("closed job prepared an epoch")
	}
}

// TestPriorityTiersStarveLowerTierUnderContention: with the pool too
// small for both jobs, a higher-priority job's deficit must be fully
// covered before the lower tier sees a single device; when the
// high-priority job's demand cools, the freed devices flow down.
func TestPriorityTiersStarveLowerTierUnderContention(t *testing.T) {
	handlers, store, cfg := fixture(t, 3)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	hiSpec := spec("hi", cfg, store, 3, 24000, 0) // 3 devices of need
	hiSpec.Priority = 1
	hi, err := pool.Register(hiSpec)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := pool.Register(spec("lo", cfg, store, 7, 24000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	for _, j := range []*Job{hi, lo} {
		if _, err := j.PrepareEpoch(ctx, keys, 0); err != nil {
			t.Fatal(err)
		}
	}
	if h, l := hi.Leases(), lo.Leases(); h != 3 || l != 0 {
		t.Fatalf("contended leases hi=%d lo=%d, want 3/0 (strict tiers)", h, l)
	}

	// The high tier cools to one device of need; the lower tier must
	// pick up the two freed devices at the next boundaries.
	if err := hi.SetRequiredRate(8000); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{hi, lo} {
		if _, err := j.PrepareEpoch(ctx, keys, 1); err != nil {
			t.Fatal(err)
		}
	}
	if h, l := hi.Leases(), lo.Leases(); h != 1 || l != 2 {
		t.Fatalf("post-cooldown leases hi=%d lo=%d, want 1/2", h, l)
	}

	// Equal tiers split the same contention max-min instead.
	if err := hi.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := pool.Register(spec("eq-a", cfg, store, 3, 24000, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Register(spec("eq-b", cfg, store, 7, 24000, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{a, b} {
		if _, err := j.PrepareEpoch(ctx, keys, 0); err != nil {
			t.Fatal(err)
		}
	}
	if x, y := a.Leases(), b.Leases(); x+y != 3 || x == 0 || y == 0 {
		t.Fatalf("equal-tier leases a=%d b=%d, want a 2/1-ish split of 3", x, y)
	}
}
