package preppool

import (
	"context"
	"sync"
	"testing"

	"trainbox/internal/metrics"
	"trainbox/internal/units"
)

// TestSuspendParksLeasesResumeReacquires: Suspend returns every lease
// to spare capacity and blocks epochs; Resume re-admits the job and the
// next boundary re-grants, with the epoch still bit-identical.
func TestSuspendParksLeasesResumeReacquires(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("parked", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	if _, err := job.PrepareEpoch(context.Background(), keys, 0); err != nil {
		t.Fatal(err)
	}
	if job.Leases() != 2 {
		t.Fatalf("leases = %d before suspend, want 2", job.Leases())
	}

	if err := job.Suspend(); err != nil {
		t.Fatal(err)
	}
	if !job.Suspended() {
		t.Error("Suspended() = false after Suspend")
	}
	if job.Leases() != 0 || pool.FreeDevices() != 2 {
		t.Errorf("leases=%d free=%d after suspend, want 0/2", job.Leases(), pool.FreeDevices())
	}
	if _, err := job.PrepareEpoch(context.Background(), keys, 1); err == nil {
		t.Error("suspended job prepared an epoch")
	}
	stats := pool.Stats()
	if len(stats) != 1 || !stats[0].Suspended {
		t.Errorf("Stats does not report the suspension: %+v", stats)
	}

	if err := job.Resume(); err != nil {
		t.Fatal(err)
	}
	out, err := job.PrepareEpoch(context.Background(), keys, 1)
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 1))
	if job.Leases() != 2 {
		t.Errorf("leases = %d after resume, want 2 (re-granted at the boundary)", job.Leases())
	}
}

// TestSuspendResumeEdgeCases covers the state-machine error paths,
// including revoking the last lease of a job being suspended.
func TestSuspendResumeEdgeCases(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("edge", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Resume(); err == nil {
		t.Error("resume of a running job accepted")
	}
	// The job holds exactly one lease — suspending revokes its last one.
	if _, err := job.PrepareEpoch(context.Background(), store.Keys(), 0); err != nil {
		t.Fatal(err)
	}
	if job.Leases() != 1 {
		t.Fatalf("leases = %d, want 1", job.Leases())
	}
	if err := job.Suspend(); err != nil {
		t.Fatalf("suspending with a single (last) lease failed: %v", err)
	}
	if pool.FreeDevices() != 1 {
		t.Errorf("free = %d after last-lease revocation, want 1", pool.FreeDevices())
	}
	if err := job.Suspend(); err == nil {
		t.Error("double suspend accepted")
	}
	// Demand changes while parked are allowed; they take effect on resume.
	if err := job.SetRequiredRate(0); err != nil {
		t.Errorf("SetRequiredRate while suspended: %v", err)
	}
	if err := job.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := job.Resume(); err == nil {
		t.Error("double resume accepted")
	}
	// Close works from suspended too, and a closed job refuses both.
	if err := job.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := job.Close(); err != nil {
		t.Fatalf("closing a suspended job: %v", err)
	}
	if err := job.Suspend(); err == nil {
		t.Error("suspend of a closed job accepted")
	}
	if err := job.Resume(); err == nil {
		t.Error("resume of a closed job accepted")
	}
}

// TestSuspendedJobSitsOutRebalance: while a job is parked, other jobs'
// rebalances must treat its (zero) demand as absent and never grant it
// devices, even when its pre-park demand was the largest.
func TestSuspendedJobSitsOutRebalance(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	big, err := pool.Register(spec("big", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	small, err := pool.Register(spec("small", cfg, store, 7, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	if _, err := big.PrepareEpoch(ctx, keys, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := small.PrepareEpoch(ctx, keys, 0); err != nil {
		t.Fatal(err)
	}
	if err := big.Suspend(); err != nil {
		t.Fatal(err)
	}
	// small's boundary reruns the rebalance: with big parked, small may
	// claim the freed devices, and big must stay at zero.
	if _, err := small.PrepareEpoch(ctx, keys, 1); err != nil {
		t.Fatal(err)
	}
	if big.Leases() != 0 {
		t.Errorf("suspended job was granted %d leases by a sibling's rebalance", big.Leases())
	}
	if small.Leases() != 1 {
		t.Errorf("small leases = %d, want 1 (its own demand)", small.Leases())
	}
}

// TestResumeWithZeroSpareDevicesQueues: resuming into a pool whose every
// device is held by a higher-priority job must succeed — the job queues
// on its host path with zero leases instead of erroring — and acquires
// devices once the holder releases them.
func TestResumeWithZeroSpareDevicesQueues(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := pool.Register(spec("victim", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	if _, err := victim.PrepareEpoch(ctx, keys, 0); err != nil {
		t.Fatal(err)
	}
	if err := victim.Suspend(); err != nil {
		t.Fatal(err)
	}

	hogSpec := spec("hog", cfg, store, 7, 16000, 0)
	hogSpec.Priority = 1
	hog, err := pool.Register(hogSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hog.PrepareEpoch(ctx, keys, 0); err != nil {
		t.Fatal(err)
	}
	if hog.Leases() != 2 || pool.FreeDevices() != 0 {
		t.Fatalf("hog leases=%d free=%d, want 2/0", hog.Leases(), pool.FreeDevices())
	}

	// Zero spare devices: Resume must queue, not error.
	if err := victim.Resume(); err != nil {
		t.Fatalf("resume with zero spare devices errored: %v", err)
	}
	out, err := victim.PrepareEpoch(ctx, keys, 1)
	if err != nil {
		t.Fatalf("resumed job with zero leases failed its epoch: %v", err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 1))
	if victim.Leases() != 0 {
		t.Errorf("victim leases = %d under a full higher tier, want 0 (queued on host path)", victim.Leases())
	}

	// The holder leaves; the queued job picks the devices up at its next
	// boundary.
	if err := hog.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.PrepareEpoch(ctx, keys, 2); err != nil {
		t.Fatal(err)
	}
	if victim.Leases() != 2 {
		t.Errorf("victim leases = %d after the holder closed, want 2", victim.Leases())
	}
}

// TestSuspendDuringInFlightRebalance hammers Suspend/Resume against a
// sibling's epoch boundaries (each of which reruns the rebalance) from
// another goroutine. The pool lock must serialize the two so no epoch
// errors and no lease is lost — run under -race.
func TestSuspendDuringInFlightRebalance(t *testing.T) {
	handlers, store, cfg := fixture(t, 3)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	churner, err := pool.Register(spec("churner", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	steady, err := pool.Register(spec("steady", cfg, store, 7, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		for epoch := 0; epoch < 12; epoch++ {
			if _, err := steady.PrepareEpoch(context.Background(), keys, epoch); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if err := churner.Suspend(); err != nil {
				errs <- err
				return
			}
			if err := churner.Resume(); err != nil {
				errs <- err
				return
			}
			// An epoch between churns keeps the job actually re-acquiring.
			if _, err := churner.PrepareEpoch(context.Background(), keys, i); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("suspend/rebalance race surfaced: %v", err)
	}

	// Conservation: every device is either free or leased, none lost.
	held := churner.Leases() + steady.Leases()
	if held+pool.FreeDevices() != 3 {
		t.Errorf("devices lost: %d leased + %d free != 3", held, pool.FreeDevices())
	}
}

// TestPreemptionRevokesWithinOneEpochBoundary: a higher-tier job
// arriving in a fully-leased pool must see the lower-tier job's leases
// revoked at the victim's next epoch boundary and acquire them at its
// own first boundary — the grant-revocation path of the lease migrator.
func TestPreemptionRevokesWithinOneEpochBoundary(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := pool.Register(spec("victim", cfg, store, 3, 16000, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	if _, err := victim.PrepareEpoch(ctx, keys, 0); err != nil {
		t.Fatal(err)
	}
	if victim.Leases() != 2 {
		t.Fatalf("victim leases = %d, want the whole pool", victim.Leases())
	}

	vipSpec := spec("vip", cfg, store, 7, 16000, 0)
	vipSpec.Priority = 1
	vip, err := pool.Register(vipSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Victim's next boundary: the owed rebalance targets it at zero and
	// its settle revokes both leases (the content stays bit-identical —
	// the epoch just runs on the host path).
	out, err := victim.PrepareEpoch(ctx, keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 3, keys, 1))
	if victim.Leases() != 0 {
		t.Errorf("victim leases = %d one boundary after the vip arrived, want 0", victim.Leases())
	}

	// Vip's first boundary: it acquires the revoked devices.
	out, err = vip.PrepareEpoch(ctx, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, out, oracle(t, cfg, store, 7, keys, 0))
	if vip.Leases() != 2 {
		t.Errorf("vip leases = %d at its first boundary, want 2 (revoked grants acquired)", vip.Leases())
	}
	if pool.Migrations() < 2 {
		t.Errorf("migrations = %d, want ≥ 2 (both devices changed owner)", pool.Migrations())
	}
}

// synthetic overlap source for controller tests.
type overlapVar struct {
	mu sync.Mutex
	v  float64
}

func (o *overlapVar) set(v float64) { o.mu.Lock(); o.v = v; o.mu.Unlock() }
func (o *overlapVar) get() float64  { o.mu.Lock(); defer o.mu.Unlock(); return o.v }

// TestAutoscaleValidation: broken controller configs are rejected.
func TestAutoscaleValidation(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("scaled", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	good := AutoscaleConfig{
		Overlap: func() float64 { return 1 },
		Min:     4000, Max: 32000, Grow: 2, Shrink: 0.5,
		LowOverlap: 0.5, HighOverlap: 1.1,
	}
	bads := []func(*AutoscaleConfig){
		func(c *AutoscaleConfig) { c.Overlap = nil },
		func(c *AutoscaleConfig) { c.Min = -1 },
		func(c *AutoscaleConfig) { c.Max = c.Min },
		func(c *AutoscaleConfig) { c.Grow = 1 },
		func(c *AutoscaleConfig) { c.Shrink = 1 },
		func(c *AutoscaleConfig) { c.Shrink = 0 },
		func(c *AutoscaleConfig) { c.HighOverlap = c.LowOverlap },
		func(c *AutoscaleConfig) { c.CooldownEpochs = -1 },
	}
	for i, mutate := range bads {
		bad := good
		mutate(&bad)
		if err := job.EnableAutoscale(bad); err == nil {
			t.Errorf("bad autoscale config %d accepted", i)
		}
	}
	if err := job.EnableAutoscale(good); err != nil {
		t.Fatalf("valid autoscale config rejected: %v", err)
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	if err := job.EnableAutoscale(good); err == nil {
		t.Error("autoscale enabled on a closed job")
	}
}

// TestAutoscaleGrowsAndShrinksWithHysteresis walks the controller
// through its whole envelope: first boundary skipped (no signal yet),
// growth under prep-bound overlap until the Max clamp — with the grown
// demand actually pulling pool leases — then shrink under low overlap
// to the Min clamp, with the dead band holding demand steady in
// between.
func TestAutoscaleGrowsAndShrinksWithHysteresis(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("scaled", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	ov := &overlapVar{}
	if err := job.EnableAutoscale(AutoscaleConfig{
		Overlap: ov.get,
		Min:     4000, Max: 32000, Grow: 2, Shrink: 0.5,
		LowOverlap: 0.5, HighOverlap: 1.1,
	}); err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	epoch := 0
	tick := func() {
		t.Helper()
		if _, err := job.PrepareEpoch(ctx, keys, epoch); err != nil {
			t.Fatal(err)
		}
		epoch++
	}
	required := func() units.SamplesPerSec {
		t.Helper()
		return pool.Stats()[0].RequiredRate
	}

	// Boundary 1: always skipped — the overlap gauge carries no signal
	// before a step epoch has completed.
	ov.set(5)
	tick()
	if got := required(); got != 8000 {
		t.Fatalf("required = %v after the skip boundary, want 8000", got)
	}
	// Prep-bound: overlap above the band grows demand ×2 per boundary.
	tick()
	if got := required(); got != 16000 {
		t.Fatalf("required = %v after one growth step, want 16000", got)
	}
	// The grown demand pulls a second lease at the next boundary.
	tick()
	if got := job.Leases(); got != 2 {
		t.Errorf("leases = %d after growth, want 2", got)
	}
	if got := required(); got != 32000 {
		t.Fatalf("required = %v, want 32000 (second growth, at Max)", got)
	}
	// At the Max clamp: no further change, no spurious counter bumps.
	tick()
	if got := required(); got != 32000 {
		t.Fatalf("required = %v, want Max hold at 32000", got)
	}
	ups := reg.Snapshot().Counters["preppool.job.scaled.autoscale_ups"]
	if ups != 2 {
		t.Errorf("autoscale_ups = %d, want 2", ups)
	}

	// Dead band: inside [Low, High] nothing moves.
	ov.set(0.8)
	tick()
	if got := required(); got != 32000 {
		t.Fatalf("required = %v inside the dead band, want 32000", got)
	}

	// Compute-bound: overlap below the band halves demand down to Min.
	ov.set(0.1)
	tick() // 16000
	tick() // 8000
	tick() // 4000 (Min)
	tick() // Min hold
	if got := required(); got != 4000 {
		t.Fatalf("required = %v after shrink, want Min 4000", got)
	}
	if got := job.Leases(); got != 1 {
		t.Errorf("leases = %d after shrink, want 1", got)
	}
	snap := reg.Snapshot()
	if downs := snap.Counters["preppool.job.scaled.autoscale_downs"]; downs != 3 {
		t.Errorf("autoscale_downs = %d, want 3", downs)
	}
	if got := snap.Gauges["preppool.job.scaled.autoscale_overlap"]; got != 0.1 {
		t.Errorf("autoscale_overlap gauge = %v, want 0.1", got)
	}
}

// TestAutoscaleCooldownHoldsBetweenMoves: with CooldownEpochs 2, two
// boundaries must pass after an adjustment before the next one.
func TestAutoscaleCooldownHoldsBetweenMoves(t *testing.T) {
	handlers, store, cfg := fixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("cooled", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.EnableAutoscale(AutoscaleConfig{
		Overlap: func() float64 { return 5 },
		Min:     4000, Max: 64000, Grow: 2, Shrink: 0.5,
		LowOverlap: 0.5, HighOverlap: 1.1, CooldownEpochs: 2,
	}); err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()
	ctx := context.Background()
	wantByEpoch := []units.SamplesPerSec{
		8000,  // boundary 1: initial skip
		16000, // boundary 2: grow, cooldown starts
		16000, // boundary 3: cooling
		16000, // boundary 4: cooling
		32000, // boundary 5: grow again
	}
	for epoch, want := range wantByEpoch {
		if _, err := job.PrepareEpoch(ctx, keys, epoch); err != nil {
			t.Fatal(err)
		}
		if got := pool.Stats()[0].RequiredRate; got != want {
			t.Fatalf("boundary %d: required = %v, want %v", epoch+1, got, want)
		}
	}
}

// TestAutoscaleSuspendedJobHolds: a parked job's controller must not
// move demand (nothing is training).
func TestAutoscaleSuspendedJobHolds(t *testing.T) {
	handlers, store, cfg := fixture(t, 1)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(spec("idle", cfg, store, 3, 8000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.EnableAutoscale(AutoscaleConfig{
		Overlap: func() float64 { return 5 },
		Min:     4000, Max: 64000, Grow: 2, Shrink: 0.5,
		LowOverlap: 0.5, HighOverlap: 1.1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := job.Suspend(); err != nil {
		t.Fatal(err)
	}
	// No boundaries run while suspended (PrepareEpoch refuses), so the
	// required rate cannot move; resume and confirm it starts from the
	// registered demand.
	if err := job.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats()[0].RequiredRate; got != 8000 {
		t.Errorf("required = %v across suspend/resume, want 8000 untouched", got)
	}
}
