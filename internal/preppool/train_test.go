package preppool

import (
	"context"
	"errors"
	"testing"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
	"trainbox/internal/storage"
	"trainbox/internal/train"
	"trainbox/internal/units"
)

// stripeFeature pools the prepared tensor's first channel into 8×8
// features (the training tests' standard feature map).
func stripeFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

// trainFixture builds a 32×32-crop dataset store and pool devices, with
// optional per-device injectors.
func trainFixture(t *testing.T, devices int, injs ...faults.Injector) ([]*fpga.P2PHandler, *storage.Store, dataprep.ImageConfig) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, 8, 4, 5); err != nil {
		t.Fatal(err)
	}
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	handlers := make([]*fpga.P2PHandler, devices)
	for i := range handlers {
		var opts []fpga.Option
		if i < len(injs) && injs[i] != nil {
			opts = append(opts, fpga.WithFaults(injs[i]))
		}
		h, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(cfg), 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = h
	}
	return handlers, store, cfg
}

// TestTrainingOnPoolSurvivesDeviceDeathBitIdentical is the end-to-end
// chaos acceptance run: a training job served by the prep-pool loses a
// pooled device mid-epoch, the pool retires it and grants the spare at
// the next boundary, and the finished model is bit-identical to a
// fault-free oracle trained on the pure host path.
func TestTrainingOnPoolSurvivesDeviceDeathBitIdentical(t *testing.T) {
	const datasetSeed = 5
	cfgT := train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 6,
		LearningRate: 0.05, PrefetchDepth: 2, Seed: 9,
	}

	// Oracle: pure host path, no pool, no faults.
	_, oracleStore, imgCfg := trainFixture(t, 0)
	oracleExec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, datasetSeed)
	oracle, err := train.Run(context.Background(), cfgT,
		train.WithDataset(oracleExec, oracleStore, oracleStore.Keys()),
		train.WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	// Pool path: device 0 dies after 12 reads — mid-run, mid-epoch.
	handlers, store, imgCfg := trainFixture(t, 3, faults.NewDeviceDeath(12))
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg), WithHealth(fpga.HealthConfig{EjectAfter: 1}))
	if err != nil {
		t.Fatal(err)
	}
	job, err := pool.Register(JobSpec{
		Name: "chaos", Type: 0, RequiredRate: 16000,
		Exec:        dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, datasetSeed),
		Store:       store,
		DatasetSeed: datasetSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgT.Metrics = reg
	res, err := train.Run(context.Background(), cfgT,
		train.WithPreparer(job.Preparer(store.Keys()), store.Len()),
		train.WithFeature(stripeFeature))
	if err != nil {
		t.Fatalf("training did not survive the pooled device death: %v", err)
	}

	a, b := res.Model(), oracle.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("layer %d weight %d diverged from oracle", li, i)
			}
		}
	}
	snap := res.Metrics
	if got := snap.Counters["preppool.pool.retired_devices"]; got != 1 {
		t.Errorf("retired_devices = %d, want 1", got)
	}
	if got := snap.Counters["fpga.pool.chaos.devices_ejected"]; got != 1 {
		t.Errorf("chaos cluster ejections = %d, want 1", got)
	}
	if job.Leases() != 2 {
		t.Errorf("leases = %d at end of run, want 2 (spare replaced the corpse)", job.Leases())
	}
	if snap.Counters["preppool.job.chaos.pooled_samples"] == 0 {
		t.Error("no samples prepared on the pooled path — test is vacuous")
	}
}

// TestPreemptSuspendResumeTrainingOracleIdentical is the elastic-jobs
// acceptance run: a low-priority training job holds the whole pool; a
// high-priority job arrives, the victim parks at its next epoch
// boundary (train.Suspender checkpoint + preppool lease revocation),
// the vip acquires the revoked leases at its first boundary and trains
// to completion — after which the victim resumes from its checkpoint
// and finishes bit-identical to an uninterrupted host-path oracle.
func TestPreemptSuspendResumeTrainingOracleIdentical(t *testing.T) {
	const victimSeed, vipSeed = 5, 5
	cfgT := train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 6,
		LearningRate: 0.05, Momentum: 0.9, PrefetchDepth: 1, Seed: 9,
	}

	// Oracles: pure host path, uninterrupted.
	_, oracleStore, imgCfg := trainFixture(t, 0)
	mkOracle := func(seed int64) train.Result {
		t.Helper()
		exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, seed)
		res, err := train.Run(context.Background(), cfgT,
			train.WithDataset(exec, oracleStore, oracleStore.Keys()),
			train.WithFeature(stripeFeature))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	victimOracle := mkOracle(victimSeed)

	handlers, store, imgCfg := trainFixture(t, 2)
	pool, err := NewPool(handlers)
	if err != nil {
		t.Fatal(err)
	}
	mkSpec := func(name string, seed int64, prio int) JobSpec {
		s := spec(name, imgCfg, store, seed, 16000, 0)
		s.Priority = prio
		return s
	}
	victim, err := pool.Register(mkSpec("victim", victimSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys()

	// Victim leg 1: trains with a Suspender; once epoch 2 is being
	// prepared, the vip registers and the victim is asked to park.
	susp := train.NewSuspender()
	var vip *Job
	victimPrep := func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		if epoch == 2 && vip == nil {
			var err error
			if vip, err = pool.Register(mkSpec("vip", vipSeed, 1)); err != nil {
				return nil, err
			}
			susp.Suspend()
		}
		return victim.PrepareEpoch(ctx, keys, epoch)
	}
	_, err = train.Run(context.Background(), cfgT,
		train.WithPreparer(victimPrep, len(keys)),
		train.WithFeature(stripeFeature),
		train.WithSuspender(susp))
	if !errors.Is(err, train.ErrSuspended) {
		t.Fatalf("victim returned %v, want ErrSuspended", err)
	}
	cp, ok := susp.Checkpoint()
	if !ok {
		t.Fatal("victim parked without a checkpoint")
	}
	if err := victim.Suspend(); err != nil {
		t.Fatal(err)
	}
	if pool.FreeDevices() != 2 {
		t.Fatalf("free = %d after the victim parked, want 2 (leases revoked)", pool.FreeDevices())
	}

	// Vip leg: its first epoch boundary acquires the revoked leases and
	// it trains to completion, itself oracle-identical.
	leasesAfterFirstEpoch := -1
	vipPrep := func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		out, err := vip.PrepareEpoch(ctx, keys, epoch)
		if epoch == 0 && err == nil {
			leasesAfterFirstEpoch = vip.Leases()
		}
		return out, err
	}
	vipRes, err := train.Run(context.Background(), cfgT,
		train.WithPreparer(vipPrep, len(keys)),
		train.WithFeature(stripeFeature))
	if err != nil {
		t.Fatalf("vip training failed: %v", err)
	}
	if leasesAfterFirstEpoch != 2 {
		t.Errorf("vip held %d leases at its first epoch boundary, want 2 (revoked grants acquired within one boundary)", leasesAfterFirstEpoch)
	}
	vipOracle := mkOracle(vipSeed)
	assertNetworksBitIdentical(t, vipRes, vipOracle)
	if err := vip.Close(); err != nil {
		t.Fatal(err)
	}

	// Victim leg 2: resume the pool job and the training run from the
	// checkpoint; the finished model must match the uninterrupted oracle
	// bit for bit.
	if err := victim.Resume(); err != nil {
		t.Fatal(err)
	}
	res, err := train.Run(context.Background(), cfgT,
		train.WithPreparer(victim.Preparer(keys), len(keys)),
		train.WithFeature(stripeFeature),
		train.WithRestore(cp))
	if err != nil {
		t.Fatalf("victim resume failed: %v", err)
	}
	assertNetworksBitIdentical(t, res, victimOracle)
	if victim.Leases() != 2 {
		t.Errorf("victim leases = %d after resuming into the freed pool, want 2", victim.Leases())
	}
}

// assertNetworksBitIdentical compares only the final weights (restored
// runs replay fewer steps, so step stats are not comparable).
func assertNetworksBitIdentical(t *testing.T, got, want train.Result) {
	t.Helper()
	a, b := got.Model(), want.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("layer %d weight %d diverged from oracle", li, i)
			}
		}
		for i := range a.Layers[li].B {
			if a.Layers[li].B[i] != b.Layers[li].B[i] {
				t.Fatalf("layer %d bias %d diverged from oracle", li, i)
			}
		}
	}
}

// TestRunJobsOverSharedPool: two concurrent training jobs share one
// pool through train.RunJobs, both completing with their demand served
// and per-job telemetry separated.
func TestRunJobsOverSharedPool(t *testing.T) {
	handlers, store, imgCfg := trainFixture(t, 3)
	reg := metrics.NewRegistry()
	pool, err := NewPool(handlers, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	mkJob := func(name string, seed int64, required float64) *Job {
		t.Helper()
		j, err := pool.Register(JobSpec{
			Name: name, Type: 0, RequiredRate: units.SamplesPerSec(required),
			Exec:        dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, seed),
			Store:       store,
			DatasetSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	jobA := mkJob("alpha", 5, 16000)
	jobB := mkJob("beta", 11, 8000)

	cfgT := train.Config{
		Replicas: 2, Widths: []int{64, 16, 4}, Epochs: 4,
		LearningRate: 0.05, PrefetchDepth: 1, Seed: 9, Metrics: reg,
	}
	results, err := train.RunJobs(context.Background(), []train.Job{
		{Name: "alpha", Config: cfgT, Options: []train.Option{
			train.WithPreparer(jobA.Preparer(store.Keys()), store.Len()),
			train.WithFeature(stripeFeature)}},
		{Name: "beta", Config: cfgT, Options: []train.Option{
			train.WithPreparer(jobB.Preparer(store.Keys()), store.Len()),
			train.WithFeature(stripeFeature)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	snap := reg.Snapshot()
	wantSamples := int64(store.Len() * cfgT.Epochs)
	for _, name := range []string{"alpha", "beta"} {
		if got := snap.Counters["preppool.job."+name+".samples"]; got != wantSamples {
			t.Errorf("job %s samples = %d, want %d", name, got, wantSamples)
		}
	}
	if snap.Counters["preppool.job.alpha.pooled_samples"] == 0 {
		t.Error("alpha never used the pool")
	}
}
