package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayerForwardLinear(t *testing.T) {
	l := &Layer{In: 2, Out: 1, W: []float64{2, 3}, B: []float64{1},
		GradW: make([]float64, 2), GradB: make([]float64, 1)}
	out := l.Forward([]float64{4, 5})
	if out[0] != 2*4+3*5+1 {
		t.Errorf("forward = %v, want 24", out[0])
	}
}

func TestLayerReLUClamps(t *testing.T) {
	l := &Layer{In: 1, Out: 1, W: []float64{-1}, B: []float64{0}, ReLU: true,
		GradW: make([]float64, 1), GradB: make([]float64, 1)}
	if out := l.Forward([]float64{5}); out[0] != 0 {
		t.Errorf("ReLU output = %v, want 0", out[0])
	}
	// Gradient through a dead ReLU is zero.
	gin := l.Backward([]float64{1})
	if gin[0] != 0 || l.GradW[0] != 0 {
		t.Errorf("dead ReLU leaked gradient: gin=%v gradW=%v", gin[0], l.GradW[0])
	}
}

func TestLayerShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLayer(3, 2, false, rng)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad input", func() { l.Forward([]float64{1}) })
	l.Forward([]float64{1, 2, 3})
	mustPanic("bad grad", func() { l.Backward([]float64{1}) })
}

// TestGradientsMatchNumericalDerivative is the canonical backprop check:
// analytic gradients must match central finite differences.
func TestGradientsMatchNumericalDerivative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewMLP([]int{4, 5, 3}, rng)
	x := []float64{0.3, -0.2, 0.8, 0.1}
	label := 2

	net.ZeroGrad()
	logits := net.Forward(x)
	net.LossAndBackward(logits, label)
	analytic := net.Gradients()

	const eps = 1e-6
	idx := 0
	for li, l := range net.Layers {
		for wi := range l.W {
			orig := l.W[wi]
			l.W[wi] = orig + eps
			lossP := lossOf(net, x, label)
			l.W[wi] = orig - eps
			lossM := lossOf(net, x, label)
			l.W[wi] = orig
			numeric := (lossP - lossM) / (2 * eps)
			if math.Abs(numeric-analytic[idx]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", li, wi, analytic[idx], numeric)
			}
			idx++
		}
		for bi := range l.B {
			orig := l.B[bi]
			l.B[bi] = orig + eps
			lossP := lossOf(net, x, label)
			l.B[bi] = orig - eps
			lossM := lossOf(net, x, label)
			l.B[bi] = orig
			numeric := (lossP - lossM) / (2 * eps)
			if math.Abs(numeric-analytic[idx]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d B[%d]: analytic %v vs numeric %v", li, bi, analytic[idx], numeric)
			}
			idx++
		}
	}
}

func lossOf(net *Network, x []float64, label int) float64 {
	probs := Softmax(net.Forward(x))
	return -math.Log(math.Max(probs[label], 1e-12))
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := make([]float64, 1+rng.Intn(10))
		for i := range logits {
			logits[i] = rng.NormFloat64() * 10
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxHugeLogitsStable(t *testing.T) {
	p := Softmax([]float64{1000, 1000, -1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-9 {
		t.Errorf("softmax unstable: %v", p)
	}
}

func TestGradientsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP([]int{3, 4, 2}, rng)
	net.Forward([]float64{1, 2, 3})
	net.LossAndBackward(net.Forward([]float64{1, 2, 3}), 0)
	g := net.Gradients()
	if len(g) != net.NumParams() {
		t.Fatalf("gradient length %d, want %d", len(g), net.NumParams())
	}
	// Double every gradient and write back.
	for i := range g {
		g[i] *= 2
	}
	if err := net.SetGradients(g); err != nil {
		t.Fatal(err)
	}
	g2 := net.Gradients()
	for i := range g {
		if g2[i] != g[i] {
			t.Fatal("SetGradients/Gradients round trip failed")
		}
	}
	if err := net.SetGradients(g[:3]); err == nil {
		t.Error("short gradient vector accepted")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewMLP([]int{10, 7, 3}, rng)
	want := 10*7 + 7 + 7*3 + 3
	if got := net.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestNewMLPRequiresTwoWidths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-width MLP did not panic")
		}
	}()
	NewMLP([]int{5}, rand.New(rand.NewSource(1)))
}

// TestTrainingLearnsLinearlySeparableTask: a network trained on a simple
// separable problem must reach high accuracy — the minimum bar for "this
// is a real learner".
func TestTrainingLearnsLinearlySeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var train, test []Sample
	gen := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			label := 0
			if x[0]+x[1] > 0 {
				label = 1
			}
			out[i] = Sample{X: x, Label: label}
		}
		return out
	}
	train, test = gen(400), gen(200)
	net := NewMLP([]int{2, 8, 2}, rng)
	for epoch := 0; epoch < 30; epoch++ {
		net.TrainEpoch(train, 16, 0.1)
	}
	if acc := net.Accuracy(test); acc < 0.93 {
		t.Errorf("accuracy = %v, want ≥ 0.93", acc)
	}
}

func TestTrainEpochReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]Sample, 100)
	for i := range samples {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if x[0] > 0.2 {
			label = 1
		} else if x[1] < -0.2 {
			label = 2
		}
		samples[i] = Sample{X: x, Label: label}
	}
	net := NewMLP([]int{3, 10, 3}, rng)
	first := net.TrainEpoch(samples, 10, 0.1)
	var last float64
	for i := 0; i < 20; i++ {
		last = net.TrainEpoch(samples, 10, 0.1)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	net := NewMLP([]int{2, 2}, rand.New(rand.NewSource(1)))
	if acc := net.Accuracy(nil); acc != 0 {
		t.Errorf("empty accuracy = %v", acc)
	}
}

func TestZeroGradClears(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP([]int{2, 3, 2}, rng)
	net.LossAndBackward(net.Forward([]float64{1, -1}), 1)
	net.ZeroGrad()
	for _, g := range net.Gradients() {
		if g != 0 {
			t.Fatal("ZeroGrad left non-zero gradient")
		}
	}
}
