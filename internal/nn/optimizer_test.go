package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0, 0); err == nil {
		t.Error("zero LR accepted")
	}
	if _, err := NewSGD(0.1, 1.0, 0); err == nil {
		t.Error("momentum 1 accepted")
	}
	if _, err := NewSGD(0.1, -0.1, 0); err == nil {
		t.Error("negative momentum accepted")
	}
	if _, err := NewSGD(0.1, 0.9, -1); err == nil {
		t.Error("negative weight decay accepted")
	}
	if _, err := NewSGD(0.1, 0.9, 1e-4); err != nil {
		t.Error("valid config rejected")
	}
}

func TestSGDZeroMomentumMatchesPlainStep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMLP([]int{3, 5, 2}, rand.New(rand.NewSource(7)))
	b := NewMLP([]int{3, 5, 2}, rand.New(rand.NewSource(7)))
	x := []float64{0.5, -0.3, 1.2}

	a.ZeroGrad()
	a.LossAndBackward(a.Forward(x), 1)
	a.Step(0.1, 4)

	b.ZeroGrad()
	b.LossAndBackward(b.Forward(x), 1)
	opt, _ := NewSGD(0.1, 0, 0)
	opt.Step(b, 4)

	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if math.Abs(a.Layers[li].W[i]-b.Layers[li].W[i]) > 1e-12 {
				t.Fatalf("layer %d W[%d] differs between plain and SGD(0,0)", li, i)
			}
		}
	}
	_ = rng
}

func TestSGDMomentumAccumulatesVelocity(t *testing.T) {
	// Repeated identical gradients with momentum m approach an effective
	// step of lr/(1−m): after k steps the velocity is g·(1−m^k)/(1−m).
	net := NewMLP([]int{1, 1}, rand.New(rand.NewSource(1)))
	net.Layers[0].W[0] = 0
	net.Layers[0].B[0] = 0
	opt, _ := NewSGD(0.1, 0.5, 0)
	var pos float64
	for k := 0; k < 30; k++ {
		net.ZeroGrad()
		net.Layers[0].GradW[0] = 1 // constant gradient
		opt.Step(net, 1)
		pos = net.Layers[0].W[0]
	}
	// Displacement after many steps ≈ −lr·Σ velocities → slope −lr/(1−m)
	// per step asymptotically; just assert it moved farther than plain
	// SGD would have (−0.1×30 = −3).
	if pos > -3.5 {
		t.Errorf("momentum displacement = %v, want well beyond plain SGD's −3", pos)
	}
	if opt.VelocityNorm() <= 0 {
		t.Error("velocity norm should be positive")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	net := NewMLP([]int{2, 2}, rand.New(rand.NewSource(3)))
	opt, _ := NewSGD(0.1, 0, 0.5)
	before := append([]float64(nil), net.Layers[0].W...)
	biasBefore := append([]float64(nil), net.Layers[0].B...)
	net.ZeroGrad() // zero gradients: only decay acts
	opt.Step(net, 1)
	for i := range before {
		want := before[i] * (1 - 0.1*0.5)
		if math.Abs(net.Layers[0].W[i]-want) > 1e-12 {
			t.Fatalf("W[%d] = %v, want %v (pure decay)", i, net.Layers[0].W[i], want)
		}
	}
	// Biases are not decayed.
	for i := range biasBefore {
		if net.Layers[0].B[i] != biasBefore[i] {
			t.Fatal("bias decayed")
		}
	}
}

func TestMomentumSpeedsConvergence(t *testing.T) {
	gen := func(rng *rand.Rand, n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			label := 0
			if 0.3*x[0]-0.8*x[1] > 0.1 {
				label = 1
			}
			out[i] = Sample{X: x, Label: label}
		}
		return out
	}
	run := func(momentum float64) float64 {
		rng := rand.New(rand.NewSource(8))
		samples := gen(rng, 200)
		net := NewMLP([]int{2, 8, 2}, rand.New(rand.NewSource(5)))
		opt, _ := NewSGD(0.02, momentum, 0)
		var loss float64
		for epoch := 0; epoch < 10; epoch++ {
			loss = net.TrainEpochWith(samples, 16, opt)
		}
		return loss
	}
	plain := run(0)
	mom := run(0.9)
	if mom >= plain {
		t.Errorf("momentum loss %v not below plain %v after equal epochs", mom, plain)
	}
}
