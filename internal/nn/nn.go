// Package nn implements a small, from-scratch neural network (dense
// layers, ReLU, softmax cross-entropy, SGD) on float64 slices.
//
// Its two jobs in the TrainBox reproduction:
//
//  1. demonstrate the paper's Figure 5 claim — training with on-line data
//     augmentation reaches higher held-out accuracy than training
//     without it — using the *real* augmentation kernels from
//     internal/imgproc, and
//  2. produce genuine gradient vectors for the ring all-reduce in
//     internal/collective, so model synchronization is exercised on real
//     data rather than zeros.
//
// It is intentionally minimal: the paper treats model computation as a
// black-box throughput source (TPU measurements); this package only needs
// to be a correct learner.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one dense layer with optional ReLU activation.
type Layer struct {
	In, Out int
	// W is row-major Out×In; B has Out entries.
	W, B []float64
	ReLU bool

	// Gradients of the last Backward call, same shapes as W and B.
	GradW, GradB []float64

	// cached forward values
	lastInput []float64
	lastPre   []float64
}

// NewLayer creates a dense layer with He-initialized weights.
func NewLayer(in, out int, relu bool, rng *rand.Rand) *Layer {
	l := &Layer{
		In: in, Out: out, ReLU: relu,
		W: make([]float64, in*out), B: make([]float64, out),
		GradW: make([]float64, in*out), GradB: make([]float64, out),
	}
	scale := math.Sqrt(2 / float64(in))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * scale
	}
	return l
}

// Forward computes the layer output for one input vector.
func (l *Layer) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.In, len(x)))
	}
	l.lastInput = append(l.lastInput[:0], x...)
	if cap(l.lastPre) < l.Out {
		l.lastPre = make([]float64, l.Out)
	}
	l.lastPre = l.lastPre[:l.Out]
	out := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, v := range x {
			sum += row[i] * v
		}
		l.lastPre[o] = sum
		if l.ReLU && sum < 0 {
			sum = 0
		}
		out[o] = sum
	}
	return out
}

// Backward accumulates gradients for the most recent Forward and returns
// the gradient with respect to the layer input.
func (l *Layer) Backward(gradOut []float64) []float64 {
	if len(gradOut) != l.Out {
		panic(fmt.Sprintf("nn: layer backward expects %d grads, got %d", l.Out, len(gradOut)))
	}
	gradIn := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := gradOut[o]
		if l.ReLU && l.lastPre[o] <= 0 {
			g = 0
		}
		l.GradB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		grow := l.GradW[o*l.In : (o+1)*l.In]
		for i := range row {
			grow[i] += g * l.lastInput[i]
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

// ZeroGrad clears accumulated gradients.
func (l *Layer) ZeroGrad() {
	for i := range l.GradW {
		l.GradW[i] = 0
	}
	for i := range l.GradB {
		l.GradB[i] = 0
	}
}

// Step applies SGD with the given learning rate, scaling gradients by
// 1/batch.
func (l *Layer) Step(lr float64, batch int) {
	scale := lr / float64(batch)
	for i := range l.W {
		l.W[i] -= scale * l.GradW[i]
	}
	for i := range l.B {
		l.B[i] -= scale * l.GradB[i]
	}
}

// Network is a feed-forward stack of dense layers ending in logits.
type Network struct {
	Layers []*Layer
}

// NewMLP builds a multilayer perceptron with the given layer widths;
// hidden layers use ReLU, the final layer emits logits.
func NewMLP(widths []int, rng *rand.Rand) *Network {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	net := &Network{}
	for i := 0; i+1 < len(widths); i++ {
		relu := i+2 < len(widths)
		net.Layers = append(net.Layers, NewLayer(widths[i], widths[i+1], relu, rng))
	}
	return net
}

// Forward runs the network and returns the logits.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LossAndBackward computes softmax cross-entropy loss against the label,
// backpropagates, and accumulates gradients. Forward must have been
// called for this sample immediately before.
func (n *Network) LossAndBackward(logits []float64, label int) float64 {
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	grad := append([]float64(nil), probs...)
	grad[label] -= 1
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return loss
}

// ZeroGrad clears all layer gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		l.ZeroGrad()
	}
}

// Step applies SGD to every layer.
func (n *Network) Step(lr float64, batch int) {
	for _, l := range n.Layers {
		l.Step(lr, batch)
	}
}

// Predict returns the argmax class of the logits for x.
func (n *Network) Predict(x []float64) int {
	logits := n.Forward(x)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// Gradients flattens all accumulated gradients into one vector, the unit
// of model synchronization. Layout: layer0.W, layer0.B, layer1.W, …
func (n *Network) Gradients() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.Layers {
		out = append(out, l.GradW...)
		out = append(out, l.GradB...)
	}
	return out
}

// SetGradients overwrites accumulated gradients from a flat vector with
// the Gradients layout; it is how synchronized gradients are written back
// after all-reduce.
func (n *Network) SetGradients(flat []float64) error {
	if len(flat) != n.NumParams() {
		return fmt.Errorf("nn: gradient vector has %d entries, want %d", len(flat), n.NumParams())
	}
	off := 0
	for _, l := range n.Layers {
		off += copy(l.GradW, flat[off:off+len(l.GradW)])
		off += copy(l.GradB, flat[off:off+len(l.GradB)])
	}
	return nil
}

// Weights flattens all learnable parameters into one vector using the
// Gradients layout (layer0.W, layer0.B, layer1.W, …). The returned slice
// is a copy; mutating it does not touch the network.
func (n *Network) Weights() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.Layers {
		out = append(out, l.W...)
		out = append(out, l.B...)
	}
	return out
}

// SetWeights overwrites all learnable parameters from a flat vector with
// the Weights layout; it is how a checkpoint restores a network.
func (n *Network) SetWeights(flat []float64) error {
	if len(flat) != n.NumParams() {
		return fmt.Errorf("nn: weight vector has %d entries, want %d", len(flat), n.NumParams())
	}
	off := 0
	for _, l := range n.Layers {
		off += copy(l.W, flat[off:off+len(l.W)])
		off += copy(l.B, flat[off:off+len(l.B)])
	}
	return nil
}

// Sample is one training example.
type Sample struct {
	X     []float64
	Label int
}

// TrainEpoch runs one epoch of minibatch SGD over samples (in order) and
// returns the mean loss.
func (n *Network) TrainEpoch(samples []Sample, batch int, lr float64) float64 {
	if batch <= 0 {
		batch = 1
	}
	var total float64
	for start := 0; start < len(samples); start += batch {
		end := start + batch
		if end > len(samples) {
			end = len(samples)
		}
		n.ZeroGrad()
		for _, s := range samples[start:end] {
			logits := n.Forward(s.X)
			total += n.LossAndBackward(logits, s.Label)
		}
		n.Step(lr, end-start)
	}
	return total / float64(len(samples))
}

// Accuracy returns the fraction of samples the network classifies
// correctly.
func (n *Network) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
