package nn

import (
	"fmt"
	"math"
)

// SGD is a stateful optimizer with optional momentum and L2 weight decay
// — the update rule of the paper's workloads (large-minibatch SGD per
// Goyal et al. [13], which the paper cites for its batch-size argument).
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum is the velocity coefficient (0 = plain SGD).
	Momentum float64
	// WeightDecay is the L2 coefficient applied to weights (not biases).
	WeightDecay float64

	velocity [][]float64 // per layer: W then B, lazily initialized
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate %v must be positive", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("nn: momentum %v outside [0,1)", momentum)
	}
	if weightDecay < 0 {
		return nil, fmt.Errorf("nn: weight decay %v must be non-negative", weightDecay)
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}, nil
}

// Step applies one update from the network's accumulated gradients,
// scaled by 1/batch, and leaves the gradients untouched (call ZeroGrad
// before the next accumulation as usual).
func (o *SGD) Step(n *Network, batch int) {
	if batch <= 0 {
		batch = 1
	}
	if o.velocity == nil {
		o.velocity = make([][]float64, 2*len(n.Layers))
		for i, l := range n.Layers {
			o.velocity[2*i] = make([]float64, len(l.W))
			o.velocity[2*i+1] = make([]float64, len(l.B))
		}
	}
	inv := 1 / float64(batch)
	for i, l := range n.Layers {
		vw, vb := o.velocity[2*i], o.velocity[2*i+1]
		for j := range l.W {
			g := l.GradW[j]*inv + o.WeightDecay*l.W[j]
			vw[j] = o.Momentum*vw[j] + g
			l.W[j] -= o.LR * vw[j]
		}
		for j := range l.B {
			g := l.GradB[j] * inv
			vb[j] = o.Momentum*vb[j] + g
			l.B[j] -= o.LR * vb[j]
		}
	}
}

// Velocity flattens the momentum state into one vector with the
// Weights layout (layer0.W, layer0.B, layer1.W, …). It returns nil when
// the optimizer has not stepped yet (state is all zero). The returned
// slice is a copy.
func (o *SGD) Velocity() []float64 {
	if o.velocity == nil {
		return nil
	}
	total := 0
	for _, v := range o.velocity {
		total += len(v)
	}
	out := make([]float64, 0, total)
	for _, v := range o.velocity {
		out = append(out, v...)
	}
	return out
}

// SetVelocity overwrites the momentum state from a flat vector with the
// Weights layout, sized for the given network. A nil or empty vector
// resets the optimizer to the pre-first-step state. It is how a
// checkpoint restores optimizer state.
func (o *SGD) SetVelocity(n *Network, flat []float64) error {
	if len(flat) == 0 {
		o.velocity = nil
		return nil
	}
	if len(flat) != n.NumParams() {
		return fmt.Errorf("nn: velocity vector has %d entries, want %d", len(flat), n.NumParams())
	}
	v := make([][]float64, 2*len(n.Layers))
	off := 0
	for i, l := range n.Layers {
		v[2*i] = append([]float64(nil), flat[off:off+len(l.W)]...)
		off += len(l.W)
		v[2*i+1] = append([]float64(nil), flat[off:off+len(l.B)]...)
		off += len(l.B)
	}
	o.velocity = v
	return nil
}

// VelocityNorm returns the L2 norm of the optimizer state (diagnostics).
func (o *SGD) VelocityNorm() float64 {
	var s float64
	for _, v := range o.velocity {
		for _, x := range v {
			s += x * x
		}
	}
	return math.Sqrt(s)
}

// TrainEpochWith runs one epoch of minibatch SGD with the optimizer and
// returns the mean loss (the optimizer-parameterized version of
// TrainEpoch).
func (n *Network) TrainEpochWith(samples []Sample, batch int, opt *SGD) float64 {
	if batch <= 0 {
		batch = 1
	}
	var total float64
	for start := 0; start < len(samples); start += batch {
		end := start + batch
		if end > len(samples) {
			end = len(samples)
		}
		n.ZeroGrad()
		for _, s := range samples[start:end] {
			logits := n.Forward(s.X)
			total += n.LossAndBackward(logits, s.Label)
		}
		opt.Step(n, end-start)
	}
	return total / float64(len(samples))
}
