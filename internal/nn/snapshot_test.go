package nn

import (
	"math/rand"
	"testing"
)

// TestWeightsRoundTrip asserts Weights/SetWeights is a bit-exact
// round-trip in the Gradients layout.
func TestWeightsRoundTrip(t *testing.T) {
	src := NewMLP([]int{4, 7, 3}, rand.New(rand.NewSource(11)))
	dst := NewMLP([]int{4, 7, 3}, rand.New(rand.NewSource(99)))

	w := src.Weights()
	if len(w) != src.NumParams() {
		t.Fatalf("Weights() length = %d, want %d", len(w), src.NumParams())
	}
	if err := dst.SetWeights(w); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	for li := range src.Layers {
		for i := range src.Layers[li].W {
			if dst.Layers[li].W[i] != src.Layers[li].W[i] {
				t.Fatalf("layer %d W[%d] differs after round-trip", li, i)
			}
		}
		for i := range src.Layers[li].B {
			if dst.Layers[li].B[i] != src.Layers[li].B[i] {
				t.Fatalf("layer %d B[%d] differs after round-trip", li, i)
			}
		}
	}

	// The returned slice is a copy: mutating it must not touch the net.
	before := src.Layers[0].W[0]
	w[0] += 42
	if src.Layers[0].W[0] != before {
		t.Fatal("mutating Weights() result changed the network")
	}

	if err := dst.SetWeights(w[:len(w)-1]); err == nil {
		t.Fatal("SetWeights accepted a short vector")
	}
}

// TestVelocityRoundTrip asserts that restoring optimizer velocity into a
// fresh SGD makes subsequent steps bit-identical to the original.
func TestVelocityRoundTrip(t *testing.T) {
	mkNet := func() *Network { return NewMLP([]int{3, 5, 2}, rand.New(rand.NewSource(7))) }
	x := []float64{0.5, -0.3, 1.2}

	a := mkNet()
	optA, _ := NewSGD(0.1, 0.9, 1e-4)
	if optA.Velocity() != nil {
		t.Fatal("Velocity() before first step should be nil")
	}
	for k := 0; k < 3; k++ {
		a.ZeroGrad()
		a.LossAndBackward(a.Forward(x), 1)
		optA.Step(a, 1)
	}

	// Snapshot weights + velocity, restore into fresh net/optimizer.
	b := mkNet()
	if err := b.SetWeights(a.Weights()); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	optB, _ := NewSGD(0.1, 0.9, 1e-4)
	v := optA.Velocity()
	if len(v) != a.NumParams() {
		t.Fatalf("Velocity() length = %d, want %d", len(v), a.NumParams())
	}
	if err := optB.SetVelocity(b, v); err != nil {
		t.Fatalf("SetVelocity: %v", err)
	}

	// Two more steps on each must stay bit-identical.
	for k := 0; k < 2; k++ {
		a.ZeroGrad()
		a.LossAndBackward(a.Forward(x), 1)
		optA.Step(a, 1)
		b.ZeroGrad()
		b.LossAndBackward(b.Forward(x), 1)
		optB.Step(b, 1)
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("weight %d diverged after velocity restore: %v vs %v", i, wa[i], wb[i])
		}
	}

	// Velocity() must be a copy.
	v2 := optA.Velocity()
	v2[0] += 1
	if optA.Velocity()[0] == v2[0] {
		t.Fatal("mutating Velocity() result changed optimizer state")
	}

	// Bad sizes rejected; nil resets.
	if err := optB.SetVelocity(b, v[:1]); err == nil {
		t.Fatal("SetVelocity accepted a short vector")
	}
	if err := optB.SetVelocity(b, nil); err != nil {
		t.Fatalf("SetVelocity(nil): %v", err)
	}
	if optB.Velocity() != nil {
		t.Fatal("SetVelocity(nil) did not reset state")
	}
}
