package train

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/nn"
	"trainbox/internal/storage"
	"trainbox/internal/units"
)

// modelsIdentical asserts two trained models are byte-for-byte equal —
// the bar for "the option changed nothing about the computation".
func modelsIdentical(t *testing.T, label string, a, b *nn.Network) {
	t.Helper()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("%s: layer %d weight %d diverged: %v vs %v",
					label, li, i, a.Layers[li].W[i], b.Layers[li].W[i])
			}
		}
		for i := range a.Layers[li].B {
			if a.Layers[li].B[i] != b.Layers[li].B[i] {
				t.Fatalf("%s: layer %d bias %d diverged", label, li, i)
			}
		}
	}
}

// TestEchoFactorOneBitIdentical: echo factor 1 inserts the echo stage
// but must be a perfect no-op — same steps, same losses, same final
// weights as a run without the stage.
func TestEchoFactorOneBitIdentical(t *testing.T) {
	exec, store, keys := setup(t, 16)
	want, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys),
		WithEchoFactor(1), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Steps) != len(want.Steps) {
		t.Fatalf("steps = %d, want %d", len(got.Steps), len(want.Steps))
	}
	for i := range want.Steps {
		if got.Steps[i] != want.Steps[i] && got.Steps[i].MeanLoss != want.Steps[i].MeanLoss {
			t.Fatalf("step %d loss %v, want %v", i, got.Steps[i].MeanLoss, want.Steps[i].MeanLoss)
		}
	}
	modelsIdentical(t, "echo=1 vs no echo", got.Model(), want.Model())
}

// TestWithCacheBitIdenticalAndAmortizes: a cached run produces the
// exact model of an uncached run — the cache-aware (resident-first)
// prepare order is restored before the batch reaches the replicas —
// while collapsing decodes to one per key across all epochs.
func TestWithCacheBitIdenticalAndAmortizes(t *testing.T) {
	execPlain, store, keys := setup(t, 16)
	want, err := Run(context.Background(), baseConfig(), WithDataset(execPlain, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	// Bind mutates the executor's preparer, so the cached run gets its
	// own executor (same worker count and dataset seed).
	icfg := dataprep.DefaultImageConfig()
	icfg.CropW, icfg.CropH = 32, 32
	execCached := dataprep.NewExecutor(dataprep.ImagePreparer{Config: icfg}, 2, 5)
	c := dscache.New(64 * units.MB)
	got, err := Run(context.Background(), baseConfig(), WithDataset(execCached, store, keys),
		WithCache(c), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	modelsIdentical(t, "cached vs uncached", got.Model(), want.Model())

	cfg := baseConfig()
	s := c.Stats()
	if s.Misses != int64(len(keys)) {
		t.Fatalf("decodes = %d, want %d (one per key across %d epochs)", s.Misses, len(keys), cfg.Epochs)
	}
	if s.Hits < int64(len(keys)*(cfg.Epochs-1)) {
		t.Fatalf("hits = %d, want ≥ %d", s.Hits, len(keys)*(cfg.Epochs-1))
	}
}

// TestWithCacheAndEchoCompose: both options together still match the
// plain run trained with the same echoed step schedule.
func TestWithCacheAndEchoCompose(t *testing.T) {
	execPlain, store, keys := setup(t, 16)
	want, err := Run(context.Background(), baseConfig(), WithDataset(execPlain, store, keys),
		WithEchoFactor(2), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	icfg := dataprep.DefaultImageConfig()
	icfg.CropW, icfg.CropH = 32, 32
	execCached := dataprep.NewExecutor(dataprep.ImagePreparer{Config: icfg}, 2, 5)
	got, err := Run(context.Background(), baseConfig(), WithDataset(execCached, store, keys),
		WithCache(dscache.New(64*units.MB)), WithEchoFactor(2), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	modelsIdentical(t, "cache+echo vs echo", got.Model(), want.Model())
}

// TestWithEchoFactorReplaysSteps: factor n multiplies the step
// schedule — n step-stage passes per prepared epoch — and reports it
// through the echo metrics.
func TestWithEchoFactorReplaysSteps(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	base, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	echoed, err := Run(context.Background(), cfg, WithDataset(exec, store, keys),
		WithEchoFactor(2), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if len(echoed.Steps) != 2*len(base.Steps) {
		t.Fatalf("echoed steps = %d, want %d", len(echoed.Steps), 2*len(base.Steps))
	}
	if echoed.SamplesProcessed != 2*base.SamplesProcessed {
		t.Fatalf("echoed samples = %d, want %d", echoed.SamplesProcessed, 2*base.SamplesProcessed)
	}
	if n := echoed.Metrics.Counters["train.driver.echo_replays"]; n != int64(cfg.Epochs) {
		t.Fatalf("echo_replays = %d, want %d (one extra replica per epoch)", n, cfg.Epochs)
	}
	if f := echoed.Metrics.Gauges["train.driver.echo_factor"]; f != 2 {
		t.Fatalf("echo_factor gauge = %v, want 2", f)
	}
}

// TestWithAdaptiveEchoKicksInWhenPrepBound: a run whose preparation is
// slower than its steps must start echoing once the overlap gauge
// crosses 1, and the replicas must stay synchronized through the
// replayed epochs.
func TestWithAdaptiveEchoKicksInWhenPrepBound(t *testing.T) {
	exec, store, keys := setup(t, 8)
	slow := func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		ps, err := exec.PrepareBatchContext(ctx, store, keys, epoch)
		time.Sleep(20 * time.Millisecond) // prep-bound by construction
		return ps, err
	}
	cfg := baseConfig()
	cfg.Replicas = 2
	cfg.Epochs = 8
	res, err := Run(context.Background(), cfg, WithPreparer(slow, len(keys)),
		WithAdaptiveEcho(3), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Metrics.Counters["train.driver.echo_replays"]; n == 0 {
		t.Fatalf("adaptive echo never engaged on a prep-bound run (overlap=%v)",
			res.Metrics.Gauges["train.driver.prep_step_overlap"])
	}
	if len(res.Steps) <= cfg.Epochs {
		t.Fatalf("steps = %d, want > %d (replays add steps)", len(res.Steps), cfg.Epochs)
	}
	if d := MaxReplicaDivergence(res.Replicas); d > 1e-12 {
		t.Fatalf("replica divergence %g after echoed epochs", d)
	}
}

// TestChaosEchoTrainCancelRecyclesBuffers: cancelling a cached, echoed
// run mid-epoch — replayed batches in flight — must return every
// pooled output buffer to the executor (Gets == Puts), whichever stage
// each replica died in.
func TestChaosEchoTrainCancelRecyclesBuffers(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		icfg := dataprep.DefaultImageConfig()
		icfg.CropW, icfg.CropH = 32, 32
		exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: icfg}, 2, 5)
		store := storage.NewStore(storage.DefaultSSDSpec())
		if err := dataprep.BuildImageDataset(store, 16, 4, 5); err != nil {
			t.Fatal(err)
		}
		keys := store.Keys()
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		target := int32(4 + trial*6)
		feat := func(p dataprep.Prepared) ([]float64, int, error) {
			if calls.Add(1) == target {
				cancel() // mid-extract, with echoed replicas queued behind
			}
			return stripeFeature(p)
		}
		cfg := baseConfig()
		cfg.Epochs = 6
		_, err := Run(ctx, cfg, WithDataset(exec, store, keys),
			WithCache(dscache.New(64*units.MB)), WithEchoFactor(3), WithFeature(feat))
		if err == nil && calls.Load() >= target {
			t.Fatalf("trial %d: run succeeded despite cancellation", trial)
		}
		st := exec.OutputStats()
		if st.Gets != st.Puts {
			t.Fatalf("trial %d: pooled output buffers leaked on cancel: Gets=%d Puts=%d News=%d",
				trial, st.Gets, st.Puts, st.News)
		}
		cancel()
	}
}

// TestCacheEchoOptionValidation pins down the option error matrix.
func TestCacheEchoOptionValidation(t *testing.T) {
	exec, store, keys := setup(t, 8)
	cases := []struct {
		name string
		opts []Option
	}{
		{"nil cache", []Option{WithDataset(exec, store, keys), WithCache(nil), WithFeature(stripeFeature)}},
		{"cache without dataset", []Option{
			WithPreparer(func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
				return exec.PrepareBatchContext(ctx, store, keys, epoch)
			}, len(keys)),
			WithCache(dscache.New(units.MB)), WithFeature(stripeFeature)}},
		{"echo factor zero", []Option{WithDataset(exec, store, keys), WithEchoFactor(0), WithFeature(stripeFeature)}},
		{"adaptive cap zero", []Option{WithDataset(exec, store, keys), WithAdaptiveEcho(0), WithFeature(stripeFeature)}},
		{"two echo policies", []Option{WithDataset(exec, store, keys), WithEchoFactor(2), WithAdaptiveEcho(3), WithFeature(stripeFeature)}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), baseConfig(), tc.opts...); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if testing.Verbose() {
			fmt.Println(tc.name+":", err)
		}
	}
}
