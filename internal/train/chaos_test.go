package train

import (
	"context"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/fpga"
	"trainbox/internal/metrics"
	"trainbox/internal/nvme"
)

// assertModelsBitIdentical compares every parameter of the two trained
// models exactly: chaos runs must reproduce the fault-free oracle
// bit-for-bit, because retries, re-dispatch, and host fallback only
// change *where* a sample is prepared, never its content or order.
func assertModelsBitIdentical(t *testing.T, got, want Result) {
	t.Helper()
	a, b := got.Model(), want.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("layer %d weight %d: %v != %v — chaos run diverged from oracle",
					li, i, a.Layers[li].W[i], b.Layers[li].W[i])
			}
		}
		for i := range a.Layers[li].B {
			if a.Layers[li].B[i] != b.Layers[li].B[i] {
				t.Fatalf("layer %d bias %d diverged from oracle", li, i)
			}
		}
	}
	if len(got.Steps) != len(want.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(got.Steps), len(want.Steps))
	}
	for i := range want.Steps {
		if got.Steps[i].MeanLoss != want.Steps[i].MeanLoss {
			t.Fatalf("step %d loss %v != oracle %v", i, got.Steps[i].MeanLoss, want.Steps[i].MeanLoss)
		}
	}
}

// TestTrainSurvivesStorageFaultStorm trains to completion through a
// storage layer injecting ~15% transient read errors, latency spikes,
// and occasional stalls (rescued by per-attempt deadlines), and must
// produce the oracle's model bit-for-bit with >0 retries on record.
func TestTrainSurvivesStorageFaultStorm(t *testing.T) {
	oracleExec, oracleStore, keys := setup(t, 16)
	oracle, err := Run(context.Background(), baseConfig(), WithDataset(oracleExec, oracleStore, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	stormExec, stormStore, _ := setup(t, 16)
	reg := metrics.NewRegistry()
	storm := faults.Metered(faults.Chain(
		faults.NewErrorRate(1001, 0.15, nil),
		faults.NewLatency(1002, 0.10, 200*time.Microsecond),
		faults.NewStall(1003, 0.03),
	), reg)
	policy := faults.RetryPolicy{
		MaxAttempts:    6,
		BaseBackoff:    100 * time.Microsecond,
		MaxBackoff:     2 * time.Millisecond,
		Jitter:         0.5,
		AttemptTimeout: 50 * time.Millisecond,
		Seed:           1004,
	}
	stormStore.WithMetrics(reg).WithFaults(storm).WithRetry(policy)
	cfg := baseConfig()
	cfg.Metrics = reg

	res, err := Run(context.Background(), cfg, WithDataset(stormExec, stormStore, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatalf("training did not survive the fault storm: %v", err)
	}
	assertModelsBitIdentical(t, res, oracle)

	snap := res.Metrics
	if snap.Counters["faults.injector.errors"] == 0 {
		t.Error("storm injected no errors — test is vacuous")
	}
	if snap.Counters["storage.nvme.retries"] == 0 {
		t.Error("no storage retries recorded under a 15% fault rate")
	}
	if snap.Counters["storage.nvme.retry_backoff_ns"] == 0 {
		t.Error("no backoff time recorded")
	}
}

// TestTrainSurvivesPooledDeviceDeath is the pool-path chaos run: a
// two-device prep pool where one device injects ~12% read faults and
// then dies outright mid-run. Training must complete on the surviving
// device (host fallback armed but ideally idle), match the fault-free
// oracle bit-for-bit, and the health layer must record exactly one
// ejection plus the sample re-dispatches that preceded it.
func TestTrainSurvivesPooledDeviceDeath(t *testing.T) {
	oracleExec, oracleStore, keys := setup(t, 8)
	cfg := baseConfig()
	cfg.Epochs = 6
	oracle, err := Run(context.Background(), cfg, WithDataset(oracleExec, oracleStore, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	// Pool-path run over the same dataset: setup() rebuilds it
	// deterministically, so both runs see identical stored bytes.
	_, store, _ := setup(t, 8)
	ns, err := nvme.LoadStore(store)
	if err != nil {
		t.Fatal(err)
	}
	imgCfg := dataprep.DefaultImageConfig()
	imgCfg.CropW, imgCfg.CropH = 32, 32
	reg := metrics.NewRegistry()

	// Device 0: ~12% injected read faults, then death after 10 reads —
	// the "flaky, then gone" lifecycle. Device 1 stays healthy.
	flakyThenDead := faults.Chain(
		faults.NewDeviceDeath(10),
		faults.NewErrorRate(2001, 0.12, nil),
	)
	var handlers []*fpga.P2PHandler
	for _, inj := range []faults.Injector{flakyThenDead, nil} {
		h, err := fpga.NewP2PHandler(ns, fpga.NewImageEmulator(imgCfg), 8)
		if err != nil {
			t.Fatal(err)
		}
		handlers = append(handlers, h.WithFaults(inj))
	}
	fallback := dataprep.NewExecutor(dataprep.ImagePreparer{Config: imgCfg}, 2, 0)
	cluster, err := fpga.NewCluster(handlers,
		fpga.WithHealth(fpga.HealthConfig{EjectAfter: 3, ProbationBatches: 0}),
		fpga.WithFallback(fallback, store),
		fpga.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	cfg.Metrics = reg
	const datasetSeed = 5 // matches setup()'s executor seed
	res, err := RunWithPreparer(cfg, func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		return cluster.PrepareBatch(ctx, store.Keys(), datasetSeed, epoch)
	}, len(keys), stripeFeature)
	if err != nil {
		t.Fatalf("training did not survive the device death: %v", err)
	}
	assertModelsBitIdentical(t, res, oracle)

	snap := res.Metrics
	if got := snap.Counters["fpga.pool.devices_ejected"]; got != 1 {
		t.Errorf("devices_ejected = %d, want exactly 1", got)
	}
	if snap.Counters["fpga.pool.sample_retries"] == 0 {
		t.Error("no sample retries recorded around the device death")
	}
	if got := cluster.ActiveDevices(); got != 1 {
		t.Errorf("active devices after run = %d, want 1", got)
	}
	if snap.Counters["fpga.pool.devices_readmitted"] != 0 {
		t.Error("permanent ejection (ProbationBatches 0) must never readmit")
	}
}
