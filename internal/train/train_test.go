package train

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/metrics"
	"trainbox/internal/nn"
	"trainbox/internal/storage"
)

// stripeFeature pools the prepared tensor's first channel into 8×8
// features (see the Figure 5 study for the rationale).
func stripeFeature(p dataprep.Prepared) ([]float64, int, error) {
	ten := p.Image
	const block = 4
	side := ten.W / block
	feat := make([]float64, side*side)
	for by := 0; by < side; by++ {
		for bx := 0; bx < side; bx++ {
			var sum float64
			for y := by * block; y < (by+1)*block; y++ {
				for x := bx * block; x < (bx+1)*block; x++ {
					sum += float64(ten.At(0, y, x))
				}
			}
			feat[by*side+bx] = sum / (block * block)
		}
	}
	return feat, p.Label, nil
}

func setup(t *testing.T, items int) (*dataprep.Executor, *storage.Store, []string) {
	t.Helper()
	store := storage.NewStore(storage.DefaultSSDSpec())
	if err := dataprep.BuildImageDataset(store, items, 4, 5); err != nil {
		t.Fatal(err)
	}
	cfg := dataprep.DefaultImageConfig()
	cfg.CropW, cfg.CropH = 32, 32
	exec := dataprep.NewExecutor(dataprep.ImagePreparer{Config: cfg}, 2, 5)
	return exec, store, store.Keys()
}

func baseConfig() Config {
	return Config{
		Replicas: 4, Widths: []int{64, 16, 4}, Epochs: 3,
		LearningRate: 0.05, PrefetchDepth: 2, Seed: 9,
	}
}

func TestRunKeepsReplicasSynchronized(t *testing.T) {
	exec, store, keys := setup(t, 16)
	res, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 4 {
		t.Fatalf("replicas = %d", len(res.Replicas))
	}
	// All replicas applied identical averaged gradients; divergence must
	// be at floating-point noise level.
	if d := MaxReplicaDivergence(res.Replicas); d > 1e-12 {
		t.Errorf("replica divergence = %g, want ≈0", d)
	}
	if res.SamplesProcessed != 16*3 {
		t.Errorf("samples processed = %d, want 48", res.SamplesProcessed)
	}
	if len(res.Steps) == 0 || res.Elapsed <= 0 {
		t.Error("missing step stats")
	}
}

func TestRunReducesLoss(t *testing.T) {
	exec, store, keys := setup(t, 32)
	cfg := baseConfig()
	cfg.Epochs = 8
	cfg.LearningRate = 0.1
	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Steps[0].MeanLoss
	last := res.FinalLoss()
	if last >= first {
		t.Errorf("loss did not decrease: %v → %v", first, last)
	}
}

// TestDataParallelMatchesSingleWorkerOracle: R replicas with shard-size
// minibatches must produce (numerically) the same model as one replica
// processing the same global minibatch, because gradients are averaged
// over the global batch either way.
func TestDataParallelMatchesSingleWorkerOracle(t *testing.T) {
	exec, store, keys := setup(t, 16)

	multi := baseConfig()
	multi.Epochs = 2
	resMulti, err := Run(context.Background(), multi, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	single := multi
	single.Replicas = 1
	resSingle, err := Run(context.Background(), single, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	a, b := resMulti.Model(), resSingle.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			d := math.Abs(a.Layers[li].W[i] - b.Layers[li].W[i])
			if d > 1e-9 {
				t.Fatalf("layer %d weight %d differs by %g between 4-replica and oracle", li, i, d)
			}
		}
	}
}

func TestRunMinibatchSplitting(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	cfg.Replicas = 2
	cfg.MinibatchPerReplica = 2 // shard of 8 → 4 steps per epoch
	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * cfg.Epochs; len(res.Steps) != want {
		t.Errorf("steps = %d, want %d", len(res.Steps), want)
	}
	if d := MaxReplicaDivergence(res.Replicas); d > 1e-12 {
		t.Errorf("divergence = %g", d)
	}
}

func TestRunValidation(t *testing.T) {
	exec, store, keys := setup(t, 8)
	bads := []func(*Config){
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Widths = []int{3} },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.PrefetchDepth = 0 },
	}
	for i, mutate := range bads {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(nil)); err == nil {
		t.Error("nil feature accepted")
	}
	cfg := baseConfig()
	cfg.Replicas = 100
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("more replicas than keys accepted")
	}
}

// TestRunStorageErrorCancelsPipeline: a storage read failing mid-run
// (a key that vanishes from the shard) must cancel the whole
// prepare→extract→step pipeline, surface the storage error from Run,
// and leak no goroutines.
func TestRunStorageErrorCancelsPipeline(t *testing.T) {
	exec, store, keys := setup(t, 16)
	base := runtime.NumGoroutine()
	cfg := baseConfig()
	cfg.Epochs = 50
	badKeys := append(append([]string(nil), keys...), "missing")
	_, err := Run(context.Background(), cfg, WithDataset(exec, store, badKeys), WithFeature(stripeFeature))
	if err == nil {
		t.Fatal("run with missing key succeeded")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error does not name the failing sample: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after failed run: %d running, started with %d", n, base)
	}
}

// TestRunFeatureErrorCancelsPipeline: the extract stage failing must
// likewise abort the run cleanly.
func TestRunFeatureErrorCancelsPipeline(t *testing.T) {
	exec, store, keys := setup(t, 8)
	base := runtime.NumGoroutine()
	cfg := baseConfig()
	cfg.Epochs = 40
	calls := 0
	badFeature := func(p dataprep.Prepared) ([]float64, int, error) {
		calls++
		if calls > 12 {
			return nil, 0, dataprep.ErrExhausted // any sentinel error
		}
		return stripeFeature(p)
	}
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(badFeature)); err == nil {
		t.Fatal("run with failing feature succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked: %d running, started with %d", n, base)
	}
}

func TestMaxReplicaDivergenceDetectsDrift(t *testing.T) {
	exec, store, keys := setup(t, 8)
	res, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	res.Replicas[1].Layers[0].W[0] += 0.5
	if d := MaxReplicaDivergence(res.Replicas); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("divergence = %v, want 0.5", d)
	}
	if MaxReplicaDivergence(nil) != 0 {
		t.Error("empty divergence should be 0")
	}
}

func TestResultAccessors(t *testing.T) {
	var r Result
	if r.FinalLoss() != 0 {
		t.Error("empty FinalLoss should be 0")
	}
	r.Replicas = []*nn.Network{nil}
	if r.Model() != nil {
		t.Error("Model should return replica 0")
	}
}

func TestRunWithMomentumKeepsReplicasSynchronized(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	cfg.Momentum = 0.9
	cfg.WeightDecay = 1e-4
	cfg.Epochs = 4
	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	// Momentum state is per replica; identical averaged gradients must
	// keep the velocities — and therefore the weights — in lockstep.
	if d := MaxReplicaDivergence(res.Replicas); d > 1e-12 {
		t.Errorf("momentum replicas diverged by %g", d)
	}
}

func TestRunRejectsBadOptimizer(t *testing.T) {
	exec, store, keys := setup(t, 8)
	cfg := baseConfig()
	cfg.Momentum = 1.5
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("momentum ≥ 1 accepted")
	}
}

// TestRunMetricsSnapshot: the driver must expose a full telemetry
// snapshot — its own step/sync/overlap series, the prepare→extract→step
// pipeline's stage series, and (when the executor and store share the
// registry) the dataprep and storage series — the acceptance surface of
// the unified metrics layer.
func TestRunMetricsSnapshot(t *testing.T) {
	exec, store, keys := setup(t, 16)
	reg := metrics.NewRegistry()
	exec.WithMetrics(reg)
	store.WithMetrics(reg)
	cfg := baseConfig()
	cfg.Metrics = reg

	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	snap := res.Metrics
	steps := snap.Histograms["train.driver.step_ns"]
	if int(steps.Count) != len(res.Steps) {
		t.Errorf("train.step_ns count = %d, want %d", steps.Count, len(res.Steps))
	}
	if steps.Count > 0 && (steps.P50 <= 0 || steps.P99 < steps.P50) {
		t.Errorf("step latency quantiles implausible: %+v", steps)
	}
	if got := snap.Counters["train.driver.samples"]; got != int64(res.SamplesProcessed) {
		t.Errorf("train.samples = %d, want %d", got, res.SamplesProcessed)
	}
	if snap.Histograms["train.driver.sync_ns"].Count != steps.Count {
		t.Errorf("train.sync_ns count = %d, want %d", snap.Histograms["train.driver.sync_ns"].Count, steps.Count)
	}
	if _, ok := snap.Gauges["train.driver.prep_step_overlap"]; !ok {
		t.Error("train.prep_step_overlap gauge missing")
	}

	// Pipeline stage series from the driver's own staged pipeline.
	for _, name := range []string{
		"pipeline.train.prepare.items",
		"pipeline.train.extract.items",
		"pipeline.train.step.items",
	} {
		if got := snap.Counters[name]; got != int64(cfg.Epochs) {
			t.Errorf("%s = %d, want %d", name, got, cfg.Epochs)
		}
	}

	// Shared-registry series from the executor and the store.
	if got := snap.Counters["dataprep.executor.samples_prepared"]; got != int64(cfg.Epochs*len(keys)) {
		t.Errorf("dataprep.executor.samples_prepared = %d, want %d", got, cfg.Epochs*len(keys))
	}
	if snap.Counters["storage.nvme.bytes_read"] <= 0 {
		t.Error("storage bytes_read not recorded")
	}
	if snap.Meters["train.driver.samples_rate"].RatePerSec <= 0 {
		t.Error("train sample rate not recorded")
	}
}

// TestRunWithoutMetricsStillSnapshots: with no registry configured the
// driver uses a private one, so Result.Metrics is always observable.
func TestRunWithoutMetricsStillSnapshots(t *testing.T) {
	exec, store, keys := setup(t, 8)
	res, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Histograms["train.driver.step_ns"].Count == 0 {
		t.Error("private registry snapshot empty")
	}
	// The unmetered executor must not have leaked series into it.
	if _, ok := res.Metrics.Counters["dataprep.executor.samples_prepared"]; ok {
		t.Error("executor metrics appeared without WithMetrics")
	}
}

// TestDeprecatedRunDatasetShim keeps the pre-options five-argument
// entry point alive: RunDataset must produce exactly what the options
// form produces.
func TestDeprecatedRunDatasetShim(t *testing.T) {
	exec, store, keys := setup(t, 8)
	want, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDataset(baseConfig(), exec, store, keys, stripeFeature)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, got, want)
}
