package train

import (
	"context"
	"strings"
	"testing"

	"trainbox/internal/dataprep"
)

// TestRunJobsTrainsConcurrently: two independent jobs must both finish,
// return results in job order, and match their solo-run models exactly
// (concurrency must not perturb either job's determinism).
func TestRunJobsTrainsConcurrently(t *testing.T) {
	execA, storeA, keysA := setup(t, 16)
	execB, storeB, keysB := setup(t, 8)
	cfgA := baseConfig()
	cfgB := baseConfig()
	cfgB.Replicas = 2

	soloA, err := Run(context.Background(), cfgA, WithDataset(execA, storeA, keysA), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	execA2, storeA2, keysA2 := setup(t, 16)
	results, err := RunJobs(context.Background(), []Job{
		{Name: "jobA", Config: cfgA, Options: []Option{
			WithDataset(execA2, storeA2, keysA2), WithFeature(stripeFeature)}},
		{Name: "jobB", Config: cfgB, Options: []Option{
			WithDataset(execB, storeB, keysB), WithFeature(stripeFeature)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "jobA" || results[1].Name != "jobB" {
		t.Fatalf("results out of order: %+v", results)
	}
	assertModelsBitIdentical(t, results[0].Result, soloA)
	if results[1].SamplesProcessed != 8*cfgB.Epochs {
		t.Errorf("jobB processed %d samples, want %d", results[1].SamplesProcessed, 8*cfgB.Epochs)
	}
}

// TestRunJobsFirstErrorCancelsAll: a failing job must surface its name
// in the error and cancel the workload.
func TestRunJobsFirstErrorCancelsAll(t *testing.T) {
	exec, store, keys := setup(t, 8)
	bad := append(append([]string(nil), keys...), "missing")
	cfg := baseConfig()
	cfg.Epochs = 50
	_, err := RunJobs(context.Background(), []Job{
		{Name: "healthy", Config: cfg, Options: []Option{
			WithDataset(exec, store, keys), WithFeature(stripeFeature)}},
		{Name: "doomed", Config: cfg, Options: []Option{
			WithDataset(exec, store, bad), WithFeature(stripeFeature)}},
	})
	if err == nil {
		t.Fatal("workload with a doomed job succeeded")
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Errorf("error does not name the failing job: %v", err)
	}
}

// TestRunJobsValidation: empty workloads, unnamed jobs, and duplicate
// names are rejected before any training starts.
func TestRunJobsValidation(t *testing.T) {
	if _, err := RunJobs(context.Background(), nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := RunJobs(context.Background(), []Job{{Name: ""}}); err == nil {
		t.Error("unnamed job accepted")
	}
	if _, err := RunJobs(context.Background(), []Job{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate job names accepted")
	}
}

// TestRunOptionValidation: the options constructor must reject missing
// or conflicting sources and a missing feature.
func TestRunOptionValidation(t *testing.T) {
	exec, store, keys := setup(t, 8)
	if _, err := Run(context.Background(), baseConfig(), WithFeature(stripeFeature)); err == nil {
		t.Error("run with no data source accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys)); err == nil {
		t.Error("run with no feature accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys),
		WithPreparer(func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) { return nil, nil }, 8),
		WithFeature(stripeFeature)); err == nil {
		t.Error("two data sources accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithPreparer(nil, 8), WithFeature(stripeFeature)); err == nil {
		t.Error("nil preparer accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(nil, nil, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("nil dataset accepted")
	}
}

// TestRunHonoursContext: a pre-cancelled context must abort the run.
func TestRunHonoursContext(t *testing.T) {
	exec, store, keys := setup(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig()
	cfg.Epochs = 50
	if _, err := Run(ctx, cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("cancelled run succeeded")
	}
}
