package train

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trainbox/internal/dataprep"
)

// TestRunJobsTrainsConcurrently: two independent jobs must both finish,
// return results in job order, and match their solo-run models exactly
// (concurrency must not perturb either job's determinism).
func TestRunJobsTrainsConcurrently(t *testing.T) {
	execA, storeA, keysA := setup(t, 16)
	execB, storeB, keysB := setup(t, 8)
	cfgA := baseConfig()
	cfgB := baseConfig()
	cfgB.Replicas = 2

	soloA, err := Run(context.Background(), cfgA, WithDataset(execA, storeA, keysA), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	execA2, storeA2, keysA2 := setup(t, 16)
	results, err := RunJobs(context.Background(), []Job{
		{Name: "jobA", Config: cfgA, Options: []Option{
			WithDataset(execA2, storeA2, keysA2), WithFeature(stripeFeature)}},
		{Name: "jobB", Config: cfgB, Options: []Option{
			WithDataset(execB, storeB, keysB), WithFeature(stripeFeature)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "jobA" || results[1].Name != "jobB" {
		t.Fatalf("results out of order: %+v", results)
	}
	assertModelsBitIdentical(t, results[0].Result, soloA)
	if results[1].SamplesProcessed != 8*cfgB.Epochs {
		t.Errorf("jobB processed %d samples, want %d", results[1].SamplesProcessed, 8*cfgB.Epochs)
	}
}

// TestRunJobsFirstErrorCancelsAll: a failing job must surface its name
// in the error and cancel the workload.
func TestRunJobsFirstErrorCancelsAll(t *testing.T) {
	exec, store, keys := setup(t, 8)
	bad := append(append([]string(nil), keys...), "missing")
	cfg := baseConfig()
	cfg.Epochs = 50
	_, err := RunJobs(context.Background(), []Job{
		{Name: "healthy", Config: cfg, Options: []Option{
			WithDataset(exec, store, keys), WithFeature(stripeFeature)}},
		{Name: "doomed", Config: cfg, Options: []Option{
			WithDataset(exec, store, bad), WithFeature(stripeFeature)}},
	})
	if err == nil {
		t.Fatal("workload with a doomed job succeeded")
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Errorf("error does not name the failing job: %v", err)
	}
}

// TestRunJobsValidation: empty workloads, unnamed jobs, and duplicate
// names are rejected before any training starts.
func TestRunJobsValidation(t *testing.T) {
	if _, err := RunJobs(context.Background(), nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := RunJobs(context.Background(), []Job{{Name: ""}}); err == nil {
		t.Error("unnamed job accepted")
	}
	if _, err := RunJobs(context.Background(), []Job{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate job names accepted")
	}
}

// TestRunOptionValidation: the options constructor must reject missing
// or conflicting sources and a missing feature.
func TestRunOptionValidation(t *testing.T) {
	exec, store, keys := setup(t, 8)
	if _, err := Run(context.Background(), baseConfig(), WithFeature(stripeFeature)); err == nil {
		t.Error("run with no data source accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys)); err == nil {
		t.Error("run with no feature accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys),
		WithPreparer(func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) { return nil, nil }, 8),
		WithFeature(stripeFeature)); err == nil {
		t.Error("two data sources accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithPreparer(nil, 8), WithFeature(stripeFeature)); err == nil {
		t.Error("nil preparer accepted")
	}
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(nil, nil, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("nil dataset accepted")
	}
}

// TestRunHonoursContext: a pre-cancelled context must abort the run.
func TestRunHonoursContext(t *testing.T) {
	exec, store, keys := setup(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig()
	cfg.Epochs = 50
	if _, err := Run(ctx, cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature)); err == nil {
		t.Error("cancelled run succeeded")
	}
}

// fakeBatch synthesizes n prepared samples for preparer-driven tests
// whose feature function never dereferences the payload.
func fakeBatch(n int) []dataprep.Prepared {
	out := make([]dataprep.Prepared, n)
	for i := range out {
		out[i] = dataprep.Prepared{Key: fmt.Sprintf("k%03d", i)}
	}
	return out
}

// flatFeature ignores the prepared payload entirely — it pairs with
// fakeBatch so cancellation tests control the preparer's timing without
// building real datasets.
func flatFeature(p dataprep.Prepared) ([]float64, int, error) {
	return []float64{1, 0, 1, 0}, 0, nil
}

// slowPreparer yields a fake batch per epoch after a small delay,
// counting epochs and honouring cancellation.
func slowPreparer(epochs *atomic.Int64) EpochPreparer {
	return func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		epochs.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		return fakeBatch(4), nil
	}
}

// TestRunJobsFirstErrorStatusesAndEarlyStop: when one job fails on its
// own error, the workload error names it, its slot reports JobFailed
// with the root cause, and the healthy sibling is cancelled long before
// finishing — its slot reporting JobCancelled with a context error.
func TestRunJobsFirstErrorStatusesAndEarlyStop(t *testing.T) {
	errBoom := errors.New("boom")
	var healthyEpochs atomic.Int64
	doomed := func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		if epoch >= 3 {
			return nil, errBoom
		}
		return fakeBatch(4), nil
	}
	cfg := Config{Replicas: 1, Widths: []int{4, 2}, Epochs: 1000,
		LearningRate: 0.05, PrefetchDepth: 1, Seed: 1}

	results, err := RunJobs(context.Background(), []Job{
		{Name: "healthy", Config: cfg, Options: []Option{
			WithPreparer(slowPreparer(&healthyEpochs), 4), WithFeature(flatFeature)}},
		{Name: "doomed", Config: cfg, Options: []Option{
			WithPreparer(doomed, 4), WithFeature(flatFeature)}},
	})
	if err == nil {
		t.Fatal("workload with a doomed job succeeded")
	}
	if !strings.Contains(err.Error(), "doomed") || !errors.Is(err, errBoom) {
		t.Errorf("workload error is not the doomed job's root cause: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results len = %d, want per-job outcomes even on failure", len(results))
	}
	if results[1].Status != JobFailed || !errors.Is(results[1].Err, errBoom) {
		t.Errorf("doomed slot = %v/%v, want failed/boom", results[1].Status, results[1].Err)
	}
	if results[0].Status != JobCancelled {
		t.Errorf("healthy slot status = %v, want cancelled", results[0].Status)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("healthy slot error = %v, want a context cancellation", results[0].Err)
	}
	if n := healthyEpochs.Load(); n >= 900 {
		t.Errorf("healthy job prepared %d epochs — sibling failure did not cancel it early", n)
	}
}

// TestRunJobsContextCancelStatuses: cancelling the caller's context
// mid-run must stop every job, mark every slot JobCancelled, and
// surface a context error from RunJobs itself.
func TestRunJobsContextCancelStatuses(t *testing.T) {
	var epochsA, epochsB atomic.Int64
	cfg := Config{Replicas: 1, Widths: []int{4, 2}, Epochs: 1000,
		LearningRate: 0.05, PrefetchDepth: 1, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	results, err := RunJobs(ctx, []Job{
		{Name: "a", Config: cfg, Options: []Option{
			WithPreparer(slowPreparer(&epochsA), 4), WithFeature(flatFeature)}},
		{Name: "b", Config: cfg, Options: []Option{
			WithPreparer(slowPreparer(&epochsB), 4), WithFeature(flatFeature)}},
	})
	if err == nil {
		t.Fatal("cancelled workload succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("workload error = %v, want a context cancellation", err)
	}
	for i, r := range results {
		if r.Status != JobCancelled {
			t.Errorf("job %d status = %v, want cancelled", i, r.Status)
		}
	}
	if a, b := epochsA.Load(), epochsB.Load(); a >= 900 || b >= 900 {
		t.Errorf("jobs prepared %d/%d epochs — context cancel did not stop them early", a, b)
	}
}
