package train

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"trainbox/internal/dataprep"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// chaosErrorRate returns the storm's injected error rate: def by
// default, overridden by TRAINBOX_CHAOS_RATE in (0,1) — the CI chaos
// job's knob for elevated fault pressure.
func chaosErrorRate(def float64) float64 {
	if v := os.Getenv("TRAINBOX_CHAOS_RATE"); v != "" {
		if r, err := strconv.ParseFloat(v, 64); err == nil && r > 0 && r < 1 {
			return r
		}
	}
	return def
}

// awaitGoroutines polls until the goroutine count returns to base (the
// leak check used across the chaos suite).
func awaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked: %d running, started with %d", n, base)
	}
}

// TestCheckpointRestoreBitIdentical is the determinism contract: a run
// restored from the checkpoint of epoch k must finish with weights
// bit-for-bit identical to the uninterrupted oracle — from every k.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	cfg.Epochs = 5
	cfg.Momentum = 0.9 // exercise optimizer-state capture too

	oracle, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	var cps []Checkpoint
	full, err := Run(context.Background(), cfg,
		WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithCheckpointEvery(1), WithCheckpointSink(func(cp Checkpoint) { cps = append(cps, cp) }))
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, full, oracle)
	if len(cps) != cfg.Epochs-1 {
		t.Fatalf("captured %d checkpoints, want %d (final epoch not checkpointed)", len(cps), cfg.Epochs-1)
	}

	for _, cp := range cps {
		res, err := Run(context.Background(), cfg,
			WithDataset(exec, store, keys), WithFeature(stripeFeature),
			WithRestore(cp))
		if err != nil {
			t.Fatalf("restore from epoch %d: %v", cp.Epoch, err)
		}
		// The restored run only replays epochs cp.Epoch+1…: same final
		// weights, fewer steps — compare weights only.
		a, b := res.Model(), oracle.Model()
		for li := range a.Layers {
			for i := range a.Layers[li].W {
				if a.Layers[li].W[i] != b.Layers[li].W[i] {
					t.Fatalf("restore from epoch %d: layer %d weight %d diverged from oracle", cp.Epoch, li, i)
				}
			}
			for i := range a.Layers[li].B {
				if a.Layers[li].B[i] != b.Layers[li].B[i] {
					t.Fatalf("restore from epoch %d: layer %d bias %d diverged from oracle", cp.Epoch, li, i)
				}
			}
		}
		if want := (cfg.Epochs - 1 - cp.Epoch) * 16; res.SamplesProcessed != want {
			t.Errorf("restore from epoch %d processed %d samples, want %d", cp.Epoch, res.SamplesProcessed, want)
		}
	}
}

// TestCheckpointValidation covers the option and restore error paths.
func TestCheckpointValidation(t *testing.T) {
	exec, store, keys := setup(t, 8)
	cfg := baseConfig()

	// Interval without a sink, bad interval, nil sink, nil suspender.
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithCheckpointEvery(1)); err == nil {
		t.Error("checkpoint interval without sink accepted")
	}
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithCheckpointEvery(0), WithCheckpointSink(func(Checkpoint) {})); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithCheckpointSink(nil)); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithSuspender(nil)); err == nil {
		t.Error("nil suspender accepted")
	}

	// Grab one real checkpoint to mutate.
	var cp Checkpoint
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithCheckpointEvery(1), WithCheckpointSink(func(c Checkpoint) { cp = c })); err != nil {
		t.Fatal(err)
	}

	bads := map[string]func(*Checkpoint, *Config){
		"seed mismatch":      func(c *Checkpoint, _ *Config) { c.Seed++ },
		"width mismatch":     func(c *Checkpoint, _ *Config) { c.Widths[1]++ },
		"replica mismatch":   func(c *Checkpoint, cfg *Config) { cfg.Replicas++ },
		"epoch out of range": func(c *Checkpoint, _ *Config) { c.Epoch = 99 },
		"nothing left":       func(c *Checkpoint, cfg *Config) { c.Epoch = cfg.Epochs - 1 },
	}
	for name, mutate := range bads {
		bad := cp.Clone()
		badCfg := cfg
		mutate(&bad, &badCfg)
		if _, err := Run(context.Background(), badCfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
			WithRestore(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Two restores is a config error.
	if _, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithRestore(cp), WithRestore(cp)); err == nil {
		t.Error("double restore accepted")
	}
}

// TestSuspendParksAtEpochBoundary: a pending Suspend must park the run
// at the first epoch boundary with an ErrSuspended-classified error and
// a checkpoint in the Suspender; resuming from it matches the oracle.
func TestSuspendParksAtEpochBoundary(t *testing.T) {
	exec, store, keys := setup(t, 16)
	base := runtime.NumGoroutine()
	cfg := baseConfig()
	cfg.Epochs = 4

	oracle, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	s := NewSuspender()
	s.Suspend() // already pending: parks after epoch 0
	s.Suspend() // idempotent
	_, err = Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithSuspender(s))
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("suspended run returned %v, want ErrSuspended", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Error("suspension must not classify as cancellation")
	}
	cp, ok := s.Checkpoint()
	if !ok {
		t.Fatal("suspender has no checkpoint")
	}
	if cp.Epoch != 0 {
		t.Errorf("parked after epoch %d, want 0 (first boundary)", cp.Epoch)
	}
	awaitGoroutines(t, base)

	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithRestore(cp))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Model(), oracle.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("resumed run diverged from oracle at layer %d weight %d", li, i)
			}
		}
	}
}

// TestSuspendAfterFinalEpochIsIgnored: a Suspend that can only be
// honoured after the last epoch lets the run finish normally.
func TestSuspendAfterFinalEpochIsIgnored(t *testing.T) {
	exec, store, keys := setup(t, 8)
	cfg := baseConfig()
	cfg.Epochs = 1 // only boundary is the final one

	s := NewSuspender()
	s.Suspend()
	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithSuspender(s))
	if err != nil {
		t.Fatalf("single-epoch run with pending suspend failed: %v", err)
	}
	if _, ok := s.Checkpoint(); ok {
		t.Error("finished run must not leave a checkpoint in the suspender")
	}
	if res.SamplesProcessed != 8 {
		t.Errorf("samples = %d, want 8", res.SamplesProcessed)
	}
}

// TestRunJobsSuspendedClassification: a suspended job surfaces
// JobSuspended without cancelling its siblings, and the workload error
// wraps ErrSuspended (errors.Is classification for the new state).
func TestRunJobsSuspendedClassification(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()

	s := NewSuspender()
	s.Suspend()
	jobs := []Job{
		{Name: "parked", Config: cfg, Options: []Option{
			WithDataset(exec, store, keys), WithFeature(stripeFeature), WithSuspender(s)}},
		{Name: "steady", Config: cfg, Options: []Option{
			WithDataset(exec, store, keys), WithFeature(stripeFeature)}},
	}
	results, err := RunJobs(context.Background(), jobs)
	if err == nil {
		t.Fatal("workload with a suspended job must not return nil (not every job is done)")
	}
	if !errors.Is(err, ErrSuspended) {
		t.Errorf("workload error %v does not classify as ErrSuspended", err)
	}
	if results[0].Status != JobSuspended {
		t.Errorf("parked job status = %q, want %q", results[0].Status, JobSuspended)
	}
	if !errors.Is(results[0].Err, ErrSuspended) {
		t.Errorf("parked job error %v does not classify as ErrSuspended", results[0].Err)
	}
	if results[1].Status != JobDone {
		t.Errorf("sibling status = %q, want done — suspension must not cancel siblings", results[1].Status)
	}
	if _, ok := s.Checkpoint(); !ok {
		t.Error("suspended job left no checkpoint")
	}
}

// TestJobKillResumeChaos is the acceptance chaos run: kill a running
// job mid-epoch (hard context cancellation while the step stage is
// busy), restore from its last sink'd checkpoint, and require the final
// weights bit-for-bit identical to an uninterrupted fault-free oracle —
// with no goroutine leaks.
func TestJobKillResumeChaos(t *testing.T) {
	exec, store, keys := setup(t, 16)
	base := runtime.NumGoroutine()
	cfg := baseConfig()
	cfg.Epochs = 6
	cfg.Momentum = 0.9

	oracle, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	// The doomed run checkpoints every epoch; the kill fires from the
	// prepare path once epoch 3 is being prepared, so the step stage is
	// mid-schedule when the context dies.
	var cps []Checkpoint
	ctx, kill := context.WithCancel(context.Background())
	defer kill()
	killer := func(kctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		if epoch >= 3 {
			kill()
			<-kctx.Done()
			return nil, kctx.Err()
		}
		return exec.PrepareBatchContext(kctx, store, keys, epoch)
	}
	_, err = Run(ctx, cfg,
		WithPreparer(killer, len(keys)), WithFeature(stripeFeature),
		WithCheckpointEvery(1), WithCheckpointSink(func(cp Checkpoint) { cps = append(cps, cp) }))
	if err == nil {
		t.Fatal("killed run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints survived the kill")
	}
	awaitGoroutines(t, base)

	last := cps[len(cps)-1]
	res, err := Run(context.Background(), cfg,
		WithDataset(exec, store, keys), WithFeature(stripeFeature),
		WithRestore(last))
	if err != nil {
		t.Fatalf("restore after kill: %v", err)
	}
	a, b := res.Model(), oracle.Model()
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("restored run diverged from fault-free oracle at layer %d weight %d", li, i)
			}
		}
		for i := range a.Layers[li].B {
			if a.Layers[li].B[i] != b.Layers[li].B[i] {
				t.Fatalf("restored run diverged from fault-free oracle at layer %d bias %d", li, i)
			}
		}
	}
	awaitGoroutines(t, base)
}

// TestJobKillResumeUnderFaultStorm composes the kill/resume path with
// the PR-3 storage fault storm: the resumed leg itself runs against a
// faulty store with retries and must still reproduce the fault-free
// oracle bit-for-bit — the recovery path is as robust as steady state.
func TestJobKillResumeUnderFaultStorm(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	cfg.Epochs = 5

	oracle, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	// Doomed leg: dies on its own preparer error (a crash, not a
	// cancellation) after checkpointing epochs 0 and 1.
	var cps []Checkpoint
	boom := errors.New("simulated job crash")
	crasher := func(kctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		if epoch >= 2 {
			return nil, boom
		}
		return exec.PrepareBatchContext(kctx, store, keys, epoch)
	}
	_, err = Run(context.Background(), cfg,
		WithPreparer(crasher, len(keys)), WithFeature(stripeFeature),
		WithCheckpointEvery(1), WithCheckpointSink(func(cp Checkpoint) { cps = append(cps, cp) }))
	if !errors.Is(err, boom) {
		t.Fatalf("crashed run returned %v, want the crash error", err)
	}

	// Resumed leg: fresh dataset build with a fault-injecting store. The
	// CI chaos job elevates the error rate via TRAINBOX_CHAOS_RATE; the
	// retry budget widens with it so the run's survival stays a
	// determinism check, not a retry-budget lottery.
	rate := chaosErrorRate(0.15)
	attempts := 6
	if rate > 0.2 {
		attempts = 10
	}
	stormExec, stormStore, _ := setup(t, 16)
	reg := metrics.NewRegistry()
	storm := faults.Metered(faults.Chain(
		faults.NewErrorRate(3001, rate, nil),
		faults.NewLatency(3002, 0.10, 200*time.Microsecond),
	), reg)
	stormStore.WithMetrics(reg).WithFaults(storm).WithRetry(faults.RetryPolicy{
		MaxAttempts: attempts, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 2 * time.Millisecond,
		Jitter: 0.5, AttemptTimeout: 50 * time.Millisecond, Seed: 3003,
	})
	stormCfg := cfg
	stormCfg.Metrics = reg

	res, err := Run(context.Background(), stormCfg,
		WithDataset(stormExec, stormStore, keys), WithFeature(stripeFeature),
		WithRestore(cps[len(cps)-1]))
	if err != nil {
		t.Fatalf("resume under fault storm: %v", err)
	}
	assertModelsBitIdentical(t, Result{Replicas: res.Replicas, Steps: oracle.Steps}, oracle)
	if res.Metrics.Counters["faults.injector.errors"] == 0 {
		t.Error("storm injected no errors — test is vacuous")
	}
}
