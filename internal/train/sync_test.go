package train

import (
	"context"
	"strings"
	"testing"

	"trainbox/internal/collective"
	"trainbox/internal/faults"
	"trainbox/internal/metrics"
)

// TestSyncBackendsBitIdenticalEndToEnd trains the same job once with
// the default (no WithSync — the ring path the pre-Reducer driver ran)
// and once per alternative backend, asserting every trained model is
// bit-for-bit the default's. This is the tentpole contract end to end:
// swapping sync topology changes cost accounting, never numerics.
func TestSyncBackendsBitIdenticalEndToEnd(t *testing.T) {
	exec, store, keys := setup(t, 16)
	oracle, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	build := map[string]func() (collective.Reducer, error){
		"ring":    func() (collective.Reducer, error) { return collective.NewRing() },
		"tree":    func() (collective.Reducer, error) { return collective.NewTree() },
		"halving": func() (collective.Reducer, error) { return collective.NewHalvingDoubling() },
		"ps":      func() (collective.Reducer, error) { return collective.NewParamServer(collective.WithShards(3)) },
	}
	for name, ctor := range build {
		r, err := ctor()
		if err != nil {
			t.Fatal(err)
		}
		exec2, store2, keys2 := setup(t, 16)
		res, err := Run(context.Background(), baseConfig(),
			WithDataset(exec2, store2, keys2), WithFeature(stripeFeature), WithSync(r))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertModelsBitIdentical(t, res, oracle)
	}
}

// TestSyncMetricsEmitted pins the new metric names: the driver's
// sync_rounds counter and the backend's collective.<name>.* series,
// including the default ring bound to the run registry.
func TestSyncMetricsEmitted(t *testing.T) {
	exec, store, keys := setup(t, 16)
	cfg := baseConfig()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}
	rounds := reg.Counter("train.driver.sync_rounds").Value()
	if rounds <= 0 {
		t.Error("train.driver.sync_rounds not incremented")
	}
	if got := reg.Counter("collective.ring.bytes_moved").Value(); got <= 0 {
		t.Error("default ring did not meter collective.ring.bytes_moved")
	}
	if got := reg.Counter("collective.ring.rounds").Value(); got != rounds*2*(4-1) {
		t.Errorf("collective.ring.rounds = %d, want %d (2·(n−1) per sync)", got, rounds*2*(4-1))
	}
	if _, ok := res.Metrics.Counters["train.driver.sync_rounds"]; !ok {
		t.Error("sync_rounds missing from the result snapshot")
	}

	// A user-supplied backend carries its own registry binding.
	reg2 := metrics.NewRegistry()
	ps, err := collective.NewParamServer(collective.WithShards(2), collective.WithMetrics(reg2))
	if err != nil {
		t.Fatal(err)
	}
	exec2, store2, keys2 := setup(t, 16)
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec2, store2, keys2), WithFeature(stripeFeature), WithSync(ps)); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("collective.ps.bytes_moved").Value(); got <= 0 {
		t.Error("ps backend did not meter collective.ps.bytes_moved")
	}
}

func TestWithSyncValidation(t *testing.T) {
	exec, store, keys := setup(t, 16)
	if _, err := Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys), WithFeature(stripeFeature), WithSync(nil)); err == nil {
		t.Error("nil reducer accepted")
	}
	ring, err := collective.NewRing()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys), WithFeature(stripeFeature), WithSync(ring), WithSync(ring))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("double WithSync not rejected: %v", err)
	}
}

// killPSShard kills one PS shard's pushes on every round's first
// attempt — a flapping shard replica that recovers on replacement.
type killPSShard struct{ shard string }

func (k killPSShard) Inject(op faults.Op) faults.Fault {
	if op.Name == "collective.ps.push" && strings.HasPrefix(op.Key, k.shard+"/") && op.Attempt == 0 {
		return faults.Fault{Err: faults.ErrDeviceDead}
	}
	return faults.Fault{}
}

// TestSyncChaosPSShardDeathBitIdentical is the end-to-end chaos run: a
// parameter-server shard dies on the first attempt of every single sync
// round for the whole training job, and bounded retry (replaying each
// round from the workers' retained pushes) must still produce the
// fault-free oracle's model bit-for-bit, with the retries on record.
func TestSyncChaosPSShardDeathBitIdentical(t *testing.T) {
	exec, store, keys := setup(t, 16)
	oracle, err := Run(context.Background(), baseConfig(), WithDataset(exec, store, keys), WithFeature(stripeFeature))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	ps, err := collective.NewParamServer(
		collective.WithShards(4),
		collective.WithFaults(killPSShard{shard: "shard-2"}),
		collective.WithRetry(collective.DefaultPSRetry()),
		collective.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	exec2, store2, keys2 := setup(t, 16)
	res, err := Run(context.Background(), baseConfig(),
		WithDataset(exec2, store2, keys2), WithFeature(stripeFeature), WithSync(ps))
	if err != nil {
		t.Fatalf("chaos run did not recover: %v", err)
	}
	assertModelsBitIdentical(t, res, oracle)
	if retries := reg.Counter("collective.ps.shard_retries").Value(); retries <= 0 {
		t.Error("chaos run recorded no shard retries")
	}
}

// TestSyncPSShardDeathPastBudgetFailsRun: when the shard never comes
// back, the run must surface the failure instead of training on stale
// weights.
type alwaysDeadShard struct{}

func (alwaysDeadShard) Inject(op faults.Op) faults.Fault {
	if op.Name == "collective.ps.push" && strings.HasPrefix(op.Key, "shard-0/") {
		return faults.Fault{Err: faults.ErrDeviceDead}
	}
	return faults.Fault{}
}

func TestSyncPSShardDeathPastBudgetFailsRun(t *testing.T) {
	ps, err := collective.NewParamServer(
		collective.WithFaults(alwaysDeadShard{}),
		collective.WithRetry(collective.DefaultPSRetry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	exec, store, keys := setup(t, 16)
	_, err = Run(context.Background(), baseConfig(),
		WithDataset(exec, store, keys), WithFeature(stripeFeature), WithSync(ps))
	if err == nil {
		t.Fatal("run trained through a permanently dead PS shard")
	}
}
