// Package train is the functional end-to-end training driver of the
// reproduction: it wires every substrate together the way Figure 1
// composes them — data preparation (internal/dataprep), model
// computation on data-parallel replicas (internal/nn, one goroutine per
// "accelerator"), and model synchronization (internal/collective's real
// ring all-reduce) — and runs synchronous SGD.
//
// The driver is one staged pipeline on internal/pipeline: a
// prepare stage (next-batch prefetching, queue depth = PrefetchDepth)
// feeds an extract stage feeding the serial step stage that runs
// replica compute (pipeline.ForEach fan-out) and the ring all-reduce.
// The first failure anywhere cancels the whole pipeline through its
// context and drains every goroutine.
//
// It exists to prove the composition is correct, not to be fast: tests
// assert that replicas remain numerically synchronized after every step
// and that data-parallel training matches a single-worker oracle.
package train

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"trainbox/internal/collective"
	"trainbox/internal/dataprep"
	"trainbox/internal/dscache"
	"trainbox/internal/metrics"
	"trainbox/internal/nn"
	"trainbox/internal/pipeline"
	"trainbox/internal/storage"
)

// FeatureFn converts one prepared sample into an (input, label) pair for
// the model. It must be deterministic.
type FeatureFn func(dataprep.Prepared) (x []float64, label int, err error)

// Config describes a training run.
type Config struct {
	// Replicas is the number of data-parallel model replicas
	// ("accelerators"), each run by its own goroutine.
	Replicas int
	// Widths are the MLP layer widths (input … output).
	Widths []int
	// Epochs is the number of passes over the dataset keys.
	Epochs int
	// MinibatchPerReplica splits each replica's shard into SGD
	// minibatches of this size; ≤ 0 means one minibatch per shard.
	MinibatchPerReplica int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the optional SGD momentum coefficient in [0,1).
	Momentum float64
	// WeightDecay is the optional L2 coefficient.
	WeightDecay float64
	// PrefetchDepth is the next-batch pipeline depth (≥ 1).
	PrefetchDepth int
	// Seed initializes the identical model replicas and the pipeline.
	Seed int64
	// Metrics receives the driver's telemetry (step latency, sync
	// latency, samples, prep-vs-step overlap, and the prepare→extract→
	// step pipeline's stage metrics). Nil selects a private registry;
	// either way Result.Metrics carries the final snapshot. Share one
	// registry between the Config, the executor (Executor.WithMetrics),
	// and the store (Store.WithMetrics) to see the whole data path in a
	// single snapshot.
	Metrics *metrics.Registry
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("train: need ≥ 1 replica, got %d", c.Replicas)
	}
	if len(c.Widths) < 2 {
		return fmt.Errorf("train: model needs input and output widths")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("train: need ≥ 1 epoch")
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("train: learning rate must be positive")
	}
	if c.PrefetchDepth < 1 {
		return fmt.Errorf("train: prefetch depth must be ≥ 1")
	}
	return nil
}

// StepStat records one synchronized step.
type StepStat struct {
	Epoch     int
	MeanLoss  float64
	SyncNanos int64
	Samples   int
}

// Result is a finished run.
type Result struct {
	// Replicas holds the trained replicas (all numerically identical).
	Replicas []*nn.Network
	// Steps records per-step statistics in order.
	Steps []StepStat
	// Elapsed is the wall-clock training time.
	Elapsed time.Duration
	// SamplesProcessed is the total sample count.
	SamplesProcessed int
	// Metrics is the final snapshot of the run's telemetry registry
	// (Config.Metrics, or the private registry the driver created).
	Metrics metrics.Snapshot
}

// Model returns replica 0, the trained model.
func (r Result) Model() *nn.Network { return r.Replicas[0] }

// FinalLoss returns the last step's mean loss.
func (r Result) FinalLoss() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	return r.Steps[len(r.Steps)-1].MeanLoss
}

// epochBatch and epochSamples are the payloads between driver stages.
type epochBatch struct {
	epoch   int
	samples []dataprep.Prepared
}

type epochSamples struct {
	epoch   int
	samples []nn.Sample
}

// echoedBatch is one replica of a prepared epoch emitted by the data-
// echoing stage. All replicas of an epoch share the prepared samples;
// pending counts the replicas still holding them, and the last one out
// recycles the shared buffers.
type echoedBatch struct {
	epoch   int
	samples []dataprep.Prepared
	pending *atomic.Int32
}

// release marks one replica done. The last release recycles the shared
// prepared buffers; it is called by the extract stage after
// featurization and by the run's discard hook for replicas dropped on
// cancellation — each replica exactly once, whichever path it takes.
func (eb echoedBatch) release(recycle func([]dataprep.Prepared)) {
	if eb.pending == nil {
		return
	}
	if eb.pending.Add(-1) == 0 && recycle != nil {
		recycle(eb.samples)
	}
}

// EpochPreparer produces one epoch's prepared samples for the keyed
// dataset. It is the seam between the training driver and whichever
// data-preparation path serves the run — the host executor (Run wraps
// one automatically), an fpga.Cluster's self-healing pool, or a chaos
// harness injecting faults — all interchangeable because per-sample
// augmentation depends only on (dataset seed, key, epoch).
type EpochPreparer func(ctx context.Context, epoch int) ([]dataprep.Prepared, error)

// Option configures a training run — where its prepared samples come
// from (WithDataset or WithPreparer, exactly one), how they map to
// model inputs (WithFeature, required), and the data-path accelerators:
// a shared decode cache (WithCache) and data echoing (WithEchoFactor or
// WithAdaptiveEcho).
type Option func(*runOptions) error

type runOptions struct {
	prepare EpochPreparer
	numKeys int
	feature FeatureFn
	// exec/store/keys mirror WithDataset's arguments so WithCache can
	// rebuild the prepare path around a shared decode tier.
	exec  *dataprep.Executor
	store *storage.Store
	keys  []string
	cache *dscache.Cache
	// echoFactor (fixed, ≥ 1) or echoAdaptiveMax (cap for the
	// overlap-driven factor) enable the echo stage; both zero = off.
	echoFactor      int
	echoAdaptiveMax int
	// recycle, when set, receives each epoch's prepared samples after
	// the extract stage has converted them to model inputs, returning
	// their buffers to the data source's pools. Requires that the
	// feature function copies out of the prepared sample (all of the
	// repo's feature functions do — they build fresh []float64 inputs).
	recycle func([]dataprep.Prepared)
	// checkpoint/restore and suspension (see checkpoint.go).
	checkpointEvery int
	checkpointSink  func(Checkpoint)
	restore         *Checkpoint
	suspender       *Suspender
	// sync is the gradient-sync backend; nil selects the default ring
	// bound to the run's registry.
	sync collective.Reducer
}

// WithSync selects the gradient-synchronization backend the step stage
// reduces through — any collective.Reducer (NewRing, NewTree,
// NewHalvingDoubling, NewParamServer, or collective.ByName). Every
// backend honors the collective package's canonical reduction order, so
// the trained weights are bit-identical across backends; what changes
// is the modelled topology, its traffic accounting, and (for the
// parameter server) the fault/retry seam. Defaults to a ring reducer
// bound to the run's metrics registry.
func WithSync(r collective.Reducer) Option {
	return func(o *runOptions) error {
		if r == nil {
			return fmt.Errorf("train: WithSync needs a non-nil reducer")
		}
		if o.sync != nil {
			return fmt.Errorf("train: WithSync configured twice")
		}
		o.sync = r
		return nil
	}
}

// WithDataset serves the run from the host data-preparation path: each
// epoch prepares the keyed dataset with exec over store.
func WithDataset(exec *dataprep.Executor, store *storage.Store, keys []string) Option {
	return func(o *runOptions) error {
		if exec == nil || store == nil {
			return fmt.Errorf("train: WithDataset needs an executor and a store")
		}
		if o.prepare != nil {
			return fmt.Errorf("train: multiple data sources configured")
		}
		keysCopy := append([]string(nil), keys...)
		o.prepare = func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
			return exec.PrepareBatchContext(ctx, store, keysCopy, epoch)
		}
		o.numKeys = len(keysCopy)
		// The executor owns the prepared buffers; hand each epoch back
		// after extraction so steady-state training recycles them.
		o.recycle = func(ps []dataprep.Prepared) { exec.Recycle(ps...) }
		o.exec, o.store, o.keys = exec, store, keysCopy
		return nil
	}
}

// WithCache serves the run's decodes through a shared dscache tier: the
// executor's preparer is swapped for its cache-backed equivalent
// (dscache.Bind), and each epoch's keys are prepared resident-first
// (Cache.OrderKeys) so warm entries are consumed before eviction
// pressure builds — then restored to the caller's key order, keeping
// the epoch bit-identical to the uncached run. Requires WithDataset;
// concurrent runs sharing one cache amortize each key's decode to a
// single invocation (single-flight).
func WithCache(c *dscache.Cache) Option {
	return func(o *runOptions) error {
		if c == nil {
			return fmt.Errorf("train: WithCache needs a non-nil cache")
		}
		if o.cache != nil {
			return fmt.Errorf("train: WithCache configured twice")
		}
		o.cache = c
		return nil
	}
}

// WithEchoFactor enables data echoing at a fixed factor n ≥ 1: an echo
// stage between prepare and extract re-emits each prepared epoch n
// times, so the (serial) step stage trains n times per preparation —
// the Choi et al. data-echoing move for prep-bound runs. The replicas
// share one prepared buffer set, recycled when the last is consumed.
// n = 1 still inserts the stage (it must be a bit-identical no-op —
// the transparency oracle the tests pin down).
func WithEchoFactor(n int) Option {
	return func(o *runOptions) error {
		if n < 1 {
			return fmt.Errorf("train: echo factor must be ≥ 1, got %d", n)
		}
		if o.echoFactor != 0 || o.echoAdaptiveMax != 0 {
			return fmt.Errorf("train: multiple echo policies configured")
		}
		o.echoFactor = n
		return nil
	}
}

// WithAdaptiveEcho enables data echoing driven by the live
// train.driver.prep_step_overlap gauge: while the run is step-bound
// (overlap ≤ 1) each epoch passes through once; when preparation is the
// bottleneck (overlap > 1) the factor rises to ⌈overlap⌉, capped at
// max. Echoing repeats SGD steps on already-prepared data, so it trades
// a little statistical efficiency for keeping the accelerators busy —
// the cap bounds that trade.
func WithAdaptiveEcho(max int) Option {
	return func(o *runOptions) error {
		if max < 1 {
			return fmt.Errorf("train: adaptive echo cap must be ≥ 1, got %d", max)
		}
		if o.echoFactor != 0 || o.echoAdaptiveMax != 0 {
			return fmt.Errorf("train: multiple echo policies configured")
		}
		o.echoAdaptiveMax = max
		return nil
	}
}

// WithPreparer serves the run from an arbitrary EpochPreparer — an
// fpga.Cluster's self-healing pool, a preppool job's split host/pool
// path, or a chaos harness. numKeys is the per-epoch sample count
// (used for buffer sizing and replica-feeding validation).
func WithPreparer(p EpochPreparer, numKeys int) Option {
	return func(o *runOptions) error {
		if p == nil {
			return fmt.Errorf("train: WithPreparer needs a non-nil preparer")
		}
		if o.prepare != nil {
			return fmt.Errorf("train: multiple data sources configured")
		}
		o.prepare = p
		o.numKeys = numKeys
		return nil
	}
}

// WithFeature sets the sample→(input, label) mapping. Required.
func WithFeature(f FeatureFn) Option {
	return func(o *runOptions) error {
		if f == nil {
			return fmt.Errorf("train: WithFeature needs a non-nil feature function")
		}
		o.feature = f
		return nil
	}
}

// Run trains data-parallel replicas as one staged pipeline: a prepare
// stage (queue depth = PrefetchDepth) overlaps each epoch's data
// preparation with the previous epoch's computation; an extract stage
// converts prepared samples to model inputs into pooled buffers; the
// serial step stage splits each epoch across replicas, backpropagates
// in parallel (pipeline.ForEach), reduces gradients through the
// configured sync backend (WithSync; a ring all-reduce by default), and
// applies one synchronous SGD step per minibatch. The first error
// anywhere — or ctx being cancelled — cancels the pipeline and drains
// every goroutine.
//
// The run is configured by options: exactly one data source
// (WithDataset for the host executor path, WithPreparer for anything
// else) plus the required WithFeature.
func Run(ctx context.Context, cfg Config, opts ...Option) (Result, error) {
	var o runOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return Result{}, err
		}
	}
	if o.prepare == nil {
		return Result{}, fmt.Errorf("train: no data source (use WithDataset or WithPreparer)")
	}
	if o.feature == nil {
		return Result{}, fmt.Errorf("train: no feature function (use WithFeature)")
	}
	if o.checkpointEvery > 0 && o.checkpointSink == nil {
		return Result{}, fmt.Errorf("train: WithCheckpointEvery needs WithCheckpointSink")
	}
	if o.cache != nil {
		if err := bindCache(&o); err != nil {
			return Result{}, err
		}
	}
	return run(ctx, cfg, o)
}

// bindCache rebuilds the WithDataset prepare path around the shared
// cache tier: the executor's preparer is swapped for its dscache
// counterpart and each epoch prepares resident keys first, restoring
// the original key order afterwards so the epoch stays bit-identical.
func bindCache(o *runOptions) error {
	if o.exec == nil {
		return fmt.Errorf("train: WithCache requires WithDataset")
	}
	fp, ok := dscache.Bind(o.cache, o.exec)
	if !ok {
		return fmt.Errorf("train: WithCache: preparer %T has no cached form", o.exec.Preparer())
	}
	c, exec, store, keys := o.cache, o.exec, o.store, o.keys
	o.prepare = func(ctx context.Context, epoch int) ([]dataprep.Prepared, error) {
		ordered := c.OrderKeys(keys, fp)
		ps, err := exec.PrepareBatchContext(ctx, store, ordered, epoch)
		if err != nil {
			return nil, err
		}
		return restoreOrder(ps, keys), nil
	}
	return nil
}

// restoreOrder re-sequences one epoch's prepared samples back into the
// caller's key order after a cache-aware (resident-first) prepare pass.
// Per-sample augmentation depends only on (dataset seed, key, epoch) —
// never on position — so preparing in a different order changes nothing
// per sample, and restoring the order keeps the whole epoch
// bit-identical to the uncached run.
func restoreOrder(ps []dataprep.Prepared, keys []string) []dataprep.Prepared {
	pos := make(map[string][]int, len(keys))
	for i, k := range keys {
		pos[k] = append(pos[k], i)
	}
	out := make([]dataprep.Prepared, len(ps))
	for _, p := range ps {
		q := pos[p.Key]
		if len(q) == 0 {
			// A key outside the requested set: the permutation invariant
			// broke somewhere upstream — fall back to prepared order
			// rather than dropping the sample (and its pooled buffers).
			return ps
		}
		out[q[0]] = p
		pos[p.Key] = q[1:]
	}
	return out
}

// RunWithPreparer trains with the data-preparation path abstracted
// behind an EpochPreparer.
//
// Deprecated: use Run(ctx, cfg, WithPreparer(prepare, numKeys),
// WithFeature(feature)). Kept as a one-line forwarder.
func RunWithPreparer(cfg Config, prepare EpochPreparer, numKeys int, feature FeatureFn) (Result, error) {
	return Run(context.Background(), cfg, WithPreparer(prepare, numKeys), WithFeature(feature))
}

// RunDataset trains on the host executor path with the pre-options
// calling convention (the old five-argument Run).
//
// Deprecated: use Run(ctx, cfg, WithDataset(exec, store, keys),
// WithFeature(feature)). Kept as a one-line forwarder.
func RunDataset(cfg Config, exec *dataprep.Executor, store *storage.Store, keys []string, feature FeatureFn) (Result, error) {
	return Run(context.Background(), cfg, WithDataset(exec, store, keys), WithFeature(feature))
}

// run is the driver pipeline shared by every entry point.
func run(ctx context.Context, cfg Config, o runOptions) (Result, error) {
	prepare, numKeys, feature := o.prepare, o.numKeys, o.feature
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if numKeys < cfg.Replicas {
		return Result{}, fmt.Errorf("train: %d keys cannot feed %d replicas", numKeys, cfg.Replicas)
	}

	replicas := make([]*nn.Network, cfg.Replicas)
	opts := make([]*nn.SGD, cfg.Replicas)
	for i := range replicas {
		replicas[i] = nn.NewMLP(cfg.Widths, rand.New(rand.NewSource(cfg.Seed)))
		opt, err := nn.NewSGD(cfg.LearningRate, cfg.Momentum, cfg.WeightDecay)
		if err != nil {
			return Result{}, err
		}
		opts[i] = opt
	}

	// Restoring a checkpoint overwrites the fresh initialization and
	// resumes the epoch schedule where the snapshot left off. Replica
	// init consumed its RNG entirely above and augmentation depends only
	// on (seed, key, epoch), so the remaining epochs are bit-identical
	// to an uninterrupted run.
	startEpoch := 0
	if o.restore != nil {
		cp := *o.restore
		if err := cp.validateFor(cfg); err != nil {
			return Result{}, err
		}
		for i := range replicas {
			if err := replicas[i].SetWeights(cp.Replicas[i]); err != nil {
				return Result{}, fmt.Errorf("train: restore replica %d: %w", i, err)
			}
			if err := opts[i].SetVelocity(replicas[i], cp.Velocity[i]); err != nil {
				return Result{}, fmt.Errorf("train: restore replica %d velocity: %w", i, err)
			}
		}
		startEpoch = cp.Epoch + 1
	}

	// Epoch sample buffers cycle between the extract stage and the end of
	// the step stage instead of being reallocated every epoch.
	samplePool := pipeline.NewPool(func() []nn.Sample { return make([]nn.Sample, 0, numKeys) })

	// prepBusyNs/stepBusyNs accumulate live stage busy time so the
	// overlap gauge updates every epoch (autoscalers and the adaptive
	// echo policy read it mid-run); the end-of-run pass below overwrites
	// it with the pipeline's own authoritative stats.
	var prepBusyNs, stepBusyNs atomic.Int64

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	tm := &trainMetrics{
		stepNs:     reg.Histogram("train.driver.step_ns"),
		syncNs:     reg.Histogram("train.driver.sync_ns"),
		syncRounds: reg.Counter("train.driver.sync_rounds"),
		samples:    reg.Counter("train.driver.samples"),
		rate:       reg.Meter("train.driver.samples_rate"),
	}
	sync := o.sync
	if sync == nil {
		// Default backend: the chunked ring, metered into the run's
		// registry — bit-for-bit the behavior of the pre-Reducer driver.
		ring, err := collective.NewRing(collective.WithMetrics(reg))
		if err != nil {
			return Result{}, err
		}
		sync = ring
	}
	overlap := reg.Gauge("train.driver.prep_step_overlap")

	prepStage := pipeline.NewStage("prepare", 1, cfg.PrefetchDepth,
		func(ctx context.Context, epoch int) (epochBatch, error) {
			t0 := time.Now()
			batch, err := prepare(ctx, epoch)
			prepBusyNs.Add(time.Since(t0).Nanoseconds())
			if err != nil {
				return epochBatch{}, err
			}
			return epochBatch{epoch: epoch, samples: batch}, nil
		})

	// Middle stages: a plain extract, or echo→extract when data echoing
	// is on. The echo stage re-emits each prepared epoch factor() times;
	// the replicas share the prepared buffers behind one refcount.
	var middle []*pipeline.Stage
	if o.echoFactor > 0 || o.echoAdaptiveMax > 0 {
		echoFactorGauge := reg.Gauge("train.driver.echo_factor")
		echoReplays := reg.Counter("train.driver.echo_replays")
		factor := func() int { return o.echoFactor }
		if o.echoAdaptiveMax > 0 {
			// Echo only while preparation is the measured bottleneck:
			// ⌈overlap⌉ replays per epoch, capped. The gauge is 0 until
			// the first step completes, so the run starts un-echoed.
			factor = func() int {
				ov := overlap.Value()
				if ov <= 1 {
					return 1
				}
				f := int(math.Ceil(ov))
				if f > o.echoAdaptiveMax {
					f = o.echoAdaptiveMax
				}
				return f
			}
		}
		echoStage := pipeline.NewExpandStage("echo", 0,
			func(_ context.Context, eb epochBatch) ([]echoedBatch, error) {
				n := factor()
				if n < 1 {
					n = 1
				}
				echoFactorGauge.Set(float64(n))
				if n > 1 {
					echoReplays.Add(int64(n - 1))
				}
				pending := new(atomic.Int32)
				pending.Store(int32(n))
				out := make([]echoedBatch, n)
				for i := range out {
					out[i] = echoedBatch{epoch: eb.epoch, samples: eb.samples, pending: pending}
				}
				return out, nil
			})
		extractEcho := pipeline.NewStage("extract", 1, 0,
			func(_ context.Context, eb echoedBatch) (epochSamples, error) {
				samples, err := extract(eb.samples, feature, samplePool.Get())
				// The feature function copied out everything it needs (or
				// failed); either way this replica is done with the shared
				// prepared buffers.
				eb.release(o.recycle)
				if err != nil {
					return epochSamples{}, err
				}
				return epochSamples{epoch: eb.epoch, samples: samples}, nil
			})
		middle = []*pipeline.Stage{echoStage, extractEcho}
	} else {
		middle = []*pipeline.Stage{pipeline.NewStage("extract", 1, 0,
			func(_ context.Context, eb epochBatch) (epochSamples, error) {
				samples, err := extract(eb.samples, feature, samplePool.Get())
				if err != nil {
					return epochSamples{}, err
				}
				if o.recycle != nil {
					// The feature function has copied everything it needs;
					// the prepared buffers can go back to the source's pools.
					o.recycle(eb.samples)
				}
				return epochSamples{epoch: eb.epoch, samples: samples}, nil
			})}
	}

	step := pipeline.NewStage("step", 1, 0,
		func(ctx context.Context, es epochSamples) ([]StepStat, error) {
			t0 := time.Now()
			stats, err := trainEpoch(ctx, cfg, replicas, opts, es.samples, es.epoch, sync, tm)
			stepBusyNs.Add(time.Since(t0).Nanoseconds())
			samplePool.Put(es.samples[:0])
			if err != nil {
				return nil, err
			}
			if sb := stepBusyNs.Load(); sb > 0 {
				overlap.Set(float64(prepBusyNs.Load()) / float64(sb))
			}
			// Epoch boundary: the step stage is the sole weight mutator,
			// so snapshots taken here are consistent. Periodic
			// checkpoints feed the sink; a pending Suspend parks the run
			// unless this was already the final epoch.
			final := es.epoch == cfg.Epochs-1
			if o.checkpointEvery > 0 && !final && (es.epoch+1)%o.checkpointEvery == 0 {
				o.checkpointSink(capture(cfg, replicas, opts, es.epoch))
			}
			if o.suspender != nil && !final && o.suspender.Requested() {
				cp := capture(cfg, replicas, opts, es.epoch)
				o.suspender.deliver(cp)
				if o.checkpointSink != nil {
					o.checkpointSink(cp)
				}
				return nil, fmt.Errorf("train: parked after epoch %d of %d: %w", es.epoch, cfg.Epochs, ErrSuspended)
			}
			return stats, nil
		})
	stages := append([]*pipeline.Stage{prepStage}, middle...)
	stages = append(stages, step)
	pl, err := pipeline.New("train", stages...)
	if err != nil {
		return Result{}, err
	}
	// Cancellation can drop any stage payload mid-flight; the discard
	// hook gives every dropped value its owner-side cleanup so pooled
	// buffers flow back even on abandoned runs.
	pl.WithDiscard(func(v any) {
		switch x := v.(type) {
		case epochBatch:
			if o.recycle != nil {
				o.recycle(x.samples)
			}
		case echoedBatch:
			x.release(o.recycle)
		case epochSamples:
			samplePool.Put(x.samples[:0])
		}
	})

	res := Result{Replicas: replicas}
	start := time.Now()
	run := pl.WithMetrics(reg).Run(ctx, pipeline.RangeSource(startEpoch, cfg.Epochs))
	epochStats, err := pipeline.Drain[[]StepStat](run)
	if err != nil {
		return Result{}, err
	}
	for _, stats := range epochStats {
		for _, s := range stats {
			res.Steps = append(res.Steps, s)
			res.SamplesProcessed += s.Samples
		}
	}
	res.Elapsed = time.Since(start)

	// Prep-vs-step overlap: how much of the (serial) step stage's busy
	// time the prepare stage ran concurrently under. A ratio near 1 means
	// preparation is fully hidden behind computation — the paper's
	// Section II-B overlap property; > 1 means preparation is the
	// bottleneck and the accelerators starve.
	var prepBusy, stepBusy time.Duration
	for _, st := range run.Stats() {
		switch st.Name {
		case "prepare":
			prepBusy = st.Busy
		case "step":
			stepBusy = st.Busy
		}
	}
	if stepBusy > 0 {
		overlap.Set(float64(prepBusy) / float64(stepBusy))
	}
	res.Metrics = reg.Snapshot()
	return res, nil
}

// trainMetrics carries the driver's per-step metric handles into
// trainEpoch.
type trainMetrics struct {
	stepNs     *metrics.Histogram
	syncNs     *metrics.Histogram
	syncRounds *metrics.Counter
	samples    *metrics.Counter
	rate       *metrics.Meter
}

// extract converts one prepared epoch into model samples, reusing the
// pooled buffer.
func extract(batch []dataprep.Prepared, feature FeatureFn, buf []nn.Sample) ([]nn.Sample, error) {
	buf = buf[:0]
	for _, p := range batch {
		x, label, err := feature(p)
		if err != nil {
			return nil, fmt.Errorf("train: feature for %q: %w", p.Key, err)
		}
		buf = append(buf, nn.Sample{X: x, Label: label})
	}
	return buf, nil
}

// trainEpoch runs synchronous data-parallel SGD over one prepared epoch.
func trainEpoch(ctx context.Context, cfg Config, replicas []*nn.Network, opts []*nn.SGD, samples []nn.Sample, epoch int, sync collective.Reducer, tm *trainMetrics) ([]StepStat, error) {
	r := cfg.Replicas
	mb := cfg.MinibatchPerReplica
	shard := len(samples) / r
	if shard == 0 {
		return nil, fmt.Errorf("train: epoch %d has %d samples for %d replicas", epoch, len(samples), r)
	}
	if mb <= 0 || mb > shard {
		mb = shard
	}
	var stats []StepStat
	for off := 0; off+mb <= shard; off += mb {
		stepStart := time.Now()
		grads := make([][]float64, r)
		losses := make([]float64, r)
		if err := pipeline.ForEach(ctx, r, func(_ context.Context, rep int) error {
			net := replicas[rep]
			net.ZeroGrad()
			var loss float64
			for i := 0; i < mb; i++ {
				s := samples[rep*shard+off+i]
				loss += net.LossAndBackward(net.Forward(s.X), s.Label)
			}
			grads[rep] = net.Gradients()
			losses[rep] = loss
			return nil
		}); err != nil {
			return nil, err
		}

		syncStart := time.Now()
		if err := sync.Reduce(ctx, grads); err != nil {
			return nil, err
		}
		syncNanos := time.Since(syncStart).Nanoseconds()
		tm.syncRounds.Inc()

		global := float64(r * mb)
		var total float64
		for rep := 0; rep < r; rep++ {
			avg := grads[rep]
			for i := range avg {
				avg[i] /= global
			}
			if err := replicas[rep].SetGradients(avg); err != nil {
				return nil, err
			}
			opts[rep].Step(replicas[rep], 1)
			total += losses[rep]
		}
		stats = append(stats, StepStat{
			Epoch:     epoch,
			MeanLoss:  total / global,
			SyncNanos: syncNanos,
			Samples:   r * mb,
		})
		tm.stepNs.ObserveDuration(time.Since(stepStart))
		tm.syncNs.Observe(float64(syncNanos))
		tm.samples.Add(int64(r * mb))
		tm.rate.Mark(int64(r * mb))
	}
	return stats, nil
}

// MaxReplicaDivergence returns the largest absolute parameter difference
// between replica 0 and any other replica — the synchronization
// invariant (0 for a correct run, up to float addition order).
func MaxReplicaDivergence(replicas []*nn.Network) float64 {
	var maxD float64
	if len(replicas) == 0 {
		return 0
	}
	base := replicas[0]
	for _, other := range replicas[1:] {
		for li, l := range base.Layers {
			ol := other.Layers[li]
			for i := range l.W {
				if d := abs(l.W[i] - ol.W[i]); d > maxD {
					maxD = d
				}
			}
			for i := range l.B {
				if d := abs(l.B[i] - ol.B[i]); d > maxD {
					maxD = d
				}
			}
		}
	}
	return maxD
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
