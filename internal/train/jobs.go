package train

import (
	"context"
	"fmt"
	"sync"
)

// Job is one named training run inside a multi-job workload: its own
// Config plus the options selecting its data source and feature map.
// Jobs sharing a prep-pool pass a preppool-backed WithPreparer.
type Job struct {
	Name    string
	Config  Config
	Options []Option
}

// JobResult pairs a finished job's name with its Result.
type JobResult struct {
	Name string
	Result
}

// RunJobs trains the jobs concurrently — the multi-tenant shape of the
// paper's Section V-D, where several training jobs share one prep-pool.
// Each job runs its own driver pipeline in its own goroutine; the first
// job error (or ctx being cancelled) cancels every other job. Results
// are returned in job order. Job names must be non-empty and unique so
// per-job telemetry and pool leases stay attributable.
func RunJobs(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("train: no jobs")
	}
	names := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("train: job %d has no name", i)
		}
		if names[j.Name] {
			return nil, fmt.Errorf("train: duplicate job name %q", j.Name)
		}
		names[j.Name] = true
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]JobResult, len(jobs))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			res, err := Run(ctx, j.Config, j.Options...)
			if err != nil {
				// Record only the root cause: jobs failing afterwards with
				// context.Canceled were collateral of this cancellation.
				errOnce.Do(func() {
					firstErr = fmt.Errorf("train: job %q: %w", j.Name, err)
					cancel()
				})
				return
			}
			results[i] = JobResult{Name: j.Name, Result: res}
		}(i, j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
