package train

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Job is one named training run inside a multi-job workload: its own
// Config plus the options selecting its data source and feature map.
// Jobs sharing a prep-pool pass a preppool-backed WithPreparer.
type Job struct {
	Name    string
	Config  Config
	Options []Option
}

// JobStatus is the terminal state of one job in a multi-job workload.
type JobStatus string

const (
	// JobDone: the job trained to completion; Result is populated.
	JobDone JobStatus = "done"
	// JobFailed: the job's own pipeline surfaced an error (Err).
	JobFailed JobStatus = "failed"
	// JobCancelled: the job was stopped by cancellation — either the
	// caller's context or the workload-wide cancel that a sibling's
	// failure triggers.
	JobCancelled JobStatus = "cancelled"
	// JobSuspended: the job parked itself at an epoch boundary via a
	// Suspender (errors.Is(Err, ErrSuspended)); its checkpoint is in the
	// Suspender and it can be resumed with WithRestore. Not a root
	// cause: a suspended job does not cancel its siblings.
	JobSuspended JobStatus = "suspended"
)

// JobResult is one finished job's slot in the workload: its name, how
// it ended, its error when it did not finish, and its Result when it
// did.
type JobResult struct {
	Name string
	// Status distinguishes a job that trained to completion from one
	// that failed on its own error and one that was cancelled (by the
	// caller or as collateral of a sibling's failure).
	Status JobStatus
	// Err is the job's own error for failed/cancelled jobs, nil for done.
	Err error
	Result
}

// RunJobs trains the jobs concurrently — the multi-tenant shape of the
// paper's Section V-D, where several training jobs share one prep-pool.
// Each job runs its own driver pipeline in its own goroutine; the first
// job error (or ctx being cancelled) cancels every other job.
//
// Per-job outcomes are returned in job order even when the workload
// fails: every slot carries a terminal Status (done / failed /
// cancelled / suspended) and the job's own error, so callers can
// attribute the root cause vs cancellation collateral. The returned
// error is nil only when every job is done; otherwise it wraps the
// first root-cause failure (or, with none, the first job that did not
// finish — a suspended job counts as unfinished). Job names must be non-empty and unique so per-job telemetry
// and pool leases stay attributable.
func RunJobs(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("train: no jobs")
	}
	names := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("train: job %d has no name", i)
		}
		if names[j.Name] {
			return nil, fmt.Errorf("train: duplicate job name %q", j.Name)
		}
		names[j.Name] = true
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]JobResult, len(jobs))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			res, err := Run(ctx, j.Config, j.Options...)
			results[i] = JobResult{Name: j.Name, Err: err}
			switch {
			case err == nil:
				results[i].Status = JobDone
				results[i].Result = res
			case errors.Is(err, ErrSuspended):
				// Voluntary epoch-boundary park: the checkpoint lives in
				// the job's Suspender; siblings keep running.
				results[i].Status = JobSuspended
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// Collateral of the workload-wide cancel (or the caller's
				// own context): not a root cause.
				results[i].Status = JobCancelled
			default:
				results[i].Status = JobFailed
				// Record only the root cause: jobs failing afterwards with
				// context errors were collateral of this cancellation.
				errOnce.Do(func() {
					firstErr = fmt.Errorf("train: job %q: %w", j.Name, err)
					cancel()
				})
			}
		}(i, j)
	}
	wg.Wait()
	if firstErr == nil {
		// No root-cause failure, but the caller's context may have
		// cancelled the workload; surface the first cancelled job then.
		for _, r := range results {
			if r.Status != JobDone {
				firstErr = fmt.Errorf("train: job %q: %w", r.Name, r.Err)
				break
			}
		}
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}
