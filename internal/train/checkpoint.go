package train

import (
	"errors"
	"fmt"
	"sync"

	"trainbox/internal/nn"
)

// ErrSuspended is returned (wrapped) by Run when a Suspender parked the
// run at an epoch boundary. The run's final checkpoint is available from
// Suspender.Checkpoint and from the WithCheckpointSink callback.
var ErrSuspended = errors.New("train: run suspended")

// Checkpoint is an epoch-boundary snapshot of a training run: every
// replica's weights and optimizer velocity (flattened in the
// nn.Network.Weights layout), the last completed epoch, and the seed
// that drove both model initialization and per-sample augmentation.
//
// Because augmentation depends only on (dataset seed, key, epoch) and
// replicas are initialized deterministically from Seed, restoring a
// checkpoint and running the remaining epochs reproduces an
// uninterrupted run bit for bit.
type Checkpoint struct {
	// Epoch is the last completed epoch index (0-based); a restored run
	// resumes at Epoch+1.
	Epoch int
	// Seed is the Config.Seed of the run that produced the snapshot.
	Seed int64
	// Widths are the MLP layer widths of the run.
	Widths []int
	// Replicas holds each replica's flattened weights.
	Replicas [][]float64
	// Velocity holds each replica's flattened optimizer velocity (nil
	// for a replica whose optimizer never stepped).
	Velocity [][]float64
}

// validateFor reports the first incompatibility between the checkpoint
// and the run configuration it is being restored into.
func (cp Checkpoint) validateFor(cfg Config) error {
	if len(cp.Replicas) == 0 {
		return fmt.Errorf("train: checkpoint has no replicas")
	}
	if len(cp.Replicas) != cfg.Replicas {
		return fmt.Errorf("train: checkpoint has %d replicas, config wants %d", len(cp.Replicas), cfg.Replicas)
	}
	if len(cp.Velocity) != len(cp.Replicas) {
		return fmt.Errorf("train: checkpoint has %d velocity vectors for %d replicas", len(cp.Velocity), len(cp.Replicas))
	}
	if cp.Seed != cfg.Seed {
		return fmt.Errorf("train: checkpoint seed %d does not match config seed %d (augmentation would diverge)", cp.Seed, cfg.Seed)
	}
	if len(cp.Widths) != len(cfg.Widths) {
		return fmt.Errorf("train: checkpoint widths %v do not match config widths %v", cp.Widths, cfg.Widths)
	}
	for i, w := range cp.Widths {
		if w != cfg.Widths[i] {
			return fmt.Errorf("train: checkpoint widths %v do not match config widths %v", cp.Widths, cfg.Widths)
		}
	}
	if cp.Epoch < 0 || cp.Epoch >= cfg.Epochs {
		return fmt.Errorf("train: checkpoint epoch %d outside config's %d epochs", cp.Epoch, cfg.Epochs)
	}
	if cp.Epoch == cfg.Epochs-1 {
		return fmt.Errorf("train: checkpoint already covers all %d epochs, nothing left to run", cfg.Epochs)
	}
	return nil
}

// Clone deep-copies the checkpoint.
func (cp Checkpoint) Clone() Checkpoint {
	out := Checkpoint{Epoch: cp.Epoch, Seed: cp.Seed}
	out.Widths = append([]int(nil), cp.Widths...)
	out.Replicas = make([][]float64, len(cp.Replicas))
	for i, w := range cp.Replicas {
		out.Replicas[i] = append([]float64(nil), w...)
	}
	out.Velocity = make([][]float64, len(cp.Velocity))
	for i, v := range cp.Velocity {
		if v != nil {
			out.Velocity[i] = append([]float64(nil), v...)
		}
	}
	return out
}

// capture snapshots the run state after epoch completed; it must only be
// called from the serial step stage (the sole weight mutator).
func capture(cfg Config, replicas []*nn.Network, opts []*nn.SGD, epoch int) Checkpoint {
	cp := Checkpoint{
		Epoch:    epoch,
		Seed:     cfg.Seed,
		Widths:   append([]int(nil), cfg.Widths...),
		Replicas: make([][]float64, len(replicas)),
		Velocity: make([][]float64, len(replicas)),
	}
	for i, net := range replicas {
		cp.Replicas[i] = net.Weights()
		cp.Velocity[i] = opts[i].Velocity()
	}
	return cp
}

// Suspender asks a running train.Run to park itself at the next epoch
// boundary. Suspend may be called from any goroutine; the run captures a
// final Checkpoint, stores it in the Suspender, and returns an error
// satisfying errors.Is(err, ErrSuspended). A later run with WithRestore
// continues bit-identically. A Suspender is single-use: attach a fresh
// one to each run.
type Suspender struct {
	mu        sync.Mutex
	requested bool
	cp        Checkpoint
	captured  bool
}

// NewSuspender returns an idle Suspender.
func NewSuspender() *Suspender { return &Suspender{} }

// Suspend requests the park. Idempotent; safe from any goroutine. A
// request landing after the final epoch completes (or after the run has
// otherwise finished) is ignored — the run just finishes.
func (s *Suspender) Suspend() {
	s.mu.Lock()
	s.requested = true
	s.mu.Unlock()
}

// Requested reports whether Suspend has been called.
func (s *Suspender) Requested() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requested
}

// Checkpoint returns the checkpoint the run captured when it parked, and
// whether one was captured (false when the run finished or failed before
// honouring the request).
func (s *Suspender) Checkpoint() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.captured {
		return Checkpoint{}, false
	}
	return s.cp, true
}

// deliver stores the park-time checkpoint (called by the run).
func (s *Suspender) deliver(cp Checkpoint) {
	s.mu.Lock()
	s.cp = cp
	s.captured = true
	s.mu.Unlock()
}

// WithCheckpointEvery captures a checkpoint after every n-th completed
// epoch (n ≥ 1) and hands it to the WithCheckpointSink callback. The
// final epoch is not checkpointed — the run's Result is the final
// state. Without a sink the option is rejected at Run time.
func WithCheckpointEvery(n int) Option {
	return func(o *runOptions) error {
		if n < 1 {
			return fmt.Errorf("train: checkpoint interval must be ≥ 1, got %d", n)
		}
		o.checkpointEvery = n
		return nil
	}
}

// WithCheckpointSink sets the callback receiving captured checkpoints.
// It is called synchronously from the serial step stage — between
// epochs, never concurrently with weight updates — so it may hold the
// snapshot without copying; keep it fast or training stalls.
func WithCheckpointSink(sink func(Checkpoint)) Option {
	return func(o *runOptions) error {
		if sink == nil {
			return fmt.Errorf("train: WithCheckpointSink needs a non-nil sink")
		}
		o.checkpointSink = sink
		return nil
	}
}

// WithRestore starts the run from a checkpoint instead of fresh
// initialization: replica weights and optimizer velocity are restored
// and the epoch schedule resumes at cp.Epoch+1. The checkpoint must
// match the Config (seed, widths, replica count) or Run fails.
func WithRestore(cp Checkpoint) Option {
	return func(o *runOptions) error {
		if o.restore != nil {
			return fmt.Errorf("train: multiple restore checkpoints configured")
		}
		c := cp.Clone()
		o.restore = &c
		return nil
	}
}

// WithSuspender attaches a Suspender so the run can be parked at an
// epoch boundary (see Suspender).
func WithSuspender(s *Suspender) Option {
	return func(o *runOptions) error {
		if s == nil {
			return fmt.Errorf("train: WithSuspender needs a non-nil suspender")
		}
		o.suspender = s
		return nil
	}
}
