// Package pcie models a PCIe interconnect as a tree of a root complex,
// switches, and endpoint devices, the structure described in Sections II-C
// and V-D of the TrainBox paper.
//
// The model captures what matters for the paper's analysis:
//
//   - full-duplex links with per-direction bandwidth (Gen3/Gen4 x16),
//   - address-based switching: a packet traverses only the links on the
//     unique tree path between source and destination, so peer-to-peer
//     traffic that stays under one switch never touches the root complex,
//   - contention: concurrent flows share directional link bandwidth, which
//     the max-min fair solver in flows.go resolves.
//
// Topologies are built once and are immutable afterwards; routing queries
// and flow solving are read-only and safe for concurrent use.
package pcie

import (
	"fmt"

	"trainbox/internal/units"
)

// Generation selects the PCIe generation, which sets per-link bandwidth.
type Generation int

// Supported PCIe generations.
const (
	Gen3 Generation = 3
	Gen4 Generation = 4
)

// LinkBandwidth returns the usable single-direction bandwidth of an x16
// link for the generation. Values follow the paper's working numbers
// (Gen3 x16 ≈ 16 GB/s; Gen4 doubles it).
func (g Generation) LinkBandwidth() units.BytesPerSec {
	switch g {
	case Gen4:
		return 32 * units.GBps
	default:
		return 16 * units.GBps
	}
}

// NodeKind classifies tree nodes.
type NodeKind int

// Node kinds. The root complex and switches forward packets; the rest are
// endpoint devices.
const (
	KindRootComplex NodeKind = iota
	KindSwitch
	KindSSD
	KindNNAccel   // neural network accelerator (TPU/GPU-class)
	KindPrepAccel // data preparation accelerator (FPGA)
	KindNIC       // Ethernet interface (prep-pool uplink)
	KindHost      // host CPU/DRAM endpoint attached at the root complex
)

func (k NodeKind) String() string {
	switch k {
	case KindRootComplex:
		return "root-complex"
	case KindSwitch:
		return "switch"
	case KindSSD:
		return "ssd"
	case KindNNAccel:
		return "nn-accel"
	case KindPrepAccel:
		return "prep-accel"
	case KindNIC:
		return "nic"
	case KindHost:
		return "host"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NodeID identifies a node within one Topology.
type NodeID int

// Direction distinguishes the two halves of a full-duplex link.
type Direction int

// Link directions relative to the tree: Up flows toward the root complex,
// Down flows away from it.
const (
	Up Direction = iota
	Down
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Node is one vertex of the PCIe tree.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Name   string
	Parent NodeID // -1 for the root complex
	depth  int

	children []NodeID
}

// Link is the full-duplex connection between a node and its parent. It is
// identified by the child node's ID.
type Link struct {
	Child NodeID
	// Bandwidth per direction; both directions have the same capacity.
	Bandwidth units.BytesPerSec
}

// Segment is one directional link hop on a route.
type Segment struct {
	Link      NodeID // child end of the link
	Direction Direction
}

// String renders a segment like "up(sw0)" for debugging.
func (s Segment) String() string { return fmt.Sprintf("%s(%d)", s.Direction, int(s.Link)) }

// Topology is an immutable PCIe tree. Build one with NewBuilder.
type Topology struct {
	nodes []Node
	links []Link // links[i] connects nodes[i] to its parent; root entry unused
	root  NodeID
}

// Builder constructs a Topology.
type Builder struct {
	topo    *Topology
	defBW   units.BytesPerSec
	built   bool
	hasRoot bool
}

// NewBuilder returns a Builder whose links default to the generation's
// x16 bandwidth.
func NewBuilder(gen Generation) *Builder {
	return &Builder{
		topo:  &Topology{},
		defBW: gen.LinkBandwidth(),
	}
}

// Root creates the root complex. It must be called exactly once, first.
func (b *Builder) Root(name string) NodeID {
	if b.hasRoot {
		panic("pcie: Root called twice")
	}
	b.hasRoot = true
	id := NodeID(len(b.topo.nodes))
	b.topo.nodes = append(b.topo.nodes, Node{ID: id, Kind: KindRootComplex, Name: name, Parent: -1})
	b.topo.links = append(b.topo.links, Link{Child: id}) // placeholder
	b.topo.root = id
	return id
}

// add appends a child node linked to parent at bandwidth bw.
func (b *Builder) add(parent NodeID, kind NodeKind, name string, bw units.BytesPerSec) NodeID {
	if !b.hasRoot {
		panic("pcie: add before Root")
	}
	if b.built {
		panic("pcie: add after Build")
	}
	if int(parent) < 0 || int(parent) >= len(b.topo.nodes) {
		panic(fmt.Sprintf("pcie: unknown parent %d", parent))
	}
	pk := b.topo.nodes[parent].Kind
	if pk != KindRootComplex && pk != KindSwitch {
		panic(fmt.Sprintf("pcie: parent %q is a %v, not a switch or root complex", b.topo.nodes[parent].Name, pk))
	}
	id := NodeID(len(b.topo.nodes))
	b.topo.nodes = append(b.topo.nodes, Node{
		ID: id, Kind: kind, Name: name, Parent: parent,
		depth: b.topo.nodes[parent].depth + 1,
	})
	b.topo.links = append(b.topo.links, Link{Child: id, Bandwidth: bw})
	b.topo.nodes[parent].children = append(b.topo.nodes[parent].children, id)
	return id
}

// Switch adds a PCIe switch under parent with the default link bandwidth.
func (b *Builder) Switch(parent NodeID, name string) NodeID {
	return b.add(parent, KindSwitch, name, b.defBW)
}

// Device adds an endpoint of the given kind with the default bandwidth.
func (b *Builder) Device(parent NodeID, kind NodeKind, name string) NodeID {
	if kind == KindRootComplex || kind == KindSwitch {
		panic("pcie: Device cannot add forwarding nodes")
	}
	return b.add(parent, kind, name, b.defBW)
}

// DeviceBW adds an endpoint with an explicit link bandwidth (e.g. an SSD
// on an x4 link).
func (b *Builder) DeviceBW(parent NodeID, kind NodeKind, name string, bw units.BytesPerSec) NodeID {
	if kind == KindRootComplex || kind == KindSwitch {
		panic("pcie: DeviceBW cannot add forwarding nodes")
	}
	return b.add(parent, kind, name, bw)
}

// Build finalizes and returns the topology. The builder must not be used
// afterwards.
func (b *Builder) Build() *Topology {
	if !b.hasRoot {
		panic("pcie: Build without Root")
	}
	b.built = true
	return b.topo
}

// Root returns the root complex node ID.
func (t *Topology) Root() NodeID { return t.root }

// NumNodes returns the number of nodes, including the root complex.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node {
	return t.nodes[id]
}

// LinkOf returns the link connecting id to its parent. Calling it for the
// root complex panics.
func (t *Topology) LinkOf(id NodeID) Link {
	if id == t.root {
		panic("pcie: root complex has no uplink")
	}
	return t.links[id]
}

// Children returns the IDs of id's children in insertion order.
func (t *Topology) Children(id NodeID) []NodeID {
	return append([]NodeID(nil), t.nodes[id].children...)
}

// DevicesOfKind returns all endpoint IDs of the given kind in ID order.
func (t *Topology) DevicesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Route returns the directional link segments a packet traverses from src
// to dst: up-links from src to the lowest common ancestor, then down-links
// to dst. Identical endpoints yield an empty route.
func (t *Topology) Route(src, dst NodeID) []Segment {
	if src == dst {
		return nil
	}
	a, bn := t.nodes[src], t.nodes[dst]
	var ups, downs []Segment
	// Climb the deeper side first.
	for a.depth > bn.depth {
		ups = append(ups, Segment{Link: a.ID, Direction: Up})
		a = t.nodes[a.Parent]
	}
	for bn.depth > a.depth {
		downs = append(downs, Segment{Link: bn.ID, Direction: Down})
		bn = t.nodes[bn.Parent]
	}
	for a.ID != bn.ID {
		ups = append(ups, Segment{Link: a.ID, Direction: Up})
		downs = append(downs, Segment{Link: bn.ID, Direction: Down})
		a = t.nodes[a.Parent]
		bn = t.nodes[bn.Parent]
	}
	// downs were collected dst→LCA; reverse for LCA→dst order.
	for i, j := 0, len(downs)-1; i < j; i, j = i+1, j-1 {
		downs[i], downs[j] = downs[j], downs[i]
	}
	return append(ups, downs...)
}

// RouteCrossesRoot reports whether the src→dst path passes through the
// root complex. The paper's clustering optimization exists exactly to make
// this false for the data path.
func (t *Topology) RouteCrossesRoot(src, dst NodeID) bool {
	for _, seg := range t.Route(src, dst) {
		if t.nodes[seg.Link].Parent == t.root {
			return true
		}
	}
	return false
}

// LCA returns the lowest common ancestor of two nodes.
func (t *Topology) LCA(x, y NodeID) NodeID {
	a, b := t.nodes[x], t.nodes[y]
	for a.depth > b.depth {
		a = t.nodes[a.Parent]
	}
	for b.depth > a.depth {
		b = t.nodes[b.Parent]
	}
	for a.ID != b.ID {
		a = t.nodes[a.Parent]
		b = t.nodes[b.Parent]
	}
	return a.ID
}

// Validate checks structural invariants and returns an error describing
// the first violation. A topology produced by Builder is always valid;
// Validate exists for tests and for defensive checks in higher layers.
func (t *Topology) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("pcie: empty topology")
	}
	if t.nodes[t.root].Kind != KindRootComplex {
		return fmt.Errorf("pcie: root %d is not a root complex", t.root)
	}
	for _, n := range t.nodes {
		if n.ID == t.root {
			continue
		}
		if int(n.Parent) < 0 || int(n.Parent) >= len(t.nodes) {
			return fmt.Errorf("pcie: node %q has invalid parent", n.Name)
		}
		if t.links[n.ID].Bandwidth <= 0 {
			return fmt.Errorf("pcie: node %q has non-positive link bandwidth", n.Name)
		}
		if n.Kind != KindSwitch && n.Kind != KindRootComplex && len(n.children) > 0 {
			return fmt.Errorf("pcie: endpoint %q has children", n.Name)
		}
	}
	return nil
}
