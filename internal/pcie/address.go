package pcie

import (
	"fmt"
	"sort"
)

// This file models PCIe address-range switching, the mechanism the
// paper's P2P optimization rides on (Section IV-C): "At the boot time,
// the system assigns a unique PCIe address ranges to each PCIe device
// and port of PCIe switches. Later, PCIe switches forward (rather than
// broadcast) packages based on their destination address and the address
// range of each port." AssignAddresses plays the boot-time enumeration;
// RouteByAddress plays a switch's forwarding decision; tests assert the
// two routing views (address-based and tree-based) agree everywhere.

// AddrRange is a half-open address window [Base, Base+Size).
type AddrRange struct {
	Base, Size uint64
}

// End returns the first address past the range.
func (r AddrRange) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the range.
func (r AddrRange) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// AddressMap is the result of enumeration: every node owns a range; a
// switch's range covers exactly its subtree (real bridges program their
// windows the same way, which is what makes prefix routing work).
type AddressMap struct {
	topo   *Topology
	ranges []AddrRange // indexed by NodeID
}

// deviceWindow is the per-endpoint BAR window size (enough for a device's
// doorbells and mapped memory; the value only needs to be consistent).
const deviceWindow uint64 = 1 << 24 // 16 MiB

// AssignAddresses performs boot-time enumeration: a depth-first walk
// that gives every endpoint a deviceWindow and every switch (and the
// root) the union of its children — contiguous because the walk
// allocates descendants consecutively.
func (t *Topology) AssignAddresses() *AddressMap {
	m := &AddressMap{topo: t, ranges: make([]AddrRange, len(t.nodes))}
	var next uint64 = deviceWindow // leave page zero unmapped, as real systems do
	var walk func(id NodeID) AddrRange
	walk = func(id NodeID) AddrRange {
		n := t.nodes[id]
		if len(n.children) == 0 && n.Kind != KindRootComplex && n.Kind != KindSwitch {
			r := AddrRange{Base: next, Size: deviceWindow}
			next += deviceWindow
			m.ranges[id] = r
			return r
		}
		start := next
		for _, c := range n.children {
			walk(c)
		}
		r := AddrRange{Base: start, Size: next - start}
		m.ranges[id] = r
		return r
	}
	walk(t.root)
	return m
}

// Range returns the node's assigned window.
func (m *AddressMap) Range(id NodeID) AddrRange { return m.ranges[id] }

// Owner returns the endpoint owning addr, or an error for unmapped
// addresses (including switch-only gaps, which cannot occur with this
// allocator but guard against corruption).
func (m *AddressMap) Owner(addr uint64) (NodeID, error) {
	// Walk down from the root like a switch cascade would.
	id := m.topo.root
	for {
		n := m.topo.nodes[id]
		if n.Kind != KindRootComplex && n.Kind != KindSwitch {
			if !m.ranges[id].Contains(addr) {
				return -1, fmt.Errorf("pcie: address %#x outside endpoint %q", addr, n.Name)
			}
			return id, nil
		}
		// Binary-search the children's bases (they are sorted by
		// construction).
		children := n.children
		idx := sort.Search(len(children), func(i int) bool {
			return m.ranges[children[i]].Base > addr
		}) - 1
		if idx < 0 || !m.ranges[children[idx]].Contains(addr) {
			return -1, fmt.Errorf("pcie: address %#x unmapped under %q", addr, n.Name)
		}
		id = children[idx]
	}
}

// RouteByAddress forwards a packet from src toward a destination
// *address* exactly the way the switch cascade does: at each hop, if the
// current node's subtree window contains the address, descend toward the
// owning child; otherwise forward upstream. It returns the traversed
// directional segments. Tests assert it equals Route(src, Owner(addr)).
func (m *AddressMap) RouteByAddress(src NodeID, addr uint64) ([]Segment, error) {
	if _, err := m.Owner(addr); err != nil {
		return nil, err
	}
	var segs []Segment
	cur := src
	for {
		n := m.topo.nodes[cur]
		switchLike := n.Kind == KindRootComplex || n.Kind == KindSwitch
		if m.ranges[cur].Contains(addr) {
			if !switchLike {
				return segs, nil // arrived at the owning endpoint
			}
			// Descend to the child window holding the address.
			children := n.children
			idx := sort.Search(len(children), func(i int) bool {
				return m.ranges[children[i]].Base > addr
			}) - 1
			if idx < 0 || !m.ranges[children[idx]].Contains(addr) {
				return nil, fmt.Errorf("pcie: switch %q has no window for %#x", n.Name, addr)
			}
			child := children[idx]
			segs = append(segs, Segment{Link: child, Direction: Down})
			cur = child
			continue
		}
		// Not in this subtree: forward upstream.
		if cur == m.topo.root {
			return nil, fmt.Errorf("pcie: address %#x escaped the root", addr)
		}
		segs = append(segs, Segment{Link: cur, Direction: Up})
		cur = n.Parent
	}
}
