package pcie

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAssignAddressesDisjointAndNested(t *testing.T) {
	topo, ids := buildTestTree(t)
	m := topo.AssignAddresses()

	// Endpoint windows are pairwise disjoint.
	endpoints := []NodeID{ids["ssd0"], ids["acc0"], ids["acc1"], ids["fpga0"]}
	for i := range endpoints {
		for j := i + 1; j < len(endpoints); j++ {
			a, b := m.Range(endpoints[i]), m.Range(endpoints[j])
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("windows overlap: %+v and %+v", a, b)
			}
		}
	}
	// A switch's window covers each of its children.
	for _, pair := range [][2]string{{"sw0", "ssd0"}, {"sw0", "acc0"}, {"sw1", "sw2"}, {"sw2", "fpga0"}} {
		parent, child := m.Range(ids[pair[0]]), m.Range(ids[pair[1]])
		if child.Base < parent.Base || child.End() > parent.End() {
			t.Errorf("%s window %+v not inside %s window %+v", pair[1], child, pair[0], parent)
		}
	}
	// Page zero stays unmapped.
	if _, err := m.Owner(0); err == nil {
		t.Error("address 0 should be unmapped")
	}
}

func TestOwnerResolvesEveryEndpointAddress(t *testing.T) {
	topo, ids := buildTestTree(t)
	m := topo.AssignAddresses()
	for _, name := range []string{"ssd0", "acc0", "acc1", "fpga0"} {
		id := ids[name]
		r := m.Range(id)
		for _, addr := range []uint64{r.Base, r.Base + r.Size/2, r.End() - 1} {
			owner, err := m.Owner(addr)
			if err != nil {
				t.Fatalf("%s addr %#x: %v", name, addr, err)
			}
			if owner != id {
				t.Fatalf("%s addr %#x resolved to node %d", name, addr, owner)
			}
		}
	}
	if _, err := m.Owner(1 << 60); err == nil {
		t.Error("out-of-map address resolved")
	}
}

// TestRouteByAddressEqualsTreeRoute is the defining property: forwarding
// by destination address through switch windows produces exactly the
// tree path — which is why P2P traffic that stays under one switch never
// reaches the root complex.
func TestRouteByAddressEqualsTreeRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo, devs := randomFanTree(2+r.Intn(3), 2+r.Intn(4))
		m := topo.AssignAddresses()
		src := devs[r.Intn(len(devs))]
		dst := devs[r.Intn(len(devs))]
		addr := m.Range(dst).Base + uint64(r.Intn(int(m.Range(dst).Size)))
		got, err := m.RouteByAddress(src, addr)
		if err != nil {
			return false
		}
		want := topo.Route(src, dst)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestRouteByAddressLocalP2PSkipsRoot(t *testing.T) {
	topo, ids := buildTestTree(t)
	m := topo.AssignAddresses()
	// ssd0 → acc0 live under sw0: the address route must not include
	// any root-adjacent link.
	segs, err := m.RouteByAddress(ids["ssd0"], m.Range(ids["acc0"]).Base)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if topo.Node(s.Link).Parent == topo.Root() {
			t.Fatalf("local P2P route crossed the root: %v", segs)
		}
	}
	if _, err := m.RouteByAddress(ids["ssd0"], 0); err == nil {
		t.Error("unmapped destination accepted")
	}
}

func TestRouteByAddressSelf(t *testing.T) {
	topo, ids := buildTestTree(t)
	m := topo.AssignAddresses()
	segs, err := m.RouteByAddress(ids["acc0"], m.Range(ids["acc0"]).Base)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("self route = %v, want empty", segs)
	}
}
