package pcie

import (
	"math"

	"trainbox/internal/sim"
	"trainbox/internal/units"
)

// Network is a flow-level discrete-event simulation of transfers over a
// Topology. Active transfers share directional link bandwidth max-min
// fairly; every transfer start or completion recomputes the allocation
// and reschedules completion events. This is the standard fluid-flow
// abstraction: accurate for throughput questions (which is all training
// cares about, per Section VI-A of the paper) without simulating packets.
type Network struct {
	eng  *sim.Engine
	topo *Topology

	active []*transfer

	// BytesMoved accumulates completed-transfer volume for reporting.
	BytesMoved sim.Counter
	// Completed counts finished transfers.
	Completed int
}

type transfer struct {
	src, dst   NodeID
	total      float64 // original bytes
	remaining  float64 // bytes
	rate       float64 // bytes/sec under current allocation
	updated    float64 // sim time of last remaining-bytes update
	done       func()
	completion *sim.Event
}

// NewNetwork creates a transfer simulator over topo driven by eng.
func NewNetwork(eng *sim.Engine, topo *Topology) *Network {
	return &Network{eng: eng, topo: topo}
}

// Start begins a transfer of the given volume from src to dst; done (may
// be nil) runs at completion time. Zero-byte or same-node transfers
// complete after zero simulated delay (still asynchronously, preserving
// event ordering).
func (n *Network) Start(src, dst NodeID, bytes units.Bytes, done func()) {
	if bytes <= 0 || src == dst {
		n.eng.After(0, func() {
			n.Completed++
			if done != nil {
				done()
			}
		})
		return
	}
	tr := &transfer{src: src, dst: dst, total: float64(bytes), remaining: float64(bytes), updated: n.eng.Now(), done: done}
	n.active = append(n.active, tr)
	n.reallocate()
}

// Active reports the number of in-flight transfers.
func (n *Network) Active() int { return len(n.active) }

// reallocate advances progress of every active transfer, recomputes fair
// rates, and reschedules completions.
func (n *Network) reallocate() {
	now := n.eng.Now()
	for _, tr := range n.active {
		tr.remaining -= tr.rate * (now - tr.updated)
		if tr.remaining < 0 {
			tr.remaining = 0
		}
		tr.updated = now
		if tr.completion != nil {
			n.eng.Cancel(tr.completion)
			tr.completion = nil
		}
	}

	flows := make([]Flow, len(n.active))
	for i, tr := range n.active {
		flows[i] = Flow{Src: tr.src, Dst: tr.dst, Weight: 1}
	}
	rates := n.topo.MaxMinFair(flows)

	for i, tr := range n.active {
		tr.rate = float64(rates.Rates[i])
		var dt float64
		if math.IsInf(tr.rate, 1) {
			dt = 0
		} else if tr.rate <= 0 {
			// No capacity at all — leave the transfer stalled; a later
			// reallocation may revive it. (Cannot happen on Builder
			// topologies, which require positive bandwidth.)
			continue
		} else {
			dt = tr.remaining / tr.rate
		}
		tr.completion = n.eng.After(dt, n.completer(tr))
	}
}

// completer returns the completion action for tr.
func (n *Network) completer(tr *transfer) func() {
	return func() {
		// Remove tr from the active set.
		for i, a := range n.active {
			if a == tr {
				n.active = append(n.active[:i], n.active[i+1:]...)
				break
			}
		}
		n.BytesMoved.Add(tr.total)
		n.Completed++
		tr.completion = nil
		n.reallocate()
		if tr.done != nil {
			tr.done()
		}
	}
}
