package pcie

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"trainbox/internal/units"
)

func TestMaxMinFairSingleFlowGetsFullLink(t *testing.T) {
	topo, ids := buildTestTree(t)
	fr := topo.MaxMinFair([]Flow{{Src: ids["ssd0"], Dst: ids["acc0"], Weight: 1}})
	if got := fr.Rates[0]; got != Gen3.LinkBandwidth() {
		t.Errorf("rate = %v, want %v", got, Gen3.LinkBandwidth())
	}
}

func TestMaxMinFairTwoFlowsShareCommonLink(t *testing.T) {
	topo, ids := buildTestTree(t)
	// Both flows exit via ssd0's uplink.
	flows := []Flow{
		{Src: ids["ssd0"], Dst: ids["acc0"], Weight: 1},
		{Src: ids["ssd0"], Dst: ids["acc1"], Weight: 1},
	}
	fr := topo.MaxMinFair(flows)
	half := Gen3.LinkBandwidth() / 2
	for i, r := range fr.Rates {
		if math.Abs(float64(r-half)) > 1 {
			t.Errorf("rate[%d] = %v, want %v", i, r, half)
		}
	}
}

func TestMaxMinFairWeightedShares(t *testing.T) {
	topo, ids := buildTestTree(t)
	flows := []Flow{
		{Src: ids["ssd0"], Dst: ids["acc0"], Weight: 3},
		{Src: ids["ssd0"], Dst: ids["acc1"], Weight: 1},
	}
	fr := topo.MaxMinFair(flows)
	bw := float64(Gen3.LinkBandwidth())
	if math.Abs(float64(fr.Rates[0])-0.75*bw) > 1 {
		t.Errorf("weighted rate[0] = %v, want %v", fr.Rates[0], 0.75*bw)
	}
	if math.Abs(float64(fr.Rates[1])-0.25*bw) > 1 {
		t.Errorf("weighted rate[1] = %v, want %v", fr.Rates[1], 0.25*bw)
	}
}

func TestMaxMinFairDisjointFlowsDoNotInterfere(t *testing.T) {
	topo, ids := buildTestTree(t)
	flows := []Flow{
		{Src: ids["ssd0"], Dst: ids["acc0"], Weight: 1},  // inside sw0
		{Src: ids["fpga0"], Dst: ids["acc1"], Weight: 1}, // inside sw1 subtree
	}
	fr := topo.MaxMinFair(flows)
	for i, r := range fr.Rates {
		if r != Gen3.LinkBandwidth() {
			t.Errorf("disjoint rate[%d] = %v, want full link", i, r)
		}
	}
}

func TestMaxMinFairBottleneckReleasesOtherLinks(t *testing.T) {
	// Flow A is squeezed on ssd's narrow x4 link; flow B sharing a wide
	// link with A should pick up the slack (max-min, not proportional).
	b := NewBuilder(Gen3)
	rc := b.Root("rc")
	sw := b.Switch(rc, "sw")
	ssd := b.DeviceBW(sw, KindSSD, "ssd", 4*units.GBps)
	accA := b.Device(rc, KindNNAccel, "accA")
	fpga := b.Device(sw, KindPrepAccel, "fpga")
	topo := b.Build()

	flows := []Flow{
		{Src: ssd, Dst: accA, Weight: 1},  // limited to 4 GB/s by ssd uplink
		{Src: fpga, Dst: accA, Weight: 1}, // shares sw uplink and accA downlink
	}
	fr := topo.MaxMinFair(flows)
	if math.Abs(float64(fr.Rates[0])-4e9) > 1 {
		t.Errorf("narrow flow = %v, want 4 GB/s", fr.Rates[0])
	}
	if math.Abs(float64(fr.Rates[1])-12e9) > 1 {
		t.Errorf("wide flow = %v, want 12 GB/s", fr.Rates[1])
	}
}

func TestMaxMinFairSameNodeFlowUnconstrained(t *testing.T) {
	topo, ids := buildTestTree(t)
	fr := topo.MaxMinFair([]Flow{{Src: ids["acc0"], Dst: ids["acc0"], Weight: 1}})
	if !math.IsInf(float64(fr.Rates[0]), 1) {
		t.Errorf("same-node flow rate = %v, want +Inf", fr.Rates[0])
	}
}

func TestMaxMinFairEmptyFlows(t *testing.T) {
	topo, _ := buildTestTree(t)
	fr := topo.MaxMinFair(nil)
	if len(fr.Rates) != 0 {
		t.Errorf("rates = %v, want empty", fr.Rates)
	}
}

func TestMaxMinFairNonPositiveWeightPanics(t *testing.T) {
	topo, ids := buildTestTree(t)
	defer func() {
		if recover() == nil {
			t.Error("non-positive weight did not panic")
		}
	}()
	topo.MaxMinFair([]Flow{{Src: ids["ssd0"], Dst: ids["acc0"], Weight: 0}})
}

// randomFanTree builds a root with nSw switches, each holding nDev
// devices, for property tests.
func randomFanTree(nSw, nDev int) (*Topology, []NodeID) {
	b := NewBuilder(Gen3)
	rc := b.Root("rc")
	var devs []NodeID
	for s := 0; s < nSw; s++ {
		sw := b.Switch(rc, "sw")
		for d := 0; d < nDev; d++ {
			devs = append(devs, b.Device(sw, KindNNAccel, "dev"))
		}
	}
	return b.Build(), devs
}

// TestMaxMinFairPropertyInvariants asserts, on random flow sets, the two
// defining properties of a feasible max-min fair allocation:
//  1. no directional link carries more than its capacity, and
//  2. every flow crosses at least one saturated link (it cannot be
//     unilaterally increased), i.e. the allocation is Pareto-maximal.
func TestMaxMinFairPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo, devs := randomFanTree(2+r.Intn(3), 2+r.Intn(3))
		nf := 1 + r.Intn(8)
		flows := make([]Flow, nf)
		for i := range flows {
			src := devs[r.Intn(len(devs))]
			dst := devs[r.Intn(len(devs))]
			for dst == src {
				dst = devs[r.Intn(len(devs))]
			}
			flows[i] = Flow{Src: src, Dst: dst, Weight: 0.5 + r.Float64()*3}
		}
		fr := topo.MaxMinFair(flows)

		// Accumulate per-directional-link usage.
		type key struct {
			link NodeID
			dir  Direction
		}
		usage := map[key]float64{}
		for i, f := range flows {
			for _, s := range topo.Route(f.Src, f.Dst) {
				usage[key{s.Link, s.Direction}] += float64(fr.Rates[i])
			}
		}
		for k, u := range usage {
			cap := float64(topo.LinkOf(k.link).Bandwidth)
			if u > cap*(1+1e-9) {
				t.Logf("seed %d: link %v/%v oversubscribed: %v > %v", seed, k.link, k.dir, u, cap)
				return false
			}
		}
		// Pareto: every flow crosses a saturated link.
		for i, f := range flows {
			saturated := false
			for _, s := range topo.Route(f.Src, f.Dst) {
				cap := float64(topo.LinkOf(s.Link).Bandwidth)
				if usage[key{s.Link, s.Direction}] >= cap*(1-1e-9) {
					saturated = true
					break
				}
			}
			if !saturated {
				t.Logf("seed %d: flow %d (rate %v) crosses no saturated link", seed, i, fr.Rates[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestLinkLoadAccumulatesPerLink(t *testing.T) {
	topo, ids := buildTestTree(t)
	ll := NewLinkLoad(topo)
	ll.AddTransfer(ids["ssd0"], ids["acc0"], 100)    // local to sw0
	ll.AddTransfer(ids["ssd0"], ids["acc1"], 50)     // crosses root
	if got := ll.Load(ids["ssd0"], Up); got != 150 { // both leave the SSD
		t.Errorf("ssd uplink load = %v, want 150", got)
	}
	if got := ll.Load(ids["acc0"], Down); got != 100 {
		t.Errorf("acc0 downlink load = %v, want 100", got)
	}
	if got := ll.Load(ids["sw0"], Up); got != 50 {
		t.Errorf("sw0 uplink load = %v, want 50", got)
	}
	// RC sees the cross-tree transfer twice: entering (sw0 up) + leaving (sw1 down).
	if got := ll.RootComplexLoad(); got != 100 {
		t.Errorf("RC load = %v, want 100", got)
	}
}

func TestLinkLoadMaxUnitTime(t *testing.T) {
	b := NewBuilder(Gen3)
	rc := b.Root("rc")
	ssd := b.DeviceBW(rc, KindSSD, "ssd", 1*units.GBps)
	acc := b.Device(rc, KindNNAccel, "acc")
	topo := b.Build()
	ll := NewLinkLoad(topo)
	ll.AddTransfer(ssd, acc, units.Bytes(2e9))
	sec, link, dir := ll.MaxUnitTime()
	if math.Abs(sec-2.0) > 1e-9 {
		t.Errorf("unit time = %v, want 2.0", sec)
	}
	if link != ssd || dir != Up {
		t.Errorf("bottleneck = %v/%v, want ssd/up", link, dir)
	}
}

func TestLinkLoadEmpty(t *testing.T) {
	topo, _ := buildTestTree(t)
	ll := NewLinkLoad(topo)
	sec, link, _ := ll.MaxUnitTime()
	if sec != 0 || link != -1 {
		t.Errorf("empty load: sec=%v link=%v", sec, link)
	}
}
