package pcie

import (
	"fmt"
	"strings"
)

// Describe renders the topology as an indented ASCII tree with link
// bandwidths — the operator's view of a built server.
func (t *Topology) Describe() string {
	var sb strings.Builder
	var walk func(id NodeID, depth int)
	walk = func(id NodeID, depth int) {
		n := t.nodes[id]
		indent := strings.Repeat("  ", depth)
		if id == t.root {
			fmt.Fprintf(&sb, "%s%s [%s]\n", indent, n.Name, n.Kind)
		} else {
			fmt.Fprintf(&sb, "%s%s [%s] ↕ %v\n", indent, n.Name, n.Kind, t.links[id].Bandwidth)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return sb.String()
}

// Stats summarizes the topology: node counts by kind and tree depth.
type Stats struct {
	Nodes    int
	ByKind   map[NodeKind]int
	MaxDepth int
}

// Summarize computes topology statistics.
func (t *Topology) Summarize() Stats {
	s := Stats{Nodes: len(t.nodes), ByKind: map[NodeKind]int{}}
	for _, n := range t.nodes {
		s.ByKind[n.Kind]++
		if n.depth > s.MaxDepth {
			s.MaxDepth = n.depth
		}
	}
	return s
}
