package pcie

import (
	"strings"
	"testing"

	"trainbox/internal/units"
)

// buildTestTree builds:
//
//	rc ── sw0 ── ssd0
//	 │      └── acc0
//	 └─ sw1 ── acc1
//	        └── sw2 ── fpga0
func buildTestTree(t *testing.T) (*Topology, map[string]NodeID) {
	t.Helper()
	b := NewBuilder(Gen3)
	ids := map[string]NodeID{}
	ids["rc"] = b.Root("rc")
	ids["sw0"] = b.Switch(ids["rc"], "sw0")
	ids["sw1"] = b.Switch(ids["rc"], "sw1")
	ids["ssd0"] = b.Device(ids["sw0"], KindSSD, "ssd0")
	ids["acc0"] = b.Device(ids["sw0"], KindNNAccel, "acc0")
	ids["acc1"] = b.Device(ids["sw1"], KindNNAccel, "acc1")
	ids["sw2"] = b.Switch(ids["sw1"], "sw2")
	ids["fpga0"] = b.Device(ids["sw2"], KindPrepAccel, "fpga0")
	topo := b.Build()
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return topo, ids
}

func TestRouteSiblingStaysUnderSwitch(t *testing.T) {
	topo, ids := buildTestTree(t)
	route := topo.Route(ids["ssd0"], ids["acc0"])
	want := []Segment{{ids["ssd0"], Up}, {ids["acc0"], Down}}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
	if topo.RouteCrossesRoot(ids["ssd0"], ids["acc0"]) {
		t.Error("sibling route should not cross the root complex")
	}
}

func TestRouteCrossTreeGoesThroughRoot(t *testing.T) {
	topo, ids := buildTestTree(t)
	route := topo.Route(ids["ssd0"], ids["fpga0"])
	want := []Segment{
		{ids["ssd0"], Up}, {ids["sw0"], Up},
		{ids["sw1"], Down}, {ids["sw2"], Down}, {ids["fpga0"], Down},
	}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route[%d] = %v, want %v", i, route[i], want[i])
		}
	}
	if !topo.RouteCrossesRoot(ids["ssd0"], ids["fpga0"]) {
		t.Error("cross-tree route should cross the root complex")
	}
}

func TestRouteSameNodeIsEmpty(t *testing.T) {
	topo, ids := buildTestTree(t)
	if r := topo.Route(ids["acc0"], ids["acc0"]); len(r) != 0 {
		t.Errorf("same-node route = %v, want empty", r)
	}
}

func TestRouteIsSymmetricReversed(t *testing.T) {
	topo, ids := buildTestTree(t)
	fwd := topo.Route(ids["acc0"], ids["fpga0"])
	rev := topo.Route(ids["fpga0"], ids["acc0"])
	if len(fwd) != len(rev) {
		t.Fatalf("asymmetric route lengths %d vs %d", len(fwd), len(rev))
	}
	for i := range fwd {
		j := len(rev) - 1 - i
		if fwd[i].Link != rev[j].Link {
			t.Errorf("link mismatch at %d: %v vs %v", i, fwd[i], rev[j])
		}
		if fwd[i].Direction == rev[j].Direction {
			t.Errorf("direction should flip at %d: %v vs %v", i, fwd[i], rev[j])
		}
	}
}

func TestLCA(t *testing.T) {
	topo, ids := buildTestTree(t)
	cases := []struct {
		a, b, want string
	}{
		{"ssd0", "acc0", "sw0"},
		{"ssd0", "fpga0", "rc"},
		{"acc1", "fpga0", "sw1"},
		{"acc0", "acc0", "acc0"},
		{"rc", "fpga0", "rc"},
	}
	for _, c := range cases {
		if got := topo.LCA(ids[c.a], ids[c.b]); got != ids[c.want] {
			t.Errorf("LCA(%s,%s) = %v, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestDevicesOfKind(t *testing.T) {
	topo, _ := buildTestTree(t)
	if got := len(topo.DevicesOfKind(KindNNAccel)); got != 2 {
		t.Errorf("NN accels = %d, want 2", got)
	}
	if got := len(topo.DevicesOfKind(KindSSD)); got != 1 {
		t.Errorf("SSDs = %d, want 1", got)
	}
	if got := len(topo.DevicesOfKind(KindSwitch)); got != 3 {
		t.Errorf("switches = %d, want 3", got)
	}
}

func TestGenerationBandwidth(t *testing.T) {
	if Gen4.LinkBandwidth() != 2*Gen3.LinkBandwidth() {
		t.Errorf("Gen4 should double Gen3: %v vs %v", Gen4.LinkBandwidth(), Gen3.LinkBandwidth())
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double root", func() {
		b := NewBuilder(Gen3)
		b.Root("a")
		b.Root("b")
	})
	mustPanic("device before root", func() {
		b := NewBuilder(Gen3)
		b.Switch(0, "sw")
	})
	mustPanic("device under device", func() {
		b := NewBuilder(Gen3)
		r := b.Root("rc")
		d := b.Device(r, KindSSD, "ssd")
		b.Device(d, KindNNAccel, "acc")
	})
	mustPanic("switch via Device", func() {
		b := NewBuilder(Gen3)
		r := b.Root("rc")
		b.Device(r, KindSwitch, "sw")
	})
	mustPanic("add after build", func() {
		b := NewBuilder(Gen3)
		r := b.Root("rc")
		b.Build()
		b.Switch(r, "sw")
	})
}

func TestDeviceBWOverride(t *testing.T) {
	b := NewBuilder(Gen3)
	r := b.Root("rc")
	ssd := b.DeviceBW(r, KindSSD, "ssd", 4*units.GBps)
	topo := b.Build()
	if got := topo.LinkOf(ssd).Bandwidth; got != 4*units.GBps {
		t.Errorf("link bandwidth = %v, want 4 GB/s", got)
	}
}

func TestRootHasNoUplink(t *testing.T) {
	topo, ids := buildTestTree(t)
	defer func() {
		if recover() == nil {
			t.Error("LinkOf(root) did not panic")
		}
	}()
	topo.LinkOf(ids["rc"])
}

func TestNodeKindStrings(t *testing.T) {
	kinds := []NodeKind{KindRootComplex, KindSwitch, KindSSD, KindNNAccel, KindPrepAccel, KindNIC, KindHost}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
}

func TestDescribeRendersTree(t *testing.T) {
	topo, _ := buildTestTree(t)
	out := topo.Describe()
	for _, want := range []string{"rc [root-complex]", "sw0 [switch]", "ssd0 [ssd]", "fpga0 [prep-accel]", "16.00 GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// Children indented deeper than parents.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "rc") {
		t.Error("root not first")
	}
	if !strings.HasPrefix(lines[1], "  ") {
		t.Error("children not indented")
	}
}

func TestSummarize(t *testing.T) {
	topo, _ := buildTestTree(t)
	s := topo.Summarize()
	if s.Nodes != 8 {
		t.Errorf("nodes = %d, want 8", s.Nodes)
	}
	if s.ByKind[KindSwitch] != 3 || s.ByKind[KindNNAccel] != 2 || s.ByKind[KindSSD] != 1 {
		t.Errorf("by-kind = %v", s.ByKind)
	}
	if s.MaxDepth != 3 { // rc → sw1 → sw2 → fpga0
		t.Errorf("max depth = %d, want 3", s.MaxDepth)
	}
}
