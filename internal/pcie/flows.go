package pcie

import (
	"fmt"
	"math"

	"trainbox/internal/units"
)

// Flow is a continuous data stream between two endpoints. Weight scales
// the flow's fair share (a weight-2 flow behaves like two unit flows);
// it is also how callers express "this logical flow carries k bytes per
// sample" when converting fair rates back to sample rates.
type Flow struct {
	Src, Dst NodeID
	Weight   float64
}

// FlowRates is the result of a fair-share computation: Rates[i] is the
// allocated bandwidth of flow i.
type FlowRates struct {
	Rates []units.BytesPerSec
}

// linkDirKey identifies one direction of one link.
type linkDirKey struct {
	link NodeID
	dir  Direction
}

// MaxMinFair computes the weighted max-min fair allocation of the flows
// over the topology's directional link capacities using progressive
// filling: repeatedly find the link whose remaining capacity divided by
// the unfrozen weight crossing it is smallest, freeze those flows at that
// fair level, and continue.
//
// The returned allocation satisfies, and tests assert, the two defining
// invariants: no directional link is oversubscribed, and every flow is
// bottlenecked (it crosses some saturated link on which no other flow has
// a higher per-weight rate).
func (t *Topology) MaxMinFair(flows []Flow) FlowRates {
	n := len(flows)
	rates := make([]units.BytesPerSec, n)
	if n == 0 {
		return FlowRates{Rates: rates}
	}

	routes := make([][]Segment, n)
	for i, f := range flows {
		if f.Weight <= 0 {
			panic(fmt.Sprintf("pcie: flow %d has non-positive weight %v", i, f.Weight))
		}
		routes[i] = t.Route(f.Src, f.Dst)
		if len(routes[i]) == 0 {
			// Degenerate same-node flow: unconstrained by the fabric.
			rates[i] = units.BytesPerSec(math.Inf(1))
		}
	}

	remaining := map[linkDirKey]float64{}
	crossing := map[linkDirKey][]int{}
	for i, segs := range routes {
		for _, s := range segs {
			k := linkDirKey{s.Link, s.Direction}
			if _, ok := remaining[k]; !ok {
				remaining[k] = float64(t.links[s.Link].Bandwidth)
			}
			crossing[k] = append(crossing[k], i)
		}
	}

	frozen := make([]bool, n)
	level := make([]float64, n) // frozen per-weight rate
	active := 0
	for i := range flows {
		if len(routes[i]) > 0 {
			active++
		} else {
			frozen[i] = true
		}
	}

	for active > 0 {
		// Find the most constraining link: min over links of
		// remaining / sum of unfrozen weights crossing it.
		best := math.Inf(1)
		for k, rem := range remaining {
			var w float64
			for _, fi := range crossing[k] {
				if !frozen[fi] {
					w += flows[fi].Weight
				}
			}
			if w == 0 {
				continue
			}
			if fair := rem / w; fair < best {
				best = fair
			}
		}
		if math.IsInf(best, 1) {
			break // all remaining flows cross only unconstrained links
		}
		// Freeze every unfrozen flow crossing a link saturated at this
		// level. Use a tolerance so float noise cannot stall progress.
		progress := false
		for k, rem := range remaining {
			var w float64
			for _, fi := range crossing[k] {
				if !frozen[fi] {
					w += flows[fi].Weight
				}
			}
			if w == 0 {
				continue
			}
			if rem/w <= best*(1+1e-12) {
				for _, fi := range crossing[k] {
					if !frozen[fi] {
						frozen[fi] = true
						level[fi] = best
						active--
						progress = true
					}
				}
			}
		}
		if !progress {
			panic("pcie: max-min fair solver stalled")
		}
		// Deduct frozen flows' consumption from every link they cross.
		for k := range remaining {
			var used float64
			for _, fi := range crossing[k] {
				if frozen[fi] && !math.IsInf(level[fi], 1) {
					used += level[fi] * flows[fi].Weight
				}
			}
			rem := float64(t.links[k.link].Bandwidth) - used
			if rem < 0 {
				rem = 0
			}
			remaining[k] = rem
		}
		// Rebuild crossing sets to only consider unfrozen flows next
		// round. (Cheap relative to topology sizes used here.)
	}

	for i := range flows {
		if len(routes[i]) == 0 {
			continue // keep +Inf
		}
		rates[i] = units.BytesPerSec(level[i] * flows[i].Weight)
	}
	return FlowRates{Rates: rates}
}

// LinkLoad accumulates, for each directional link, the total bytes per
// unit that the given flows push across it when each flow i carries
// perUnit[i] bytes per unit of work (e.g. bytes per training sample).
// The result maps each directional link to its per-unit byte load; the
// maximum over links of load/bandwidth is the per-unit fabric time, whose
// reciprocal is the fabric-limited unit rate.
type LinkLoad struct {
	topo  *Topology
	loads map[linkDirKey]float64
}

// NewLinkLoad returns an empty accumulator for the topology.
func NewLinkLoad(t *Topology) *LinkLoad {
	return &LinkLoad{topo: t, loads: map[linkDirKey]float64{}}
}

// AddTransfer routes bytes from src to dst and charges every directional
// link on the path.
func (l *LinkLoad) AddTransfer(src, dst NodeID, bytes units.Bytes) {
	for _, s := range l.topo.Route(src, dst) {
		l.loads[linkDirKey{s.Link, s.Direction}] += float64(bytes)
	}
}

// MaxUnitTime returns the largest load/bandwidth across links — the time
// the busiest link needs per unit of work — along with that link's child
// node ID and direction. With no recorded load it returns (0, -1, Up).
func (l *LinkLoad) MaxUnitTime() (seconds float64, link NodeID, dir Direction) {
	link = -1
	for k, bytes := range l.loads {
		t := bytes / float64(l.topo.links[k.link].Bandwidth)
		if t > seconds {
			seconds, link, dir = t, k.link, k.dir
		}
	}
	return seconds, link, dir
}

// Load returns the accumulated per-unit bytes on one directional link.
func (l *LinkLoad) Load(link NodeID, dir Direction) units.Bytes {
	return units.Bytes(l.loads[linkDirKey{link, dir}])
}

// RootComplexLoad sums the per-unit bytes crossing the root complex in
// both directions — the quantity Figure 10c normalizes. A byte that both
// enters and leaves the RC (e.g. SSD→host→accelerator) is counted on each
// crossing, matching how the paper attributes RC pressure.
func (l *LinkLoad) RootComplexLoad() units.Bytes {
	var total float64
	root := l.topo.root
	for k, bytes := range l.loads {
		if l.topo.nodes[k.link].Parent == root {
			total += bytes
		}
	}
	return units.Bytes(total)
}
