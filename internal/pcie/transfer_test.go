package pcie

import (
	"math"
	"testing"

	"trainbox/internal/sim"
	"trainbox/internal/units"
)

func TestNetworkSingleTransferTime(t *testing.T) {
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	var done float64
	net.Start(ids["ssd0"], ids["acc0"], 16*units.GB, func() { done = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(16*units.GB) / float64(Gen3.LinkBandwidth())
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("completion at %v, want %v", done, want)
	}
	if net.Completed != 1 {
		t.Errorf("Completed = %d", net.Completed)
	}
}

func TestNetworkSharingHalvesRateThenRecovers(t *testing.T) {
	// Two equal transfers share ssd0's uplink; each should take exactly
	// 1.5× a solo transfer under fluid fair sharing: they run at half
	// rate until both finish simultaneously (equal sizes).
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	var t1, t2 float64
	vol := 16 * units.GB
	net.Start(ids["ssd0"], ids["acc0"], vol, func() { t1 = eng.Now() })
	net.Start(ids["ssd0"], ids["acc1"], vol, func() { t2 = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	solo := float64(vol) / float64(Gen3.LinkBandwidth())
	if math.Abs(t1-2*solo) > 1e-9 || math.Abs(t2-2*solo) > 1e-9 {
		t.Errorf("completions %v,%v, want both at %v", t1, t2, 2*solo)
	}
}

func TestNetworkLateArrivalSlowsExisting(t *testing.T) {
	// Transfer A runs alone for half its volume, then B arrives on the
	// same bottleneck. A's remaining half runs at half rate.
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	bw := float64(Gen3.LinkBandwidth())
	vol := units.Bytes(bw) // 1 second solo
	var ta float64
	net.Start(ids["ssd0"], ids["acc0"], vol, func() { ta = eng.Now() })
	eng.At(0.5, func() {
		net.Start(ids["ssd0"], ids["acc1"], vol, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// A: 0.5 s at full rate (half volume) + 0.5 volume at half rate = 1 s more.
	if math.Abs(ta-1.5) > 1e-9 {
		t.Errorf("A completed at %v, want 1.5", ta)
	}
}

func TestNetworkDisjointTransfersRunInParallel(t *testing.T) {
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	vol := 16 * units.GB
	var times []float64
	net.Start(ids["ssd0"], ids["acc0"], vol, func() { times = append(times, eng.Now()) })
	net.Start(ids["fpga0"], ids["acc1"], vol, func() { times = append(times, eng.Now()) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	solo := float64(vol) / float64(Gen3.LinkBandwidth())
	for i, tt := range times {
		if math.Abs(tt-solo) > 1e-9 {
			t.Errorf("transfer %d completed at %v, want %v", i, tt, solo)
		}
	}
}

func TestNetworkZeroBytesCompletesImmediately(t *testing.T) {
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	fired := false
	net.Start(ids["ssd0"], ids["acc0"], 0, func() { fired = true })
	if fired {
		t.Error("done ran synchronously")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || eng.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, eng.Now())
	}
}

func TestNetworkManyTransfersConserveBytes(t *testing.T) {
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	var total units.Bytes
	srcs := []NodeID{ids["ssd0"], ids["fpga0"], ids["acc0"]}
	dsts := []NodeID{ids["acc1"], ids["acc0"], ids["fpga0"]}
	for i := 0; i < 30; i++ {
		vol := units.Bytes(float64(i+1) * 1e8)
		total += vol
		src, dst := srcs[i%3], dsts[i%3]
		delay := float64(i) * 0.01
		eng.At(delay, func() { net.Start(src, dst, vol, nil) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Completed != 30 {
		t.Errorf("Completed = %d, want 30", net.Completed)
	}
	if math.Abs(net.BytesMoved.Total()-float64(total)) > 1 {
		t.Errorf("BytesMoved = %v, want %v", net.BytesMoved.Total(), float64(total))
	}
	if net.Active() != 0 {
		t.Errorf("Active = %d after drain", net.Active())
	}
}

// TestNetworkThroughputMatchesAnalyticalBottleneck cross-checks the DES
// against the closed-form bottleneck rate for a steady pipeline: samples
// flowing ssd0→acc1 (crossing the root) at saturation should deliver
// exactly one link's bandwidth.
func TestNetworkThroughputMatchesAnalyticalBottleneck(t *testing.T) {
	topo, ids := buildTestTree(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, topo)
	const n = 64
	per := units.Bytes(1e9)
	finished := 0
	var last float64
	var launch func()
	inFlight := 0
	launched := 0
	launch = func() {
		for inFlight < 4 && launched < n { // keep the pipe full
			launched++
			inFlight++
			net.Start(ids["ssd0"], ids["acc1"], per, func() {
				inFlight--
				finished++
				last = eng.Now()
				launch()
			})
		}
	}
	launch()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished %d of %d", finished, n)
	}
	gotRate := float64(n) * float64(per) / last
	wantRate := float64(Gen3.LinkBandwidth())
	if math.Abs(gotRate-wantRate)/wantRate > 0.01 {
		t.Errorf("steady rate = %v, want %v (±1%%)", gotRate, wantRate)
	}
}

// TestNetworkConvoyEffect documents a real queueing phenomenon the
// fluid model reproduces: equal-size two-leg chains released
// simultaneously phase-lock (every chain in leg 1 together, then leg 2
// together), halving effective utilization versus staggered release.
// core.SimulateBoxTransfers staggers its initial window for exactly this
// reason.
func TestNetworkConvoyEffect(t *testing.T) {
	build := func() (*Topology, NodeID, NodeID, NodeID) {
		b := NewBuilder(Gen3)
		rc := b.Root("rc")
		src := b.DeviceBW(rc, KindSSD, "src", 4*units.GBps)
		mid := b.DeviceBW(rc, KindPrepAccel, "mid", 4*units.GBps)
		dst := b.DeviceBW(rc, KindNNAccel, "dst", 4*units.GBps)
		return b.Build(), src, mid, dst
	}
	run := func(stagger bool) float64 {
		topo, src, mid, dst := build()
		eng := sim.NewEngine()
		net := NewNetwork(eng, topo)
		const chains, inFlight = 200, 8
		vol := units.Bytes(4e8) // 0.1 s solo per leg
		launched, finished := 0, 0
		var finish float64
		var launch func()
		launch = func() {
			for launched < chains && launched-finished < inFlight {
				c := launched
				launched++
				start := func() {
					net.Start(src, mid, vol, func() {
						net.Start(mid, dst, vol, func() {
							finished++
							finish = eng.Now()
							launch()
						})
					})
				}
				if stagger && c < inFlight {
					eng.At(float64(c)*0.05, start)
				} else {
					start()
				}
			}
		}
		launch()
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(chains) * float64(vol) / finish
	}
	convoy := run(false)
	staggered := run(true)
	// Both legs use disjoint 4 GB/s links; perfect pipelining reaches
	// ~4 GB/s, the convoy reaches ~2 GB/s.
	if staggered < 3.6e9 {
		t.Errorf("staggered rate = %v, want ≈4 GB/s", staggered)
	}
	if convoy > 2.4e9 {
		t.Errorf("convoy rate = %v, want ≈2 GB/s (the phase-lock)", convoy)
	}
}
