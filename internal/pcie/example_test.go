package pcie_test

import (
	"fmt"

	"trainbox/internal/pcie"
)

// ExampleTopology_RouteCrossesRoot shows the locality property TrainBox's
// clustering exploits: a transfer between devices under the same switch
// never reaches the root complex.
func ExampleTopology_RouteCrossesRoot() {
	b := pcie.NewBuilder(pcie.Gen3)
	rc := b.Root("rc")
	box := b.Switch(rc, "trainbox0")
	ssd := b.Device(box, pcie.KindSSD, "ssd")
	fpga := b.Device(box, pcie.KindPrepAccel, "fpga")
	other := b.Switch(rc, "trainbox1")
	accFar := b.Device(other, pcie.KindNNAccel, "acc-far")
	topo := b.Build()

	fmt.Println("in-box:", topo.RouteCrossesRoot(ssd, fpga))
	fmt.Println("cross-box:", topo.RouteCrossesRoot(ssd, accFar))
	// Output:
	// in-box: false
	// cross-box: true
}

// ExampleTopology_MaxMinFair allocates a shared uplink between two flows.
func ExampleTopology_MaxMinFair() {
	b := pcie.NewBuilder(pcie.Gen3)
	rc := b.Root("rc")
	sw := b.Switch(rc, "sw")
	src := b.Device(sw, pcie.KindSSD, "src")
	a := b.Device(rc, pcie.KindNNAccel, "a")
	c := b.Device(rc, pcie.KindNNAccel, "c")
	topo := b.Build()

	rates := topo.MaxMinFair([]pcie.Flow{
		{Src: src, Dst: a, Weight: 1},
		{Src: src, Dst: c, Weight: 1},
	})
	fmt.Println(rates.Rates[0], rates.Rates[1])
	// Output:
	// 8.00 GB/s 8.00 GB/s
}
