package workload

// TrendPoint is one year of the hardware-trend context data behind
// Figure 2a: normalized performance (throughput/power) of neural-network
// ASICs and accelerator interconnects, 2012–2019, on the paper's
// log-scale axis (2012 ASIC = 1).
type TrendPoint struct {
	Year         int
	ASIC         float64 // normalized throughput/power of NN accelerators
	Interconnect float64 // normalized accelerator-interconnect bandwidth
}

// HardwareTrends returns the Figure 2a context series. The paper cites
// DianNao-era ASICs through TPU-class accelerators ("more than 10,000×
// higher computation efficiency than the neural network accelerator in
// 2012") and PCIe-to-NVLink-class interconnect evolution. Values are the
// order-of-magnitude trajectory the figure plots, not device datasheets.
func HardwareTrends() []TrendPoint {
	return []TrendPoint{
		{Year: 2012, ASIC: 1, Interconnect: 1},
		{Year: 2013, ASIC: 8, Interconnect: 1},
		{Year: 2014, ASIC: 60, Interconnect: 2},
		{Year: 2015, ASIC: 300, Interconnect: 2},
		{Year: 2016, ASIC: 900, Interconnect: 5},
		{Year: 2017, ASIC: 3000, Interconnect: 9},
		{Year: 2018, ASIC: 8000, Interconnect: 19},
		{Year: 2019, ASIC: 15000, Interconnect: 19},
	}
}
