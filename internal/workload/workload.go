// Package workload defines the seven neural-network training workloads of
// the paper's Table I together with their per-sample data-preparation
// resource demands — the calibration constants that drive every
// experiment in the reproduction.
//
// # Calibration methodology
//
// The paper profiles a hardware prototype (Xeon host + Caffe/DALI, TPU
// v3-8 cloud measurements) and feeds the measured per-sample costs into a
// system-level simulator (Section VI-A). This reproduction does the same
// with two sources:
//
//   - Table I constants are copied verbatim (accelerator throughput,
//     batch size, model size).
//   - Per-sample CPU costs are calibrated so the baseline saturates at
//     the accelerator counts the paper reports (Figure 8: "after 18
//     neural network accelerators"; Figure 21: Inception-v4 at 18.3,
//     Transformer-SR at 4.4), and per-sample byte volumes follow the
//     dataset geometry (256×256 JPEG → 224×224 float32 CHW tensors;
//     6.96 s PCM → log-Mel features) plus the Figure 11 decomposition
//     shares (image data load ≈ 36.7% of memory traffic, audio ≈ 21.1%).
//
// The real Go kernels in internal/imgproc and internal/dsp exercise the
// same operations functionally; cmd/dataprep-prof measures their raw Go
// throughput, but the system model intentionally uses the calibrated
// constants above so results represent DALI-class optimized kernels, not
// Go's JPEG decoder.
package workload

import (
	"fmt"

	"trainbox/internal/hostres"
	"trainbox/internal/units"
)

// InputType distinguishes the two dataset families of Table I.
type InputType int

// Input types. Video is the paper's named future input form (Section
// V-C); it appears only in FutureWorkloads, never in the Table I set.
const (
	Image InputType = iota
	Audio
	Video
)

func (t InputType) String() string {
	switch t {
	case Image:
		return "image"
	case Audio:
		return "audio"
	case Video:
		return "video"
	}
	return fmt.Sprintf("input(%d)", int(t))
}

// PrepOp is one category of data-preparation work, matching the stacked
// components of Figures 11 and 22.
type PrepOp int

// Preparation operation categories.
const (
	OpSSDRead PrepOp = iota // reading the stored item from flash
	OpFormat                // decode/crop/cast or STFT/Mel ("data formatting")
	OpAugment               // mirror/noise or masking ("data augmentation")
	OpLoad                  // staging the prepared tensor to the accelerator
	OpOther                 // driver and framework overhead
	numPrepOps
)

func (op PrepOp) String() string {
	switch op {
	case OpSSDRead:
		return "ssd-read"
	case OpFormat:
		return "data-formatting"
	case OpAugment:
		return "data-augmentation"
	case OpLoad:
		return "data-load"
	case OpOther:
		return "others"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// PrepOps lists the categories in display order.
func PrepOps() []PrepOp {
	return []PrepOp{OpSSDRead, OpFormat, OpAugment, OpLoad, OpOther}
}

// PrepProfile is the per-sample data-preparation demand of a workload.
type PrepProfile struct {
	// StoredBytes is the on-SSD item size (compressed JPEG / PCM).
	StoredBytes units.Bytes
	// TensorBytes is the prepared sample delivered to the accelerator.
	TensorBytes units.Bytes
	// CPUSeconds decomposes host CPU core-seconds per sample by category.
	CPUSeconds [numPrepOps]float64
	// MemoryBytes decomposes host DRAM traffic per sample by category.
	MemoryBytes [numPrepOps]units.Bytes
}

// TotalCPUSeconds sums the per-category CPU demand.
func (p PrepProfile) TotalCPUSeconds() float64 {
	var s float64
	for _, v := range p.CPUSeconds {
		s += v
	}
	return s
}

// TotalMemoryBytes sums the per-category DRAM traffic.
func (p PrepProfile) TotalMemoryBytes() units.Bytes {
	var s units.Bytes
	for _, v := range p.MemoryBytes {
		s += v
	}
	return s
}

// HostDemand converts the profile into the hostres per-sample demand.
func (p PrepProfile) HostDemand() hostres.Demand {
	return hostres.Demand{CPUSeconds: p.TotalCPUSeconds(), MemoryBytes: p.TotalMemoryBytes()}
}

// Workload is one Table I row plus its preparation profile.
type Workload struct {
	Name string
	// Kind is the network family (CNN, RNN, Transformer) as in Table I.
	Kind string
	// Task is the application label from Table I.
	Task string
	Type InputType
	// BatchSize is the largest per-accelerator batch a TPU v3-8 runs.
	BatchSize int
	// ModelBytes is the parameter footprint synchronized each step.
	ModelBytes units.Bytes
	// AccelRate is the measured TPU v3-8 throughput (Table I).
	AccelRate units.SamplesPerSec
	// Prep is the per-sample preparation demand.
	Prep PrepProfile
	// BatchHalfSat is the batch size at which the accelerator reaches
	// half its peak rate; models the efficiency curve behind Figure 20
	// ("better efficiency of neural network accelerators ... with a
	// larger batch").
	BatchHalfSat float64
}

// Validate reports the first inconsistency in the workload definition.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if w.BatchSize <= 0 {
		return fmt.Errorf("workload %s: batch size %d", w.Name, w.BatchSize)
	}
	if w.ModelBytes <= 0 {
		return fmt.Errorf("workload %s: model bytes %v", w.Name, w.ModelBytes)
	}
	if w.AccelRate <= 0 {
		return fmt.Errorf("workload %s: accel rate %v", w.Name, w.AccelRate)
	}
	if w.Prep.StoredBytes <= 0 || w.Prep.TensorBytes <= 0 {
		return fmt.Errorf("workload %s: non-positive prep volumes", w.Name)
	}
	if w.Prep.TotalCPUSeconds() <= 0 {
		return fmt.Errorf("workload %s: no CPU demand", w.Name)
	}
	if w.BatchHalfSat <= 0 {
		return fmt.Errorf("workload %s: batch half-saturation %v", w.Name, w.BatchHalfSat)
	}
	return nil
}

// EffectiveAccelRate returns the accelerator throughput at the given
// batch size: peak · b/(b+halfSat), normalized so the Table I batch size
// delivers exactly the Table I rate.
func (w Workload) EffectiveAccelRate(batch int) units.SamplesPerSec {
	if batch <= 0 {
		return 0
	}
	b := float64(batch)
	tableB := float64(w.BatchSize)
	curve := b / (b + w.BatchHalfSat)
	atTable := tableB / (tableB + w.BatchHalfSat)
	return units.SamplesPerSec(float64(w.AccelRate) * curve / atTable)
}

// imageProfile builds the shared image preparation profile (Imagenet,
// 256×256 JPEG → crop/mirror/noise/cast) for a total per-sample CPU cost,
// with the tensor size parameterizing models with larger inputs
// (Inception-v4 uses 299×299).
//
// CPU shares: formatting 62%, augmentation 28%, load 7%, other 3% —
// formatting dominated by JPEG decode (Figure 11a). Memory traffic:
// stored item in+out of the ingest buffer, decode/augment passes, and a
// data-load share matching Figure 11a's ≈36.7%.
func imageProfile(cpuSeconds float64, tensorBytes units.Bytes) PrepProfile {
	const stored = 45 * units.KB // 256×256 JPEG at quality ≈85
	p := PrepProfile{StoredBytes: stored, TensorBytes: tensorBytes}
	p.CPUSeconds[OpFormat] = 0.62 * cpuSeconds
	p.CPUSeconds[OpAugment] = 0.28 * cpuSeconds
	p.CPUSeconds[OpLoad] = 0.07 * cpuSeconds
	p.CPUSeconds[OpOther] = 0.03 * cpuSeconds
	p.MemoryBytes[OpSSDRead] = 2 * stored     // DMA write + first read
	p.MemoryBytes[OpFormat] = 700 * units.KB  // decode write + crop/cast passes
	p.MemoryBytes[OpAugment] = 270 * units.KB // mirror + noise passes
	p.MemoryBytes[OpLoad] = tensorBytes       // DMA read to the accelerator
	p.MemoryBytes[OpOther] = 20 * units.KB    // descriptors, queues
	return p
}

// audioProfile builds the audio preparation profile (Librispeech-class,
// 6.96 s PCM → STFT → Mel → masking → normalize). CPU shares: formatting
// 72% (many small FFTs), augmentation 18%, load 6%, other 4%. Memory
// traffic is dominated by STFT intermediates ("amplified data size due
// to ... SFFT", Section III-C); the data-load share matches Figure 11b's
// ≈21.1%.
func audioProfile(cpuSeconds float64) PrepProfile {
	const stored = 223 * units.KB  // 6.96 s × 16 kHz × 2 B
	const tensor = 1250 * units.KB // spectrogram + feature stacking, float32
	p := PrepProfile{StoredBytes: stored, TensorBytes: tensor}
	p.CPUSeconds[OpFormat] = 0.72 * cpuSeconds
	p.CPUSeconds[OpAugment] = 0.18 * cpuSeconds
	p.CPUSeconds[OpLoad] = 0.06 * cpuSeconds
	p.CPUSeconds[OpOther] = 0.04 * cpuSeconds
	p.MemoryBytes[OpSSDRead] = 2 * stored
	p.MemoryBytes[OpFormat] = 3700 * units.KB // complex STFT + filterbank passes
	p.MemoryBytes[OpAugment] = 460 * units.KB
	p.MemoryBytes[OpLoad] = tensor
	p.MemoryBytes[OpOther] = 180 * units.KB
	return p
}

// Tensor sizes: float32 CHW for the two input geometries.
const (
	tensor224 = units.Bytes(3 * 224 * 224 * 4) // 602,112 B
	tensor299 = units.Bytes(3 * 299 * 299 * 4) // 1,072,812 B
)

// Workloads returns the seven Table I workloads in table order.
//
// Per-sample CPU seconds are calibrated to the baseline saturation points
// (see package comment): VGG-19 1.425 ms, ResNet-50 0.788 ms,
// Inception-v4 1.571 ms, RNN-S 0.868 ms, RNN-L 1.232 ms, TF-SR 5.45 ms,
// TF-AA 5.93 ms. Audio preparation costs several times more CPU than
// image preparation, matching the paper's observation that "the audio
// preparation requires much higher computation capability than images".
func Workloads() []Workload {
	return []Workload{
		{
			Name: "VGG-19", Kind: "CNN", Task: "Image classification", Type: Image,
			BatchSize: 2048, ModelBytes: units.Bytes(548.0 * 1e6), AccelRate: 3062,
			Prep: imageProfile(1.425e-3, tensor224), BatchHalfSat: 96,
		},
		{
			Name: "Resnet-50", Kind: "CNN", Task: "Image classification", Type: Image,
			BatchSize: 8192, ModelBytes: units.Bytes(97.5 * 1e6), AccelRate: 7431,
			Prep: imageProfile(7.88e-4, tensor224), BatchHalfSat: 256,
		},
		{
			Name: "Inception-v4", Kind: "CNN", Task: "Image classification", Type: Image,
			BatchSize: 2048, ModelBytes: units.Bytes(162.7 * 1e6), AccelRate: 1669,
			Prep: imageProfile(1.571e-3, tensor299), BatchHalfSat: 96,
		},
		{
			Name: "RNN-S", Kind: "RNN", Task: "Image captioning", Type: Image,
			BatchSize: 4096, ModelBytes: units.Bytes(1.0 * 1e6), AccelRate: 12022,
			Prep: imageProfile(8.68e-4, tensor224), BatchHalfSat: 128,
		},
		{
			Name: "RNN-L", Kind: "RNN", Task: "Image captioning", Type: Image,
			BatchSize: 2048, ModelBytes: units.Bytes(16.0 * 1e6), AccelRate: 6495,
			Prep: imageProfile(1.232e-3, tensor224), BatchHalfSat: 96,
		},
		{
			Name: "TF-SR", Kind: "Transformer", Task: "Speech recognition", Type: Audio,
			BatchSize: 512, ModelBytes: units.Bytes(268.3 * 1e6), AccelRate: 2001,
			Prep: audioProfile(5.45e-3), BatchHalfSat: 48,
		},
		{
			Name: "TF-AA", Kind: "Transformer", Task: "Audio analysis", Type: Audio,
			BatchSize: 512, ModelBytes: units.Bytes(162.5 * 1e6), AccelRate: 2889,
			Prep: audioProfile(5.93e-3), BatchHalfSat: 48,
		},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// TargetAccelerators is the paper's scale target: 256 TPU v3-8-class
// accelerators (Section III-B, following [16]).
const TargetAccelerators = 256
