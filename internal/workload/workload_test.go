package workload

import (
	"math"
	"testing"

	"trainbox/internal/units"
)

func TestWorkloadsMatchTableI(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("workload count = %d, want 7", len(ws))
	}
	// Table I verbatim: name, batch, model MB, throughput.
	want := []struct {
		name  string
		batch int
		mb    float64
		rate  float64
		typ   InputType
	}{
		{"VGG-19", 2048, 548.0, 3062, Image},
		{"Resnet-50", 8192, 97.5, 7431, Image},
		{"Inception-v4", 2048, 162.7, 1669, Image},
		{"RNN-S", 4096, 1.0, 12022, Image},
		{"RNN-L", 2048, 16.0, 6495, Image},
		{"TF-SR", 512, 268.3, 2001, Audio},
		{"TF-AA", 512, 162.5, 2889, Audio},
	}
	for i, w := range ws {
		e := want[i]
		if w.Name != e.name || w.BatchSize != e.batch || w.Type != e.typ {
			t.Errorf("row %d = %s/%d/%v, want %s/%d/%v", i, w.Name, w.BatchSize, w.Type, e.name, e.batch, e.typ)
		}
		if math.Abs(float64(w.ModelBytes)-e.mb*1e6) > 1 {
			t.Errorf("%s model bytes = %v, want %v MB", w.Name, w.ModelBytes, e.mb)
		}
		if float64(w.AccelRate) != e.rate {
			t.Errorf("%s rate = %v, want %v", w.Name, w.AccelRate, e.rate)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Resnet-50")
	if err != nil || w.Name != "Resnet-50" {
		t.Errorf("ByName: %v %v", w.Name, err)
	}
	if _, err := ByName("GPT-7"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBaselineSaturationAnchors(t *testing.T) {
	// The calibrated CPU costs must reproduce the paper's saturation
	// points: Inception-v4 at ≈18.3 accelerators, TF-SR at ≈4.4
	// (Figure 21), everything within Figure 8's "after 18" bound.
	const cores = 48.0
	sat := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return cores / (float64(w.AccelRate) * w.Prep.TotalCPUSeconds())
	}
	if got := sat("Inception-v4"); math.Abs(got-18.3) > 0.5 {
		t.Errorf("Inception-v4 saturation = %.1f accels, want ≈18.3", got)
	}
	if got := sat("TF-SR"); math.Abs(got-4.4) > 0.3 {
		t.Errorf("TF-SR saturation = %.1f accels, want ≈4.4", got)
	}
	for _, w := range Workloads() {
		if got := sat(w.Name); got > 19 {
			t.Errorf("%s saturates at %.1f accels, above Figure 8's ≈18 bound", w.Name, got)
		}
	}
}

func TestAudioPrepCostsMoreCPUThanImage(t *testing.T) {
	// Section VI-D: "the audio preparation requires much higher
	// computation capability than images".
	var maxImage, minAudio float64 = 0, math.Inf(1)
	for _, w := range Workloads() {
		c := w.Prep.TotalCPUSeconds()
		if w.Type == Image && c > maxImage {
			maxImage = c
		}
		if w.Type == Audio && c < minAudio {
			minAudio = c
		}
	}
	if minAudio < 2*maxImage {
		t.Errorf("audio prep %.2g s should far exceed image prep %.2g s", minAudio, maxImage)
	}
}

func TestMemoryDecompositionSharesMatchFigure11(t *testing.T) {
	// Figure 11: data load ≈36.7% (image) and ≈21.1% (audio) of memory
	// traffic; formatting+augmentation ≈59.2% / 71.9%.
	img, _ := ByName("Resnet-50")
	aud, _ := ByName("TF-SR")
	share := func(p PrepProfile, ops ...PrepOp) float64 {
		var s units.Bytes
		for _, op := range ops {
			s += p.MemoryBytes[op]
		}
		return float64(s) / float64(p.TotalMemoryBytes())
	}
	if got := share(img.Prep, OpLoad); math.Abs(got-0.367) > 0.05 {
		t.Errorf("image data-load memory share = %.3f, want ≈0.367", got)
	}
	if got := share(img.Prep, OpFormat, OpAugment); math.Abs(got-0.592) > 0.05 {
		t.Errorf("image fmt+aug memory share = %.3f, want ≈0.592", got)
	}
	if got := share(aud.Prep, OpLoad); math.Abs(got-0.211) > 0.04 {
		t.Errorf("audio data-load memory share = %.3f, want ≈0.211", got)
	}
	if got := share(aud.Prep, OpFormat, OpAugment); math.Abs(got-0.719) > 0.05 {
		t.Errorf("audio fmt+aug memory share = %.3f, want ≈0.719", got)
	}
}

func TestTensorSizesMatchDatasetGeometry(t *testing.T) {
	res, _ := ByName("Resnet-50")
	if res.Prep.TensorBytes != 602112 {
		t.Errorf("ResNet tensor = %v, want 602112 (224×224×3×4)", res.Prep.TensorBytes)
	}
	inc, _ := ByName("Inception-v4")
	if inc.Prep.TensorBytes != 1072812 {
		t.Errorf("Inception tensor = %v, want 1072812 (299×299×3×4)", inc.Prep.TensorBytes)
	}
	if res.Prep.StoredBytes >= res.Prep.TensorBytes {
		t.Error("stored JPEG should be smaller than the decoded tensor")
	}
}

func TestEffectiveAccelRate(t *testing.T) {
	w, _ := ByName("Resnet-50")
	// At the Table I batch, exactly the Table I rate.
	if got := w.EffectiveAccelRate(w.BatchSize); math.Abs(float64(got-w.AccelRate)) > 1e-9 {
		t.Errorf("rate at table batch = %v, want %v", got, w.AccelRate)
	}
	// Monotone in batch size.
	prev := units.SamplesPerSec(0)
	for _, b := range []int{8, 32, 128, 512, 2048, 8192} {
		r := w.EffectiveAccelRate(b)
		if r <= prev {
			t.Errorf("rate not increasing at batch %d: %v ≤ %v", b, r, prev)
		}
		prev = r
	}
	// Tiny batches run far below peak.
	if r := w.EffectiveAccelRate(8); float64(r) > 0.2*float64(w.AccelRate) {
		t.Errorf("batch-8 rate = %v, should be far below peak %v", r, w.AccelRate)
	}
	if w.EffectiveAccelRate(0) != 0 {
		t.Error("zero batch should give zero rate")
	}
}

func TestPrepProfileTotals(t *testing.T) {
	w, _ := ByName("VGG-19")
	p := w.Prep
	var cpu float64
	var mem units.Bytes
	for _, op := range PrepOps() {
		cpu += p.CPUSeconds[op]
		mem += p.MemoryBytes[op]
	}
	if math.Abs(cpu-p.TotalCPUSeconds()) > 1e-12 {
		t.Error("CPU total mismatch")
	}
	if math.Abs(float64(mem-p.TotalMemoryBytes())) > 1e-6 {
		t.Error("memory total mismatch")
	}
	d := p.HostDemand()
	if d.CPUSeconds != p.TotalCPUSeconds() || d.MemoryBytes != p.TotalMemoryBytes() {
		t.Error("HostDemand mismatch")
	}
}

func TestValidateCatchesBrokenWorkloads(t *testing.T) {
	good, _ := ByName("RNN-S")
	cases := []func(*Workload){
		func(w *Workload) { w.Name = "" },
		func(w *Workload) { w.BatchSize = 0 },
		func(w *Workload) { w.ModelBytes = 0 },
		func(w *Workload) { w.AccelRate = 0 },
		func(w *Workload) { w.Prep.StoredBytes = 0 },
		func(w *Workload) { w.Prep.CPUSeconds = [numPrepOps]float64{} },
		func(w *Workload) { w.BatchHalfSat = 0 },
	}
	for i, mutate := range cases {
		w := good
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPrepOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, op := range PrepOps() {
		s := op.String()
		if s == "" || seen[s] {
			t.Errorf("op %d has empty/duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if len(PrepOps()) != int(numPrepOps) {
		t.Error("PrepOps misses categories")
	}
}

func TestHardwareTrendsShape(t *testing.T) {
	tr := HardwareTrends()
	if len(tr) != 8 || tr[0].Year != 2012 || tr[len(tr)-1].Year != 2019 {
		t.Fatalf("trend span wrong: %+v", tr)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].ASIC < tr[i-1].ASIC || tr[i].Interconnect < tr[i-1].Interconnect {
			t.Errorf("trend not monotone at %d", tr[i].Year)
		}
		if tr[i].Year != tr[i-1].Year+1 {
			t.Errorf("missing year before %d", tr[i].Year)
		}
	}
	last := tr[len(tr)-1]
	if last.ASIC < 1e4 {
		t.Errorf("2019 ASIC trend = %v, paper reports >10,000×", last.ASIC)
	}
}

func TestTargetScale(t *testing.T) {
	if TargetAccelerators != 256 {
		t.Errorf("target = %d, want 256", TargetAccelerators)
	}
}
