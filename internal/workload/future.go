package workload

import "trainbox/internal/units"

// FutureWorkloads returns the forward-looking workloads the paper argues
// will widen the preparation gap ("the problem will become worse for the
// next generation of neural network accelerators ... and emerging
// complex data preparation algorithms", Section I). They are projections
// — clearly separated from the Table I measurements — used by the
// future-work experiment.
func FutureWorkloads() []Workload {
	return []Workload{
		videoWorkload(),
		nextGenResNet(),
	}
}

// videoWorkload is a 3D-CNN action-recognition projection: 16-frame
// clips at 224×224. One clip decodes ≈16 JPEG frames, so per-sample
// preparation costs ≈16× the image pipeline while the accelerator
// consumes clips much slower than images — the preparation:compute
// ratio the paper warns about.
func videoWorkload() Workload {
	// Stored: 16 frames × ~45 KB MJPEG. Tensor: 16 × 224×224×3 × 4 B.
	const stored = 16 * 45 * units.KB
	const tensor = 16 * units.Bytes(3*224*224*4)
	cpu := 16 * 7.88e-4 // 16 image-pipeline decodes per clip
	p := PrepProfile{StoredBytes: stored, TensorBytes: tensor}
	p.CPUSeconds[OpFormat] = 0.62 * cpu
	p.CPUSeconds[OpAugment] = 0.28 * cpu
	p.CPUSeconds[OpLoad] = 0.07 * cpu
	p.CPUSeconds[OpOther] = 0.03 * cpu
	p.MemoryBytes[OpSSDRead] = 2 * stored
	p.MemoryBytes[OpFormat] = 16 * 700 * units.KB
	p.MemoryBytes[OpAugment] = 16 * 270 * units.KB
	p.MemoryBytes[OpLoad] = tensor
	p.MemoryBytes[OpOther] = 40 * units.KB
	return Workload{
		Name: "Video-AR", Kind: "3D-CNN", Task: "Action recognition", Type: Video,
		BatchSize: 256, ModelBytes: units.Bytes(120 * 1e6), AccelRate: 420,
		Prep: p, BatchHalfSat: 24,
	}
}

// nextGenResNet projects ResNet-50 onto a 4× faster accelerator
// generation (the Figure 2a trajectory): identical preparation demand,
// quadrupled consumption rate.
func nextGenResNet() Workload {
	base, err := ByName("Resnet-50")
	if err != nil {
		panic(err) // Table I is a compile-time constant set
	}
	base.Name = "Resnet-50 (next-gen accel)"
	base.AccelRate *= 4
	return base
}
