package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"trainbox/internal/metrics"
)

func TestErrorRateIsDeterministicAndCalibrated(t *testing.T) {
	a := NewErrorRate(42, 0.2, nil)
	b := NewErrorRate(42, 0.2, nil)
	injected := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op := Op{Name: "storage.read", Key: fmt.Sprintf("k-%d", i)}
		fa, fb := a.Inject(op), b.Inject(op)
		if (fa.Err == nil) != (fb.Err == nil) {
			t.Fatalf("two injectors with the same seed disagree on %v", op)
		}
		if fa.Err != nil {
			injected++
		}
	}
	got := float64(injected) / n
	if got < 0.17 || got > 0.23 {
		t.Errorf("injected fraction = %.3f, want ≈0.2", got)
	}
	// A different attempt index is a fresh draw: over many keys the
	// attempt-1 outcome must not simply copy attempt 0.
	same := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k-%d", i)
		f0 := a.Inject(Op{Name: "r", Key: key, Attempt: 0})
		f1 := a.Inject(Op{Name: "r", Key: key, Attempt: 1})
		if (f0.Err == nil) == (f1.Err == nil) {
			same++
		}
	}
	if same == 1000 {
		t.Error("attempt index does not vary the draw — retries would be futile")
	}
}

func TestErrorRateBounds(t *testing.T) {
	always := NewErrorRate(1, 2.0, nil) // clamped to 1
	never := NewErrorRate(1, -1, nil)   // clamped to 0
	for i := 0; i < 100; i++ {
		op := Op{Name: "x", Key: fmt.Sprintf("%d", i)}
		if always.Inject(op).Err == nil {
			t.Fatal("rate 1 skipped an injection")
		}
		if never.Inject(op).Err != nil {
			t.Fatal("rate 0 injected")
		}
	}
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	f := NewErrorRate(7, 1, nil).Inject(Op{Name: "r", Key: "k"})
	if !IsTransient(f.Err) {
		t.Errorf("default injected error not transient: %v", f.Err)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Errorf("default injected error does not wrap ErrInjected: %v", f.Err)
	}
	wrapped := fmt.Errorf("storage: read %q: %w", "k", f.Err)
	if !IsTransient(wrapped) {
		t.Error("transience lost through fmt.Errorf wrapping")
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		err         error
		transient   bool
		deviceFault bool
	}{
		{nil, false, false},
		{errors.New("plain"), false, false},
		{Transient(errors.New("flaky")), true, true},
		{ErrDeviceDead, false, true},
		{fmt.Errorf("fpga: %w", ErrDeviceDead), false, true},
		{context.DeadlineExceeded, true, true},
		{context.Canceled, false, false},
		{fmt.Errorf("op: %w", context.Canceled), false, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
		if got := IsDeviceFault(c.err); got != c.deviceFault {
			t.Errorf("IsDeviceFault(%v) = %v, want %v", c.err, got, c.deviceFault)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) should be nil")
	}
}

func TestLatencyInjectsDelay(t *testing.T) {
	inj := NewLatency(3, 1, 5*time.Millisecond)
	f := inj.Inject(Op{Name: "r", Key: "k"})
	if f.Delay != 5*time.Millisecond || f.Err != nil {
		t.Fatalf("latency fault = %+v", f)
	}
	start := time.Now()
	if err := Apply(context.Background(), inj, Op{Name: "r", Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("Apply slept %v, want ≥5ms", elapsed)
	}
}

func TestApplyHonoursCancellationDuringDelay(t *testing.T) {
	inj := NewLatency(3, 1, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Apply(ctx, inj, Op{Name: "r", Key: "k"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Apply did not unblock at the deadline")
	}
}

func TestStallBlocksUntilDeadline(t *testing.T) {
	inj := NewStall(9, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Apply(ctx, inj, Op{Name: "r", Key: "k"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("stalled op: err = %v, want DeadlineExceeded", err)
	}
	// The deadline error is transient: a retry layer re-attempts it.
	if !IsTransient(err) {
		t.Error("stall rescue error must be transient")
	}
}

func TestApplyNilInjectorIsFree(t *testing.T) {
	if err := Apply(context.Background(), nil, Op{}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceDeathLifecycle(t *testing.T) {
	d := NewDeviceDeath(3)
	op := Op{Name: "fpga.p2p.read", Key: "k"}
	for i := 0; i < 3; i++ {
		if f := d.Inject(op); f.Err != nil {
			t.Fatalf("op %d failed before budget exhausted: %v", i, f.Err)
		}
	}
	if !d.Dead() {
		t.Error("device should be dead after its budget")
	}
	for i := 0; i < 5; i++ {
		if f := d.Inject(op); !errors.Is(f.Err, ErrDeviceDead) {
			t.Fatalf("dead device served op %d: %v", i, f.Err)
		}
	}
	d.Revive(2)
	if d.Dead() {
		t.Error("revived device reported dead")
	}
	if f := d.Inject(op); f.Err != nil {
		t.Errorf("revived device failed: %v", f.Err)
	}
}

func TestChainComposition(t *testing.T) {
	boom := errors.New("boom")
	c := Chain(
		NewLatency(1, 1, 2*time.Millisecond),
		nil, // nils are dropped
		NewLatency(2, 1, 3*time.Millisecond),
		NewErrorRate(3, 1, Transient(boom)),
		NewErrorRate(4, 1, errors.New("second error, never seen")),
	)
	f := c.Inject(Op{Name: "r", Key: "k"})
	if f.Delay != 5*time.Millisecond {
		t.Errorf("chained delay = %v, want 5ms", f.Delay)
	}
	if !errors.Is(f.Err, boom) {
		t.Errorf("chain err = %v, want first error", f.Err)
	}
	if Chain().Inject(Op{}) != (Fault{}) {
		t.Error("empty chain injected")
	}
}

func TestMeteredCountsInjections(t *testing.T) {
	reg := metrics.NewRegistry()
	inj := Metered(Chain(
		NewErrorRate(5, 1, nil),
		NewLatency(6, 1, time.Millisecond),
	), reg)
	for i := 0; i < 4; i++ {
		inj.Inject(Op{Name: "r", Key: fmt.Sprintf("%d", i)})
	}
	snap := reg.Snapshot()
	if got := snap.Counters["faults.injector.errors"]; got != 4 {
		t.Errorf("injected_errors = %d, want 4", got)
	}
	if got := snap.Counters["faults.injector.delays"]; got != 4 {
		t.Errorf("injected_delays = %d, want 4", got)
	}
	if got := snap.Counters["faults.injector.delay_ns"]; got != 4*int64(time.Millisecond) {
		t.Errorf("injected_delay_ns = %d", got)
	}
	if Metered(nil, reg) != nil {
		t.Error("Metered(nil) should stay nil for the zero-cost path")
	}
}
