package faults

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      0.5,
		Seed:        11,
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	st, err := fastPolicy().Do(context.Background(), "op", "k", func(_ context.Context, attempt int) error {
		if attempt != calls {
			t.Errorf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != 3 || calls != 3 {
		t.Errorf("attempts = %d (%d calls), want 3", st.Attempts, calls)
	}
	if st.Backoff <= 0 {
		t.Error("no backoff recorded across retries")
	}
}

func TestRetryPermanentErrorAbortsImmediately(t *testing.T) {
	boom := errors.New("permanent")
	calls := 0
	st, err := fastPolicy().Do(context.Background(), "op", "k", func(context.Context, int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 || st.Attempts != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	last := Transient(errors.New("still flaky"))
	calls := 0
	st, err := fastPolicy().Do(context.Background(), "op", "k", func(context.Context, int) error {
		calls++
		return last
	})
	if !errors.Is(err, last) {
		t.Fatalf("err = %v, want last attempt's error", err)
	}
	if calls != 5 || st.Attempts != 5 {
		t.Errorf("calls = %d, want MaxAttempts=5", calls)
	}
}

func TestRetryDisabledPolicyRunsOnce(t *testing.T) {
	var p RetryPolicy // zero value: disabled
	if p.Enabled() {
		t.Error("zero policy reports enabled")
	}
	calls := 0
	_, err := p.Do(context.Background(), "op", "k", func(context.Context, int) error {
		calls++
		return Transient(errors.New("flaky"))
	})
	if err == nil || calls != 1 {
		t.Errorf("zero policy: %d calls, err=%v", calls, err)
	}
}

func TestRetryCancelledContextStopsPromptly(t *testing.T) {
	p := fastPolicy()
	p.BaseBackoff = time.Hour // cancellation must interrupt the backoff
	p.MaxBackoff = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	opErr := Transient(errors.New("flaky"))
	start := time.Now()
	_, err := p.Do(ctx, "op", "k", func(context.Context, int) error {
		cancel()
		return opErr
	})
	// The operation's own error is surfaced, not the bare context error.
	if !errors.Is(err, opErr) {
		t.Errorf("err = %v, want the operation error", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancelled retry loop kept backing off")
	}
	// Already-cancelled context: fn must not run at all.
	calls := 0
	_, err = p.Do(ctx, "op", "k", func(context.Context, int) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Do ran fn %d times, err=%v", calls, err)
	}
}

// TestRetryInterruptedBackoffAccounting: a cancellation that interrupts
// an hour-scale backoff must book only the time actually slept, not the
// nominal wait — RetryStats.Backoff feeds latency metrics and an
// hour-sized lie would drown them.
func TestRetryInterruptedBackoffAccounting(t *testing.T) {
	p := fastPolicy()
	p.BaseBackoff = time.Hour
	p.MaxBackoff = time.Hour
	p.Jitter = 0
	ctx, cancel := context.WithCancel(context.Background())
	opErr := Transient(errors.New("flaky"))
	go func() {
		time.Sleep(10 * time.Millisecond) // land inside the backoff sleep
		cancel()
	}()
	start := time.Now()
	st, err := p.Do(ctx, "op", "k", func(context.Context, int) error { return opErr })
	elapsed := time.Since(start)
	if !errors.Is(err, opErr) {
		t.Fatalf("err = %v, want the operation error", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("interrupted backoff took %v, cancellation did not abort promptly", elapsed)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", st.Attempts)
	}
	// The booked backoff must reflect the interrupted sleep, bounded by
	// wall clock — nowhere near the nominal hour.
	if st.Backoff <= 0 || st.Backoff > elapsed {
		t.Errorf("booked backoff %v outside (0, %v]: nominal wait leaked into stats", st.Backoff, elapsed)
	}
}

func TestRetryAttemptTimeoutRescuesStalls(t *testing.T) {
	p := fastPolicy()
	p.AttemptTimeout = 5 * time.Millisecond
	var stalled atomic.Bool
	st, err := p.Do(context.Background(), "op", "k", func(ctx context.Context, attempt int) error {
		if attempt == 0 {
			stalled.Store(true)
			<-ctx.Done() // simulated hang, rescued by the attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stalled.Load() || st.Attempts != 2 {
		t.Errorf("stall not rescued: attempts=%d", st.Attempts)
	}
}

func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	p := fastPolicy()
	run := func() time.Duration {
		st, _ := p.Do(context.Background(), "op", "k", func(context.Context, int) error {
			return Transient(errors.New("flaky"))
		})
		return st.Backoff
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("jittered backoff not deterministic: %v vs %v", first, second)
	}
	// 4 backoffs of at most MaxBackoff·(1+Jitter/2).
	max := time.Duration(float64(p.MaxBackoff) * (1 + p.Jitter/2) * 4)
	if first <= 0 || first > max {
		t.Errorf("total backoff %v outside (0, %v]", first, max)
	}
	// Per-attempt waits grow until the cap.
	b0, b1 := p.backoff(0, "op", "k"), p.backoff(1, "op", "k")
	if b0 <= 0 || b1 <= 0 {
		t.Fatalf("backoffs %v %v", b0, b1)
	}
	if p.backoff(40, "op", "k") > time.Duration(float64(p.MaxBackoff)*(1+p.Jitter/2)) {
		t.Error("deep attempt escaped the backoff cap")
	}
}
