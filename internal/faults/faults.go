// Package faults is the reproduction's deterministic fault-injection
// layer. At TrainBox scale — 256 accelerators fed by racks of SSDs,
// FPGAs, and pooled preparation devices — slow reads, transient I/O
// errors, and dead devices are the steady state, not the exception, so
// every layer of the data path carries an optional Injector hook and a
// bounded-retry policy (see RetryPolicy) that together turn injected
// storms into survivable noise.
//
// Design rules:
//
//   - Deterministic. Every probabilistic injector draws from a hash of
//     (seed, op name, key, attempt): the same configuration replays the
//     same fault schedule on every run, which is what lets chaos tests
//     assert bit-identical results against a fault-free oracle. Retrying
//     callers increment Op.Attempt so each retry is a fresh draw.
//   - Zero cost when disabled. A nil Injector short-circuits before any
//     allocation or hash, and components keep their fault-free fast path
//     when neither an injector nor a retry policy is configured.
//   - Composable. Injectors are tiny values combined with Chain; the
//     Metered wrapper adds registry telemetry without touching the
//     injectors themselves.
//
// Error classification is part of the contract: injected errors are
// marked transient (see Transient and IsTransient) so retry layers know
// to re-attempt them, while ErrDeviceDead is permanent for the device —
// pools eject the device and re-dispatch the sample elsewhere
// (IsDeviceFault) instead of retrying in place.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"trainbox/internal/metrics"
)

// Op identifies one attempted operation to an injector. Injectors hash
// it (with their own seed) to make deterministic per-attempt decisions.
type Op struct {
	// Name is the operation class, e.g. "storage.read" or "fpga.p2p.read".
	Name string
	// Key is the item identity, e.g. the object key being read.
	Key string
	// Attempt is the 0-based attempt number; retrying callers increment
	// it so every retry draws a fresh decision.
	Attempt int
}

// Fault is one injection decision. The zero value means "no fault".
type Fault struct {
	// Delay is added latency before the operation proceeds (or before
	// Err is returned) — a latency spike.
	Delay time.Duration
	// Stall blocks the operation until its context is cancelled or times
	// out — a simulated hang that only a per-attempt deadline rescues.
	Stall bool
	// Err, when non-nil, is returned instead of running the operation.
	Err error
}

// Injector decides, per operation attempt, whether to inject a fault.
// Implementations must be safe for concurrent use.
type Injector interface {
	Inject(op Op) Fault
}

// Apply runs the injector's decision for op against ctx: it sleeps the
// injected delay (honouring cancellation), blocks on an injected stall
// until ctx ends, and returns the injected error, if any. A nil
// injector costs one pointer comparison.
func Apply(ctx context.Context, inj Injector, op Op) error {
	if inj == nil {
		return nil
	}
	f := inj.Inject(op)
	if f.Stall {
		<-ctx.Done()
		return ctx.Err()
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return f.Err
}

// unit maps (seed, salt, op) to a uniform draw in [0, 1). It is the
// deterministic randomness source behind every probabilistic injector
// and the retry jitter: identical inputs produce the identical draw on
// any platform.
func unit(seed int64, salt string, op Op) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", seed, salt, op.Name, op.Key, op.Attempt)
	// FNV-1a diffuses trailing-byte changes (like the attempt index)
	// poorly into the high bits; a splitmix64 finalizer restores full
	// avalanche while staying deterministic across platforms.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// errorRate injects err on a deterministic rate fraction of attempts.
type errorRate struct {
	seed int64
	rate float64
	err  error
}

// NewErrorRate returns an injector that fails a deterministic rate
// fraction of operation attempts with err. A nil err selects a
// transient ErrInjected — the usual "flaky device" configuration, which
// retry layers recover from. rate is clamped to [0, 1].
func NewErrorRate(seed int64, rate float64, err error) Injector {
	if err == nil {
		err = Transient(ErrInjected)
	}
	return &errorRate{seed: seed, rate: clamp01(rate), err: err}
}

func (e *errorRate) Inject(op Op) Fault {
	if unit(e.seed, "err", op) < e.rate {
		return Fault{Err: e.err}
	}
	return Fault{}
}

// latency injects a fixed delay on a rate fraction of attempts.
type latency struct {
	seed  int64
	rate  float64
	delay time.Duration
}

// NewLatency returns an injector that delays a deterministic rate
// fraction of operation attempts by delay — a latency-spike model (a
// slow SSD read, a congested pool link). The operation still succeeds.
func NewLatency(seed int64, rate float64, delay time.Duration) Injector {
	return &latency{seed: seed, rate: clamp01(rate), delay: delay}
}

func (l *latency) Inject(op Op) Fault {
	if unit(l.seed, "lat", op) < l.rate {
		return Fault{Delay: l.delay}
	}
	return Fault{}
}

// stall hangs a rate fraction of attempts until their context ends.
type stall struct {
	seed int64
	rate float64
}

// NewStall returns an injector that hangs a deterministic rate fraction
// of operation attempts until the operation's context is cancelled or
// its deadline passes — the "device stopped answering" failure that
// only per-attempt deadlines (RetryPolicy.AttemptTimeout or a stage
// timeout) turn into a retryable error instead of a wedged pipeline.
func NewStall(seed int64, rate float64) Injector {
	return &stall{seed: seed, rate: clamp01(rate)}
}

func (s *stall) Inject(op Op) Fault {
	if unit(s.seed, "stall", op) < s.rate {
		return Fault{Stall: true}
	}
	return Fault{}
}

// DeviceDeath is a device-lifecycle injector: it lets a budget of
// operations through, then fails every subsequent operation with the
// permanent ErrDeviceDead — the "pooled FPGA died mid-run" scenario.
// Revive restores a fresh budget, modelling a device coming back (what
// a pool's probation re-admission then discovers).
type DeviceDeath struct {
	budget atomic.Int64
}

// NewDeviceDeath returns a device that serves aliveOps operations and
// then dies. aliveOps ≤ 0 means dead on arrival.
func NewDeviceDeath(aliveOps int64) *DeviceDeath {
	d := &DeviceDeath{}
	d.budget.Store(aliveOps)
	return d
}

// Inject implements Injector.
func (d *DeviceDeath) Inject(Op) Fault {
	if d.budget.Add(-1) < 0 {
		return Fault{Err: ErrDeviceDead}
	}
	return Fault{}
}

// Dead reports whether the operation budget is exhausted.
func (d *DeviceDeath) Dead() bool { return d.budget.Load() <= 0 }

// Revive restores the device with a fresh operation budget.
func (d *DeviceDeath) Revive(aliveOps int64) { d.budget.Store(aliveOps) }

// chain composes injectors: delays and stalls accumulate, the first
// injected error wins.
type chain []Injector

// Chain composes injectors into one: per attempt it consults each in
// order, summing delays, OR-ing stalls, and returning the first
// non-nil error. A chain of zero injectors never injects.
func Chain(injs ...Injector) Injector {
	out := make(chain, 0, len(injs))
	for _, inj := range injs {
		if inj != nil {
			out = append(out, inj)
		}
	}
	return out
}

func (c chain) Inject(op Op) Fault {
	var f Fault
	for _, inj := range c {
		sub := inj.Inject(op)
		f.Delay += sub.Delay
		f.Stall = f.Stall || sub.Stall
		if f.Err == nil {
			f.Err = sub.Err
		}
	}
	return f
}

// metered wraps an injector with registry telemetry.
type metered struct {
	inj     Injector
	mErrs   *metrics.Counter
	mDelays *metrics.Counter
	mStalls *metrics.Counter
	mNs     *metrics.Counter
}

// Metered wraps inj so every injected fault is counted in the registry:
// "faults.injector.errors", "faults.injector.delays",
// "faults.injector.stalls", and cumulative injected latency under
// "faults.injector.delay_ns". A nil inj returns nil (still zero-cost).
func Metered(inj Injector, reg *metrics.Registry) Injector {
	if inj == nil {
		return nil
	}
	return &metered{
		inj:     inj,
		mErrs:   reg.Counter("faults.injector.errors"),
		mDelays: reg.Counter("faults.injector.delays"),
		mStalls: reg.Counter("faults.injector.stalls"),
		mNs:     reg.Counter("faults.injector.delay_ns"),
	}
}

func (m *metered) Inject(op Op) Fault {
	f := m.inj.Inject(op)
	if f.Err != nil {
		m.mErrs.Inc()
	}
	if f.Delay > 0 {
		m.mDelays.Inc()
		m.mNs.Add(int64(f.Delay))
	}
	if f.Stall {
		m.mStalls.Inc()
	}
	return f
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// ErrInjected is the base error of injected transient faults.
var ErrInjected = errors.New("faults: injected fault")

// ErrDeviceDead is the permanent "device stopped serving" error: the
// device is not coming back on a retry, so pools eject it and serve the
// sample elsewhere instead of retrying in place.
var ErrDeviceDead = errors.New("faults: device dead")

// transientError marks an error as transient through the unwrap chain.
type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// Transient wraps err so IsTransient reports true for it (and anything
// that wraps it). A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is worth retrying in place: it was
// marked Transient somewhere in its chain, or it is a deadline
// expiry (a per-attempt timeout firing — the stall rescue path).
// Cancellation is never transient: a cancelled parent context must
// stop the whole operation.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// IsDeviceFault reports whether err is attributable to the serving
// device rather than to the data: transient faults and device deaths
// count against the device's health and make the sample re-dispatchable
// elsewhere; data errors (a missing key, a corrupt payload) do not —
// they fail identically on every device.
func IsDeviceFault(err error) bool {
	return err != nil && (IsTransient(err) || errors.Is(err, ErrDeviceDead))
}
