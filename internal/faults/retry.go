package faults

import (
	"context"
	"time"
)

// RetryPolicy is a bounded retry loop with exponential backoff,
// deterministic jitter, and per-attempt deadlines — the resilience
// counterpart to this package's injectors. The zero value is disabled
// (one attempt, no timeout); DefaultRetryPolicy is a sensible storm
// survivor for the functional data path.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first call;
	// values < 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt; it doubles on
	// every further retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means uncapped.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff randomized around its
	// nominal value, in [0, 1]: the actual wait is uniform in
	// [b·(1−Jitter/2), b·(1+Jitter/2)]. The draw is deterministic in
	// (Seed, op name, key, attempt).
	Jitter float64
	// AttemptTimeout bounds each attempt with its own deadline; 0 means
	// none. This is what rescues stalled operations: the attempt fails
	// with a transient deadline error and the loop retries.
	AttemptTimeout time.Duration
	// Seed drives the jitter draw.
	Seed int64
	// Classify reports whether an error is retryable; nil selects
	// IsTransient.
	Classify func(error) bool
}

// DefaultRetryPolicy returns the data path's standard policy: 4
// attempts, 500µs base backoff doubling to a 10ms cap, 50% jitter, no
// per-attempt deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 500 * time.Microsecond,
		MaxBackoff:  10 * time.Millisecond,
		Jitter:      0.5,
	}
}

// Enabled reports whether the policy can actually retry (more than one
// attempt). Components use it to keep their fault-free fast path when
// the policy is the zero value.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// RetryStats is one Do call's accounting, for the caller's metrics.
type RetryStats struct {
	// Attempts is how many times fn ran (≥ 1 unless ctx was already
	// cancelled).
	Attempts int
	// Backoff is the total time slept between attempts.
	Backoff time.Duration
}

// Do runs fn under the policy: up to MaxAttempts calls, each optionally
// bounded by AttemptTimeout, with exponentially backed-off, jittered
// waits between retryable failures. name and key identify the
// operation for the deterministic jitter draw and should match the Op
// the caller hands its injector; fn receives the attempt index so it
// can do the same. Non-retryable errors and context cancellation stop
// the loop immediately; the returned error is fn's last error (never
// the bare backoff-interrupting context error, so callers keep the
// operation's own failure).
func (p RetryPolicy) Do(ctx context.Context, name, key string, fn func(ctx context.Context, attempt int) error) (RetryStats, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	classify := p.Classify
	if classify == nil {
		classify = IsTransient
	}
	var st RetryStats
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return st, err
		}
		st.Attempts++
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = fn(actx, a)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return st, nil
		}
		if a == attempts-1 || !classify(err) {
			return st, err
		}
		b := p.backoff(a, name, key)
		if b > 0 {
			// Account only time actually slept: an interrupted wait must
			// not book the full nominal backoff (with hour-scale caps the
			// overstatement would dwarf the real run).
			start := time.Now()
			t := time.NewTimer(b)
			select {
			case <-t.C:
				st.Backoff += b
			case <-ctx.Done():
				t.Stop()
				st.Backoff += time.Since(start)
				return st, err
			}
		}
	}
	return st, err
}

// backoff returns the jittered wait after the given 0-based failed
// attempt.
func (p RetryPolicy) backoff(attempt int, name, key string) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	shift := attempt
	if shift > 32 {
		shift = 32 // past any real cap; avoids Duration overflow
	}
	b := p.BaseBackoff << shift
	if b <= 0 || (p.MaxBackoff > 0 && b > p.MaxBackoff) {
		b = p.MaxBackoff
		if b <= 0 {
			b = p.BaseBackoff
		}
	}
	if p.Jitter > 0 {
		j := clamp01(p.Jitter)
		u := unit(p.Seed, "jitter", Op{Name: name, Key: key, Attempt: attempt})
		b = time.Duration(float64(b) * (1 - j/2 + j*u))
	}
	return b
}
