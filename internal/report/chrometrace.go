package report

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array form loadable in chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`  // microseconds
	Dur   float64 `json:"dur"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// ChromeTrace serializes spans (seconds) as Chrome trace-event JSON,
// one thread lane per span lane, so pipeline timelines from the DES
// replays can be inspected in chrome://tracing or Perfetto.
func ChromeTrace(spans []Span) ([]byte, error) {
	lanes := map[string]int{}
	var laneNames []string
	for _, s := range spans {
		if _, ok := lanes[s.Lane]; !ok {
			lanes[s.Lane] = len(laneNames)
			laneNames = append(laneNames, s.Lane)
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if s.End < s.Start {
			return nil, fmt.Errorf("report: span on %q ends before it starts", s.Lane)
		}
		events = append(events, chromeEvent{
			Name:  s.Lane,
			Phase: "X",
			TS:    s.Start * 1e6,
			Dur:   (s.End - s.Start) * 1e6,
			PID:   1,
			TID:   lanes[s.Lane],
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	// Assemble: metadata first, then duration events.
	out := []any{}
	for _, name := range laneNames {
		out = append(out, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": lanes[name],
			"args": map[string]string{"name": name},
		})
	}
	for _, e := range events {
		out = append(out, e)
	}
	return json.MarshalIndent(out, "", " ")
}
