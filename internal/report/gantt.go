package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Span is one activity interval on a Gantt lane.
type Span struct {
	Lane  string
	Start float64
	End   float64
}

// Gantt renders spans as an ASCII timeline, one lane per distinct Lane
// value (in first-appearance order), scaled to the given width. It is
// used to visualize the overlapped training pipeline (prep for batch i+1
// against compute for batch i).
func Gantt(title string, spans []Span, width int) string {
	if width <= 0 || len(spans) == 0 {
		return ""
	}
	var lanes []string
	seen := map[string]bool{}
	var tMin, tMax float64 = math.Inf(1), math.Inf(-1)
	for _, s := range spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			lanes = append(lanes, s.Lane)
		}
		if s.Start < tMin {
			tMin = s.Start
		}
		if s.End > tMax {
			tMax = s.End
		}
	}
	if tMax <= tMin {
		return ""
	}
	laneW := 0
	for _, l := range lanes {
		if len([]rune(l)) > laneW {
			laneW = len([]rune(l))
		}
	}
	scale := func(t float64) int {
		p := int(math.Round((t - tMin) / (tMax - tMin) * float64(width)))
		if p < 0 {
			p = 0
		}
		if p > width {
			p = width
		}
		return p
	}
	bySpanStart := append([]Span(nil), spans...)
	sort.SliceStable(bySpanStart, func(i, j int) bool { return bySpanStart[i].Start < bySpanStart[j].Start })

	rows := map[string][]rune{}
	for _, l := range lanes {
		rows[l] = []rune(strings.Repeat(".", width))
	}
	for _, s := range bySpanStart {
		row := rows[s.Lane]
		from, to := scale(s.Start), scale(s.End)
		if to == from {
			to = from + 1
		}
		for i := from; i < to && i < width; i++ {
			row[i] = '#'
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "-- %s --\n", title)
	}
	for _, l := range lanes {
		fmt.Fprintf(&sb, "%-*s |%s|\n", laneW, l, string(rows[l]))
	}
	fmt.Fprintf(&sb, "%-*s  %-10.4g%*s\n", laneW, "t(s)", tMin, width-8, fmt.Sprintf("%.4g", tMax))
	return sb.String()
}
