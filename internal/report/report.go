// Package report renders experiment results as aligned text tables, CSV,
// and ASCII bar charts — the output layer of the reproduction harness.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it panics on column-count mismatch, which is
// always a harness bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings and %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = formatFloat(v)
		case float32:
			out[i] = formatFloat(float64(v))
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (with quoting for
// commas and quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Bar renders a horizontal ASCII bar of the value scaled against maxVal
// over the given width.
func Bar(value, maxVal float64, width int) string {
	if width <= 0 || maxVal <= 0 || value <= 0 {
		return ""
	}
	n := int(math.Round(value / maxVal * float64(width)))
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// BarChart renders labelled values as an ASCII bar chart, one row per
// label, scaled to the largest value.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: labels and values length mismatch")
	}
	var maxVal float64
	labelW := 0
	for i, l := range labels {
		if values[i] > maxVal {
			maxVal = values[i]
		}
		if len([]rune(l)) > labelW {
			labelW = len([]rune(l))
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "-- %s --\n", title)
	}
	for i, l := range labels {
		fmt.Fprintf(&sb, "%-*s | %-*s %s\n", labelW, l, width, Bar(values[i], maxVal, width), formatFloat(values[i]))
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	sb.WriteString("|")
	for _, h := range t.Headers {
		sb.WriteString(" " + esc(h) + " |")
	}
	sb.WriteString("\n|")
	for range t.Headers {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		sb.WriteString("|")
		for _, c := range row {
			sb.WriteString(" " + esc(c) + " |")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
