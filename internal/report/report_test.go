package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "beta", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d, want 5", len(lines))
	}
	// Columns aligned: every data line has the same prefix width for
	// column 2.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Errorf("row narrower than header: %q", l)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Error("empty title rendered a banner")
	}
}

func TestAddRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("column mismatch did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("x", "a", "b", "c", "d", "e")
	tb.AddRowf("s", 42, 3.14159, float32(2), 1e9)
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "42" {
		t.Errorf("row = %v", row)
	}
	if row[2] != "3.142" {
		t.Errorf("float = %q, want 3.142", row[2])
	}
	if row[4] != "1e+09" {
		t.Errorf("big float = %q, want scientific", row[4])
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("quote not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(1, 1000, 10); got != "#" {
		t.Errorf("tiny value should still show one mark, got %q", got)
	}
	if got := Bar(200, 100, 10); got != "##########" {
		t.Errorf("overflow should clamp, got %q", got)
	}
	if Bar(0, 100, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"aa", "b"}, []float64{2, 1}, 8)
	if !strings.Contains(out, "-- title --") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "########") {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "####") || strings.Contains(lines[2], "#####") {
		t.Errorf("half bar wrong: %q", lines[2])
	}
}

func TestBarChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatch did not panic")
		}
	}()
	BarChart("x", []string{"a"}, []float64{1, 2}, 10)
}

func TestFormatFloatSpecials(t *testing.T) {
	tb := NewTable("x", "v")
	tb.AddRowf(0.0)
	if tb.Rows[0][0] != "0.000" {
		t.Errorf("zero = %q", tb.Rows[0][0])
	}
	tb.AddRowf(0.0001)
	if tb.Rows[1][0] != "0.0001" {
		t.Errorf("small = %q", tb.Rows[1][0])
	}
}

func TestGanttRendersLanes(t *testing.T) {
	spans := []Span{
		{Lane: "prep", Start: 0, End: 2},
		{Lane: "compute", Start: 1, End: 3},
		{Lane: "prep", Start: 2, End: 4},
	}
	out := Gantt("pipeline", spans, 20)
	if !strings.Contains(out, "-- pipeline --") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, 2 lanes, axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "prep") || !strings.HasPrefix(lines[2], "compute") {
		t.Errorf("lane order wrong:\n%s", out)
	}
	// Prep lane busy [0,2) and [2,4): fully filled.
	prepRow := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if strings.Contains(prepRow, ".") {
		t.Errorf("prep lane should be fully busy: %q", prepRow)
	}
	// Compute lane idle in the first quarter.
	compRow := lines[2][strings.Index(lines[2], "|")+1 : strings.LastIndex(lines[2], "|")]
	if compRow[0] != '.' {
		t.Errorf("compute lane should start idle: %q", compRow)
	}
}

func TestGanttDegenerate(t *testing.T) {
	if Gantt("x", nil, 10) != "" {
		t.Error("empty spans should render nothing")
	}
	if Gantt("x", []Span{{Lane: "a", Start: 1, End: 1}}, 10) != "" {
		t.Error("zero-duration window should render nothing")
	}
	if Gantt("x", []Span{{Lane: "a", Start: 0, End: 1}}, 0) != "" {
		t.Error("zero width should render nothing")
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("MD", "a", "b")
	tb.AddRow("x|y", "2")
	out := tb.Markdown()
	if !strings.Contains(out, "### MD") {
		t.Error("missing markdown title")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "|---|---|") {
		t.Errorf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Error("pipe not escaped")
	}
}

func TestChromeTrace(t *testing.T) {
	spans := []Span{
		{Lane: "prep", Start: 0, End: 0.5},
		{Lane: "compute", Start: 0.25, End: 1},
	}
	data, err := ChromeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 2 thread-name metadata + 2 duration events.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	metas, durs := 0, 0
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			durs++
			if e["dur"].(float64) <= 0 {
				t.Error("non-positive duration")
			}
		}
	}
	if metas != 2 || durs != 2 {
		t.Errorf("metas=%d durs=%d", metas, durs)
	}
	if _, err := ChromeTrace([]Span{{Lane: "x", Start: 2, End: 1}}); err == nil {
		t.Error("inverted span accepted")
	}
	if _, err := ChromeTrace(nil); err != nil {
		t.Errorf("empty trace failed: %v", err)
	}
}
