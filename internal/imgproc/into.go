package imgproc

import (
	"bytes"
	"fmt"
	"image"
	"image/jpeg"
	"math/rand"
)

// This file holds the *Into variants of the image kernels: each writes
// into a caller-provided destination, reusing its buffer capacity, so a
// steady-state prepare loop recycles one bounded working set instead of
// allocating per sample (DESIGN.md §12). Every *Into is bit-identical
// to its allocating counterpart; the originals are thin shims over
// these. Unless noted otherwise the destination must not alias the
// source.

// Reset reshapes the image to w×h, reusing Pix's capacity when it
// fits. Like NewImage it panics on a non-positive size; unlike NewImage
// the pixels are STALE — callers must overwrite every one they read.
func (im *Image) Reset(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	im.W, im.H = w, h
	n := w * h * 3
	if cap(im.Pix) < n {
		im.Pix = make([]uint8, n)
		return
	}
	im.Pix = im.Pix[:n]
}

// Reset reshapes the tensor to c×h×w, reusing Data's capacity when it
// fits. The cells are STALE — callers must overwrite every one they
// read.
func (t *Tensor) Reset(c, h, w int) {
	t.C, t.H, t.W = c, h, w
	n := c * h * w
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
		return
	}
	t.Data = t.Data[:n]
}

// DecodeJPEGInto decodes JPEG bytes into dst, reusing its pixel buffer.
// The stdlib decoder's concrete image types get allocation-free pixel
// access (the generic At(x,y).RGBA() path boxes a color.Color per
// pixel — tens of thousands of allocations per decode); all paths
// produce identical pixels.
func DecodeJPEGInto(dst *Image, data []byte) error {
	src, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("imgproc: jpeg decode: %w", err)
	}
	bounds := src.Bounds()
	w, h := bounds.Dx(), bounds.Dy()
	if w <= 0 || h <= 0 {
		return fmt.Errorf("imgproc: jpeg decoded to invalid size %dx%d", w, h)
	}
	dst.Reset(w, h)
	switch s := src.(type) {
	case *image.YCbCr:
		for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
			for x := bounds.Min.X; x < bounds.Max.X; x++ {
				r, g, b, _ := s.YCbCrAt(x, y).RGBA()
				dst.Set(x-bounds.Min.X, y-bounds.Min.Y, uint8(r>>8), uint8(g>>8), uint8(b>>8))
			}
		}
	case *image.Gray:
		for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
			for x := bounds.Min.X; x < bounds.Max.X; x++ {
				r, g, b, _ := s.GrayAt(x, y).RGBA()
				dst.Set(x-bounds.Min.X, y-bounds.Min.Y, uint8(r>>8), uint8(g>>8), uint8(b>>8))
			}
		}
	default:
		for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
			for x := bounds.Min.X; x < bounds.Max.X; x++ {
				r, g, b, _ := src.At(x, y).RGBA()
				dst.Set(x-bounds.Min.X, y-bounds.Min.Y, uint8(r>>8), uint8(g>>8), uint8(b>>8))
			}
		}
	}
	return nil
}

// CropInto extracts the w×h window at (x, y) into dst.
func CropInto(dst *Image, im *Image, x, y, w, h int) error {
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > im.W || y+h > im.H {
		return fmt.Errorf("imgproc: crop %dx%d@(%d,%d) outside %dx%d", w, h, x, y, im.W, im.H)
	}
	dst.Reset(w, h)
	for row := 0; row < h; row++ {
		srcOff := ((y+row)*im.W + x) * 3
		dstOff := row * w * 3
		copy(dst.Pix[dstOff:dstOff+w*3], im.Pix[srcOff:srcOff+w*3])
	}
	return nil
}

// CenterCropInto extracts the centered w×h window into dst.
func CenterCropInto(dst *Image, im *Image, w, h int) error {
	return CropInto(dst, im, (im.W-w)/2, (im.H-h)/2, w, h)
}

// RandomCropInto extracts a uniformly random w×h window into dst,
// drawing from rng in the same order as RandomCrop.
func RandomCropInto(dst *Image, im *Image, w, h int, rng *rand.Rand) error {
	if w > im.W || h > im.H {
		return fmt.Errorf("imgproc: random crop %dx%d larger than %dx%d", w, h, im.W, im.H)
	}
	x := rng.Intn(im.W - w + 1)
	y := rng.Intn(im.H - h + 1)
	return CropInto(dst, im, x, y, w, h)
}

// MirrorInto writes the horizontally flipped image into dst.
func MirrorInto(dst *Image, im *Image) {
	dst.Reset(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			dst.Set(im.W-1-x, y, r, g, b)
		}
	}
}

// GaussianNoiseInto writes im plus clamped Gaussian noise into dst.
// dst == im is allowed (in-place noising).
func GaussianNoiseInto(dst *Image, im *Image, stddev float64, rng *rand.Rand) {
	if dst != im {
		dst.Reset(im.W, im.H)
		copy(dst.Pix, im.Pix)
	}
	if rng == nil || stddev <= 0 {
		return
	}
	for i, v := range dst.Pix {
		dst.Pix[i] = clampU8(float64(v) + rng.NormFloat64()*stddev)
	}
}

// ResizeInto scales im to w×h with bilinear interpolation into dst.
func ResizeInto(dst *Image, im *Image, w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("imgproc: resize to invalid %dx%d", w, h)
	}
	dst.Reset(w, h)
	xRatio := float64(im.W) / float64(w)
	yRatio := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y) + 0.5) * yRatio
		y0 := int(srcY - 0.5)
		fy := srcY - 0.5 - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0, fy = 0, 0
		}
		if y1 >= im.H {
			y1 = im.H - 1
		}
		for x := 0; x < w; x++ {
			srcX := (float64(x) + 0.5) * xRatio
			x0 := int(srcX - 0.5)
			fx := srcX - 0.5 - float64(x0)
			x1 := x0 + 1
			if x0 < 0 {
				x0, fx = 0, 0
			}
			if x1 >= im.W {
				x1 = im.W - 1
			}
			var rgb [3]float64
			for c := 0; c < 3; c++ {
				tl := float64(im.Pix[(y0*im.W+x0)*3+c])
				tr := float64(im.Pix[(y0*im.W+x1)*3+c])
				bl := float64(im.Pix[(y1*im.W+x0)*3+c])
				br := float64(im.Pix[(y1*im.W+x1)*3+c])
				top := tl + (tr-tl)*fx
				bot := bl + (br-bl)*fx
				rgb[c] = top + (bot-top)*fy
			}
			dst.Set(x, y, clampU8(rgb[0]), clampU8(rgb[1]), clampU8(rgb[2]))
		}
	}
	return nil
}

// ToTensorInto casts the image to a float32 CHW tensor in dst, reusing
// dst's Data capacity, with the same normalization as ToTensor.
func ToTensorInto(dst *Tensor, im *Image, mean, std []float64) error {
	if mean == nil {
		mean = []float64{0, 0, 0}
	}
	if std == nil {
		std = []float64{1, 1, 1}
	}
	if len(mean) != 3 || len(std) != 3 {
		return fmt.Errorf("imgproc: mean/std must have 3 channels, got %d/%d", len(mean), len(std))
	}
	for c, s := range std {
		if s <= 0 {
			return fmt.Errorf("imgproc: std[%d] = %v must be positive", c, s)
		}
	}
	dst.Reset(3, im.H, im.W)
	plane := im.H * im.W
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := (y*im.W + x) * 3
			for c := 0; c < 3; c++ {
				v := (float64(im.Pix[i+c])/255 - mean[c]) / std[c]
				dst.Data[c*plane+y*im.W+x] = float32(v)
			}
		}
	}
	return nil
}
