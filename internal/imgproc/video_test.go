package imgproc

import (
	"testing"
)

func TestSynthesizeVideoShapeAndMotion(t *testing.T) {
	cfg := SynthConfig{Size: 64, Quality: 85}
	v, err := SynthesizeVideo(cfg, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != 8 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	w, h := v.FrameSize()
	if w != 64 || h != 64 {
		t.Fatalf("frame size %dx%d", w, h)
	}
	// Motion: consecutive frames differ.
	diff := 0
	for i := range v.Frames[0].Pix {
		if v.Frames[0].Pix[i] != v.Frames[4].Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("no motion between frames 0 and 4")
	}
	// Determinism.
	v2, _ := SynthesizeVideo(cfg, 3, 1, 8)
	for f := range v.Frames {
		for i := range v.Frames[f].Pix {
			if v.Frames[f].Pix[i] != v2.Frames[f].Pix[i] {
				t.Fatal("video synthesis not deterministic")
			}
		}
	}
	if _, err := SynthesizeVideo(cfg, 3, 1, 0); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestMJPEGRoundTrip(t *testing.T) {
	cfg := SynthConfig{Size: 48, Quality: 90}
	v, err := SynthesizeVideo(cfg, 5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeMJPEG(v, 90)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMJPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != 4 {
		t.Fatalf("decoded frames = %d", len(back.Frames))
	}
	w, h := back.FrameSize()
	if w != 48 || h != 48 {
		t.Fatalf("decoded size %dx%d", w, h)
	}
}

func TestMJPEGRejectsGarbage(t *testing.T) {
	if _, err := DecodeMJPEG([]byte("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeMJPEG([]byte{'t', 'b', 'v', '1', 5, 0, 0, 0, 1}); err == nil {
		t.Error("truncated clip accepted")
	}
	if _, err := EncodeMJPEG(&Video{}, 90); err == nil {
		t.Error("empty clip accepted")
	}
	// Mixed geometry rejected.
	v := &Video{Frames: []*Image{NewImage(8, 8), NewImage(4, 4)}}
	if _, err := EncodeMJPEG(v, 90); err == nil {
		t.Error("mixed-geometry clip accepted")
	}
}

func TestSampleFramesUniform(t *testing.T) {
	v := &Video{Frames: make([]*Image, 16)}
	for i := range v.Frames {
		im := NewImage(1, 1)
		im.Set(0, 0, uint8(i), 0, 0)
		v.Frames[i] = im
	}
	out, err := v.SampleFrames(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 4, 8, 12}
	for i, f := range out {
		r, _, _ := f.At(0, 0)
		if r != want[i] {
			t.Errorf("sample %d = frame %d, want %d", i, r, want[i])
		}
	}
	all, err := v.SampleFrames(16)
	if err != nil || len(all) != 16 {
		t.Error("full sampling failed")
	}
	if _, err := v.SampleFrames(0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := v.SampleFrames(17); err == nil {
		t.Error("oversampling accepted")
	}
	if w, h := (&Video{}).FrameSize(); w != 0 || h != 0 {
		t.Error("empty clip size should be 0,0")
	}
}
