package imgproc

import "testing"

func benchImage(b *testing.B) (*Image, []byte) {
	b.Helper()
	cfg := DefaultSynthConfig()
	im := SynthesizeImage(cfg, 1, 3)
	data, err := EncodeJPEG(im, cfg.Quality)
	if err != nil {
		b.Fatal(err)
	}
	return im, data
}

// BenchmarkDecodeJPEGInto is the reused-destination decode — the sample
// path's entry kernel.
func BenchmarkDecodeJPEGInto(b *testing.B) {
	_, data := benchImage(b)
	var dst Image
	if err := DecodeJPEGInto(&dst, data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeJPEGInto(&dst, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResizeInto is bilinear resize into a reused destination.
func BenchmarkResizeInto(b *testing.B) {
	im, _ := benchImage(b)
	var dst Image
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ResizeInto(&dst, im, ModelSize, ModelSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkToTensorInto is the normalize-and-cast kernel into a reused
// tensor.
func BenchmarkToTensorInto(b *testing.B) {
	im, _ := benchImage(b)
	var dst Tensor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ToTensorInto(&dst, im, ImagenetMean, ImagenetStd); err != nil {
			b.Fatal(err)
		}
	}
}
