package imgproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gradientImage(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, uint8(x%256), uint8(y%256), uint8((x+y)%256))
		}
	}
	return im
}

func TestCropExtractsExactWindow(t *testing.T) {
	im := gradientImage(16, 16)
	c, err := Crop(im, 3, 5, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 4 || c.H != 6 {
		t.Fatalf("crop size %dx%d", c.W, c.H)
	}
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			r, g, b := c.At(x, y)
			wr, wg, wb := im.At(x+3, y+5)
			if r != wr || g != wg || b != wb {
				t.Fatalf("pixel (%d,%d) = (%d,%d,%d), want (%d,%d,%d)", x, y, r, g, b, wr, wg, wb)
			}
		}
	}
}

func TestCropRejectsOutOfBounds(t *testing.T) {
	im := gradientImage(8, 8)
	cases := [][4]int{
		{-1, 0, 4, 4}, {0, -1, 4, 4}, {5, 0, 4, 4}, {0, 5, 4, 4}, {0, 0, 0, 4}, {0, 0, 4, 0}, {0, 0, 9, 9},
	}
	for i, c := range cases {
		if _, err := Crop(im, c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCenterCrop(t *testing.T) {
	im := gradientImage(StoredSize, StoredSize)
	c, err := CenterCrop(im, ModelSize, ModelSize)
	if err != nil {
		t.Fatal(err)
	}
	r, _, _ := c.At(0, 0)
	wr, _, _ := im.At(16, 16) // (256-224)/2 = 16
	if r != wr {
		t.Errorf("center crop origin wrong: %d vs %d", r, wr)
	}
}

func TestRandomCropAlwaysInBoundsProperty(t *testing.T) {
	im := gradientImage(StoredSize, StoredSize)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := RandomCrop(im, ModelSize, ModelSize, rng)
		if err != nil || c.W != ModelSize || c.H != ModelSize {
			return false
		}
		// Every crop row must be a contiguous slice of a source row:
		// verify the corner pixels exist somewhere consistent by checking
		// the gradient structure (r == x mod 256 relationship shifted).
		r0, g0, _ := c.At(0, 0)
		r1, g1, _ := c.At(ModelSize-1, 0)
		dx := int(r1) - int(r0)
		if dx < 0 {
			dx += 256
		}
		if dx != (ModelSize-1)%256 {
			return false
		}
		return g0 == g1 // same source row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomCropTooLarge(t *testing.T) {
	im := gradientImage(8, 8)
	if _, err := RandomCrop(im, 9, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized random crop accepted")
	}
}

func TestNumDistinctCropsMatchesPaperStorageAnalysis(t *testing.T) {
	// Section III-D: a 256×256 image yields 32×32 distinct 224×224 crops,
	// and 32·32·0.15 MB·14 M images ≈ 2.2 PB.
	n := NumDistinctCrops(StoredSize, StoredSize, ModelSize, ModelSize)
	if n != 33*33 {
		// (256-224+1)² = 33² = 1089; the paper rounds to 32×32.
		t.Fatalf("distinct crops = %d, want 33*33", n)
	}
	const mbPerCrop = 0.15
	const numImages = 14e6
	pb := float64(32*32) * mbPerCrop * numImages / 1e9
	if math.Abs(pb-2.15) > 0.1 {
		t.Errorf("storage estimate = %.2f PB, want ≈2.2", pb)
	}
}

func TestMirrorIsInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(13, 7)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		back := Mirror(Mirror(im))
		for i := range im.Pix {
			if back.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMirrorFlipsColumns(t *testing.T) {
	im := gradientImage(10, 3)
	m := Mirror(im)
	for y := 0; y < 3; y++ {
		for x := 0; x < 10; x++ {
			r, g, b := m.At(x, y)
			wr, wg, wb := im.At(9-x, y)
			if r != wr || g != wg || b != wb {
				t.Fatalf("mirror mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestGaussianNoiseChangesPixelsButStaysClamped(t *testing.T) {
	im := gradientImage(32, 32)
	noisy := GaussianNoise(im, 20, rand.New(rand.NewSource(9)))
	if noisy.W != im.W || noisy.H != im.H {
		t.Fatal("size changed")
	}
	diff := 0
	for i := range im.Pix {
		if noisy.Pix[i] != im.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("noise changed nothing")
	}
	// Original untouched.
	r, _, _ := im.At(5, 5)
	if r != 5 {
		t.Error("GaussianNoise modified its input")
	}
}

func TestGaussianNoiseNoopCases(t *testing.T) {
	im := gradientImage(4, 4)
	for _, out := range []*Image{
		GaussianNoise(im, 0, rand.New(rand.NewSource(1))),
		GaussianNoise(im, 10, nil),
	} {
		for i := range im.Pix {
			if out.Pix[i] != im.Pix[i] {
				t.Fatal("noop noise changed pixels")
			}
		}
	}
}

func TestToTensorLayoutAndScaling(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 255, 0, 0)
	im.Set(1, 0, 0, 255, 0)
	im.Set(0, 1, 0, 0, 255)
	ten, err := ToTensor(im, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ten.C != 3 || ten.H != 2 || ten.W != 2 {
		t.Fatalf("tensor shape %dx%dx%d", ten.C, ten.H, ten.W)
	}
	if ten.At(0, 0, 0) != 1 || ten.At(1, 0, 1) != 1 || ten.At(2, 1, 0) != 1 {
		t.Error("channel layout wrong")
	}
	if ten.At(0, 1, 1) != 0 {
		t.Error("zero pixel not zero")
	}
}

func TestToTensorNormalization(t *testing.T) {
	im := NewImage(1, 1)
	im.Set(0, 0, 128, 128, 128)
	ten, err := ToTensor(im, ImagenetMean, ImagenetStd)
	if err != nil {
		t.Fatal(err)
	}
	want := (128.0/255 - ImagenetMean[0]) / ImagenetStd[0]
	if math.Abs(float64(ten.At(0, 0, 0))-want) > 1e-6 {
		t.Errorf("normalized = %v, want %v", ten.At(0, 0, 0), want)
	}
}

func TestToTensorRejectsBadParams(t *testing.T) {
	im := NewImage(1, 1)
	if _, err := ToTensor(im, []float64{0}, nil); err == nil {
		t.Error("short mean accepted")
	}
	if _, err := ToTensor(im, nil, []float64{1, 1, 0}); err == nil {
		t.Error("zero std accepted")
	}
}

func TestTensorBytesMatchesPaperDataLoadSize(t *testing.T) {
	// Section III-C: a 224×224 RGB float tensor is ~0.15 MB raw ×4 for
	// float32 = 602,112 bytes, the per-sample accelerator load.
	im := NewImage(ModelSize, ModelSize)
	ten, _ := ToTensor(im, nil, nil)
	if ten.Bytes() != 602112 {
		t.Errorf("tensor bytes = %d, want 602112", ten.Bytes())
	}
}

func TestJPEGRoundTripApproximatesPixels(t *testing.T) {
	im := SynthesizeImage(DefaultSynthConfig(), 5, 3)
	data, err := EncodeJPEG(im, 90)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("decoded size %dx%d", back.W, back.H)
	}
	// Lossy but close: mean absolute error below 8 counts.
	var mae float64
	for i := range im.Pix {
		mae += math.Abs(float64(im.Pix[i]) - float64(back.Pix[i]))
	}
	mae /= float64(len(im.Pix))
	if mae > 8 {
		t.Errorf("JPEG round-trip MAE = %v", mae)
	}
}

func TestDecodeJPEGRejectsGarbage(t *testing.T) {
	if _, err := DecodeJPEG([]byte("not a jpeg")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSynthesizedJPEGSizeIsRealistic(t *testing.T) {
	// Stored 256×256 JPEGs should land in the tens-of-KB range the
	// storage model assumes (10–80 KB).
	var total int
	for seed := int64(0); seed < 8; seed++ {
		im := SynthesizeImage(DefaultSynthConfig(), seed, int(seed)%10)
		data, err := EncodeJPEG(im, DefaultSynthConfig().Quality)
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
	}
	avg := total / 8
	if avg < 5_000 || avg > 100_000 {
		t.Errorf("average JPEG size = %d bytes, want 10–80 KB scale", avg)
	}
}

func TestSynthesizeImageDeterministicPerSeed(t *testing.T) {
	a := SynthesizeImage(DefaultSynthConfig(), 3, 1)
	b := SynthesizeImage(DefaultSynthConfig(), 3, 1)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed, different image")
		}
	}
	c := SynthesizeImage(DefaultSynthConfig(), 4, 1)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds, identical image")
	}
}

func TestClassesProduceDifferentImages(t *testing.T) {
	a := SynthesizeImage(DefaultSynthConfig(), 3, 0)
	b := SynthesizeImage(DefaultSynthConfig(), 3, 5)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different classes, identical image")
	}
}

func TestNewImageRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,5) did not panic")
		}
	}()
	NewImage(0, 5)
}
