// Package imgproc implements the image data-preparation substrate of the
// TrainBox reproduction: JPEG decode, cropping, mirroring, Gaussian
// noise, and float casting/normalization — the operation set of the
// paper's image FPGA engine (Table II) and of the CPU baseline.
//
// Images are 8-bit RGB with interleaved pixels (HWC layout), matching
// what a JPEG decoder emits; the final cast produces float32 CHW tensors,
// the layout neural network accelerators consume. The paper's Imagenet
// items are stored as 256×256 JPEGs and cropped to 224×224; those sizes
// are the package defaults.
package imgproc

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"math/rand"
)

// Standard dataset geometry from the paper (Section III-B, Section III-D).
const (
	// StoredSize is the stored JPEG edge length (256×256).
	StoredSize = 256
	// ModelSize is the model input edge length after cropping (224×224).
	ModelSize = 224
)

// Image is an 8-bit RGB image with interleaved pixels: Pix[(y*W+x)*3+c].
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a zeroed W×H RGB image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// At returns the RGB triple at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores the RGB triple at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]uint8, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Bytes returns the raw pixel byte count (H·W·3), the decoded in-memory
// footprint the resource models account for.
func (im *Image) Bytes() int { return len(im.Pix) }

// SynthConfig controls synthetic image generation — the Imagenet
// stand-in. Images mix smooth gradients with rectangles and disks so the
// JPEG encoder produces realistically sized files.
type SynthConfig struct {
	Size    int // square edge length
	Shapes  int // rectangles + disks drawn over the gradient
	Quality int // JPEG encode quality
}

// DefaultSynthConfig matches the paper's stored dataset: 256×256 JPEG.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Size: StoredSize, Shapes: 12, Quality: 85}
}

// SynthesizeImage generates a deterministic procedural RGB image for a
// seed. The class label (0..9) influences the dominant hue so the tiny-NN
// experiments have learnable structure.
func SynthesizeImage(cfg SynthConfig, seed int64, class int) *Image {
	if cfg.Size <= 0 {
		cfg.Size = StoredSize
	}
	rng := rand.New(rand.NewSource(seed))
	im := NewImage(cfg.Size, cfg.Size)
	// Class-dependent base hue plus smooth spatial gradient.
	baseR := uint8(40 + (class*53)%180)
	baseG := uint8(40 + (class*97)%180)
	baseB := uint8(40 + (class*31)%180)
	for y := 0; y < cfg.Size; y++ {
		for x := 0; x < cfg.Size; x++ {
			gx := float64(x) / float64(cfg.Size)
			gy := float64(y) / float64(cfg.Size)
			im.Set(x, y,
				clampU8(float64(baseR)+60*gx),
				clampU8(float64(baseG)+60*gy),
				clampU8(float64(baseB)+30*(gx+gy)))
		}
	}
	// Shapes add high-frequency content.
	for s := 0; s < cfg.Shapes; s++ {
		cx, cy := rng.Intn(cfg.Size), rng.Intn(cfg.Size)
		radius := 4 + rng.Intn(cfg.Size/6)
		r8 := uint8(rng.Intn(256))
		g8 := uint8(rng.Intn(256))
		b8 := uint8(rng.Intn(256))
		disk := rng.Intn(2) == 0
		for y := maxInt(0, cy-radius); y < minInt(cfg.Size, cy+radius); y++ {
			for x := maxInt(0, cx-radius); x < minInt(cfg.Size, cx+radius); x++ {
				if disk {
					dx, dy := x-cx, y-cy
					if dx*dx+dy*dy > radius*radius {
						continue
					}
				}
				im.Set(x, y, r8, g8, b8)
			}
		}
	}
	return im
}

// SynthesizeStriped generates a deterministic striped image whose class
// is encoded in the stripe *frequency*, not in color: every class has the
// same mean intensity, so no crop-invariant sufficient statistic exists
// and a classifier must learn spatial structure. Random cropping shifts
// the stripe phase, which makes this family the canonical testbed for
// the augmentation-accuracy study (Figure 5): a model trained only on
// center crops ties itself to one phase and fails on shifted crops,
// while crop-augmented training sees all phases.
func SynthesizeStriped(cfg SynthConfig, seed int64, class int) *Image {
	if cfg.Size <= 0 {
		cfg.Size = StoredSize
	}
	rng := rand.New(rand.NewSource(seed))
	im := NewImage(cfg.Size, cfg.Size)
	period := 6 + 4*class    // class-coded spatial frequency
	phase := rng.Intn(3)     // slight per-image jitter; crops provide real phase diversity
	diag := rng.Intn(2) == 0 // per-image nuisance: stripe orientation mix
	for y := 0; y < cfg.Size; y++ {
		for x := 0; x < cfg.Size; x++ {
			pos := x + phase
			if diag {
				pos = x + y/2 + phase
			}
			v := uint8(88)
			if (pos/period)%2 == 0 {
				v = 168
			}
			im.Set(x, y, v, v, v)
		}
	}
	return im
}

func clampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EncodeJPEG compresses the image at the given quality (1..100), the
// stored on-SSD format. This is also how the repo measures realistic
// compressed item sizes for the storage model.
func EncodeJPEG(im *Image, quality int) ([]byte, error) {
	rgba := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			rgba.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, rgba, &jpeg.Options{Quality: quality}); err != nil {
		return nil, fmt.Errorf("imgproc: jpeg encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeJPEG decompresses JPEG bytes into an RGB image — the "Decoder"
// engine of Table II (and the dominant CPU cost of image preparation,
// Section V-B). Shim over DecodeJPEGInto with a fresh destination.
func DecodeJPEG(data []byte) (*Image, error) {
	out := &Image{}
	if err := DecodeJPEGInto(out, data); err != nil {
		return nil, err
	}
	return out, nil
}
