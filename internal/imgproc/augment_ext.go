package imgproc

import (
	"fmt"
	"math/rand"
)

// This file implements the advanced augmentations the paper's Related
// Work points at (Section VII-B): RICAP crop-and-patch (Takahashi et
// al. [43]), plus the resize and photometric-jitter operations every
// production preparation pipeline (DALI included) offers. TrainBox's
// thesis is that such emerging augmentations make on-line preparation
// even more expensive — these kernels are what the prep accelerators
// would host next.

// Resize scales the image to w×h with bilinear interpolation. Shim over
// ResizeInto with a fresh destination.
func Resize(im *Image, w, h int) (*Image, error) {
	out := &Image{}
	if err := ResizeInto(out, im, w, h); err != nil {
		return nil, err
	}
	return out, nil
}

// RICAP implements random image cropping and patching (Takahashi et al.):
// four source images are randomly cropped and patched into one w×h
// training image around a random interior boundary point; the returned
// weights are each source's area fraction, used for soft labels.
func RICAP(sources [4]*Image, w, h int, rng *rand.Rand) (*Image, [4]float64, error) {
	var weights [4]float64
	if w <= 1 || h <= 1 {
		return nil, weights, fmt.Errorf("imgproc: RICAP target %dx%d too small", w, h)
	}
	for i, src := range sources {
		if src == nil {
			return nil, weights, fmt.Errorf("imgproc: RICAP source %d is nil", i)
		}
		if src.W < w || src.H < h {
			return nil, weights, fmt.Errorf("imgproc: RICAP source %d (%dx%d) smaller than target %dx%d",
				i, src.W, src.H, w, h)
		}
	}
	// Interior boundary point: quadrant q gets size (wq, hq).
	bx := 1 + rng.Intn(w-1)
	by := 1 + rng.Intn(h-1)
	quads := [4][4]int{
		// {x offset, y offset, width, height} within the target.
		{0, 0, bx, by},
		{bx, 0, w - bx, by},
		{0, by, bx, h - by},
		{bx, by, w - bx, h - by},
	}
	out := NewImage(w, h)
	for q, geom := range quads {
		qw, qh := geom[2], geom[3]
		crop, err := RandomCrop(sources[q], qw, qh, rng)
		if err != nil {
			return nil, weights, err
		}
		for y := 0; y < qh; y++ {
			for x := 0; x < qw; x++ {
				r, g, b := crop.At(x, y)
				out.Set(geom[0]+x, geom[1]+y, r, g, b)
			}
		}
		weights[q] = float64(qw*qh) / float64(w*h)
	}
	return out, weights, nil
}

// JitterConfig bounds photometric jitter.
type JitterConfig struct {
	// MaxBrightness is the maximum absolute additive shift (8-bit counts).
	MaxBrightness float64
	// MaxContrast is the maximum multiplicative deviation from 1
	// (e.g. 0.2 → gain in [0.8, 1.2]).
	MaxContrast float64
}

// ColorJitter applies a random brightness shift and contrast gain
// (around the mid-gray 128) to a copy of the image.
func ColorJitter(im *Image, cfg JitterConfig, rng *rand.Rand) *Image {
	out := im.Clone()
	if rng == nil {
		return out
	}
	shift := (rng.Float64()*2 - 1) * cfg.MaxBrightness
	gain := 1 + (rng.Float64()*2-1)*cfg.MaxContrast
	if cfg.MaxBrightness == 0 && cfg.MaxContrast == 0 {
		return out
	}
	for i, v := range out.Pix {
		out.Pix[i] = clampU8((float64(v)-128)*gain + 128 + shift)
	}
	return out
}
