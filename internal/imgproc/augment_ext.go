package imgproc

import (
	"fmt"
	"math/rand"
)

// This file implements the advanced augmentations the paper's Related
// Work points at (Section VII-B): RICAP crop-and-patch (Takahashi et
// al. [43]), plus the resize and photometric-jitter operations every
// production preparation pipeline (DALI included) offers. TrainBox's
// thesis is that such emerging augmentations make on-line preparation
// even more expensive — these kernels are what the prep accelerators
// would host next.

// Resize scales the image to w×h with bilinear interpolation.
func Resize(im *Image, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgproc: resize to invalid %dx%d", w, h)
	}
	out := NewImage(w, h)
	xRatio := float64(im.W) / float64(w)
	yRatio := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		srcY := (float64(y) + 0.5) * yRatio
		y0 := int(srcY - 0.5)
		fy := srcY - 0.5 - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0, fy = 0, 0
		}
		if y1 >= im.H {
			y1 = im.H - 1
		}
		for x := 0; x < w; x++ {
			srcX := (float64(x) + 0.5) * xRatio
			x0 := int(srcX - 0.5)
			fx := srcX - 0.5 - float64(x0)
			x1 := x0 + 1
			if x0 < 0 {
				x0, fx = 0, 0
			}
			if x1 >= im.W {
				x1 = im.W - 1
			}
			var rgb [3]float64
			for c := 0; c < 3; c++ {
				tl := float64(im.Pix[(y0*im.W+x0)*3+c])
				tr := float64(im.Pix[(y0*im.W+x1)*3+c])
				bl := float64(im.Pix[(y1*im.W+x0)*3+c])
				br := float64(im.Pix[(y1*im.W+x1)*3+c])
				top := tl + (tr-tl)*fx
				bot := bl + (br-bl)*fx
				rgb[c] = top + (bot-top)*fy
			}
			out.Set(x, y, clampU8(rgb[0]), clampU8(rgb[1]), clampU8(rgb[2]))
		}
	}
	return out, nil
}

// RICAP implements random image cropping and patching (Takahashi et al.):
// four source images are randomly cropped and patched into one w×h
// training image around a random interior boundary point; the returned
// weights are each source's area fraction, used for soft labels.
func RICAP(sources [4]*Image, w, h int, rng *rand.Rand) (*Image, [4]float64, error) {
	var weights [4]float64
	if w <= 1 || h <= 1 {
		return nil, weights, fmt.Errorf("imgproc: RICAP target %dx%d too small", w, h)
	}
	for i, src := range sources {
		if src == nil {
			return nil, weights, fmt.Errorf("imgproc: RICAP source %d is nil", i)
		}
		if src.W < w || src.H < h {
			return nil, weights, fmt.Errorf("imgproc: RICAP source %d (%dx%d) smaller than target %dx%d",
				i, src.W, src.H, w, h)
		}
	}
	// Interior boundary point: quadrant q gets size (wq, hq).
	bx := 1 + rng.Intn(w-1)
	by := 1 + rng.Intn(h-1)
	quads := [4][4]int{
		// {x offset, y offset, width, height} within the target.
		{0, 0, bx, by},
		{bx, 0, w - bx, by},
		{0, by, bx, h - by},
		{bx, by, w - bx, h - by},
	}
	out := NewImage(w, h)
	for q, geom := range quads {
		qw, qh := geom[2], geom[3]
		crop, err := RandomCrop(sources[q], qw, qh, rng)
		if err != nil {
			return nil, weights, err
		}
		for y := 0; y < qh; y++ {
			for x := 0; x < qw; x++ {
				r, g, b := crop.At(x, y)
				out.Set(geom[0]+x, geom[1]+y, r, g, b)
			}
		}
		weights[q] = float64(qw*qh) / float64(w*h)
	}
	return out, weights, nil
}

// JitterConfig bounds photometric jitter.
type JitterConfig struct {
	// MaxBrightness is the maximum absolute additive shift (8-bit counts).
	MaxBrightness float64
	// MaxContrast is the maximum multiplicative deviation from 1
	// (e.g. 0.2 → gain in [0.8, 1.2]).
	MaxContrast float64
}

// ColorJitter applies a random brightness shift and contrast gain
// (around the mid-gray 128) to a copy of the image.
func ColorJitter(im *Image, cfg JitterConfig, rng *rand.Rand) *Image {
	out := im.Clone()
	if rng == nil {
		return out
	}
	shift := (rng.Float64()*2 - 1) * cfg.MaxBrightness
	gain := 1 + (rng.Float64()*2-1)*cfg.MaxContrast
	if cfg.MaxBrightness == 0 && cfg.MaxContrast == 0 {
		return out
	}
	for i, v := range out.Pix {
		out.Pix[i] = clampU8((float64(v)-128)*gain + 128 + shift)
	}
	return out
}
