package imgproc

import (
	"bytes"
	"image"
	"image/jpeg"
	"math/rand"
	"testing"
)

func synthJPEG(t *testing.T, seed int64, quality int) []byte {
	t.Helper()
	im := SynthesizeImage(DefaultSynthConfig(), seed, int(seed)%10)
	data, err := EncodeJPEG(im, quality)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecodeJPEGIntoMatchesGenericPath pins the concrete-type fast
// paths (YCbCr, Gray) to the generic At(x,y).RGBA() reference they
// replaced.
func TestDecodeJPEGIntoMatchesGenericPath(t *testing.T) {
	decodeGeneric := func(data []byte) *Image {
		src, err := jpeg.Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		bounds := src.Bounds()
		out := NewImage(bounds.Dx(), bounds.Dy())
		for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
			for x := bounds.Min.X; x < bounds.Max.X; x++ {
				r, g, b, _ := src.At(x, y).RGBA()
				out.Set(x-bounds.Min.X, y-bounds.Min.Y, uint8(r>>8), uint8(g>>8), uint8(b>>8))
			}
		}
		return out
	}

	color := synthJPEG(t, 11, 85)
	gray := func() []byte {
		g := image.NewGray(image.Rect(0, 0, 60, 44))
		for i := range g.Pix {
			g.Pix[i] = uint8(i * 3 % 256)
		}
		var buf bytes.Buffer
		if err := jpeg.Encode(&buf, g, &jpeg.Options{Quality: 90}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	for name, data := range map[string][]byte{"ycbcr": color, "gray": gray} {
		want := decodeGeneric(data)
		got, err := DecodeJPEG(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.W != want.W || got.H != want.H || !bytes.Equal(got.Pix, want.Pix) {
			t.Errorf("%s: fast path differs from generic At() path", name)
		}
	}
}

// TestIntoVariantsBitIdentical drives each *Into op with a reused
// destination across seeds and compares to the allocating originals.
func TestIntoVariantsBitIdentical(t *testing.T) {
	var dstImg Image
	var dstTen Tensor
	for seed := int64(0); seed < 4; seed++ {
		src := SynthesizeImage(DefaultSynthConfig(), seed, int(seed)%10)

		want, err := Crop(src, 10, 20, 100, 90)
		if err != nil {
			t.Fatal(err)
		}
		if err := CropInto(&dstImg, src, 10, 20, 100, 90); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dstImg.Pix, want.Pix) {
			t.Fatalf("seed %d: CropInto differs", seed)
		}

		want, err = CenterCrop(src, ModelSize, ModelSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := CenterCropInto(&dstImg, src, ModelSize, ModelSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dstImg.Pix, want.Pix) {
			t.Fatalf("seed %d: CenterCropInto differs", seed)
		}

		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		want, err = RandomCrop(src, ModelSize, ModelSize, r1)
		if err != nil {
			t.Fatal(err)
		}
		if err := RandomCropInto(&dstImg, src, ModelSize, ModelSize, r2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dstImg.Pix, want.Pix) {
			t.Fatalf("seed %d: RandomCropInto differs", seed)
		}

		wantM := Mirror(src)
		MirrorInto(&dstImg, src)
		if !bytes.Equal(dstImg.Pix, wantM.Pix) {
			t.Fatalf("seed %d: MirrorInto differs", seed)
		}

		r1 = rand.New(rand.NewSource(seed))
		r2 = rand.New(rand.NewSource(seed))
		wantN := GaussianNoise(src, 5, r1)
		GaussianNoiseInto(&dstImg, src, 5, r2)
		if !bytes.Equal(dstImg.Pix, wantN.Pix) {
			t.Fatalf("seed %d: GaussianNoiseInto differs", seed)
		}
		// In-place aliasing path.
		clone := src.Clone()
		r2 = rand.New(rand.NewSource(seed))
		GaussianNoiseInto(clone, clone, 5, r2)
		if !bytes.Equal(clone.Pix, wantN.Pix) {
			t.Fatalf("seed %d: in-place GaussianNoiseInto differs", seed)
		}

		wantR, err := Resize(src, ModelSize, ModelSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := ResizeInto(&dstImg, src, ModelSize, ModelSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dstImg.Pix, wantR.Pix) {
			t.Fatalf("seed %d: ResizeInto differs", seed)
		}

		wantT, err := ToTensor(src, ImagenetMean, ImagenetStd)
		if err != nil {
			t.Fatal(err)
		}
		if err := ToTensorInto(&dstTen, src, ImagenetMean, ImagenetStd); err != nil {
			t.Fatal(err)
		}
		if len(dstTen.Data) != len(wantT.Data) {
			t.Fatalf("seed %d: tensor size differs", seed)
		}
		for i := range wantT.Data {
			if dstTen.Data[i] != wantT.Data[i] {
				t.Fatalf("seed %d: ToTensorInto cell %d differs", seed, i)
			}
		}
	}
}

// TestIntoValidationErrors: invalid arguments must error without
// disturbing the destination.
func TestIntoValidationErrors(t *testing.T) {
	src := NewImage(32, 32)
	var dst Image
	if err := CropInto(&dst, src, 30, 30, 10, 10); err == nil {
		t.Error("out-of-bounds CropInto should fail")
	}
	if err := ResizeInto(&dst, src, 0, 10); err == nil {
		t.Error("zero-size ResizeInto should fail")
	}
	var ten Tensor
	if err := ToTensorInto(&ten, src, []float64{0}, nil); err == nil {
		t.Error("short mean should fail")
	}
	if err := ToTensorInto(&ten, src, nil, []float64{1, 0, 1}); err == nil {
		t.Error("non-positive std should fail")
	}
}

// TestDecodeJPEGAllocs: the fast path plus buffer reuse keeps decode
// allocations bounded by the stdlib decoder's own internals — orders of
// magnitude below the per-pixel boxing it replaced (3·W·H interface
// allocations; ~196k for a 256×256 image).
func TestDecodeJPEGAllocs(t *testing.T) {
	data := synthJPEG(t, 5, 85)
	var dst Image
	if err := DecodeJPEGInto(&dst, data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := DecodeJPEGInto(&dst, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Errorf("DecodeJPEGInto with reused dst allocates %.0f objects/decode, want ≤ 40", allocs)
	}
}

// TestImageTensorReset checks capacity reuse.
func TestImageTensorReset(t *testing.T) {
	var im Image
	im.Reset(16, 16)
	p := &im.Pix[0]
	im.Reset(8, 8)
	if &im.Pix[0] != p {
		t.Error("shrinking Image.Reset should reuse Pix")
	}
	var ten Tensor
	ten.Reset(3, 16, 16)
	q := &ten.Data[0]
	ten.Reset(3, 8, 8)
	if &ten.Data[0] != q {
		t.Error("shrinking Tensor.Reset should reuse Data")
	}
	defer func() {
		if recover() == nil {
			t.Error("Image.Reset with invalid size should panic")
		}
	}()
	im.Reset(0, 4)
}
