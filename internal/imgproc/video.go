package imgproc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// This file implements the video input form the paper names as the next
// preparation target (Section V-C: "when a user wants to add a new data
// preparation functionality (e.g., new input form such as video)", and
// Related Work's video-decoding accelerators). Clips are stored as
// motion-JPEG: independently JPEG-compressed frames in a minimal
// length-prefixed container, which keeps the decode cost per frame
// identical to the image pipeline — the property the FPGA engine
// estimate relies on.

// Video is a decoded clip: frames share one geometry.
type Video struct {
	Frames []*Image
}

// FrameSize returns the clip geometry (0,0 for an empty clip).
func (v *Video) FrameSize() (w, h int) {
	if len(v.Frames) == 0 {
		return 0, 0
	}
	return v.Frames[0].W, v.Frames[0].H
}

// videoMagic guards the container format.
var videoMagic = [4]byte{'t', 'b', 'v', '1'}

// EncodeMJPEG packs the clip as magic + u32 frame count + per-frame
// (u32 length + JPEG bytes), little endian.
func EncodeMJPEG(v *Video, quality int) ([]byte, error) {
	if len(v.Frames) == 0 {
		return nil, fmt.Errorf("imgproc: empty clip")
	}
	w, h := v.FrameSize()
	out := make([]byte, 0, len(v.Frames)*8*1024)
	out = append(out, videoMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(v.Frames)))
	for i, f := range v.Frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("imgproc: frame %d is %dx%d, clip is %dx%d", i, f.W, f.H, w, h)
		}
		data, err := EncodeJPEG(f, quality)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
		out = append(out, data...)
	}
	return out, nil
}

// DecodeMJPEG unpacks and decodes an EncodeMJPEG container. Shim over
// DecodeMJPEGInto with a fresh destination.
func DecodeMJPEG(data []byte) (*Video, error) {
	v := &Video{}
	if err := DecodeMJPEGInto(v, data); err != nil {
		return nil, err
	}
	return v, nil
}

// DecodeMJPEGInto unpacks an EncodeMJPEG container into dst, reusing
// dst's frame images (and their pixel buffers) across calls.
func DecodeMJPEGInto(dst *Video, data []byte) error {
	if len(data) < 8 || [4]byte(data[:4]) != videoMagic {
		return fmt.Errorf("imgproc: not a tbv1 clip")
	}
	count := binary.LittleEndian.Uint32(data[4:8])
	if count == 0 || count > 1<<16 {
		return fmt.Errorf("imgproc: implausible frame count %d", count)
	}
	off := 8
	for i := uint32(0); i < count; i++ {
		if off+4 > len(data) {
			return fmt.Errorf("imgproc: truncated clip header at frame %d", i)
		}
		l := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if off+l > len(data) {
			return fmt.Errorf("imgproc: truncated clip payload at frame %d", i)
		}
		if int(i) < len(dst.Frames) && dst.Frames[i] != nil {
			// reuse the frame's pixel buffer
		} else if int(i) < len(dst.Frames) {
			dst.Frames[i] = &Image{}
		} else {
			dst.Frames = append(dst.Frames, &Image{})
		}
		if err := DecodeJPEGInto(dst.Frames[i], data[off:off+l]); err != nil {
			return fmt.Errorf("imgproc: frame %d: %w", i, err)
		}
		off += l
	}
	dst.Frames = dst.Frames[:count]
	return nil
}

// SynthesizeVideo generates a deterministic clip: the class-colored base
// scene with one shape translating across frames (enough motion that
// temporal sampling matters).
func SynthesizeVideo(cfg SynthConfig, seed int64, class, frames int) (*Video, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("imgproc: need at least one frame")
	}
	if cfg.Size <= 0 {
		cfg.Size = StoredSize
	}
	rng := rand.New(rand.NewSource(seed))
	base := SynthesizeImage(SynthConfig{Size: cfg.Size, Shapes: 4, Quality: cfg.Quality}, seed, class)
	// Moving disk parameters.
	cx := rng.Intn(cfg.Size)
	cy := rng.Intn(cfg.Size)
	dx := 1 + rng.Intn(5)
	dy := 1 + rng.Intn(5)
	radius := 6 + rng.Intn(cfg.Size/8)
	r8, g8, b8 := uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))

	v := &Video{Frames: make([]*Image, frames)}
	for f := 0; f < frames; f++ {
		im := base.Clone()
		px := (cx + f*dx) % cfg.Size
		py := (cy + f*dy) % cfg.Size
		for y := maxInt(0, py-radius); y < minInt(cfg.Size, py+radius); y++ {
			for x := maxInt(0, px-radius); x < minInt(cfg.Size, px+radius); x++ {
				ddx, ddy := x-px, y-py
				if ddx*ddx+ddy*ddy <= radius*radius {
					im.Set(x, y, r8, g8, b8)
				}
			}
		}
		v.Frames[f] = im
	}
	return v, nil
}

// SampleFrames returns count frames uniformly strided across the clip —
// the standard temporal subsampling of video training pipelines.
func (v *Video) SampleFrames(count int) ([]*Image, error) {
	n := len(v.Frames)
	if count <= 0 || count > n {
		return nil, fmt.Errorf("imgproc: cannot sample %d of %d frames", count, n)
	}
	out := make([]*Image, count)
	for i := 0; i < count; i++ {
		out[i] = v.Frames[i*n/count]
	}
	return out, nil
}
