package imgproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResizeShapeAndIdentity(t *testing.T) {
	im := gradientImage(16, 16)
	out, err := Resize(im, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 8 || out.H != 12 {
		t.Fatalf("resized to %dx%d", out.W, out.H)
	}
	// Identity resize reproduces the image exactly (bilinear with
	// aligned centers).
	same, err := Resize(im, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if same.Pix[i] != im.Pix[i] {
			t.Fatalf("identity resize changed pixel %d: %d vs %d", i, same.Pix[i], im.Pix[i])
		}
	}
}

func TestResizeConstantImageStaysConstant(t *testing.T) {
	im := NewImage(10, 10)
	for i := range im.Pix {
		im.Pix[i] = 77
	}
	for _, dims := range [][2]int{{5, 5}, {20, 20}, {3, 17}} {
		out, err := Resize(im, dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out.Pix {
			if v != 77 {
				t.Fatalf("resize %v: pixel %d = %d, want 77", dims, i, v)
			}
		}
	}
}

func TestResizePreservesMeanApproximately(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(32, 32)
		for i := range im.Pix {
			im.Pix[i] = uint8(rng.Intn(256))
		}
		out, err := Resize(im, 16, 16)
		if err != nil {
			return false
		}
		mean := func(p []uint8) float64 {
			var s float64
			for _, v := range p {
				s += float64(v)
			}
			return s / float64(len(p))
		}
		return math.Abs(mean(im.Pix)-mean(out.Pix)) < 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestResizeRejectsBadDims(t *testing.T) {
	im := gradientImage(4, 4)
	if _, err := Resize(im, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Resize(im, 4, -1); err == nil {
		t.Error("negative height accepted")
	}
}

func ricapSources() [4]*Image {
	var srcs [4]*Image
	for i := range srcs {
		im := NewImage(64, 64)
		for p := range im.Pix {
			im.Pix[p] = uint8(50 * (i + 1)) // source i is uniform 50(i+1)
		}
		srcs[i] = im
	}
	return srcs
}

func TestRICAPComposesFourQuadrants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out, weights, err := RICAP(ricapSources(), 48, 48, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 48 || out.H != 48 {
		t.Fatalf("output %dx%d", out.W, out.H)
	}
	// Weights are a probability distribution over the four sources.
	var sum float64
	for q, w := range weights {
		if w <= 0 || w >= 1 {
			t.Errorf("weight[%d] = %v outside (0,1)", q, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	// Every pixel belongs to exactly one uniform source; counts must
	// match the weights exactly.
	counts := map[uint8]int{}
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			r, _, _ := out.At(x, y)
			counts[r]++
		}
	}
	for q, w := range weights {
		want := int(math.Round(w * 48 * 48))
		got := counts[uint8(50*(q+1))]
		if got != want {
			t.Errorf("source %d pixel count = %d, want %d", q, got, want)
		}
	}
}

func TestRICAPPropertyWeightsMatchAreas(t *testing.T) {
	srcs := ricapSources()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, weights, err := RICAP(srcs, 32, 24, rng)
		if err != nil {
			return false
		}
		var sum float64
		for _, w := range weights {
			if w < 0 {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRICAPRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	srcs := ricapSources()
	if _, _, err := RICAP(srcs, 1, 10, rng); err == nil {
		t.Error("degenerate target accepted")
	}
	small := srcs
	small[2] = NewImage(8, 8)
	if _, _, err := RICAP(small, 48, 48, rng); err == nil {
		t.Error("undersized source accepted")
	}
	var withNil [4]*Image
	copy(withNil[:], srcs[:])
	withNil[1] = nil
	if _, _, err := RICAP(withNil, 48, 48, rng); err == nil {
		t.Error("nil source accepted")
	}
}

func TestColorJitterBoundsAndDeterminism(t *testing.T) {
	im := gradientImage(16, 16)
	cfg := JitterConfig{MaxBrightness: 30, MaxContrast: 0.3}
	a := ColorJitter(im, cfg, rand.New(rand.NewSource(4)))
	b := ColorJitter(im, cfg, rand.New(rand.NewSource(4)))
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed, different jitter")
		}
	}
	changed := 0
	for i := range a.Pix {
		if a.Pix[i] != im.Pix[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("jitter changed nothing")
	}
	// Original untouched.
	r, _, _ := im.At(3, 0)
	if r != 3 {
		t.Error("ColorJitter modified its input")
	}
}

func TestColorJitterNoopCases(t *testing.T) {
	im := gradientImage(4, 4)
	for _, out := range []*Image{
		ColorJitter(im, JitterConfig{}, rand.New(rand.NewSource(1))),
		ColorJitter(im, JitterConfig{MaxBrightness: 30}, nil),
	} {
		for i := range im.Pix {
			if out.Pix[i] != im.Pix[i] {
				t.Fatal("noop jitter changed pixels")
			}
		}
	}
}

func TestSynthesizeStripedProperties(t *testing.T) {
	cfg := SynthConfig{Size: 64}
	a := SynthesizeStriped(cfg, 1, 0)
	b := SynthesizeStriped(cfg, 1, 0)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("striped synthesis not deterministic")
		}
	}
	// Grayscale: all three channels equal.
	for y := 0; y < 64; y += 7 {
		for x := 0; x < 64; x += 7 {
			r, g, bl := a.At(x, y)
			if r != g || g != bl {
				t.Fatal("striped image is not grayscale")
			}
		}
	}
	// Equal mean intensity across classes (the no-shortcut property).
	mean := func(im *Image) float64 {
		var s float64
		for _, v := range im.Pix {
			s += float64(v)
		}
		return s / float64(len(im.Pix))
	}
	m0 := mean(SynthesizeStriped(cfg, 5, 0))
	m2 := mean(SynthesizeStriped(cfg, 5, 2))
	if math.Abs(m0-m2) > 12 {
		t.Errorf("class means differ too much: %v vs %v", m0, m2)
	}
	// Different classes produce different stripe patterns.
	c0 := SynthesizeStriped(cfg, 5, 0)
	c2 := SynthesizeStriped(cfg, 5, 2)
	same := true
	for i := range c0.Pix {
		if c0.Pix[i] != c2.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("classes 0 and 2 produced identical stripes")
	}
}
