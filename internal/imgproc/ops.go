package imgproc

import (
	"fmt"
	"math/rand"
)

// Crop extracts the w×h window whose top-left corner is (x, y) — the
// "Crop" engine of Table II.
func Crop(im *Image, x, y, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > im.W || y+h > im.H {
		return nil, fmt.Errorf("imgproc: crop %dx%d@(%d,%d) outside %dx%d", w, h, x, y, im.W, im.H)
	}
	out := NewImage(w, h)
	for row := 0; row < h; row++ {
		srcOff := ((y+row)*im.W + x) * 3
		dstOff := row * w * 3
		copy(out.Pix[dstOff:dstOff+w*3], im.Pix[srcOff:srcOff+w*3])
	}
	return out, nil
}

// CenterCrop extracts the centered w×h window.
func CenterCrop(im *Image, w, h int) (*Image, error) {
	return Crop(im, (im.W-w)/2, (im.H-h)/2, w, h)
}

// RandomCrop extracts a uniformly random w×h window. This is the paper's
// headline augmentation: a 256×256 image yields 32×32 distinct 224×224
// crops, which is why static pre-augmentation needs ~2.2 PB (Section
// III-D).
func RandomCrop(im *Image, w, h int, rng *rand.Rand) (*Image, error) {
	if w > im.W || h > im.H {
		return nil, fmt.Errorf("imgproc: random crop %dx%d larger than %dx%d", w, h, im.W, im.H)
	}
	x := rng.Intn(im.W - w + 1)
	y := rng.Intn(im.H - h + 1)
	return Crop(im, x, y, w, h)
}

// NumDistinctCrops returns how many distinct w×h crop positions an
// image offers ((W−w+1)·(H−h+1)); used by the storage-overhead analysis.
func NumDistinctCrops(imW, imH, w, h int) int {
	if w > imW || h > imH {
		return 0
	}
	return (imW - w + 1) * (imH - h + 1)
}

// Mirror returns the horizontally flipped image — the "Mirror" engine of
// Table II.
func Mirror(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out.Set(im.W-1-x, y, r, g, b)
		}
	}
	return out
}

// GaussianNoise adds clamped zero-mean Gaussian noise with the given
// standard deviation (in 8-bit counts) to every channel — the "Gaussian
// noise" engine of Table II. A nil rng or non-positive stddev returns an
// unmodified copy.
func GaussianNoise(im *Image, stddev float64, rng *rand.Rand) *Image {
	out := im.Clone()
	if rng == nil || stddev <= 0 {
		return out
	}
	for i, v := range out.Pix {
		out.Pix[i] = clampU8(float64(v) + rng.NormFloat64()*stddev)
	}
	return out
}

// Tensor is a float32 CHW tensor: Data[c*H*W + y*W + x].
type Tensor struct {
	C, H, W int
	Data    []float32
}

// Bytes returns the tensor's memory footprint: 4·C·H·W. For a 224×224
// RGB image this is 602,112 bytes — the "amplified data size due to
// decompression and type casting" the paper attributes data-load traffic
// to (Section III-C).
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// At returns the value at channel c, row y, column x.
func (t *Tensor) At(c, y, x int) float32 { return t.Data[c*t.H*t.W+y*t.W+x] }

// ToTensor casts the image to a float32 CHW tensor — the "Cast" engine
// of Table II — normalizing each channel as (v/255 − mean[c]) / std[c].
// Nil mean/std default to 0 and 1 (plain [0,1] scaling).
func ToTensor(im *Image, mean, std []float64) (*Tensor, error) {
	if mean == nil {
		mean = []float64{0, 0, 0}
	}
	if std == nil {
		std = []float64{1, 1, 1}
	}
	if len(mean) != 3 || len(std) != 3 {
		return nil, fmt.Errorf("imgproc: mean/std must have 3 channels, got %d/%d", len(mean), len(std))
	}
	for c, s := range std {
		if s <= 0 {
			return nil, fmt.Errorf("imgproc: std[%d] = %v must be positive", c, s)
		}
	}
	t := &Tensor{C: 3, H: im.H, W: im.W, Data: make([]float32, 3*im.H*im.W)}
	plane := im.H * im.W
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := (y*im.W + x) * 3
			for c := 0; c < 3; c++ {
				v := (float64(im.Pix[i+c])/255 - mean[c]) / std[c]
				t.Data[c*plane+y*im.W+x] = float32(v)
			}
		}
	}
	return t, nil
}

// ImagenetMean and ImagenetStd are the conventional per-channel
// normalization constants for Imagenet-trained models.
var (
	ImagenetMean = []float64{0.485, 0.456, 0.406}
	ImagenetStd  = []float64{0.229, 0.224, 0.225}
)
