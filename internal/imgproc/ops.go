package imgproc

import (
	"math/rand"
)

// Crop extracts the w×h window whose top-left corner is (x, y) — the
// "Crop" engine of Table II. Shim over CropInto with a fresh
// destination.
func Crop(im *Image, x, y, w, h int) (*Image, error) {
	out := &Image{}
	if err := CropInto(out, im, x, y, w, h); err != nil {
		return nil, err
	}
	return out, nil
}

// CenterCrop extracts the centered w×h window.
func CenterCrop(im *Image, w, h int) (*Image, error) {
	return Crop(im, (im.W-w)/2, (im.H-h)/2, w, h)
}

// RandomCrop extracts a uniformly random w×h window. This is the paper's
// headline augmentation: a 256×256 image yields 32×32 distinct 224×224
// crops, which is why static pre-augmentation needs ~2.2 PB (Section
// III-D).
func RandomCrop(im *Image, w, h int, rng *rand.Rand) (*Image, error) {
	out := &Image{}
	if err := RandomCropInto(out, im, w, h, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// NumDistinctCrops returns how many distinct w×h crop positions an
// image offers ((W−w+1)·(H−h+1)); used by the storage-overhead analysis.
func NumDistinctCrops(imW, imH, w, h int) int {
	if w > imW || h > imH {
		return 0
	}
	return (imW - w + 1) * (imH - h + 1)
}

// Mirror returns the horizontally flipped image — the "Mirror" engine of
// Table II. Shim over MirrorInto with a fresh destination.
func Mirror(im *Image) *Image {
	out := &Image{}
	MirrorInto(out, im)
	return out
}

// GaussianNoise adds clamped zero-mean Gaussian noise with the given
// standard deviation (in 8-bit counts) to every channel — the "Gaussian
// noise" engine of Table II. A nil rng or non-positive stddev returns an
// unmodified copy. Shim over GaussianNoiseInto with a fresh destination.
func GaussianNoise(im *Image, stddev float64, rng *rand.Rand) *Image {
	out := &Image{}
	GaussianNoiseInto(out, im, stddev, rng)
	return out
}

// Tensor is a float32 CHW tensor: Data[c*H*W + y*W + x].
type Tensor struct {
	C, H, W int
	Data    []float32
}

// Bytes returns the tensor's memory footprint: 4·C·H·W. For a 224×224
// RGB image this is 602,112 bytes — the "amplified data size due to
// decompression and type casting" the paper attributes data-load traffic
// to (Section III-C).
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// At returns the value at channel c, row y, column x.
func (t *Tensor) At(c, y, x int) float32 { return t.Data[c*t.H*t.W+y*t.W+x] }

// ToTensor casts the image to a float32 CHW tensor — the "Cast" engine
// of Table II — normalizing each channel as (v/255 − mean[c]) / std[c].
// Nil mean/std default to 0 and 1 (plain [0,1] scaling). Shim over
// ToTensorInto with a fresh destination.
func ToTensor(im *Image, mean, std []float64) (*Tensor, error) {
	t := &Tensor{}
	if err := ToTensorInto(t, im, mean, std); err != nil {
		return nil, err
	}
	return t, nil
}

// ImagenetMean and ImagenetStd are the conventional per-channel
// normalization constants for Imagenet-trained models.
var (
	ImagenetMean = []float64{0.485, 0.456, 0.406}
	ImagenetStd  = []float64{0.229, 0.224, 0.225}
)
