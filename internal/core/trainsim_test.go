package core

import (
	"math"
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/report"
	"trainbox/internal/workload"
)

// TestTrainingReplayMatchesMinRule: the overlapped pipeline's steady
// throughput must converge to min(prep rate, compute rate) — the paper's
// Figure 1 composition — for both a prep-bound and a compute-bound
// system.
func TestTrainingReplayMatchesMinRule(t *testing.T) {
	cases := []struct {
		kind arch.Kind
		name string
	}{
		{arch.Baseline, "Resnet-50"}, // prep-bound at 256
		{arch.TrainBox, "VGG-19"},    // compute-bound at 256
	}
	for _, c := range cases {
		w, err := workload.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		sys := mustBuild(t, arch.Config{Kind: c.kind, NumAccels: 256})
		analytic, err := Solve(sys, w)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := SimulateTraining(sys, w, 50)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(replay.Throughput)-float64(analytic.Throughput)) /
			float64(analytic.Throughput)
		if rel > 0.05 {
			t.Errorf("%v/%s: replay %v vs analytic %v (%.1f%%)",
				c.kind, c.name, replay.Throughput, analytic.Throughput, 100*rel)
		}
	}
}

// TestTrainingReplayIdleSides: the slack must sit on the non-bottleneck
// side — accelerators idle when prep-bound, preparation idle when
// compute-bound.
func TestTrainingReplayIdleSides(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")

	prepBound := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 256})
	r1, err := SimulateTraining(prepBound, w, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AccelIdle < 0.5 {
		t.Errorf("prep-bound system: accel idle = %.2f, want large", r1.AccelIdle)
	}
	if r1.PrepIdle > 0.05 {
		t.Errorf("prep-bound system: prep idle = %.2f, want ≈0", r1.PrepIdle)
	}

	w2, _ := workload.ByName("VGG-19")
	computeBound := mustBuild(t, arch.Config{Kind: arch.TrainBox, NumAccels: 256})
	r2, err := SimulateTraining(computeBound, w2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r2.PrepIdle < 0.1 {
		t.Errorf("compute-bound system: prep idle = %.2f, want > 0.1", r2.PrepIdle)
	}
	if r2.AccelIdle > 0.05 {
		t.Errorf("compute-bound system: accel idle = %.2f, want ≈0", r2.AccelIdle)
	}
}

// TestTrainingReplayOverlapBeatsSerial: with overlap, total time is
// ≈ max(prep, compute) per step, not the sum — the whole point of
// next-batch prefetching.
func TestTrainingReplayOverlapBeatsSerial(t *testing.T) {
	w, _ := workload.ByName("Inception-v4")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 16})
	res, err := Solve(sys, w)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := SimulateTraining(sys, w, 60)
	if err != nil {
		t.Fatal(err)
	}
	global := float64(16 * w.BatchSize)
	prepTime := global / float64(res.PrepRate)
	computeTime := global / float64(res.ComputeRate)
	serialPerStep := prepTime + computeTime
	overlapPerStep := replay.Elapsed / float64(replay.Steps)
	if overlapPerStep > 0.9*serialPerStep {
		t.Errorf("overlap per-step %v not better than serial %v", overlapPerStep, serialPerStep)
	}
	wantPerStep := math.Max(prepTime, computeTime)
	if math.Abs(overlapPerStep-wantPerStep)/wantPerStep > 0.1 {
		t.Errorf("per-step %v, want ≈max(prep,compute)=%v", overlapPerStep, wantPerStep)
	}
}

func TestTrainingReplayValidation(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 8})
	if _, err := SimulateTraining(sys, w, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestTrainingReplayTimeline(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 64})
	replay, err := SimulateTraining(sys, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	prepSpans, computeSpans := 0, 0
	for _, s := range replay.Timeline {
		if s.End <= s.Start {
			t.Fatalf("empty span %+v", s)
		}
		switch s.Lane {
		case "prep":
			prepSpans++
		case "compute":
			computeSpans++
		default:
			t.Fatalf("unknown lane %q", s.Lane)
		}
	}
	if computeSpans != 10 {
		t.Errorf("compute spans = %d, want 10", computeSpans)
	}
	if prepSpans != 10 {
		t.Errorf("prep spans = %d, want 10", prepSpans)
	}
	if out := report.Gantt("t", replay.Timeline, 60); out == "" {
		t.Error("timeline did not render")
	}
}
