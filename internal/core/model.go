// Package core is the TrainBox system model: given a server architecture
// (internal/arch), a workload (internal/workload), and a scale, it
// computes steady-state training throughput, the binding bottleneck, host
// resource requirements, latency decompositions, and prep-pool sizing —
// the quantities behind every figure in the paper's evaluation.
//
// Training is a two-stage pipeline (Figure 1 with next-batch prefetching):
// data preparation for batch i+1 overlaps model computation +
// synchronization for batch i, so
//
//	throughput = min(prep throughput, compute+sync throughput).
//
// Preparation throughput is a bottleneck analysis: each prepared sample
// places demands on host CPU seconds, host DRAM bytes, bytes on every
// PCIe link its datapath crosses, root-complex switching, SSD read
// bandwidth, preparation-device time, and (for pooled samples) Ethernet
// bytes. The architecture defines the datapath; the binding resource
// defines the rate. A discrete-event replay (dessim.go) validates the
// analytical answer.
package core

import (
	"fmt"
	"math"

	"trainbox/internal/accel"
	"trainbox/internal/arch"
	"trainbox/internal/fpga"
	"trainbox/internal/pcie"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// Preparation-device throughput constants beyond the FPGA (Section V-B's
// device discussion). GPUs handle data formatting poorly ("there is no
// good parallel algorithm for the Huffman decoding phase"), so their
// rates sit well below the FPGA's; Xeon Phi behaves like a pool of slow
// cores (the paper: "more than 37.8 cores/accelerator or 0.52
// device/accelerator").
const (
	// GPUImagePrepRate is one GPU's image preparation throughput.
	GPUImagePrepRate units.SamplesPerSec = 2000
	// GPUAudioPrepRate is one GPU's audio preparation throughput (many
	// small FFTs vectorize poorly).
	GPUAudioPrepRate units.SamplesPerSec = 1000
	// PhiCoreEquivalents is one Xeon Phi's worth of host-core-equivalent
	// compute (72 cores at half the Xeon clock).
	PhiCoreEquivalents = 36.0
)

// Constraint names used in Result.Bottleneck.
const (
	ConstraintCPU      = "host-cpu"
	ConstraintMemory   = "host-memory-bw"
	ConstraintRC       = "pcie-root-complex"
	ConstraintLink     = "pcie-link"
	ConstraintSSD      = "ssd-read"
	ConstraintPrep     = "prep-device"
	ConstraintEthernet = "prep-pool-ethernet"
	ConstraintCompute  = "accel-compute+sync"
)

// Result is the solved steady state for one (architecture, workload,
// batch) point.
type Result struct {
	// Throughput is the end-to-end training throughput.
	Throughput units.SamplesPerSec
	// PrepRate is the data-preparation stage's maximum rate.
	PrepRate units.SamplesPerSec
	// ComputeRate is the model computation + synchronization stage's rate.
	ComputeRate units.SamplesPerSec
	// Bottleneck names the binding constraint.
	Bottleneck string
	// Constraints maps every modelled constraint to the rate it alone
	// would allow.
	Constraints map[string]units.SamplesPerSec
	// PrepBound reports whether data preparation limits the system —
	// the paper's central claim at scale.
	PrepBound bool
}

// Solve computes the steady-state result at the workload's Table I batch
// size.
func Solve(sys *arch.System, w workload.Workload) (Result, error) {
	return SolveBatch(sys, w, w.BatchSize)
}

// SolveBatch computes the steady-state result at an explicit per-
// accelerator batch size.
func SolveBatch(sys *arch.System, w workload.Workload, batch int) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if batch <= 0 {
		return Result{}, fmt.Errorf("core: batch size %d", batch)
	}
	cons := map[string]units.SamplesPerSec{}

	// Stage (b): model computation + synchronization.
	cluster, err := accel.NewCluster(len(sys.Accels))
	if err != nil {
		return Result{}, err
	}
	computeRate := cluster.Throughput(w, batch)
	cons[ConstraintCompute] = computeRate

	// Stage (a): data preparation.
	// Host CPU.
	cpu := cpuSecondsPerSample(sys.Config.Kind, w)
	if cpu > 0 {
		cons[ConstraintCPU] = units.SamplesPerSec(float64(sys.Config.Host.Cores) / cpu)
	}
	// Host DRAM bandwidth.
	mem := memoryBytesPerSample(sys.Config.Kind, w)
	if mem > 0 {
		cons[ConstraintMemory] = units.SamplesPerSec(float64(sys.Config.Host.MemoryBandwidth) / float64(mem))
	}
	// PCIe fabric: route one sample's flows, find the busiest link and
	// the root-complex aggregate.
	ll := prepLinkLoad(sys, w)
	if sec, _, _ := ll.MaxUnitTime(); sec > 0 {
		cons[ConstraintLink] = units.SamplesPerSec(1 / sec)
	}
	if rcBytes := ll.RootComplexLoad(); rcBytes > 0 {
		cons[ConstraintRC] = units.SamplesPerSec(float64(sys.RCCap) / float64(rcBytes))
	}
	// SSD device read bandwidth.
	if w.Prep.StoredBytes > 0 && len(sys.SSDs) > 0 {
		total := float64(sys.Config.SSD.ReadBandwidth) * float64(len(sys.SSDs))
		cons[ConstraintSSD] = units.SamplesPerSec(total / float64(w.Prep.StoredBytes))
	}
	// Preparation device capacity (the TrainBox value already folds in
	// the prep-pool and its Ethernet ceiling).
	if prepCap := prepDeviceCapacity(sys, w); prepCap > 0 {
		cons[ConstraintPrep] = prepCap
	}

	res := Result{Constraints: cons}
	res.Throughput = units.SamplesPerSec(math.Inf(1))
	for name, rate := range cons {
		if float64(rate) < float64(res.Throughput) {
			res.Throughput = rate
			res.Bottleneck = name
		}
	}
	res.ComputeRate = computeRate
	res.PrepRate = units.SamplesPerSec(math.Inf(1))
	for name, rate := range cons {
		if name == ConstraintCompute {
			continue
		}
		if float64(rate) < float64(res.PrepRate) {
			res.PrepRate = rate
		}
	}
	res.PrepBound = res.Bottleneck != ConstraintCompute
	return res, nil
}

// cpuSecondsPerSample returns the host CPU demand per prepared sample
// under each architecture:
//
//   - Baseline: the full preparation pipeline runs on host cores.
//   - B+Acc: formatting and augmentation are offloaded; the host still
//     stages data (OpLoad) and runs drivers/framework (OpOther).
//   - P2P variants: staging disappears with the host-memory bounce; the
//     NVMe driver work moves into the FPGA's P2P handler ("further
//     reduces the CPU utilization by removing the NVMe driver overhead"),
//     leaving OpOther.
//   - TrainBox: offloaded device interaction also cuts user/kernel
//     switching (Section V-A), cutting the residual to an eighth.
func cpuSecondsPerSample(k arch.Kind, w workload.Workload) float64 {
	p := w.Prep
	switch {
	case k == arch.Baseline:
		return p.TotalCPUSeconds()
	case !k.UsesP2P():
		return p.CPUSeconds[workload.OpLoad] + p.CPUSeconds[workload.OpOther]
	case !k.Clustered():
		return p.CPUSeconds[workload.OpOther]
	default:
		return p.CPUSeconds[workload.OpOther] / 8
	}
}

// memoryBytesPerSample returns host DRAM traffic per prepared sample:
// the full profile for the baseline; pure staging (item in and out, twice
// — once toward the FPGA, once toward the accelerator) for B+Acc; nothing
// on the data path once P2P removes the host bounce.
func memoryBytesPerSample(k arch.Kind, w workload.Workload) units.Bytes {
	p := w.Prep
	switch {
	case k == arch.Baseline:
		return p.TotalMemoryBytes()
	case !k.UsesP2P():
		return 2 * (p.StoredBytes + p.TensorBytes)
	default:
		return p.MemoryBytes[workload.OpOther] / 8 // residual descriptors
	}
}

// prepLinkLoad routes one prepared sample's PCIe transfers through the
// topology, spreading uniformly over the participating devices.
func prepLinkLoad(sys *arch.System, w workload.Workload) *pcie.LinkLoad {
	ll := pcie.NewLinkLoad(sys.Topo)
	stored := w.Prep.StoredBytes
	tensor := w.Prep.TensorBytes
	nS, nA, nP := len(sys.SSDs), len(sys.Accels), len(sys.PrepAccels)

	switch k := sys.Config.Kind; {
	case k == arch.Baseline:
		// SSD → host(root) → accelerator.
		for _, s := range sys.SSDs {
			ll.AddTransfer(s, sys.Root, stored/units.Bytes(nS))
		}
		for _, a := range sys.Accels {
			ll.AddTransfer(sys.Root, a, tensor/units.Bytes(nA))
		}
	case !k.UsesP2P():
		// SSD → host → FPGA → host → accelerator.
		for _, s := range sys.SSDs {
			ll.AddTransfer(s, sys.Root, stored/units.Bytes(nS))
		}
		for _, p := range sys.PrepAccels {
			ll.AddTransfer(sys.Root, p, stored/units.Bytes(nP))
			ll.AddTransfer(p, sys.Root, tensor/units.Bytes(nP))
		}
		for _, a := range sys.Accels {
			ll.AddTransfer(sys.Root, a, tensor/units.Bytes(nA))
		}
	case !k.Clustered():
		// P2P but type-grouped boxes: direct routes, still through RC.
		for _, s := range sys.SSDs {
			for _, p := range sys.PrepAccels {
				ll.AddTransfer(s, p, stored/units.Bytes(nS*nP))
			}
		}
		for _, p := range sys.PrepAccels {
			for _, a := range sys.Accels {
				ll.AddTransfer(p, a, tensor/units.Bytes(nP*nA))
			}
		}
	default:
		// TrainBox: all flows stay inside each train box. Pool-prepared
		// samples follow the same PCIe path (raw in over the SSD link and
		// out/in over Ethernet, tensor out over the FPGA link), so PCIe
		// loads are independent of pooling.
		for _, g := range sys.Boxes {
			share := units.Bytes(float64(len(g.Accels)) / float64(nA))
			for _, s := range g.SSDs {
				for _, p := range g.FPGAs {
					ll.AddTransfer(s, p, stored*share/units.Bytes(len(g.SSDs)*len(g.FPGAs)))
				}
			}
			for _, p := range g.FPGAs {
				for _, a := range g.Accels {
					ll.AddTransfer(p, a, tensor*share/units.Bytes(len(g.FPGAs)*len(g.Accels)))
				}
			}
		}
	}
	return ll
}

// prepDeviceCapacity returns the preparation-device rate limit: 0 for
// CPU prep (covered by the host CPU constraint), the device-array
// capacity for the flat offloaded architectures, and in-box capacity
// plus Ethernet-capped pool capacity for TrainBox.
func prepDeviceCapacity(sys *arch.System, w workload.Workload) units.SamplesPerSec {
	k := sys.Config.Kind
	if k == arch.Baseline {
		return 0
	}
	perDev := perDevicePrepRate(sys.Config.Prep, w)
	n := len(sys.PrepAccels)
	inBox := units.SamplesPerSec(float64(perDev) * float64(n))
	if !k.Clustered() || !k.HasPool() || sys.PoolNet == nil {
		return inBox
	}
	// Pool capacity shared across boxes, capped by the Ethernet ceiling
	// on shipping raw items out and prepared tensors back through the
	// in-box FPGAs' ports. Only the pooled fraction pays Ethernet.
	pooled := float64(perDev) * float64(sys.Config.PoolFPGAs)
	if offload := w.Prep.StoredBytes + w.Prep.TensorBytes; offload > 0 {
		ethCap := float64(sys.PoolNet.Link().Bandwidth) * float64(n) / float64(offload)
		if pooled > ethCap {
			pooled = ethCap
		}
	}
	return inBox + units.SamplesPerSec(pooled)
}

// perDevicePrepRate returns one preparation device's throughput for the
// workload's input type.
func perDevicePrepRate(d arch.PrepDevice, w workload.Workload) units.SamplesPerSec {
	switch d {
	case arch.PrepGPU:
		if w.Type == workload.Audio {
			return GPUAudioPrepRate
		}
		return GPUImagePrepRate
	case arch.PrepXeonPhi:
		return units.SamplesPerSec(PhiCoreEquivalents / w.Prep.TotalCPUSeconds())
	default:
		return fpga.PrepRate(w.Type)
	}
}
