package core

import (
	"fmt"
	"math"

	"trainbox/internal/arch"
	"trainbox/internal/units"
	"trainbox/internal/workload"
)

// InferenceConfig describes a serving deployment on the same hardware.
// The paper scopes its evaluation to training but notes "our insight is
// generally applicable to the inference as well" (Section II-A); this
// model makes that claim checkable. Inference differs from training in
// three ways that matter to the balance analysis:
//
//   - no model synchronization (each accelerator serves independently);
//   - forward pass only, so the accelerator consumes samples faster
//     (SpeedupOverTraining ≈ 3: no backward pass or weight update);
//   - small batches bounded by a latency SLO rather than the largest
//     batch that fits.
//
// All three *raise* the per-accelerator input demand or keep preparation
// cost constant, so the preparation wall arrives at an even smaller
// accelerator count than in training.
type InferenceConfig struct {
	// BatchSize is the serving batch (latency-bounded; typically ≪ the
	// training batch).
	BatchSize int
	// SpeedupOverTraining is the forward-only rate multiplier.
	SpeedupOverTraining float64
}

// DefaultInferenceConfig returns a throughput-oriented serving
// deployment: batch 256 (a common SLO-compatible size for offline and
// bulk serving) at 3× the forward-only rate. At this point the
// per-accelerator input demand exceeds the training demand, so the
// preparation wall arrives at an even smaller accelerator count.
// Latency-critical deployments with tiny batches trade that away:
// their accelerators run far below peak, which *relaxes* preparation —
// the trade-off InferenceSaturation lets callers explore.
func DefaultInferenceConfig() InferenceConfig {
	return InferenceConfig{BatchSize: 256, SpeedupOverTraining: 3}
}

// InferenceRate returns one accelerator's serving throughput for the
// workload under the config.
func InferenceRate(w workload.Workload, cfg InferenceConfig) units.SamplesPerSec {
	base := w.EffectiveAccelRate(cfg.BatchSize)
	return units.SamplesPerSec(float64(base) * cfg.SpeedupOverTraining)
}

// SolveInference computes the serving steady state on a built system:
// the same preparation constraints as training, a compute stage with no
// synchronization, and the forward-only rate.
func SolveInference(sys *arch.System, w workload.Workload, cfg InferenceConfig) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.BatchSize <= 0 || cfg.SpeedupOverTraining <= 0 {
		return Result{}, fmt.Errorf("core: invalid inference config %+v", cfg)
	}
	// Reuse the training solver for the preparation side, then replace
	// the compute constraint with the sync-free serving rate.
	res, err := SolveBatch(sys, w, cfg.BatchSize)
	if err != nil {
		return Result{}, err
	}
	serve := units.SamplesPerSec(float64(len(sys.Accels)) * float64(InferenceRate(w, cfg)))
	res.Constraints[ConstraintCompute] = serve
	res.ComputeRate = serve

	res.Throughput = units.SamplesPerSec(math.Inf(1))
	for name, rate := range res.Constraints {
		if float64(rate) < float64(res.Throughput) {
			res.Throughput = rate
			res.Bottleneck = name
		}
	}
	res.PrepBound = res.Bottleneck != ConstraintCompute
	return res, nil
}

// InferenceSaturation returns the accelerator count at which the
// baseline's preparation capacity equals the serving demand — where the
// preparation wall arrives for inference.
func InferenceSaturation(w workload.Workload, cfg InferenceConfig) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	// Use the at-scale system so per-accelerator link effects (which
	// vanish as accelerators multiply) do not distort the host-side
	// preparation ceiling.
	sys, err := arch.Build(arch.Config{Kind: arch.Baseline, NumAccels: workload.TargetAccelerators})
	if err != nil {
		return 0, err
	}
	res, err := SolveInference(sys, w, cfg)
	if err != nil {
		return 0, err
	}
	perAccel := float64(InferenceRate(w, cfg))
	return float64(res.PrepRate) / perAccel, nil
}
