package core

import (
	"math"
	"testing"

	"trainbox/internal/arch"
	"trainbox/internal/workload"
)

func TestFig9PrepDominatesAtScale(t *testing.T) {
	// Figure 9 / Section III-B: "data preparation accounts for 98.1% of
	// the total latency" on average at 256 accelerators.
	var sum float64
	for _, w := range workload.Workloads() {
		b, err := DecomposeBaseline(w, 256)
		if err != nil {
			t.Fatal(err)
		}
		share := b.PrepShare()
		if share < 0.90 {
			t.Errorf("%s prep share = %.3f, want ≥0.90 at 256 accels", w.Name, share)
		}
		sum += share
	}
	if avg := sum / 7; avg < 0.93 || avg > 1 {
		t.Errorf("average prep share = %.3f, want ≈0.98", avg)
	}
}

func TestFig9PrepMinorAtSmallScale(t *testing.T) {
	// At 1 accelerator the historical picture holds: compute dominates.
	for _, w := range workload.Workloads() {
		b, err := DecomposeBaseline(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b.PrepShare() > 0.5 {
			t.Errorf("%s prep share at n=1 = %.3f, want < 0.5", w.Name, b.PrepShare())
		}
	}
}

func TestFig3LadderShiftsBottleneckToPrep(t *testing.T) {
	// Figure 3: as accelerator, interconnect, and synchronization improve
	// left to right, preparation's share of latency rises from minor to
	// dominant (54.9× the others in the final configuration).
	w, _ := workload.ByName("Resnet-50")
	ladder := Fig3Ladder()
	if len(ladder) != 4 {
		t.Fatalf("ladder has %d rungs, want 4", len(ladder))
	}
	var shares []float64
	for _, cfg := range ladder {
		b, err := DecomposeFig3(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, b.PrepShare())
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] < shares[i-1]-1e-9 {
			t.Errorf("prep share fell at rung %d: %v", i, shares)
		}
	}
	if shares[0] > 0.25 {
		t.Errorf("Current-config prep share = %.3f, should be minor", shares[0])
	}
	// Final rung: prep is tens of times the others.
	final, _ := DecomposeFig3(w, ladder[3])
	ratio := final.PrepTotal() / final.OthersTotal()
	if ratio < 20 || ratio > 100 {
		t.Errorf("final prep/others = %.1f×, paper reports 54.9×", ratio)
	}
	if _, err := DecomposeFig3(w, Fig3Config{}); err == nil {
		t.Error("empty fig3 config accepted")
	}
}

func TestRequirementsMatchFig10Anchors(t *testing.T) {
	// Figure 10 at 256 accelerators: CPU up to ~100× DGX-2 (we land at
	// ~90× with the TF-AA calibration), memory up to ~18×, and the
	// accelerator:core ratio far above DGX-2's 3:1.
	var maxCPU, maxMem, maxPCIe, maxCores float64
	for _, w := range workload.Workloads() {
		r, err := RequiredResources(w, 256)
		if err != nil {
			t.Fatal(err)
		}
		if r.CPU <= 0 || r.MemoryBW <= 0 || r.PCIeBW <= 0 {
			t.Errorf("%s: degenerate requirements %+v", w.Name, r)
		}
		maxCPU = math.Max(maxCPU, r.CPU)
		maxMem = math.Max(maxMem, r.MemoryBW)
		maxPCIe = math.Max(maxPCIe, r.PCIeBW)
		maxCores = math.Max(maxCores, r.Cores)
	}
	if maxCPU < 60 || maxCPU > 130 {
		t.Errorf("max CPU requirement = %.1f× DGX-2, paper reports up to 100.7×", maxCPU)
	}
	if maxMem < 10 || maxMem > 25 {
		t.Errorf("max memory requirement = %.1f× DGX-2, paper reports up to 17.9×", maxMem)
	}
	if maxPCIe < 3 {
		t.Errorf("max PCIe requirement = %.1f× DGX-2, should be several ×", maxPCIe)
	}
	// "the system should support up to 4,833 cores".
	if maxCores < 3000 || maxCores > 6500 {
		t.Errorf("max cores = %.0f, paper reports 4,833", maxCores)
	}
}

func TestRequirementsScaleLinearlyUntilSync(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sweep, err := RequirementSweep(w, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Doubling accelerators ≈ doubles every requirement (sync overhead is
	// negligible at the table batch).
	for i := 1; i < len(sweep); i++ {
		ratio := sweep[i].CPU / sweep[i-1].CPU
		if ratio < 1.9 || ratio > 2.0+1e-9 {
			t.Errorf("CPU requirement ratio at step %d = %.3f, want ≈2", i, ratio)
		}
	}
	if _, err := RequiredResources(w, 0); err == nil {
		t.Error("zero accels accepted")
	}
}

func TestDefaultScalesCoverPaperAxis(t *testing.T) {
	s := DefaultScales()
	if s[0] != 1 || s[len(s)-1] != 256 {
		t.Errorf("scales = %v, want 1..256", s)
	}
}

func TestUtilizationLadderFig22(t *testing.T) {
	for _, name := range []string{"Resnet-50", "TF-SR"} {
		w, _ := workload.ByName(name)
		ladder, err := UtilizationLadder(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(ladder) != 4 {
			t.Fatalf("ladder rungs = %d, want 4", len(ladder))
		}
		base, bacc, p2p, tb := ladder[0], ladder[1], ladder[2], ladder[3]

		// Baseline totals are 1 by construction.
		if math.Abs(base.CPUTotal()-1) > 1e-9 || math.Abs(base.MemoryTotal()-1) > 1e-9 ||
			math.Abs(base.PCIeTotal()-1) > 1e-9 {
			t.Errorf("%s baseline totals != 1: %v %v %v", name,
				base.CPUTotal(), base.MemoryTotal(), base.PCIeTotal())
		}
		// Acceleration slashes CPU (Figure 22's first panel).
		if bacc.CPUTotal() > 0.2 {
			t.Errorf("%s B+Acc CPU = %.3f, want ≤0.2", name, bacc.CPUTotal())
		}
		// P2P removes nearly all memory traffic.
		if p2p.MemoryTotal() > 0.05 {
			t.Errorf("%s P2P memory = %.3f, want ≈0", name, p2p.MemoryTotal())
		}
		// But acceleration doubles PCIe pressure until clustering.
		if math.Abs(bacc.PCIeTotal()-2) > 0.01 || math.Abs(p2p.PCIeTotal()-2) > 0.01 {
			t.Errorf("%s B+Acc/P2P PCIe = %.2f/%.2f, want 2.0 (Section IV-D)",
				name, bacc.PCIeTotal(), p2p.PCIeTotal())
		}
		// TrainBox frees everything.
		if tb.CPUTotal() > 0.05 || tb.MemoryTotal() > 0.05 || tb.PCIeTotal() > 0.05 {
			t.Errorf("%s TrainBox residuals too high: %v %v %v", name,
				tb.CPUTotal(), tb.MemoryTotal(), tb.PCIeTotal())
		}
	}
}

func TestUtilizationRejectsDegenerateWorkload(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	w.AccelRate = 0
	if _, err := UtilizationLadder(w); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestBaselinePerSample(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	d := BaselinePerSample(w)
	if d.CPUSeconds != w.Prep.TotalCPUSeconds() || d.RCBytes != w.Prep.StoredBytes+w.Prep.TensorBytes {
		t.Errorf("BaselinePerSample = %+v", d)
	}
}

func TestInitializerSizesPoolLikePaper(t *testing.T) {
	keys := make([]string, 320)
	for i := range keys {
		keys[i] = "k"
	}
	// TF-SR: every box draws ≈54% extra resources (Section VI-D).
	wTFSR, _ := workload.ByName("TF-SR")
	sysTB := mustBuild(t, arch.Config{Kind: arch.TrainBox, NumAccels: 256})
	plan, err := InitializeTraining(sysTB, wTFSR, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Error("TF-SR plan infeasible with the pool")
	}
	if len(plan.PerBox) != 32 || len(plan.Shards) != 32 {
		t.Fatalf("plan shape: %d boxes, %d shards", len(plan.PerBox), len(plan.Shards))
	}
	for i, alloc := range plan.PerBox {
		if math.Abs(alloc.ExtraResourceFraction-0.54) > 0.08 {
			t.Errorf("box %d extra fraction = %.2f, want ≈0.54", i, alloc.ExtraResourceFraction)
		}
	}
	if plan.RequiredPrepRate <= 0 || plan.BatchTime <= 0 {
		t.Errorf("degenerate plan: %+v", plan)
	}

	// Inception-v4 needs no pool at all.
	wInc, _ := workload.ByName("Inception-v4")
	plan2, err := InitializeTraining(sysTB, wInc, keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.PoolFPGAsUsed != 0 || !plan2.Feasible {
		t.Errorf("Inception plan used %d pool FPGAs, want 0", plan2.PoolFPGAsUsed)
	}
}

func TestInitializerNoPoolReportsInfeasible(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	w, _ := workload.ByName("TF-SR")
	sys := mustBuild(t, arch.Config{Kind: arch.TrainBoxNoPool, NumAccels: 256})
	plan, err := InitializeTraining(sys, w, keys)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Error("TF-SR without pool should be infeasible at the target rate")
	}
}

func TestInitializerRejectsFlatSystems(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 8})
	if _, err := InitializeTraining(sys, w, []string{"a"}); err == nil {
		t.Error("flat system accepted by initializer")
	}
}

// TestDESMatchesAnalyticalBaseline cross-validates the event-level replay
// against the closed-form solver for the baseline architecture.
func TestDESMatchesAnalyticalBaseline(t *testing.T) {
	for _, name := range []string{"Resnet-50", "TF-SR"} {
		w, _ := workload.ByName(name)
		sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 256})
		analytic, err := Solve(sys, w)
		if err != nil {
			t.Fatal(err)
		}
		des, err := SimulatePrep(sys, w, DefaultSimOptions())
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(des.Throughput)-float64(analytic.PrepRate)) / float64(analytic.PrepRate)
		if rel > 0.05 {
			t.Errorf("%s: DES %v vs analytic prep %v (%.1f%% apart)",
				name, des.Throughput, analytic.PrepRate, rel*100)
		}
	}
}

// TestDESMatchesAnalyticalTrainBox validates the clustered replay.
func TestDESMatchesAnalyticalTrainBox(t *testing.T) {
	for _, name := range []string{"Inception-v4", "TF-AA"} {
		w, _ := workload.ByName(name)
		sys := mustBuild(t, arch.Config{Kind: arch.TrainBoxNoPool, NumAccels: 64})
		analytic, err := Solve(sys, w)
		if err != nil {
			t.Fatal(err)
		}
		des, err := SimulatePrep(sys, w, DefaultSimOptions())
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(des.Throughput)-float64(analytic.PrepRate)) / float64(analytic.PrepRate)
		if rel > 0.05 {
			t.Errorf("%s: DES %v vs analytic prep %v (%.1f%% apart)",
				name, des.Throughput, analytic.PrepRate, rel*100)
		}
	}
}

func TestDESOptionValidation(t *testing.T) {
	w, _ := workload.ByName("Resnet-50")
	sys := mustBuild(t, arch.Config{Kind: arch.Baseline, NumAccels: 8})
	if _, err := SimulatePrep(sys, w, SimOptions{}); err == nil {
		t.Error("zero options accepted")
	}
	flat := mustBuild(t, arch.Config{Kind: arch.BaselineAcc, NumAccels: 8})
	if _, err := SimulatePrep(flat, w, DefaultSimOptions()); err == nil {
		t.Error("unsupported kind accepted")
	}
}
